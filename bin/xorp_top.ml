(* xorp_top: live observability for a running router.

   Boots a router, then repeatedly advances the clock by one interval
   and polls the telemetry/0.1 XRL interface — list, get?name, spans —
   rendering a top(1)-style frame: hottest pipeline stages first (by
   observation count), then counters, then the most recent trace spans
   so an operator can watch a route's RIB→FEA journey as it happens.

   Everything arrives over XRL, not via in-process peeking: xorp_top
   exercises exactly the interface an external monitor would use.

     dune exec bin/xorp_top.exe -- -c etc/sample_router.conf \
       -i 5 -n 6 --delay 1 *)

open Cmdliner

let call router xrl =
  (* Borrow the RIB's endpoint as the caller, like call_xrl does. *)
  let caller = Rib.xrl_router (Rtrmgr.rib router) in
  Xrl_router.call_blocking caller xrl

let telemetry_xrl method_name args =
  Xrl.make ~target:"telemetry" ~interface:"telemetry" ~version:"0.1"
    ~method_name args

(* One polled histogram row. *)
type stage = {
  st_name : string;
  st_count : int;
  st_p50 : float;
  st_p90 : float;
  st_p99 : float;
  st_max : float;
}

let poll_metrics router =
  match call router (telemetry_xrl "list" []) with
  | err, _ when not (Xrl_error.is_ok err) -> ([], [])
  | _, reply ->
    let entries =
      Xrl_atom.get_list reply "metrics"
      |> List.filter_map (function
        | Xrl_atom.Txt s ->
          (match String.index_opt s '|' with
           | Some i ->
             Some
               ( String.sub s 0 i,
                 String.sub s (i + 1) (String.length s - i - 1) )
           | None -> None)
        | _ -> None)
    in
    List.fold_left
      (fun (stages, counters) (name, kind) ->
         let get () =
           call router (telemetry_xrl "get" [ Xrl_atom.txt "name" name ])
         in
         match kind with
         | "histogram" ->
           (match get () with
            | err, a when Xrl_error.is_ok err ->
              let f field = float_of_string (Xrl_atom.get_txt a field) in
              ( { st_name = name;
                  st_count = Xrl_atom.get_u32 a "count";
                  st_p50 = f "p50";
                  st_p90 = f "p90";
                  st_p99 = f "p99";
                  st_max = f "max" }
                :: stages,
                counters )
            | _ -> (stages, counters))
         | "counter" | "gauge" ->
           (match get () with
            | err, a when Xrl_error.is_ok err ->
              (stages, (name, Xrl_atom.get_txt a "value") :: counters)
            | _ -> (stages, counters))
         | _ -> (stages, counters))
      ([], []) entries

let poll_spans router =
  match call router (telemetry_xrl "spans" []) with
  | err, _ when not (Xrl_error.is_ok err) -> []
  | _, reply ->
    Xrl_atom.get_list reply "spans"
    |> List.filter_map (function
      | Xrl_atom.Txt s -> Telemetry_xrl.span_of_string s
      | _ -> None)

let last n l =
  let len = List.length l in
  if len <= n then l else List.filteri (fun i _ -> i >= len - n) l

let render_frame ~frame ~clock ~top_n stages counters spans =
  let buf = Buffer.create 1024 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  addf "xorp_top — frame %d, router clock %.1fs\n\n" frame clock;
  addf "%-34s %8s %9s %9s %9s %9s\n" "HOT STAGES (latency us)" "count"
    "p50" "p90" "p99" "max";
  let stages =
    List.sort (fun a b -> compare b.st_count a.st_count) stages
  in
  List.iteri
    (fun i st ->
       if i < top_n && st.st_count > 0 then
         addf "%-34s %8d %9.1f %9.1f %9.1f %9.1f\n" st.st_name st.st_count
           st.st_p50 st.st_p90 st.st_p99 st.st_max)
    stages;
  (* The forwarding path gets its own pane: per-element rx/tx/drop
     counters live under the "dataplane." telemetry prefix. *)
  let is_dp (n, _) =
    String.length n >= String.length Dataplane.telemetry_prefix
    && String.sub n 0 (String.length Dataplane.telemetry_prefix)
       = Dataplane.telemetry_prefix
  in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  (* So do the pipeline's staging queues and priority lanes: the BGP
     inbound backlog, the fanout/RibOut lane depths, and the RIB's
     FEA transmit queue. Watching these during a table load shows the
     bulk backlog draining while the urgent lane stays near zero. *)
  let is_queue (n, _) =
    contains n ".lane." || contains n ".backlog" || contains n ".fea_q."
  in
  (* Rebirth-resync activity: routes each protocol replayed into a
     restarted RIB, and stale FIB entries the FEA swept afterwards.
     Nonzero values here mean the router survived a RIB restart. *)
  let is_resync (n, _) =
    contains n ".rib_resync." || contains n ".rib_sweep."
  in
  let dp_counters, counters = List.partition is_dp counters in
  let q_counters, counters = List.partition is_queue counters in
  let resync_counters, counters = List.partition is_resync counters in
  let counters = List.sort compare counters in
  if counters <> [] then begin
    addf "\n%-34s %12s\n" "COUNTERS" "value";
    List.iter (fun (n, v) -> addf "%-34s %12s\n" n v) counters
  end;
  if q_counters <> [] then begin
    addf "\n%-34s %12s\n" "QUEUES (backlogs and lanes)" "depth";
    List.iter
      (fun (n, v) -> addf "%-34s %12s\n" n v)
      (List.sort compare q_counters)
  end;
  if resync_counters <> [] then begin
    addf "\n%-34s %12s\n" "REBIRTH RESYNC (RIB restart)" "routes";
    List.iter
      (fun (n, v) -> addf "%-34s %12s\n" n v)
      (List.sort compare resync_counters)
  end;
  if dp_counters <> [] then begin
    addf "\n%-34s %12s\n" "DATA PLANE" "packets";
    List.iter
      (fun (n, v) -> addf "%-34s %12s\n" n v)
      (List.sort compare dp_counters)
  end;
  if spans <> [] then begin
    addf "\n%-7s %-7s %-22s %9s  %s\n" "trace" "span" "RECENT SPANS"
      "dur us" "note";
    List.iter
      (fun (s : Telemetry.Trace.span) ->
         let dur = (s.sp_stop -. s.sp_start) *. 1e6 in
         let name =
           match s.sp_parent with
           | Some _ -> "  \\_ " ^ s.sp_name
           | None -> s.sp_name
         in
         addf "%-7d %-7d %-22s %9.1f  %s\n" s.sp_trace s.sp_span name dur
           s.sp_note)
      (last 12 spans)
  end;
  Buffer.contents buf

let run config_file interval frames delay top_n =
  let config =
    try
      let ic = open_in config_file in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      s
    with Sys_error e ->
      prerr_endline e;
      exit 1
  in
  match Rtrmgr.boot ~config () with
  | Error problems ->
    prerr_endline "configuration rejected:";
    List.iter (fun p -> prerr_endline ("  " ^ p)) problems;
    exit 1
  | Ok router ->
    let loop = Rtrmgr.eventloop router in
    for frame = 1 to frames do
      Eventloop.run_until_time loop (Eventloop.now loop +. interval);
      let stages, counters = poll_metrics router in
      let spans = poll_spans router in
      if delay > 0.0 then print_string "\027[2J\027[H";
      print_string
        (render_frame ~frame ~clock:(Eventloop.now loop) ~top_n stages
           counters spans);
      if frame < frames then print_newline ();
      flush stdout;
      if delay > 0.0 then Unix.sleepf delay
    done;
    Rtrmgr.shutdown router

let config_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "c"; "config" ] ~docv:"FILE" ~doc:"Router configuration file.")

let interval_arg =
  Arg.(
    value & opt float 5.0
    & info [ "i"; "interval" ] ~docv:"SECONDS"
        ~doc:"Simulated seconds the router runs between frames.")

let frames_arg =
  Arg.(
    value & opt int 3
    & info [ "n"; "frames" ] ~docv:"N" ~doc:"Number of frames to render.")

let delay_arg =
  Arg.(
    value & opt float 0.0
    & info [ "d"; "delay" ] ~docv:"SECONDS"
        ~doc:
          "Real seconds to pause between frames; also clears the screen \
           per frame (0 = scroll, for scripts and tests).")

let top_arg =
  Arg.(
    value & opt int 15
    & info [ "t"; "top" ] ~docv:"N" ~doc:"Stage rows to show per frame.")

let cmd =
  Cmd.v
    (Cmd.info "xorp_top" ~version:Xorp.version
       ~doc:"live per-stage latency and tracing view of a router")
    Term.(
      const run $ config_arg $ interval_arg $ frames_arg $ delay_arg
      $ top_arg)

let () = exit (Cmd.eval cmd)
