(* xorp_rtrmgr: boot a router from a configuration file and run it.

   The simulated network means a single process hosts the whole
   router; the clock is simulated, so "--run 300" finishes as fast as
   the events allow. After running, the operator views are printed.

     dune exec bin/xorp_rtrmgr.exe -- --config router.conf --run 60 *)

open Cmdliner

let run config_file run_seconds show_config =
  let config =
    try
      let ic = open_in config_file in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    with Sys_error e ->
      prerr_endline e;
      exit 1
  in
  match Rtrmgr.boot ~config () with
  | Error problems ->
    prerr_endline "configuration rejected:";
    List.iter (fun p -> prerr_endline ("  " ^ p)) problems;
    exit 1
  | Ok router ->
    if show_config then begin
      print_endline "# booted configuration";
      print_string (Rtrmgr.config_text router)
    end;
    let loop = Rtrmgr.eventloop router in
    Eventloop.run_until_time loop run_seconds;
    Printf.printf "\n--- after %.0f simulated seconds ---\n" run_seconds;
    print_endline "\n# show routes";
    print_string (Rtrmgr.show_routes router);
    print_endline "\n# show fib";
    print_string (Rtrmgr.show_fib router);
    (match Rtrmgr.bgp router with
     | Some _ ->
       print_endline "\n# show bgp peers";
       print_string (Rtrmgr.show_bgp_peers router)
     | None -> ());
    (match Rtrmgr.rip router with
     | Some _ ->
       print_endline "\n# show rip";
       print_string (Rtrmgr.show_rip router)
     | None -> ());
    (match Rtrmgr.ospf router with
     | Some _ ->
       print_endline "\n# show ospf";
       print_string (Rtrmgr.show_ospf router)
     | None -> ());
    Rtrmgr.shutdown router

let config_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "c"; "config" ] ~docv:"FILE" ~doc:"Router configuration file.")

let run_arg =
  Arg.(
    value & opt float 60.0
    & info [ "r"; "run" ] ~docv:"SECONDS"
        ~doc:"How long to run the router (simulated seconds).")

let show_arg =
  Arg.(value & flag & info [ "show-config" ] ~doc:"Echo the parsed configuration.")

let cmd =
  Cmd.v
    (Cmd.info "xorp_rtrmgr" ~version:Xorp.version
       ~doc:"boot and run a camlXORP router from a configuration file")
    Term.(const run $ config_arg $ run_arg $ show_arg)

let () = exit (Cmd.eval cmd)
