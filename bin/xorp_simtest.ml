(* xorp_simtest: the deterministic whole-router simulation harness.

   Fuzz seeded fault schedules over the full BGP/RIP/OSPF + RIB + FEA
   stack, or replay a single scenario:

     dune exec bin/xorp_simtest.exe -- --seeds 500
     dune exec bin/xorp_simtest.exe -- --seed 42 --trace
     dune exec bin/xorp_simtest.exe -- --replay counterexample.txt
     dune exec bin/xorp_simtest.exe -- --seeds 200 --inject-bug rib-no-replay

   Exit status: 0 all green, 1 an invariant was violated, 2 usage. *)

open Cmdliner

let read_file path =
  try
    let ic = open_in path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Ok s
  with Sys_error e -> Error e

let opts_of ~bug ~trace ~domains =
  { Simtest.fea_rebirth_replay = (bug <> Some "rib-no-replay");
    dataplane_ttl_leak = (bug = Some "dataplane-ttl-leak");
    bgp_lane_unordered = (bug = Some "lane-reorder");
    rib_resync = (bug <> Some "rib-no-resync");
    domains;
    bgp_redump = (bug <> Some "mesh-partition-heal");
    log_trace = trace }

let report_outcome ~quiet (o : Simtest.outcome) =
  if o.Simtest.violations = [] then begin
    if not quiet then
      Printf.printf "seed %d: OK (sim time %.0fs, %d events dispatched)\n"
        o.Simtest.ran.Simtest.seed o.Simtest.sim_time o.Simtest.dispatched;
    0
  end
  else begin
    Printf.printf "seed %d: %d invariant violation(s):\n"
      o.Simtest.ran.Simtest.seed
      (List.length o.Simtest.violations);
    List.iter (fun v -> Printf.printf "  %s\n" v) o.Simtest.violations;
    Printf.printf "scenario:\n%s" (Simtest.to_string o.Simtest.ran);
    1
  end

(* Boot an N-router grid twice under one seed and demand byte-identical
   traces and table signatures: the determinism gate at topology scale. *)
let topo_boot ~size ~seed ~quiet =
  let topo =
    let rec fit r = if size mod r = 0 then r else fit (r - 1) in
    let rows = fit (int_of_float (sqrt (float_of_int size))) in
    if rows <= 1 then Topology.chain size
    else Topology.grid rows (size / rows)
  in
  let boot () =
    let params = { Simnet.default_params with seed } in
    let w = Simnet.spawn params topo in
    let converged, _ = Simnet.converge w in
    if converged then Simnet.check_all w ~tag:"boot";
    let sign = Simnet.signature w in
    let viol = Simnet.violations w in
    let viol =
      if converged then viol else "boot: did not converge" :: viol
    in
    Simnet.teardown w;
    (sign, Digest.to_hex (Digest.string (Simnet.trace w)), viol)
  in
  let s1, d1, v1 = boot () in
  let s2, d2, v2 = boot () in
  if not quiet then begin
    Printf.printf "topology: %d routers, seed %d\n" (Topology.size topo) seed;
    Printf.printf "signature: %s\n" s1;
    Printf.printf "trace digest: %s / %s\n" d1 d2
  end;
  List.iter (Printf.printf "violation: %s\n") (v1 @ v2);
  if s1 <> s2 || d1 <> d2 then begin
    Printf.printf "NOT deterministic: runs differ under seed %d\n" seed;
    exit 1
  end;
  if v1 <> [] || v2 <> [] then exit 1;
  if not quiet then
    Printf.printf "deterministic: two boots agree byte-for-byte\n";
  exit 0

let run_main seeds base seed replay bug trace quiet domains topo topo_boot_size
    =
  (match bug with
   | None | Some "rib-no-replay" | Some "dataplane-ttl-leak"
   | Some "lane-reorder" | Some "rib-no-resync"
   | Some "mesh-partition-heal" -> ()
   | Some other ->
     Printf.eprintf
       "unknown --inject-bug %S (known: rib-no-replay, dataplane-ttl-leak, \
        lane-reorder, rib-no-resync, mesh-partition-heal)\n"
       other;
     exit 2);
  (match topo_boot_size with
   | Some size when size >= 1 ->
     topo_boot ~size ~seed:(Option.value seed ~default:0) ~quiet
   | Some _ ->
     prerr_endline "--topo-boot must be >= 1";
     exit 2
   | None -> ());
  if domains < 1 then begin
    prerr_endline "--domains must be >= 1";
    exit 2
  end;
  let opts = opts_of ~bug ~trace ~domains in
  match (seed, replay) with
  | Some _, Some _ ->
    prerr_endline "--seed and --replay are mutually exclusive";
    exit 2
  | Some s, None ->
    (* Replay one generated scenario; print the trace unless --quiet. *)
    let sc =
      if topo then Simtest.generate_topo ~seed:s else Simtest.generate ~seed:s
    in
    if not quiet then Printf.printf "%s" (Simtest.to_string sc);
    let o = Simtest.run ~opts sc in
    if (not quiet) && not trace then print_string o.Simtest.trace;
    exit (report_outcome ~quiet o)
  | None, Some path ->
    (match read_file path with
     | Error e ->
       prerr_endline e;
       exit 2
     | Ok text ->
       (match Simtest.of_string text with
        | Error e ->
          Printf.eprintf "cannot parse %s: %s\n" path e;
          exit 2
        | Ok sc ->
          let o = Simtest.run ~opts sc in
          if (not quiet) && not trace then print_string o.Simtest.trace;
          exit (report_outcome ~quiet o)))
  | None, None ->
    let t0 = Unix.gettimeofday () in
    let progress s =
      if (not quiet) && s mod 50 = 0 && s > base then
        Printf.printf "... seed %d (%.1fs)\n%!" s (Unix.gettimeofday () -. t0)
    in
    let r = Simtest.fuzz ~opts ~progress ~topo ~base ~count:seeds () in
    let wall = Unix.gettimeofday () -. t0 in
    (match r.Simtest.failed with
     | None ->
       Printf.printf "%d seeds (base %d): all invariants held (%.1fs)\n"
         r.Simtest.seeds_run base wall;
       exit 0
     | Some (o, minimal) ->
       Printf.printf
         "seed %d FAILED after %d seed(s) (%.1fs); %d violation(s):\n"
         o.Simtest.ran.Simtest.seed r.Simtest.seeds_run wall
         (List.length o.Simtest.violations);
       List.iter (fun v -> Printf.printf "  %s\n" v) o.Simtest.violations;
       Printf.printf "shrunk to a minimal scenario (%d extra runs):\n%s"
         r.Simtest.shrink_runs
         (Simtest.to_string minimal);
       Printf.printf
         "replay: save the scenario above and run --replay <file>, or\n\
         \        re-run --seed %d for the unshrunk schedule\n"
         o.Simtest.ran.Simtest.seed;
       exit 1)

let seeds_arg =
  Arg.(
    value & opt int 500
    & info [ "seeds" ] ~docv:"N" ~doc:"Number of fuzz seeds to run.")

let base_arg =
  Arg.(
    value & opt int 0
    & info [ "base" ] ~docv:"N" ~doc:"First seed of the fuzz range.")

let seed_arg =
  Arg.(
    value & opt (some int) None
    & info [ "seed" ] ~docv:"N"
        ~doc:"Run the single generated scenario for this seed and print \
              its event trace.")

let replay_arg =
  Arg.(
    value & opt (some string) None
    & info [ "replay" ] ~docv:"FILE"
        ~doc:"Replay a scenario file (the format printed on failure).")

let bug_arg =
  Arg.(
    value & opt (some string) None
    & info [ "inject-bug" ] ~docv:"NAME"
        ~doc:"Run with a known bug injected (rib-no-replay: the RIB \
              skips the full FIB replay when the FEA is reborn; \
              dataplane-ttl-leak: the forwarding graph's DecTtl forgets \
              to drop TTL-expired packets; lane-reorder: BGP's priority \
              lanes lose their per-prefix FIFO guard, so an urgent \
              withdrawal can overtake a queued bulk add; rib-no-resync: \
              protocols mark a reborn RIB up without replaying their \
              tables into it).")

let trace_arg =
  Arg.(
    value & flag
    & info [ "trace" ] ~doc:"Stream the event trace to stderr while running.")

let quiet_arg =
  Arg.(value & flag & info [ "quiet" ] ~doc:"Only report failures.")

let domains_arg =
  Arg.(
    value & opt int 1
    & info [ "domains" ] ~docv:"N"
        ~doc:"Run the DUT's BGP decision and RIB arbitration sharded by \
              prefix range across N worker domains (default 1: the classic \
              single-domain staged pipeline, which is also the only mode \
              with byte-deterministic traces — keep 1 when fuzzing for \
              counterexamples to shrink).")

let topo_arg =
  Arg.(
    value & flag
    & info [ "topo" ]
        ~doc:"Fuzz (or --seed replay) topology-parametric scenarios: each \
              seed generates a whole network (2-8 routers over chains, \
              iBGP full meshes, grids and mixed-protocol shapes) plus a \
              fault schedule against it, and shrinking reduces the \
              topology itself along with the events.")

let topo_boot_arg =
  Arg.(
    value & opt (some int) None
    & info [ "topo-boot" ] ~docv:"SIZE"
        ~doc:"Determinism gate: boot a SIZE-router grid twice under one \
              seed (--seed, default 0), converge, and demand byte-identical \
              traces and table signatures. Exits 1 on any difference or \
              invariant violation.")

let cmd =
  Cmd.v
    (Cmd.info "xorp_simtest"
       ~doc:"Deterministic whole-router simulation fuzzer")
    Term.(
      const run_main $ seeds_arg $ base_arg $ seed_arg $ replay_arg $ bug_arg
      $ trace_arg $ quiet_arg $ domains_arg $ topo_arg $ topo_boot_arg)

let () = exit (Cmd.eval cmd)
