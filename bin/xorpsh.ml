(* xorpsh: the operator shell (the "CLI" box of the paper's Figure 1).

   Boots a router from a configuration file and reads operational
   commands, either interactively from stdin or from -e arguments:

     show routes | show fib | show bgp peers | show rip | show ospf
     show dataplane | show queues | show config | show version
     run <seconds>          advance the (simulated) clock
     xrl <textual-xrl>      dispatch any XRL (scriptability, §6.1)
     help | quit

     dune exec bin/xorpsh.exe -- -c etc/sample_router.conf -e 'run 30' \
       -e 'show routes' *)

open Cmdliner

let help_text = {|commands:
  show routes | fib | bgp peers | rip | ospf | config | version
  show dataplane       the forwarding element graph and its counters
  show telemetry       metrics, stage latencies and trace spans
  show queues          pipeline backlogs and urgent/bulk lane depths
  run <seconds>        advance the clock
  xrl <textual-xrl>    dispatch an XRL and print the reply
  help                 this text
  quit                 leave the shell
|}

let dispatch_xrl router text =
  match Xrl.of_text text with
  | Error e -> Printf.printf "malformed XRL: %s\n" e
  | Ok xrl ->
    let caller = Rib.xrl_router (Rtrmgr.rib router) in
    let err, args = Xrl_router.call_blocking caller xrl in
    if Xrl_error.is_ok err then
      if args = [] then print_endline "OK"
      else List.iter (fun a -> print_endline ("  " ^ Xrl_atom.to_text a)) args
    else Printf.printf "ERROR: %s\n" (Xrl_error.to_string err)

let execute router line =
  let loop = Rtrmgr.eventloop router in
  let words =
    String.split_on_char ' ' (String.trim line)
    |> List.filter (fun w -> w <> "")
  in
  match words with
  | [] -> true
  | [ "quit" ] | [ "exit" ] -> false
  | [ "help" ] ->
    print_string help_text;
    true
  | [ "show"; "routes" ] | [ "show"; "route" ] ->
    print_string (Rtrmgr.show_routes router);
    true
  | [ "show"; "fib" ] ->
    print_string (Rtrmgr.show_fib router);
    true
  | [ "show"; "bgp"; "peers" ] | [ "show"; "bgp" ] ->
    print_string (Rtrmgr.show_bgp_peers router);
    true
  | [ "show"; "rip" ] ->
    print_string (Rtrmgr.show_rip router);
    true
  | [ "show"; "ospf" ] ->
    print_string (Rtrmgr.show_ospf router);
    true
  | [ "show"; "dataplane" ] ->
    print_string (Rtrmgr.show_dataplane router);
    true
  | [ "show"; "telemetry" ] ->
    print_string (Rtrmgr.show_telemetry router);
    true
  | [ "show"; "queues" ] ->
    print_string (Rtrmgr.show_queues router);
    true
  | [ "show"; "config" ] ->
    print_string (Rtrmgr.config_text router);
    true
  | [ "show"; "version" ] ->
    Printf.printf "camlXORP %s\n" Xorp.version;
    true
  | [ "run"; s ] ->
    (match float_of_string_opt s with
     | Some seconds when seconds >= 0.0 ->
       Eventloop.run_until_time loop (Eventloop.now loop +. seconds);
       Printf.printf "clock now at %.1fs\n" (Eventloop.now loop)
     | _ -> print_endline "usage: run <seconds>");
    true
  | "xrl" :: rest ->
    dispatch_xrl router (String.concat " " rest);
    true
  | w :: _ ->
    Printf.printf "unknown command %S (try 'help')\n" w;
    true

let run config_file commands =
  let config =
    try
      let ic = open_in config_file in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      s
    with Sys_error e ->
      prerr_endline e;
      exit 1
  in
  match Rtrmgr.boot ~config () with
  | Error problems ->
    prerr_endline "configuration rejected:";
    List.iter (fun p -> prerr_endline ("  " ^ p)) problems;
    exit 1
  | Ok router ->
    (match commands with
     | [] ->
       (* Interactive: read lines until EOF or quit. *)
       Printf.printf "camlXORP %s operator shell; 'help' for commands\n"
         Xorp.version;
       let rec loop () =
         print_string "xorpsh> ";
         flush stdout;
         match input_line stdin with
         | line -> if execute router line then loop ()
         | exception End_of_file -> ()
       in
       loop ()
     | commands -> List.iter (fun c -> ignore (execute router c)) commands);
    Rtrmgr.shutdown router

let config_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "c"; "config" ] ~docv:"FILE" ~doc:"Router configuration file.")

let exec_arg =
  Arg.(
    value & opt_all string []
    & info [ "e"; "exec" ] ~docv:"COMMAND"
        ~doc:"Command to execute (repeatable); omit for interactive mode.")

let cmd =
  Cmd.v
    (Cmd.info "xorpsh" ~version:Xorp.version
       ~doc:"operator shell for a camlXORP router")
    Term.(const run $ config_arg $ exec_arg)

let () = exit (Cmd.eval cmd)
