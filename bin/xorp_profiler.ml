(* xorp_profiler: drive the profiling mechanism of §8.2.

   Boots a router (the configuration should set [profiling { enabled:
   true }]), enables the requested profiling points (or all of them),
   runs for a while, and dumps the timestamped records in the paper's
   textual format:

     route_ribin 1097173928 664085 add 10.0.1.0/24

     dune exec bin/xorp_profiler.exe -- -c router.conf --run 60 *)

open Cmdliner

let run config_file run_seconds points =
  let config =
    try
      let ic = open_in config_file in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      s
    with Sys_error e ->
      prerr_endline e;
      exit 1
  in
  match Rtrmgr.boot ~config () with
  | Error problems ->
    prerr_endline "configuration rejected:";
    List.iter (fun p -> prerr_endline ("  " ^ p)) problems;
    exit 1
  | Ok router ->
    (match Rtrmgr.profiler router with
     | None ->
       prerr_endline
         "no profiler: add `profiling { enabled: true }` to the configuration";
       Rtrmgr.shutdown router;
       exit 1
     | Some profiler ->
       (match points with
        | [] -> Profiler.enable_all profiler
        | points -> List.iter (Profiler.enable profiler) points);
       Eventloop.run_until_time (Rtrmgr.eventloop router) run_seconds;
       Printf.printf "# profiling points:\n";
       List.iter
         (fun (name, on, count) ->
            Printf.printf "#   %-16s %-8s %d records\n" name
              (if on then "enabled" else "disabled")
              count)
         (Profiler.list_points profiler);
       List.iter print_endline (Profiler.to_strings profiler);
       Rtrmgr.shutdown router)

let config_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "c"; "config" ] ~docv:"FILE" ~doc:"Router configuration file.")

let run_arg =
  Arg.(
    value & opt float 60.0
    & info [ "r"; "run" ] ~docv:"SECONDS" ~doc:"Simulated run time.")

let points_arg =
  Arg.(
    value & opt_all string []
    & info [ "p"; "point" ] ~docv:"NAME"
        ~doc:"Profiling point to enable (repeatable; default: all).")

let cmd =
  Cmd.v
    (Cmd.info "xorp_profiler" ~version:Xorp.version
       ~doc:"enable profiling points on a router and dump the records")
    Term.(const run $ config_arg $ run_arg $ points_arg)

let () = exit (Cmd.eval cmd)
