(* call_xrl: the paper's scriptable XRL dispatcher (§6.1).

   "the textual form permits XRLs to be called from any scripting
   language via a simple call_xrl program. This is put to frequent use
   in all our scripts for automated testing."

   Boots a router from a configuration file, runs it for a settling
   period, then dispatches each XRL given on the command line and
   prints the reply atoms (one per line, canonical text form).

     dune exec bin/call_xrl.exe -- -c router.conf \
       'finder://rib/rib/1.0/get_route_count' \
       'finder://rib/rib/1.0/lookup_route_by_dest?addr:ipv4=10.1.2.3' *)

open Cmdliner

let dispatch router xrl_text =
  match Xrl.of_text xrl_text with
  | Error e ->
    Printf.printf "%s\n  MALFORMED: %s\n" xrl_text e;
    false
  | Ok xrl ->
    (* Borrow the RIB's XRL router as our caller endpoint; any
       component's endpoint can originate calls. *)
    let caller = Rib.xrl_router (Rtrmgr.rib router) in
    let err, args = Xrl_router.call_blocking caller xrl in
    Printf.printf "%s\n" xrl_text;
    if Xrl_error.is_ok err then begin
      if args = [] then print_endline "  OK"
      else
        List.iter
          (fun a -> Printf.printf "  %s\n" (Xrl_atom.to_text a))
          args;
      true
    end
    else begin
      Printf.printf "  ERROR: %s\n" (Xrl_error.to_string err);
      false
    end

let run config_file settle xrls =
  let config =
    try
      let ic = open_in config_file in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      s
    with Sys_error e ->
      prerr_endline e;
      exit 1
  in
  match Rtrmgr.boot ~config () with
  | Error problems ->
    prerr_endline "configuration rejected:";
    List.iter (fun p -> prerr_endline ("  " ^ p)) problems;
    exit 1
  | Ok router ->
    Eventloop.run_until_time (Rtrmgr.eventloop router) settle;
    let ok = List.for_all (dispatch router) xrls in
    Rtrmgr.shutdown router;
    if not ok then exit 2

let config_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "c"; "config" ] ~docv:"FILE" ~doc:"Router configuration file.")

let settle_arg =
  Arg.(
    value & opt float 5.0
    & info [ "s"; "settle" ] ~docv:"SECONDS"
        ~doc:"Simulated settling time before dispatching.")

let xrls_arg =
  Arg.(non_empty & pos_all string [] & info [] ~docv:"XRL" ~doc:"XRLs to call.")

let cmd =
  Cmd.v
    (Cmd.info "call_xrl" ~version:Xorp.version
       ~doc:"dispatch textual XRLs against a booted router")
    Term.(const run $ config_arg $ settle_arg $ xrls_arg)

let () = exit (Cmd.eval cmd)
