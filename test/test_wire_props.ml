(* Property-based tests for the OSPF-lite and RIPv2 wire codecs:
   encode/decode round-trips on arbitrary well-formed packets, and
   robustness under truncation — a cut-off datagram must never raise
   and must never decode into something that was not on the wire. *)

let gen_ipv4 =
  QCheck.Gen.(
    let* a = int_range 0 255 and* b = int_range 0 255
    and* c = int_range 0 255 and* d = int_range 0 255 in
    return (Ipv4.of_octets a b c d))

let gen_net =
  QCheck.Gen.(
    let* addr = gen_ipv4 and* len = int_range 0 32 in
    return (Ipv4net.make addr len))

(* Re-encode equality is the codec round-trip criterion: [encode] is
   deterministic, so [encode (decode (encode p)) = encode p] means the
   decoder lost nothing the wire carried. It also sidesteps structural
   comparison of abstract address types. *)
let reencodes encode decode p =
  match decode (encode p) with
  | Ok q -> String.equal (encode q) (encode p)
  | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e

let gen_cut = QCheck.Gen.int_range 0 1_000_000

let truncate_at s cut =
  if String.length s <= 1 then None
  else Some (String.sub s 0 (cut mod String.length s))

(* --- OSPF-lite -------------------------------------------------------- *)

let gen_lsa =
  QCheck.Gen.(
    let* origin = gen_ipv4 in
    let* seq = int_range 0 1_000_000 in
    let* nl = int_range 0 6 in
    let* links = list_repeat nl (pair gen_ipv4 (int_range 0 65535)) in
    let* ns = int_range 0 6 in
    let* stubs = list_repeat ns (pair gen_net (int_range 0 65535)) in
    return { Ospf_packet.origin; seq; links; stubs })

let gen_ospf =
  QCheck.Gen.(
    oneof
      [ (let* router_id = gen_ipv4 in
         let* n = int_range 0 12 in
         let* heard = list_repeat n gen_ipv4 in
         return (Ospf_packet.Hello { router_id; heard }));
        (let* n = int_range 0 5 in
         let* lsas = list_repeat n gen_lsa in
         return (Ospf_packet.Ls_update lsas)) ])

let arb_ospf = QCheck.make ~print:Ospf_packet.to_string gen_ospf

let prop_ospf_roundtrip =
  QCheck.Test.make ~name:"ospf: encode/decode round-trips" ~count:500
    arb_ospf
    (reencodes Ospf_packet.encode Ospf_packet.decode)

(* Every field list is length-prefixed, so a strict prefix of a valid
   OSPF packet always runs out of bytes: decode must return Error,
   never raise, never fabricate a packet. *)
let prop_ospf_truncation =
  QCheck.Test.make ~name:"ospf: truncation is a clean error" ~count:500
    (QCheck.pair arb_ospf (QCheck.make gen_cut))
    (fun (p, cut) ->
       match truncate_at (Ospf_packet.encode p) cut with
       | None -> true
       | Some s -> (
           match Ospf_packet.decode s with
           | Error _ -> true
           | Ok q ->
             QCheck.Test.fail_reportf "truncated packet decoded: %s"
               (Ospf_packet.to_string q)))

(* --- RIPv2 ------------------------------------------------------------ *)

let gen_rip_entry =
  QCheck.Gen.(
    let* net = gen_net and* nexthop = gen_ipv4 in
    let* metric = int_range 1 Rip_packet.infinity_metric in
    let* tag = int_range 0 65535 in
    return { Rip_packet.net; nexthop; metric; tag })

let gen_rip =
  QCheck.Gen.(
    let* command = oneofl [ Rip_packet.Request; Rip_packet.Response ] in
    let* n = int_range 0 Rip_packet.max_entries in
    let* entries = list_repeat n gen_rip_entry in
    return { Rip_packet.command; entries })

let arb_rip = QCheck.make ~print:Rip_packet.to_string gen_rip

let prop_rip_roundtrip =
  QCheck.Test.make ~name:"rip: encode/decode round-trips" ~count:500 arb_rip
    (reencodes Rip_packet.encode Rip_packet.decode)

(* RIP entries are fixed-size records with no count field, so a cut at
   an entry boundary is itself a valid shorter packet. The truncation
   guarantee is therefore: decode never raises, and anything it accepts
   re-encodes to a prefix of the original wire image — no invented
   entries, no reordering. *)
let prop_rip_truncation =
  QCheck.Test.make ~name:"rip: truncation yields error or a wire prefix"
    ~count:500
    (QCheck.pair arb_rip (QCheck.make gen_cut))
    (fun (p, cut) ->
       let wire = Rip_packet.encode p in
       match truncate_at wire cut with
       | None -> true
       | Some s -> (
           match Rip_packet.decode s with
           | Error _ -> true
           | Ok q ->
             let rewire = Rip_packet.encode q in
             String.length rewire <= String.length wire
             && String.equal rewire
                  (String.sub wire 0 (String.length rewire))))

(* A handful of adversarial fixed vectors QCheck is unlikely to hit. *)
let test_garbage () =
  let check_err name s codec =
    match codec s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: garbage accepted" name
  in
  check_err "ospf empty" "" Ospf_packet.decode;
  check_err "ospf bad magic" "XXxxxxxx" Ospf_packet.decode;
  (* type byte 3 is unassigned *)
  check_err "ospf bad type" "\x4c\x53\x03" Ospf_packet.decode;
  check_err "rip empty" "" Rip_packet.decode;
  check_err "rip bad command" "\x09\x02\x00\x00" Rip_packet.decode;
  check_err "rip bad version" "\x01\x01\x00\x00" Rip_packet.decode;
  (* metric 0 is outside 1..16 *)
  let bad_metric =
    "\x02\x02\x00\x00" (* response v2 *)
    ^ "\x00\x02\x00\x00" (* afi 2, tag 0 *)
    ^ "\x0a\x00\x00\x00" (* 10.0.0.0 *)
    ^ "\xff\x00\x00\x00" (* /8 *)
    ^ "\x00\x00\x00\x00" (* nexthop *)
    ^ "\x00\x00\x00\x00" (* metric 0 *)
  in
  check_err "rip metric 0" bad_metric Rip_packet.decode;
  (* non-contiguous netmask *)
  let bad_mask =
    "\x02\x02\x00\x00" ^ "\x00\x02\x00\x00" ^ "\x0a\x00\x00\x00"
    ^ "\xff\x00\xff\x00" ^ "\x00\x00\x00\x00" ^ "\x00\x00\x00\x01"
  in
  check_err "rip bad mask" bad_mask Rip_packet.decode

let () =
  Alcotest.run "xorp_wire_props"
    [ ( "ospf",
        List.map Seeded.qcheck
          [ prop_ospf_roundtrip; prop_ospf_truncation ] );
      ( "rip",
        List.map Seeded.qcheck
          [ prop_rip_roundtrip; prop_rip_truncation ] );
      ( "garbage",
        [ Alcotest.test_case "fixed adversarial vectors" `Quick test_garbage ]
      ) ]
