(* BGP wire-level tests: AS paths, RFC 4271 message codec, stream
   parser, and the peer session FSM. *)

let check = Alcotest.check
let addr = Ipv4.of_string_exn
let net = Ipv4net.of_string_exn

(* --- AS paths -------------------------------------------------------- *)

let test_aspath_basics () =
  let p = Aspath.prepend 3 (Aspath.prepend 2 (Aspath.prepend 1 Aspath.empty)) in
  check Alcotest.int "length" 3 (Aspath.length p);
  check Alcotest.string "render" "3 2 1" (Aspath.to_string p);
  check (Alcotest.option Alcotest.int) "first" (Some 3) (Aspath.first_as p);
  check (Alcotest.option Alcotest.int) "origin" (Some 1) (Aspath.origin_as p);
  check Alcotest.bool "contains" true (Aspath.contains p 2);
  check Alcotest.bool "not contains" false (Aspath.contains p 9)

let test_aspath_sets () =
  let p = [ Aspath.Seq [ 1; 2 ]; Aspath.Set [ 3; 4; 5 ] ] in
  check Alcotest.int "set counts one" 3 (Aspath.length p);
  check Alcotest.bool "contains in set" true (Aspath.contains p 4);
  check Alcotest.string "render" "1 2 {3,4,5}" (Aspath.to_string p)

let test_aspath_prepend_n () =
  let p = Aspath.prepend_n 65001 3 Aspath.empty in
  check Alcotest.string "triple prepend" "65001 65001 65001" (Aspath.to_string p)

let test_aspath_wire () =
  let p = [ Aspath.Seq [ 1; 70000; 3 ]; Aspath.Set [ 4; 5 ] ] in
  let w = Wire.W.create () in
  Aspath.encode w p;
  let back = Aspath.decode (Wire.R.of_string (Wire.W.contents w)) in
  check Alcotest.bool "roundtrip with 4-byte AS" true (Aspath.equal p back)

(* --- messages -------------------------------------------------------- *)

let attrs ?(aspath = [ Aspath.Seq [ 65001 ] ]) ?med ?localpref
    ?(communities = []) nh =
  { Bgp_types.origin = Bgp_types.IGP; aspath; nexthop = addr nh; med;
    localpref; communities; atomic_aggregate = false }

let roundtrip msg =
  match Bgp_packet.decode (Bgp_packet.encode msg) with
  | Ok m -> m
  | Error e -> Alcotest.failf "decode failed: %s" e

let test_open_roundtrip () =
  match
    roundtrip
      (Bgp_packet.Open
         { version = 4; my_as = 70000; hold_time = 90; bgp_id = addr "1.2.3.4" })
  with
  | Bgp_packet.Open { version; my_as; hold_time; bgp_id } ->
    check Alcotest.int "version" 4 version;
    check Alcotest.int "4-byte AS via capability" 70000 my_as;
    check Alcotest.int "hold" 90 hold_time;
    check Alcotest.string "id" "1.2.3.4" (Ipv4.to_string bgp_id)
  | m -> Alcotest.failf "got %s" (Bgp_packet.msg_to_string m)

let test_keepalive_roundtrip () =
  match roundtrip Bgp_packet.Keepalive with
  | Bgp_packet.Keepalive -> ()
  | m -> Alcotest.failf "got %s" (Bgp_packet.msg_to_string m)

let test_notification_roundtrip () =
  match
    roundtrip (Bgp_packet.Notification { code = 6; subcode = 2; data = "bye" })
  with
  | Bgp_packet.Notification { code = 6; subcode = 2; data = "bye" } -> ()
  | m -> Alcotest.failf "got %s" (Bgp_packet.msg_to_string m)

let test_update_roundtrip () =
  let a =
    { (attrs "10.0.0.1" ~med:50 ~localpref:200 ~communities:[ 0xFFFF0001; 42 ])
      with Bgp_types.origin = Bgp_types.EGP; atomic_aggregate = true }
  in
  let msg =
    Bgp_packet.Update
      { withdrawn = [ net "10.1.0.0/16"; net "192.168.1.0/24" ];
        attrs = Some a;
        nlri = [ net "128.16.0.0/18"; net "0.0.0.0/0"; net "1.2.3.4/32" ] }
  in
  match roundtrip msg with
  | Bgp_packet.Update { withdrawn; attrs = Some b; nlri } ->
    check Alcotest.int "withdrawn" 2 (List.length withdrawn);
    check Alcotest.int "nlri" 3 (List.length nlri);
    check Alcotest.bool "attrs equal" true (Bgp_types.attrs_equal a b);
    check Alcotest.string "default route survives" "0.0.0.0/0"
      (Ipv4net.to_string (List.nth nlri 1))
  | m -> Alcotest.failf "got %s" (Bgp_packet.msg_to_string m)

let test_update_withdraw_only () =
  match
    roundtrip
      (Bgp_packet.Update
         { withdrawn = [ net "10.0.0.0/8" ]; attrs = None; nlri = [] })
  with
  | Bgp_packet.Update { withdrawn = [ w ]; attrs = None; nlri = [] } ->
    check Alcotest.string "prefix" "10.0.0.0/8" (Ipv4net.to_string w)
  | m -> Alcotest.failf "got %s" (Bgp_packet.msg_to_string m)

let test_decode_rejects () =
  (* corrupt marker *)
  let good = Bgp_packet.encode Bgp_packet.Keepalive in
  let bad = "\x00" ^ String.sub good 1 (String.length good - 1) in
  (match Bgp_packet.decode bad with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "accepted bad marker");
  (* truncated *)
  (match Bgp_packet.decode (String.sub good 0 10) with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "accepted truncation");
  (* NLRI without attributes *)
  let msg =
    Bgp_packet.Update { withdrawn = []; attrs = None; nlri = [ net "10.0.0.0/8" ] }
  in
  match Bgp_packet.decode (Bgp_packet.encode msg) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted NLRI without attributes"

let test_stream_parser_reassembly () =
  let msgs =
    [ Bgp_packet.Keepalive;
      Bgp_packet.Update
        { withdrawn = []; attrs = Some (attrs "10.0.0.1");
          nlri = [ net "10.0.0.0/8" ] };
      Bgp_packet.Keepalive ]
  in
  let stream = String.concat "" (List.map Bgp_packet.encode msgs) in
  let parser = Bgp_packet.Stream_parser.create () in
  (* Feed one byte at a time; count complete messages. *)
  let got = ref 0 in
  String.iter
    (fun c ->
       match Bgp_packet.Stream_parser.feed parser (String.make 1 c) with
       | Ok out -> got := !got + List.length out
       | Error e -> Alcotest.fail e)
    stream;
  check Alcotest.int "all reassembled" 3 !got;
  check Alcotest.int "no leftover" 0 (Bgp_packet.Stream_parser.buffered parser)

let test_stream_parser_poisoning () =
  let parser = Bgp_packet.Stream_parser.create () in
  (match Bgp_packet.Stream_parser.feed parser (String.make 19 '\x00') with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "bad marker accepted");
  match Bgp_packet.Stream_parser.feed parser (Bgp_packet.encode Bgp_packet.Keepalive) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "poisoned parser kept going"

let prop_update_roundtrip =
  let gen =
    QCheck.Gen.(
      let prefix =
        map2
          (fun v l -> Ipv4net.make (Ipv4.of_int (v * 2654435761)) (l mod 33))
          (int_bound 0x3FFFFFFF) (int_bound 32)
      in
      let asn = int_range 1 100000 in
      map2
        (fun (withdrawn, nlri) (path, med) ->
           let attrs =
             if nlri = [] then None
             else
               Some
                 { Bgp_types.origin = Bgp_types.INCOMPLETE;
                   aspath = [ Aspath.Seq path ];
                   nexthop = Ipv4.of_octets 10 0 0 1;
                   med = (if med = 0 then None else Some med);
                   localpref = None; communities = [];
                   atomic_aggregate = false }
           in
           Bgp_packet.Update { withdrawn; attrs; nlri })
        (pair (list_size (int_bound 20) prefix) (list_size (int_bound 20) prefix))
        (pair (list_size (int_range 1 6) asn) (int_bound 100)))
  in
  QCheck.Test.make ~name:"update wire roundtrip" ~count:300 (QCheck.make gen)
    (fun msg ->
       match msg, Bgp_packet.decode (Bgp_packet.encode msg) with
       | Bgp_packet.Update u, Ok (Bgp_packet.Update v) ->
         u.withdrawn = v.withdrawn && u.nlri = v.nlri
         && (match u.attrs, v.attrs with
             | None, None -> true
             | Some a, Some b -> Bgp_types.attrs_equal a b
             | _ -> false)
       | _ -> false)

(* --- FSM -------------------------------------------------------------- *)

(* An in-memory duplex pipe connecting two FSMs through the loop. *)
let pipe loop fsm_a fsm_b =
  let up dst = fun data ->
    ignore (Eventloop.after loop 0.001 (fun () -> Peer_fsm.recv dst data))
  in
  let tr_a =
    { Peer_fsm.tr_send = up fsm_b;
      tr_close =
        (fun () ->
           ignore
             (Eventloop.after loop 0.001 (fun () -> Peer_fsm.transport_closed fsm_b)))
    }
  and tr_b =
    { Peer_fsm.tr_send = up fsm_a;
      tr_close =
        (fun () ->
           ignore
             (Eventloop.after loop 0.001 (fun () -> Peer_fsm.transport_closed fsm_a)))
    }
  in
  (tr_a, tr_b)

let fsm_pair ?(as_a = 65001) ?(as_b = 65002) ?(hold = 90.0) loop =
  let events = ref [] in
  let mk name peer_as local_as =
    Peer_fsm.create loop
      { Peer_fsm.local_as; bgp_id = addr ("10.0.0." ^ name);
        peer_as; hold_time = hold }
      {
        Peer_fsm.on_established = (fun () -> events := (name, "up") :: !events);
        on_update = (fun _ -> events := (name, "update") :: !events);
        on_down = (fun r -> events := (name, "down:" ^ r) :: !events);
      }
  in
  let a = mk "1" as_b as_a in
  let b = mk "2" as_a as_b in
  (a, b, events)

let establish loop a b =
  let tr_a, tr_b = pipe loop a b in
  Peer_fsm.start_active a;
  Peer_fsm.start_passive b;
  Peer_fsm.transport_up a tr_a;
  Peer_fsm.transport_up b tr_b;
  Eventloop.run_until_time loop (Eventloop.now loop +. 1.0)

let test_fsm_establishment () =
  let loop = Eventloop.create () in
  let a, b, events = fsm_pair loop in
  establish loop a b;
  check Alcotest.string "a established" "Established"
    (Peer_fsm.state_to_string (Peer_fsm.state a));
  check Alcotest.string "b established" "Established"
    (Peer_fsm.state_to_string (Peer_fsm.state b));
  check Alcotest.bool "both reported up" true
    (List.mem ("1", "up") !events && List.mem ("2", "up") !events);
  check (Alcotest.float 0.01) "negotiated hold" 90.0
    (Peer_fsm.negotiated_hold_time a)

let test_fsm_rejects_wrong_as () =
  let loop = Eventloop.create () in
  (* B expects AS 65009 but A is 65001. *)
  let a, b, _ = fsm_pair ~as_a:65001 ~as_b:65002 loop in
  ignore b;
  let c =
    Peer_fsm.create loop
      { Peer_fsm.local_as = 65002; bgp_id = addr "10.0.0.2";
        peer_as = 65009; hold_time = 90.0 }
      { Peer_fsm.on_established = (fun () -> Alcotest.fail "established?!");
        on_update = ignore; on_down = ignore }
  in
  establish loop a c;
  check Alcotest.string "refused" "Idle"
    (Peer_fsm.state_to_string (Peer_fsm.state c))

let test_fsm_update_delivery () =
  let loop = Eventloop.create () in
  let a, b, events = fsm_pair loop in
  establish loop a b;
  let sent =
    Peer_fsm.send_update a
      (Bgp_packet.Update
         { withdrawn = []; attrs = Some (attrs "10.0.0.1");
           nlri = [ net "10.0.0.0/8" ] })
  in
  check Alcotest.bool "send accepted" true sent;
  Eventloop.run_until_time loop (Eventloop.now loop +. 0.1);
  check Alcotest.bool "b got the update" true (List.mem ("2", "update") !events);
  check Alcotest.int "rx counter" 1 (Peer_fsm.updates_received b);
  check Alcotest.int "tx counter" 1 (Peer_fsm.updates_sent a)

let test_fsm_update_refused_when_down () =
  let loop = Eventloop.create () in
  let a, _, _ = fsm_pair loop in
  check Alcotest.bool "not established" false
    (Peer_fsm.send_update a
       (Bgp_packet.Update { withdrawn = []; attrs = None; nlri = [] }))

let test_fsm_hold_timer_expiry () =
  let loop = Eventloop.create () in
  let a, b, events = fsm_pair ~hold:30.0 loop in
  establish loop a b;
  (* Sever the wire silently: b never hears from a again and its hold
     timer must fire (a's keepalives no longer arrive). *)
  Peer_fsm.stop a;
  (* stop sends CEASE through tr; but the pipe delivers to b... to test
     the hold timer, instead create a fresh pair and just drop the
     transport without closing. *)
  ignore events;
  let c, d, devents = fsm_pair ~hold:30.0 loop in
  let tr_c, _ = pipe loop c d in
  (* d never gets a transport: c talks into the void. *)
  Peer_fsm.start_active c;
  Peer_fsm.transport_up c tr_c;
  Eventloop.run_until_time loop (Eventloop.now loop +. 60.0);
  check Alcotest.string "c gave up via hold timer" "Idle"
    (Peer_fsm.state_to_string (Peer_fsm.state c));
  check Alcotest.bool "down event fired" true
    (List.exists (fun (n, e) -> n = "1" && String.length e > 4) !devents)

let test_fsm_keepalives_maintain_session () =
  let loop = Eventloop.create () in
  let a, b, events = fsm_pair ~hold:12.0 loop in
  establish loop a b;
  (* Run well past several hold periods with no updates: keepalives
     must keep both sides Established. *)
  Eventloop.run_until_time loop (Eventloop.now loop +. 120.0);
  check Alcotest.string "a still up" "Established"
    (Peer_fsm.state_to_string (Peer_fsm.state a));
  check Alcotest.string "b still up" "Established"
    (Peer_fsm.state_to_string (Peer_fsm.state b));
  check Alcotest.bool "no down events" true
    (not (List.exists (fun (_, e) -> String.length e > 5 && String.sub e 0 5 = "down:") !events))

let test_fsm_notification_tears_down () =
  let loop = Eventloop.create () in
  let a, b, _ = fsm_pair loop in
  establish loop a b;
  Peer_fsm.stop a; (* sends CEASE *)
  Eventloop.run_until_time loop (Eventloop.now loop +. 0.1);
  check Alcotest.string "a idle" "Idle"
    (Peer_fsm.state_to_string (Peer_fsm.state a));
  check Alcotest.string "b idle after NOTIFICATION" "Idle"
    (Peer_fsm.state_to_string (Peer_fsm.state b))

let () =
  Alcotest.run "xorp_bgp_wire"
    [
      ( "aspath",
        [
          Alcotest.test_case "basics" `Quick test_aspath_basics;
          Alcotest.test_case "sets" `Quick test_aspath_sets;
          Alcotest.test_case "prepend_n" `Quick test_aspath_prepend_n;
          Alcotest.test_case "wire roundtrip" `Quick test_aspath_wire;
        ] );
      ( "messages",
        [
          Alcotest.test_case "open" `Quick test_open_roundtrip;
          Alcotest.test_case "keepalive" `Quick test_keepalive_roundtrip;
          Alcotest.test_case "notification" `Quick test_notification_roundtrip;
          Alcotest.test_case "update" `Quick test_update_roundtrip;
          Alcotest.test_case "withdraw-only update" `Quick
            test_update_withdraw_only;
          Alcotest.test_case "rejects malformed" `Quick test_decode_rejects;
        ] );
      ( "stream",
        [
          Alcotest.test_case "byte-at-a-time reassembly" `Quick
            test_stream_parser_reassembly;
          Alcotest.test_case "poisoning" `Quick test_stream_parser_poisoning;
        ] );
      ( "fsm",
        [
          Alcotest.test_case "establishment" `Quick test_fsm_establishment;
          Alcotest.test_case "wrong AS refused" `Quick test_fsm_rejects_wrong_as;
          Alcotest.test_case "update delivery" `Quick test_fsm_update_delivery;
          Alcotest.test_case "update refused when down" `Quick
            test_fsm_update_refused_when_down;
          Alcotest.test_case "hold timer expiry" `Quick
            test_fsm_hold_timer_expiry;
          Alcotest.test_case "keepalives maintain session" `Quick
            test_fsm_keepalives_maintain_session;
          Alcotest.test_case "notification teardown" `Quick
            test_fsm_notification_tears_down;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_update_roundtrip ]);
    ]
