(* Tests for the XRL IPC layer: atom syntax, XRL syntax, binary wire
   encoding, the Finder, and end-to-end calls over the intra-process,
   TCP and UDP protocol families. *)

let check = Alcotest.check
let addr = Ipv4.of_string_exn
let net = Ipv4net.of_string_exn
let atom_t = Alcotest.testable Xrl_atom.pp Xrl_atom.equal
let xrl_t = Alcotest.testable Xrl.pp Xrl.equal

(* --- atoms ---------------------------------------------------------- *)

let test_atom_text () =
  check Alcotest.string "u32" "as:u32=1777"
    (Xrl_atom.to_text (Xrl_atom.u32 "as" 1777));
  check Alcotest.string "bool" "enabled:bool=true"
    (Xrl_atom.to_text (Xrl_atom.boolean "enabled" true));
  check Alcotest.string "ipv4" "nexthop:ipv4=10.0.0.1"
    (Xrl_atom.to_text (Xrl_atom.ipv4 "nexthop" (addr "10.0.0.1")));
  check Alcotest.string "ipv4net escapes the slash" "net:ipv4net=10.0.0.0%2F8"
    (Xrl_atom.to_text (Xrl_atom.ipv4net "net" (net "10.0.0.0/8")))

let test_atom_text_roundtrip () =
  let atoms =
    [ Xrl_atom.u32 "a" 0; Xrl_atom.u32 "b" 0xFFFFFFFF;
      Xrl_atom.i32 "c" (-42); Xrl_atom.u64 "d" 0x1234_5678_9ABC_DEF0L;
      Xrl_atom.txt "e" "hello world & more?=";
      Xrl_atom.boolean "f" false;
      Xrl_atom.ipv4 "g" (addr "192.0.2.1");
      Xrl_atom.ipv4net "h" (net "128.16.0.0/18");
      Xrl_atom.binary "i" "\x00\x01\xFFbin" ]
  in
  List.iter
    (fun a ->
       match Xrl_atom.of_text (Xrl_atom.to_text a) with
       | Ok b -> check atom_t (Xrl_atom.to_text a) a b
       | Error e -> Alcotest.failf "parse %s: %s" (Xrl_atom.to_text a) e)
    atoms

let test_atom_rejects () =
  List.iter
    (fun s ->
       match Xrl_atom.of_text s with
       | Ok _ -> Alcotest.failf "accepted %S" s
       | Error _ -> ())
    [ "noval"; "x:u32"; ":u32=1"; "x:wat=1"; "x:u32=abc"; "x:u32=-1";
      "x:bool=yes"; "x:ipv4=1.2.3"; "x:u32=4294967296" ]

let test_atom_getters () =
  let args = [ Xrl_atom.u32 "as" 1777; Xrl_atom.txt "name" "xorp" ] in
  check Alcotest.int "get_u32" 1777 (Xrl_atom.get_u32 args "as");
  check Alcotest.string "get_txt" "xorp" (Xrl_atom.get_txt args "name");
  Alcotest.check_raises "missing"
    (Xrl_atom.Bad_args "missing argument \"nope\"") (fun () ->
        ignore (Xrl_atom.get_u32 args "nope"));
  (try
     ignore (Xrl_atom.get_u32 args "name");
     Alcotest.fail "type mismatch accepted"
   with Xrl_atom.Bad_args _ -> ())

(* --- XRL syntax ----------------------------------------------------- *)

let test_xrl_text () =
  let xrl =
    Xrl.make ~target:"bgp" ~interface:"bgp" ~method_name:"set_local_as"
      [ Xrl_atom.u32 "as" 1777 ]
  in
  check Alcotest.string "paper example"
    "finder://bgp/bgp/1.0/set_local_as?as:u32=1777" (Xrl.to_text xrl);
  check Alcotest.string "method_id" "bgp/1.0/set_local_as" (Xrl.method_id xrl);
  check Alcotest.bool "generic" false (Xrl.is_resolved xrl)

let test_xrl_parse () =
  match Xrl.of_text "finder://bgp/bgp/1.0/set_local_as?as:u32=1777" with
  | Ok xrl ->
    check Alcotest.string "target" "bgp" xrl.Xrl.target;
    check Alcotest.string "method" "set_local_as" xrl.Xrl.method_name;
    check Alcotest.int "arg" 1777 (Xrl_atom.get_u32 xrl.Xrl.args "as")
  | Error e -> Alcotest.fail e

let test_xrl_parse_resolved () =
  match Xrl.of_text "stcp://127.0.0.1:16878/bgp/1.0/set_local_as?as:u32=1777" with
  | Ok xrl ->
    check Alcotest.bool "resolved" true (Xrl.is_resolved xrl);
    check Alcotest.string "address target" "127.0.0.1:16878" xrl.Xrl.target
  | Error e -> Alcotest.fail e

let test_xrl_parse_no_args () =
  match Xrl.of_text "finder://rib/rib/1.0/get_version" with
  | Ok xrl -> check Alcotest.int "no args" 0 (List.length xrl.Xrl.args)
  | Error e -> Alcotest.fail e

let test_xrl_rejects () =
  List.iter
    (fun s ->
       match Xrl.of_text s with
       | Ok _ -> Alcotest.failf "accepted %S" s
       | Error _ -> ())
    [ ""; "finder://bgp"; "finder://bgp/iface"; "http:/x/y/z/w";
      "finder://bgp/bgp/1.0/m?novalue" ]

let test_xrl_text_roundtrip () =
  let xrl =
    Xrl.make ~target:"rib" ~interface:"rib" ~method_name:"add_route"
      [ Xrl_atom.ipv4net "net" (net "10.0.0.0/8");
        Xrl_atom.ipv4 "nexthop" (addr "192.0.2.1");
        Xrl_atom.u32 "metric" 10 ]
  in
  match Xrl.of_text (Xrl.to_text xrl) with
  | Ok back -> check xrl_t "roundtrip" xrl back
  | Error e -> Alcotest.fail e

let prop_atom_text_roundtrip =
  (* Arbitrary byte strings in txt atoms survive the percent-escaped
     canonical text form, including reserved characters and newlines. *)
  QCheck.Test.make ~name:"atom text roundtrip (arbitrary bytes)" ~count:500
    QCheck.(string_gen_of_size (Gen.int_bound 30) (Gen.char))
    (fun s ->
       let a = Xrl_atom.txt "x" s in
       match Xrl_atom.of_text (Xrl_atom.to_text a) with
       | Ok b -> Xrl_atom.equal a b
       | Error _ -> false)

let prop_xrl_text_roundtrip_with_args =
  QCheck.Test.make ~name:"xrl text roundtrip (random txt args)" ~count:300
    QCheck.(list_of_size (Gen.int_bound 5)
              (string_gen_of_size (Gen.int_bound 12) Gen.printable))
    (fun values ->
       let args = List.mapi (fun i v -> Xrl_atom.txt (Printf.sprintf "a%d" i) v) values in
       let xrl = Xrl.make ~target:"tgt" ~interface:"i" ~method_name:"m" args in
       match Xrl.of_text (Xrl.to_text xrl) with
       | Ok back -> Xrl.equal xrl back
       | Error _ -> false)

(* --- wire encoding -------------------------------------------------- *)

let arb_value =
  let open QCheck.Gen in
  let scalar =
    oneof
      [ map (fun v -> Xrl_atom.U32 (v land 0xFFFFFFFF)) (int_bound 0x3FFFFFFF);
        map (fun v -> Xrl_atom.I32 (v - 0x40000000)) (int_bound 0x7FFFFFFF);
        map (fun v -> Xrl_atom.U64 (Int64.of_int v)) (int_bound max_int);
        map (fun s -> Xrl_atom.Txt s) (string_size (int_bound 40));
        map (fun b -> Xrl_atom.Bool b) bool;
        map (fun v -> Xrl_atom.Ipv4_v (Ipv4.of_int v)) (int_bound 0x3FFFFFFF);
        map2
          (fun v l -> Xrl_atom.Ipv4net_v (Ipv4net.make (Ipv4.of_int v) (l mod 33)))
          (int_bound 0x3FFFFFFF) (int_bound 32);
        map (fun s -> Xrl_atom.Binary s) (string_size (int_bound 40)) ]
  in
  let value =
    oneof [ scalar; map (fun vs -> Xrl_atom.List vs) (list_size (int_bound 5) scalar) ]
  in
  QCheck.make value

let arb_atoms =
  QCheck.make
    QCheck.Gen.(
      list_size (int_bound 8)
        (map2
           (fun i v -> Xrl_atom.make (Printf.sprintf "arg%d" i) v)
           (int_bound 1000) (QCheck.gen arb_value)))

let prop_wire_request_roundtrip =
  QCheck.Test.make ~name:"wire request roundtrip" ~count:300 arb_atoms
    (fun atoms ->
       let xrl =
         Xrl.make ~protocol:"stcp" ~target:"127.0.0.1:1" ~interface:"test"
           ~method_name:"m" atoms
       in
       let msg = Xrl_wire.Request { seq = 12345; xrl } in
       match Xrl_wire.decode (Xrl_wire.encode msg) with
       | Ok (Xrl_wire.Request { seq; xrl = back }) ->
         seq = 12345 && Xrl.equal xrl back
       | _ -> false)

let prop_wire_reply_roundtrip =
  QCheck.Test.make ~name:"wire reply roundtrip" ~count:300 arb_atoms
    (fun atoms ->
       let msg =
         Xrl_wire.Reply
           { seq = 7; error = Xrl_error.Command_failed "nope"; args = atoms }
       in
       match Xrl_wire.decode (Xrl_wire.encode msg) with
       | Ok (Xrl_wire.Reply { seq; error; args }) ->
         seq = 7
         && Xrl_error.code error = 4
         && List.length args = List.length atoms
         && List.for_all2 Xrl_atom.equal args atoms
       | _ -> false)

(* --- batch frames ---------------------------------------------------- *)

let rec msg_equal (a : Xrl_wire.message) (b : Xrl_wire.message) =
  match a, b with
  | Xrl_wire.Request { seq = s1; xrl = x1 },
    Xrl_wire.Request { seq = s2; xrl = x2 } -> s1 = s2 && Xrl.equal x1 x2
  | Xrl_wire.Reply { seq = s1; error = e1; args = a1 },
    Xrl_wire.Reply { seq = s2; error = e2; args = a2 } ->
    s1 = s2 && e1 = e2
    && List.length a1 = List.length a2
    && List.for_all2 Xrl_atom.equal a1 a2
  | Xrl_wire.Batch l1, Xrl_wire.Batch l2 ->
    List.length l1 = List.length l2 && List.for_all2 msg_equal l1 l2
  | _ -> false

let gen_message =
  let open QCheck.Gen in
  let gen_atoms = QCheck.gen arb_atoms in
  let gen_req =
    map2
      (fun seq atoms ->
         Xrl_wire.Request
           { seq;
             xrl =
               Xrl.make ~protocol:"stcp" ~target:"127.0.0.1:1"
                 ~interface:"iface" ~method_name:"m" atoms } )
      (int_bound 0xFFFFFF) gen_atoms
  in
  let gen_rep =
    let gen_err =
      oneofl
        [ Xrl_error.Ok_xrl; Xrl_error.Command_failed "nope";
          Xrl_error.Bad_args "missing"; Xrl_error.No_such_method "x/1.0/y" ]
    in
    map3
      (fun seq err atoms -> Xrl_wire.Reply { seq; error = err; args = atoms })
      (int_bound 0xFFFFFF) gen_err gen_atoms
  in
  let gen_elem = oneof [ gen_req; gen_rep ] in
  oneof
    [ gen_elem;
      map (fun l -> Xrl_wire.Batch l) (list_size (int_bound 6) gen_elem) ]

(* Satellite of the batching work: any message — batched or not — must
   round-trip exactly, and EVERY strict prefix of its encoding must
   decode to an Error (no prefix may parse as a shorter valid
   message). All wire structures carry declared lengths, so decoding a
   cut never succeeds by accident. *)
let prop_wire_batch_roundtrip_and_truncation =
  QCheck.Test.make ~name:"batch roundtrip + every-prefix truncation" ~count:60
    (QCheck.make gen_message)
    (fun msg ->
       let s = Xrl_wire.encode msg in
       let roundtrips =
         match Xrl_wire.decode s with
         | Ok back -> msg_equal msg back
         | Error _ -> false
       in
       let every_prefix_errors = ref true in
       for i = 0 to String.length s - 1 do
         match Xrl_wire.decode (String.sub s 0 i) with
         | Ok _ -> every_prefix_errors := false
         | Error _ -> ()
       done;
       roundtrips && !every_prefix_errors)

let test_wire_batch_no_nesting () =
  let req =
    Xrl_wire.Request
      { seq = 1;
        xrl =
          Xrl.make ~protocol:"stcp" ~target:"127.0.0.1:1" ~interface:"i"
            ~method_name:"m" [] }
  in
  (try
     ignore (Xrl_wire.encode (Xrl_wire.Batch [ Xrl_wire.Batch [ req ] ]));
     Alcotest.fail "nested batch encoded"
   with Invalid_argument _ -> ());
  (* A hand-built frame claiming a batch element of kind 2 (batch)
     must be rejected by the decoder, not recursed into. *)
  let w = Wire.W.create () in
  Wire.W.u8 w (Char.code 'X');
  Wire.W.u8 w (Char.code 'O');
  Wire.W.u8 w 1 (* version *);
  Wire.W.u8 w 2 (* kind: batch *);
  Wire.W.u16 w 1 (* one element *);
  Wire.W.u8 w 2 (* element kind: batch — illegal *);
  Wire.W.u32 w 0;
  match Xrl_wire.decode (Wire.W.contents w) with
  | Ok _ -> Alcotest.fail "nested batch decoded"
  | Error _ -> ()

let test_wire_garbage () =
  List.iter
    (fun s ->
       match Xrl_wire.decode s with
       | Ok _ -> Alcotest.failf "decoded garbage %S" s
       | Error _ -> ())
    [ ""; "XO"; "ZZ\x01\x00\x00\x00\x00\x00"; "XO\x09\x00\x00\x00\x00\x00";
      String.make 40 '\xFF' ]

(* --- Finder --------------------------------------------------------- *)

let test_finder_register_resolve () =
  let f = Finder.create () in
  let target =
    match
      Finder.register_target f ~class_name:"bgp"
        ~addresses:[ ("x-intra", "intra:1") ] ()
    with
    | Ok target -> target
    | Error e -> Alcotest.fail e
  in
  let key = Finder.register_method f target ~method_id:"bgp/1.0/set_local_as" in
  check Alcotest.int "key is 16 bytes hex" 32 (String.length key);
  let xrl =
    Xrl.make ~target:"bgp" ~interface:"bgp" ~method_name:"set_local_as" []
  in
  match Finder.resolve f xrl with
  | Ok r ->
    check Alcotest.string "family" "x-intra" r.Finder.family;
    check Alcotest.string "address" "intra:1" r.Finder.address;
    check Alcotest.string "keyed method" ("set_local_as@" ^ key)
      r.Finder.keyed_method
  | Error e -> Alcotest.fail (Xrl_error.to_string e)

let test_finder_resolve_failures () =
  let f = Finder.create () in
  let target =
    Result.get_ok
      (Finder.register_target f ~class_name:"bgp"
         ~addresses:[ ("x-intra", "intra:1") ] ())
  in
  ignore (Finder.register_method f target ~method_id:"bgp/1.0/known");
  let mk m = Xrl.make ~target:"bgp" ~interface:"bgp" ~method_name:m [] in
  (match Finder.resolve f (mk "unknown") with
   | Error (Xrl_error.No_such_method _) -> ()
   | _ -> Alcotest.fail "expected No_such_method");
  (match
     Finder.resolve f
       (Xrl.make ~target:"ospf" ~interface:"x" ~method_name:"y" [])
   with
   | Error (Xrl_error.Resolve_failed _) -> ()
   | _ -> Alcotest.fail "expected Resolve_failed")

let test_finder_sole () =
  let f = Finder.create () in
  ignore
    (Result.get_ok
       (Finder.register_target f ~class_name:"rib" ~sole:true
          ~addresses:[ ("x-intra", "intra:1") ] ()));
  match
    Finder.register_target f ~class_name:"rib" ~sole:true
      ~addresses:[ ("x-intra", "intra:2") ] ()
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "second sole instance accepted"

let test_finder_lifetime_events () =
  let f = Finder.create () in
  let events = ref [] in
  let t1 =
    Result.get_ok
      (Finder.register_target f ~class_name:"bgp"
         ~addresses:[ ("x-intra", "intra:1") ] ())
  in
  (* watcher registered after t1: still gets a synthetic birth *)
  Finder.watch_class f "bgp" (fun ev inst ->
      events :=
        ((match ev with Finder.Birth -> "birth" | Finder.Death -> "death"), inst)
        :: !events);
  let t2 =
    Result.get_ok
      (Finder.register_target f ~class_name:"bgp"
         ~addresses:[ ("x-intra", "intra:2") ] ())
  in
  Finder.unregister_target f t1;
  Finder.unregister_target f t1; (* idempotent *)
  Finder.unregister_target f t2;
  let i1 = Finder.instance_name t1 and i2 = Finder.instance_name t2 in
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
    "event order"
    [ ("birth", i1); ("birth", i2); ("death", i1); ("death", i2) ]
    (List.rev !events);
  check (Alcotest.list Alcotest.string) "no instances left" []
    (Finder.live_instances f "bgp")

let test_finder_family_preference () =
  let f = Finder.create () in
  let target =
    Result.get_ok
      (Finder.register_target f ~class_name:"fea"
         ~addresses:[ ("stcp", "127.0.0.1:1"); ("sudp", "127.0.0.1:2") ] ())
  in
  ignore (Finder.register_method f target ~method_id:"fea/1.0/m");
  let xrl = Xrl.make ~target:"fea" ~interface:"fea" ~method_name:"m" [] in
  (match Finder.resolve f ~family_pref:[ "sudp" ] xrl with
   | Ok r -> check Alcotest.string "udp preferred" "sudp" r.Finder.family
   | Error e -> Alcotest.fail (Xrl_error.to_string e));
  (match Finder.resolve f ~family_pref:[ "x-intra" ] xrl with
   | Ok r -> check Alcotest.string "falls back to first" "stcp" r.Finder.family
   | Error e -> Alcotest.fail (Xrl_error.to_string e))

(* --- end-to-end over protocol families ------------------------------ *)

(* A toy "adder" component with one method. *)
let make_adder ?families finder loop =
  let router =
    Xrl_router.create ?families finder loop ~class_name:"adder" ()
  in
  Xrl_router.add_handler router ~interface:"math" ~method_name:"add"
    (fun args reply ->
       let a = Xrl_atom.get_u32 args "a" and b = Xrl_atom.get_u32 args "b" in
       reply Xrl_error.Ok_xrl [ Xrl_atom.u32 "sum" (a + b) ]);
  Xrl_router.add_handler router ~interface:"math" ~method_name:"fail"
    (fun _ reply -> reply (Xrl_error.Command_failed "deliberate") []);
  router

let add_xrl a b =
  Xrl.make ~target:"adder" ~interface:"math" ~method_name:"add"
    [ Xrl_atom.u32 "a" a; Xrl_atom.u32 "b" b ]

let run_adder_scenario ~families ~pref ~mode () =
  let loop = Eventloop.create ~mode () in
  let finder = Finder.create () in
  let adder = make_adder ~families finder loop in
  let caller =
    Xrl_router.create ~families ~family_pref:pref finder loop
      ~class_name:"caller" ()
  in
  let err, args = Xrl_router.call_blocking caller (add_xrl 20 22) in
  check Alcotest.bool ("add ok: " ^ Xrl_error.to_string err) true
    (Xrl_error.is_ok err);
  check Alcotest.int "sum" 42 (Xrl_atom.get_u32 args "sum");
  (* error propagation *)
  let err, _ =
    Xrl_router.call_blocking caller
      (Xrl.make ~target:"adder" ~interface:"math" ~method_name:"fail" [])
  in
  (match err with
   | Xrl_error.Command_failed "deliberate" -> ()
   | e -> Alcotest.failf "expected Command_failed, got %s" (Xrl_error.to_string e));
  (* bad args propagation *)
  let err, _ =
    Xrl_router.call_blocking caller
      (Xrl.make ~target:"adder" ~interface:"math" ~method_name:"add"
         [ Xrl_atom.txt "a" "x" ])
  in
  (match err with
   | Xrl_error.Bad_args _ -> ()
   | e -> Alcotest.failf "expected Bad_args, got %s" (Xrl_error.to_string e));
  Xrl_router.shutdown adder;
  Xrl_router.shutdown caller

let test_intra_call () =
  run_adder_scenario ~families:[ Pf_intra.family ] ~pref:[ "x-intra" ]
    ~mode:`Sim ()

let test_tcp_call () =
  run_adder_scenario
    ~families:[ Pf_tcp.family ]
    ~pref:[ "stcp" ] ~mode:`Real ()

let test_udp_call () =
  run_adder_scenario
    ~families:[ Pf_udp.family ]
    ~pref:[ "sudp" ] ~mode:`Real ()

let test_tcp_pipelining () =
  (* Many outstanding requests on one connection; all replies arrive
     and match. *)
  let loop = Eventloop.create ~mode:`Real () in
  let finder = Finder.create () in
  let adder = make_adder ~families:[ Pf_tcp.family ] finder loop in
  let caller =
    Xrl_router.create ~families:[ Pf_tcp.family ] ~family_pref:[ "stcp" ]
      finder loop ~class_name:"caller" ()
  in
  let n = 200 in
  let got = ref 0 in
  let wrong = ref 0 in
  for i = 1 to n do
    Xrl_router.send caller (add_xrl i i) (fun err args ->
        incr got;
        if
          (not (Xrl_error.is_ok err))
          || Xrl_atom.get_u32 args "sum" <> 2 * i
        then incr wrong)
  done;
  Eventloop.run ~until:(fun () -> !got >= n) loop;
  check Alcotest.int "all replies" n !got;
  check Alcotest.int "all correct" 0 !wrong;
  Xrl_router.shutdown adder;
  Xrl_router.shutdown caller

(* --- sender-side batching over TCP ---------------------------------- *)

let tcp_batch_rig ?(batching = true) () =
  let loop = Eventloop.create ~mode:`Real () in
  let finder = Finder.create () in
  let order = ref [] in
  let adder =
    Xrl_router.create ~families:[ Pf_tcp.family ] finder loop
      ~class_name:"adder" ()
  in
  Xrl_router.add_handler adder ~interface:"math" ~method_name:"add"
    (fun args reply ->
       let a = Xrl_atom.get_u32 args "a" and b = Xrl_atom.get_u32 args "b" in
       order := a :: !order;
       reply Xrl_error.Ok_xrl [ Xrl_atom.u32 "sum" (a + b) ]);
  Xrl_router.add_handler adder ~interface:"math" ~method_name:"fail"
    (fun _ reply -> reply (Xrl_error.Command_failed "deliberate") []);
  let caller =
    Xrl_router.create ~families:[ Pf_tcp.family ] ~family_pref:[ "stcp" ]
      ~batching finder loop ~class_name:"caller" ()
  in
  (loop, adder, caller, order)

let test_tcp_batching_coalesces () =
  (* N sends issued within one event-loop turn must leave as batched
     frames, and every reply must still arrive, correct, exactly once. *)
  Telemetry.reset ();
  let loop, adder, caller, _ = tcp_batch_rig () in
  let batches_tx = Telemetry.counter "xrl.tcp.batches_tx" in
  let n = 50 in
  let got = ref 0 in
  let wrong = ref 0 in
  for i = 1 to n do
    Xrl_router.send caller (add_xrl i i) (fun err args ->
        incr got;
        if (not (Xrl_error.is_ok err)) || Xrl_atom.get_u32 args "sum" <> 2 * i
        then incr wrong)
  done;
  Eventloop.run ~until:(fun () -> !got >= n) loop;
  check Alcotest.int "all replies" n !got;
  check Alcotest.int "all correct" 0 !wrong;
  check Alcotest.bool "at least one batched frame went out" true
    (Telemetry.counter_value batches_tx > 0);
  Xrl_router.shutdown adder;
  Xrl_router.shutdown caller

let test_tcp_batching_fifo_order () =
  (* The handler must observe requests in send order even when they
     cross in one batched frame. *)
  let loop, adder, caller, order = tcp_batch_rig () in
  let n = 40 in
  let got = ref 0 in
  for i = 1 to n do
    Xrl_router.send caller (add_xrl i 0) (fun _ _ -> incr got)
  done;
  Eventloop.run ~until:(fun () -> !got >= n) loop;
  check
    Alcotest.(list int)
    "dispatch order is send order"
    (List.init n (fun i -> i + 1))
    (List.rev !order);
  Xrl_router.shutdown adder;
  Xrl_router.shutdown caller

let test_tcp_batching_per_request_errors () =
  (* A failing request inside a batch fails alone; its neighbours
     succeed. *)
  let loop, adder, caller, _ = tcp_batch_rig () in
  let results = Hashtbl.create 8 in
  let got = ref 0 in
  let expect = ref 0 in
  let send_ok i =
    incr expect;
    Xrl_router.send caller (add_xrl i i) (fun err _ ->
        incr got;
        Hashtbl.replace results i (Xrl_error.is_ok err))
  in
  let send_fail i =
    incr expect;
    Xrl_router.send caller
      (Xrl.make ~target:"adder" ~interface:"math" ~method_name:"fail" [])
      (fun err _ ->
         incr got;
         Hashtbl.replace results i
           (match err with Xrl_error.Command_failed "deliberate" -> false | _ -> true))
  in
  send_ok 1; send_fail 2; send_ok 3; send_fail 4; send_ok 5;
  Eventloop.run ~until:(fun () -> !got >= !expect) loop;
  check Alcotest.bool "1 ok" true (Hashtbl.find results 1);
  check Alcotest.bool "2 failed with its own error" false (Hashtbl.find results 2);
  check Alcotest.bool "3 ok" true (Hashtbl.find results 3);
  check Alcotest.bool "4 failed with its own error" false (Hashtbl.find results 4);
  check Alcotest.bool "5 ok" true (Hashtbl.find results 5);
  Xrl_router.shutdown adder;
  Xrl_router.shutdown caller

let test_tcp_batching_off_sends_single_frames () =
  Telemetry.reset ();
  let loop, adder, caller, _ = tcp_batch_rig ~batching:false () in
  let batches_tx = Telemetry.counter "xrl.tcp.batches_tx" in
  let n = 20 in
  let got = ref 0 in
  for i = 1 to n do
    Xrl_router.send caller (add_xrl i i) (fun _ _ -> incr got)
  done;
  Eventloop.run ~until:(fun () -> !got >= n) loop;
  check Alcotest.int "all replies" n !got;
  check Alcotest.int "no batched frames" 0 (Telemetry.counter_value batches_tx);
  Xrl_router.shutdown adder;
  Xrl_router.shutdown caller

let test_resolve_failure_surfaces () =
  let loop = Eventloop.create () in
  let finder = Finder.create () in
  let caller = Xrl_router.create finder loop ~class_name:"caller" () in
  let err, _ =
    Xrl_router.call_blocking caller
      (Xrl.make ~target:"ghost" ~interface:"x" ~method_name:"y" [])
  in
  (match err with
   | Xrl_error.Resolve_failed _ -> ()
   | e -> Alcotest.failf "expected Resolve_failed, got %s" (Xrl_error.to_string e));
  Xrl_router.shutdown caller

let test_key_enforcement () =
  (* Calling with a resolved XRL that has a wrong key must be
     rejected: you cannot bypass the Finder. *)
  let loop = Eventloop.create () in
  let finder = Finder.create () in
  let adder = make_adder finder loop in
  let caller = Xrl_router.create finder loop ~class_name:"caller" () in
  (* Learn the transport address by resolving legitimately... *)
  let r = Result.get_ok (Finder.resolve finder (add_xrl 1 1)) in
  (* ...then forge a call with a corrupted key. *)
  let forged =
    Xrl.make ~protocol:r.Finder.family ~target:r.Finder.address
      ~interface:"math"
      ~method_name:"add@00000000000000000000000000000000"
      [ Xrl_atom.u32 "a" 1; Xrl_atom.u32 "b" 1 ]
  in
  let err, _ = Xrl_router.call_blocking caller forged in
  (match err with
   | Xrl_error.No_such_method _ -> ()
   | e -> Alcotest.failf "forged call got %s" (Xrl_error.to_string e));
  Xrl_router.shutdown adder;
  Xrl_router.shutdown caller

let test_shutdown_invalidates () =
  let loop = Eventloop.create () in
  let finder = Finder.create () in
  let adder = make_adder finder loop in
  let caller = Xrl_router.create finder loop ~class_name:"caller" () in
  let err, _ = Xrl_router.call_blocking caller (add_xrl 1 2) in
  check Alcotest.bool "first call ok" true (Xrl_error.is_ok err);
  Xrl_router.shutdown adder;
  let err, _ = Xrl_router.call_blocking caller (add_xrl 1 2) in
  check Alcotest.bool "fails after shutdown" false (Xrl_error.is_ok err);
  (* A reincarnated adder is found again (cache was invalidated). *)
  let adder2 = make_adder finder loop in
  let err, args = Xrl_router.call_blocking caller (add_xrl 2 3) in
  check Alcotest.bool "reincarnation found" true (Xrl_error.is_ok err);
  check Alcotest.int "sum" 5 (Xrl_atom.get_u32 args "sum");
  Xrl_router.shutdown adder2;
  Xrl_router.shutdown caller

let test_deferred_reply () =
  (* Handlers may reply asynchronously. *)
  let loop = Eventloop.create () in
  let finder = Finder.create () in
  let slowpoke = Xrl_router.create finder loop ~class_name:"slowpoke" () in
  Xrl_router.add_handler slowpoke ~interface:"slow" ~method_name:"echo"
    (fun args reply ->
       ignore
         (Eventloop.after loop 5.0 (fun () -> reply Xrl_error.Ok_xrl args)));
  let caller = Xrl_router.create finder loop ~class_name:"caller" () in
  let err, args =
    Xrl_router.call_blocking caller
      (Xrl.make ~target:"slowpoke" ~interface:"slow" ~method_name:"echo"
         [ Xrl_atom.txt "x" "later" ])
  in
  check Alcotest.bool "ok" true (Xrl_error.is_ok err);
  check Alcotest.string "echoed" "later" (Xrl_atom.get_txt args "x");
  check (Alcotest.float 1e-9) "took simulated 5s" 5.0 (Eventloop.now loop);
  Xrl_router.shutdown slowpoke;
  Xrl_router.shutdown caller

let () =
  Alcotest.run "xorp_xrl"
    [
      ( "atoms",
        [
          Alcotest.test_case "text form" `Quick test_atom_text;
          Alcotest.test_case "text roundtrip" `Quick test_atom_text_roundtrip;
          Alcotest.test_case "rejects junk" `Quick test_atom_rejects;
          Alcotest.test_case "typed getters" `Quick test_atom_getters;
        ] );
      ( "xrl_syntax",
        [
          Alcotest.test_case "paper example" `Quick test_xrl_text;
          Alcotest.test_case "parse" `Quick test_xrl_parse;
          Alcotest.test_case "parse resolved" `Quick test_xrl_parse_resolved;
          Alcotest.test_case "parse no args" `Quick test_xrl_parse_no_args;
          Alcotest.test_case "rejects junk" `Quick test_xrl_rejects;
          Alcotest.test_case "roundtrip" `Quick test_xrl_text_roundtrip;
        ] );
      ( "wire",
        Alcotest.test_case "rejects garbage" `Quick test_wire_garbage
        :: Alcotest.test_case "batches do not nest" `Quick
             test_wire_batch_no_nesting
        :: List.map QCheck_alcotest.to_alcotest
             [ prop_atom_text_roundtrip; prop_xrl_text_roundtrip_with_args;
               prop_wire_request_roundtrip; prop_wire_reply_roundtrip;
               prop_wire_batch_roundtrip_and_truncation ] );
      ( "finder",
        [
          Alcotest.test_case "register and resolve" `Quick
            test_finder_register_resolve;
          Alcotest.test_case "resolve failures" `Quick
            test_finder_resolve_failures;
          Alcotest.test_case "sole instance" `Quick test_finder_sole;
          Alcotest.test_case "lifetime events" `Quick
            test_finder_lifetime_events;
          Alcotest.test_case "family preference" `Quick
            test_finder_family_preference;
        ] );
      ( "calls",
        [
          Alcotest.test_case "intra-process" `Quick test_intra_call;
          Alcotest.test_case "tcp" `Quick test_tcp_call;
          Alcotest.test_case "udp" `Quick test_udp_call;
          Alcotest.test_case "tcp pipelining" `Quick test_tcp_pipelining;
          Alcotest.test_case "tcp batching coalesces" `Quick
            test_tcp_batching_coalesces;
          Alcotest.test_case "tcp batching keeps fifo order" `Quick
            test_tcp_batching_fifo_order;
          Alcotest.test_case "tcp batching per-request errors" `Quick
            test_tcp_batching_per_request_errors;
          Alcotest.test_case "batching off sends single frames" `Quick
            test_tcp_batching_off_sends_single_frames;
          Alcotest.test_case "resolve failure surfaces" `Quick
            test_resolve_failure_surfaces;
          Alcotest.test_case "forged key rejected" `Quick test_key_enforcement;
          Alcotest.test_case "shutdown and reincarnation" `Quick
            test_shutdown_invalidates;
          Alcotest.test_case "deferred reply" `Quick test_deferred_reply;
        ] );
    ]
