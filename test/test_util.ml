(* Unit and property tests for xorp_util: addresses, prefixes, wire
   buffers, the deterministic RNG and the synthetic route feed. *)

let check = Alcotest.check
let ipv4 = Alcotest.testable Ipv4.pp Ipv4.equal
let ipv4net = Alcotest.testable Ipv4net.pp Ipv4net.equal

(* --- Ipv4 ----------------------------------------------------------- *)

let test_ipv4_parse () =
  check ipv4 "dotted quad" (Ipv4.of_octets 128 16 32 1)
    (Ipv4.of_string_exn "128.16.32.1");
  check ipv4 "zero" Ipv4.zero (Ipv4.of_string_exn "0.0.0.0");
  check ipv4 "broadcast" Ipv4.broadcast (Ipv4.of_string_exn "255.255.255.255")

let test_ipv4_parse_rejects () =
  let bad = [ ""; "1.2.3"; "1.2.3.4.5"; "256.1.1.1"; "1.2.3.4 "; " 1.2.3.4";
              "1..2.3"; "a.b.c.d"; "1.2.3.4/8"; "01.2.3.4567" ] in
  List.iter
    (fun s ->
       check Alcotest.bool (Printf.sprintf "reject %S" s) true
         (Ipv4.of_string s = None))
    bad

let test_ipv4_roundtrip () =
  let rng = Rng.create 1 in
  for _ = 1 to 1000 do
    let a = Ipv4.of_int (Rng.int rng 0x40000000 * 4 + Rng.int rng 4) in
    check ipv4 "to_string/of_string roundtrip"
      a (Ipv4.of_string_exn (Ipv4.to_string a))
  done

let test_ipv4_bits () =
  let a = Ipv4.of_string_exn "128.0.0.1" in
  check Alcotest.bool "msb set" true (Ipv4.bit a 0);
  check Alcotest.bool "bit 1 clear" false (Ipv4.bit a 1);
  check Alcotest.bool "lsb set" true (Ipv4.bit a 31);
  check ipv4 "mask 0" Ipv4.zero (Ipv4.mask_of_len 0);
  check ipv4 "mask 32" Ipv4.broadcast (Ipv4.mask_of_len 32);
  check ipv4 "mask 8" (Ipv4.of_octets 255 0 0 0) (Ipv4.mask_of_len 8);
  check ipv4 "mask 17" (Ipv4.of_octets 255 255 128 0) (Ipv4.mask_of_len 17)

let test_ipv4_succ_wraps () =
  check ipv4 "succ wraps" Ipv4.zero (Ipv4.succ Ipv4.broadcast);
  check ipv4 "succ carries"
    (Ipv4.of_string_exn "10.1.0.0")
    (Ipv4.succ (Ipv4.of_string_exn "10.0.255.255"))

let test_ipv4_classes () =
  check Alcotest.bool "multicast" true
    (Ipv4.is_multicast (Ipv4.of_string_exn "224.0.0.9"));
  check Alcotest.bool "not multicast" false
    (Ipv4.is_multicast (Ipv4.of_string_exn "192.0.0.9"));
  check Alcotest.bool "loopback" true
    (Ipv4.is_loopback (Ipv4.of_string_exn "127.0.0.1"))

(* --- Ipv4net -------------------------------------------------------- *)

let net = Ipv4net.of_string_exn

let test_net_canonical () =
  check ipv4net "host bits dropped" (net "10.1.0.0/16") (net "10.1.2.3/16");
  check Alcotest.int "len" 16 (Ipv4net.prefix_len (net "10.1.2.3/16"));
  check ipv4net "bare addr is /32" (net "1.2.3.4/32") (net "1.2.3.4")

let test_net_contains () =
  check Alcotest.bool "contains addr" true
    (Ipv4net.contains_addr (net "128.16.0.0/18") (Ipv4.of_string_exn "128.16.32.1"));
  check Alcotest.bool "excludes addr" false
    (Ipv4net.contains_addr (net "128.16.0.0/18") (Ipv4.of_string_exn "128.16.160.1"));
  check Alcotest.bool "nested" true
    (Ipv4net.contains (net "128.16.0.0/16") (net "128.16.192.0/18"));
  check Alcotest.bool "not nested" false
    (Ipv4net.contains (net "128.16.192.0/18") (net "128.16.0.0/16"));
  check Alcotest.bool "self" true
    (Ipv4net.contains (net "10.0.0.0/8") (net "10.0.0.0/8"))

let test_net_split_parent () =
  (match Ipv4net.split (net "128.16.128.0/17") with
   | Some (l, r) ->
     check ipv4net "left half" (net "128.16.128.0/18") l;
     check ipv4net "right half" (net "128.16.192.0/18") r
   | None -> Alcotest.fail "split /17 gave None");
  check Alcotest.bool "no split of /32" true (Ipv4net.split (net "1.2.3.4/32") = None);
  (match Ipv4net.parent (net "128.16.192.0/18") with
   | Some p -> check ipv4net "parent" (net "128.16.128.0/17") p
   | None -> Alcotest.fail "parent of /18 gave None");
  check Alcotest.bool "no parent of /0" true (Ipv4net.parent Ipv4net.default = None)

let test_net_last_addr () =
  check ipv4 "last addr"
    (Ipv4.of_string_exn "128.16.63.255")
    (Ipv4net.last_addr (net "128.16.0.0/18"))

let test_net_overlaps () =
  check Alcotest.bool "nested overlap" true
    (Ipv4net.overlaps (net "10.0.0.0/8") (net "10.1.0.0/16"));
  check Alcotest.bool "reverse too" true
    (Ipv4net.overlaps (net "10.1.0.0/16") (net "10.0.0.0/8"));
  check Alcotest.bool "disjoint" false
    (Ipv4net.overlaps (net "10.0.0.0/16") (net "10.1.0.0/16"));
  check Alcotest.bool "self" true
    (Ipv4net.overlaps (net "10.0.0.0/8") (net "10.0.0.0/8"))

(* --- Asn ------------------------------------------------------------ *)

let test_asn () =
  check Alcotest.int "roundtrip" 65001 (Asn.to_int (Asn.of_int 65001));
  check Alcotest.int "as_trans" 23456 (Asn.to_int Asn.as_trans);
  check Alcotest.bool "4-byte" true (Asn.is_4byte (Asn.of_int 70000));
  check Alcotest.bool "2-byte" false (Asn.is_4byte (Asn.of_int 65535));
  check Alcotest.bool "private 16-bit" true (Asn.is_private (Asn.of_int 64512));
  check Alcotest.bool "private 32-bit" true
    (Asn.is_private (Asn.of_int 4200000000));
  check Alcotest.bool "public" false (Asn.is_private (Asn.of_int 3356));
  check Alcotest.bool "of_string ok" true (Asn.of_string "1777" <> None);
  check Alcotest.bool "of_string range" true (Asn.of_string "4294967296" = None);
  check Alcotest.bool "of_string junk" true (Asn.of_string "banana" = None);
  (try
     ignore (Asn.of_int (-1));
     Alcotest.fail "negative accepted"
   with Invalid_argument _ -> ());
  check Alcotest.string "to_string" "70000" (Asn.to_string (Asn.of_int 70000))

(* --- Wire ----------------------------------------------------------- *)

let test_wire_roundtrip () =
  let w = Wire.W.create () in
  Wire.W.u8 w 0xAB;
  Wire.W.u16 w 0xCDEF;
  Wire.W.u32 w 0xDEADBEEF;
  Wire.W.bytes w "hello";
  Wire.W.ipv4 w (Ipv4.of_string_exn "10.0.0.1");
  let r = Wire.R.of_string (Wire.W.contents w) in
  check Alcotest.int "u8" 0xAB (Wire.R.u8 r);
  check Alcotest.int "u16" 0xCDEF (Wire.R.u16 r);
  check Alcotest.int "u32" 0xDEADBEEF (Wire.R.u32 r);
  check Alcotest.string "bytes" "hello" (Wire.R.bytes r 5);
  check ipv4 "ipv4" (Ipv4.of_string_exn "10.0.0.1") (Wire.R.ipv4 r);
  check Alcotest.bool "eof" true (Wire.R.eof r)

let test_wire_truncated () =
  let r = Wire.R.of_string "\x01\x02" in
  ignore (Wire.R.u8 r);
  Alcotest.check_raises "u32 past end" Wire.Truncated (fun () ->
      ignore (Wire.R.u32 r))

let test_wire_patch () =
  let w = Wire.W.create () in
  Wire.W.u16 w 0;
  Wire.W.bytes w "abc";
  Wire.W.patch_u16 w 0 (Wire.W.length w);
  let r = Wire.R.of_string (Wire.W.contents w) in
  check Alcotest.int "patched length" 5 (Wire.R.u16 r)

(* Regression: patching a reserved slot must produce byte-for-byte the
   output of streaming the final value directly — the old Buffer-based
   writer rebuilt the whole buffer on patch (O(n) and easy to get
   wrong); the Bytes writer patches in place. *)
let test_wire_patch_equals_streamed () =
  let patched = Wire.W.create () in
  Wire.W.u8 patched 0x42;
  Wire.W.u16 patched 0;
  Wire.W.bytes patched "payload";
  Wire.W.u32 patched 0;
  Wire.W.bytes patched "tail";
  Wire.W.patch_u16 patched 1 0xBEEF;
  Wire.W.patch_u32 patched 10 0xCAFEBABE;
  let streamed = Wire.W.create () in
  Wire.W.u8 streamed 0x42;
  Wire.W.u16 streamed 0xBEEF;
  Wire.W.bytes streamed "payload";
  Wire.W.u32 streamed 0xCAFEBABE;
  Wire.W.bytes streamed "tail";
  check Alcotest.string "patched = streamed"
    (Wire.W.contents streamed) (Wire.W.contents patched);
  (* Patching must not disturb growth: keep writing after the patch. *)
  Wire.W.bytes patched (String.make 300 'x');
  Wire.W.bytes streamed (String.make 300 'x');
  check Alcotest.string "after growth"
    (Wire.W.contents streamed) (Wire.W.contents patched)

let test_wire_patch_bounds () =
  let w = Wire.W.create () in
  Wire.W.u16 w 0;
  (try
     Wire.W.patch_u16 w 1 7;
     Alcotest.fail "patch past end accepted"
   with Invalid_argument _ -> ());
  (try
     Wire.W.patch_u32 w 0 7;
     Alcotest.fail "u32 patch into 2 bytes accepted"
   with Invalid_argument _ -> ());
  (try
     Wire.W.patch_u16 w (-1) 7;
     Alcotest.fail "negative offset accepted"
   with Invalid_argument _ -> ())

(* --- Route_pack ------------------------------------------------------ *)

let test_route_pack_roundtrip () =
  let adds =
    [ { Route_pack.net = Ipv4net.of_string_exn "10.0.0.0/8";
        nexthop = Ipv4.of_string_exn "192.168.0.1";
        ifname = "eth0"; protocol = "ebgp"; metric = 100 };
      { Route_pack.net = Ipv4net.of_string_exn "172.16.1.0/24";
        nexthop = Ipv4.of_string_exn "192.168.0.2";
        ifname = ""; protocol = "static"; metric = 0 } ]
  in
  (match Route_pack.unpack_adds (Route_pack.pack_adds adds) with
   | Ok got ->
     check Alcotest.int "add count" 2 (List.length got);
     List.iter2
       (fun (a : Route_pack.add) (b : Route_pack.add) ->
          check Alcotest.string "net" (Ipv4net.to_string a.net)
            (Ipv4net.to_string b.net);
          check ipv4 "nexthop" a.nexthop b.nexthop;
          check Alcotest.string "ifname" a.ifname b.ifname;
          check Alcotest.string "protocol" a.protocol b.protocol;
          check Alcotest.int "metric" a.metric b.metric)
       adds got
   | Error msg -> Alcotest.fail ("unpack_adds: " ^ msg));
  let dels =
    [ Ipv4net.of_string_exn "10.0.0.0/8"; Ipv4net.of_string_exn "0.0.0.0/0" ]
  in
  match Route_pack.unpack_deletes (Route_pack.pack_deletes dels) with
  | Ok got ->
    check
      Alcotest.(list string)
      "deletes"
      (List.map Ipv4net.to_string dels)
      (List.map Ipv4net.to_string got)
  | Error msg -> Alcotest.fail ("unpack_deletes: " ^ msg)

let test_route_pack_rejects_junk () =
  (match Route_pack.unpack_adds "xx" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "short input accepted");
  let good = Route_pack.pack_deletes [ Ipv4net.of_string_exn "10.0.0.0/8" ] in
  (match Route_pack.unpack_deletes (good ^ "z") with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "trailing bytes accepted");
  (* Absurd declared count must be rejected before allocation. *)
  let w = Wire.W.create () in
  Wire.W.u32 w 0xFFFFFFF;
  match Route_pack.unpack_adds (Wire.W.contents w) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "absurd count accepted"

let test_wire_sub () =
  let w = Wire.W.create () in
  Wire.W.bytes w "abcdef";
  let r = Wire.R.of_string (Wire.W.contents w) in
  let inner = Wire.R.sub r 4 in
  check Alcotest.string "inner reads its scope" "abcd" (Wire.R.bytes inner 4);
  Alcotest.check_raises "inner is bounded" Wire.Truncated (fun () ->
      ignore (Wire.R.u8 inner));
  check Alcotest.string "outer continues after sub" "ef" (Wire.R.bytes r 2)

(* --- Rng ------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create 99 and b = Rng.create 99 in
  for _ = 1 to 100 do
    check Alcotest.int "same stream" (Rng.int a 1000000) (Rng.int b 1000000)
  done

let test_rng_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 10000 do
    let v = Rng.int rng 7 in
    if v < 0 || v >= 7 then Alcotest.failf "out of bounds: %d" v
  done

let test_rng_bytes () =
  let rng = Rng.create 5 in
  check Alcotest.int "length" 16 (String.length (Rng.bytes rng 16));
  let rng2 = Rng.create 5 in
  check Alcotest.string "deterministic" (Rng.bytes rng2 16)
    (Rng.bytes (Rng.create 5) 16)

(* --- Feed ----------------------------------------------------------- *)

let test_feed_unique_prefixes () =
  let feed = Feed.generate ~seed:1 20000 in
  let tbl = Hashtbl.create 40000 in
  Array.iter
    (fun (e : Feed.entry) ->
       if Hashtbl.mem tbl e.net then
         Alcotest.failf "duplicate prefix %s" (Ipv4net.to_string e.net);
       Hashtbl.add tbl e.net ())
    feed;
  check Alcotest.int "count" 20000 (Array.length feed)

let test_feed_deterministic () =
  let a = Feed.generate ~seed:7 500 and b = Feed.generate ~seed:7 500 in
  Array.iteri
    (fun i (e : Feed.entry) ->
       check ipv4net "same prefix" e.net b.(i).Feed.net)
    a

let test_feed_shape () =
  let feed = Feed.generate ~seed:2 50000 in
  let count24 =
    Array.fold_left
      (fun acc (e : Feed.entry) ->
         if Ipv4net.prefix_len e.net = 24 then acc + 1 else acc)
      0 feed
  in
  (* /24s should dominate: roughly 55% by construction. *)
  if count24 < 25000 || count24 > 32000 then
    Alcotest.failf "/24 share off: %d of 50000" count24;
  Array.iter
    (fun (e : Feed.entry) ->
       if e.Feed.as_path = [] then Alcotest.fail "empty AS path";
       let l = Ipv4net.prefix_len e.Feed.net in
       if l < 8 || l > 24 then Alcotest.failf "odd prefix length %d" l)
    feed;
  (* AS-path hop counts should follow the survey distribution: mean
     close to 3.9 (prepending pushes it slightly up), never absurd. *)
  let total_hops =
    Array.fold_left
      (fun acc (e : Feed.entry) -> acc + List.length e.Feed.as_path)
      0 feed
  in
  let mean = float_of_int total_hops /. float_of_int (Array.length feed) in
  if mean < 3.4 || mean > 4.6 then
    Alcotest.failf "AS path mean hops off: %.2f" mean;
  Array.iter
    (fun (e : Feed.entry) ->
       let l = List.length e.Feed.as_path in
       if l < 1 || l > 13 then Alcotest.failf "odd AS path length %d" l)
    feed

let test_feed_nexthops () =
  let feed = Feed.generate ~seed:3 1000 in
  let nhs = Feed.nexthops feed in
  check Alcotest.bool "a few distinct nexthops" true (List.length nhs > 1);
  let sorted = List.sort Ipv4.compare nhs in
  check (Alcotest.list ipv4) "sorted" sorted nhs

(* --- qcheck properties ---------------------------------------------- *)

let arb_addr =
  QCheck.map
    (fun i -> Ipv4.of_int (i land 0xFFFF_FFFF))
    QCheck.(int_bound 0x3FFFFFFF)

let arb_net =
  QCheck.map
    (fun (i, len) -> Ipv4net.make (Ipv4.of_int (i * 7919)) (len mod 33))
    QCheck.(pair (int_bound 0x3FFFFFFF) (int_bound 32))

let prop_ipv4_roundtrip =
  QCheck.Test.make ~name:"ipv4 text roundtrip" ~count:500 arb_addr (fun a ->
      Ipv4.equal a (Ipv4.of_string_exn (Ipv4.to_string a)))

let prop_net_roundtrip =
  QCheck.Test.make ~name:"ipv4net text roundtrip" ~count:500 arb_net (fun n ->
      Ipv4net.equal n (Ipv4net.of_string_exn (Ipv4net.to_string n)))

let prop_net_contains_first_last =
  QCheck.Test.make ~name:"net contains its first and last address" ~count:500
    arb_net (fun n ->
        Ipv4net.contains_addr n (Ipv4net.first_addr n)
        && Ipv4net.contains_addr n (Ipv4net.last_addr n))

let prop_split_partitions =
  QCheck.Test.make ~name:"split halves partition the parent" ~count:500 arb_net
    (fun n ->
       match Ipv4net.split n with
       | None -> Ipv4net.prefix_len n = 32
       | Some (l, r) ->
         Ipv4net.contains n l && Ipv4net.contains n r
         && (not (Ipv4net.overlaps l r))
         && Ipv4.equal (Ipv4.succ (Ipv4net.last_addr l)) (Ipv4net.first_addr r))

let prop_mask_len =
  QCheck.Test.make ~name:"netmask has prefix_len leading ones" ~count:100
    QCheck.(int_bound 32)
    (fun l ->
       let m = Ipv4.to_int (Ipv4.mask_of_len l) in
       let rec ones i = if i >= 32 then 32
         else if (m lsr (31 - i)) land 1 = 1 then ones (i + 1) else i in
       ones 0 = l)

(* --- Laneq ----------------------------------------------------------- *)

let lq_net i = Ipv4net.make (Ipv4.of_octets 10 i 0 0) 16

let test_laneq_basics () =
  let q : int Laneq.t = Laneq.create () in
  Alcotest.(check bool) "empty" true (Laneq.is_empty q);
  Laneq.push q Laneq.Urgent ~net:(lq_net 1) 1;
  Laneq.push q Laneq.Bulk ~net:(lq_net 2) 2;
  Laneq.push q Laneq.Urgent ~net:(lq_net 3) 3;
  check Alcotest.int "length" 3 (Laneq.length q);
  check Alcotest.int "urgent" 2 (Laneq.urgent_length q);
  check Alcotest.int "bulk" 1 (Laneq.bulk_length q);
  check Alcotest.int "peak" 3 (Laneq.peak_length q);
  (* pop serves urgent before bulk *)
  (match Laneq.pop q with
   | Some (_, 1) -> ()
   | _ -> Alcotest.fail "expected urgent 1 first");
  (match Laneq.pop q with
   | Some (_, 3) -> ()
   | _ -> Alcotest.fail "expected urgent 3 before bulk");
  (match Laneq.pop q with
   | Some (_, 2) -> ()
   | _ -> Alcotest.fail "expected bulk 2 last");
  Alcotest.(check bool) "drained" true (Laneq.is_empty q)

let test_laneq_demotion_guard () =
  let q : int Laneq.t = Laneq.create () in
  Laneq.push q Laneq.Bulk ~net:(lq_net 1) 1;
  (* Same prefix, urgent: must be demoted behind the bulk entry. *)
  Laneq.push q Laneq.Urgent ~net:(lq_net 1) 2;
  (* Different prefix, urgent: stays urgent. *)
  Laneq.push q Laneq.Urgent ~net:(lq_net 2) 3;
  check Alcotest.int "demoted" 1 (Laneq.demoted q);
  check Alcotest.int "urgent holds only net2" 1 (Laneq.urgent_length q);
  (match Laneq.pop_urgent q with
   | Some (_, 3) -> ()
   | _ -> Alcotest.fail "urgent lane should hold 3");
  (match Laneq.pop_bulk q with
   | Some (_, 1) -> ()
   | _ -> Alcotest.fail "bulk order broken");
  (match Laneq.pop_bulk q with
   | Some (_, 2) -> ()
   | _ -> Alcotest.fail "demoted entry must follow its blocker");
  (* Once the prefix's bulk entries drained, urgent pushes stay
     urgent again. *)
  Laneq.push q Laneq.Urgent ~net:(lq_net 1) 4;
  check Alcotest.int "no further demotion" 1 (Laneq.demoted q);
  check Alcotest.int "urgent again" 1 (Laneq.urgent_length q)

let test_laneq_unordered_variant () =
  (* ordered:false drops the guard: the injected-bug mode really does
     let an urgent change overtake same-prefix bulk work. *)
  let q : int Laneq.t = Laneq.create ~ordered:false () in
  Laneq.push q Laneq.Bulk ~net:(lq_net 1) 1;
  Laneq.push q Laneq.Urgent ~net:(lq_net 1) 2;
  check Alcotest.int "nothing demoted" 0 (Laneq.demoted q);
  match Laneq.pop q with
  | Some (_, 2) -> ()
  | _ -> Alcotest.fail "unordered variant should reorder"

let test_laneq_clear () =
  let q : int Laneq.t = Laneq.create () in
  Laneq.push q Laneq.Bulk ~net:(lq_net 1) 1;
  Laneq.push q Laneq.Urgent ~net:(lq_net 1) 2;
  Laneq.clear q;
  Alcotest.(check bool) "cleared" true (Laneq.is_empty q);
  (* bulk_pending must be cleared too, or this would demote. *)
  Laneq.push q Laneq.Urgent ~net:(lq_net 1) 3;
  check Alcotest.int "urgent after clear" 1 (Laneq.urgent_length q)

let () =
  Alcotest.run "xorp_util"
    [
      ( "ipv4",
        [
          Alcotest.test_case "parse" `Quick test_ipv4_parse;
          Alcotest.test_case "parse rejects junk" `Quick test_ipv4_parse_rejects;
          Alcotest.test_case "roundtrip" `Quick test_ipv4_roundtrip;
          Alcotest.test_case "bits and masks" `Quick test_ipv4_bits;
          Alcotest.test_case "succ wraps" `Quick test_ipv4_succ_wraps;
          Alcotest.test_case "address classes" `Quick test_ipv4_classes;
        ] );
      ( "ipv4net",
        [
          Alcotest.test_case "canonical form" `Quick test_net_canonical;
          Alcotest.test_case "containment" `Quick test_net_contains;
          Alcotest.test_case "split and parent" `Quick test_net_split_parent;
          Alcotest.test_case "last addr" `Quick test_net_last_addr;
          Alcotest.test_case "overlaps" `Quick test_net_overlaps;
        ] );
      ("asn", [ Alcotest.test_case "basics" `Quick test_asn ]);
      ( "wire",
        [
          Alcotest.test_case "roundtrip" `Quick test_wire_roundtrip;
          Alcotest.test_case "truncated raises" `Quick test_wire_truncated;
          Alcotest.test_case "patch_u16" `Quick test_wire_patch;
          Alcotest.test_case "patch equals streamed" `Quick
            test_wire_patch_equals_streamed;
          Alcotest.test_case "patch bounds" `Quick test_wire_patch_bounds;
          Alcotest.test_case "sub reader scoping" `Quick test_wire_sub;
        ] );
      ( "route_pack",
        [
          Alcotest.test_case "roundtrip" `Quick test_route_pack_roundtrip;
          Alcotest.test_case "rejects junk" `Quick test_route_pack_rejects_junk;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "bytes" `Quick test_rng_bytes;
        ] );
      ( "feed",
        [
          Alcotest.test_case "unique prefixes" `Quick test_feed_unique_prefixes;
          Alcotest.test_case "deterministic" `Quick test_feed_deterministic;
          Alcotest.test_case "realistic shape" `Quick test_feed_shape;
          Alcotest.test_case "nexthops" `Quick test_feed_nexthops;
        ] );
      ( "laneq",
        [
          Alcotest.test_case "push/pop across lanes" `Quick test_laneq_basics;
          Alcotest.test_case "per-prefix demotion guard" `Quick
            test_laneq_demotion_guard;
          Alcotest.test_case "unordered variant reorders" `Quick
            test_laneq_unordered_variant;
          Alcotest.test_case "clear resets guard" `Quick test_laneq_clear;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_ipv4_roundtrip;
            prop_net_roundtrip;
            prop_net_contains_first_last;
            prop_split_partitions;
            prop_mask_len;
          ] );
    ]
