(* Tests for the umbrella API (Xorp) and the profiler module. *)

let check = Alcotest.check
let addr = Ipv4.of_string_exn
let net = Ipv4net.of_string_exn

let test_version () =
  check Alcotest.bool "semver-ish" true
    (String.length Xorp.version >= 5 && String.contains Xorp.version '.')

let test_make_stack_wiring () =
  let loop = Eventloop.create () in
  let netsim = Netsim.create loop in
  let stack =
    Xorp.make_stack ~interfaces:[ ("eth0", addr "10.0.0.1") ] ~loop
      ~net:netsim ()
  in
  Eventloop.run_until_idle loop;
  (* Connected route present and installed. *)
  (match Rib.lookup_best stack.Xorp.rib (addr "10.0.0.200") with
   | Some r -> check Alcotest.string "connected" "connected" r.Rib_route.protocol
   | None -> Alcotest.fail "no connected route");
  check Alcotest.int "fib" 1 (Fib.size (Fea.fib stack.Xorp.fea));
  check Alcotest.bool "no protocols yet" true
    (stack.Xorp.bgp = None && stack.Xorp.rip = None);
  Xorp.shutdown_stack stack

let test_stack_with_protocols () =
  let loop = Eventloop.create () in
  let netsim = Netsim.create loop in
  let s1 =
    Xorp.make_stack ~interfaces:[ ("eth0", addr "10.0.0.1") ] ~loop
      ~net:netsim ()
  in
  let s2 =
    Xorp.make_stack ~interfaces:[ ("eth0", addr "10.0.0.2") ] ~loop
      ~net:netsim ()
  in
  let bgp1 =
    Xorp.add_bgp s1 ~local_as:65001 ~bgp_id:(addr "1.1.1.1")
      ~peers:
        [ Bgp_process.default_peer_config ~peer_addr:(addr "10.0.0.2")
            ~local_addr:(addr "10.0.0.1") ~peer_as:65002 ]
      ()
  in
  let bgp2 =
    Xorp.add_bgp s2 ~local_as:65002 ~bgp_id:(addr "2.2.2.2")
      ~peers:
        [ Bgp_process.default_peer_config ~peer_addr:(addr "10.0.0.1")
            ~local_addr:(addr "10.0.0.2") ~peer_as:65001 ]
      ()
  in
  Xorp.run_stacks loop ~seconds:5.0;
  check Alcotest.int "session up" 1 (Bgp_process.established_count bgp1);
  Bgp_process.originate bgp1 (net "128.16.0.0/16");
  Xorp.run_stacks loop ~seconds:5.0;
  check Alcotest.int "route across" 1 (Bgp_process.route_count bgp2);
  (* It used the RIB+FEA of stack 2 (nexthop resolves via the connected
     /24). *)
  (match Rib.lookup_best s2.Xorp.rib (addr "128.16.1.1") with
   | Some r -> check Alcotest.string "in s2 rib" "ebgp" r.Rib_route.protocol
   | None -> Alcotest.fail "not in s2's rib");
  Xorp.shutdown_stack s1;
  Xorp.shutdown_stack s2

(* --- profiler unit tests ------------------------------------------------ *)

let test_profiler_basics () =
  let loop = Eventloop.create () in
  let p = Profiler.create loop in
  Profiler.define p "alpha";
  Profiler.define p "beta";
  Profiler.record p "alpha" "before enable"; (* dropped *)
  Profiler.enable p "alpha";
  check Alcotest.bool "alpha on" true (Profiler.enabled p "alpha");
  check Alcotest.bool "beta off" false (Profiler.enabled p "beta");
  Profiler.record p "alpha" "one";
  Profiler.record p "beta" "invisible";
  ignore (Eventloop.after loop 12.5 (fun () -> Profiler.record p "alpha" "two"));
  Eventloop.run loop;
  (match Profiler.records p "alpha" with
   | [ r1; r2 ] ->
     check Alcotest.string "payload 1" "one" r1.Profiler.payload;
     check Alcotest.string "payload 2" "two" r2.Profiler.payload;
     check (Alcotest.float 1e-9) "sim timestamp" 12.5 r2.Profiler.time
   | l -> Alcotest.failf "expected 2 records, got %d" (List.length l));
  check Alcotest.int "beta empty" 0 (List.length (Profiler.records p "beta"));
  (* the paper's textual record format *)
  (match Profiler.to_strings p with
   | s :: _ ->
     check Alcotest.bool "looks like 'alpha <s> <us> one'" true
       (Astring.String.is_prefix ~affix:"alpha 0 000000 one" s)
   | [] -> Alcotest.fail "no rendered records");
  (match Profiler.list_points p with
   | [ ("alpha", true, 2); ("beta", false, 0) ] -> ()
   | l -> Alcotest.failf "unexpected point list (%d entries)" (List.length l));
  Profiler.clear p;
  check Alcotest.int "cleared" 0 (List.length (Profiler.all_records p));
  check Alcotest.bool "enable state survives clear" true
    (Profiler.enabled p "alpha")

let test_profiler_enable_all () =
  let loop = Eventloop.create () in
  let p = Profiler.create loop in
  Profiler.define p "a";
  Profiler.define p "b";
  Profiler.enable_all p;
  Profiler.record p "a" "x";
  Profiler.record p "b" "y";
  check Alcotest.int "both recorded" 2 (List.length (Profiler.all_records p));
  Profiler.disable_all p;
  Profiler.record p "a" "z";
  check Alcotest.int "no more" 2 (List.length (Profiler.all_records p))

let () =
  Alcotest.run "xorp_core"
    [
      ( "umbrella",
        [
          Alcotest.test_case "version" `Quick test_version;
          Alcotest.test_case "make_stack wiring" `Quick test_make_stack_wiring;
          Alcotest.test_case "two stacks with bgp" `Quick
            test_stack_with_protocols;
        ] );
      ( "profiler",
        [
          Alcotest.test_case "basics" `Quick test_profiler_basics;
          Alcotest.test_case "enable_all" `Quick test_profiler_enable_all;
        ] );
    ]
