(* Tests for the declarative topology layer: construction validation,
   the text form (property: parse/print roundtrip over random
   topologies), generator determinism, and the derived address plan. *)

let check = Alcotest.check

let protos_of s =
  match
    match s with
    | "bgp" -> Some Topology.bgp_only
    | "ibgp" -> Some Topology.ibgp_only
    | "rip" -> Some { Topology.no_protos with Topology.rip = true }
    | "ospf" -> Some { Topology.no_protos with Topology.ospf = true }
    | "none" -> Some Topology.no_protos
    | _ -> None
  with
  | Some p -> p
  | None -> assert false

let mk nodes links =
  Topology.make
    ~nodes:
      (List.map
         (fun (name, p) -> { Topology.name; protos = protos_of p })
         nodes)
    ~links

(* --- construction ------------------------------------------------------ *)

let test_make_validates () =
  let bad f = try ignore (f ()); false with Invalid_argument _ -> true in
  check Alcotest.bool "duplicate names rejected" true
    (bad (fun () -> mk [ ("a", "bgp"); ("a", "bgp") ] []));
  check Alcotest.bool "self link rejected" true
    (bad (fun () -> mk [ ("a", "bgp") ] [ ("a", "a") ]));
  check Alcotest.bool "unknown endpoint rejected" true
    (bad (fun () -> mk [ ("a", "bgp") ] [ ("a", "ghost") ]));
  check Alcotest.bool "bad name rejected" true
    (bad (fun () -> mk [ ("a b", "bgp") ] []))

let test_links_normalised () =
  (* Reversed and duplicate declarations collapse to one canonical
     link. *)
  let t =
    mk [ ("a", "bgp"); ("b", "bgp") ] [ ("b", "a"); ("a", "b"); ("a", "b") ]
  in
  check Alcotest.int "one link" 1 (List.length t.Topology.links);
  check Alcotest.bool "has (a,b)" true (Topology.has_link t ("a", "b"));
  check Alcotest.bool "has (b,a) too" true (Topology.has_link t ("b", "a"))

let test_drop_node_drops_links () =
  let t = Topology.chain 4 in
  let t' = Topology.drop_node t "r2" in
  check Alcotest.int "three routers left" 3 (Topology.size t');
  check Alcotest.int "only the far link survives" 1
    (List.length t'.Topology.links);
  check Alcotest.bool "r3-r4 intact" true (Topology.has_link t' ("r3", "r4"))

(* --- generators -------------------------------------------------------- *)

let test_generator_shapes () =
  let chain = Topology.chain 5 in
  check Alcotest.int "chain links" 4 (List.length chain.Topology.links);
  let mesh = Topology.ibgp_fullmesh 4 in
  check Alcotest.int "fullmesh links" 6 (List.length mesh.Topology.links);
  List.iter
    (fun n ->
      check Alcotest.bool ("ibgp on " ^ n.Topology.name) true
        (n.Topology.protos.Topology.bgp = Topology.B_ibgp))
    mesh.Topology.nodes;
  let grid = Topology.grid 3 4 in
  check Alcotest.int "grid routers" 12 (Topology.size grid);
  (* rows*(cols-1) + (rows-1)*cols *)
  check Alcotest.int "grid links" 17 (List.length grid.Topology.links);
  let mixed = Topology.mixed 6 in
  check Alcotest.bool "mixed has rip somewhere" true
    (List.exists (fun n -> n.Topology.protos.Topology.rip) mixed.Topology.nodes);
  check Alcotest.bool "mixed has ospf somewhere" true
    (List.exists
       (fun n -> n.Topology.protos.Topology.ospf)
       mixed.Topology.nodes)

let test_generate_deterministic () =
  for seed = 0 to 49 do
    let a = Topology.generate ~seed and b = Topology.generate ~seed in
    if not (Topology.equal a b) then
      Alcotest.failf "seed %d: generate not deterministic" seed;
    check Alcotest.string
      (Printf.sprintf "seed %d byte-identical text" seed)
      (Topology.to_string a) (Topology.to_string b);
    let n = Topology.size a in
    if n < 2 || n > 8 then
      Alcotest.failf "seed %d: %d routers outside the 2-8 family" seed n
  done

let test_text_sugar () =
  match Topology.of_string "topology grid 2x3" with
  | Error e -> Alcotest.failf "sugar rejected: %s" e
  | Ok t ->
    check Alcotest.bool "same as the generator" true
      (Topology.equal t (Topology.grid 2 3))

let test_text_errors () =
  let rejects s =
    match Topology.of_string s with Error _ -> true | Ok _ -> false
  in
  check Alcotest.bool "garbage line" true (rejects "flubber r1");
  check Alcotest.bool "link to nowhere" true
    (rejects "router r1\nlink r1 r9");
  check Alcotest.bool "bad protocol token" true
    (rejects "router r1 protocols=smtp")

(* --- the address plan --------------------------------------------------- *)

let test_addressing_disjoint () =
  (* Across a 100-router, 180-link world: every sim address, origin
     prefix and link subnet is distinct, and no sim address falls
     inside any link subnet (iBGP nexthop resolution depends on
     that). *)
  let seen = Hashtbl.create 512 in
  let claim what s =
    if Hashtbl.mem seen s then Alcotest.failf "%s: %s reused" what s;
    Hashtbl.add seen s ()
  in
  for i = 0 to 99 do
    claim "sim_addr" (Ipv4.to_string (Topology.sim_addr i));
    claim "origin_prefix" (Ipv4net.to_string (Topology.origin_prefix i))
  done;
  for li = 0 to 179 do
    claim "link_subnet" (Ipv4net.to_string (Topology.link_subnet li));
    let a1, a2 = Topology.link_addrs li in
    claim "link_addr" (Ipv4.to_string a1);
    claim "link_addr" (Ipv4.to_string a2);
    check Alcotest.bool "link addrs inside their subnet" true
      (Ipv4net.contains_addr (Topology.link_subnet li) a1
      && Ipv4net.contains_addr (Topology.link_subnet li) a2);
    for i = 0 to 99 do
      if Ipv4net.contains_addr (Topology.link_subnet li) (Topology.sim_addr i) then
        Alcotest.failf "sim_addr %d inside link subnet %d" i li
    done
  done

(* --- properties --------------------------------------------------------- *)

(* Random topologies straight from the constructor (not just the
   seed-indexed family): up to 8 routers, arbitrary protocol mixes,
   arbitrary link sets over them. *)
let gen_topology =
  QCheck.Gen.(
    let* n = int_range 1 8 in
    let names = List.init n (fun i -> Printf.sprintf "n%d" i) in
    let* protos =
      list_repeat n
        (oneofl
           [ Topology.bgp_only; Topology.ibgp_only; Topology.no_protos;
             { Topology.no_protos with Topology.rip = true };
             { Topology.no_protos with Topology.ospf = true };
             { Topology.bgp_only with Topology.rip = true };
             { Topology.ibgp_only with Topology.ospf = true } ])
    in
    let pairs =
      List.concat_map
        (fun a -> List.filter_map (fun b -> if a < b then Some (a, b) else None) names)
        names
    in
    let* links = List.fold_right
      (fun pair acc ->
         let* keep = bool in
         let* acc = acc in
         return (if keep then pair :: acc else acc))
      pairs (return [])
    in
    return
      (Topology.make
         ~nodes:
           (List.map2
              (fun name protos -> { Topology.name; protos })
              names protos)
         ~links))

let arb_topology =
  QCheck.make ~print:Topology.to_string gen_topology

let prop_roundtrip =
  QCheck.Test.make ~name:"topology: of_string (to_string t) = Ok t" ~count:300
    arb_topology (fun t ->
      match Topology.of_string (Topology.to_string t) with
      | Ok t' -> Topology.equal t t'
      | Error _ -> false)

let prop_drop_link_shrinks =
  QCheck.Test.make ~name:"topology: drop_link removes exactly that link"
    ~count:200 arb_topology (fun t ->
      match t.Topology.links with
      | [] -> QCheck.assume_fail ()
      | l :: _ ->
        let t' = Topology.drop_link t l in
        (not (Topology.has_link t' l))
        && List.length t'.Topology.links = List.length t.Topology.links - 1
        && Topology.size t' = Topology.size t)

let () =
  Alcotest.run "xorp_topology"
    [
      ( "construction",
        [
          Alcotest.test_case "validation" `Quick test_make_validates;
          Alcotest.test_case "links normalised" `Quick test_links_normalised;
          Alcotest.test_case "drop_node drops its links" `Quick
            test_drop_node_drops_links;
        ] );
      ( "generators",
        [
          Alcotest.test_case "shapes" `Quick test_generator_shapes;
          Alcotest.test_case "generate is deterministic" `Quick
            test_generate_deterministic;
        ] );
      ( "text_form",
        [
          Alcotest.test_case "generator sugar" `Quick test_text_sugar;
          Alcotest.test_case "errors rejected" `Quick test_text_errors;
        ] );
      ( "addressing",
        [ Alcotest.test_case "plan is disjoint" `Quick test_addressing_disjoint ] );
      ( "properties",
        List.map Seeded.qcheck [ prop_roundtrip; prop_drop_link_shrinks ] );
    ]
