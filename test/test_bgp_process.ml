(* End-to-end BGP tests: full processes exchanging real RFC 4271
   messages over the simulated network, with and without the RIB/FEA
   stack underneath. *)

let check = Alcotest.check
let addr = Ipv4.of_string_exn
let net = Ipv4net.of_string_exn

(* A standalone BGP router (no RIB): nexthops assumed resolvable. *)
let standalone_router ~loop ~netsim ~local_as ~bgp_id () =
  let finder = Finder.create () in
  Bgp_process.create ~send_to_rib:false ~nexthop_mode:`Assume_resolvable
    finder loop ~netsim ~local_as ~bgp_id ()

let run_for loop seconds =
  Eventloop.run_until_time loop (Eventloop.now loop +. seconds)

let peering ?import ?export ?damping ?(checking = true) a a_addr b b_addr
    ~as_a ~as_b =
  Bgp_process.add_peer a
    { (Bgp_process.default_peer_config ~peer_addr:(addr b_addr)
         ~local_addr:(addr a_addr) ~peer_as:as_b)
      with Bgp_process.import_policies = Option.value import ~default:[];
           checking_cache = checking };
  Bgp_process.add_peer b
    { (Bgp_process.default_peer_config ~peer_addr:(addr a_addr)
         ~local_addr:(addr b_addr) ~peer_as:as_a)
      with Bgp_process.export_policies = Option.value export ~default:[];
           damping; checking_cache = checking }

let two_routers ?import ?export ?damping () =
  let loop = Eventloop.create () in
  let netsim = Netsim.create loop in
  let a = standalone_router ~loop ~netsim ~local_as:65001 ~bgp_id:(addr "1.1.1.1") () in
  let b = standalone_router ~loop ~netsim ~local_as:65002 ~bgp_id:(addr "2.2.2.2") () in
  peering ?import ?export ?damping a "10.0.0.1" b "10.0.0.2" ~as_a:65001 ~as_b:65002;
  Bgp_process.start a;
  Bgp_process.start b;
  run_for loop 2.0;
  (loop, a, b)

let assert_established what p peer =
  match Bgp_process.peer_state p (addr peer) with
  | Some Peer_fsm.Established -> ()
  | Some st ->
    Alcotest.failf "%s: peer %s in state %s" what peer
      (Peer_fsm.state_to_string st)
  | None -> Alcotest.failf "%s: peer %s unknown" what peer

let no_violations p =
  match Bgp_process.cache_violations p with
  | [] -> ()
  | v :: _ -> Alcotest.failf "consistency violation: %s" v

let test_session_establishment () =
  let _, a, b = two_routers () in
  assert_established "a" a "10.0.0.2";
  assert_established "b" b "10.0.0.1";
  check Alcotest.int "a count" 1 (Bgp_process.established_count a);
  check Alcotest.int "b count" 1 (Bgp_process.established_count b)

let test_route_propagation () =
  let loop, a, b = two_routers () in
  Bgp_process.originate a (net "128.16.0.0/16");
  Bgp_process.originate a (net "172.20.0.0/14");
  run_for loop 1.0;
  check Alcotest.int "b learned both" 2 (Bgp_process.route_count b);
  check Alcotest.int "b ribin holds them" 2
    (Bgp_process.ribin_count b (addr "10.0.0.1"));
  (* a's own table counts its local routes *)
  check Alcotest.int "a has its own" 2 (Bgp_process.route_count a);
  no_violations a;
  no_violations b

let test_withdrawal_propagation () =
  let loop, a, b = two_routers () in
  Bgp_process.originate a (net "128.16.0.0/16");
  run_for loop 1.0;
  check Alcotest.int "learned" 1 (Bgp_process.route_count b);
  Bgp_process.withdraw a (net "128.16.0.0/16");
  run_for loop 1.0;
  check Alcotest.int "withdrawn" 0 (Bgp_process.route_count b);
  no_violations b

let test_routes_learned_before_establishment () =
  (* Routes originated before the session comes up must be dumped to
     the peer on establishment (background winner dump). *)
  let loop = Eventloop.create () in
  let netsim = Netsim.create loop in
  let a = standalone_router ~loop ~netsim ~local_as:65001 ~bgp_id:(addr "1.1.1.1") () in
  let b = standalone_router ~loop ~netsim ~local_as:65002 ~bgp_id:(addr "2.2.2.2") () in
  for i = 0 to 299 do
    Bgp_process.originate a
      (Ipv4net.make (Ipv4.of_octets 130 (i / 200) (i mod 200) 0) 24)
  done;
  peering a "10.0.0.1" b "10.0.0.2" ~as_a:65001 ~as_b:65002;
  Bgp_process.start a;
  Bgp_process.start b;
  run_for loop 5.0;
  check Alcotest.int "full dump received" 300 (Bgp_process.route_count b);
  no_violations a;
  no_violations b

let test_peering_flap_deletion_stage () =
  let loop = Eventloop.create () in
  let netsim = Netsim.create loop in
  let a = standalone_router ~loop ~netsim ~local_as:65001 ~bgp_id:(addr "1.1.1.1") () in
  let b = standalone_router ~loop ~netsim ~local_as:65002 ~bgp_id:(addr "2.2.2.2") () in
  (* Slow deletion so the stage is observable. *)
  Bgp_process.add_peer a
    { (Bgp_process.default_peer_config ~peer_addr:(addr "10.0.0.2")
         ~local_addr:(addr "10.0.0.1") ~peer_as:65002)
      with Bgp_process.checking_cache = true };
  Bgp_process.add_peer b
    { (Bgp_process.default_peer_config ~peer_addr:(addr "10.0.0.1")
         ~local_addr:(addr "10.0.0.2") ~peer_as:65001)
      with Bgp_process.deletion_slice = 10; checking_cache = true };
  Bgp_process.start a;
  Bgp_process.start b;
  run_for loop 2.0;
  for i = 0 to 499 do
    Bgp_process.originate a (Ipv4net.make (Ipv4.of_octets 130 (i / 2) ((i mod 2) * 128) 0) 17)
  done;
  run_for loop 5.0;
  check Alcotest.int "b learned 500" 500 (Bgp_process.route_count b);
  (* Kill the session from a's side: b sees it drop and spawns a
     deletion stage; a redials and the session comes back. *)
  Bgp_process.remove_peer a (addr "10.0.0.2");
  (* Run just until the down event spawns the deletion stage, so we can
     observe it mid-flight (background slices drain fast in sim time). *)
  Eventloop.run
    ~until:(fun () -> Bgp_process.deletion_stages b (addr "10.0.0.1") = 1)
    loop;
  check Alcotest.bool "b session dropped" true
    (Bgp_process.peer_state b (addr "10.0.0.1") <> Some Peer_fsm.Established);
  check Alcotest.int "deletion stage spawned" 1
    (Bgp_process.deletion_stages b (addr "10.0.0.1"));
  check Alcotest.int "ribin instantly empty" 0
    (Bgp_process.ribin_count b (addr "10.0.0.1"));
  (* a reappears as a freshly configured peer before deletion ends. *)
  Bgp_process.add_peer a
    { (Bgp_process.default_peer_config ~peer_addr:(addr "10.0.0.2")
         ~local_addr:(addr "10.0.0.1") ~peer_as:65002)
      with Bgp_process.checking_cache = true };
  for i = 0 to 499 do
    Bgp_process.originate a (Ipv4net.make (Ipv4.of_octets 130 (i / 2) ((i mod 2) * 128) 0) 17)
  done;
  run_for loop 30.0;
  check Alcotest.int "relearned through the flap" 500 (Bgp_process.route_count b);
  check Alcotest.int "deletion stages all unplumbed" 0
    (Bgp_process.deletion_stages b (addr "10.0.0.1"));
  no_violations b

let test_silent_partition_hold_timer_recovery () =
  (* Cut the wire without any close notification: only the hold timers
     can notice. Both sides must tear down, flush via a deletion stage,
     redial, and reconverge. *)
  let loop = Eventloop.create () in
  let netsim = Netsim.create loop in
  let a = standalone_router ~loop ~netsim ~local_as:65001 ~bgp_id:(addr "1.1.1.1") () in
  let b = standalone_router ~loop ~netsim ~local_as:65002 ~bgp_id:(addr "2.2.2.2") () in
  let short cfg = { cfg with Bgp_process.hold_time = 9.0 } in
  Bgp_process.add_peer a
    (short
       (Bgp_process.default_peer_config ~peer_addr:(addr "10.0.0.2")
          ~local_addr:(addr "10.0.0.1") ~peer_as:65002));
  Bgp_process.add_peer b
    (short
       (Bgp_process.default_peer_config ~peer_addr:(addr "10.0.0.1")
          ~local_addr:(addr "10.0.0.2") ~peer_as:65001));
  Bgp_process.start a;
  Bgp_process.start b;
  run_for loop 2.0;
  Bgp_process.originate a (net "128.16.0.0/16");
  run_for loop 2.0;
  check Alcotest.int "converged" 1 (Bgp_process.route_count b);
  (* Silent cut. *)
  check Alcotest.bool "severed" true
    (Bgp_process.sever_session a (addr "10.0.0.2"));
  (* Within ~hold time both sides notice; b flushes. *)
  Eventloop.run
    ~until:(fun () ->
        Bgp_process.peer_state b (addr "10.0.0.1") <> Some Peer_fsm.Established)
    loop;
  check Alcotest.bool "detected within hold + slack" true
    (Eventloop.now loop < 25.0);
  (* And recovery: the dialer retries; everything comes back. *)
  Eventloop.run
    ~until:(fun () -> Bgp_process.route_count b = 1 && Eventloop.now loop > 60.0)
    loop;
  check Alcotest.int "reconverged after partition" 1 (Bgp_process.route_count b);
  check Alcotest.int "sessions re-established" 1
    (Bgp_process.established_count b);
  no_violations b

let test_three_router_transit () =
  let loop = Eventloop.create () in
  let netsim = Netsim.create loop in
  let a = standalone_router ~loop ~netsim ~local_as:65001 ~bgp_id:(addr "1.1.1.1") () in
  let b = standalone_router ~loop ~netsim ~local_as:65002 ~bgp_id:(addr "2.2.2.2") () in
  let c = standalone_router ~loop ~netsim ~local_as:65003 ~bgp_id:(addr "3.3.3.3") () in
  peering a "10.0.1.1" b "10.0.1.2" ~as_a:65001 ~as_b:65002;
  peering b "10.0.2.2" c "10.0.2.3" ~as_a:65002 ~as_b:65003;
  Bgp_process.start a;
  Bgp_process.start b;
  Bgp_process.start c;
  run_for loop 3.0;
  Bgp_process.originate a (net "128.16.0.0/16");
  run_for loop 2.0;
  check Alcotest.int "b learned" 1 (Bgp_process.route_count b);
  check Alcotest.int "c learned through transit" 1 (Bgp_process.route_count c);
  no_violations a;
  no_violations b;
  no_violations c

let test_import_policy_applied () =
  let reject_10 =
    Result.get_ok
      (Policy.compile
         "load network\npush.net 10.0.0.0/8\nwithin\njfalse keep\nreject\nlabel keep")
  in
  let loop, a, b = two_routers ~import:[] () in
  ignore a;
  ignore b;
  ignore loop;
  (* set the import policy on b's side dynamically *)
  let ok = Bgp_process.set_import_policies b (addr "10.0.0.1") [ reject_10 ] in
  check Alcotest.bool "policy installed" true ok;
  Bgp_process.originate a (net "10.5.0.0/16");
  Bgp_process.originate a (net "128.16.0.0/16");
  run_for loop 2.0;
  check Alcotest.int "one filtered, one learned" 1 (Bgp_process.route_count b)

let test_policy_change_refilters () =
  let loop, a, b = two_routers () in
  Bgp_process.originate a (net "10.5.0.0/16");
  Bgp_process.originate a (net "128.16.0.0/16");
  run_for loop 2.0;
  check Alcotest.int "both learned" 2 (Bgp_process.route_count b);
  let reject_10 =
    Result.get_ok
      (Policy.compile
         "load network\npush.net 10.0.0.0/8\nwithin\njfalse keep\nreject\nlabel keep")
  in
  ignore (Bgp_process.set_import_policies b (addr "10.0.0.1") [ reject_10 ]);
  run_for loop 2.0;
  check Alcotest.int "refilter withdrew 10/8 routes" 1
    (Bgp_process.route_count b);
  no_violations b

(* --- full stack: BGP + RIB + FEA on the receiving router --------------- *)

let full_stack_router ~loop ~netsim ~local_as ~bgp_id () =
  let finder = Finder.create () in
  let fea = Fea.create finder loop () in
  let rib = Rib.create finder loop () in
  let bgp =
    Bgp_process.create ~send_to_rib:true ~nexthop_mode:`Rib finder loop
      ~netsim ~local_as ~bgp_id ()
  in
  (finder, fea, rib, bgp)

let test_deletion_stage_readd_race_full_stack () =
  (* §5.1.2: after a peering loss the PeerIn's table is handed to a
     background deletion stage. If the peering comes back and the same
     prefixes are re-advertised while that stage is still draining, the
     stale withdrawals race the fresh adds all the way down the
     pipeline. None of the three tables — BGP winners, RIB, FEA FIB —
     may lose a fresh route to a stale delete. *)
  let loop = Eventloop.create () in
  let netsim = Netsim.create loop in
  let a = standalone_router ~loop ~netsim ~local_as:65001 ~bgp_id:(addr "1.1.1.1") () in
  let _, fea, rib, b =
    full_stack_router ~loop ~netsim ~local_as:65002 ~bgp_id:(addr "2.2.2.2") ()
  in
  Result.get_ok
    (Rib.add_route rib ~protocol:"connected" ~net:(net "10.0.0.0/24")
       ~nexthop:Ipv4.zero ());
  Bgp_process.add_peer a
    { (Bgp_process.default_peer_config ~peer_addr:(addr "10.0.0.2")
         ~local_addr:(addr "10.0.0.1") ~peer_as:65002)
      with Bgp_process.checking_cache = true };
  (* Tiny deletion slice so the stage drains slowly enough to overlap
     the re-established session's route dump. *)
  Bgp_process.add_peer b
    { (Bgp_process.default_peer_config ~peer_addr:(addr "10.0.0.1")
         ~local_addr:(addr "10.0.0.2") ~peer_as:65001)
      with Bgp_process.deletion_slice = 7; checking_cache = true };
  Bgp_process.start a;
  Bgp_process.start b;
  run_for loop 2.0;
  let nets =
    List.init 300 (fun i ->
        Ipv4net.make (Ipv4.of_octets 130 (i / 250) (i mod 250) 0) 24)
  in
  List.iter (Bgp_process.originate a) nets;
  run_for loop 5.0;
  check Alcotest.int "all routes reached BGP" 300 (Bgp_process.route_count b);
  check Alcotest.bool "a sample reached the FIB" true
    (Fib.lookup (Fea.fib fea) (addr "130.0.17.1") <> None);
  (* Drop the peering and stop as soon as the stage is spawned. *)
  Bgp_process.remove_peer a (addr "10.0.0.2");
  Eventloop.run
    ~until:(fun () -> Bgp_process.deletion_stages b (addr "10.0.0.1") = 1)
    loop;
  check Alcotest.int "deletion stage mid-flight" 1
    (Bgp_process.deletion_stages b (addr "10.0.0.1"));
  (* The peer reappears and re-advertises the very same prefixes while
     the stage still holds their stale twins. *)
  Bgp_process.add_peer a
    { (Bgp_process.default_peer_config ~peer_addr:(addr "10.0.0.2")
         ~local_addr:(addr "10.0.0.1") ~peer_as:65002)
      with Bgp_process.checking_cache = true };
  List.iter (Bgp_process.originate a) nets;
  run_for loop 40.0;
  check Alcotest.int "deletion stages drained" 0
    (Bgp_process.deletion_stages b (addr "10.0.0.1"));
  check Alcotest.int "bgp relearned all" 300 (Bgp_process.route_count b);
  no_violations b;
  (* Verify every prefix survived in the RIB and in the FEA FIB, with
     the fresh session's nexthop. *)
  List.iter
    (fun n ->
       (match Rib.lookup_best rib (Ipv4net.network n) with
        | Some r ->
          if r.Rib_route.protocol <> "ebgp" then
            Alcotest.failf "%s: RIB winner is %s" (Ipv4net.to_string n)
              r.Rib_route.protocol
        | None -> Alcotest.failf "%s: missing from RIB" (Ipv4net.to_string n));
       match Fib.get (Fea.fib fea) n with
       | Some e ->
         if Ipv4.to_string e.Fib.nexthop <> "10.0.0.1" then
           Alcotest.failf "%s: FIB nexthop %s" (Ipv4net.to_string n)
             (Ipv4.to_string e.Fib.nexthop)
       | None -> Alcotest.failf "%s: missing from FIB" (Ipv4net.to_string n))
    nets;
  (* And no stale extras: exactly the 300 BGP entries remain. *)
  let bgp_fib_entries =
    List.length
      (List.filter
         (fun e -> e.Fib.protocol = "ebgp")
         (Fib.entries (Fea.fib fea)))
  in
  check Alcotest.int "no stale FIB entries" 300 bgp_fib_entries

let test_full_stack_to_fib () =
  let loop = Eventloop.create () in
  let netsim = Netsim.create loop in
  let a = standalone_router ~loop ~netsim ~local_as:65001 ~bgp_id:(addr "1.1.1.1") () in
  let _, fea, rib, b =
    full_stack_router ~loop ~netsim ~local_as:65002 ~bgp_id:(addr "2.2.2.2") ()
  in
  peering a "10.0.0.1" b "10.0.0.2" ~as_a:65001 ~as_b:65002;
  (* b can reach the peering LAN: the BGP nexthop (10.0.0.1) resolves
     via this connected route. *)
  Result.get_ok
    (Rib.add_route rib ~protocol:"connected" ~net:(net "10.0.0.0/24")
       ~nexthop:Ipv4.zero ());
  Bgp_process.start a;
  Bgp_process.start b;
  run_for loop 2.0;
  Bgp_process.originate a (net "128.16.0.0/16");
  run_for loop 2.0;
  check Alcotest.int "bgp winner" 1 (Bgp_process.route_count b);
  (* The route must have traveled BGP → RIB → FEA. *)
  (match Rib.lookup_best rib (addr "128.16.5.5") with
   | Some r ->
     check Alcotest.string "protocol" "ebgp" r.Rib_route.protocol;
     check Alcotest.string "nexthop is the peer" "10.0.0.1"
       (Ipv4.to_string r.nexthop)
   | None -> Alcotest.fail "not in RIB");
  (match Fib.lookup (Fea.fib fea) (addr "128.16.5.5") with
   | Some e -> check Alcotest.string "in FIB" "ebgp" e.Fib.protocol
   | None -> Alcotest.fail "not in FIB");
  (* Withdrawal cleans up all the way down. *)
  Bgp_process.withdraw a (net "128.16.0.0/16");
  run_for loop 2.0;
  check Alcotest.bool "gone from FIB" true
    (Fib.lookup (Fea.fib fea) (addr "128.16.5.5") = None)

let test_full_stack_nexthop_gating () =
  (* Without a route to the BGP nexthop, the decision process must
     ignore the route; adding an IGP route to the nexthop range
     activates it (via RIB interest registration + invalidation). *)
  let loop = Eventloop.create () in
  let netsim = Netsim.create loop in
  let a = standalone_router ~loop ~netsim ~local_as:65001 ~bgp_id:(addr "1.1.1.1") () in
  let _, fea, rib, b =
    full_stack_router ~loop ~netsim ~local_as:65002 ~bgp_id:(addr "2.2.2.2") ()
  in
  ignore fea;
  peering a "10.0.0.1" b "10.0.0.2" ~as_a:65001 ~as_b:65002;
  Bgp_process.start a;
  Bgp_process.start b;
  run_for loop 2.0;
  Bgp_process.originate a (net "128.16.0.0/16");
  run_for loop 2.0;
  (* Session is up but the nexthop 10.0.0.1 is unroutable on b. *)
  assert_established "b" b "10.0.0.1";
  check Alcotest.int "route not usable" 0 (Bgp_process.route_count b);
  (* Now teach b how to reach the peering LAN. *)
  Result.get_ok
    (Rib.add_route rib ~protocol:"static" ~net:(net "10.0.0.0/24")
       ~nexthop:Ipv4.zero ());
  run_for loop 2.0;
  check Alcotest.int "route became usable" 1 (Bgp_process.route_count b);
  (* And remove it again: the invalidation must deactivate the route. *)
  Result.get_ok (Rib.delete_route rib ~protocol:"static" ~net:(net "10.0.0.0/24"));
  run_for loop 2.0;
  check Alcotest.int "route unusable again" 0 (Bgp_process.route_count b)

let test_redistribution_into_bgp () =
  (* A static route in b's RIB is redistributed into b's BGP and
     advertised to peer a with INCOMPLETE origin — the reverse of the
     usual BGP->RIB flow, closing §3's redistribution loop. *)
  let loop = Eventloop.create () in
  let netsim = Netsim.create loop in
  let a = standalone_router ~loop ~netsim ~local_as:65001 ~bgp_id:(addr "1.1.1.1") () in
  let _, _fea, rib, b =
    full_stack_router ~loop ~netsim ~local_as:65002 ~bgp_id:(addr "2.2.2.2") ()
  in
  peering a "10.0.0.1" b "10.0.0.2" ~as_a:65001 ~as_b:65002;
  Result.get_ok
    (Rib.add_route rib ~protocol:"connected" ~net:(net "10.0.0.0/24")
       ~nexthop:Ipv4.zero ());
  Bgp_process.start a;
  Bgp_process.start b;
  run_for loop 2.0;
  Result.get_ok
    (Rib.add_route rib ~protocol:"static" ~net:(net "203.0.113.0/24")
       ~nexthop:(addr "10.0.0.254") ());
  run_for loop 1.0;
  (* Only static routes cross into BGP. *)
  Bgp_process.subscribe_rib_redistribution b
    ~policy:"load protocol\npush.str static\neq\njfalse no\naccept\nlabel no\nreject";
  run_for loop 3.0;
  check Alcotest.int "a learned the redistributed route" 1
    (Bgp_process.route_count a);
  (* Withdrawal flows too. *)
  Result.get_ok
    (Rib.delete_route rib ~protocol:"static" ~net:(net "203.0.113.0/24"));
  run_for loop 3.0;
  check Alcotest.int "withdrawn at a" 0 (Bgp_process.route_count a)

let test_aggregation_end_to_end () =
  (* b aggregates 100.64.0.0/10 toward... rather: a aggregates what it
     sends to b: many /24s inside 100.64/10 leave a as one aggregate. *)
  let loop = Eventloop.create () in
  let netsim = Netsim.create loop in
  let a = standalone_router ~loop ~netsim ~local_as:65001 ~bgp_id:(addr "1.1.1.1") () in
  let b = standalone_router ~loop ~netsim ~local_as:65002 ~bgp_id:(addr "2.2.2.2") () in
  Bgp_process.add_peer a
    { (Bgp_process.default_peer_config ~peer_addr:(addr "10.0.0.2")
         ~local_addr:(addr "10.0.0.1") ~peer_as:65002)
      with Bgp_process.aggregates =
             [ { Bgp_aggregation.agg_net = net "100.64.0.0/10";
                 suppress_specifics = true } ] };
  Bgp_process.add_peer b
    (Bgp_process.default_peer_config ~peer_addr:(addr "10.0.0.1")
       ~local_addr:(addr "10.0.0.2") ~peer_as:65001);
  Bgp_process.start a;
  Bgp_process.start b;
  run_for loop 2.0;
  for i = 0 to 19 do
    Bgp_process.originate a (Ipv4net.make (Ipv4.of_octets 100 64 i 0) 24)
  done;
  Bgp_process.originate a (net "172.16.0.0/16");
  run_for loop 2.0;
  (* a holds 21 routes; b sees the aggregate plus the outsider. *)
  check Alcotest.int "a's own table" 21 (Bgp_process.route_count a);
  check Alcotest.int "b sees 2" 2 (Bgp_process.route_count b);
  check Alcotest.int "b's ribin: aggregate + outsider" 2
    (Bgp_process.ribin_count b (addr "10.0.0.1"));
  (* Withdraw all components: the aggregate goes too. *)
  for i = 0 to 19 do
    Bgp_process.withdraw a (Ipv4net.make (Ipv4.of_octets 100 64 i 0) 24)
  done;
  run_for loop 2.0;
  check Alcotest.int "only the outsider left" 1 (Bgp_process.route_count b)

let test_ibgp_peer_removal_cleans_rib () =
  (* Regression: after permanently removing an IBGP peer, its routes
     must disappear from the RIB — the in-flight withdrawals must be
     attributed to the "ibgp" origin even though the peer is gone. *)
  let loop = Eventloop.create () in
  let netsim = Netsim.create loop in
  (* a is an IBGP neighbour of b (same AS). *)
  let a = standalone_router ~loop ~netsim ~local_as:65002 ~bgp_id:(addr "1.1.1.1") () in
  let _, _fea, rib, b =
    full_stack_router ~loop ~netsim ~local_as:65002 ~bgp_id:(addr "2.2.2.2") ()
  in
  peering a "10.0.0.1" b "10.0.0.2" ~as_a:65002 ~as_b:65002;
  Result.get_ok
    (Rib.add_route rib ~protocol:"connected" ~net:(net "10.0.0.0/24")
       ~nexthop:Ipv4.zero ());
  (* IBGP keeps the originator's nexthop (its bgp-id); resolve it via a
     static "IGP" route, as hot-potato routing requires. *)
  Result.get_ok
    (Rib.add_route rib ~protocol:"static" ~net:(net "1.1.1.0/24")
       ~nexthop:(addr "10.0.0.1") ());
  Bgp_process.start a;
  Bgp_process.start b;
  run_for loop 2.0;
  Bgp_process.originate a (net "128.16.0.0/16");
  run_for loop 2.0;
  (match Rib.lookup_best rib (addr "128.16.1.1") with
   | Some r -> check Alcotest.string "in RIB as ibgp" "ibgp" r.Rib_route.protocol
   | None -> Alcotest.fail "route not in RIB");
  Bgp_process.remove_peer b (addr "10.0.0.1");
  run_for loop 10.0;
  check Alcotest.bool "withdrawn from the RIB" true
    (Rib.lookup_best rib (addr "128.16.1.1") = None)

let test_damping_full_path () =
  let params =
    { Bgp_damping.default_params with
      Bgp_damping.suppress_threshold = 1500.0 }
  in
  let loop, a, b = two_routers ~damping:params () in
  (* Flap the prefix from a twice: b's damping stage suppresses it. *)
  Bgp_process.originate a (net "128.16.0.0/16");
  run_for loop 3.0;
  check Alcotest.int "learned" 1 (Bgp_process.route_count b);
  Bgp_process.withdraw a (net "128.16.0.0/16");
  run_for loop 3.0;
  Bgp_process.originate a (net "128.16.0.0/16");
  run_for loop 3.0;
  Bgp_process.withdraw a (net "128.16.0.0/16");
  run_for loop 3.0;
  Bgp_process.originate a (net "128.16.0.0/16");
  run_for loop 3.0;
  (* Two withdrawals -> penalty 2000 > 1500: suppressed. *)
  check Alcotest.int "suppressed at b" 0 (Bgp_process.route_count b);
  (* After enough decay it reappears without any BGP traffic. *)
  run_for loop 3600.0;
  check Alcotest.int "reused after decay" 1 (Bgp_process.route_count b)

(* --- IBGP semantics -------------------------------------------------- *)

let test_ibgp_no_reflection () =
  (* a, b, c in AS 65001 (full mesh NOT configured: a-b and b-c only);
     d in AS 65002 peered with b. A route learned by b from IBGP peer a
     must reach EBGP peer d but must NOT be re-advertised to IBGP peer
     c (we are not a route reflector). *)
  let loop = Eventloop.create () in
  let netsim = Netsim.create loop in
  let mk as_ id = standalone_router ~loop ~netsim ~local_as:as_ ~bgp_id:(addr id) () in
  let a = mk 65001 "1.1.1.1" in
  let b = mk 65001 "2.2.2.2" in
  let c = mk 65001 "3.3.3.3" in
  let d = mk 65002 "4.4.4.4" in
  peering a "10.0.1.1" b "10.0.1.2" ~as_a:65001 ~as_b:65001;
  peering b "10.0.2.2" c "10.0.2.3" ~as_a:65001 ~as_b:65001;
  peering b "10.0.3.2" d "10.0.3.4" ~as_a:65001 ~as_b:65002;
  List.iter Bgp_process.start [ a; b; c; d ];
  run_for loop 3.0;
  check Alcotest.int "b has 3 sessions" 3 (Bgp_process.established_count b);
  Bgp_process.originate a (net "128.16.0.0/16");
  run_for loop 3.0;
  check Alcotest.int "b learned over ibgp" 1 (Bgp_process.route_count b);
  check Alcotest.int "d learned over ebgp" 1 (Bgp_process.route_count d);
  check Alcotest.int "c did NOT (no reflection)" 0 (Bgp_process.route_count c);
  no_violations b

let test_ibgp_preserves_localpref () =
  (* An import policy on b sets localpref 250; when b re-advertises to
     IBGP peer... b is the only hop: check the winner's attrs at b. *)
  let loop, a, b = two_routers () in
  let set_lp =
    Result.get_ok (Policy.compile "push.u32 250\nstore localpref\naccept")
  in
  ignore (Bgp_process.set_import_policies b (addr "10.0.0.1") [ set_lp ]);
  Bgp_process.originate a (net "128.16.0.0/16");
  run_for loop 2.0;
  check Alcotest.int "learned" 1 (Bgp_process.route_count b);
  no_violations b

let test_bgp_xrl_interface () =
  let loop, a, b = two_routers () in
  ignore b;
  (* Drive a's BGP through its own XRL interface, as the rtrmgr or a
     script would. *)
  let finder_caller = Bgp_process.xrl_router a in
  let call method_name args =
    Xrl_router.call_blocking finder_caller
      (Xrl.make ~target:(Bgp_process.instance_name a) ~interface:"bgp"
         ~method_name args)
  in
  let err, _ =
    call "originate_route" [ Xrl_atom.ipv4net "net" (net "203.0.113.0/24") ]
  in
  check Alcotest.bool "originate ok" true (Xrl_error.is_ok err);
  run_for loop 2.0;
  check Alcotest.int "b learned it" 1 (Bgp_process.route_count b);
  let err, args = call "get_route_count" [] in
  check Alcotest.bool "count ok" true (Xrl_error.is_ok err);
  check Alcotest.int "count" 1 (Xrl_atom.get_u32 args "count");
  let err, args =
    call "get_peer_state" [ Xrl_atom.ipv4 "peer" (addr "10.0.0.2") ]
  in
  check Alcotest.bool "state ok" true (Xrl_error.is_ok err);
  check Alcotest.string "established" "Established"
    (Xrl_atom.get_txt args "state");
  let err, _ =
    call "withdraw_route" [ Xrl_atom.ipv4net "net" (net "203.0.113.0/24") ]
  in
  check Alcotest.bool "withdraw ok" true (Xrl_error.is_ok err);
  run_for loop 2.0;
  check Alcotest.int "withdrawn at b" 0 (Bgp_process.route_count b)

(* --- RIB rebirth resync ---------------------------------------------- *)

let test_rib_rebirth_resync_full_stack () =
  (* The symmetric direction of the RIB's FIB-replay-to-a-reborn-FEA:
     when the RIB itself dies and restarts, BGP must replay its
     post-decision winners into the empty origin tables. 150 routes so
     the replay burst spans more than one bulk flush slice (128), and a
     live withdrawal issued during the replay must land after its
     prefix's replay add (§5.1.2 guard) — the prefix must end up
     absent, not resurrected. *)
  let loop = Eventloop.create () in
  let netsim = Netsim.create loop in
  let a = standalone_router ~loop ~netsim ~local_as:65001 ~bgp_id:(addr "1.1.1.1") () in
  let finder, fea, rib, b =
    full_stack_router ~loop ~netsim ~local_as:65002 ~bgp_id:(addr "2.2.2.2") ()
  in
  peering a "10.0.0.1" b "10.0.0.2" ~as_a:65001 ~as_b:65002;
  Result.get_ok
    (Rib.add_route rib ~protocol:"connected" ~net:(net "10.0.0.0/24")
       ~nexthop:Ipv4.zero ());
  Bgp_process.start a;
  Bgp_process.start b;
  run_for loop 2.0;
  let nets =
    List.init 150 (fun i ->
        Ipv4net.make (Ipv4.of_octets 130 (i / 100) (i mod 100) 0) 24)
  in
  List.iter (Bgp_process.originate a) nets;
  run_for loop 5.0;
  check Alcotest.int "all at b" 150 (Bgp_process.route_count b);
  check Alcotest.int "all in RIB" 150 (Rib.origin_route_count rib "ebgp");
  (* Kill the RIB: Death fires, BGP holds its outbound queue. *)
  Rib.shutdown rib;
  run_for loop 1.0;
  check Alcotest.int "bgp still holds its winners" 150
    (Bgp_process.route_count b);
  (* Rebirth: the new instance's origin tables are empty. Re-add the
     connected route (the rtrmgr's job in a real boot), then race a
     live withdrawal against the replay burst. *)
  let rib' = Rib.create finder loop () in
  Result.get_ok
    (Rib.add_route rib' ~protocol:"connected" ~net:(net "10.0.0.0/24")
       ~nexthop:Ipv4.zero ());
  Bgp_process.withdraw a (List.hd nets);
  run_for loop 10.0;
  check Alcotest.int "bgp converged to 149" 149 (Bgp_process.route_count b);
  check Alcotest.int "reborn RIB origin repopulated" 149
    (Rib.origin_route_count rib' "ebgp");
  check Alcotest.bool "withdrawn prefix stayed dead" true
    (Rib.lookup_best rib' (addr "130.0.0.1") = None);
  (match Rib.lookup_best rib' (addr "130.0.37.1") with
   | Some r -> check Alcotest.string "survivor is ebgp" "ebgp" r.Rib_route.protocol
   | None -> Alcotest.fail "replayed route missing from reborn RIB");
  (* And the route made it back down to the FIB. *)
  check Alcotest.bool "replayed into the FIB" true
    (Fib.lookup (Fea.fib fea) (addr "130.0.37.1") <> None)

let test_rib_call_in_birth_gap_retries () =
  (* Regression for the Finder-birth-gap race class (found for
     FEA-bound calls in the sim harness): a just-registered component
     is resolvable one event-loop turn before its handlers exist, so a
     BGP->RIB call landing in that window gets [No_such_method]. The
     bounded-retry path must absorb it. *)
  let loop = Eventloop.create () in
  let netsim = Netsim.create loop in
  let finder = Finder.create () in
  (* A RIB impostor: registered (resolvable) but with no methods —
     exactly the birth-gap state. Created before BGP so the watcher
     sees a live RIB from the start and no rebirth resync fires; the
     only send under test is the direct subscription below. *)
  let rib_shell = Xrl_router.create finder loop ~class_name:"rib" () in
  let b =
    Bgp_process.create ~send_to_rib:false ~nexthop_mode:`Assume_resolvable
      finder loop ~netsim ~local_as:65001 ~bgp_id:(addr "1.1.1.1") ()
  in
  let got = ref 0 in
  Bgp_process.subscribe_rib_redistribution b ~policy:"accept";
  (* First attempt fails with No_such_method; the handler appears
     inside the retry window (default backoff starts at 50 ms). *)
  ignore
    (Eventloop.after loop 0.2 (fun () ->
         Xrl_router.add_handler rib_shell ~interface:"rib"
           ~method_name:"redist_subscribe" (fun _args reply ->
             incr got;
             reply Xrl_error.Ok_xrl [])));
  run_for loop 5.0;
  check Alcotest.int "subscription retried into the new handler" 1 !got

let () =
  Alcotest.run "xorp_bgp_process"
    [
      ( "sessions",
        [
          Alcotest.test_case "establishment" `Quick test_session_establishment;
          Alcotest.test_case "flap spawns deletion stage" `Quick
            test_peering_flap_deletion_stage;
          Alcotest.test_case "deletion stage vs re-adds, down to the FIB"
            `Quick test_deletion_stage_readd_race_full_stack;
          Alcotest.test_case "silent partition + hold timer" `Quick
            test_silent_partition_hold_timer_recovery;
        ] );
      ( "routes",
        [
          Alcotest.test_case "propagation" `Quick test_route_propagation;
          Alcotest.test_case "withdrawal" `Quick test_withdrawal_propagation;
          Alcotest.test_case "pre-established dump" `Quick
            test_routes_learned_before_establishment;
          Alcotest.test_case "three-router transit" `Quick
            test_three_router_transit;
        ] );
      ( "policy",
        [
          Alcotest.test_case "import filter" `Quick test_import_policy_applied;
          Alcotest.test_case "policy change refilters" `Quick
            test_policy_change_refilters;
        ] );
      ( "ibgp",
        [
          Alcotest.test_case "no ibgp reflection" `Quick test_ibgp_no_reflection;
          Alcotest.test_case "localpref via policy" `Quick
            test_ibgp_preserves_localpref;
          Alcotest.test_case "bgp/1.0 xrl interface" `Quick
            test_bgp_xrl_interface;
        ] );
      ( "full_stack",
        [
          Alcotest.test_case "BGP to FIB" `Quick test_full_stack_to_fib;
          Alcotest.test_case "nexthop gating" `Quick
            test_full_stack_nexthop_gating;
          Alcotest.test_case "damping end to end" `Quick test_damping_full_path;
          Alcotest.test_case "redistribution into BGP" `Quick
            test_redistribution_into_bgp;
          Alcotest.test_case "aggregation end to end" `Quick
            test_aggregation_end_to_end;
          Alcotest.test_case "ibgp peer removal cleans RIB" `Quick
            test_ibgp_peer_removal_cleans_rib;
          Alcotest.test_case "RIB rebirth: winners replayed, live \
                              withdrawal not overtaken" `Quick
            test_rib_rebirth_resync_full_stack;
          Alcotest.test_case "RIB call in the birth gap is retried" `Quick
            test_rib_call_in_birth_gap_retries;
        ] );
    ]
