(* The element-graph data plane: config grammar (QCheck parse/print
   stability + malformed-graph rejection), element runtime semantics,
   and the dataplane/0.1 XRL surface — including inserting an element
   into a running graph without dropping packets. *)

let check = Alcotest.check
let addr = Ipv4.of_string_exn
let net = Ipv4net.of_string_exn

let check_err what affix = function
  | Ok _ -> Alcotest.failf "%s: expected an error" what
  | Error msg ->
    if not (Astring.String.is_infix ~affix msg) then
      Alcotest.failf "%s: error %S does not mention %S" what msg affix

(* --- grammar: random well-formed configs ----------------------------- *)

(* Generates a random valid graph as text, with randomized surface
   syntax (optional [0] ports, chains vs single edges, comments,
   spacing) so the parser is exercised beyond the canonical form. *)
let gen_config : string QCheck.Gen.t =
 fun st ->
  let rint n = Random.State.int st n in
  let decls = Buffer.create 128 in
  let edges = Buffer.create 128 in
  let counter = ref 0 in
  let fresh k =
    incr counter;
    Printf.sprintf "%s%d" k !counter
  in
  let decl name klass args =
    let rendered =
      match args with
      | [] -> if rint 2 = 0 then klass else klass ^ "()"
      | _ -> Printf.sprintf "%s(%s)" klass (String.concat ", " args)
    in
    Buffer.add_string decls
      (Printf.sprintf "%s %s:: %s\n" name (if rint 2 = 0 then "" else " ")
         rendered);
    if rint 6 = 0 then Buffer.add_string decls "# a comment line\n"
  in
  let port p = if p = 0 && rint 2 = 0 then "" else Printf.sprintf "[%d]" p in
  let edge a ap b bp =
    Buffer.add_string edges
      (Printf.sprintf "%s%s %s %s%s\n" a (port ap)
         (if rint 2 = 0 then "->" else " -> ")
         (port bp) b)
  in
  let rec grow src sport depth =
    match if depth <= 0 then rint 2 else rint 6 with
    | 0 ->
      let d = fresh "drop" in
      decl d "Drop" (if rint 2 = 0 then [] else [ "discard" ]);
      edge src sport d 0
    | 1 ->
      let q = fresh "q" and s = fresh "sched" and o = fresh "out" in
      decl q "Queue" [ string_of_int (1 + rint 512) ];
      decl s "Scheduler" [ string_of_int (1 + rint 8) ];
      decl o "ToNetsim" [];
      edge src sport q 0;
      edge q 0 s 0;
      edge s 0 o 0
    | 2 | 3 ->
      let m = fresh "m" in
      let klass =
        match rint 3 with
        | 0 -> "CheckHeader"
        | 1 -> "DecTtl"
        | _ -> "Count"
      in
      decl m klass [];
      edge src sport m 0;
      grow m 0 (depth - 1)
    | 4 ->
      let c = fresh "cls" in
      let k = 1 + rint 3 in
      let args =
        List.init k (fun i ->
            if i = k - 1 && rint 2 = 0 then "-"
            else string_of_int (rint 256))
      in
      decl c "Classify" args;
      edge src sport c 0;
      List.iteri (fun i _ -> grow c i (depth - 1)) args
    | _ ->
      let t = fresh "tee" in
      let k = 2 + rint 2 in
      decl t "Tee" [ string_of_int k ];
      edge src sport t 0;
      for i = 0 to k - 1 do
        grow t i (depth - 1)
      done
  in
  let n_sources = 1 + rint 2 in
  for i = 0 to n_sources - 1 do
    let s = fresh "from" in
    decl s "FromNetsim" [ Printf.sprintf "eth%d" i ];
    grow s 0 (1 + rint 3)
  done;
  Buffer.contents decls ^ "\n" ^ Buffer.contents edges

let prop_parse_print_stable =
  QCheck.Test.make ~name:"parse/print/parse is stable" ~count:300
    (QCheck.make ~print:(fun s -> s) gen_config)
    (fun text ->
      match Dataplane.parse text with
      | Error e -> QCheck.Test.fail_reportf "valid config rejected: %s" e
      | Ok spec -> (
          let printed = Dataplane.print spec in
          match Dataplane.parse printed with
          | Error e ->
            QCheck.Test.fail_reportf "printed config rejected: %s\n%s" e
              printed
          | Ok spec2 ->
            let again = Dataplane.print spec2 in
            if String.equal printed again then true
            else
              QCheck.Test.fail_reportf
                "print not a fixed point:\n--- first\n%s\n--- second\n%s"
                printed again))

(* --- grammar: malformed graphs are rejected usefully ------------------ *)

let reject what affix config =
  check_err what affix (Dataplane.parse config)

let test_malformed_graphs () =
  reject "unconnected output" "connected 0 times"
    "src :: FromNetsim(eth0)\ncnt :: Count\nsrc -> cnt\n";
  reject "unconnected input" "unconnected"
    "src :: FromNetsim(eth0)\nd :: Drop\ncnt :: Count\nsrc -> d\ncnt -> d\n";
  reject "double-connected output" "connected 2 times"
    "src :: FromNetsim(eth0)\na :: Drop\nb :: Drop\nsrc -> a\nsrc -> b\n";
  reject "cycle without a queue" "cycle"
    "src :: FromNetsim(eth0)\na :: Count\nb :: Count\n\
     src -> a\na -> b\nb -> a\n";
  (* Same shape broken by a queue is legal. *)
  (match
     Dataplane.parse
       "src :: FromNetsim(eth0)\na :: Count\nq :: Queue(8)\n\
        s :: Scheduler(2)\nsrc -> a\na -> q\nq -> s\ns -> a\n"
   with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "queue-broken cycle rejected: %s" e);
  reject "queue feeding a map element" "Scheduler"
    "src :: FromNetsim(eth0)\nq :: Queue(8)\ncnt :: Count\nd :: Drop\n\
     src -> q\nq -> cnt\ncnt -> d\n";
  reject "scheduler fed by a map element" "Queue"
    "src :: FromNetsim(eth0)\ns :: Scheduler(2)\nd :: Drop\n\
     src -> s\ns -> d\n";
  reject "unknown class" "unknown element class"
    "src :: FromNetsim(eth0)\nx :: Warp\nsrc -> x\n";
  reject "duplicate name" "declared twice"
    "a :: Count\na :: Count\n";
  reject "undeclared element" "undeclared"
    "src :: FromNetsim(eth0)\nsrc -> ghost\n";
  reject "bad argument" "capacity"
    "src :: FromNetsim(eth0)\nq :: Queue(zero)\nsrc -> q\n";
  reject "out-of-range port" "no output port"
    "src :: FromNetsim(eth0)\na :: Drop\nb :: Drop\n\
     src -> a\nsrc[1] -> b\n";
  reject "edge into a source" "takes no input"
    "s1 :: FromNetsim(eth0)\ns2 :: FromNetsim(eth1)\nd :: Drop\n\
     s1 -> s2\ns2 -> d\n";
  reject "empty graph" "empty" "# nothing here\n";
  reject "dangling arrow" "line 1" "a ->\n"

let test_default_config_canonical () =
  let cfg = Dataplane.default_config ~ifaces:[ "eth0"; "eth1" ] in
  match Dataplane.parse cfg with
  | Error e -> Alcotest.failf "default config rejected: %s" e
  | Ok spec ->
    let printed = Dataplane.print spec in
    (match Dataplane.parse printed with
     | Error e -> Alcotest.failf "printed default rejected: %s" e
     | Ok spec2 ->
       check Alcotest.string "fixed point" printed (Dataplane.print spec2));
    check Alcotest.bool "mentions both sources" true
      (Astring.String.is_infix ~affix:"FromNetsim(eth0)" printed
       && Astring.String.is_infix ~affix:"FromNetsim(eth1)" printed)

(* --- element runtime -------------------------------------------------- *)

let mk_dp ?(ifaces = [ "eth0"; "eth1" ]) () =
  let loop = Eventloop.create () in
  let fib = Fib.create () in
  let sent = ref [] in
  let dp =
    Dataplane.create ~loop
      ~lookup:(fun a ->
        match Fib.lookup fib a with
        | None -> None
        | Some e ->
          Some
            { Dataplane.lr_nexthop = e.Fib.nexthop;
              lr_ifname = e.Fib.ifname;
              lr_connected = String.equal e.Fib.protocol "connected" })
      ~tx:(fun ~ifname ~dst payload -> sent := (ifname, dst, payload) :: !sent)
      ~ifaces ()
  in
  (loop, fib, dp, sent)

let install_exn dp config =
  match Dataplane.install_config dp config with
  | Ok () -> ()
  | Error e -> Alcotest.failf "install failed: %s" e

let inject_exn dp ~ifname pkt =
  match Dataplane.inject dp ~ifname pkt with
  | Ok () -> ()
  | Error e -> Alcotest.failf "inject failed: %s" e

let stat dp name =
  match
    List.find_opt
      (fun s -> String.equal s.Dataplane.st_name name)
      (Dataplane.stats dp)
  with
  | Some s -> s
  | None -> Alcotest.failf "no element %s in stats" name

let add_route fib net_s nh ifname protocol =
  Fib.add fib
    { Fib.net = net net_s; nexthop = addr nh; ifname; protocol }

let test_default_graph_forwards () =
  let loop, fib, dp, sent = mk_dp () in
  install_exn dp (Dataplane.default_config ~ifaces:[ "eth0"; "eth1" ]);
  add_route fib "172.16.0.0/12" "10.1.0.9" "eth1" "static";
  inject_exn dp ~ifname:"eth0"
    (Packet.make ~ttl:64 ~payload:"hello"
       ~src:(addr "10.0.0.7") ~dst:(addr "172.16.5.5") ());
  Eventloop.run_until_idle loop;
  (match !sent with
   | [ (ifname, dst, wire) ] ->
     check Alcotest.string "egress interface" "eth1" ifname;
     check Alcotest.string "sent to the next hop" "10.1.0.9"
       (Ipv4.to_string dst);
     (match Packet.of_wire wire with
      | Ok p ->
        check Alcotest.int "TTL decremented" 63 p.Packet.ttl;
        check Alcotest.string "payload intact" "hello" p.Packet.payload;
        check Alcotest.string "destination intact" "172.16.5.5"
          (Ipv4.to_string p.Packet.dst)
      | Error e -> Alcotest.failf "bad wire form: %s" e)
   | l -> Alcotest.failf "expected 1 transmitted packet, got %d"
            (List.length l));
  (* Counters tell the same story at every stage of the path. *)
  List.iter
    (fun name ->
       check Alcotest.int (name ^ " rx") 1 (stat dp name).Dataplane.st_rx)
    [ "from_eth0"; "cls"; "chk"; "lpm"; "ttl"; "q"; "sched"; "out" ];
  check Alcotest.int "other source idle" 0
    (stat dp "from_eth1").Dataplane.st_rx

let test_drops_counted_per_reason () =
  let loop, fib, dp, sent = mk_dp () in
  install_exn dp (Dataplane.default_config ~ifaces:[ "eth0" ]);
  add_route fib "172.16.0.0/12" "10.1.0.9" "eth1" "static";
  let inject ?(ttl = 64) dst =
    inject_exn dp ~ifname:"eth0"
      (Packet.make ~ttl ~src:(addr "10.0.0.7") ~dst:(addr dst) ())
  in
  inject ~ttl:1 "172.16.5.5" (* dies in DecTtl *);
  inject ~ttl:0 "172.16.5.5" (* dies in CheckHeader *);
  inject "0.0.0.0" (* bad destination *);
  inject "99.9.9.9" (* no route *);
  Eventloop.run_until_idle loop;
  check Alcotest.int "nothing transmitted" 0 (List.length !sent);
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "DecTtl drops" [ ("ttl-expired", 1) ] (stat dp "ttl").Dataplane.st_drops;
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "CheckHeader drops"
    [ ("bad-dst", 1); ("zero-ttl", 1) ]
    (stat dp "chk").Dataplane.st_drops;
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "LpmLookup drops" [ ("no-route", 1) ] (stat dp "lpm").Dataplane.st_drops

let test_classify_and_tee () =
  let loop, _, dp, _ = mk_dp () in
  install_exn dp
    "src :: FromNetsim(eth0)\n\
     cls :: Classify(6, 17, -)\n\
     tcp :: Count\n\
     udp :: Count\n\
     rest :: Count\n\
     tee :: Tee(2)\n\
     d1 :: Drop\nd2 :: Drop\nd3 :: Drop\nd4 :: Drop\n\
     src -> cls\n\
     cls -> tcp -> tee\n\
     cls[1] -> udp -> d2\n\
     cls[2] -> rest -> d3\n\
     tee -> d1\n\
     tee[1] -> d4\n";
  let inject proto =
    inject_exn dp ~ifname:"eth0"
      (Packet.make ~proto ~src:(addr "10.0.0.7") ~dst:(addr "1.2.3.4") ())
  in
  inject 6; inject 6; inject 17; inject 89;
  Eventloop.run_until_idle loop;
  check Alcotest.int "tcp branch" 2 (stat dp "tcp").Dataplane.st_rx;
  check Alcotest.int "udp branch" 1 (stat dp "udp").Dataplane.st_rx;
  check Alcotest.int "wildcard branch" 1 (stat dp "rest").Dataplane.st_rx;
  (* Tee duplicated each tcp packet to both drops. *)
  check Alcotest.int "tee fan-out" 4 (stat dp "tee").Dataplane.st_tx;
  check Alcotest.int "tee copy 1" 2 (stat dp "d1").Dataplane.st_rx;
  check Alcotest.int "tee copy 2" 2 (stat dp "d4").Dataplane.st_rx

let test_queue_overflow_and_drain () =
  let loop, fib, dp, sent = mk_dp () in
  add_route fib "0.0.0.0/0" "10.1.0.9" "eth1" "static";
  install_exn dp
    "src :: FromNetsim(eth0)\n\
     lpm :: LpmLookup\n\
     q :: Queue(2)\n\
     sched :: Scheduler(1)\n\
     out :: ToNetsim\n\
     src -> lpm -> q -> sched -> out\n";
  (* Push five packets without giving the scheduler's deferred event a
     chance to run: the queue holds 2, the rest overflow. *)
  for i = 1 to 5 do
    inject_exn dp ~ifname:"eth0"
      (Packet.make ~payload:(string_of_int i)
         ~src:(addr "10.0.0.7") ~dst:(addr "1.2.3.4") ())
  done;
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "overflow counted" [ ("overflow", 3) ] (stat dp "q").Dataplane.st_drops;
  Eventloop.run_until_idle loop;
  check Alcotest.int "queued packets drained in order" 2
    (List.length !sent);
  (match List.rev !sent with
   | (_, _, w1) :: (_, _, w2) :: _ ->
     let payload w =
       match Packet.of_wire w with
       | Ok p -> p.Packet.payload
       | Error e -> Alcotest.fail e
     in
     check Alcotest.string "FIFO first" "1" (payload w1);
     check Alcotest.string "FIFO second" "2" (payload w2)
   | _ -> Alcotest.fail "expected two transmissions");
  check Alcotest.int "queue tx matches" 2 (stat dp "q").Dataplane.st_tx

let test_connected_route_goes_direct () =
  let loop, fib, dp, sent = mk_dp () in
  install_exn dp (Dataplane.default_config ~ifaces:[ "eth0" ]);
  add_route fib "10.2.0.0/16" "10.2.0.1" "eth1" "connected";
  inject_exn dp ~ifname:"eth0"
    (Packet.make ~src:(addr "10.0.0.7") ~dst:(addr "10.2.0.42") ());
  Eventloop.run_until_idle loop;
  match !sent with
  | [ (_, dst, _) ] ->
    check Alcotest.string "delivered to the destination itself" "10.2.0.42"
      (Ipv4.to_string dst)
  | l -> Alcotest.failf "expected 1 packet, got %d" (List.length l)

let test_install_checks_interfaces () =
  let _, _, dp, _ = mk_dp ~ifaces:[ "eth0" ] () in
  check_err "unknown interface" "no such interface"
    (Dataplane.install_config dp
       "src :: FromNetsim(eth9)\nd :: Drop\nsrc -> d\n");
  check_err "duplicate source" "claim"
    (Dataplane.install_config dp
       "a :: FromNetsim(eth0)\nb :: FromNetsim(eth0)\n\
        d1 :: Drop\nd2 :: Drop\na -> d1\nb -> d2\n");
  (* Failed installs leave no graph behind. *)
  check Alcotest.string "no graph installed" "" (Dataplane.config dp)

let test_runtime_insert_and_remove () =
  let loop, fib, dp, sent = mk_dp () in
  install_exn dp (Dataplane.default_config ~ifaces:[ "eth0" ]);
  add_route fib "0.0.0.0/0" "10.1.0.9" "eth1" "static";
  let send () =
    inject_exn dp ~ifname:"eth0"
      (Packet.make ~src:(addr "10.0.0.7") ~dst:(addr "1.2.3.4") ());
    Eventloop.run_until_idle loop
  in
  send ();
  (match
     Dataplane.insert_element dp ~name:"cnt" ~klass:"Count" ~args:[]
       ~after:"chk" ~port:0
   with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  check Alcotest.bool "insert visible in config" true
    (Astring.String.is_infix ~affix:"cnt :: Count" (Dataplane.config dp));
  send ();
  check Alcotest.int "only post-insert packets counted" 1
    (stat dp "cnt").Dataplane.st_rx;
  check Alcotest.int "both packets transmitted" 2 (List.length !sent);
  (match Dataplane.remove_element dp ~name:"cnt" with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  check Alcotest.bool "removal visible in config" false
    (Astring.String.is_infix ~affix:"cnt" (Dataplane.config dp));
  send ();
  check Alcotest.int "path intact after removal" 3 (List.length !sent);
  (* The pull edge is off limits for push elements. *)
  check_err "insert on queue output" "pull edge"
    (Dataplane.insert_element dp ~name:"x" ~klass:"Count" ~args:[]
       ~after:"q" ~port:0);
  check_err "remove the queue" "push/pull"
    (Dataplane.remove_element dp ~name:"q")

let test_register_map_class () =
  (match
     Dataplane.register_map_class "Mark"
       ~check:(function
         | [ _ ] -> Ok ()
         | _ -> Error "takes one argument (the payload marker)")
       ~make:(fun ~args ~n_out:_ ->
         let marker = List.hd args in
         fun pkt ->
           if String.equal pkt.Packet.payload marker then
             Dataplane.Kill "marked"
           else Dataplane.Emit 0)
   with
   | () -> ());
  let loop, _, dp, _ = mk_dp () in
  install_exn dp
    "src :: FromNetsim(eth0)\nmark :: Mark(evil)\nd :: Drop\n\
     src -> mark -> d\n";
  let inject payload =
    inject_exn dp ~ifname:"eth0"
      (Packet.make ~payload ~src:(addr "10.0.0.7") ~dst:(addr "1.2.3.4") ())
  in
  inject "evil";
  inject "fine";
  Eventloop.run_until_idle loop;
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "extension class drops" [ ("marked", 1) ]
    (stat dp "mark").Dataplane.st_drops;
  check Alcotest.int "extension class forwards" 1
    (stat dp "d").Dataplane.st_rx;
  (* Built-ins are protected. *)
  match
    Dataplane.register_map_class "Queue"
      ~check:(fun _ -> Ok ())
      ~make:(fun ~args:_ ~n_out:_ _ -> Dataplane.Emit 0)
  with
  | () -> Alcotest.fail "replacing a built-in was accepted"
  | exception Invalid_argument _ -> ()

(* --- the dataplane/0.1 XRL surface, over a live FEA ------------------- *)

let setup_fea () =
  let loop = Eventloop.create () in
  let finder = Finder.create () in
  let netsim = Netsim.create loop in
  let fea =
    Fea.create
      ~interfaces:[ ("eth0", addr "10.0.0.1"); ("eth1", addr "10.1.0.1") ]
      ~netsim finder loop ()
  in
  let caller = Xrl_router.create finder loop ~class_name:"test" () in
  (loop, netsim, fea, caller)

let dp_xrl method_name args =
  Xrl.make ~target:"fea" ~interface:"dataplane" ~version:"0.1" ~method_name
    args

let call caller xrl =
  let err, args = Xrl_router.call_blocking caller xrl in
  if not (Xrl_error.is_ok err) then
    Alcotest.failf "XRL failed: %s" (Xrl_error.to_string err);
  args

let test_xrl_insert_without_dropping () =
  let loop, netsim, fea, caller = setup_fea () in
  (* A host one hop beyond eth1 receives what the router forwards. *)
  let received = ref [] in
  let receiver =
    Netsim.Dgram.bind netsim ~addr:(addr "10.1.0.99") ~port:Fea.dataplane_port
  in
  Netsim.Dgram.on_receive receiver (fun ~src:_ ~sport:_ payload ->
      match Packet.of_wire payload with
      | Ok p -> received := p.Packet.payload :: !received
      | Error e -> Alcotest.failf "received garbage: %s" e);
  Fib.add (Fea.fib fea)
    { Fib.net = net "172.16.0.0/12"; nexthop = addr "10.1.0.99";
      ifname = "eth1"; protocol = "static" };
  (* A host on the eth0 LAN sends packets into the router. *)
  let sender =
    Netsim.Dgram.bind netsim ~addr:(addr "10.0.0.7") ~port:Fea.dataplane_port
  in
  let send payload =
    Netsim.Dgram.sendto sender ~dst:(addr "10.0.0.1")
      ~dport:Fea.dataplane_port
      (Packet.to_wire
         (Packet.make ~payload ~src:(addr "10.0.0.7")
            ~dst:(addr "172.16.5.5") ()))
  in
  (* Before. *)
  send "before";
  Eventloop.run loop;
  check (Alcotest.list Alcotest.string) "flows before" [ "before" ]
    (List.rev !received);
  (* Stuff packets into the pipeline, then reconfigure while they are
     still queued: the XRL and the queue drain interleave on the same
     loop, which is exactly the "no quiesce needed" claim. *)
  let dp = Option.get (Fea.dataplane fea) in
  for i = 1 to 4 do
    match
      Dataplane.inject dp ~ifname:"eth0"
        (Packet.make ~payload:(Printf.sprintf "inflight%d" i)
           ~src:(addr "10.0.0.7") ~dst:(addr "172.16.5.5") ())
    with
    | Ok () -> ()
    | Error e -> Alcotest.fail e
  done;
  ignore
    (call caller
       (dp_xrl "insert_element"
          [ Xrl_atom.txt "name" "audit"; Xrl_atom.txt "klass" "Count";
            Xrl_atom.txt "after" "chk" ]));
  Eventloop.run loop;
  check Alcotest.int "nothing dropped across the reconfiguration" 5
    (List.length !received);
  (* After: the new element is live and counting. *)
  send "after";
  Eventloop.run loop;
  check Alcotest.int "flows after" 6 (List.length !received);
  check Alcotest.string "last payload" "after" (List.hd !received);
  let args =
    call caller (dp_xrl "get_counters" [ Xrl_atom.txt "name" "audit" ])
  in
  check Alcotest.string "inserted class" "Count"
    (Xrl_atom.get_txt args "klass");
  check Alcotest.int "inserted element saw the post-insert packet" 1
    (Xrl_atom.get_u32 args "rx");
  let args = call caller (dp_xrl "get_graph" []) in
  check Alcotest.bool "graph shows the insert" true
    (Astring.String.is_infix ~affix:"audit :: Count"
       (Xrl_atom.get_txt args "config"));
  (* And remove it again; traffic keeps flowing. *)
  ignore
    (call caller (dp_xrl "remove_element" [ Xrl_atom.txt "name" "audit" ]));
  send "final";
  Eventloop.run loop;
  check Alcotest.int "flows after removal" 7 (List.length !received)

let test_xrl_install_and_introspect () =
  let _, _, _, caller = setup_fea () in
  let args = call caller (dp_xrl "list_elements" []) in
  check Alcotest.int "default graph listed" 9
    (List.length (Xrl_atom.get_list args "elements"));
  let err, _ =
    Xrl_router.call_blocking caller
      (dp_xrl "install_graph"
         [ Xrl_atom.txt "config" "src :: FromNetsim(eth0)\nsrc -> ghost\n" ])
  in
  (match err with
   | Xrl_error.Command_failed msg ->
     check Alcotest.bool "error names the culprit" true
       (Astring.String.is_infix ~affix:"ghost" msg)
   | e ->
     Alcotest.failf "expected Command_failed, got %s" (Xrl_error.to_string e));
  let args =
    call caller
      (dp_xrl "install_graph"
         [ Xrl_atom.txt "config"
             "src :: FromNetsim(eth0)\nd :: Drop(firewall)\nsrc -> d\n" ])
  in
  check Alcotest.int "replacement graph size" 2
    (Xrl_atom.get_u32 args "elements")

let test_xrl_without_dataplane () =
  let loop = Eventloop.create () in
  let finder = Finder.create () in
  ignore (Fea.create finder loop ());
  let caller = Xrl_router.create finder loop ~class_name:"test" () in
  let err, _ = Xrl_router.call_blocking caller (dp_xrl "get_graph" []) in
  match err with
  | Xrl_error.Command_failed _ -> ()
  | e ->
    Alcotest.failf "expected Command_failed, got %s" (Xrl_error.to_string e)

let () =
  Alcotest.run "xorp_dataplane"
    [ ( "grammar",
        [ Seeded.qcheck prop_parse_print_stable;
          Alcotest.test_case "malformed graphs rejected" `Quick
            test_malformed_graphs;
          Alcotest.test_case "default config canonical" `Quick
            test_default_config_canonical ] );
      ( "runtime",
        [ Alcotest.test_case "default graph forwards" `Quick
            test_default_graph_forwards;
          Alcotest.test_case "drops counted per reason" `Quick
            test_drops_counted_per_reason;
          Alcotest.test_case "classify and tee" `Quick test_classify_and_tee;
          Alcotest.test_case "queue overflow and drain" `Quick
            test_queue_overflow_and_drain;
          Alcotest.test_case "connected route goes direct" `Quick
            test_connected_route_goes_direct;
          Alcotest.test_case "install checks interfaces" `Quick
            test_install_checks_interfaces;
          Alcotest.test_case "insert and remove at runtime" `Quick
            test_runtime_insert_and_remove;
          Alcotest.test_case "extension classes" `Quick
            test_register_map_class ] );
      ( "xrl",
        [ Alcotest.test_case "insert while packets in flight" `Quick
            test_xrl_insert_without_dropping;
          Alcotest.test_case "install and introspect" `Quick
            test_xrl_install_and_introspect;
          Alcotest.test_case "no data plane" `Quick
            test_xrl_without_dataplane ] ) ]
