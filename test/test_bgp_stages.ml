(* Unit tests for the BGP pipeline stages in isolation: PeerIn and
   dynamic deletion stages, filter banks, damping, nexthop resolvers,
   the decision process, the fanout queue, RibOut, and the checking
   cache. *)

let check = Alcotest.check
let addr = Ipv4.of_string_exn
let net = Ipv4net.of_string_exn

let mkroute ?(nh = "10.0.0.1") ?(path = [ 65001 ]) ?(peer = 1) ?igp
    ?(localpref : int option) ?med n =
  { Bgp_types.net = net n;
    attrs =
      { (Bgp_types.default_attrs ~nexthop:(addr nh)) with
        Bgp_types.aspath = [ Aspath.Seq path ]; localpref; med };
    peer_id = peer;
    igp_metric = igp }

(* A recording sink. *)
type recorder = {
  mutable log : (string * Bgp_types.route) list; (* newest first *)
  tbl : Bgp_table.table;
}

let recorder ?parent () =
  let r = ref None in
  let parent =
    match parent with
    | Some p -> p
    | None ->
      (* A null parent for sinks that never pull. *)
      (new Bgp_ribin.rib_in ~name:"null" ~peer_id:999 (Eventloop.create ())
        :> Bgp_table.table)
  in
  let sink =
    new Bgp_table.sink ~name:"recorder" ~parent
      ~on_add:(fun route ->
          match !r with
          | Some rec_ -> rec_.log <- ("add", route) :: rec_.log
          | None -> ())
      ~on_delete:(fun route ->
          match !r with
          | Some rec_ -> rec_.log <- ("del", route) :: rec_.log
          | None -> ())
  in
  let rec_ = { log = []; tbl = (sink :> Bgp_table.table) } in
  r := Some rec_;
  rec_

let ops rec_ = List.rev_map (fun (op, r) -> (op, Ipv4net.to_string r.Bgp_types.net)) rec_.log

(* --- PeerIn ----------------------------------------------------------- *)

let test_ribin_basic () =
  let loop = Eventloop.create () in
  let ribin = new Bgp_ribin.rib_in ~name:"in" ~peer_id:1 loop in
  let rec_ = recorder () in
  ribin#set_next (Some rec_.tbl);
  ribin#add_route (mkroute "10.0.0.0/8");
  ribin#add_route (mkroute "20.0.0.0/8");
  check Alcotest.int "stored" 2 ribin#route_count;
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
    "adds flowed"
    [ ("add", "10.0.0.0/8"); ("add", "20.0.0.0/8") ]
    (ops rec_);
  (* replacement: delete old, add new *)
  ribin#add_route (mkroute ~path:[ 65001; 65002 ] "10.0.0.0/8");
  check Alcotest.int "still 2" 2 ribin#route_count;
  (match rec_.log with
   | ("add", nr) :: ("del", old) :: _ ->
     check Alcotest.int "old path len" 1 (Aspath.length old.Bgp_types.attrs.aspath);
     check Alcotest.int "new path len" 2 (Aspath.length nr.Bgp_types.attrs.aspath)
   | _ -> Alcotest.fail "expected del+add");
  (* withdrawal of unknown prefix is silent *)
  let before = List.length rec_.log in
  ribin#delete_route (mkroute "99.0.0.0/8");
  check Alcotest.int "silent" before (List.length rec_.log)

let test_deletion_stage_gradual () =
  let loop = Eventloop.create () in
  let ribin = new Bgp_ribin.rib_in ~name:"in" ~peer_id:1 loop in
  let rec_ = recorder ~parent:(ribin :> Bgp_table.table) () in
  ribin#set_next (Some rec_.tbl);
  for i = 0 to 499 do
    ribin#add_route (mkroute (Printf.sprintf "10.%d.%d.0/24" (i / 250) (i mod 250)))
  done;
  rec_.log <- [];
  ribin#peering_went_down ~slice:50 ();
  check Alcotest.int "ribin emptied instantly" 0 ribin#route_count;
  check Alcotest.int "one deletion stage" 1 ribin#active_deletion_stages;
  (* lookups still see the victims until their delete is emitted *)
  check Alcotest.bool "victim still visible" true
    (ribin#lookup_route (net "10.0.0.0/24") <> None);
  Eventloop.run loop;
  check Alcotest.int "all deletes emitted" 500 (List.length rec_.log);
  check Alcotest.int "stage unplumbed" 0 ribin#active_deletion_stages;
  check Alcotest.bool "victim gone" true
    (ribin#lookup_route (net "10.0.0.0/24") = None)

let test_deletion_stage_flap_consistency () =
  (* The paper's §5.1.2 invariant: if the peer comes back and
     re-announces a prefix the deletion stage still holds, downstream
     sees delete(old) then add(new), and each route lives in at most
     one deletion stage. *)
  let loop = Eventloop.create () in
  let ribin = new Bgp_ribin.rib_in ~name:"in" ~peer_id:1 loop in
  let rec_ = recorder ~parent:(ribin :> Bgp_table.table) () in
  ribin#set_next (Some rec_.tbl);
  ribin#add_route (mkroute ~path:[ 1 ] "10.0.0.0/8");
  ribin#add_route (mkroute ~path:[ 1 ] "20.0.0.0/8");
  rec_.log <- [];
  ribin#peering_went_down ~slice:1 ();
  (* Peer returns immediately and re-announces 10/8 with a new path
     before the background task ran at all. *)
  ribin#add_route (mkroute ~path:[ 9; 1 ] "10.0.0.0/8");
  (match List.rev rec_.log with
   | ("del", old) :: ("add", nr) :: [] ->
     check Alcotest.string "old deleted first" "10.0.0.0/8"
       (Ipv4net.to_string old.Bgp_types.net);
     check Alcotest.int "old path" 1 (Aspath.length old.Bgp_types.attrs.aspath);
     check Alcotest.int "new path" 2 (Aspath.length nr.Bgp_types.attrs.aspath)
   | l -> Alcotest.failf "unexpected stream (%d entries)" (List.length l));
  (* Second flap while the first deletion stage still holds 20/8. *)
  ribin#peering_went_down ~slice:1 ();
  check Alcotest.int "two stages stacked" 2 ribin#active_deletion_stages;
  Eventloop.run loop;
  check Alcotest.int "all unplumbed" 0 ribin#active_deletion_stages;
  (* Net effect downstream: both prefixes deleted exactly once more
     than added. Model-check the stream. *)
  let model = Hashtbl.create 8 in
  (* Seed with the two adds that flowed before the log was cleared. *)
  Hashtbl.replace model "10.0.0.0/8" ();
  Hashtbl.replace model "20.0.0.0/8" ();
  List.iter
    (fun (op, r) ->
       let key = Ipv4net.to_string r.Bgp_types.net in
       match op with
       | "add" ->
         if Hashtbl.mem model key then Alcotest.failf "double add %s" key;
         Hashtbl.replace model key ()
       | _ ->
         if not (Hashtbl.mem model key) then
           Alcotest.failf "delete without add %s" key;
         Hashtbl.remove model key)
    (List.rev rec_.log);
  check Alcotest.int "stream nets out to empty" 0 (Hashtbl.length model)

(* --- filter bank ------------------------------------------------------- *)

let compile s = Result.get_ok (Policy.compile s)

let test_filter_reject_modify () =
  let loop = Eventloop.create () in
  let ribin = new Bgp_ribin.rib_in ~name:"in" ~peer_id:1 loop in
  let filter =
    new Bgp_filter.filter_table ~name:"f"
      ~parent:(ribin :> Bgp_table.table)
      ~local_as:65000 ~peer_as:65001
      ~programs:
        [ compile
            {|
load network
push.net 10.0.0.0/8
within
jfalse keep
reject
label keep
push.u32 250
store localpref
accept
|} ]
      ()
  in
  Bgp_table.plumb ribin filter;
  let rec_ = recorder ~parent:(filter :> Bgp_table.table) () in
  filter#set_next (Some rec_.tbl);
  ribin#add_route (mkroute "10.1.0.0/16"); (* rejected *)
  ribin#add_route (mkroute "128.16.0.0/16"); (* accepted + modified *)
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
    "only the accepted one" [ ("add", "128.16.0.0/16") ] (ops rec_);
  (match rec_.log with
   | [ (_, r) ] ->
     check Alcotest.int "localpref set" 250
       (Bgp_types.effective_localpref r.Bgp_types.attrs)
   | _ -> Alcotest.fail "expected one entry");
  (* deletes are filtered identically *)
  rec_.log <- [];
  ribin#delete_route (mkroute "10.1.0.0/16");
  check Alcotest.int "rejected delete dropped" 0 (List.length rec_.log);
  ribin#delete_route (mkroute "128.16.0.0/16");
  (match rec_.log with
   | [ ("del", r) ] ->
     check Alcotest.int "delete got same transform" 250
       (Bgp_types.effective_localpref r.Bgp_types.attrs)
   | _ -> Alcotest.fail "expected one delete");
  (* lookup applies the filter too *)
  ribin#add_route (mkroute "128.16.0.0/16");
  (match filter#lookup_route (net "128.16.0.0/16") with
   | Some r ->
     check Alcotest.int "lookup transformed" 250
       (Bgp_types.effective_localpref r.Bgp_types.attrs)
   | None -> Alcotest.fail "lookup lost the route");
  check Alcotest.bool "rejected invisible" true
    (filter#lookup_route (net "10.1.0.0/16") = None)

let test_filter_aspath_prepend () =
  let loop = Eventloop.create () in
  let ribin = new Bgp_ribin.rib_in ~name:"in" ~peer_id:1 loop in
  let filter =
    new Bgp_filter.filter_table ~name:"f"
      ~parent:(ribin :> Bgp_table.table)
      ~local_as:65000 ~peer_as:65001
      ~programs:[ compile "push.u32 2\nstore aspath_prepend\naccept" ]
      ()
  in
  Bgp_table.plumb ribin filter;
  let rec_ = recorder ~parent:(filter :> Bgp_table.table) () in
  filter#set_next (Some rec_.tbl);
  ribin#add_route (mkroute ~path:[ 65001 ] "10.0.0.0/8");
  match rec_.log with
  | [ (_, r) ] ->
    check Alcotest.string "prepended twice" "65000 65000 65001"
      (Aspath.to_string r.Bgp_types.attrs.aspath)
  | _ -> Alcotest.fail "expected one add"

let test_filter_refilter () =
  let loop = Eventloop.create () in
  let ribin = new Bgp_ribin.rib_in ~name:"in" ~peer_id:1 loop in
  let filter =
    new Bgp_filter.filter_table ~name:"f"
      ~parent:(ribin :> Bgp_table.table)
      ~local_as:65000 ~peer_as:65001 ~programs:[] ()
  in
  Bgp_table.plumb ribin filter;
  let rec_ = recorder ~parent:(filter :> Bgp_table.table) () in
  filter#set_next (Some rec_.tbl);
  ribin#add_route (mkroute "10.0.0.0/8");
  ribin#add_route (mkroute "128.16.0.0/16");
  rec_.log <- [];
  (* New policy rejects 10/8: the background refilter must emit exactly
     one delete. *)
  let it = ribin#safe_iter in
  filter#replace_programs ~loop
    ~pull:(fun () -> Option.map snd (Ptree.Safe_iter.next it))
    [ compile
        "load network\npush.net 10.0.0.0/8\nwithin\njfalse keep\nreject\nlabel keep" ];
  Eventloop.run loop;
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
    "one delete, nothing else" [ ("del", "10.0.0.0/8") ] (ops rec_)

(* --- damping ------------------------------------------------------------ *)

let damping_setup ?(params = Bgp_damping.default_params) () =
  let loop = Eventloop.create () in
  let ribin = new Bgp_ribin.rib_in ~name:"in" ~peer_id:1 loop in
  let damp =
    new Bgp_damping.damping_table ~name:"damp" ~params
      ~parent:(ribin :> Bgp_table.table)
      loop
  in
  Bgp_table.plumb ribin damp;
  let rec_ = recorder ~parent:(damp :> Bgp_table.table) () in
  damp#set_next (Some rec_.tbl);
  (loop, ribin, damp, rec_)

let test_damping_stable_route_passes () =
  let _, ribin, damp, rec_ = damping_setup () in
  ribin#add_route (mkroute "10.0.0.0/8");
  check Alcotest.int "passed" 1 (List.length rec_.log);
  check Alcotest.bool "not suppressed" false (damp#is_suppressed (net "10.0.0.0/8"))

let test_damping_flaps_suppress () =
  let loop, ribin, damp, rec_ = damping_setup () in
  let flap () =
    ribin#add_route (mkroute "10.0.0.0/8");
    ribin#delete_route (mkroute "10.0.0.0/8");
    Eventloop.run_until_time loop (Eventloop.now loop +. 2.0)
  in
  flap ();
  flap ();
  flap ();
  (* Three withdrawals at 1000 each: penalty > 3000 → suppressed. *)
  check Alcotest.bool "suppressed" true (damp#is_suppressed (net "10.0.0.0/8"));
  rec_.log <- [];
  ribin#add_route (mkroute "10.0.0.0/8");
  check Alcotest.int "announcement held" 0 (List.length rec_.log);
  (* Decay eventually re-uses the route: half-life 900s, penalty ~3400
     → reuse (750) needs ~2 half-lives. *)
  Eventloop.run_until_time loop (Eventloop.now loop +. 4000.0);
  check Alcotest.bool "no longer suppressed" false
    (damp#is_suppressed (net "10.0.0.0/8"));
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
    "held route released" [ ("add", "10.0.0.0/8") ] (ops rec_)

let test_damping_counts () =
  let loop, ribin, damp, _ = damping_setup () in
  for _ = 1 to 4 do
    ribin#add_route (mkroute "10.0.0.0/8");
    ribin#delete_route (mkroute "10.0.0.0/8");
    Eventloop.run_until_time loop (Eventloop.now loop +. 1.0)
  done;
  check Alcotest.int "suppressed once" 1 damp#suppressed_count;
  match damp#penalty_of (net "10.0.0.0/8") with
  | Some p -> check Alcotest.bool "penalty accumulated" true (p > 3000.0)
  | None -> Alcotest.fail "no damping state"

(* --- nexthop resolver ----------------------------------------------------- *)

let test_nexthop_resolution_and_queue () =
  (* Async resolver: answers are delivered later; routes queue. *)
  let queries = ref [] in
  let answer_fns = Hashtbl.create 4 in
  let resolve nh cb =
    queries := Ipv4.to_string nh :: !queries;
    Hashtbl.replace answer_fns (Ipv4.to_string nh) cb
  in
  let nht = new Bgp_nexthop.nexthop_table ~name:"nh" ~resolve () in
  let rec_ = recorder ~parent:(nht :> Bgp_table.table) () in
  nht#set_next (Some rec_.tbl);
  nht#add_route (mkroute ~nh:"10.9.0.1" "128.16.0.0/16");
  nht#add_route (mkroute ~nh:"10.9.0.1" "128.17.0.0/16");
  check Alcotest.int "one query for one nexthop" 1 (List.length !queries);
  check Alcotest.int "both held" 2 nht#pending_count;
  check Alcotest.int "nothing emitted yet" 0 (List.length rec_.log);
  (* The RIB answers: both routes flow, annotated. *)
  (Hashtbl.find answer_fns "10.9.0.1")
    { Bgp_nexthop.resolvable = true; metric = 5; valid = net "10.9.0.0/16" };
  check Alcotest.int "both emitted" 2 (List.length rec_.log);
  List.iter
    (fun (_, r) ->
       check (Alcotest.option Alcotest.int) "metric annotation" (Some 5)
         r.Bgp_types.igp_metric)
    rec_.log;
  (* A later route to the same range hits the cache: no new query. *)
  nht#add_route (mkroute ~nh:"10.9.0.7" "128.18.0.0/16");
  check Alcotest.int "cache hit" 1 (List.length !queries);
  check Alcotest.int "emitted immediately" 3 (List.length rec_.log)

let test_nexthop_invalidation () =
  let metric = ref 5 in
  let resolve nh cb =
    cb
      { Bgp_nexthop.resolvable = true; metric = !metric;
        valid = Ipv4net.make nh 16 }
  in
  let nht = new Bgp_nexthop.nexthop_table ~name:"nh" ~resolve () in
  let rec_ = recorder ~parent:(nht :> Bgp_table.table) () in
  nht#set_next (Some rec_.tbl);
  nht#add_route (mkroute ~nh:"10.9.0.1" "128.16.0.0/16");
  rec_.log <- [];
  (* IGP changed: metric now 50. The RIB invalidates the range. *)
  metric := 50;
  nht#invalidate (net "10.9.0.0/16");
  (match List.rev rec_.log with
   | [ ("del", old); ("add", nr) ] ->
     check (Alcotest.option Alcotest.int) "old metric" (Some 5)
       old.Bgp_types.igp_metric;
     check (Alcotest.option Alcotest.int) "new metric" (Some 50)
       nr.Bgp_types.igp_metric
   | l -> Alcotest.failf "expected del+add, got %d entries" (List.length l));
  (* Unrelated invalidation: silence. *)
  rec_.log <- [];
  nht#invalidate (net "172.16.0.0/12");
  check Alcotest.int "unrelated silent" 0 (List.length rec_.log)

let test_nexthop_unresolvable () =
  let resolve nh cb =
    cb { Bgp_nexthop.resolvable = false; metric = 0; valid = Ipv4net.host nh }
  in
  let nht = new Bgp_nexthop.nexthop_table ~name:"nh" ~resolve () in
  let rec_ = recorder ~parent:(nht :> Bgp_table.table) () in
  nht#set_next (Some rec_.tbl);
  nht#add_route (mkroute ~nh:"10.9.0.1" "128.16.0.0/16");
  match rec_.log with
  | [ ("add", r) ] ->
    check (Alcotest.option Alcotest.int) "marked unresolved" None
      r.Bgp_types.igp_metric
  | _ -> Alcotest.fail "route should still flow, annotated unresolved"

(* --- decision ---------------------------------------------------------- *)

let peer_info ?(kind = Bgp_types.Ebgp) ?(bgp_id = "9.9.9.9") id paddr peer_as =
  { Bgp_types.peer_id = id; peer_addr = addr paddr; peer_as; kind;
    peer_bgp_id = addr bgp_id }

(* A trivial parent: a ribin used as a per-branch store. *)
let branch loop id =
  new Bgp_ribin.rib_in ~name:(Printf.sprintf "branch%d" id) ~peer_id:id loop

let decision_setup () =
  let loop = Eventloop.create () in
  let d = new Bgp_decision.decision_table ~name:"decision" () in
  let b1 = branch loop 1 and b2 = branch loop 2 in
  d#add_parent ~info:(peer_info 1 "10.0.0.1" 65001 ~bgp_id:"1.1.1.1") (b1 :> Bgp_table.table);
  d#add_parent ~info:(peer_info 2 "10.0.0.2" 65002 ~bgp_id:"2.2.2.2") (b2 :> Bgp_table.table);
  Bgp_table.plumb b1 d;
  Bgp_table.plumb b2 d;
  let rec_ = recorder ~parent:(d :> Bgp_table.table) () in
  d#set_next (Some rec_.tbl);
  (loop, d, b1, b2, rec_)

let test_decision_prefers_shorter_path () =
  let _, d, b1, b2, rec_ = decision_setup () in
  b1#add_route (mkroute ~peer:1 ~path:[ 65001; 50; 60 ] ~igp:0 "128.16.0.0/16");
  b2#add_route (mkroute ~peer:2 ~path:[ 65002; 60 ] ~igp:0 "128.16.0.0/16");
  (match d#lookup_route (net "128.16.0.0/16") with
   | Some w -> check Alcotest.int "peer 2 wins" 2 w.Bgp_types.peer_id
   | None -> Alcotest.fail "no winner");
  (* downstream saw add(1), then del(1)+add(2) *)
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
    "delta stream"
    [ ("add", "128.16.0.0/16"); ("del", "128.16.0.0/16");
      ("add", "128.16.0.0/16") ]
    (ops rec_)

let test_decision_localpref_dominates () =
  let _, d, b1, b2, _ = decision_setup () in
  b1#add_route
    (mkroute ~peer:1 ~path:[ 65001; 50; 60; 70 ] ~localpref:200
       ~igp:0 "128.16.0.0/16");
  b2#add_route (mkroute ~peer:2 ~path:[ 65002 ] ~igp:0 "128.16.0.0/16");
  match d#lookup_route (net "128.16.0.0/16") with
  | Some w -> check Alcotest.int "higher localpref wins" 1 w.Bgp_types.peer_id
  | None -> Alcotest.fail "no winner"

let test_decision_hot_potato () =
  (* Same attributes; lower IGP metric to the nexthop wins. *)
  let _, d, b1, b2, _ = decision_setup () in
  b1#add_route (mkroute ~peer:1 ~path:[ 65001 ] ~igp:30 "128.16.0.0/16");
  b2#add_route (mkroute ~peer:2 ~path:[ 65002 ] ~igp:3 "128.16.0.0/16");
  match d#lookup_route (net "128.16.0.0/16") with
  | Some w -> check Alcotest.int "nearest exit wins" 2 w.Bgp_types.peer_id
  | None -> Alcotest.fail "no winner"

let test_decision_ignores_unresolved () =
  let _, d, b1, b2, rec_ = decision_setup () in
  b1#add_route (mkroute ~peer:1 "128.16.0.0/16");
  check Alcotest.bool "unresolved not chosen" true
    (d#lookup_route (net "128.16.0.0/16") = None);
  check Alcotest.int "nothing emitted" 0 (List.length rec_.log);
  b2#add_route (mkroute ~peer:2 ~path:[ 65002; 60 ] ~igp:0 "128.16.0.0/16");
  match d#lookup_route (net "128.16.0.0/16") with
  | Some w -> check Alcotest.int "resolved one wins" 2 w.Bgp_types.peer_id
  | None -> Alcotest.fail "no winner"

let test_decision_failover_on_delete () =
  let _, d, b1, b2, rec_ = decision_setup () in
  b1#add_route (mkroute ~peer:1 ~path:[ 65001 ] ~igp:0 "128.16.0.0/16");
  b2#add_route
    (mkroute ~peer:2 ~path:[ 65002; 60 ] ~igp:0 "128.16.0.0/16");
  (match d#lookup_route (net "128.16.0.0/16") with
   | Some w -> check Alcotest.int "peer1 wins first" 1 w.Bgp_types.peer_id
   | None -> Alcotest.fail "no winner");
  rec_.log <- [];
  b1#delete_route (mkroute ~peer:1 "128.16.0.0/16");
  (match d#lookup_route (net "128.16.0.0/16") with
   | Some w -> check Alcotest.int "fails over to peer2" 2 w.Bgp_types.peer_id
   | None -> Alcotest.fail "no winner after failover");
  (match List.rev rec_.log with
   | [ ("del", o); ("add", n) ] ->
     check Alcotest.int "old winner deleted" 1 o.Bgp_types.peer_id;
     check Alcotest.int "new winner added" 2 n.Bgp_types.peer_id
   | l -> Alcotest.failf "expected del+add, got %d" (List.length l));
  rec_.log <- [];
  b2#delete_route (mkroute ~peer:2 "128.16.0.0/16");
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
    "final delete" [ ("del", "128.16.0.0/16") ] (ops rec_)

let test_decision_tiebreak_bgp_id () =
  let _, d, b1, b2, _ = decision_setup () in
  (* identical in every respect except the peer's BGP id (1.1.1.1 vs
     2.2.2.2) *)
  b1#add_route (mkroute ~peer:1 ~path:[ 65001 ] ~igp:0 "128.16.0.0/16");
  b2#add_route (mkroute ~peer:2 ~path:[ 65002 ] ~igp:0 "128.16.0.0/16");
  match d#lookup_route (net "128.16.0.0/16") with
  | Some w -> check Alcotest.int "lowest BGP id" 1 w.Bgp_types.peer_id
  | None -> Alcotest.fail "no winner"

(* --- fanout ------------------------------------------------------------- *)

let fanout_setup () =
  let loop = Eventloop.create () in
  let infos = Hashtbl.create 4 in
  let f =
    new Bgp_fanout.fanout_table ~name:"fanout" ~batch:10
      ~peer_info_of:(fun id -> Hashtbl.find_opt infos id)
      loop
  in
  let add_reader ?(kind = Bgp_types.Ebgp) id =
    let info = peer_info ~kind id (Printf.sprintf "10.0.0.%d" id) (65000 + id) in
    Hashtbl.replace infos id info;
    let rec_ = recorder () in
    f#add_reader ~info rec_.tbl;
    rec_
  in
  (loop, f, infos, add_reader)

let test_fanout_duplication_and_echo () =
  let loop, f, _, add_reader = fanout_setup () in
  let r1 = add_reader 1 and r2 = add_reader 2 and r3 = add_reader 3 in
  f#add_route (mkroute ~peer:1 "10.0.0.0/8");
  Eventloop.run loop;
  check Alcotest.int "origin peer skipped" 0 (List.length r1.log);
  check Alcotest.int "peer2 got it" 1 (List.length r2.log);
  check Alcotest.int "peer3 got it" 1 (List.length r3.log)

let test_fanout_ibgp_rules () =
  let loop, f, _, add_reader = fanout_setup () in
  let _i1 = add_reader ~kind:Bgp_types.Ibgp 1 in
  let i2 = add_reader ~kind:Bgp_types.Ibgp 2 in
  let e3 = add_reader ~kind:Bgp_types.Ebgp 3 in
  (* Route learned from IBGP peer 1: must reach EBGP peer 3, not IBGP
     peer 2. *)
  f#add_route (mkroute ~peer:1 "10.0.0.0/8");
  Eventloop.run loop;
  check Alcotest.int "no ibgp reflection" 0 (List.length i2.log);
  check Alcotest.int "ebgp gets it" 1 (List.length e3.log)

let test_fanout_local_routes_everywhere () =
  let loop, f, _, add_reader = fanout_setup () in
  let i1 = add_reader ~kind:Bgp_types.Ibgp 1 in
  let e2 = add_reader ~kind:Bgp_types.Ebgp 2 in
  f#add_route (mkroute ~peer:0 "172.16.0.0/12");
  Eventloop.run loop;
  check Alcotest.int "ibgp" 1 (List.length i1.log);
  check Alcotest.int "ebgp" 1 (List.length e2.log)

let test_fanout_queue_compaction () =
  let loop, f, _, add_reader = fanout_setup () in
  let _r1 = add_reader 1 and _r2 = add_reader 2 in
  for i = 0 to 99 do
    f#add_route (mkroute ~peer:1 (Printf.sprintf "10.%d.0.0/16" i))
  done;
  check Alcotest.bool "queued" true (f#queue_length > 0);
  Eventloop.run loop;
  check Alcotest.int "drained and compacted" 0 f#queue_length;
  check Alcotest.bool "peak recorded" true (f#peak_queue_length >= 90)

let test_fanout_slow_reader_budget () =
  (* With batch=10, a 100-entry burst needs 10 deferred passes; the
     queue drains without any reader ever seeing out-of-order data. *)
  let loop, f, _, add_reader = fanout_setup () in
  let r2 = add_reader 2 in
  for i = 0 to 99 do
    f#add_route (mkroute ~peer:1 (Printf.sprintf "10.%d.0.0/16" i))
  done;
  Eventloop.run loop;
  let seen = List.rev_map (fun (_, r) -> Ipv4net.to_string r.Bgp_types.net) r2.log in
  check Alcotest.int "all delivered" 100 (List.length seen);
  let expected = List.init 100 (fun i -> Printf.sprintf "10.%d.0.0/16" i) in
  check (Alcotest.list Alcotest.string) "in order" expected seen

let test_fanout_remove_reader_mid_stream () =
  let loop, f, _, add_reader = fanout_setup () in
  let r2 = add_reader 2 and r3 = add_reader 3 in
  for i = 0 to 19 do
    f#add_route (mkroute ~peer:1 (Printf.sprintf "10.%d.0.0/16" i))
  done;
  Eventloop.run loop;
  check Alcotest.int "both caught up" 20 (List.length r2.log);
  (* Remove reader 2, keep pushing: only reader 3 advances, and the
     queue still compacts to empty. *)
  f#remove_reader 2;
  for i = 20 to 39 do
    f#add_route (mkroute ~peer:1 (Printf.sprintf "10.%d.0.0/16" i))
  done;
  Eventloop.run loop;
  check Alcotest.int "removed reader frozen" 20 (List.length r2.log);
  check Alcotest.int "remaining reader complete" 40 (List.length r3.log);
  check Alcotest.int "queue compacted" 0 f#queue_length

(* --- ribout -------------------------------------------------------------- *)

let ribout_setup ?(kind = Bgp_types.Ebgp) () =
  let loop = Eventloop.create () in
  let sent = ref [] in
  let info = peer_info ~kind 7 "10.0.0.7" 65007 in
  let out =
    new Bgp_ribout.rib_out ~name:"out" ~info ~local_as:65000
      ~local_addr:(addr "10.0.0.254")
      ~send:(fun msg ->
          sent := msg :: !sent;
          true)
      loop
  in
  (loop, out, sent)

let test_ribout_ebgp_transforms () =
  let loop, out, sent = ribout_setup () in
  out#add_route
    (mkroute ~peer:1 ~path:[ 65001 ] ~localpref:200 ~med:5
       "128.16.0.0/16");
  Eventloop.run loop;
  match !sent with
  | [ Bgp_packet.Update { nlri = [ n ]; attrs = Some a; withdrawn = [] } ] ->
    check Alcotest.string "nlri" "128.16.0.0/16" (Ipv4net.to_string n);
    check Alcotest.string "AS prepended" "65000 65001"
      (Aspath.to_string a.Bgp_types.aspath);
    check Alcotest.string "nexthop self" "10.0.0.254"
      (Ipv4.to_string a.Bgp_types.nexthop);
    check Alcotest.bool "localpref stripped" true (a.Bgp_types.localpref = None);
    check Alcotest.bool "med stripped" true (a.Bgp_types.med = None)
  | l -> Alcotest.failf "expected one update, got %d" (List.length l)

let test_ribout_ibgp_preserves () =
  let loop, out, sent = ribout_setup ~kind:Bgp_types.Ibgp () in
  out#add_route
    (mkroute ~peer:1 ~path:[ 65001 ] ~localpref:200 ~nh:"10.0.9.9"
       "128.16.0.0/16");
  Eventloop.run loop;
  match !sent with
  | [ Bgp_packet.Update { attrs = Some a; _ } ] ->
    check Alcotest.string "no prepend" "65001" (Aspath.to_string a.Bgp_types.aspath);
    check Alcotest.string "nexthop unchanged" "10.0.9.9"
      (Ipv4.to_string a.Bgp_types.nexthop);
    check (Alcotest.option Alcotest.int) "localpref explicit" (Some 200)
      a.Bgp_types.localpref
  | l -> Alcotest.failf "expected one update, got %d" (List.length l)

let test_ribout_loop_prevention () =
  let loop, out, sent = ribout_setup () in
  (* Peer AS 65007 already in the path: do not advertise. *)
  out#add_route (mkroute ~peer:1 ~path:[ 65001; 65007 ] "128.16.0.0/16");
  Eventloop.run loop;
  check Alcotest.int "suppressed" 0 (List.length !sent);
  check Alcotest.int "not in adj-rib-out" 0 out#advertised_count

let test_ribout_batching () =
  let loop, out, sent = ribout_setup () in
  (* Many routes with identical attributes must share UPDATEs. *)
  for i = 0 to 49 do
    out#add_route (mkroute ~peer:1 ~path:[ 65001 ] (Printf.sprintf "10.%d.0.0/16" i))
  done;
  out#delete_route (mkroute ~peer:1 ~path:[ 65001 ] "10.3.0.0/16");
  Eventloop.run loop;
  let updates = List.length !sent in
  check Alcotest.bool "batched into few messages" true (updates <= 3);
  let total_nlri =
    List.fold_left
      (fun acc m ->
         match m with
         | Bgp_packet.Update { nlri; _ } -> acc + List.length nlri
         | _ -> acc)
      0 !sent
  in
  (* 10.3.0.0/16 was announced and withdrawn within the batch: the
     last change wins, so 49 announcements and no withdrawal (it was
     never advertised). *)
  check Alcotest.int "net announcements" 49 total_nlri;
  check Alcotest.int "adj-rib-out" 49 out#advertised_count

(* --- aggregation ------------------------------------------------------------ *)

let aggregation_setup ?(suppress = true) () =
  let loop = Eventloop.create () in
  let upstream = new Bgp_ribin.rib_in ~name:"up" ~peer_id:1 loop in
  let agg =
    new Bgp_aggregation.aggregation_table ~name:"agg"
      ~aggregates:
        [ { Bgp_aggregation.agg_net = net "10.0.0.0/8";
            suppress_specifics = suppress } ]
      ~local_nexthop:(addr "192.0.2.1")
      ~parent:(upstream :> Bgp_table.table)
      ()
  in
  Bgp_table.plumb upstream agg;
  let rec_ = recorder ~parent:(agg :> Bgp_table.table) () in
  agg#set_next (Some rec_.tbl);
  (upstream, agg, rec_)

let test_aggregation_announce_withdraw () =
  let upstream, agg, rec_ = aggregation_setup () in
  (* First component inside 10/8: the aggregate appears, the specific
     is suppressed. *)
  upstream#add_route (mkroute ~path:[ 65001 ] "10.1.0.0/24");
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
    "only the aggregate" [ ("add", "10.0.0.0/8") ] (ops rec_);
  (match rec_.log with
   | [ (_, r) ] ->
     check Alcotest.bool "atomic aggregate" true
       r.Bgp_types.attrs.Bgp_types.atomic_aggregate;
     check Alcotest.int "locally originated" 0 r.Bgp_types.peer_id
   | _ -> Alcotest.fail "expected one entry");
  (* Second component: nothing new downstream. *)
  upstream#add_route (mkroute ~path:[ 65001 ] "10.2.0.0/24");
  check Alcotest.int "still one message" 1 (List.length rec_.log);
  (* Routes outside the aggregate pass untouched. *)
  upstream#add_route (mkroute ~path:[ 65001 ] "172.16.0.0/16");
  check Alcotest.int "outsider passed" 2 (List.length rec_.log);
  (* Withdraw one component: aggregate stays. *)
  upstream#delete_route (mkroute "10.1.0.0/24");
  check Alcotest.int "aggregate survives" 2 (List.length rec_.log);
  check Alcotest.bool "still active" true (agg#active (net "10.0.0.0/8"));
  (* Withdraw the last: aggregate withdrawn. *)
  upstream#delete_route (mkroute "10.2.0.0/24");
  (match rec_.log with
   | ("del", r) :: _ ->
     check Alcotest.string "aggregate withdrawn" "10.0.0.0/8"
       (Ipv4net.to_string r.Bgp_types.net)
   | _ -> Alcotest.fail "expected aggregate withdrawal");
  check Alcotest.bool "inactive" false (agg#active (net "10.0.0.0/8"))

let test_aggregation_without_suppression () =
  let upstream, _agg, rec_ = aggregation_setup ~suppress:false () in
  upstream#add_route (mkroute ~path:[ 65001 ] "10.1.0.0/24");
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
    "aggregate plus specific"
    [ ("add", "10.0.0.0/8"); ("add", "10.1.0.0/24") ]
    (ops rec_)

let test_aggregation_lookup () =
  let upstream, agg, _ = aggregation_setup () in
  upstream#add_route (mkroute "10.1.0.0/24");
  (match agg#lookup_route (net "10.0.0.0/8") with
   | Some r -> check Alcotest.int "synthesized" 0 r.Bgp_types.peer_id
   | None -> Alcotest.fail "aggregate not visible to lookups");
  (* Suppressed specifics are invisible downstream. *)
  check Alcotest.bool "specific hidden" true
    (agg#lookup_route (net "10.1.0.0/24") = None)

(* --- checking cache -------------------------------------------------------- *)

let test_cache_detects_violation () =
  let loop = Eventloop.create () in
  let ribin = new Bgp_ribin.rib_in ~name:"in" ~peer_id:1 loop in
  let cache =
    new Bgp_cache.cache_table ~name:"cache"
      ~parent:(ribin :> Bgp_table.table) ()
  in
  Bgp_table.plumb ribin cache;
  let rec_ = recorder ~parent:(cache :> Bgp_table.table) () in
  cache#set_next (Some rec_.tbl);
  ribin#add_route (mkroute "10.0.0.0/8");
  ribin#delete_route (mkroute "10.0.0.0/8");
  check Alcotest.int "clean stream, no violations" 0 cache#violation_count;
  (* Inject a rule violation directly. *)
  cache#delete_route (mkroute "99.0.0.0/8");
  check Alcotest.int "delete-without-add caught" 1 cache#violation_count;
  check Alcotest.bool "still passed through" true
    (List.exists (fun (op, r) -> op = "del" && Ipv4net.to_string r.Bgp_types.net = "99.0.0.0/8") rec_.log)

let () =
  Alcotest.run "xorp_bgp_stages"
    [
      ( "ribin",
        [
          Alcotest.test_case "store and replace" `Quick test_ribin_basic;
          Alcotest.test_case "gradual deletion stage" `Quick
            test_deletion_stage_gradual;
          Alcotest.test_case "flap consistency" `Quick
            test_deletion_stage_flap_consistency;
        ] );
      ( "filters",
        [
          Alcotest.test_case "reject and modify" `Quick test_filter_reject_modify;
          Alcotest.test_case "aspath prepend" `Quick test_filter_aspath_prepend;
          Alcotest.test_case "background refilter" `Quick test_filter_refilter;
        ] );
      ( "damping",
        [
          Alcotest.test_case "stable route passes" `Quick
            test_damping_stable_route_passes;
          Alcotest.test_case "flaps suppress, decay reuses" `Quick
            test_damping_flaps_suppress;
          Alcotest.test_case "counters" `Quick test_damping_counts;
        ] );
      ( "nexthop",
        [
          Alcotest.test_case "async resolution queue" `Quick
            test_nexthop_resolution_and_queue;
          Alcotest.test_case "invalidation re-annotates" `Quick
            test_nexthop_invalidation;
          Alcotest.test_case "unresolvable flagged" `Quick
            test_nexthop_unresolvable;
        ] );
      ( "decision",
        [
          Alcotest.test_case "shorter path wins" `Quick
            test_decision_prefers_shorter_path;
          Alcotest.test_case "localpref dominates" `Quick
            test_decision_localpref_dominates;
          Alcotest.test_case "hot potato" `Quick test_decision_hot_potato;
          Alcotest.test_case "ignores unresolved" `Quick
            test_decision_ignores_unresolved;
          Alcotest.test_case "failover on delete" `Quick
            test_decision_failover_on_delete;
          Alcotest.test_case "bgp-id tie-break" `Quick
            test_decision_tiebreak_bgp_id;
        ] );
      ( "fanout",
        [
          Alcotest.test_case "duplication, no echo" `Quick
            test_fanout_duplication_and_echo;
          Alcotest.test_case "ibgp rules" `Quick test_fanout_ibgp_rules;
          Alcotest.test_case "local routes everywhere" `Quick
            test_fanout_local_routes_everywhere;
          Alcotest.test_case "queue compaction" `Quick
            test_fanout_queue_compaction;
          Alcotest.test_case "slow-reader budget" `Quick
            test_fanout_slow_reader_budget;
          Alcotest.test_case "remove reader mid-stream" `Quick
            test_fanout_remove_reader_mid_stream;
        ] );
      ( "ribout",
        [
          Alcotest.test_case "ebgp transforms" `Quick test_ribout_ebgp_transforms;
          Alcotest.test_case "ibgp preserves" `Quick test_ribout_ibgp_preserves;
          Alcotest.test_case "loop prevention" `Quick test_ribout_loop_prevention;
          Alcotest.test_case "batching" `Quick test_ribout_batching;
        ] );
      ( "aggregation",
        [
          Alcotest.test_case "announce and withdraw" `Quick
            test_aggregation_announce_withdraw;
          Alcotest.test_case "without suppression" `Quick
            test_aggregation_without_suppression;
          Alcotest.test_case "lookups" `Quick test_aggregation_lookup;
        ] );
      ( "cache",
        [
          Alcotest.test_case "violation detection" `Quick
            test_cache_detects_violation;
        ] );
    ]
