(* Tests for the Forwarding Engine Abstraction: the FIB proper, the
   XRL interface, the UDP relay, and profile points. *)

let check = Alcotest.check
let addr = Ipv4.of_string_exn
let net = Ipv4net.of_string_exn

let setup ?profiler () =
  let loop = Eventloop.create () in
  let finder = Finder.create () in
  let netsim = Netsim.create loop in
  let fea =
    Fea.create ?profiler
      ~interfaces:[ ("eth0", addr "10.0.0.1"); ("eth1", addr "10.1.0.1") ]
      ~netsim finder loop ()
  in
  let caller = Xrl_router.create finder loop ~class_name:"test" () in
  (loop, finder, netsim, fea, caller)

let call caller xrl =
  let err, args = Xrl_router.call_blocking caller xrl in
  if not (Xrl_error.is_ok err) then
    Alcotest.failf "XRL failed: %s" (Xrl_error.to_string err);
  args

let fea_xrl method_name args =
  Xrl.make ~target:"fea" ~interface:"fea" ~method_name args

(* --- Fib proper ------------------------------------------------------ *)

let test_fib_basics () =
  let fib = Fib.create () in
  Fib.add fib { Fib.net = net "10.0.0.0/8"; nexthop = addr "192.0.2.1";
                ifname = "eth0"; protocol = "static" };
  Fib.add fib { Fib.net = net "10.1.0.0/16"; nexthop = addr "192.0.2.2";
                ifname = "eth1"; protocol = "rip" };
  check Alcotest.int "size" 2 (Fib.size fib);
  (match Fib.lookup fib (addr "10.1.2.3") with
   | Some e -> check Alcotest.string "most specific wins" "eth1" e.Fib.ifname
   | None -> Alcotest.fail "no match");
  (match Fib.lookup fib (addr "10.2.0.1") with
   | Some e -> check Alcotest.string "/8 covers" "eth0" e.Fib.ifname
   | None -> Alcotest.fail "no match");
  check Alcotest.bool "lookup miss" true (Fib.lookup fib (addr "11.0.0.1") = None);
  check Alcotest.bool "delete" true (Fib.delete fib (net "10.1.0.0/16"));
  check Alcotest.bool "double delete" false (Fib.delete fib (net "10.1.0.0/16"))

(* LPM corner cases, exactly the decisions the data plane's LpmLookup
   element takes per packet. *)
let test_lpm_edge_cases () =
  let fib = Fib.create () in
  let route net_s nh ifname =
    Fib.add fib
      { Fib.net = net net_s; nexthop = addr nh; ifname; protocol = "static" }
  in
  let expect what a ifname =
    match Fib.lookup fib (addr a) with
    | Some e -> check Alcotest.string what ifname e.Fib.ifname
    | None -> Alcotest.failf "%s: unexpected miss for %s" what a
  in
  let expect_miss what a =
    check Alcotest.bool what true (Fib.lookup fib (addr a) = None)
  in
  expect_miss "empty table misses" "8.8.8.8";
  route "0.0.0.0/0" "10.0.0.254" "default";
  expect "default route catches strangers" "8.8.8.8" "default";
  expect "default route catches low space" "0.0.0.1" "default";
  route "10.0.0.0/8" "10.0.0.1" "agg8";
  route "10.1.0.0/16" "10.0.0.2" "agg16";
  route "10.1.2.0/24" "10.0.0.3" "net24";
  route "10.1.2.3/32" "10.0.0.4" "host32";
  expect "/32 host route wins" "10.1.2.3" "host32";
  expect "/24 covers its other hosts" "10.1.2.9" "net24";
  expect "/16 covers outside the /24" "10.1.9.9" "agg16";
  expect "/8 covers outside the /16" "10.9.9.9" "agg8";
  expect "outside the /8 falls to default" "11.0.0.1" "default";
  (* Deleting a covered prefix uncovers the covering one. *)
  check Alcotest.bool "delete /24" true (Fib.delete fib (net "10.1.2.0/24"));
  expect "covered hosts fall back to the /16" "10.1.2.9" "agg16";
  expect "/32 survives its covering /24" "10.1.2.3" "host32";
  check Alcotest.bool "delete default" true (Fib.delete fib (net "0.0.0.0/0"));
  expect_miss "no default: strangers miss again" "8.8.8.8"

(* --- XRL interface --------------------------------------------------- *)

let test_xrl_add_lookup_delete () =
  let _, _, _, fea, caller = setup () in
  ignore
    (call caller
       (fea_xrl "add_route4"
          [ Xrl_atom.ipv4net "net" (net "172.16.0.0/12");
            Xrl_atom.ipv4 "nexthop" (addr "10.0.0.254");
            Xrl_atom.txt "ifname" "eth0";
            Xrl_atom.txt "protocol" "static" ]));
  check Alcotest.int "installed" 1 (Fea.routes_installed fea);
  let args =
    call caller (fea_xrl "lookup_route4" [ Xrl_atom.ipv4 "addr" (addr "172.16.5.5") ])
  in
  check Alcotest.string "nexthop" "10.0.0.254"
    (Ipv4.to_string (Xrl_atom.get_ipv4 args "nexthop"));
  let args = call caller (fea_xrl "get_fib_size" []) in
  check Alcotest.int "fib size" 1 (Xrl_atom.get_u32 args "size");
  ignore
    (call caller
       (fea_xrl "delete_route4" [ Xrl_atom.ipv4net "net" (net "172.16.0.0/12") ]));
  let err, _ =
    Xrl_router.call_blocking caller
      (fea_xrl "lookup_route4" [ Xrl_atom.ipv4 "addr" (addr "172.16.5.5") ])
  in
  check Alcotest.bool "lookup now fails" false (Xrl_error.is_ok err)

let test_xrl_delete_missing () =
  let _, _, _, _, caller = setup () in
  let err, _ =
    Xrl_router.call_blocking caller
      (fea_xrl "delete_route4" [ Xrl_atom.ipv4net "net" (net "9.9.9.0/24") ])
  in
  match err with
  | Xrl_error.Command_failed _ -> ()
  | e -> Alcotest.failf "expected Command_failed, got %s" (Xrl_error.to_string e)

let test_get_interfaces () =
  let _, _, _, _, caller = setup () in
  let args = call caller (fea_xrl "get_interfaces" []) in
  match Xrl_atom.get_list args "interfaces" with
  | [ Txt "eth0"; Txt "10.0.0.1"; Txt "eth1"; Txt "10.1.0.1" ] -> ()
  | l -> Alcotest.failf "unexpected interface list (%d entries)" (List.length l)

(* --- profile points --------------------------------------------------- *)

let test_profile_points () =
  let loop = Eventloop.create () in
  let profiler = Profiler.create loop in
  let finder = Finder.create () in
  let fea = Fea.create ~profiler finder loop () in
  ignore fea;
  Profiler.enable_all profiler;
  let caller = Xrl_router.create finder loop ~class_name:"test" () in
  ignore
    (call caller
       (fea_xrl "add_route4"
          [ Xrl_atom.ipv4net "net" (net "10.0.0.0/8");
            Xrl_atom.ipv4 "nexthop" (addr "192.0.2.1") ]));
  let points = List.map (fun r -> r.Profiler.point) (Profiler.all_records profiler) in
  check (Alcotest.list Alcotest.string) "arrived then kernel"
    [ Fea.pp_arrived; Fea.pp_kernel ] points;
  (match Profiler.all_records profiler with
   | { payload = "add 10.0.0.0/8"; _ } :: _ -> ()
   | r :: _ -> Alcotest.failf "payload %S" r.Profiler.payload
   | [] -> Alcotest.fail "no records")

let test_profile_disabled_is_noop () =
  let loop = Eventloop.create () in
  let profiler = Profiler.create loop in
  let finder = Finder.create () in
  ignore (Fea.create ~profiler finder loop ());
  let caller = Xrl_router.create finder loop ~class_name:"test" () in
  ignore
    (call caller
       (fea_xrl "add_route4"
          [ Xrl_atom.ipv4net "net" (net "10.0.0.0/8");
            Xrl_atom.ipv4 "nexthop" (addr "192.0.2.1") ]));
  check Alcotest.int "no records" 0 (List.length (Profiler.all_records profiler))

(* --- UDP relay -------------------------------------------------------- *)

let test_udp_relay_roundtrip () =
  let loop, finder, _, _, caller = setup () in
  (* A fake protocol client that records datagrams relayed to it. *)
  let got = ref [] in
  let client = Xrl_router.create finder loop ~class_name:"fakeproto" () in
  Xrl_router.add_handler client ~interface:"fea_client" ~method_name:"recv"
    (fun args reply ->
       got :=
         ( Xrl_atom.get_u32 args "sockid",
           Ipv4.to_string (Xrl_atom.get_ipv4 args "src"),
           Xrl_atom.get_u32 args "sport",
           Xrl_atom.get_binary args "payload" )
         :: !got;
       reply Xrl_error.Ok_xrl []);
  let open_sock addr_s port =
    let args =
      call caller
        (Xrl.make ~target:"fea" ~interface:"fea_udp" ~method_name:"udp_open"
           [ Xrl_atom.txt "client_target" (Xrl_router.instance_name client);
             Xrl_atom.ipv4 "addr" (addr addr_s);
             Xrl_atom.u32 "port" port ])
    in
    Xrl_atom.get_u32 args "sockid"
  in
  let s1 = open_sock "10.0.0.1" 520 in
  let s2 = open_sock "10.1.0.1" 520 in
  check Alcotest.bool "distinct sockids" true (s1 <> s2);
  (* Send from socket 1 to socket 2's address through the relay. *)
  ignore
    (call caller
       (Xrl.make ~target:"fea" ~interface:"fea_udp" ~method_name:"udp_send"
          [ Xrl_atom.u32 "sockid" s1;
            Xrl_atom.ipv4 "dst" (addr "10.1.0.1");
            Xrl_atom.u32 "dport" 520;
            Xrl_atom.binary "payload" "\x02\x02RIPv2" ]));
  Eventloop.run loop;
  (match !got with
   | [ (sockid, src, sport, payload) ] ->
     check Alcotest.int "delivered to socket 2" s2 sockid;
     check Alcotest.string "src addr" "10.0.0.1" src;
     check Alcotest.int "src port" 520 sport;
     check Alcotest.string "payload" "\x02\x02RIPv2" payload
   | l -> Alcotest.failf "expected 1 delivery, got %d" (List.length l));
  (* Close and verify sends now fail. *)
  ignore
    (call caller
       (Xrl.make ~target:"fea" ~interface:"fea_udp" ~method_name:"udp_close"
          [ Xrl_atom.u32 "sockid" s1 ]));
  let err, _ =
    Xrl_router.call_blocking caller
      (Xrl.make ~target:"fea" ~interface:"fea_udp" ~method_name:"udp_send"
         [ Xrl_atom.u32 "sockid" s1;
           Xrl_atom.ipv4 "dst" (addr "10.1.0.1");
           Xrl_atom.u32 "dport" 520;
           Xrl_atom.binary "payload" "x" ])
  in
  check Alcotest.bool "send on closed socket fails" false (Xrl_error.is_ok err)

let test_udp_open_bad_addr () =
  let _, _, _, _, caller = setup () in
  let err, _ =
    Xrl_router.call_blocking caller
      (Xrl.make ~target:"fea" ~interface:"fea_udp" ~method_name:"udp_open"
         [ Xrl_atom.txt "client_target" "whoever";
           Xrl_atom.ipv4 "addr" (addr "203.0.113.1");
           Xrl_atom.u32 "port" 520 ])
  in
  match err with
  | Xrl_error.Command_failed msg ->
    check Alcotest.bool "mentions interface" true
      (Astring.String.is_infix ~affix:"interface" msg)
  | e -> Alcotest.failf "expected Command_failed, got %s" (Xrl_error.to_string e)

(* A restarted FEA must not inherit the dead generation's telemetry:
   xorp_top polls metrics by dotted name, and before the generation
   reset it would display the old instance's accumulated counts. *)
let test_restart_resets_metrics () =
  Telemetry.set_enabled true;
  let loop, finder, _, fea, caller = setup () in
  ignore
    (call caller
       (fea_xrl "add_route4"
          [ Xrl_atom.ipv4net "net" (net "172.16.0.0/12");
            Xrl_atom.ipv4 "nexthop" (addr "10.0.0.254");
            Xrl_atom.txt "ifname" "eth0";
            Xrl_atom.txt "protocol" "static" ]));
  let h = Telemetry.histogram "fea.install.latency_us" in
  check Alcotest.bool "first generation recorded an install" true
    (Telemetry.Histogram.count h > 0);
  Fea.shutdown fea;
  let fea2 =
    Fea.create ~interfaces:[ ("eth0", addr "10.0.0.1") ] finder loop ()
  in
  check Alcotest.int "restart starts the namespace from zero" 0
    (Telemetry.Histogram.count h);
  Fea.shutdown fea2

(* FIB lookup load used to be one global counter on Fib.t; it is now
   counted per consumer in telemetry, so control-plane lookups and
   data-plane forwarding no longer conflate. *)
let test_lookup_counted_per_consumer () =
  Telemetry.set_enabled true;
  let loop, _, _, fea, caller = setup () in
  let value name = Telemetry.counter_value (Telemetry.counter name) in
  ignore
    (call caller
       (fea_xrl "add_route4"
          [ Xrl_atom.ipv4net "net" (net "172.16.0.0/12");
            Xrl_atom.ipv4 "nexthop" (addr "10.0.0.254");
            Xrl_atom.txt "ifname" "eth0";
            Xrl_atom.txt "protocol" "static" ]));
  ignore
    (call caller
       (fea_xrl "lookup_route4" [ Xrl_atom.ipv4 "addr" (addr "172.16.5.5") ]));
  let err, _ =
    Xrl_router.call_blocking caller
      (fea_xrl "lookup_route4" [ Xrl_atom.ipv4 "addr" (addr "99.9.9.9") ])
  in
  check Alcotest.bool "miss still fails" false (Xrl_error.is_ok err);
  check Alcotest.int "control-plane lookups counted (hit and miss)" 2
    (value "fea.lookups.control");
  check Alcotest.int "no data-plane lookups yet" 0
    (value "fea.lookups.dataplane");
  (* One packet through the element graph is one data-plane lookup —
     and does not move the control-plane counter. *)
  let dp = Option.get (Fea.dataplane fea) in
  Dataplane.set_tx_hook dp (Some (fun _ -> `Absorb));
  (match
     Dataplane.inject dp ~ifname:"eth0"
       (Packet.make ~src:(addr "10.0.0.9") ~dst:(addr "172.16.5.5") ())
   with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  Eventloop.run_until_idle loop;
  check Alcotest.int "data-plane lookup counted" 1
    (value "fea.lookups.dataplane");
  check Alcotest.int "control-plane counter untouched" 2
    (value "fea.lookups.control")

let test_sole_instance () =
  let loop = Eventloop.create () in
  let finder = Finder.create () in
  ignore (Fea.create finder loop ());
  match Fea.create finder loop () with
  | _ -> Alcotest.fail "second FEA accepted"
  | exception Failure _ -> ()

let () =
  Alcotest.run "xorp_fea"
    [
      ( "fib",
        [
          Alcotest.test_case "basics" `Quick test_fib_basics;
          Alcotest.test_case "LPM edge cases" `Quick test_lpm_edge_cases;
          Alcotest.test_case "lookups counted per consumer" `Quick
            test_lookup_counted_per_consumer;
        ] );
      ( "xrl",
        [
          Alcotest.test_case "add/lookup/delete" `Quick
            test_xrl_add_lookup_delete;
          Alcotest.test_case "delete missing" `Quick test_xrl_delete_missing;
          Alcotest.test_case "get_interfaces" `Quick test_get_interfaces;
          Alcotest.test_case "sole instance" `Quick test_sole_instance;
          Alcotest.test_case "restart resets telemetry namespace" `Quick
            test_restart_resets_metrics;
        ] );
      ( "profile",
        [
          Alcotest.test_case "points recorded" `Quick test_profile_points;
          Alcotest.test_case "disabled is no-op" `Quick
            test_profile_disabled_is_noop;
        ] );
      ( "udp_relay",
        [
          Alcotest.test_case "roundtrip" `Quick test_udp_relay_roundtrip;
          Alcotest.test_case "bad local address" `Quick test_udp_open_bad_addr;
        ] );
    ]
