(* Tests for the Forwarding Engine Abstraction: the FIB proper, the
   XRL interface, the UDP relay, and profile points. *)

let check = Alcotest.check
let addr = Ipv4.of_string_exn
let net = Ipv4net.of_string_exn

let setup ?profiler () =
  let loop = Eventloop.create () in
  let finder = Finder.create () in
  let netsim = Netsim.create loop in
  let fea =
    Fea.create ?profiler
      ~interfaces:[ ("eth0", addr "10.0.0.1"); ("eth1", addr "10.1.0.1") ]
      ~netsim finder loop ()
  in
  let caller = Xrl_router.create finder loop ~class_name:"test" () in
  (loop, finder, netsim, fea, caller)

let call caller xrl =
  let err, args = Xrl_router.call_blocking caller xrl in
  if not (Xrl_error.is_ok err) then
    Alcotest.failf "XRL failed: %s" (Xrl_error.to_string err);
  args

let fea_xrl method_name args =
  Xrl.make ~target:"fea" ~interface:"fea" ~method_name args

(* --- Fib proper ------------------------------------------------------ *)

let test_fib_basics () =
  let fib = Fib.create () in
  Fib.add fib { Fib.net = net "10.0.0.0/8"; nexthop = addr "192.0.2.1";
                ifname = "eth0"; protocol = "static" };
  Fib.add fib { Fib.net = net "10.1.0.0/16"; nexthop = addr "192.0.2.2";
                ifname = "eth1"; protocol = "rip" };
  check Alcotest.int "size" 2 (Fib.size fib);
  (match Fib.lookup fib (addr "10.1.2.3") with
   | Some e -> check Alcotest.string "most specific wins" "eth1" e.Fib.ifname
   | None -> Alcotest.fail "no match");
  (match Fib.lookup fib (addr "10.2.0.1") with
   | Some e -> check Alcotest.string "/8 covers" "eth0" e.Fib.ifname
   | None -> Alcotest.fail "no match");
  check Alcotest.bool "lookup miss" true (Fib.lookup fib (addr "11.0.0.1") = None);
  check Alcotest.bool "delete" true (Fib.delete fib (net "10.1.0.0/16"));
  check Alcotest.bool "double delete" false (Fib.delete fib (net "10.1.0.0/16"));
  check Alcotest.int "lookup counter" 3 (Fib.lookups_performed fib)

(* --- XRL interface --------------------------------------------------- *)

let test_xrl_add_lookup_delete () =
  let _, _, _, fea, caller = setup () in
  ignore
    (call caller
       (fea_xrl "add_route4"
          [ Xrl_atom.ipv4net "net" (net "172.16.0.0/12");
            Xrl_atom.ipv4 "nexthop" (addr "10.0.0.254");
            Xrl_atom.txt "ifname" "eth0";
            Xrl_atom.txt "protocol" "static" ]));
  check Alcotest.int "installed" 1 (Fea.routes_installed fea);
  let args =
    call caller (fea_xrl "lookup_route4" [ Xrl_atom.ipv4 "addr" (addr "172.16.5.5") ])
  in
  check Alcotest.string "nexthop" "10.0.0.254"
    (Ipv4.to_string (Xrl_atom.get_ipv4 args "nexthop"));
  let args = call caller (fea_xrl "get_fib_size" []) in
  check Alcotest.int "fib size" 1 (Xrl_atom.get_u32 args "size");
  ignore
    (call caller
       (fea_xrl "delete_route4" [ Xrl_atom.ipv4net "net" (net "172.16.0.0/12") ]));
  let err, _ =
    Xrl_router.call_blocking caller
      (fea_xrl "lookup_route4" [ Xrl_atom.ipv4 "addr" (addr "172.16.5.5") ])
  in
  check Alcotest.bool "lookup now fails" false (Xrl_error.is_ok err)

let test_xrl_delete_missing () =
  let _, _, _, _, caller = setup () in
  let err, _ =
    Xrl_router.call_blocking caller
      (fea_xrl "delete_route4" [ Xrl_atom.ipv4net "net" (net "9.9.9.0/24") ])
  in
  match err with
  | Xrl_error.Command_failed _ -> ()
  | e -> Alcotest.failf "expected Command_failed, got %s" (Xrl_error.to_string e)

let test_get_interfaces () =
  let _, _, _, _, caller = setup () in
  let args = call caller (fea_xrl "get_interfaces" []) in
  match Xrl_atom.get_list args "interfaces" with
  | [ Txt "eth0"; Txt "10.0.0.1"; Txt "eth1"; Txt "10.1.0.1" ] -> ()
  | l -> Alcotest.failf "unexpected interface list (%d entries)" (List.length l)

(* --- profile points --------------------------------------------------- *)

let test_profile_points () =
  let loop = Eventloop.create () in
  let profiler = Profiler.create loop in
  let finder = Finder.create () in
  let fea = Fea.create ~profiler finder loop () in
  ignore fea;
  Profiler.enable_all profiler;
  let caller = Xrl_router.create finder loop ~class_name:"test" () in
  ignore
    (call caller
       (fea_xrl "add_route4"
          [ Xrl_atom.ipv4net "net" (net "10.0.0.0/8");
            Xrl_atom.ipv4 "nexthop" (addr "192.0.2.1") ]));
  let points = List.map (fun r -> r.Profiler.point) (Profiler.all_records profiler) in
  check (Alcotest.list Alcotest.string) "arrived then kernel"
    [ Fea.pp_arrived; Fea.pp_kernel ] points;
  (match Profiler.all_records profiler with
   | { payload = "add 10.0.0.0/8"; _ } :: _ -> ()
   | r :: _ -> Alcotest.failf "payload %S" r.Profiler.payload
   | [] -> Alcotest.fail "no records")

let test_profile_disabled_is_noop () =
  let loop = Eventloop.create () in
  let profiler = Profiler.create loop in
  let finder = Finder.create () in
  ignore (Fea.create ~profiler finder loop ());
  let caller = Xrl_router.create finder loop ~class_name:"test" () in
  ignore
    (call caller
       (fea_xrl "add_route4"
          [ Xrl_atom.ipv4net "net" (net "10.0.0.0/8");
            Xrl_atom.ipv4 "nexthop" (addr "192.0.2.1") ]));
  check Alcotest.int "no records" 0 (List.length (Profiler.all_records profiler))

(* --- UDP relay -------------------------------------------------------- *)

let test_udp_relay_roundtrip () =
  let loop, finder, _, _, caller = setup () in
  (* A fake protocol client that records datagrams relayed to it. *)
  let got = ref [] in
  let client = Xrl_router.create finder loop ~class_name:"fakeproto" () in
  Xrl_router.add_handler client ~interface:"fea_client" ~method_name:"recv"
    (fun args reply ->
       got :=
         ( Xrl_atom.get_u32 args "sockid",
           Ipv4.to_string (Xrl_atom.get_ipv4 args "src"),
           Xrl_atom.get_u32 args "sport",
           Xrl_atom.get_binary args "payload" )
         :: !got;
       reply Xrl_error.Ok_xrl []);
  let open_sock addr_s port =
    let args =
      call caller
        (Xrl.make ~target:"fea" ~interface:"fea_udp" ~method_name:"udp_open"
           [ Xrl_atom.txt "client_target" (Xrl_router.instance_name client);
             Xrl_atom.ipv4 "addr" (addr addr_s);
             Xrl_atom.u32 "port" port ])
    in
    Xrl_atom.get_u32 args "sockid"
  in
  let s1 = open_sock "10.0.0.1" 520 in
  let s2 = open_sock "10.1.0.1" 520 in
  check Alcotest.bool "distinct sockids" true (s1 <> s2);
  (* Send from socket 1 to socket 2's address through the relay. *)
  ignore
    (call caller
       (Xrl.make ~target:"fea" ~interface:"fea_udp" ~method_name:"udp_send"
          [ Xrl_atom.u32 "sockid" s1;
            Xrl_atom.ipv4 "dst" (addr "10.1.0.1");
            Xrl_atom.u32 "dport" 520;
            Xrl_atom.binary "payload" "\x02\x02RIPv2" ]));
  Eventloop.run loop;
  (match !got with
   | [ (sockid, src, sport, payload) ] ->
     check Alcotest.int "delivered to socket 2" s2 sockid;
     check Alcotest.string "src addr" "10.0.0.1" src;
     check Alcotest.int "src port" 520 sport;
     check Alcotest.string "payload" "\x02\x02RIPv2" payload
   | l -> Alcotest.failf "expected 1 delivery, got %d" (List.length l));
  (* Close and verify sends now fail. *)
  ignore
    (call caller
       (Xrl.make ~target:"fea" ~interface:"fea_udp" ~method_name:"udp_close"
          [ Xrl_atom.u32 "sockid" s1 ]));
  let err, _ =
    Xrl_router.call_blocking caller
      (Xrl.make ~target:"fea" ~interface:"fea_udp" ~method_name:"udp_send"
         [ Xrl_atom.u32 "sockid" s1;
           Xrl_atom.ipv4 "dst" (addr "10.1.0.1");
           Xrl_atom.u32 "dport" 520;
           Xrl_atom.binary "payload" "x" ])
  in
  check Alcotest.bool "send on closed socket fails" false (Xrl_error.is_ok err)

let test_udp_open_bad_addr () =
  let _, _, _, _, caller = setup () in
  let err, _ =
    Xrl_router.call_blocking caller
      (Xrl.make ~target:"fea" ~interface:"fea_udp" ~method_name:"udp_open"
         [ Xrl_atom.txt "client_target" "whoever";
           Xrl_atom.ipv4 "addr" (addr "203.0.113.1");
           Xrl_atom.u32 "port" 520 ])
  in
  match err with
  | Xrl_error.Command_failed msg ->
    check Alcotest.bool "mentions interface" true
      (Astring.String.is_infix ~affix:"interface" msg)
  | e -> Alcotest.failf "expected Command_failed, got %s" (Xrl_error.to_string e)

(* A restarted FEA must not inherit the dead generation's telemetry:
   xorp_top polls metrics by dotted name, and before the generation
   reset it would display the old instance's accumulated counts. *)
let test_restart_resets_metrics () =
  Telemetry.set_enabled true;
  let loop, finder, _, fea, caller = setup () in
  ignore
    (call caller
       (fea_xrl "add_route4"
          [ Xrl_atom.ipv4net "net" (net "172.16.0.0/12");
            Xrl_atom.ipv4 "nexthop" (addr "10.0.0.254");
            Xrl_atom.txt "ifname" "eth0";
            Xrl_atom.txt "protocol" "static" ]));
  let h = Telemetry.histogram "fea.install.latency_us" in
  check Alcotest.bool "first generation recorded an install" true
    (Telemetry.Histogram.count h > 0);
  Fea.shutdown fea;
  let fea2 =
    Fea.create ~interfaces:[ ("eth0", addr "10.0.0.1") ] finder loop ()
  in
  check Alcotest.int "restart starts the namespace from zero" 0
    (Telemetry.Histogram.count h);
  Fea.shutdown fea2

let test_sole_instance () =
  let loop = Eventloop.create () in
  let finder = Finder.create () in
  ignore (Fea.create finder loop ());
  match Fea.create finder loop () with
  | _ -> Alcotest.fail "second FEA accepted"
  | exception Failure _ -> ()

let () =
  Alcotest.run "xorp_fea"
    [
      ("fib", [ Alcotest.test_case "basics" `Quick test_fib_basics ]);
      ( "xrl",
        [
          Alcotest.test_case "add/lookup/delete" `Quick
            test_xrl_add_lookup_delete;
          Alcotest.test_case "delete missing" `Quick test_xrl_delete_missing;
          Alcotest.test_case "get_interfaces" `Quick test_get_interfaces;
          Alcotest.test_case "sole instance" `Quick test_sole_instance;
          Alcotest.test_case "restart resets telemetry namespace" `Quick
            test_restart_resets_metrics;
        ] );
      ( "profile",
        [
          Alcotest.test_case "points recorded" `Quick test_profile_points;
          Alcotest.test_case "disabled is no-op" `Quick
            test_profile_disabled_is_noop;
        ] );
      ( "udp_relay",
        [
          Alcotest.test_case "roundtrip" `Quick test_udp_relay_roundtrip;
          Alcotest.test_case "bad local address" `Quick test_udp_open_bad_addr;
        ] );
    ]
