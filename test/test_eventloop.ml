(* Tests for the event loop: timers, deferred events, background
   tasks, simulated-clock behaviour, and the real clock. *)

let check = Alcotest.check

let test_sim_clock_starts_at_zero () =
  let loop = Eventloop.create () in
  check (Alcotest.float 0.0) "t=0" 0.0 (Eventloop.now loop)

let test_timer_fires_and_advances_clock () =
  let loop = Eventloop.create () in
  let fired_at = ref (-1.0) in
  ignore (Eventloop.after loop 5.0 (fun () -> fired_at := Eventloop.now loop));
  Eventloop.run loop;
  check (Alcotest.float 1e-9) "fired at t=5" 5.0 !fired_at;
  check (Alcotest.float 1e-9) "clock stopped at 5" 5.0 (Eventloop.now loop)

let test_timer_order () =
  let loop = Eventloop.create () in
  let order = ref [] in
  let mark tag () = order := tag :: !order in
  ignore (Eventloop.after loop 3.0 (mark "c"));
  ignore (Eventloop.after loop 1.0 (mark "a"));
  ignore (Eventloop.after loop 2.0 (mark "b"));
  Eventloop.run loop;
  check (Alcotest.list Alcotest.string) "deadline order" [ "a"; "b"; "c" ]
    (List.rev !order)

let test_equal_deadline_fifo () =
  let loop = Eventloop.create () in
  let order = ref [] in
  for i = 1 to 5 do
    ignore (Eventloop.after loop 1.0 (fun () -> order := i :: !order))
  done;
  Eventloop.run loop;
  check (Alcotest.list Alcotest.int) "fifo among equal deadlines"
    [ 1; 2; 3; 4; 5 ] (List.rev !order)

let test_past_deadline_fires_once_sim () =
  let loop = Eventloop.create () in
  let fires = ref 0 in
  ignore (Eventloop.after loop (-5.0) (fun () -> incr fires));
  ignore (Eventloop.at loop (-3.0) (fun () -> incr fires));
  Eventloop.run loop;
  check Alcotest.int "each fired exactly once" 2 !fires;
  check (Alcotest.float 1e-9) "clock never went backwards" 0.0
    (Eventloop.now loop)

let test_past_deadline_fires_once_real () =
  let loop = Eventloop.create ~mode:`Real () in
  let fires = ref 0 in
  ignore (Eventloop.after loop (-1.0) (fun () -> incr fires));
  Eventloop.run ~until:(fun () -> !fires > 0) loop;
  Eventloop.run_until_idle loop;
  check Alcotest.int "fired exactly once" 1 !fires

let test_past_deadline_next_iteration () =
  (* A callback rescheduling into the past waits for the next sweep:
     the other timer due in this sweep runs first, and the chain cannot
     monopolise a single iteration. *)
  let loop = Eventloop.create () in
  let order = ref [] in
  let reschedules = ref 0 in
  let rec a () =
    order := "a" :: !order;
    incr reschedules;
    if !reschedules < 3 then ignore (Eventloop.after loop (-1.0) a)
  in
  ignore (Eventloop.after loop (-1.0) a);
  ignore (Eventloop.after loop (-1.0) (fun () -> order := "b" :: !order));
  Eventloop.run loop;
  check (Alcotest.list Alcotest.string) "reschedule waits for next sweep"
    [ "a"; "b"; "a"; "a" ] (List.rev !order)

let test_tie_break_hook () =
  let loop = Eventloop.create () in
  let order = ref [] in
  for i = 1 to 4 do
    ignore (Eventloop.after loop 1.0 (fun () -> order := i :: !order))
  done;
  ignore (Eventloop.after loop 2.0 (fun () -> order := 99 :: !order));
  (* Always pick the last of the due same-deadline batch. *)
  Eventloop.set_tie_break loop (Some (fun n -> n - 1));
  Eventloop.run loop;
  Eventloop.set_tie_break loop None;
  check (Alcotest.list Alcotest.int) "hook reorders only the equal batch"
    [ 4; 3; 2; 1; 99 ] (List.rev !order)

let test_cancel () =
  let loop = Eventloop.create () in
  let fired = ref false in
  let tm = Eventloop.after loop 1.0 (fun () -> fired := true) in
  check Alcotest.bool "pending" true (Eventloop.timer_pending tm);
  Eventloop.cancel tm;
  check Alcotest.bool "not pending" false (Eventloop.timer_pending tm);
  Eventloop.run loop;
  check Alcotest.bool "never fired" false !fired

let test_periodic () =
  let loop = Eventloop.create () in
  let count = ref 0 in
  ignore
    (Eventloop.periodic loop 2.0 (fun () ->
         incr count;
         !count < 4));
  Eventloop.run loop;
  check Alcotest.int "fired 4 times" 4 !count;
  check (Alcotest.float 1e-9) "stopped at t=8" 8.0 (Eventloop.now loop)

let test_periodic_cancel_mid_flight () =
  let loop = Eventloop.create () in
  let count = ref 0 in
  let tm = ref None in
  tm :=
    Some
      (Eventloop.periodic loop 1.0 (fun () ->
           incr count;
           if !count = 2 then Option.iter Eventloop.cancel !tm;
           true));
  Eventloop.run loop;
  check Alcotest.int "stopped by cancel" 2 !count

let test_defer_runs_before_timers () =
  let loop = Eventloop.create () in
  let order = ref [] in
  ignore (Eventloop.after loop 0.0 (fun () -> order := "timer" :: !order));
  Eventloop.defer loop (fun () -> order := "defer" :: !order);
  Eventloop.run loop;
  check (Alcotest.list Alcotest.string) "defer first" [ "defer"; "timer" ]
    (List.rev !order)

let test_self_defer_no_starvation () =
  let loop = Eventloop.create () in
  let defers = ref 0 in
  let timer_fired = ref false in
  let rec chain () =
    incr defers;
    if not !timer_fired && !defers < 1000 then Eventloop.defer loop chain
  in
  Eventloop.defer loop chain;
  ignore (Eventloop.after loop 0.0 (fun () -> timer_fired := true));
  Eventloop.run loop;
  check Alcotest.bool "timer got through" true !timer_fired;
  check Alcotest.bool "chain was cut short by the timer" true (!defers < 1000)

let test_background_task_runs_when_idle () =
  let loop = Eventloop.create () in
  let slices = ref 0 in
  ignore
    (Eventloop.add_task loop (fun () ->
         incr slices;
         if !slices >= 10 then `Done else `Continue));
  Eventloop.run loop;
  check Alcotest.int "all slices ran" 10 !slices

let test_background_task_yields_to_events () =
  (* A long task must not delay timer events: timers keep firing while
     the task chips away. *)
  let loop = Eventloop.create () in
  let slices = ref 0 in
  let fire_times = ref [] in
  ignore
    (Eventloop.add_task loop (fun () ->
         incr slices;
         if !slices >= 10000 then `Done else `Continue));
  ignore
    (Eventloop.periodic loop 1.0 (fun () ->
         fire_times := !slices :: !fire_times;
         List.length !fire_times < 3));
  Eventloop.run loop;
  check Alcotest.int "task finished" 10000 !slices;
  check Alcotest.int "timer fired thrice" 3 (List.length !fire_times)

let test_task_remove () =
  let loop = Eventloop.create () in
  let slices = ref 0 in
  let task = ref None in
  task :=
    Some
      (Eventloop.add_task loop (fun () ->
           incr slices;
           if !slices = 3 then Option.iter Eventloop.remove_task !task;
           `Continue));
  Eventloop.run loop;
  check Alcotest.int "self-removal honoured" 3 !slices

let test_task_accounting_exact () =
  (* remove_task must release the live_tasks slot immediately, not when
     the dead task is next dequeued: quiescent/live_tasks would
     otherwise over-report until the next task sweep. *)
  let loop = Eventloop.create () in
  let t1 = Eventloop.add_task loop (fun () -> `Continue) in
  let t2 = Eventloop.add_task loop (fun () -> `Continue) in
  check Alcotest.int "two live" 2 (Eventloop.live_tasks loop);
  Eventloop.remove_task t1;
  check Alcotest.int "eager decrement" 1 (Eventloop.live_tasks loop);
  Eventloop.remove_task t1;
  check Alcotest.int "idempotent" 1 (Eventloop.live_tasks loop);
  Eventloop.remove_task t2;
  check Alcotest.int "none live" 0 (Eventloop.live_tasks loop);
  check Alcotest.bool "quiescent without a sweep" true
    (Eventloop.quiescent loop);
  (* The stale queue slots are reclaimed without double-decrementing. *)
  Eventloop.run_until_idle loop;
  check Alcotest.int "still zero after sweep" 0 (Eventloop.live_tasks loop)

let test_task_accounting_self_remove () =
  (* A slice that removes its own task (then returns either way) must
     release exactly one slot. *)
  let loop = Eventloop.create () in
  let task = ref None in
  task :=
    Some
      (Eventloop.add_task loop (fun () ->
           Option.iter Eventloop.remove_task !task;
           `Done));
  Eventloop.run_until_idle loop;
  check Alcotest.int "no underflow" 0 (Eventloop.live_tasks loop);
  check Alcotest.bool "quiescent" true (Eventloop.quiescent loop)

let test_task_weights () =
  let loop = Eventloop.create () in
  let a = ref 0 and b = ref 0 in
  let first_10 = ref [] in
  let record tag = if List.length !first_10 < 12 then first_10 := tag :: !first_10 in
  ignore
    (Eventloop.add_task loop ~weight:3 (fun () ->
         incr a; record "a";
         if !a >= 9 then `Done else `Continue));
  ignore
    (Eventloop.add_task loop ~weight:1 (fun () ->
         incr b; record "b";
         if !b >= 3 then `Done else `Continue));
  Eventloop.run loop;
  check Alcotest.int "a total" 9 !a;
  check Alcotest.int "b total" 3 !b;
  (* weight 3 task runs 3 slices per turn *)
  check (Alcotest.list Alcotest.string) "interleaving"
    [ "a"; "a"; "a"; "b"; "a"; "a"; "a"; "b"; "a"; "a"; "a"; "b" ]
    (List.rev !first_10)

let test_run_until_time () =
  let loop = Eventloop.create () in
  let count = ref 0 in
  ignore (Eventloop.periodic loop 10.0 (fun () -> incr count; true));
  Eventloop.run_until_time loop 35.0;
  check Alcotest.int "3 ticks by t=35" 3 !count;
  check (Alcotest.float 1e-9) "clock exactly 35" 35.0 (Eventloop.now loop);
  Eventloop.run_until_time loop 40.0;
  check Alcotest.int "4th tick at t=40" 4 !count

let test_run_until_time_no_timers () =
  let loop = Eventloop.create () in
  Eventloop.run_until_time loop 12.5;
  check (Alcotest.float 1e-9) "clock advanced to target" 12.5
    (Eventloop.now loop)

let test_run_until_idle_leaves_future_timers () =
  let loop = Eventloop.create () in
  let fired = ref false in
  let deferred = ref false in
  ignore (Eventloop.after loop 100.0 (fun () -> fired := true));
  Eventloop.defer loop (fun () -> deferred := true);
  Eventloop.run_until_idle loop;
  check Alcotest.bool "deferred ran" true !deferred;
  check Alcotest.bool "future timer untouched" false !fired;
  check (Alcotest.float 1e-9) "clock did not jump" 0.0 (Eventloop.now loop)

let test_stop () =
  let loop = Eventloop.create () in
  let count = ref 0 in
  ignore
    (Eventloop.periodic loop 1.0 (fun () ->
         incr count;
         if !count = 5 then Eventloop.stop loop;
         true));
  Eventloop.run loop;
  check Alcotest.int "stopped at 5" 5 !count

let test_exception_in_callback_does_not_kill_loop () =
  let loop = Eventloop.create () in
  let after = ref false in
  ignore (Eventloop.after loop 1.0 (fun () -> failwith "boom"));
  ignore (Eventloop.after loop 2.0 (fun () -> after := true));
  Eventloop.run loop;
  check Alcotest.bool "later timer still fired" true !after

let test_real_mode_timer () =
  let loop = Eventloop.create ~mode:`Real () in
  let fired = ref false in
  let t0 = Unix.gettimeofday () in
  ignore (Eventloop.after loop 0.05 (fun () -> fired := true));
  Eventloop.run ~until:(fun () -> !fired) loop;
  let dt = Unix.gettimeofday () -. t0 in
  check Alcotest.bool "fired" true !fired;
  if dt < 0.04 || dt > 2.0 then Alcotest.failf "wall delay off: %.3fs" dt

let test_real_mode_fd () =
  let loop = Eventloop.create ~mode:`Real () in
  let r, w = Unix.pipe () in
  let got = ref "" in
  Eventloop.add_reader loop r (fun () ->
      let buf = Bytes.create 16 in
      let n = Unix.read r buf 0 16 in
      got := Bytes.sub_string buf 0 n;
      Eventloop.remove_reader loop r);
  ignore (Eventloop.after loop 0.01 (fun () ->
      ignore (Unix.write_substring w "ping" 0 4)));
  Eventloop.run ~until:(fun () -> !got <> "") loop;
  check Alcotest.string "read the ping" "ping" !got;
  Unix.close r;
  Unix.close w

(* Minheap, directly. *)
let test_minheap () =
  let h = Minheap.create () in
  check Alcotest.bool "empty" true (Minheap.is_empty h);
  List.iter (fun (p, v) -> Minheap.push h p v)
    [ (3.0, "c"); (1.0, "a"); (2.0, "b"); (1.0, "a2") ];
  check Alcotest.int "size" 4 (Minheap.size h);
  let order = ref [] in
  let rec drain () =
    match Minheap.pop h with
    | Some (_, v) -> order := v :: !order; drain ()
    | None -> ()
  in
  drain ();
  check (Alcotest.list Alcotest.string) "sorted, stable"
    [ "a"; "a2"; "b"; "c" ] (List.rev !order)

let test_minheap_stamp_and_peek_entry () =
  let h = Minheap.create () in
  check Alcotest.int "fresh heap stamp" 0 (Minheap.stamp h);
  Minheap.push h 2.0 "x";
  Minheap.push h 1.0 "y";
  Minheap.push h 1.0 "z";
  check Alcotest.int "stamp counts pushes" 3 (Minheap.stamp h);
  (match Minheap.peek_entry h with
   | Some (p, seq, v) ->
     check (Alcotest.float 1e-9) "min priority first" 1.0 p;
     check Alcotest.int "earliest equal push wins" 1 seq;
     check Alcotest.string "its value" "y" v
   | None -> Alcotest.fail "unexpectedly empty");
  ignore (Minheap.pop h);
  (match Minheap.peek_entry h with
   | Some (p, seq, v) ->
     check (Alcotest.float 1e-9) "still the equal batch" 1.0 p;
     check Alcotest.int "then the later equal push" 2 seq;
     check Alcotest.string "its value" "z" v
   | None -> Alcotest.fail "unexpectedly empty");
  check Alcotest.int "pops do not move the stamp" 3 (Minheap.stamp h)

let prop_minheap_sorts =
  QCheck.Test.make ~name:"minheap pops in sorted order" ~count:300
    QCheck.(list (pair (float_bound_exclusive 1000.0) small_int))
    (fun items ->
       let h = Minheap.create () in
       List.iter (fun (p, v) -> Minheap.push h p v) items;
       let rec drain acc =
         match Minheap.pop h with
         | Some (p, _) -> drain (p :: acc)
         | None -> List.rev acc
       in
       let popped = drain [] in
       List.length popped = List.length items
       && popped = List.sort compare (List.map fst items))

let () =
  Alcotest.run "xorp_eventloop"
    [
      ( "timers",
        [
          Alcotest.test_case "sim clock starts at 0" `Quick
            test_sim_clock_starts_at_zero;
          Alcotest.test_case "fires and advances clock" `Quick
            test_timer_fires_and_advances_clock;
          Alcotest.test_case "deadline order" `Quick test_timer_order;
          Alcotest.test_case "equal deadlines are FIFO" `Quick
            test_equal_deadline_fifo;
          Alcotest.test_case "past deadline fires once (sim)" `Quick
            test_past_deadline_fires_once_sim;
          Alcotest.test_case "past deadline fires once (real)" `Quick
            test_past_deadline_fires_once_real;
          Alcotest.test_case "past reschedule waits a sweep" `Quick
            test_past_deadline_next_iteration;
          Alcotest.test_case "tie-break hook" `Quick test_tie_break_hook;
          Alcotest.test_case "cancel" `Quick test_cancel;
          Alcotest.test_case "periodic" `Quick test_periodic;
          Alcotest.test_case "cancel periodic mid-flight" `Quick
            test_periodic_cancel_mid_flight;
        ] );
      ( "events",
        [
          Alcotest.test_case "defer before timers" `Quick
            test_defer_runs_before_timers;
          Alcotest.test_case "self-defer cannot starve timers" `Quick
            test_self_defer_no_starvation;
          Alcotest.test_case "exceptions contained" `Quick
            test_exception_in_callback_does_not_kill_loop;
        ] );
      ( "tasks",
        [
          Alcotest.test_case "runs when idle" `Quick
            test_background_task_runs_when_idle;
          Alcotest.test_case "yields to events" `Quick
            test_background_task_yields_to_events;
          Alcotest.test_case "removal" `Quick test_task_remove;
          Alcotest.test_case "removal accounting is exact" `Quick
            test_task_accounting_exact;
          Alcotest.test_case "self-removal accounting" `Quick
            test_task_accounting_self_remove;
          Alcotest.test_case "weights" `Quick test_task_weights;
        ] );
      ( "running",
        [
          Alcotest.test_case "run_until_time" `Quick test_run_until_time;
          Alcotest.test_case "run_until_time without timers" `Quick
            test_run_until_time_no_timers;
          Alcotest.test_case "run_until_idle" `Quick
            test_run_until_idle_leaves_future_timers;
          Alcotest.test_case "stop" `Quick test_stop;
        ] );
      ( "real_mode",
        [
          Alcotest.test_case "wall-clock timer" `Quick test_real_mode_timer;
          Alcotest.test_case "fd readability" `Quick test_real_mode_fd;
        ] );
      ( "minheap",
        Alcotest.test_case "basic" `Quick test_minheap
        :: Alcotest.test_case "stamp and peek_entry FIFO" `Quick
             test_minheap_stamp_and_peek_entry
        :: List.map Seeded.qcheck [ prop_minheap_sorts ] );
    ]
