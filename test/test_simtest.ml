(* Tests for the simulation harness itself: determinism, the scenario
   text form, the invariant checkers, and the fuzz/shrink driver. *)

let check = Alcotest.check

let assert_green what (o : Simtest.outcome) =
  match o.Simtest.violations with
  | [] -> ()
  | v :: _ ->
    Alcotest.failf "%s: %d violation(s), first: %s" what
      (List.length o.Simtest.violations) v

(* A light scenario so each run stays fast: one fault, one mid-run
   checkpoint. *)
let light =
  Simtest.scenario ~seed:11 ~horizon:100.
    [ Simtest.inject_routes 20. 5;
      Simtest.flap_at 40. Simtest.S_bgp;
      Simtest.check_at 70. ]

let test_benign_scenario_green () =
  assert_green "benign" (Simtest.run light)

let test_same_seed_identical_trace () =
  let a = Simtest.run light and b = Simtest.run light in
  assert_green "first" a;
  check Alcotest.bool "byte-identical traces" true
    (String.equal a.Simtest.trace b.Simtest.trace);
  check Alcotest.int "same dispatch count" a.Simtest.dispatched
    b.Simtest.dispatched

let test_different_seed_different_trace () =
  (* Not a hard guarantee for arbitrary pairs, but these two schedules
     differ in feed content, so their traces must. *)
  let a = Simtest.run (Simtest.generate ~seed:1) in
  let b = Simtest.run (Simtest.generate ~seed:2) in
  check Alcotest.bool "seeds explore different executions" false
    (String.equal a.Simtest.trace b.Simtest.trace)

let test_kill_restart_recovers () =
  let sc =
    Simtest.scenario ~seed:7 ~horizon:110.
      [ Simtest.kill_at 30. Simtest.C_fea;
        Simtest.restart_at 45. Simtest.C_fea ]
  in
  assert_green "kill+restart fea" (Simtest.run sc)

let test_kill_restart_rib_recovers () =
  (* The RIB itself is now in the kill set.  A dead-and-reborn RIB must
     come back with every protocol's table replayed into it, so the
     quiescent invariants (including the per-protocol origin counts and
     the reverse FIB->RIB check) hold at the horizon. *)
  let sc =
    Simtest.scenario ~seed:7 ~horizon:110.
      [ Simtest.inject_routes 15. 8;
        Simtest.kill_at 40. Simtest.C_rib;
        Simtest.restart_at 55. Simtest.C_rib ]
  in
  assert_green "kill+restart rib" (Simtest.run sc)

let test_rib_reborn_while_fea_down_recovers () =
  (* Found by the topology fuzzer (seed 32) and reproducible in the
     fixed world: kill the FEA, then kill and restart the RIB while
     the FEA is still down.  The reborn RIB must initialise its FEA
     liveness from the Finder (not assume up), hold FIB pushes, and
     replay the full FIB when the end-of-scenario repair finally
     brings the FEA back. *)
  let sc =
    Simtest.scenario ~seed:32 ~horizon:110.
      [ Simtest.kill_at 30. Simtest.C_fea;
        Simtest.kill_at 50. Simtest.C_rib;
        Simtest.restart_at 65. Simtest.C_rib ]
  in
  assert_green "rib reborn while fea down" (Simtest.run sc)

let test_text_form_roundtrip () =
  let sc =
    Simtest.scenario ~seed:99
      ~background:{ Simtest.dup = 0.05; delay = 0.001; jitter = 0.002 }
      ~xrl_latency:0.004 ~horizon:90.
      [ Simtest.kill_at 20. Simtest.C_ospf;
        Simtest.restart_at 31.5 Simtest.C_ospf;
        Simtest.flap_at 40.25 Simtest.S_rip;
        Simtest.inject_routes 50. 12;
        Simtest.surge_at 55. 9;
        Simtest.partition 60.;
        Simtest.delay_burst_at 70. ~dur:3.5;
        Simtest.check_at 80. ]
  in
  match Simtest.of_string (Simtest.to_string sc) with
  | Error e -> Alcotest.failf "reparse failed: %s" e
  | Ok sc' ->
    check Alcotest.string "print/parse fixpoint" (Simtest.to_string sc)
      (Simtest.to_string sc');
    check Alcotest.bool "structurally equal" true (sc = sc')

let test_injected_bug_caught_deterministically () =
  (* Disabling the RIB's replay-on-FEA-rebirth must turn a plain
     kill+restart scenario red — and only under the bad option. *)
  let sc =
    Simtest.scenario ~seed:3 ~horizon:110.
      [ Simtest.inject_routes 15. 6; Simtest.kill_at 40. Simtest.C_fea ]
  in
  assert_green "healthy recovery" (Simtest.run sc);
  let bad = { Simtest.default_opts with Simtest.fea_rebirth_replay = false } in
  let o = Simtest.run ~opts:bad sc in
  if o.Simtest.violations = [] then
    Alcotest.fail "rib-no-replay bug escaped the invariant checkers"

let test_fuzz_finds_and_shrinks_injected_bug () =
  let bad = { Simtest.default_opts with Simtest.fea_rebirth_replay = false } in
  let r = Simtest.fuzz ~opts:bad ~base:0 ~count:40 () in
  match r.Simtest.failed with
  | None -> Alcotest.fail "fuzzer missed the injected bug in 40 seeds"
  | Some (o, minimal) ->
    check Alcotest.bool "original outcome was red" true
      (o.Simtest.violations <> []);
    (* The minimal scenario must still fail, and must have been cut
       down to the essential fault (a kill with no paired restart;
       repair restarts it without replay). *)
    let o' = Simtest.run ~opts:bad minimal in
    check Alcotest.bool "shrunk scenario still fails" true
      (o'.Simtest.violations <> []);
    check Alcotest.bool "shrunk to at most 2 events" true
      (List.length minimal.Simtest.events <= 2);
    (* And the counterexample replays through its text form. *)
    (match Simtest.of_string (Simtest.to_string minimal) with
     | Error e -> Alcotest.failf "counterexample does not reparse: %s" e
     | Ok sc ->
       let o'' = Simtest.run ~opts:bad sc in
       check Alcotest.bool "reparsed counterexample still fails" true
         (o''.Simtest.violations <> []))

let test_dataplane_ttl_leak_caught () =
  (* Swapping DecTtl for the leaky variant must turn even an eventless
     scenario red: the forwarding invariant's TTL-expired probe leaks
     out of the router instead of dying in the graph. *)
  let sc = Simtest.scenario ~seed:5 ~horizon:60. [] in
  assert_green "healthy data plane" (Simtest.run sc);
  let bad = { Simtest.default_opts with Simtest.dataplane_ttl_leak = true } in
  let o = Simtest.run ~opts:bad sc in
  match o.Simtest.violations with
  | [] -> Alcotest.fail "dataplane-ttl-leak bug escaped the invariants"
  | v :: _ ->
    check Alcotest.bool "violation names the TTL leak" true
      (Astring.String.is_infix ~affix:"TTL-expired" v)

let test_fuzz_shrinks_dataplane_bug () =
  let bad = { Simtest.default_opts with Simtest.dataplane_ttl_leak = true } in
  let r = Simtest.fuzz ~opts:bad ~base:0 ~count:3 () in
  match r.Simtest.failed with
  | None -> Alcotest.fail "fuzzer missed the dataplane bug"
  | Some (_, minimal) ->
    (* The bug is independent of the fault schedule, so shrinking must
       strip every event and still fail. *)
    check Alcotest.int "shrunk to an empty schedule" 0
      (List.length minimal.Simtest.events);
    let o = Simtest.run ~opts:bad minimal in
    check Alcotest.bool "shrunk scenario still fails" true
      (o.Simtest.violations <> [])

let test_lane_reorder_caught () =
  (* A surge staged through BGP's sliced inbound path ends with an
     urgent withdrawal chasing a still-queued bulk add of the same
     prefix. With the per-prefix lane guard (the default) the
     withdrawal is demoted behind the add and everything converges;
     with [bgp_lane_unordered] the withdrawal overtakes it, the RIB
     applies delete-then-add, and BGP and the RIB disagree about the
     prefix forever after. *)
  let sc = Simtest.scenario ~seed:3 ~horizon:60. [ Simtest.surge_at 30. 10 ] in
  assert_green "ordered lanes" (Simtest.run sc);
  let bad = { Simtest.default_opts with Simtest.bgp_lane_unordered = true } in
  let o = Simtest.run ~opts:bad sc in
  match o.Simtest.violations with
  | [] -> Alcotest.fail "lane-reorder bug escaped the invariant checkers"
  | v :: _ ->
    check Alcotest.bool "violation names the BGP/RIB disagreement" true
      (Astring.String.is_infix ~affix:"RIB ebgp origin" v)

let test_fuzz_finds_and_shrinks_lane_reorder () =
  let bad = { Simtest.default_opts with Simtest.bgp_lane_unordered = true } in
  let r = Simtest.fuzz ~opts:bad ~base:0 ~count:10 () in
  match r.Simtest.failed with
  | None -> Alcotest.fail "fuzzer missed the lane-reorder bug in 10 seeds"
  | Some (o, minimal) ->
    check Alcotest.bool "original outcome was red" true
      (o.Simtest.violations <> []);
    (* Only a surge provokes the race, so shrinking must cut the
       schedule down to (at least) one. *)
    check Alcotest.bool "shrunk scenario keeps a surge" true
      (List.exists
         (fun e -> match e.Simtest.op with Simtest.Surge _ -> true | _ -> false)
         minimal.Simtest.events);
    check Alcotest.bool "shrunk to at most 2 events" true
      (List.length minimal.Simtest.events <= 2);
    let o' = Simtest.run ~opts:bad minimal in
    check Alcotest.bool "shrunk scenario still fails" true
      (o'.Simtest.violations <> []);
    (match Simtest.of_string (Simtest.to_string minimal) with
     | Error e -> Alcotest.failf "counterexample does not reparse: %s" e
     | Ok sc ->
       let o'' = Simtest.run ~opts:bad sc in
       check Alcotest.bool "reparsed counterexample still fails" true
         (o''.Simtest.violations <> []))

let test_rib_no_resync_caught () =
  (* Protocols that mark a reborn RIB up but never replay their tables
     into it leave the new RIB empty while BGP/RIP/OSPF still hold
     routes.  The per-protocol origin-count invariant must name the
     disagreement; the healthy default must stay green on the same
     schedule. *)
  let sc =
    Simtest.scenario ~seed:7 ~horizon:110.
      [ Simtest.inject_routes 15. 8;
        Simtest.kill_at 40. Simtest.C_rib;
        Simtest.restart_at 55. Simtest.C_rib ]
  in
  assert_green "healthy rib rebirth" (Simtest.run sc);
  let bad = { Simtest.default_opts with Simtest.rib_resync = false } in
  let o = Simtest.run ~opts:bad sc in
  match o.Simtest.violations with
  | [] -> Alcotest.fail "rib-no-resync bug escaped the invariant checkers"
  | v :: _ ->
    check Alcotest.bool "violation names an origin-count disagreement" true
      (Astring.String.is_infix ~affix:"origin" v)

let test_fuzz_finds_and_shrinks_rib_no_resync () =
  let bad = { Simtest.default_opts with Simtest.rib_resync = false } in
  let r = Simtest.fuzz ~opts:bad ~base:0 ~count:40 () in
  match r.Simtest.failed with
  | None -> Alcotest.fail "fuzzer missed the rib-no-resync bug in 40 seeds"
  | Some (o, minimal) ->
    check Alcotest.bool "original outcome was red" true
      (o.Simtest.violations <> []);
    (* Only a RIB kill provokes this bug, so the counterexample must
       keep one; everything else should shrink away. *)
    check Alcotest.bool "shrunk scenario keeps a rib kill" true
      (List.exists
         (fun e ->
           match e.Simtest.op with
           | Simtest.Kill Simtest.C_rib -> true
           | _ -> false)
         minimal.Simtest.events);
    check Alcotest.bool "shrunk to at most 2 events" true
      (List.length minimal.Simtest.events <= 2);
    let o' = Simtest.run ~opts:bad minimal in
    check Alcotest.bool "shrunk scenario still fails" true
      (o'.Simtest.violations <> []);
    (match Simtest.of_string (Simtest.to_string minimal) with
     | Error e -> Alcotest.failf "counterexample does not reparse: %s" e
     | Ok sc ->
       let o'' = Simtest.run ~opts:bad sc in
       check Alcotest.bool "reparsed counterexample still fails" true
         (o''.Simtest.violations <> []))

let test_multi_domain_smoke () =
  (* The same whole-router scenario with the DUT's decision + RIB
     arbitration sharded across 4 worker domains. A no-kill schedule
     (shard workers hold per-range state that a killed-and-reborn
     component only rebuilds through protocol resync): injections,
     a flap and a surge exercise both dispatch directions and the
     urgent lane, a mid-run checkpoint plus the final checks run the
     full invariant suite, each preceded by the sharded quiescent
     invariants (pool drained; replay of every shard slice is a
     no-op, i.e. the union of slices equals the merged tables). *)
  let sc =
    Simtest.scenario ~seed:11 ~horizon:100.
      [ Simtest.inject_routes 20. 12;
        Simtest.flap_at 35. Simtest.S_bgp;
        Simtest.surge_at 45. 8;
        Simtest.check_at 70. ]
  in
  let opts = { Simtest.default_opts with Simtest.domains = 4 } in
  assert_green "sharded (4 domains)" (Simtest.run ~opts sc)

let test_multi_domain_matches_single_domain_counts () =
  (* Sharding must be invisible at quiescent points: the same scenario
     run single-domain and 4-way sharded converges to the same route
     counts everywhere (the trace itself is not compared — delta
     application order between shards is scheduling-dependent). *)
  let sc =
    Simtest.scenario ~seed:23 ~horizon:100.
      [ Simtest.inject_routes 20. 10; Simtest.flap_at 40. Simtest.S_ospf ]
  in
  let single = Simtest.run sc in
  assert_green "single-domain" single;
  let sharded =
    Simtest.run ~opts:{ Simtest.default_opts with Simtest.domains = 4 } sc
  in
  assert_green "sharded" sharded;
  (* The per-checkpoint signature lines (route counts per component)
     are embedded in both traces; equality of the final one is the
     cross-mode agreement we are after. *)
  let final_signature trace =
    String.split_on_char '\n' trace
    |> List.filter (fun l ->
           Astring.String.is_infix ~affix:"final: invariants checked" l)
    |> function
    | [ l ] -> (
      match Astring.String.cut ~sep:"(" l with
      | Some (_, sig_part) -> sig_part
      | None -> Alcotest.failf "no signature in %S" l)
    | l -> Alcotest.failf "expected one final check line, got %d" (List.length l)
  in
  check Alcotest.string "same quiescent route counts"
    (final_signature single.Simtest.trace)
    (final_signature sharded.Simtest.trace)

(* --- the topology world ------------------------------------------------ *)

let test_topo_scenario_green () =
  (* A mixed-protocol network with a component kill and a link flap:
     everything must re-converge and pass the network-wide checks. *)
  let topo = Topology.mixed 5 in
  let sc =
    Simtest.scenario ~seed:19 ~horizon:110. ~topology:topo
      [ Simtest.kill_in_at 25. "r2" Simtest.C_bgp;
        Simtest.restart_in_at 40. "r2" Simtest.C_bgp;
        Simtest.flap_link_at 60. "r1" "r2" ]
  in
  assert_green "topology scenario" (Simtest.run sc)

let test_topo_same_seed_identical_trace () =
  let sc =
    Simtest.scenario ~seed:31 ~horizon:100.
      ~topology:(Topology.ibgp_fullmesh 4)
      [ Simtest.flap_link_at 30. "r1" "r2"; Simtest.check_at 70. ]
  in
  let a = Simtest.run sc and b = Simtest.run sc in
  assert_green "first topo run" a;
  check Alcotest.bool "byte-identical traces" true
    (String.equal a.Simtest.trace b.Simtest.trace);
  check Alcotest.int "same dispatch count" a.Simtest.dispatched
    b.Simtest.dispatched

let test_topo_text_form_roundtrip () =
  let sc =
    Simtest.scenario ~seed:77
      ~background:{ Simtest.dup = 0.05; delay = 0.; jitter = 0.01 }
      ~xrl_latency:0.002 ~horizon:90.
      ~topology:(Topology.generate ~seed:5)
      [ Simtest.kill_in_at 20. "r1" Simtest.C_rib;
        Simtest.restart_in_at 33.5 "r1" Simtest.C_rib;
        Simtest.sever_link_at 41. "r1" "r2";
        Simtest.heal_link_at 55. "r1" "r2";
        Simtest.flap_link_at 62. "r1" "r2";
        Simtest.check_at 80. ]
  in
  match Simtest.of_string (Simtest.to_string sc) with
  | Error e -> Alcotest.failf "reparse failed: %s" e
  | Ok sc' ->
    check Alcotest.string "print/parse fixpoint" (Simtest.to_string sc)
      (Simtest.to_string sc');
    check Alcotest.bool "topology survived" true
      (match sc'.Simtest.topology with
       | Some t -> Topology.equal t (Topology.generate ~seed:5)
       | None -> false);
    check Alcotest.bool "structurally equal" true (sc = sc')

let test_mesh_partition_heal_caught () =
  (* The injected bug: a re-established BGP session is never
     re-dumped, so routes withdrawn during a partition stay missing
     after the heal. A single link flap on a two-router network
     exposes it; the healthy default must stay green on the same
     schedule. *)
  let sc =
    Simtest.scenario ~seed:1 ~horizon:110. ~topology:(Topology.chain 2)
      [ Simtest.flap_link_at 30. "r1" "r2" ]
  in
  assert_green "healthy redump" (Simtest.run sc);
  let bad = { Simtest.default_opts with Simtest.bgp_redump = false } in
  let o = Simtest.run ~opts:bad sc in
  match o.Simtest.violations with
  | [] -> Alcotest.fail "mesh-partition-heal bug escaped the invariants"
  | v :: _ ->
    check Alcotest.bool "violation names lost reachability" true
      (Astring.String.is_infix ~affix:"should reach" v)

let test_topo_fuzz_finds_and_shrinks_mesh_partition_heal () =
  let bad = { Simtest.default_opts with Simtest.bgp_redump = false } in
  let r = Simtest.fuzz ~opts:bad ~topo:true ~base:0 ~count:60 () in
  match r.Simtest.failed with
  | None ->
    Alcotest.fail "topology fuzzer missed mesh-partition-heal in 60 seeds"
  | Some (o, minimal) ->
    check Alcotest.bool "original outcome was red" true
      (o.Simtest.violations <> []);
    (* The topology itself must have shrunk: a handful of routers and
       links, and a schedule stripped to the essential link fault. *)
    let topo =
      match minimal.Simtest.topology with
      | Some t -> t
      | None -> Alcotest.fail "minimal scenario lost its topology"
    in
    check Alcotest.bool "shrunk to at most 3 routers" true
      (Topology.size topo <= 3);
    check Alcotest.bool "shrunk to at most 2 links" true
      (List.length topo.Topology.links <= 2);
    check Alcotest.bool "shrunk to at most 2 events" true
      (List.length minimal.Simtest.events <= 2);
    check Alcotest.bool "a link fault survived shrinking" true
      (List.exists
         (fun e ->
           match e.Simtest.op with
           | Simtest.Link_flap _ | Simtest.Link_sever _ -> true
           | _ -> false)
         minimal.Simtest.events);
    let o' = Simtest.run ~opts:bad minimal in
    check Alcotest.bool "shrunk scenario still fails" true
      (o'.Simtest.violations <> []);
    (match Simtest.of_string (Simtest.to_string minimal) with
     | Error e -> Alcotest.failf "counterexample does not reparse: %s" e
     | Ok sc ->
       let o'' = Simtest.run ~opts:bad sc in
       check Alcotest.bool "reparsed counterexample still fails" true
         (o''.Simtest.violations <> []))

let test_topo_fuzz_batch_green () =
  let r = Simtest.fuzz ~topo:true ~base:0 ~count:15 () in
  check Alcotest.int "all topology seeds ran" 15 r.Simtest.seeds_run;
  match r.Simtest.failed with
  | None -> ()
  | Some (o, minimal) ->
    Alcotest.failf "topology seed %d failed (%s); minimal:\n%s"
      o.Simtest.ran.Simtest.seed
      (String.concat "; " o.Simtest.violations)
      (Simtest.to_string minimal)

let test_fuzz_batch_green () =
  let r = Simtest.fuzz ~base:0 ~count:25 () in
  check Alcotest.int "all seeds ran" 25 r.Simtest.seeds_run;
  match r.Simtest.failed with
  | None -> ()
  | Some (o, minimal) ->
    Alcotest.failf "seed %d failed (%s); minimal:\n%s"
      o.Simtest.ran.Simtest.seed
      (String.concat "; " o.Simtest.violations)
      (Simtest.to_string minimal)

let () =
  Alcotest.run "xorp_simtest"
    [
      ( "determinism",
        [
          Alcotest.test_case "benign scenario green" `Quick
            test_benign_scenario_green;
          Alcotest.test_case "same seed, same trace" `Quick
            test_same_seed_identical_trace;
          Alcotest.test_case "different seeds diverge" `Quick
            test_different_seed_different_trace;
          Alcotest.test_case "kill + restart recovers" `Quick
            test_kill_restart_recovers;
          Alcotest.test_case "kill + restart of the RIB recovers" `Quick
            test_kill_restart_rib_recovers;
          Alcotest.test_case "RIB reborn while the FEA is down recovers"
            `Quick test_rib_reborn_while_fea_down_recovers;
        ] );
      ( "text_form",
        [ Alcotest.test_case "roundtrip" `Quick test_text_form_roundtrip ] );
      ( "multi_domain",
        [
          Alcotest.test_case "sharded whole-router run green" `Quick
            test_multi_domain_smoke;
          Alcotest.test_case "sharded counts match single-domain" `Quick
            test_multi_domain_matches_single_domain_counts;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "injected bug caught" `Quick
            test_injected_bug_caught_deterministically;
          Alcotest.test_case "fuzzer finds and shrinks it" `Quick
            test_fuzz_finds_and_shrinks_injected_bug;
          Alcotest.test_case "dataplane ttl leak caught" `Quick
            test_dataplane_ttl_leak_caught;
          Alcotest.test_case "fuzzer shrinks the dataplane bug" `Quick
            test_fuzz_shrinks_dataplane_bug;
          Alcotest.test_case "lane reorder caught" `Quick
            test_lane_reorder_caught;
          Alcotest.test_case "fuzzer finds and shrinks lane reorder" `Quick
            test_fuzz_finds_and_shrinks_lane_reorder;
          Alcotest.test_case "rib-no-resync caught" `Quick
            test_rib_no_resync_caught;
          Alcotest.test_case "fuzzer finds and shrinks rib-no-resync" `Quick
            test_fuzz_finds_and_shrinks_rib_no_resync;
          Alcotest.test_case "green batch" `Quick test_fuzz_batch_green;
        ] );
      ( "topology",
        [
          Alcotest.test_case "mixed network with faults green" `Quick
            test_topo_scenario_green;
          Alcotest.test_case "same seed, same trace" `Quick
            test_topo_same_seed_identical_trace;
          Alcotest.test_case "text form roundtrip" `Quick
            test_topo_text_form_roundtrip;
          Alcotest.test_case "mesh-partition-heal caught" `Quick
            test_mesh_partition_heal_caught;
          Alcotest.test_case "topology fuzzer finds and shrinks it" `Quick
            test_topo_fuzz_finds_and_shrinks_mesh_partition_heal;
          Alcotest.test_case "green topology batch" `Quick
            test_topo_fuzz_batch_green;
        ] );
    ]
