(* RIP tests: packet codec, then full-stack routers (RIP + RIB + FEA
   per router) exchanging RIPv2 datagrams through the FEA's UDP relay
   over the simulated network. *)

let check = Alcotest.check
let addr = Ipv4.of_string_exn
let net = Ipv4net.of_string_exn

(* --- codec ----------------------------------------------------------- *)

let test_packet_roundtrip () =
  let pkt =
    { Rip_packet.command = Rip_packet.Response;
      entries =
        [ { Rip_packet.net = net "10.0.0.0/8"; nexthop = addr "10.0.0.9";
            metric = 3; tag = 77 };
          { Rip_packet.net = net "128.16.64.0/18"; nexthop = Ipv4.zero;
            metric = 16; tag = 0 } ] }
  in
  match Rip_packet.decode (Rip_packet.encode pkt) with
  | Ok back ->
    check Alcotest.int "entries" 2 (List.length back.Rip_packet.entries);
    let e1 = List.hd back.Rip_packet.entries in
    check Alcotest.string "net" "10.0.0.0/8" (Ipv4net.to_string e1.Rip_packet.net);
    check Alcotest.int "metric" 3 e1.Rip_packet.metric;
    check Alcotest.int "tag" 77 e1.Rip_packet.tag;
    check Alcotest.string "nexthop" "10.0.0.9"
      (Ipv4.to_string e1.Rip_packet.nexthop)
  | Error e -> Alcotest.fail e

let test_whole_table_request () =
  let pkt = Rip_packet.whole_table_request in
  check Alcotest.bool "recognized" true (Rip_packet.is_whole_table_request pkt);
  match Rip_packet.decode (Rip_packet.encode pkt) with
  | Ok back ->
    check Alcotest.bool "survives the wire" true
      (Rip_packet.is_whole_table_request back)
  | Error e -> Alcotest.fail e

let test_packet_rejects () =
  List.iter
    (fun (s, what) ->
       match Rip_packet.decode s with
       | Ok _ -> Alcotest.failf "accepted %s" what
       | Error _ -> ())
    [ ("", "empty");
      ("\x07\x02\x00\x00", "bad command");
      ("\x02\x01\x00\x00", "RIPv1");
      ( "\x02\x02\x00\x00\x00\x02\x00\x00\x0a\x00\x00\x00\xff\x00\xff\x00\x0a\x00\x00\x09\x00\x00\x00\x03",
        "non-contiguous mask" );
      ( "\x02\x02\x00\x00\x00\x02\x00\x00\x0a\x00\x00\x00\xff\x00\x00\x00\x0a\x00\x00\x09\x00\x00\x00\x63",
        "metric 99" ) ]

let test_split () =
  let entries =
    List.init 60 (fun i ->
        { Rip_packet.net = Ipv4net.make (Ipv4.of_octets 10 (i / 200) (i mod 200) 0) 24;
          nexthop = Ipv4.zero; metric = 1; tag = 0 })
  in
  let packets = Rip_packet.split Rip_packet.Response entries in
  check (Alcotest.list Alcotest.int) "25+25+10"
    [ 25; 25; 10 ]
    (List.map (fun p -> List.length p.Rip_packet.entries) packets)

(* --- full-stack routers ------------------------------------------------ *)

type router = {
  finder : Finder.t;
  fea : Fea.t;
  rib : Rib.t;
  rip : Rip_process.t;
}

let make_router ~loop ~netsim ~ifaddr ~neighbors ?(rip_cfg = fun c -> c) () =
  let finder = Finder.create () in
  let fea =
    Fea.create ~interfaces:[ ("eth0", addr ifaddr) ] ~netsim finder loop ()
  in
  let rib = Rib.create finder loop () in
  let cfg =
    rip_cfg
      (Rip_process.default_config
         ~ifaces:
           [ { Rip_process.if_addr = addr ifaddr;
               if_neighbors = List.map addr neighbors } ])
  in
  let rip = Rip_process.create finder loop cfg in
  { finder; fea; rib; rip }

let run_for loop seconds =
  Eventloop.run_until_time loop (Eventloop.now loop +. seconds)

let pair ?(rip_cfg = fun c -> c) () =
  let loop = Eventloop.create () in
  let netsim = Netsim.create loop in
  let r1 =
    make_router ~loop ~netsim ~ifaddr:"10.0.0.1" ~neighbors:[ "10.0.0.2" ]
      ~rip_cfg ()
  in
  let r2 =
    make_router ~loop ~netsim ~ifaddr:"10.0.0.2" ~neighbors:[ "10.0.0.1" ]
      ~rip_cfg ()
  in
  Rip_process.start r1.rip;
  Rip_process.start r2.rip;
  run_for loop 1.0;
  (loop, r1, r2)

let test_exchange () =
  let loop, r1, r2 = pair () in
  Rip_process.inject r1.rip ~net:(net "172.16.0.0/12") ();
  Rip_process.inject r1.rip ~net:(net "192.168.0.0/16") ~metric:3 ();
  run_for loop 5.0;
  check Alcotest.int "r2 learned both" 2 (Rip_process.route_count r2.rip);
  (match Rip_process.lookup r2.rip (net "172.16.0.0/12") with
   | Some (metric, nexthop) ->
     check Alcotest.int "metric incremented" 2 metric;
     check Alcotest.string "nexthop is r1" "10.0.0.1" (Ipv4.to_string nexthop)
   | None -> Alcotest.fail "route missing");
  (match Rip_process.lookup r2.rip (net "192.168.0.0/16") with
   | Some (metric, _) -> check Alcotest.int "3+1" 4 metric
   | None -> Alcotest.fail "route missing");
  (* learned routes land in r2's RIB and FIB *)
  (match Rib.lookup_best r2.rib (addr "172.16.5.5") with
   | Some r -> check Alcotest.string "in RIB as rip" "rip" r.Rib_route.protocol
   | None -> Alcotest.fail "not in RIB");
  match Fib.lookup (Fea.fib r2.fea) (addr "172.16.5.5") with
  | Some e -> check Alcotest.string "in FIB" "rip" e.Fib.protocol
  | None -> Alcotest.fail "not in FIB"

let test_triggered_update_is_fast () =
  let loop, r1, r2 = pair () in
  (* Let the initial exchange settle, then inject mid-cycle: the
     triggered update must deliver it in ~1 s, far below the 30 s
     periodic interval. *)
  run_for loop 10.0;
  let t0 = Eventloop.now loop in
  Rip_process.inject r1.rip ~net:(net "172.16.0.0/12") ();
  Eventloop.run
    ~until:(fun () -> Rip_process.route_count r2.rip >= 1)
    loop;
  let dt = Eventloop.now loop -. t0 in
  check Alcotest.bool
    (Printf.sprintf "arrived in %.2fs (triggered, not periodic)" dt)
    true (dt < 5.0)

let test_withdrawal_poisons () =
  let loop, r1, r2 = pair () in
  Rip_process.inject r1.rip ~net:(net "172.16.0.0/12") ();
  run_for loop 5.0;
  check Alcotest.int "learned" 1 (Rip_process.route_count r2.rip);
  Rip_process.retract r1.rip (net "172.16.0.0/12");
  run_for loop 5.0;
  check Alcotest.int "poisoned away" 0 (Rip_process.route_count r2.rip);
  check Alcotest.bool "gone from RIB" true
    (Rib.lookup_best r2.rib (addr "172.16.5.5") = None)

let test_expiry_without_updates () =
  let loop, r1, r2 = pair () in
  Rip_process.inject r1.rip ~net:(net "172.16.0.0/12") ();
  run_for loop 5.0;
  check Alcotest.int "learned" 1 (Rip_process.route_count r2.rip);
  (* r1 dies silently: no poison, no updates. r2 must expire the route
     after the 180 s timeout. *)
  Rip_process.shutdown r1.rip;
  run_for loop 200.0;
  check Alcotest.int "expired" 0 (Rip_process.route_count r2.rip);
  check Alcotest.int "expiry counted" 1 (Rip_process.routes_expired r2.rip);
  check Alcotest.bool "gone from RIB" true
    (Rib.lookup_best r2.rib (addr "172.16.5.5") = None)

let test_three_router_chain_and_split_horizon () =
  let loop = Eventloop.create () in
  let netsim = Netsim.create loop in
  let a =
    make_router ~loop ~netsim ~ifaddr:"10.0.1.1" ~neighbors:[ "10.0.1.2" ] ()
  in
  let b_cfg =
    Rip_process.default_config
      ~ifaces:
        [ { Rip_process.if_addr = addr "10.0.1.2";
            if_neighbors = [ addr "10.0.1.1" ] };
          { Rip_process.if_addr = addr "10.0.2.2";
            if_neighbors = [ addr "10.0.2.3" ] } ]
  in
  let b_finder = Finder.create () in
  let _b_fea =
    Fea.create
      ~interfaces:[ ("eth0", addr "10.0.1.2"); ("eth1", addr "10.0.2.2") ]
      ~netsim b_finder loop ()
  in
  let _b_rib = Rib.create b_finder loop () in
  let b_rip = Rip_process.create b_finder loop b_cfg in
  let c =
    make_router ~loop ~netsim ~ifaddr:"10.0.2.3" ~neighbors:[ "10.0.2.2" ] ()
  in
  Rip_process.start a.rip;
  Rip_process.start b_rip;
  Rip_process.start c.rip;
  run_for loop 2.0;
  Rip_process.inject a.rip ~net:(net "172.16.0.0/12") ();
  run_for loop 40.0;
  (match Rip_process.lookup b_rip (net "172.16.0.0/12") with
   | Some (m, _) -> check Alcotest.int "b at metric 2" 2 m
   | None -> Alcotest.fail "b missing the route");
  (match Rip_process.lookup c.rip (net "172.16.0.0/12") with
   | Some (m, nh) ->
     check Alcotest.int "c at metric 3" 3 m;
     check Alcotest.string "via b" "10.0.2.2" (Ipv4.to_string nh)
   | None -> Alcotest.fail "c missing the route");
  (* Split horizon: a's own route must never come back to a with a
     higher metric (count-to-infinity protection). a's entry stays
     locally originated at metric 1. *)
  (match Rip_process.lookup a.rip (net "172.16.0.0/12") with
   | Some (m, _) -> check Alcotest.int "a keeps metric 1" 1 m
   | None -> Alcotest.fail "a lost its own route");
  (* Withdraw at a; the poison must ripple through b to c. *)
  Rip_process.retract a.rip (net "172.16.0.0/12");
  run_for loop 10.0;
  check Alcotest.int "c withdrew" 0 (Rip_process.route_count c.rip)

let test_metric_infinity_not_learned () =
  let loop, r1, r2 = pair () in
  (* Inject at metric 15: r2 would learn it at 16 = infinity. *)
  Rip_process.inject r1.rip ~net:(net "172.16.0.0/12") ~metric:15 ();
  run_for loop 40.0;
  check Alcotest.int "not learned at infinity" 0 (Rip_process.route_count r2.rip)

let test_better_route_replaces () =
  let loop = Eventloop.create () in
  let netsim = Netsim.create loop in
  (* c hears the same prefix from a (metric 5) and b (metric 1). *)
  let a =
    make_router ~loop ~netsim ~ifaddr:"10.0.0.1"
      ~neighbors:[ "10.0.0.3" ] ()
  in
  let b =
    make_router ~loop ~netsim ~ifaddr:"10.0.0.2"
      ~neighbors:[ "10.0.0.3" ] ()
  in
  let c_finder = Finder.create () in
  let _c_fea =
    Fea.create ~interfaces:[ ("eth0", addr "10.0.0.3") ] ~netsim c_finder loop ()
  in
  let _c_rib = Rib.create c_finder loop () in
  let c_rip =
    Rip_process.create c_finder loop
      (Rip_process.default_config
         ~ifaces:
           [ { Rip_process.if_addr = addr "10.0.0.3";
               if_neighbors = [ addr "10.0.0.1"; addr "10.0.0.2" ] } ])
  in
  Rip_process.start a.rip;
  Rip_process.start b.rip;
  Rip_process.start c_rip;
  run_for loop 1.0;
  Rip_process.inject a.rip ~net:(net "172.16.0.0/12") ~metric:5 ();
  run_for loop 10.0;
  (match Rip_process.lookup c_rip (net "172.16.0.0/12") with
   | Some (m, nh) ->
     check Alcotest.int "via a at 6" 6 m;
     check Alcotest.string "nexthop a" "10.0.0.1" (Ipv4.to_string nh)
   | None -> Alcotest.fail "no route via a");
  Rip_process.inject b.rip ~net:(net "172.16.0.0/12") ~metric:1 ();
  run_for loop 10.0;
  match Rip_process.lookup c_rip (net "172.16.0.0/12") with
  | Some (m, nh) ->
    check Alcotest.int "switched to b at 2" 2 m;
    check Alcotest.string "nexthop b" "10.0.0.2" (Ipv4.to_string nh)
  | None -> Alcotest.fail "no route via b"

let test_redistribution_from_rib () =
  (* A static route in r1's RIB is redistributed into RIP and learned
     by r2 — §3's route redistribution through the RIB's redist stage. *)
  let loop, r1, r2 = pair () in
  Result.get_ok
    (Rib.add_route r1.rib ~protocol:"static" ~net:(net "203.0.113.0/24")
       ~nexthop:(addr "10.0.0.254") ());
  run_for loop 1.0;
  Rip_process.subscribe_rib_redistribution r1.rip ~policy:"accept";
  run_for loop 10.0;
  (match Rip_process.lookup r2.rip (net "203.0.113.0/24") with
   | Some (m, _) -> check Alcotest.bool "learned via redist" true (m >= 2)
   | None -> Alcotest.fail "redistributed route not learned");
  (* Deleting the static route retracts it from RIP too. *)
  Result.get_ok
    (Rib.delete_route r1.rib ~protocol:"static" ~net:(net "203.0.113.0/24"));
  run_for loop 10.0;
  check Alcotest.bool "retracted" true
    (Rip_process.lookup r2.rip (net "203.0.113.0/24") = None)

let test_redistribution_survives_rib_restart () =
  (* The RIB's redist subscriber table dies with the instance. RIP must
     re-subscribe on rebirth, and its learned routes must be replayed
     into the reborn RIB's empty origin table. *)
  let loop, r1, r2 = pair () in
  Result.get_ok
    (Rib.add_route r1.rib ~protocol:"static" ~net:(net "203.0.113.0/24")
       ~nexthop:(addr "10.0.0.254") ());
  Rip_process.subscribe_rib_redistribution r1.rip ~policy:"accept";
  run_for loop 10.0;
  check Alcotest.bool "redistributed before the restart" true
    (Rip_process.lookup r2.rip (net "203.0.113.0/24") <> None);
  check Alcotest.int "r2's learned route in its RIB" 1
    (Rib.origin_route_count r2.rib "rip");
  (* Restart r1's RIB. *)
  Rib.shutdown r1.rib;
  run_for loop 1.0;
  let rib' = Rib.create r1.finder loop () in
  run_for loop 5.0;
  (* A static route added only to the NEW instance must still cross
     into RIP: the subscription was re-sent on rebirth. Without the
     resync this silently never propagates. *)
  Result.get_ok
    (Rib.add_route rib' ~protocol:"static" ~net:(net "198.51.100.0/24")
       ~nexthop:(addr "10.0.0.254") ());
  run_for loop 10.0;
  check Alcotest.bool "post-restart static crosses into RIP" true
    (Rip_process.lookup r2.rip (net "198.51.100.0/24") <> None);
  (* And the learned side of r1's table (routes heard from r2, not the
     redistributed injections) was replayed into the reborn RIB's
     empty rip origin table. *)
  let learned_r1 =
    List.length
      (List.filter
         (fun (_, _, nh) -> not (Ipv4.equal nh Ipv4.zero))
         (Rip_process.routes r1.rip))
  in
  check Alcotest.int "reborn RIB rip origin matches r1's learned table"
    learned_r1
    (Rib.origin_route_count rib' "rip")

let test_counters () =
  let loop, r1, r2 = pair () in
  Rip_process.inject r1.rip ~net:(net "172.16.0.0/12") ();
  run_for loop 100.0;
  check Alcotest.bool "periodic updates flowed" true
    (Rip_process.updates_sent r1.rip >= 3);
  check Alcotest.bool "updates received" true
    (Rip_process.updates_received r2.rip >= 3);
  check Alcotest.bool "triggered updates counted" true
    (Rip_process.triggered_updates_sent r1.rip >= 1)

let () =
  Alcotest.run "xorp_rip"
    [
      ( "codec",
        [
          Alcotest.test_case "roundtrip" `Quick test_packet_roundtrip;
          Alcotest.test_case "whole-table request" `Quick
            test_whole_table_request;
          Alcotest.test_case "rejects malformed" `Quick test_packet_rejects;
          Alcotest.test_case "split" `Quick test_split;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "exchange" `Quick test_exchange;
          Alcotest.test_case "triggered updates are fast" `Quick
            test_triggered_update_is_fast;
          Alcotest.test_case "withdrawal poisons" `Quick test_withdrawal_poisons;
          Alcotest.test_case "expiry without updates" `Quick
            test_expiry_without_updates;
          Alcotest.test_case "three-router chain + split horizon" `Quick
            test_three_router_chain_and_split_horizon;
          Alcotest.test_case "infinity not learned" `Quick
            test_metric_infinity_not_learned;
          Alcotest.test_case "better route replaces" `Quick
            test_better_route_replaces;
          Alcotest.test_case "redistribution from RIB" `Quick
            test_redistribution_from_rib;
          Alcotest.test_case "redistribution survives RIB restart" `Quick
            test_redistribution_survives_rib_restart;
          Alcotest.test_case "counters" `Quick test_counters;
        ] );
    ]
