(* Tests for the link-state protocol: the pure SPF computation, the
   packet codec, and full multi-router convergence over the FEA relay
   (adjacency, flooding, SPF, RIB installation, failover). *)

let check = Alcotest.check
let addr = Ipv4.of_string_exn
let net = Ipv4net.of_string_exn

(* --- SPF (pure) ------------------------------------------------------- *)

let view origin links stubs =
  { Spf.origin = addr origin;
    links = List.map (fun (n, c) -> { Spf.to_node = addr n; cost = c }) links;
    stubs = List.map (fun (p, c) -> (net p, c)) stubs }

(* A classic diamond: a - b(1) - d(1), a - c(10) - d(1). *)
let diamond =
  [ view "1.1.1.1" [ ("2.2.2.2", 1); ("3.3.3.3", 10) ] [ ("10.1.0.0/16", 1) ];
    view "2.2.2.2" [ ("1.1.1.1", 1); ("4.4.4.4", 1) ] [ ("10.2.0.0/16", 1) ];
    view "3.3.3.3" [ ("1.1.1.1", 10); ("4.4.4.4", 1) ] [ ("10.3.0.0/16", 1) ];
    view "4.4.4.4" [ ("2.2.2.2", 1); ("3.3.3.3", 1) ] [ ("10.4.0.0/16", 1) ] ]

let path_to paths who =
  List.find_map
    (fun (n, p) -> if Ipv4.equal n (addr who) then Some p else None)
    paths

let test_spf_diamond () =
  let paths = Spf.run ~root:(addr "1.1.1.1") diamond in
  check Alcotest.int "three destinations" 3 (List.length paths);
  (match path_to paths "4.4.4.4" with
   | Some p ->
     check Alcotest.int "d via the cheap side" 2 p.Spf.dist;
     check Alcotest.string "first hop b" "2.2.2.2" (Ipv4.to_string p.first_hop)
   | None -> Alcotest.fail "no path to d");
  match path_to paths "3.3.3.3" with
  | Some p ->
    (* direct cost 10 vs b-d-c = 1+1+1 = 3 *)
    check Alcotest.int "c via d, not direct" 3 p.Spf.dist;
    check Alcotest.string "still first hop b" "2.2.2.2"
      (Ipv4.to_string p.first_hop)
  | None -> Alcotest.fail "no path to c"

let test_spf_unidirectional_link_ignored () =
  (* b advertises a link to c, but c does not reciprocate: unusable. *)
  let lsas =
    [ view "1.1.1.1" [ ("2.2.2.2", 1) ] [];
      view "2.2.2.2" [ ("1.1.1.1", 1); ("3.3.3.3", 1) ] [];
      view "3.3.3.3" [] [ ("10.3.0.0/16", 1) ] ]
  in
  let paths = Spf.run ~root:(addr "1.1.1.1") lsas in
  check Alcotest.bool "c unreachable" true (path_to paths "3.3.3.3" = None);
  let routes = Spf.routes ~root:(addr "1.1.1.1") lsas in
  check Alcotest.bool "c's stub unreachable" true
    (not (List.exists (fun (n, _, _) -> Ipv4net.equal n (net "10.3.0.0/16")) routes))

let test_spf_routes_pick_cheapest_advertiser () =
  (* The same prefix advertised by b (far) and c (near). *)
  let lsas =
    [ view "1.1.1.1" [ ("2.2.2.2", 5); ("3.3.3.3", 1) ] [];
      view "2.2.2.2" [ ("1.1.1.1", 5) ] [ ("10.9.0.0/16", 1) ];
      view "3.3.3.3" [ ("1.1.1.1", 1) ] [ ("10.9.0.0/16", 1) ] ]
  in
  match Spf.routes ~root:(addr "1.1.1.1") lsas with
  | [ (n, cost, fh) ] ->
    check Alcotest.string "prefix" "10.9.0.0/16" (Ipv4net.to_string n);
    check Alcotest.int "cost via c" 2 cost;
    check Alcotest.string "first hop c" "3.3.3.3" (Ipv4.to_string fh)
  | l -> Alcotest.failf "expected 1 route, got %d" (List.length l)

let test_spf_empty_and_self () =
  check Alcotest.int "empty db" 0
    (List.length (Spf.run ~root:(addr "1.1.1.1") []));
  let own = [ view "1.1.1.1" [] [ ("10.1.0.0/16", 3) ] ] in
  match Spf.routes ~root:(addr "1.1.1.1") own with
  | [ (_, cost, fh) ] ->
    check Alcotest.int "own stub cost" 3 cost;
    check Alcotest.string "first hop self" "1.1.1.1" (Ipv4.to_string fh)
  | l -> Alcotest.failf "expected own stub, got %d" (List.length l)

let prop_spf_triangle_inequality =
  (* On random graphs, the SPF distance to any node never exceeds the
     distance to a neighbour of that node plus the link cost. *)
  QCheck.Test.make ~name:"spf respects triangle inequality" ~count:200
    QCheck.(list_of_size (Gen.int_range 2 24) (pair (int_bound 8) (int_range 1 20)))
    (fun edges ->
       let node i = Ipv4.of_octets 10 0 0 (1 + i) in
       (* Build symmetric random graph over 9 nodes. *)
       let links = Array.make 9 [] in
       List.iteri
         (fun i (a, cost) ->
            let b = (a + 1 + (i mod 7)) mod 9 in
            if a <> b then begin
              links.(a) <- (node b, cost) :: links.(a);
              links.(b) <- (node a, cost) :: links.(b)
            end)
         edges;
       let lsas =
         List.init 9 (fun i ->
             { Spf.origin = node i;
               links = List.map (fun (n, c) -> { Spf.to_node = n; cost = c }) links.(i);
               stubs = [] })
       in
       let paths = Spf.run ~root:(node 0) lsas in
       let dist i =
         if i = 0 then Some 0
         else
           List.find_map
             (fun (n, p) ->
                if Ipv4.equal n (node i) then Some p.Spf.dist else None)
             paths
       in
       List.for_all
         (fun i ->
            List.for_all
              (fun (nb, cost) ->
                 let j = (Ipv4.to_int nb) land 0xFF in
                 let j = j - 1 in
                 match dist i, dist j with
                 | Some di, Some dj -> dj <= di + cost
                 | Some _, None -> false (* neighbour of reachable must be reachable *)
                 | None, _ -> true)
              links.(i))
         (List.init 9 (fun i -> i)))

(* --- codec -------------------------------------------------------------- *)

let test_packet_roundtrip () =
  let hello = Ospf_packet.Hello
      { router_id = addr "1.1.1.1"; heard = [ addr "2.2.2.2"; addr "3.3.3.3" ] }
  in
  (match Ospf_packet.decode (Ospf_packet.encode hello) with
   | Ok (Ospf_packet.Hello { router_id; heard }) ->
     check Alcotest.string "id" "1.1.1.1" (Ipv4.to_string router_id);
     check Alcotest.int "heard" 2 (List.length heard)
   | _ -> Alcotest.fail "hello roundtrip");
  let lsu =
    Ospf_packet.Ls_update
      [ { Ospf_packet.origin = addr "1.1.1.1"; seq = 42;
          links = [ (addr "2.2.2.2", 10) ];
          stubs = [ (net "10.0.0.0/8", 1); (net "128.16.0.0/18", 5) ] } ]
  in
  match Ospf_packet.decode (Ospf_packet.encode lsu) with
  | Ok (Ospf_packet.Ls_update [ lsa ]) ->
    check Alcotest.int "seq" 42 lsa.Ospf_packet.seq;
    check Alcotest.int "links" 1 (List.length lsa.links);
    check Alcotest.int "stubs" 2 (List.length lsa.stubs)
  | _ -> Alcotest.fail "lsupdate roundtrip"

let test_packet_rejects () =
  List.iter
    (fun s ->
       match Ospf_packet.decode s with
       | Ok _ -> Alcotest.failf "accepted %S" s
       | Error _ -> ())
    [ ""; "XX"; "\x4C\x53\x09"; "\x4C\x53\x01\x01" ]

(* --- full routers --------------------------------------------------------- *)

type router = {
  fea : Fea.t;
  rib : Rib.t;
  ospf : Ospf_process.t;
}

let make_router ~loop ~netsim ~router_id ~ifaddr ~neighbors ~stubs () =
  let finder = Finder.create () in
  let fea =
    Fea.create ~interfaces:[ ("eth0", addr ifaddr) ] ~netsim finder loop ()
  in
  let rib = Rib.create finder loop () in
  let cfg =
    Ospf_process.default_config ~router_id:(addr router_id)
      ~ifaces:
        [ { Ospf_process.o_addr = addr ifaddr;
            o_neighbors =
              List.map
                (fun (a, id, cost) ->
                   { Ospf_process.n_addr = addr a; n_id = addr id; n_cost = cost })
                neighbors } ]
      ~stub_prefixes:(List.map (fun (p, c) -> (net p, c)) stubs)
      ()
  in
  let ospf = Ospf_process.create finder loop cfg in
  Ospf_process.start ospf;
  { fea; rib; ospf }

let run_for loop s = Eventloop.run_until_time loop (Eventloop.now loop +. s)

(* Chain topology: a (10.0.1.1) -- b (10.0.1.2/10.0.2.2) -- c (10.0.2.3) *)
let chain () =
  let loop = Eventloop.create () in
  let netsim = Netsim.create loop in
  let a =
    make_router ~loop ~netsim ~router_id:"1.1.1.1" ~ifaddr:"10.0.1.1"
      ~neighbors:[ ("10.0.1.2", "2.2.2.2", 1) ]
      ~stubs:[ ("172.16.0.0/16", 1) ]
      ()
  in
  (* b has two interfaces. *)
  let b_finder = Finder.create () in
  let b_fea =
    Fea.create
      ~interfaces:[ ("eth0", addr "10.0.1.2"); ("eth1", addr "10.0.2.2") ]
      ~netsim b_finder loop ()
  in
  let b_rib = Rib.create b_finder loop () in
  let b_cfg =
    Ospf_process.default_config ~router_id:(addr "2.2.2.2")
      ~ifaces:
        [ { Ospf_process.o_addr = addr "10.0.1.2";
            o_neighbors =
              [ { Ospf_process.n_addr = addr "10.0.1.1"; n_id = addr "1.1.1.1";
                  n_cost = 1 } ] };
          { Ospf_process.o_addr = addr "10.0.2.2";
            o_neighbors =
              [ { Ospf_process.n_addr = addr "10.0.2.3"; n_id = addr "3.3.3.3";
                  n_cost = 1 } ] } ]
      ()
  in
  let b_ospf = Ospf_process.create b_finder loop b_cfg in
  Ospf_process.start b_ospf;
  let b = { fea = b_fea; rib = b_rib; ospf = b_ospf } in
  let c =
    make_router ~loop ~netsim ~router_id:"3.3.3.3" ~ifaddr:"10.0.2.3"
      ~neighbors:[ ("10.0.2.2", "2.2.2.2", 1) ]
      ~stubs:[ ("192.168.0.0/16", 1) ]
      ()
  in
  (loop, a, b, c)

let test_chain_convergence () =
  let loop, a, b, c = chain () in
  run_for loop 30.0;
  check Alcotest.bool "a-b adjacency" true
    (Ospf_process.adjacency_up a.ospf (addr "2.2.2.2"));
  check Alcotest.bool "b-c adjacency" true
    (Ospf_process.adjacency_up b.ospf (addr "3.3.3.3"));
  check Alcotest.int "a sees all 3 LSAs" 3 (Ospf_process.lsdb_size a.ospf);
  check Alcotest.int "c sees all 3 LSAs" 3 (Ospf_process.lsdb_size c.ospf);
  (* a learned c's stub across the chain, metric 1+1+1. *)
  (match Rib.lookup_best a.rib (addr "192.168.5.5") with
   | Some r ->
     check Alcotest.string "protocol" "ospf" r.Rib_route.protocol;
     check Alcotest.int "metric" 3 r.metric;
     check Alcotest.string "nexthop is b" "10.0.1.2" (Ipv4.to_string r.nexthop)
   | None -> Alcotest.fail "a did not learn c's stub");
  (* and into the FIB *)
  (match Fib.lookup (Fea.fib a.fea) (addr "192.168.5.5") with
   | Some e -> check Alcotest.string "fib" "ospf" e.Fib.protocol
   | None -> Alcotest.fail "not installed in a's FIB");
  (* c learned a's stub symmetric. *)
  match Rib.lookup_best c.rib (addr "172.16.5.5") with
  | Some r ->
    check Alcotest.string "c's nexthop is b" "10.0.2.2" (Ipv4.to_string r.nexthop)
  | None -> Alcotest.fail "c did not learn a's stub"

let test_dead_neighbor_withdraws () =
  let loop, a, b, c = chain () in
  run_for loop 30.0;
  check Alcotest.bool "converged" true
    (Rib.lookup_best a.rib (addr "192.168.5.5") <> None);
  (* c dies silently. After the dead interval, b drops the adjacency,
     floods a new LSA, and a withdraws c's routes. *)
  Ospf_process.shutdown c.ospf;
  run_for loop 60.0;
  check Alcotest.bool "b sees c down" false
    (Ospf_process.adjacency_up b.ospf (addr "3.3.3.3"));
  check Alcotest.bool "a withdrew c's stub" true
    (Rib.lookup_best a.rib (addr "192.168.5.5") = None);
  check Alcotest.bool "gone from a's FIB too" true
    (Fib.lookup (Fea.fib a.fea) (addr "192.168.5.5") = None);
  (* a's own stub unaffected *)
  ignore b

let test_new_stub_floods () =
  let loop, a, _, c = chain () in
  run_for loop 30.0;
  Ospf_process.add_stub c.ospf (net "203.0.113.0/24") 2;
  run_for loop 5.0;
  match Rib.lookup_best a.rib (addr "203.0.113.7") with
  | Some r -> check Alcotest.int "cost 1+1+2" 4 r.Rib_route.metric
  | None -> Alcotest.fail "new stub did not flood to a"

let test_remove_stub_withdraws () =
  let loop, a, _, c = chain () in
  run_for loop 30.0;
  check Alcotest.bool "present" true
    (Rib.lookup_best a.rib (addr "192.168.5.5") <> None);
  Ospf_process.remove_stub c.ospf (net "192.168.0.0/16");
  run_for loop 5.0;
  check Alcotest.bool "withdrawn" true
    (Rib.lookup_best a.rib (addr "192.168.5.5") = None)

let test_spf_count_debounced () =
  let loop, a, _, _ = chain () in
  run_for loop 60.0;
  (* Convergence plus periodic refreshes must not run SPF thousands of
     times: the debounce coalesces bursts. *)
  check Alcotest.bool
    (Printf.sprintf "spf ran a sane number of times (%d)"
       (Ospf_process.spf_runs a.ospf))
    true
    (Ospf_process.spf_runs a.ospf < 30)

let test_triangle_failover () =
  (* a-b cost 1, b-c cost 1, a-c cost 5: traffic a->c prefers the
     two-hop path; when b dies, it fails over to the direct link. *)
  let loop = Eventloop.create () in
  let netsim = Netsim.create loop in
  let mk rid ifaddrs =
    let finder = Finder.create () in
    let fea =
      Fea.create
        ~interfaces:(List.mapi (fun i (a, _) -> (Printf.sprintf "eth%d" i, addr a)) ifaddrs)
        ~netsim finder loop ()
    in
    let rib = Rib.create finder loop () in
    (finder, fea, rib, rid, ifaddrs)
  in
  let iface (a, nbrs) =
    { Ospf_process.o_addr = addr a;
      o_neighbors =
        List.map
          (fun (na, nid, c) ->
             { Ospf_process.n_addr = addr na; n_id = addr nid; n_cost = c })
          nbrs }
  in
  let build (finder, fea, rib, rid, ifaddrs) stubs =
    let cfg =
      Ospf_process.default_config ~router_id:(addr rid)
        ~ifaces:(List.map iface ifaddrs)
        ~stub_prefixes:(List.map (fun (p, c) -> (net p, c)) stubs)
        ()
    in
    let o = Ospf_process.create finder loop cfg in
    Ospf_process.start o;
    (fea, rib, o)
  in
  let _, a_rib, _a =
    build
      (mk "1.1.1.1"
         [ ("10.0.1.1", [ ("10.0.1.2", "2.2.2.2", 1) ]);
           ("10.0.3.1", [ ("10.0.3.3", "3.3.3.3", 5) ]) ])
      []
  in
  let _, _, b_ospf =
    build
      (mk "2.2.2.2"
         [ ("10.0.1.2", [ ("10.0.1.1", "1.1.1.1", 1) ]);
           ("10.0.2.2", [ ("10.0.2.3", "3.3.3.3", 1) ]) ])
      []
  in
  let _, _, _c =
    build
      (mk "3.3.3.3"
         [ ("10.0.2.3", [ ("10.0.2.2", "2.2.2.2", 1) ]);
           ("10.0.3.3", [ ("10.0.3.1", "1.1.1.1", 5) ]) ])
      [ ("192.168.0.0/16", 1) ]
  in
  run_for loop 30.0;
  (match Rib.lookup_best a_rib (addr "192.168.1.1") with
   | Some r ->
     check Alcotest.int "prefers 2-hop path" 3 r.Rib_route.metric;
     check Alcotest.string "via b" "10.0.1.2" (Ipv4.to_string r.nexthop)
   | None -> Alcotest.fail "no route via b");
  Ospf_process.shutdown b_ospf;
  run_for loop 60.0;
  match Rib.lookup_best a_rib (addr "192.168.1.1") with
  | Some r ->
    check Alcotest.int "fails over to direct link" 6 r.Rib_route.metric;
    check Alcotest.string "via c directly" "10.0.3.3" (Ipv4.to_string r.nexthop)
  | None -> Alcotest.fail "no failover route"

let () =
  Alcotest.run "xorp_ospf"
    [
      ( "spf",
        [
          Alcotest.test_case "diamond" `Quick test_spf_diamond;
          Alcotest.test_case "unidirectional link ignored" `Quick
            test_spf_unidirectional_link_ignored;
          Alcotest.test_case "cheapest advertiser" `Quick
            test_spf_routes_pick_cheapest_advertiser;
          Alcotest.test_case "empty and self" `Quick test_spf_empty_and_self;
          QCheck_alcotest.to_alcotest prop_spf_triangle_inequality;
        ] );
      ( "codec",
        [
          Alcotest.test_case "roundtrip" `Quick test_packet_roundtrip;
          Alcotest.test_case "rejects malformed" `Quick test_packet_rejects;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "chain convergence" `Quick test_chain_convergence;
          Alcotest.test_case "dead neighbor withdraws" `Quick
            test_dead_neighbor_withdraws;
          Alcotest.test_case "new stub floods" `Quick test_new_stub_floods;
          Alcotest.test_case "remove stub withdraws" `Quick
            test_remove_stub_withdraws;
          Alcotest.test_case "spf debounced" `Quick test_spf_count_debounced;
          Alcotest.test_case "triangle failover" `Quick test_triangle_failover;
        ] );
    ]
