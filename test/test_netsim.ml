(* Tests for the simulated network: stream connect/data/close
   semantics, latency, ordering, and datagram delivery/loss. *)

let check = Alcotest.check
let addr = Ipv4.of_string_exn

let setup () =
  let loop = Eventloop.create () in
  (loop, Netsim.create loop)

let test_connect_and_exchange () =
  let loop, net = setup () in
  let server_ep = ref None in
  let client_ep = ref None in
  let got_at_server = ref [] in
  let got_at_client = ref [] in
  ignore
    (Netsim.Stream.listen net ~addr:(addr "10.0.0.2") ~port:179 (fun ep ->
         server_ep := Some ep;
         Netsim.Stream.on_receive ep (fun data ->
             got_at_server := data :: !got_at_server;
             Netsim.Stream.send ep ("echo:" ^ data))));
  Netsim.Stream.connect net ~src:(addr "10.0.0.1") ~dst:(addr "10.0.0.2")
    ~port:179 (fun ep -> client_ep := ep);
  Eventloop.run loop;
  (match !client_ep with
   | None -> Alcotest.fail "connect failed"
   | Some ep ->
     Netsim.Stream.on_receive ep (fun data ->
         got_at_client := data :: !got_at_client);
     Netsim.Stream.send ep "hello";
     Netsim.Stream.send ep "world");
  Eventloop.run loop;
  check (Alcotest.list Alcotest.string) "server got both, in order"
    [ "hello"; "world" ] (List.rev !got_at_server);
  check (Alcotest.list Alcotest.string) "client got echoes, in order"
    [ "echo:hello"; "echo:world" ] (List.rev !got_at_client)

let test_connect_refused () =
  let loop, net = setup () in
  let result = ref `Pending in
  Netsim.Stream.connect net ~src:(addr "10.0.0.1") ~dst:(addr "10.0.0.9")
    ~port:179 (fun ep ->
        result := (match ep with None -> `Refused | Some _ -> `Connected));
  Eventloop.run loop;
  check Alcotest.bool "refused" true (!result = `Refused)

let test_latency () =
  let loop = Eventloop.create () in
  let net = Netsim.create ~default_latency:0.010 loop in
  let connected_at = ref (-1.0) in
  let received_at = ref (-1.0) in
  ignore
    (Netsim.Stream.listen net ~addr:(addr "10.0.0.2") ~port:179 (fun ep ->
         Netsim.Stream.on_receive ep (fun _ -> received_at := Eventloop.now loop)));
  Netsim.Stream.connect net ~src:(addr "10.0.0.1") ~dst:(addr "10.0.0.2")
    ~port:179 (fun ep ->
        connected_at := Eventloop.now loop;
        match ep with
        | Some ep -> Netsim.Stream.send ep "x"
        | None -> Alcotest.fail "refused");
  Eventloop.run loop;
  (* connect: SYN (10ms) + SYN-ACK (10ms) = 20ms; data: one more 10ms. *)
  check (Alcotest.float 1e-9) "connect takes one RTT" 0.020 !connected_at;
  check (Alcotest.float 1e-9) "data takes one latency more" 0.030 !received_at

let test_close_notifies_peer () =
  let loop, net = setup () in
  let server_closed = ref false in
  let server = ref None in
  ignore
    (Netsim.Stream.listen net ~addr:(addr "10.0.0.2") ~port:179 (fun ep ->
         server := Some ep;
         Netsim.Stream.on_close ep (fun () -> server_closed := true)));
  let client = ref None in
  Netsim.Stream.connect net ~src:(addr "10.0.0.1") ~dst:(addr "10.0.0.2")
    ~port:179 (fun ep -> client := ep);
  Eventloop.run loop;
  (match !client with
   | Some ep ->
     check Alcotest.bool "open before close" true (Netsim.Stream.is_open ep);
     Netsim.Stream.close ep;
     Netsim.Stream.close ep (* idempotent *)
   | None -> Alcotest.fail "no client");
  Eventloop.run loop;
  check Alcotest.bool "peer notified" true !server_closed;
  (match !server with
   | Some ep -> check Alcotest.bool "peer now closed" false (Netsim.Stream.is_open ep)
   | None -> Alcotest.fail "no server")

let test_send_after_close_dropped () =
  let loop, net = setup () in
  let got = ref 0 in
  ignore
    (Netsim.Stream.listen net ~addr:(addr "10.0.0.2") ~port:179 (fun ep ->
         Netsim.Stream.on_receive ep (fun _ -> incr got)));
  let client = ref None in
  Netsim.Stream.connect net ~src:(addr "10.0.0.1") ~dst:(addr "10.0.0.2")
    ~port:179 (fun ep -> client := ep);
  Eventloop.run loop;
  (match !client with
   | Some ep ->
     Netsim.Stream.close ep;
     Netsim.Stream.send ep "late"
   | None -> Alcotest.fail "no client");
  Eventloop.run loop;
  check Alcotest.int "nothing delivered" 0 !got

let test_double_bind_rejected () =
  let _, net = setup () in
  ignore (Netsim.Stream.listen net ~addr:(addr "10.0.0.2") ~port:179 (fun _ -> ()));
  (try
     ignore (Netsim.Stream.listen net ~addr:(addr "10.0.0.2") ~port:179 (fun _ -> ()));
     Alcotest.fail "double listen accepted"
   with Invalid_argument _ -> ())

let test_unlisten_frees_port () =
  let _, net = setup () in
  let l = Netsim.Stream.listen net ~addr:(addr "10.0.0.2") ~port:179 (fun _ -> ()) in
  Netsim.Stream.unlisten l;
  ignore (Netsim.Stream.listen net ~addr:(addr "10.0.0.2") ~port:179 (fun _ -> ()))

let test_addresses () =
  let loop, net = setup () in
  let client = ref None in
  ignore (Netsim.Stream.listen net ~addr:(addr "10.0.0.2") ~port:179 (fun _ -> ()));
  Netsim.Stream.connect net ~src:(addr "10.0.0.1") ~dst:(addr "10.0.0.2")
    ~port:179 (fun ep -> client := ep);
  Eventloop.run loop;
  match !client with
  | Some ep ->
    check Alcotest.string "local" "10.0.0.1"
      (Ipv4.to_string (Netsim.Stream.local_addr ep));
    check Alcotest.string "remote" "10.0.0.2"
      (Ipv4.to_string (Netsim.Stream.remote_addr ep))
  | None -> Alcotest.fail "no client"

(* --- datagrams ------------------------------------------------------ *)

let test_dgram_delivery () =
  let loop, net = setup () in
  let a = Netsim.Dgram.bind net ~addr:(addr "10.0.0.1") ~port:520 in
  let b = Netsim.Dgram.bind net ~addr:(addr "10.0.0.2") ~port:520 in
  let got = ref [] in
  Netsim.Dgram.on_receive b (fun ~src ~sport data ->
      got := (Ipv4.to_string src, sport, data) :: !got);
  Netsim.Dgram.sendto a ~dst:(addr "10.0.0.2") ~dport:520 "update1";
  Netsim.Dgram.sendto a ~dst:(addr "10.0.0.2") ~dport:520 "update2";
  Eventloop.run loop;
  check
    (Alcotest.list (Alcotest.triple Alcotest.string Alcotest.int Alcotest.string))
    "both delivered with source"
    [ ("10.0.0.1", 520, "update1"); ("10.0.0.1", 520, "update2") ]
    (List.rev !got)

let test_dgram_to_nowhere () =
  let loop, net = setup () in
  let a = Netsim.Dgram.bind net ~addr:(addr "10.0.0.1") ~port:520 in
  Netsim.Dgram.sendto a ~dst:(addr "10.9.9.9") ~dport:520 "void";
  Eventloop.run loop (* must not raise *)

let test_dgram_loss () =
  let loop, net = setup () in
  Netsim.set_loss_seed net 11;
  let a = Netsim.Dgram.bind net ~addr:(addr "10.0.0.1") ~port:520 in
  let b = Netsim.Dgram.bind net ~addr:(addr "10.0.0.2") ~port:520 in
  let got = ref 0 in
  Netsim.Dgram.on_receive b (fun ~src:_ ~sport:_ _ -> incr got);
  for _ = 1 to 1000 do
    Netsim.Dgram.sendto a ~loss:0.5 ~dst:(addr "10.0.0.2") ~dport:520 "x"
  done;
  Eventloop.run loop;
  if !got < 350 || !got > 650 then
    Alcotest.failf "50%% loss delivered %d of 1000" !got

let test_dgram_close () =
  let loop, net = setup () in
  let a = Netsim.Dgram.bind net ~addr:(addr "10.0.0.1") ~port:520 in
  let b = Netsim.Dgram.bind net ~addr:(addr "10.0.0.2") ~port:520 in
  let got = ref 0 in
  Netsim.Dgram.on_receive b (fun ~src:_ ~sport:_ _ -> incr got);
  Netsim.Dgram.close b;
  Netsim.Dgram.sendto a ~dst:(addr "10.0.0.2") ~dport:520 "x";
  Eventloop.run loop;
  check Alcotest.int "closed socket gets nothing" 0 !got;
  (* port is free again *)
  ignore (Netsim.Dgram.bind net ~addr:(addr "10.0.0.2") ~port:520)

let test_determinism () =
  (* Two identical runs produce identical event timings. *)
  let run () =
    let loop = Eventloop.create () in
    let net = Netsim.create ~default_latency:0.003 loop in
    let stamps = ref [] in
    ignore
      (Netsim.Stream.listen net ~addr:(addr "10.0.0.2") ~port:179 (fun ep ->
           Netsim.Stream.on_receive ep (fun data ->
               stamps := (data, Eventloop.now loop) :: !stamps)));
    Netsim.Stream.connect net ~src:(addr "10.0.0.1") ~dst:(addr "10.0.0.2")
      ~port:179 (fun ep ->
          match ep with
          | Some ep ->
            for i = 1 to 5 do
              ignore
                (Eventloop.after loop (float_of_int i)
                   (fun () -> Netsim.Stream.send ep (string_of_int i)))
            done
          | None -> ());
    Eventloop.run loop;
    List.rev !stamps
  in
  let a = run () and b = run () in
  check (Alcotest.list (Alcotest.pair Alcotest.string (Alcotest.float 0.0)))
    "identical timelines" a b

let () =
  Alcotest.run "xorp_netsim"
    [
      ( "stream",
        [
          Alcotest.test_case "connect and exchange" `Quick
            test_connect_and_exchange;
          Alcotest.test_case "connect refused" `Quick test_connect_refused;
          Alcotest.test_case "latency model" `Quick test_latency;
          Alcotest.test_case "close notifies peer" `Quick
            test_close_notifies_peer;
          Alcotest.test_case "send after close dropped" `Quick
            test_send_after_close_dropped;
          Alcotest.test_case "double bind rejected" `Quick
            test_double_bind_rejected;
          Alcotest.test_case "unlisten frees port" `Quick
            test_unlisten_frees_port;
          Alcotest.test_case "endpoint addresses" `Quick test_addresses;
        ] );
      ( "dgram",
        [
          Alcotest.test_case "delivery" `Quick test_dgram_delivery;
          Alcotest.test_case "to nowhere" `Quick test_dgram_to_nowhere;
          Alcotest.test_case "bernoulli loss" `Quick test_dgram_loss;
          Alcotest.test_case "close" `Quick test_dgram_close;
        ] );
      ( "determinism",
        [ Alcotest.test_case "identical runs" `Quick test_determinism ] );
    ]
