(* Tests for the simulated network: stream connect/data/close
   semantics, latency, ordering, and datagram delivery/loss. *)

let check = Alcotest.check
let addr = Ipv4.of_string_exn

let setup () =
  let loop = Eventloop.create () in
  (loop, Netsim.create loop)

let test_connect_and_exchange () =
  let loop, net = setup () in
  let server_ep = ref None in
  let client_ep = ref None in
  let got_at_server = ref [] in
  let got_at_client = ref [] in
  ignore
    (Netsim.Stream.listen net ~addr:(addr "10.0.0.2") ~port:179 (fun ep ->
         server_ep := Some ep;
         Netsim.Stream.on_receive ep (fun data ->
             got_at_server := data :: !got_at_server;
             Netsim.Stream.send ep ("echo:" ^ data))));
  Netsim.Stream.connect net ~src:(addr "10.0.0.1") ~dst:(addr "10.0.0.2")
    ~port:179 (fun ep -> client_ep := ep);
  Eventloop.run loop;
  (match !client_ep with
   | None -> Alcotest.fail "connect failed"
   | Some ep ->
     Netsim.Stream.on_receive ep (fun data ->
         got_at_client := data :: !got_at_client);
     Netsim.Stream.send ep "hello";
     Netsim.Stream.send ep "world");
  Eventloop.run loop;
  check (Alcotest.list Alcotest.string) "server got both, in order"
    [ "hello"; "world" ] (List.rev !got_at_server);
  check (Alcotest.list Alcotest.string) "client got echoes, in order"
    [ "echo:hello"; "echo:world" ] (List.rev !got_at_client)

let test_connect_refused () =
  let loop, net = setup () in
  let result = ref `Pending in
  Netsim.Stream.connect net ~src:(addr "10.0.0.1") ~dst:(addr "10.0.0.9")
    ~port:179 (fun ep ->
        result := (match ep with None -> `Refused | Some _ -> `Connected));
  Eventloop.run loop;
  check Alcotest.bool "refused" true (!result = `Refused)

let test_latency () =
  let loop = Eventloop.create () in
  let net = Netsim.create ~default_latency:0.010 loop in
  let connected_at = ref (-1.0) in
  let received_at = ref (-1.0) in
  ignore
    (Netsim.Stream.listen net ~addr:(addr "10.0.0.2") ~port:179 (fun ep ->
         Netsim.Stream.on_receive ep (fun _ -> received_at := Eventloop.now loop)));
  Netsim.Stream.connect net ~src:(addr "10.0.0.1") ~dst:(addr "10.0.0.2")
    ~port:179 (fun ep ->
        connected_at := Eventloop.now loop;
        match ep with
        | Some ep -> Netsim.Stream.send ep "x"
        | None -> Alcotest.fail "refused");
  Eventloop.run loop;
  (* connect: SYN (10ms) + SYN-ACK (10ms) = 20ms; data: one more 10ms. *)
  check (Alcotest.float 1e-9) "connect takes one RTT" 0.020 !connected_at;
  check (Alcotest.float 1e-9) "data takes one latency more" 0.030 !received_at

let test_close_notifies_peer () =
  let loop, net = setup () in
  let server_closed = ref false in
  let server = ref None in
  ignore
    (Netsim.Stream.listen net ~addr:(addr "10.0.0.2") ~port:179 (fun ep ->
         server := Some ep;
         Netsim.Stream.on_close ep (fun () -> server_closed := true)));
  let client = ref None in
  Netsim.Stream.connect net ~src:(addr "10.0.0.1") ~dst:(addr "10.0.0.2")
    ~port:179 (fun ep -> client := ep);
  Eventloop.run loop;
  (match !client with
   | Some ep ->
     check Alcotest.bool "open before close" true (Netsim.Stream.is_open ep);
     Netsim.Stream.close ep;
     Netsim.Stream.close ep (* idempotent *)
   | None -> Alcotest.fail "no client");
  Eventloop.run loop;
  check Alcotest.bool "peer notified" true !server_closed;
  (match !server with
   | Some ep -> check Alcotest.bool "peer now closed" false (Netsim.Stream.is_open ep)
   | None -> Alcotest.fail "no server")

let test_send_after_close_dropped () =
  let loop, net = setup () in
  let got = ref 0 in
  ignore
    (Netsim.Stream.listen net ~addr:(addr "10.0.0.2") ~port:179 (fun ep ->
         Netsim.Stream.on_receive ep (fun _ -> incr got)));
  let client = ref None in
  Netsim.Stream.connect net ~src:(addr "10.0.0.1") ~dst:(addr "10.0.0.2")
    ~port:179 (fun ep -> client := ep);
  Eventloop.run loop;
  (match !client with
   | Some ep ->
     Netsim.Stream.close ep;
     Netsim.Stream.send ep "late"
   | None -> Alcotest.fail "no client");
  Eventloop.run loop;
  check Alcotest.int "nothing delivered" 0 !got

let test_double_bind_rejected () =
  let _, net = setup () in
  ignore (Netsim.Stream.listen net ~addr:(addr "10.0.0.2") ~port:179 (fun _ -> ()));
  (try
     ignore (Netsim.Stream.listen net ~addr:(addr "10.0.0.2") ~port:179 (fun _ -> ()));
     Alcotest.fail "double listen accepted"
   with Invalid_argument _ -> ())

let test_unlisten_frees_port () =
  let _, net = setup () in
  let l = Netsim.Stream.listen net ~addr:(addr "10.0.0.2") ~port:179 (fun _ -> ()) in
  Netsim.Stream.unlisten l;
  ignore (Netsim.Stream.listen net ~addr:(addr "10.0.0.2") ~port:179 (fun _ -> ()))

let test_addresses () =
  let loop, net = setup () in
  let client = ref None in
  ignore (Netsim.Stream.listen net ~addr:(addr "10.0.0.2") ~port:179 (fun _ -> ()));
  Netsim.Stream.connect net ~src:(addr "10.0.0.1") ~dst:(addr "10.0.0.2")
    ~port:179 (fun ep -> client := ep);
  Eventloop.run loop;
  match !client with
  | Some ep ->
    check Alcotest.string "local" "10.0.0.1"
      (Ipv4.to_string (Netsim.Stream.local_addr ep));
    check Alcotest.string "remote" "10.0.0.2"
      (Ipv4.to_string (Netsim.Stream.remote_addr ep))
  | None -> Alcotest.fail "no client"

(* --- datagrams ------------------------------------------------------ *)

let test_dgram_delivery () =
  let loop, net = setup () in
  let a = Netsim.Dgram.bind net ~addr:(addr "10.0.0.1") ~port:520 in
  let b = Netsim.Dgram.bind net ~addr:(addr "10.0.0.2") ~port:520 in
  let got = ref [] in
  Netsim.Dgram.on_receive b (fun ~src ~sport data ->
      got := (Ipv4.to_string src, sport, data) :: !got);
  Netsim.Dgram.sendto a ~dst:(addr "10.0.0.2") ~dport:520 "update1";
  Netsim.Dgram.sendto a ~dst:(addr "10.0.0.2") ~dport:520 "update2";
  Eventloop.run loop;
  check
    (Alcotest.list (Alcotest.triple Alcotest.string Alcotest.int Alcotest.string))
    "both delivered with source"
    [ ("10.0.0.1", 520, "update1"); ("10.0.0.1", 520, "update2") ]
    (List.rev !got)

let test_dgram_to_nowhere () =
  let loop, net = setup () in
  let a = Netsim.Dgram.bind net ~addr:(addr "10.0.0.1") ~port:520 in
  Netsim.Dgram.sendto a ~dst:(addr "10.9.9.9") ~dport:520 "void";
  Eventloop.run loop (* must not raise *)

let test_dgram_loss () =
  let loop, net = setup () in
  Netsim.set_loss_seed net 11;
  let a = Netsim.Dgram.bind net ~addr:(addr "10.0.0.1") ~port:520 in
  let b = Netsim.Dgram.bind net ~addr:(addr "10.0.0.2") ~port:520 in
  let got = ref 0 in
  Netsim.Dgram.on_receive b (fun ~src:_ ~sport:_ _ -> incr got);
  for _ = 1 to 1000 do
    Netsim.Dgram.sendto a ~loss:0.5 ~dst:(addr "10.0.0.2") ~dport:520 "x"
  done;
  Eventloop.run loop;
  if !got < 350 || !got > 650 then
    Alcotest.failf "50%% loss delivered %d of 1000" !got

let test_dgram_close () =
  let loop, net = setup () in
  let a = Netsim.Dgram.bind net ~addr:(addr "10.0.0.1") ~port:520 in
  let b = Netsim.Dgram.bind net ~addr:(addr "10.0.0.2") ~port:520 in
  let got = ref 0 in
  Netsim.Dgram.on_receive b (fun ~src:_ ~sport:_ _ -> incr got);
  Netsim.Dgram.close b;
  Netsim.Dgram.sendto a ~dst:(addr "10.0.0.2") ~dport:520 "x";
  Eventloop.run loop;
  check Alcotest.int "closed socket gets nothing" 0 !got;
  (* port is free again *)
  ignore (Netsim.Dgram.bind net ~addr:(addr "10.0.0.2") ~port:520)

(* --- fan-out at topology scale -------------------------------------- *)

let test_stream_fanout_fifo () =
  (* 20 clients all talking to one server, every send scheduled at the
     SAME virtual deadlines: per-stream FIFO must survive the
     equal-deadline tie-breaking, and the interleaving must be
     deterministic across runs. *)
  let n_clients = 20 and n_msgs = 10 in
  let run () =
    let loop = Eventloop.create () in
    let net = Netsim.create ~default_latency:0.002 loop in
    let arrivals = ref [] in
    ignore
      (Netsim.Stream.listen net ~addr:(addr "10.0.0.200") ~port:179 (fun ep ->
           Netsim.Stream.on_receive ep (fun data ->
               arrivals := data :: !arrivals)));
    for c = 1 to n_clients do
      Netsim.Stream.connect net ~src:(Ipv4.of_octets 10 0 0 c)
        ~dst:(addr "10.0.0.200") ~port:179 (fun ep ->
          match ep with
          | None -> Alcotest.fail "fanout connect refused"
          | Some ep ->
            for m = 1 to n_msgs do
              (* Shared deadline: every client fires message m at
                 virtual second m. *)
              ignore
                (Eventloop.after loop (float_of_int m) (fun () ->
                     Netsim.Stream.send ep (Printf.sprintf "%d:%d" c m)))
            done)
    done;
    Eventloop.run loop;
    List.rev !arrivals
  in
  let a = run () in
  check Alcotest.int "every message arrived" (n_clients * n_msgs)
    (List.length a);
  (* Per-client FIFO. *)
  let last = Array.make (n_clients + 1) 0 in
  List.iter
    (fun s ->
      Scanf.sscanf s "%d:%d" (fun c m ->
          if m <> last.(c) + 1 then
            Alcotest.failf "client %d: message %d after %d" c m last.(c);
          last.(c) <- m))
    a;
  check
    (Alcotest.list Alcotest.string)
    "interleaving deterministic across runs" a (run ())

let test_dgram_many_ports () =
  (* A 100+-socket world (every RIP instance of a large topology binds
     its own port): each socket sends one datagram around a ring; all
     must arrive, each at the right socket. *)
  let n = 120 in
  let loop, net = setup () in
  let socks =
    Array.init n (fun i ->
        Netsim.Dgram.bind net ~addr:(Ipv4.of_octets 10 2 (i / 100) (i mod 100))
          ~port:(520 + (i mod 7)))
  in
  let got = Array.make n [] in
  Array.iteri
    (fun i s ->
      Netsim.Dgram.on_receive s (fun ~src:_ ~sport:_ data ->
          got.(i) <- data :: got.(i)))
    socks;
  for i = 0 to n - 1 do
    let j = (i + 1) mod n in
    Netsim.Dgram.sendto socks.(i)
      ~dst:(Ipv4.of_octets 10 2 (j / 100) (j mod 100))
      ~dport:(520 + (j mod 7))
      (Printf.sprintf "from-%d" i)
  done;
  Eventloop.run loop;
  for i = 0 to n - 1 do
    let expect = [ Printf.sprintf "from-%d" ((i + n - 1) mod n) ] in
    check (Alcotest.list Alcotest.string)
      (Printf.sprintf "socket %d got its ring message" i)
      expect got.(i)
  done

(* --- link cuts ------------------------------------------------------- *)

let link_pair = (addr "10.0.0.1", addr "10.0.0.2")

let connected_pair loop net =
  let server = ref None and client = ref None in
  ignore
    (Netsim.Stream.listen net ~addr:(snd link_pair) ~port:179 (fun ep ->
         server := Some ep));
  Netsim.Stream.connect net ~src:(fst link_pair) ~dst:(snd link_pair)
    ~port:179 (fun ep -> client := ep);
  Eventloop.run loop;
  match (!client, !server) with
  | Some c, Some s -> (c, s)
  | _ -> Alcotest.fail "pair did not connect"

let test_cut_link_silent () =
  let loop, net = setup () in
  let a, b = link_pair in
  let c, s = connected_pair loop net in
  let s_closed = ref false and got = ref 0 in
  Netsim.Stream.on_close s (fun () -> s_closed := true);
  Netsim.Stream.on_receive s (fun _ -> incr got);
  Netsim.cut_link net ~a ~b;
  check Alcotest.bool "cut visible" true (Netsim.link_cut net ~a ~b);
  Netsim.Stream.send c "into the void";
  Eventloop.run loop;
  check Alcotest.bool "silent: no close callback" false !s_closed;
  check Alcotest.int "silent: nothing delivered" 0 !got;
  check Alcotest.bool "both ends dead" false
    (Netsim.Stream.is_open c || Netsim.Stream.is_open s);
  (* New connects across the cut fail; after heal they succeed. *)
  let att = ref `Pending in
  Netsim.Stream.connect net ~src:a ~dst:b ~port:179 (fun ep ->
      att := (match ep with None -> `Refused | Some _ -> `Connected));
  Eventloop.run loop;
  check Alcotest.bool "connect across cut refused" true (!att = `Refused);
  Netsim.heal_link net ~a ~b;
  check Alcotest.bool "cut cleared" false (Netsim.link_cut net ~a ~b);
  Netsim.Stream.connect net ~src:a ~dst:b ~port:179 (fun ep ->
      att := (match ep with None -> `Refused | Some _ -> `Connected));
  Eventloop.run loop;
  check Alcotest.bool "reconnect after heal" true (!att = `Connected)

let test_cut_link_reset () =
  let loop, net = setup () in
  let a, b = link_pair in
  let c, s = connected_pair loop net in
  let c_closed = ref false and s_closed = ref false in
  Netsim.Stream.on_close c (fun () -> c_closed := true);
  Netsim.Stream.on_close s (fun () -> s_closed := true);
  Netsim.cut_link ~reset:true net ~a ~b;
  Eventloop.run loop;
  check Alcotest.bool "reset: both close callbacks fired" true
    (!c_closed && !s_closed)

let test_cut_link_drops_dgrams () =
  let loop, net = setup () in
  let a, b = link_pair in
  let sa = Netsim.Dgram.bind net ~addr:a ~port:520 in
  let sb = Netsim.Dgram.bind net ~addr:b ~port:520 in
  let got = ref 0 in
  Netsim.Dgram.on_receive sb (fun ~src:_ ~sport:_ _ -> incr got);
  Netsim.cut_link net ~a ~b;
  Netsim.Dgram.sendto sa ~dst:b ~dport:520 "lost";
  Eventloop.run loop;
  check Alcotest.int "dropped while cut" 0 !got;
  Netsim.heal_link net ~a ~b;
  Netsim.Dgram.sendto sa ~dst:b ~dport:520 "after heal";
  Eventloop.run loop;
  check Alcotest.int "delivered after heal" 1 !got

let test_cut_link_spares_others () =
  (* A cut is per-pair: traffic between unrelated addresses flows. *)
  let loop, net = setup () in
  Netsim.cut_link net ~a:(addr "10.0.0.8") ~b:(addr "10.0.0.9");
  let got = ref 0 in
  ignore
    (Netsim.Stream.listen net ~addr:(addr "10.0.0.2") ~port:179 (fun ep ->
         Netsim.Stream.on_receive ep (fun _ -> incr got)));
  Netsim.Stream.connect net ~src:(addr "10.0.0.1") ~dst:(addr "10.0.0.2")
    ~port:179 (fun ep ->
      match ep with
      | Some ep -> Netsim.Stream.send ep "x"
      | None -> Alcotest.fail "unrelated connect refused");
  Eventloop.run loop;
  check Alcotest.int "unrelated pair unaffected" 1 !got

let test_determinism () =
  (* Two identical runs produce identical event timings. *)
  let run () =
    let loop = Eventloop.create () in
    let net = Netsim.create ~default_latency:0.003 loop in
    let stamps = ref [] in
    ignore
      (Netsim.Stream.listen net ~addr:(addr "10.0.0.2") ~port:179 (fun ep ->
           Netsim.Stream.on_receive ep (fun data ->
               stamps := (data, Eventloop.now loop) :: !stamps)));
    Netsim.Stream.connect net ~src:(addr "10.0.0.1") ~dst:(addr "10.0.0.2")
      ~port:179 (fun ep ->
          match ep with
          | Some ep ->
            for i = 1 to 5 do
              ignore
                (Eventloop.after loop (float_of_int i)
                   (fun () -> Netsim.Stream.send ep (string_of_int i)))
            done
          | None -> ());
    Eventloop.run loop;
    List.rev !stamps
  in
  let a = run () and b = run () in
  check (Alcotest.list (Alcotest.pair Alcotest.string (Alcotest.float 0.0)))
    "identical timelines" a b

let () =
  Alcotest.run "xorp_netsim"
    [
      ( "stream",
        [
          Alcotest.test_case "connect and exchange" `Quick
            test_connect_and_exchange;
          Alcotest.test_case "connect refused" `Quick test_connect_refused;
          Alcotest.test_case "latency model" `Quick test_latency;
          Alcotest.test_case "close notifies peer" `Quick
            test_close_notifies_peer;
          Alcotest.test_case "send after close dropped" `Quick
            test_send_after_close_dropped;
          Alcotest.test_case "double bind rejected" `Quick
            test_double_bind_rejected;
          Alcotest.test_case "unlisten frees port" `Quick
            test_unlisten_frees_port;
          Alcotest.test_case "endpoint addresses" `Quick test_addresses;
        ] );
      ( "dgram",
        [
          Alcotest.test_case "delivery" `Quick test_dgram_delivery;
          Alcotest.test_case "to nowhere" `Quick test_dgram_to_nowhere;
          Alcotest.test_case "bernoulli loss" `Quick test_dgram_loss;
          Alcotest.test_case "close" `Quick test_dgram_close;
        ] );
      ( "fanout",
        [
          Alcotest.test_case "20-endpoint FIFO under shared deadlines" `Quick
            test_stream_fanout_fifo;
          Alcotest.test_case "120 bound dgram sockets" `Quick
            test_dgram_many_ports;
        ] );
      ( "links",
        [
          Alcotest.test_case "silent cut" `Quick test_cut_link_silent;
          Alcotest.test_case "reset cut fires close" `Quick
            test_cut_link_reset;
          Alcotest.test_case "cut drops dgrams until heal" `Quick
            test_cut_link_drops_dgrams;
          Alcotest.test_case "cut is per-pair" `Quick
            test_cut_link_spares_others;
        ] );
      ( "determinism",
        [ Alcotest.test_case "identical runs" `Quick test_determinism ] );
    ]
