(* Tests for the xorp_telemetry subsystem: the bounded ring, histogram
   bucketing and quantiles (property-checked against a sorted
   reference), metric registries, ambient trace contexts, trace
   propagation across real XRL transports (intra and TCP), the
   telemetry/0.1 XRL service, and the end-to-end route_add trace chain
   RIB -> FEA on a booted router. Also covers the profiler's ring
   backend and its microsecond rounding carry. *)

let check = Alcotest.check
let ok = Xrl_error.Ok_xrl

(* --- Telemetry_ring ----------------------------------------------------- *)

let test_ring () =
  let r = Telemetry_ring.create ~capacity:3 in
  check Alcotest.int "capacity" 3 (Telemetry_ring.capacity r);
  check Alcotest.int "empty" 0 (Telemetry_ring.length r);
  Telemetry_ring.push r 1;
  Telemetry_ring.push r 2;
  check (Alcotest.list Alcotest.int) "partial, oldest first" [ 1; 2 ]
    (Telemetry_ring.to_list r);
  Telemetry_ring.push r 3;
  Telemetry_ring.push r 4;
  Telemetry_ring.push r 5;
  check (Alcotest.list Alcotest.int) "wrapped keeps newest" [ 3; 4; 5 ]
    (Telemetry_ring.to_list r);
  check Alcotest.int "length capped" 3 (Telemetry_ring.length r);
  check Alcotest.int "lifetime pushes" 5 (Telemetry_ring.total_pushed r);
  check Alcotest.int "fold order" 345
    (Telemetry_ring.fold (fun acc v -> (acc * 10) + v) 0 r);
  Telemetry_ring.clear r;
  check Alcotest.int "cleared" 0 (Telemetry_ring.length r);
  check Alcotest.int "pushes survive clear" 5 (Telemetry_ring.total_pushed r);
  (try
     ignore (Telemetry_ring.create ~capacity:0);
     Alcotest.fail "capacity 0 accepted"
   with Invalid_argument _ -> ())

(* --- Histogram buckets -------------------------------------------------- *)

let test_histogram_buckets () =
  let module H = Telemetry.Histogram in
  check Alcotest.int "small values -> bucket 0" 0 (H.bucket_index 0.5);
  check Alcotest.int "1.0 -> bucket 0" 0 (H.bucket_index 1.0);
  check Alcotest.int "zero -> bucket 0" 0 (H.bucket_index 0.0);
  check (Alcotest.float 0.0) "bucket 0 bound" 1.0 (H.bucket_upper_bound 0);
  check (Alcotest.float 0.0) "overflow bound" infinity
    (H.bucket_upper_bound (H.bucket_count - 1));
  (* Bounds strictly increase; every value lands in the bucket whose
     bound first covers it. *)
  for i = 0 to H.bucket_count - 3 do
    if not (H.bucket_upper_bound i < H.bucket_upper_bound (i + 1)) then
      Alcotest.failf "bounds not increasing at %d" i
  done;
  List.iter
    (fun v ->
       let i = H.bucket_index v in
       if H.bucket_upper_bound i < v then
         Alcotest.failf "value %g above its bucket bound" v;
       if i > 0 && H.bucket_upper_bound (i - 1) >= v then
         Alcotest.failf "value %g fits the previous bucket" v)
    [ 0.1; 1.0; 1.5; 2.0; 9.0; 9.1; 10.0; 95.0; 100.0; 12345.0; 8.9e8; 1e10 ];
  check Alcotest.int "huge -> overflow" (H.bucket_count - 1)
    (H.bucket_index 1e10)

let test_histogram_stats () =
  Telemetry.set_enabled true;
  let reg = Telemetry.create_registry () in
  let h = Telemetry.histogram ~registry:reg "h" in
  check (Alcotest.float 0.0) "empty quantile" 0.0
    (Telemetry.Histogram.quantile h 0.5);
  List.iter (Telemetry.observe h) [ 3.0; 7.0; 50.0 ];
  check Alcotest.int "count" 3 (Telemetry.Histogram.count h);
  check (Alcotest.float 1e-9) "sum" 60.0 (Telemetry.Histogram.sum h);
  check (Alcotest.float 0.0) "max" 50.0 (Telemetry.Histogram.max_observed h);
  (* rank of q=0.5 over 3 samples is 2 -> 7.0, whose bucket bound is 7 *)
  check (Alcotest.float 0.0) "p50" 7.0 (Telemetry.Histogram.quantile h 0.5);
  check (Alcotest.float 0.0) "p100" 50.0 (Telemetry.Histogram.quantile h 1.0);
  (* overflow-bucket quantile reports the max observed *)
  let h2 = Telemetry.histogram ~registry:reg "h2" in
  Telemetry.observe h2 1e10;
  Telemetry.observe h2 2e10;
  check (Alcotest.float 0.0) "overflow quantile = max" 2e10
    (Telemetry.Histogram.quantile h2 0.9);
  Telemetry.Histogram.clear h;
  check Alcotest.int "cleared" 0 (Telemetry.Histogram.count h)

(* quantile estimate vs a sorted reference: same bucket, hence within
   2x above the true value (generator stays below the overflow
   bucket's 9e8 lower edge, where that contract holds). *)
let prop_quantile =
  let gen =
    QCheck.Gen.(list_size (int_range 1 200)
                  (map (fun n -> float_of_int n /. 7.0) (int_range 0 2_000_000)))
  in
  QCheck.Test.make ~name:"histogram quantile brackets sorted reference"
    ~count:200 (QCheck.make gen) (fun values ->
      Telemetry.set_enabled true;
      let reg = Telemetry.create_registry () in
      let h = Telemetry.histogram ~registry:reg "q" in
      List.iter (Telemetry.observe h) values;
      let sorted = List.sort compare values in
      let n = List.length values in
      List.for_all
        (fun q ->
           let rank = max 1 (int_of_float (ceil (q *. float_of_int n))) in
           let reference = List.nth sorted (rank - 1) in
           let est = Telemetry.Histogram.quantile h q in
           reference <= est && est <= 2.0 *. Float.max reference 1.0)
        [ 0.5; 0.9; 0.99; 1.0 ])

(* --- counters, gauges, registry ----------------------------------------- *)

let test_metrics_registry () =
  Telemetry.set_enabled true;
  let reg = Telemetry.create_registry () in
  let c = Telemetry.counter ~registry:reg "xrl.calls" in
  Telemetry.incr c;
  Telemetry.add c 4;
  check Alcotest.int "counter" 5 (Telemetry.counter_value c);
  check Alcotest.int "get-or-create shares state" 5
    (Telemetry.counter_value (Telemetry.counter ~registry:reg "xrl.calls"));
  let g = Telemetry.gauge ~registry:reg "queue.depth" in
  Telemetry.set_gauge g 17.0;
  check (Alcotest.float 0.0) "gauge" 17.0 (Telemetry.gauge_value g);
  (try
     ignore (Telemetry.histogram ~registry:reg "xrl.calls");
     Alcotest.fail "kind mismatch accepted"
   with Invalid_argument _ -> ());
  check
    (Alcotest.list Alcotest.string)
    "list sorted" [ "queue.depth"; "xrl.calls" ]
    (List.map fst (Telemetry.list_metrics ~registry:reg ()));
  (match Telemetry.find_metric ~registry:reg "queue.depth" with
   | Some (Telemetry.Gauge _) -> ()
   | _ -> Alcotest.fail "find_metric");
  Telemetry.reset ~registry:reg ();
  check Alcotest.int "reset zeroes" 0 (Telemetry.counter_value c);
  check Alcotest.int "registrations survive reset" 2
    (List.length (Telemetry.list_metrics ~registry:reg ()))

let test_reset_prefix () =
  Telemetry.set_enabled true;
  let reg = Telemetry.create_registry () in
  let c1 = Telemetry.counter ~registry:reg "fea.installed" in
  let c2 = Telemetry.counter ~registry:reg "rib.adds" in
  let h = Telemetry.histogram ~registry:reg "fea.install.latency_us" in
  Telemetry.incr c1;
  Telemetry.incr c2;
  Telemetry.observe h 12.0;
  Telemetry.reset_prefix ~registry:reg "fea.";
  check Alcotest.int "prefixed counter zeroed" 0 (Telemetry.counter_value c1);
  check Alcotest.int "prefixed histogram cleared" 0
    (Telemetry.Histogram.count h);
  check Alcotest.int "other namespace untouched" 1
    (Telemetry.counter_value c2);
  check Alcotest.int "registrations survive" 3
    (List.length (Telemetry.list_metrics ~registry:reg ()))

let test_ambient_namespace () =
  (* Registration-time qualification: a metric created while a
     namespace is ambient lives under it forever; resolution with
     find_metric sees the qualified name; reset_prefix scopes to the
     namespace like registration does. *)
  Telemetry.set_enabled true;
  let reg = Telemetry.create_registry () in
  check Alcotest.string "default namespace is empty" ""
    (Telemetry.current_namespace ());
  let c =
    Telemetry.with_namespace "r1." (fun () ->
        check Alcotest.string "ambient inside thunk" "r1."
          (Telemetry.current_namespace ());
        Telemetry.counter ~registry:reg "bgp.updates")
  in
  check Alcotest.string "restored after thunk" ""
    (Telemetry.current_namespace ());
  Telemetry.incr c;
  (match Telemetry.find_metric ~registry:reg "r1.bgp.updates" with
   | Some (Telemetry.Counter c') ->
     check Alcotest.int "qualified name resolves to the handle" 1
       (Telemetry.counter_value c')
   | _ -> Alcotest.fail "metric not under the namespace");
  check Alcotest.bool "unqualified name does not exist" true
    (Telemetry.find_metric ~registry:reg "bgp.updates" = None);
  (* The handle keeps recording in its namespace even when a different
     namespace is ambient later. *)
  Telemetry.with_namespace "r2." (fun () -> Telemetry.incr c);
  (match Telemetry.find_metric ~registry:reg "r1.bgp.updates" with
   | Some (Telemetry.Counter c') ->
     check Alcotest.int "handle pinned at registration" 2
       (Telemetry.counter_value c')
   | _ -> Alcotest.fail "metric moved")

let test_namespaces_isolate_same_class_components () =
  (* Two same-class components (two "BGP processes") in two router
     namespaces: identical metric names, disjoint metrics. This is
     what lets N router stacks share one process. *)
  Telemetry.set_enabled true;
  let reg = Telemetry.create_registry () in
  let mk ns = Telemetry.with_namespace ns (fun () ->
      Telemetry.counter ~registry:reg "bgp.rib.sent")
  in
  let c1 = mk "r1." and c2 = mk "r2." in
  Telemetry.incr c1;
  Telemetry.incr c1;
  Telemetry.incr c2;
  let value name =
    match Telemetry.find_metric ~registry:reg name with
    | Some (Telemetry.Counter c) -> Telemetry.counter_value c
    | _ -> Alcotest.failf "%s missing" name
  in
  check Alcotest.int "r1 counts its own" 2 (value "r1.bgp.rib.sent");
  check Alcotest.int "r2 counts its own" 1 (value "r2.bgp.rib.sent");
  (* Resetting one router's namespace leaves the other alone. *)
  Telemetry.reset_prefix ~registry:reg "r1.";
  check Alcotest.int "r1 zeroed" 0 (value "r1.bgp.rib.sent");
  check Alcotest.int "r2 untouched" 1 (value "r2.bgp.rib.sent")

let test_disabled_is_noop () =
  let reg = Telemetry.create_registry () in
  let c = Telemetry.counter ~registry:reg "c" in
  let h = Telemetry.histogram ~registry:reg "h" in
  Telemetry.set_enabled false;
  Telemetry.incr c;
  Telemetry.observe h 5.0;
  let ran = ref false in
  let v =
    Telemetry.Trace.span_sync ~registry:reg ~name:"s" ~clock:(fun () -> 0.0)
      (fun () -> ran := true; 42)
  in
  Telemetry.set_enabled true;
  check Alcotest.int "thunk still runs" 42 v;
  check Alcotest.bool "ran" true !ran;
  check Alcotest.int "counter untouched" 0 (Telemetry.counter_value c);
  check Alcotest.int "histogram untouched" 0 (Telemetry.Histogram.count h);
  check Alcotest.int "no span recorded" 0
    (List.length (Telemetry.Trace.spans ~registry:reg ()))

(* --- tracing ------------------------------------------------------------ *)

let test_trace_ambient () =
  let c = { Telemetry.Trace.trace_id = 7; span_id = 3 } in
  check Alcotest.bool "no ambient ctx" true (Telemetry.Trace.current () = None);
  Telemetry.Trace.with_ctx (Some c) (fun () ->
      check Alcotest.bool "ctx visible" true
        (Telemetry.Trace.current () = Some c);
      Telemetry.Trace.with_ctx None (fun () ->
          check Alcotest.bool "nested clear" true
            (Telemetry.Trace.current () = None));
      check Alcotest.bool "restored after nest" true
        (Telemetry.Trace.current () = Some c));
  (try
     Telemetry.Trace.with_ctx (Some c) (fun () -> failwith "boom")
   with Failure _ -> ());
  check Alcotest.bool "restored after exception" true
    (Telemetry.Trace.current () = None)

let test_trace_spans_and_ring () =
  Telemetry.set_enabled true;
  let reg = Telemetry.create_registry ~span_capacity:2 () in
  let root = Telemetry.Trace.start ~registry:reg ~name:"root" ~now:1.0 () in
  check Alcotest.bool "root has no parent" true (root.sp_parent = None);
  let child =
    Telemetry.Trace.with_ctx
      (Some (Telemetry.Trace.ctx root))
      (fun () -> Telemetry.Trace.start ~registry:reg ~name:"child" ~now:2.0 ())
  in
  check Alcotest.bool "child joins the trace" true
    (child.sp_trace = root.sp_trace
     && child.sp_parent = Some root.sp_span);
  Telemetry.Trace.finish ~registry:reg ~now:3.0 child;
  Telemetry.Trace.finish ~registry:reg ~note:"done" ~now:4.0 root;
  (match Telemetry.Trace.spans ~registry:reg () with
   | [ a; b ] ->
     check Alcotest.string "oldest first" "child" a.Telemetry.Trace.sp_name;
     check Alcotest.string "note recorded" "done" b.Telemetry.Trace.sp_note
   | l -> Alcotest.failf "expected 2 spans, got %d" (List.length l));
  (* a third finished span wraps the capacity-2 ring *)
  let extra = Telemetry.Trace.start ~registry:reg ~name:"extra" ~now:5.0 () in
  Telemetry.Trace.finish ~registry:reg ~now:6.0 extra;
  check Alcotest.int "ring capped" 2
    (List.length (Telemetry.Trace.spans ~registry:reg ()));
  check Alcotest.int "lifetime count" 3
    (Telemetry.Trace.spans_recorded ~registry:reg ());
  check Alcotest.bool "oldest fell off" true
    (List.for_all
       (fun s -> s.Telemetry.Trace.sp_name <> "child")
       (Telemetry.Trace.spans ~registry:reg ()))

let test_ctx_wire () =
  let c = { Telemetry.Trace.trace_id = 12; span_id = 34 } in
  check Alcotest.string "to_string" "12.34" (Telemetry.Trace.ctx_to_string c);
  check Alcotest.bool "round trip" true
    (Telemetry.Trace.ctx_of_string "12.34" = Some c);
  List.iter
    (fun s ->
       if Telemetry.Trace.ctx_of_string s <> None then
         Alcotest.failf "parsed garbage %S" s)
    [ ""; "12"; "a.b"; "1.2.3" ]

let test_span_wire () =
  let s =
    { Telemetry.Trace.sp_trace = 3; sp_span = 9; sp_parent = Some 4;
      sp_name = "rib.route|add"; sp_start = 1.25; sp_stop = 1.5;
      sp_note = "10.0.0.0/24" }
  in
  (match Telemetry_xrl.span_of_string (Telemetry_xrl.span_to_string s) with
   | None -> Alcotest.fail "wire round trip failed"
   | Some s' ->
     check Alcotest.string "separator sanitized" "rib.route/add"
       s'.Telemetry.Trace.sp_name;
     check Alcotest.bool "fields preserved" true
       (s'.sp_trace = 3 && s'.sp_span = 9 && s'.sp_parent = Some 4
        && s'.sp_stop = 1.5 && s'.sp_note = "10.0.0.0/24"));
  let root = { s with Telemetry.Trace.sp_parent = None; sp_name = "n" } in
  (match Telemetry_xrl.span_of_string (Telemetry_xrl.span_to_string root) with
   | Some { Telemetry.Trace.sp_parent = None; _ } -> ()
   | _ -> Alcotest.fail "rootless parent round trip");
  check Alcotest.bool "garbage rejected" true
    (Telemetry_xrl.span_of_string "not|enough|fields" = None)

(* --- trace propagation across transports -------------------------------- *)

(* A caller under an ambient context calls a probe target; the handler
   must observe exactly that context (carried by the _xorp_trace
   argument and stripped before dispatch), and the reply callback must
   run under the sender's context again. *)
let run_propagation_scenario ~families ~pref ~mode () =
  Telemetry.set_enabled true;
  let loop = Eventloop.create ~mode () in
  let finder = Finder.create () in
  let target =
    Xrl_router.create ~families finder loop ~class_name:"probe" ()
  in
  let seen = ref None in
  Xrl_router.add_handler target ~interface:"probe" ~method_name:"ctx"
    (fun _args reply ->
       seen := Telemetry.Trace.current ();
       reply ok []);
  let caller =
    Xrl_router.create ~families ~family_pref:pref finder loop
      ~class_name:"caller" ()
  in
  let root = Telemetry.Trace.start ~name:"client" ~now:0.0 () in
  let root_ctx = Telemetry.Trace.ctx root in
  let reply_ctx = ref None in
  let got = ref false in
  Telemetry.Trace.with_ctx (Some root_ctx) (fun () ->
      Xrl_router.send caller
        (Xrl.make ~target:"probe" ~interface:"probe" ~method_name:"ctx" [])
        (fun err _ ->
           check Alcotest.bool "call ok" true (Xrl_error.is_ok err);
           reply_ctx := Telemetry.Trace.current ();
           got := true));
  Eventloop.run ~until:(fun () -> !got) loop;
  Telemetry.Trace.finish ~now:1.0 root;
  check Alcotest.bool "handler saw the caller's context" true
    (!seen = Some root_ctx);
  check Alcotest.bool "reply ran under the caller's context" true
    (!reply_ctx = Some root_ctx);
  Xrl_router.shutdown caller;
  Xrl_router.shutdown target

let test_propagation_intra () =
  run_propagation_scenario ~families:[ Pf_intra.family ]
    ~pref:[ "x-intra" ] ~mode:`Sim ()

let test_propagation_tcp () =
  run_propagation_scenario ~families:[ Pf_tcp.family ] ~pref:[ "stcp" ]
    ~mode:`Real ()

(* --- the telemetry/0.1 XRL service -------------------------------------- *)

let telemetry_xrl method_name args =
  Xrl.make ~target:"telemetry" ~interface:"telemetry" ~version:"0.1"
    ~method_name args

let test_telemetry_xrl_service () =
  Telemetry.set_enabled true;
  let loop = Eventloop.create () in
  let finder = Finder.create () in
  let service = Telemetry_xrl.expose finder loop in
  let caller = Xrl_router.create finder loop ~class_name:"caller" () in
  let c = Telemetry.counter "svc.test.counter" in
  Telemetry.incr c;
  Telemetry.incr c;
  Telemetry.observe (Telemetry.histogram "svc.test.hist") 5.0;
  let sp = Telemetry.Trace.start ~name:"svc.test.span" ~now:1.0 () in
  Telemetry.Trace.finish ~note:"n" ~now:2.0 sp;
  let call xrl = Xrl_router.call_blocking caller xrl in
  (* list *)
  let err, reply = call (telemetry_xrl "list" []) in
  check Alcotest.bool "list ok" true (Xrl_error.is_ok err);
  let listed =
    Xrl_atom.get_list reply "metrics"
    |> List.filter_map (function Xrl_atom.Txt s -> Some s | _ -> None)
  in
  check Alcotest.bool "counter listed" true
    (List.mem "svc.test.counter|counter" listed);
  check Alcotest.bool "histogram listed" true
    (List.mem "svc.test.hist|histogram" listed);
  (* get *)
  let err, reply =
    call (telemetry_xrl "get" [ Xrl_atom.txt "name" "svc.test.counter" ])
  in
  check Alcotest.bool "get ok" true (Xrl_error.is_ok err);
  check Alcotest.string "counter kind" "counter"
    (Xrl_atom.get_txt reply "type");
  check Alcotest.string "counter value" "2" (Xrl_atom.get_txt reply "value");
  let err, reply =
    call (telemetry_xrl "get" [ Xrl_atom.txt "name" "svc.test.hist" ])
  in
  check Alcotest.bool "get hist ok" true (Xrl_error.is_ok err);
  check Alcotest.int "hist count" 1 (Xrl_atom.get_u32 reply "count");
  check (Alcotest.float 1e-9) "hist p50 (bucket bound of 5.0)" 5.0
    (float_of_string (Xrl_atom.get_txt reply "p50"));
  let err, _ =
    call (telemetry_xrl "get" [ Xrl_atom.txt "name" "no.such.metric" ])
  in
  check Alcotest.bool "missing metric errors" false (Xrl_error.is_ok err);
  (* spans *)
  let err, reply = call (telemetry_xrl "spans" []) in
  check Alcotest.bool "spans ok" true (Xrl_error.is_ok err);
  let spans =
    Xrl_atom.get_list reply "spans"
    |> List.filter_map (function
      | Xrl_atom.Txt s -> Telemetry_xrl.span_of_string s
      | _ -> None)
  in
  check Alcotest.bool "recorded span served" true
    (List.exists
       (fun s -> s.Telemetry.Trace.sp_name = "svc.test.span")
       spans);
  (* snapshot + reset *)
  let err, reply = call (telemetry_xrl "snapshot" []) in
  check Alcotest.bool "snapshot ok" true (Xrl_error.is_ok err);
  let json = Xrl_atom.get_txt reply "json" in
  check Alcotest.bool "snapshot mentions metrics" true
    (Astring.String.is_infix ~affix:"\"metrics\"" json);
  check Alcotest.bool "snapshot mentions the counter" true
    (Astring.String.is_infix ~affix:"svc.test.counter" json);
  let err, _ = call (telemetry_xrl "reset" []) in
  check Alcotest.bool "reset ok" true (Xrl_error.is_ok err);
  check Alcotest.int "reset zeroed the counter" 0 (Telemetry.counter_value c);
  Xrl_router.shutdown caller;
  Xrl_router.shutdown service

(* --- end-to-end: one route_add, >= 3 causally linked spans -------------- *)

let test_route_add_trace_chain () =
  let config =
    "interfaces { interface eth0 { address: 10.0.0.1 } }\n"
  in
  match Rtrmgr.boot ~config () with
  | Error e -> Alcotest.failf "boot failed: %s" (String.concat "; " e)
  | Ok router ->
    let loop = Rtrmgr.eventloop router in
    let caller = Rib.xrl_router (Rtrmgr.rib router) in
    Eventloop.run_until_time loop 1.0;
    (* Drop boot-time noise so the chain below is unambiguous. *)
    let err, _ =
      Xrl_router.call_blocking caller (telemetry_xrl "reset" [])
    in
    check Alcotest.bool "reset ok" true (Xrl_error.is_ok err);
    let err, _ =
      Xrl_router.call_blocking caller
        (Xrl.make ~target:"rib" ~interface:"rib" ~method_name:"add_route"
           [ Xrl_atom.txt "protocol" "static";
             Xrl_atom.ipv4net "net" (Ipv4net.of_string_exn "10.9.9.0/24");
             Xrl_atom.ipv4 "nexthop" (Ipv4.of_string_exn "10.0.0.254") ])
    in
    check Alcotest.bool "add_route ok" true (Xrl_error.is_ok err);
    (* The RIB->FEA send is deferred; let it happen. *)
    Eventloop.run_until_time loop (Eventloop.now loop +. 1.0);
    let err, reply =
      Xrl_router.call_blocking caller (telemetry_xrl "spans" [])
    in
    check Alcotest.bool "spans ok" true (Xrl_error.is_ok err);
    let spans =
      Xrl_atom.get_list reply "spans"
      |> List.filter_map (function
        | Xrl_atom.Txt s -> Telemetry_xrl.span_of_string s
        | _ -> None)
    in
    let find name parent =
      List.find_opt
        (fun (s : Telemetry.Trace.span) ->
           s.sp_name = name
           &&
           match parent with
           | None -> s.sp_parent = None
           | Some (p : Telemetry.Trace.span) ->
             s.sp_trace = p.sp_trace && s.sp_parent = Some p.sp_span)
        spans
    in
    (match find "rib.route_add" None with
     | None -> Alcotest.fail "no rib.route_add root span"
     | Some root ->
       check Alcotest.string "root span notes the prefix" "10.9.9.0/24"
         root.Telemetry.Trace.sp_note;
       (match find "rib.fea_send" (Some root) with
        | None -> Alcotest.fail "no rib.fea_send child span"
        | Some send ->
          (match find "fea.install" (Some send) with
           | None -> Alcotest.fail "no fea.install grandchild span"
           | Some install ->
             check Alcotest.string "install notes the prefix" "10.9.9.0/24"
               install.Telemetry.Trace.sp_note)));
    Rtrmgr.shutdown router

(* --- profiler ring backend ---------------------------------------------- *)

let test_profiler_ring () =
  let loop = Eventloop.create () in
  let p = Profiler.create ~capacity:3 loop in
  Profiler.define p "pt";
  Profiler.enable p "pt";
  List.iter (Profiler.record p "pt") [ "1"; "2"; "3"; "4"; "5" ];
  check
    (Alcotest.list Alcotest.string)
    "ring keeps the newest records" [ "3"; "4"; "5" ]
    (List.map (fun r -> r.Profiler.payload) (Profiler.records p "pt"))

let test_profiler_usec_carry () =
  let loop = Eventloop.create () in
  let p = Profiler.create loop in
  Profiler.define p "pt";
  Profiler.enable p "pt";
  (* 1.9999996s rounds to 2_000_000 us past second 1: must carry into
     "2 000000", never render as "1 1000000". *)
  ignore (Eventloop.after loop 1.9999996 (fun () -> Profiler.record p "pt" "x"));
  Eventloop.run loop;
  (match Profiler.to_strings p with
   | [ s ] ->
     check Alcotest.bool ("carry in " ^ s) true
       (Astring.String.is_prefix ~affix:"pt 2 000000 x" s)
   | l -> Alcotest.failf "expected 1 record, got %d" (List.length l))

let () =
  Alcotest.run "xorp_telemetry"
    [ ("ring", [ Alcotest.test_case "bounded ring" `Quick test_ring ]);
      ("histogram",
       [ Alcotest.test_case "bucket layout" `Quick test_histogram_buckets;
         Alcotest.test_case "stats and quantiles" `Quick test_histogram_stats;
         QCheck_alcotest.to_alcotest prop_quantile ]);
      ("metrics",
       [ Alcotest.test_case "registry" `Quick test_metrics_registry;
         Alcotest.test_case "ambient namespace" `Quick test_ambient_namespace;
         Alcotest.test_case "namespaces isolate same-class components" `Quick
           test_namespaces_isolate_same_class_components;
         Alcotest.test_case "reset_prefix scopes to a namespace" `Quick
           test_reset_prefix;
         Alcotest.test_case "disabled is a no-op" `Quick test_disabled_is_noop ]);
      ("tracing",
       [ Alcotest.test_case "ambient context" `Quick test_trace_ambient;
         Alcotest.test_case "spans and ring" `Quick test_trace_spans_and_ring;
         Alcotest.test_case "ctx wire form" `Quick test_ctx_wire;
         Alcotest.test_case "span wire form" `Quick test_span_wire ]);
      ("propagation",
       [ Alcotest.test_case "across pf_intra" `Quick test_propagation_intra;
         Alcotest.test_case "across pf_tcp" `Quick test_propagation_tcp ]);
      ("xrl-service",
       [ Alcotest.test_case "telemetry/0.1 round trip" `Quick
           test_telemetry_xrl_service ]);
      ("end-to-end",
       [ Alcotest.test_case "route_add trace chain" `Quick
           test_route_add_trace_chain ]);
      ("profiler",
       [ Alcotest.test_case "ring backend" `Quick test_profiler_ring;
         Alcotest.test_case "usec rounding carry" `Quick
           test_profiler_usec_carry ]) ]
