(* Tests for the XRL extensions: the interface-definition layer
   (Xrl_idl), the simulated-network protocol family (Pf_sim), and the
   kill protocol family (Pf_kill). *)

let check = Alcotest.check
let addr = Ipv4.of_string_exn
let net = Ipv4net.of_string_exn

(* --- IDL ---------------------------------------------------------------- *)

let demo_iface =
  Xrl_idl.iface ~name:"demo"
    [ Xrl_idl.meth "add"
        ~args:[ Xrl_idl.arg "a" Xrl_idl.A_u32; Xrl_idl.arg "b" Xrl_idl.A_u32;
                Xrl_idl.arg ~optional:true "note" Xrl_idl.A_txt ]
        ~returns:[ Xrl_idl.arg "sum" Xrl_idl.A_u32 ] ]

let test_idl_check_args () =
  let specs = (Option.get (Xrl_idl.find_method demo_iface "add")).Xrl_idl.m_args in
  let ok args = Xrl_idl.check_args ~what:"t" specs args in
  check Alcotest.bool "all present" true
    (ok [ Xrl_atom.u32 "a" 1; Xrl_atom.u32 "b" 2 ] = Ok ());
  check Alcotest.bool "optional supplied" true
    (ok [ Xrl_atom.u32 "a" 1; Xrl_atom.u32 "b" 2; Xrl_atom.txt "note" "x" ] = Ok ());
  (match ok [ Xrl_atom.u32 "a" 1 ] with
   | Error msg ->
     check Alcotest.bool "names the missing arg" true
       (Astring.String.is_infix ~affix:"\"b\"" msg)
   | Ok () -> Alcotest.fail "missing arg accepted");
  (match ok [ Xrl_atom.u32 "a" 1; Xrl_atom.txt "b" "two" ] with
   | Error msg ->
     check Alcotest.bool "names the type clash" true
       (Astring.String.is_infix ~affix:"expected u32" msg)
   | Ok () -> Alcotest.fail "type clash accepted");
  match ok [ Xrl_atom.u32 "a" 1; Xrl_atom.u32 "b" 2; Xrl_atom.u32 "z" 3 ] with
  | Error msg ->
    check Alcotest.bool "names the unknown arg" true
      (Astring.String.is_infix ~affix:"\"z\"" msg)
  | Ok () -> Alcotest.fail "unknown arg accepted"

let test_idl_validate_call () =
  let good =
    Xrl.make ~target:"demo" ~interface:"demo" ~method_name:"add"
      [ Xrl_atom.u32 "a" 1; Xrl_atom.u32 "b" 2 ]
  in
  check Alcotest.bool "valid call" true
    (Xrl_idl.validate_call demo_iface good = Ok ());
  let wrong_method =
    Xrl.make ~target:"demo" ~interface:"demo" ~method_name:"frobnicate" []
  in
  check Alcotest.bool "unknown method" true
    (Result.is_error (Xrl_idl.validate_call demo_iface wrong_method));
  let wrong_iface =
    Xrl.make ~target:"demo" ~interface:"other" ~method_name:"add" []
  in
  check Alcotest.bool "interface mismatch" true
    (Result.is_error (Xrl_idl.validate_call demo_iface wrong_iface))

let test_idl_wrap_handler_end_to_end () =
  let loop = Eventloop.create () in
  let finder = Finder.create () in
  let target = Xrl_router.create finder loop ~class_name:"demo" () in
  let handler_ran = ref 0 in
  Xrl_idl.add_checked_handler target demo_iface ~method_name:"add"
    (fun args reply ->
       incr handler_ran;
       let a = Xrl_atom.get_u32 args "a" and b = Xrl_atom.get_u32 args "b" in
       (* Contract violation on purpose when a = 999: reply has the
          wrong return name. *)
       if a = 999 then reply Xrl_error.Ok_xrl [ Xrl_atom.u32 "oops" 0 ]
       else reply Xrl_error.Ok_xrl [ Xrl_atom.u32 "sum" (a + b) ]);
  let caller = Xrl_router.create finder loop ~class_name:"caller" () in
  let call args =
    Xrl_router.call_blocking caller
      (Xrl.make ~target:"demo" ~interface:"demo" ~method_name:"add" args)
  in
  (* good call *)
  let err, ret = call [ Xrl_atom.u32 "a" 20; Xrl_atom.u32 "b" 22 ] in
  check Alcotest.bool "ok" true (Xrl_error.is_ok err);
  check Alcotest.int "sum" 42 (Xrl_atom.get_u32 ret "sum");
  (* bad args rejected BEFORE the handler runs *)
  let before = !handler_ran in
  let err, _ = call [ Xrl_atom.txt "a" "x"; Xrl_atom.u32 "b" 2 ] in
  (match err with
   | Xrl_error.Bad_args _ -> ()
   | e -> Alcotest.failf "expected Bad_args, got %s" (Xrl_error.to_string e));
  check Alcotest.int "handler never ran" before !handler_ran;
  (* return-contract violation becomes Internal_error *)
  let err, _ = call [ Xrl_atom.u32 "a" 999; Xrl_atom.u32 "b" 0 ] in
  match err with
  | Xrl_error.Internal_error _ -> ()
  | e -> Alcotest.failf "expected Internal_error, got %s" (Xrl_error.to_string e)

let test_idl_builtin_specs_match_implementations () =
  (* Pin the live components to their published interface specs: a call
     that the spec accepts must succeed against the real component, and
     a call the spec rejects must also be rejected by the component. *)
  let loop = Eventloop.create () in
  let finder = Finder.create () in
  let _fea = Fea.create finder loop () in
  let rib = Rib.create finder loop () in
  ignore rib;
  let caller = Xrl_router.create finder loop ~class_name:"caller" () in
  let rib_iface = Option.get (Xrl_idl.find_interface "rib") in
  let good =
    Xrl.make ~target:"rib" ~interface:"rib" ~method_name:"add_route"
      [ Xrl_atom.txt "protocol" "static";
        Xrl_atom.ipv4net "net" (net "10.0.0.0/8");
        Xrl_atom.ipv4 "nexthop" (addr "192.0.2.1") ]
  in
  check Alcotest.bool "spec accepts" true
    (Xrl_idl.validate_call rib_iface good = Ok ());
  let err, _ = Xrl_router.call_blocking caller good in
  check Alcotest.bool "implementation accepts" true (Xrl_error.is_ok err);
  let bad =
    Xrl.make ~target:"rib" ~interface:"rib" ~method_name:"add_route"
      [ Xrl_atom.txt "protocol" "static";
        Xrl_atom.txt "net" "10.0.0.0/8" (* wrong type *);
        Xrl_atom.ipv4 "nexthop" (addr "192.0.2.1") ]
  in
  check Alcotest.bool "spec rejects" true
    (Result.is_error (Xrl_idl.validate_call rib_iface bad));
  let err, _ = Xrl_router.call_blocking caller bad in
  check Alcotest.bool "implementation rejects too" false (Xrl_error.is_ok err)

let test_idl_render () =
  let rendered = Xrl_idl.to_string demo_iface in
  check Alcotest.bool "mentions interface" true
    (Astring.String.is_infix ~affix:"interface demo/1.0" rendered);
  check Alcotest.bool "mentions return" true
    (Astring.String.is_infix ~affix:"sum:u32" rendered);
  check Alcotest.int "eleven builtin interfaces" 11
    (List.length Xrl_idl.builtin_interfaces)

(* --- Finder ACLs (§7) ------------------------------------------------------ *)

let test_finder_acls () =
  let loop = Eventloop.create () in
  let finder = Finder.create () in
  let _fea = Fea.create finder loop () in
  let rib = Rib.create finder loop () in
  ignore rib;
  (* An experimental protocol allowed to talk only to rib/rib. *)
  let experimental =
    Xrl_router.create finder loop ~class_name:"experimental" ()
  in
  Finder.restrict finder ~class_name:"experimental"
    ~allow:[ ("rib", "rib") ];
  let call router xrl = Xrl_router.call_blocking router xrl in
  (* Allowed: querying the RIB. *)
  let err, _ =
    call experimental
      (Xrl.make ~target:"rib" ~interface:"rib" ~method_name:"get_route_count" [])
  in
  check Alcotest.bool "allowed call succeeds" true (Xrl_error.is_ok err);
  (* Denied: touching the FEA directly. *)
  let err, _ =
    call experimental
      (Xrl.make ~target:"fea" ~interface:"fea" ~method_name:"get_fib_size" [])
  in
  (match err with
   | Xrl_error.Resolve_failed msg ->
     check Alcotest.bool "names the denial" true
       (Astring.String.is_infix ~affix:"not permitted" msg)
   | e -> Alcotest.failf "expected Resolve_failed, got %s" (Xrl_error.to_string e));
  (* Denied: even another interface on the allowed component. *)
  let err, _ =
    call experimental
      (Xrl.make ~target:"rib" ~interface:"rib_client"
         ~method_name:"route_info_invalid"
         [ Xrl_atom.ipv4net "valid" (net "10.0.0.0/8") ])
  in
  check Alcotest.bool "other interface denied" false (Xrl_error.is_ok err);
  (* An unrestricted component is unaffected. *)
  let free = Xrl_router.create finder loop ~class_name:"free" () in
  let err, _ =
    call free
      (Xrl.make ~target:"fea" ~interface:"fea" ~method_name:"get_fib_size" [])
  in
  check Alcotest.bool "unrestricted unaffected" true (Xrl_error.is_ok err);
  (* Lifting the restriction restores access (caches invalidated). *)
  Finder.unrestrict finder ~class_name:"experimental";
  let err, _ =
    call experimental
      (Xrl.make ~target:"fea" ~interface:"fea" ~method_name:"get_fib_size" [])
  in
  check Alcotest.bool "access restored" true (Xrl_error.is_ok err)

let test_finder_acl_cache_no_leak () =
  (* A resolution cached before a restriction lands must not keep
     working afterwards. *)
  let loop = Eventloop.create () in
  let finder = Finder.create () in
  let _fea = Fea.create finder loop () in
  let experimental =
    Xrl_router.create finder loop ~class_name:"experimental" ()
  in
  let xrl =
    Xrl.make ~target:"fea" ~interface:"fea" ~method_name:"get_fib_size" []
  in
  let err, _ = Xrl_router.call_blocking experimental xrl in
  check Alcotest.bool "works before restriction" true (Xrl_error.is_ok err);
  Finder.restrict finder ~class_name:"experimental" ~allow:[];
  let err, _ = Xrl_router.call_blocking experimental xrl in
  check Alcotest.bool "denied after restriction" false (Xrl_error.is_ok err)

(* --- Finder over XRLs ---------------------------------------------------- *)

let test_finder_addressable_via_xrls () =
  let loop = Eventloop.create () in
  let finder = Finder.create () in
  let _finder_component = Finder_xrl.expose finder loop in
  let demo = Xrl_router.create finder loop ~class_name:"demo" () in
  Xrl_router.add_handler demo ~interface:"demo" ~method_name:"noop"
    (fun _ reply -> reply Xrl_error.Ok_xrl []);
  let caller = Xrl_router.create finder loop ~class_name:"caller" () in
  (* Resolve a generic XRL through the Finder's own XRL interface. *)
  let err, args =
    Xrl_router.call_blocking caller
      (Xrl.make ~target:"finder" ~interface:"finder" ~method_name:"resolve"
         [ Xrl_atom.txt "xrl" "finder://demo/demo/1.0/noop" ])
  in
  check Alcotest.bool "resolve ok" true (Xrl_error.is_ok err);
  check Alcotest.string "family" "x-intra" (Xrl_atom.get_txt args "family");
  check Alcotest.bool "keyed method" true
    (Astring.String.is_infix ~affix:"noop@" (Xrl_atom.get_txt args "keyed_method"));
  (* And the returned resolution is directly dispatchable. *)
  let resolved =
    Xrl.make ~protocol:"x-intra"
      ~target:(Xrl_atom.get_txt args "address")
      ~interface:"demo"
      ~method_name:(Xrl_atom.get_txt args "keyed_method")
      []
  in
  let err, _ = Xrl_router.call_blocking caller resolved in
  check Alcotest.bool "dispatch of resolved form" true (Xrl_error.is_ok err);
  (* live_instances *)
  let err, args =
    Xrl_router.call_blocking caller
      (Xrl.make ~target:"finder" ~interface:"finder"
         ~method_name:"live_instances" [ Xrl_atom.txt "class" "demo" ])
  in
  check Alcotest.bool "instances ok" true (Xrl_error.is_ok err);
  check Alcotest.int "one instance" 1
    (List.length (Xrl_atom.get_list args "instances"));
  (* unresolvable target reported cleanly *)
  let err, _ =
    Xrl_router.call_blocking caller
      (Xrl.make ~target:"finder" ~interface:"finder" ~method_name:"resolve"
         [ Xrl_atom.txt "xrl" "finder://ghost/x/1.0/y" ])
  in
  match err with
  | Xrl_error.Resolve_failed _ -> ()
  | e -> Alcotest.failf "expected Resolve_failed, got %s" (Xrl_error.to_string e)

(* --- Pf_sim ----------------------------------------------------------------- *)

let sim_pair () =
  let loop = Eventloop.create () in
  let netsim = Netsim.create ~default_latency:0.002 loop in
  let finder = Finder.create () in
  (* Machine B hosts the target; machine A hosts the caller. *)
  let fam_b = Pf_sim.family netsim ~local_addr:(addr "10.0.0.2") in
  let fam_a = Pf_sim.family netsim ~local_addr:(addr "10.0.0.1") in
  let target =
    Xrl_router.create ~families:[ fam_b ] finder loop ~class_name:"remote" ()
  in
  Xrl_router.add_handler target ~interface:"math" ~method_name:"add"
    (fun args reply ->
       let a = Xrl_atom.get_u32 args "a" and b = Xrl_atom.get_u32 args "b" in
       reply Xrl_error.Ok_xrl [ Xrl_atom.u32 "sum" (a + b) ]);
  let caller =
    Xrl_router.create ~families:[ fam_a ] ~family_pref:[ "sim" ] finder loop
      ~class_name:"caller" ()
  in
  (loop, target, caller)

let test_sim_family_cross_machine_call () =
  let loop, _target, caller = sim_pair () in
  let t0 = Eventloop.now loop in
  let err, ret =
    Xrl_router.call_blocking caller
      (Xrl.make ~target:"remote" ~interface:"math" ~method_name:"add"
         [ Xrl_atom.u32 "a" 40; Xrl_atom.u32 "b" 2 ])
  in
  check Alcotest.bool ("ok: " ^ Xrl_error.to_string err) true (Xrl_error.is_ok err);
  check Alcotest.int "sum" 42 (Xrl_atom.get_u32 ret "sum");
  (* The call crossed the simulated network: at least connect (2 hops)
     plus request plus reply at 2 ms per hop. *)
  let elapsed = Eventloop.now loop -. t0 in
  check Alcotest.bool
    (Printf.sprintf "took simulated network time (%.3fs)" elapsed)
    true (elapsed >= 0.006)

let test_sim_family_pipelines () =
  let loop, _target, caller = sim_pair () in
  let n = 100 in
  let got = ref 0 in
  let wrong = ref 0 in
  for i = 1 to n do
    Xrl_router.send caller
      (Xrl.make ~target:"remote" ~interface:"math" ~method_name:"add"
         [ Xrl_atom.u32 "a" i; Xrl_atom.u32 "b" i ])
      (fun err ret ->
         incr got;
         if (not (Xrl_error.is_ok err)) || Xrl_atom.get_u32 ret "sum" <> 2 * i
         then incr wrong)
  done;
  let t0 = Eventloop.now loop in
  Eventloop.run ~until:(fun () -> !got >= n) loop;
  check Alcotest.int "all replies" n !got;
  check Alcotest.int "all correct" 0 !wrong;
  (* Pipelined: 100 calls over one connection take ~connect + 2 hops,
     not 100 round trips. *)
  let elapsed = Eventloop.now loop -. t0 in
  check Alcotest.bool
    (Printf.sprintf "pipelined (%.3fs for %d calls)" elapsed n)
    true
    (elapsed < 0.050)

let test_sim_family_target_death () =
  let loop, target, caller = sim_pair () in
  Xrl_router.shutdown target;
  let err, _ =
    Xrl_router.call_blocking caller
      (Xrl.make ~target:"remote" ~interface:"math" ~method_name:"add"
         [ Xrl_atom.u32 "a" 1; Xrl_atom.u32 "b" 1 ])
  in
  check Alcotest.bool "fails cleanly" false (Xrl_error.is_ok err);
  ignore loop

(* --- Pf_kill ----------------------------------------------------------------- *)

let test_kill_family_delivers () =
  let loop = Eventloop.create () in
  let finder = Finder.create () in
  let received = ref [] in
  let victim =
    Xrl_router.create
      ~families:[ Pf_intra.family; Pf_kill.family ]
      finder loop ~class_name:"victim" ()
  in
  Pf_kill.make_signalable victim ~on_signal:(fun s -> received := s :: !received);
  let killer =
    Xrl_router.create
      ~families:[ Pf_intra.family; Pf_kill.family ]
      ~family_pref:[ "kill" ] finder loop ~class_name:"killer" ()
  in
  let outcome = ref None in
  Pf_kill.send_signal killer ~target:"victim" ~signal:"TERM" (fun err ->
      outcome := Some err);
  Eventloop.run ~until:(fun () -> !outcome <> None) loop;
  check Alcotest.bool "delivered ok" true
    (match !outcome with Some e -> Xrl_error.is_ok e | None -> false);
  check (Alcotest.list Alcotest.string) "signal received" [ "TERM" ] !received

let test_kill_family_is_restrictive () =
  let loop = Eventloop.create () in
  let finder = Finder.create () in
  let victim =
    Xrl_router.create
      ~families:[ Pf_kill.family ]
      finder loop ~class_name:"victim" ()
  in
  Pf_kill.make_signalable victim ~on_signal:(fun _ -> ());
  (* It also (unwisely) exposes a data method over the kill family. *)
  Xrl_router.add_handler victim ~interface:"data" ~method_name:"leak"
    (fun _ reply -> reply Xrl_error.Ok_xrl [ Xrl_atom.txt "secret" "hunter2" ]);
  let killer =
    Xrl_router.create ~families:[ Pf_kill.family ] ~family_pref:[ "kill" ]
      finder loop ~class_name:"killer" ()
  in
  (* Unknown signal refused. *)
  let outcome = ref None in
  Pf_kill.send_signal killer ~target:"victim" ~signal:"KILLALL" (fun err ->
      outcome := Some err);
  Eventloop.run ~until:(fun () -> !outcome <> None) loop;
  (match !outcome with
   | Some (Xrl_error.Bad_args _ | Xrl_error.No_such_method _) ->
     (* Refused either by the Finder (no such registered signal) or by
        the family's own validation. *)
     ()
   | Some e -> Alcotest.failf "expected refusal, got %s" (Xrl_error.to_string e)
   | None -> Alcotest.fail "no outcome");
  (* Non-signal traffic cannot ride the kill family. *)
  let err, _ =
    Xrl_router.call_blocking killer
      (Xrl.make ~target:"victim" ~interface:"data" ~method_name:"leak" [])
  in
  match err with
  | Xrl_error.Bad_args _ -> ()
  | e -> Alcotest.failf "kill family leaked data: %s" (Xrl_error.to_string e)

(* --- Batch wire roundtrip (property) ------------------------------------ *)

(* Arbitrary atoms: names from the unreserved lowercase alphabet (the
   constructors reject [:=&?,/%]), values over every constructor with
   one level of list nesting (lists nest on the wire, so include one
   nested layer too). *)
let gen_atom =
  let open QCheck.Gen in
  let name = string_size ~gen:(char_range 'a' 'z') (int_range 1 8) in
  let scalar =
    oneof
      [ map (fun n -> Xrl_atom.U32 (n land 0xFFFFFFFF)) nat;
        map (fun n -> Xrl_atom.I32 n) small_signed_int;
        map (fun n -> Xrl_atom.U64 (Int64.of_int n)) nat;
        map (fun s -> Xrl_atom.Txt s) (small_string ~gen:printable);
        map (fun b -> Xrl_atom.Bool b) bool;
        map
          (fun (a, b) -> Xrl_atom.Ipv4_v (Ipv4.of_octets a b a b))
          (pair (int_bound 255) (int_bound 255));
        map
          (fun (a, len) ->
             Xrl_atom.Ipv4net_v (Ipv4net.make (Ipv4.of_octets a 0 0 0) len))
          (pair (int_bound 255) (int_bound 8));
        map (fun s -> Xrl_atom.Binary s) (small_string ~gen:(char_range '\000' '\255'));
      ]
  in
  let value =
    oneof
      [ scalar;
        map (fun vs -> Xrl_atom.List vs) (list_size (int_bound 3) scalar);
        map
          (fun vs -> Xrl_atom.List [ Xrl_atom.List vs; Xrl_atom.Bool true ])
          (list_size (int_bound 2) scalar);
      ]
  in
  map2 Xrl_atom.make name value

let gen_message =
  let open QCheck.Gen in
  let atoms = list_size (int_bound 4) gen_atom in
  let name = string_size ~gen:(char_range 'a' 'z') (int_range 1 8) in
  let request =
    map2
      (fun seq (((target, iface), meth), args) ->
         Xrl_wire.Request
           { seq;
             xrl = Xrl.make ~target ~interface:iface ~method_name:meth args })
      nat
      (pair (pair (pair name name) name) atoms)
  in
  let reply =
    map2
      (fun (seq, code) (note, args) ->
         Xrl_wire.Reply { seq; error = Xrl_error.of_code code note; args })
      (pair nat (int_bound 9))
      (pair (small_string ~gen:printable) atoms)
  in
  let element = oneof [ request; reply ] in
  oneof
    [ element;
      map (fun ms -> Xrl_wire.Batch ms) (list_size (int_bound 8) element) ]

(* Decoding may normalise (e.g. error notes, argument canonical forms),
   so the invariant is re-encode stability, not structural equality:
   encode . decode is the identity on encoder output. *)
let prop_batch_wire_roundtrip =
  QCheck.Test.make ~name:"wire encode/decode/encode is stable" ~count:500
    (QCheck.make gen_message)
    (fun msg ->
       let bytes = Xrl_wire.encode msg in
       match Xrl_wire.decode bytes with
       | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e
       | Ok decoded -> String.equal (Xrl_wire.encode decoded) bytes)

let () =
  Alcotest.run "xorp_xrl_ext"
    [
      ( "idl",
        [
          Alcotest.test_case "check_args" `Quick test_idl_check_args;
          Alcotest.test_case "validate_call" `Quick test_idl_validate_call;
          Alcotest.test_case "checked handler end to end" `Quick
            test_idl_wrap_handler_end_to_end;
          Alcotest.test_case "builtin specs match implementations" `Quick
            test_idl_builtin_specs_match_implementations;
          Alcotest.test_case "rendering and registry" `Quick test_idl_render;
        ] );
      ( "acls",
        [
          Alcotest.test_case "per-class restriction" `Quick test_finder_acls;
          Alcotest.test_case "no stale cache leak" `Quick
            test_finder_acl_cache_no_leak;
        ] );
      ( "finder_xrl",
        [
          Alcotest.test_case "finder addressable via XRLs" `Quick
            test_finder_addressable_via_xrls;
        ] );
      ( "pf_sim",
        [
          Alcotest.test_case "cross-machine call" `Quick
            test_sim_family_cross_machine_call;
          Alcotest.test_case "pipelining" `Quick test_sim_family_pipelines;
          Alcotest.test_case "target death" `Quick test_sim_family_target_death;
        ] );
      ( "pf_kill",
        [
          Alcotest.test_case "signal delivery" `Quick test_kill_family_delivers;
          Alcotest.test_case "restrictive transport" `Quick
            test_kill_family_is_restrictive;
        ] );
      ("wire_batch", List.map Seeded.qcheck [ prop_batch_wire_roundtrip ]);
    ]
