(* Tests for the sharded pipeline (lib/shard, docs/CONCURRENCY.md):
   the prefix-range partition, the cross-domain mailbox and eventloop
   wakeup primitives, the per-range engine checked against the real
   single-domain decision table and RIB under random update sequences,
   and a live multi-domain pool compared with a single-domain RIB. *)

let check = Alcotest.check
let addr = Ipv4.of_string_exn
let net = Ipv4net.of_string_exn

(* --- prefix-range partition ------------------------------------------ *)

let test_shard_bits () =
  check Alcotest.int "1 shard" 0 (Ptree.shard_bits 1);
  check Alcotest.int "2 shards" 1 (Ptree.shard_bits 2);
  check Alcotest.int "3 shards" 2 (Ptree.shard_bits 3);
  check Alcotest.int "4 shards" 2 (Ptree.shard_bits 4);
  check Alcotest.int "8 shards" 3 (Ptree.shard_bits 8);
  Alcotest.check_raises "0 shards" (Invalid_argument "Ptree.shard_bits")
    (fun () -> ignore (Ptree.shard_bits 0))

let test_shard_of () =
  (* every prefix maps somewhere in range, nested prefixes stay
     together, and ownership is monotone in the network address *)
  List.iter
    (fun shards ->
       let prev = ref 0 in
       for hi = 0 to 255 do
         let n = Ipv4net.make (Ipv4.of_octets hi 0 0 0) 8 in
         let s = Ptree.shard_of ~shards n in
         if not (s >= 0 && s < shards) then
           Alcotest.failf "shard_of out of range: %d" s;
         if s < !prev then Alcotest.fail "shard_of not monotone";
         prev := s;
         let inner = Ipv4net.make (Ipv4.of_octets hi 42 7 0) 24 in
         check Alcotest.int "more-specific shares the shard" s
           (Ptree.shard_of ~shards inner)
       done)
    [ 1; 2; 3; 4; 8 ];
  check Alcotest.int "default prefix owned by shard 0" 0
    (Ptree.shard_of ~shards:8 Ipv4net.default)

let test_split_points () =
  let pts = Ptree.split_points ~shards:4 in
  check Alcotest.int "four points" 4 (List.length pts);
  check Alcotest.string "range starts"
    "0.0.0.0/2 64.0.0.0/2 128.0.0.0/2 192.0.0.0/2"
    (String.concat " " (List.map Ipv4net.to_string pts));
  (* each range start is owned by its own shard *)
  List.iteri
    (fun i p -> check Alcotest.int "start ownership" i
        (Ptree.shard_of ~shards:4 p))
    pts

let test_partition_merge () =
  let t = Ptree.create () in
  for hi = 0 to 199 do
    ignore (Ptree.insert t (Ipv4net.make (Ipv4.of_octets hi 1 0 0) 16) hi)
  done;
  let parts = Ptree.partition ~shards:4 t in
  check Alcotest.int "no binding lost"
    (Ptree.size t)
    (Array.fold_left (fun acc p -> acc + Ptree.size p) 0 parts);
  Array.iteri
    (fun s p ->
       Ptree.iter
         (fun n _ ->
            check Alcotest.int "binding in its owner slice" s
              (Ptree.shard_of ~shards:4 n))
         p)
    parts;
  let merged = Ptree.merge_disjoint parts in
  check Alcotest.int "merge restores size" (Ptree.size t) (Ptree.size merged);
  Ptree.iter
    (fun n v ->
       match Ptree.find merged n with
       | Some v' when v' = v -> ()
       | _ -> Alcotest.failf "binding lost for %s" (Ipv4net.to_string n))
    t;
  Alcotest.check_raises "duplicate key rejected"
    (Invalid_argument
       "Ptree.merge_disjoint: duplicate key 0.1.0.0/16")
    (fun () -> ignore (Ptree.merge_disjoint [| t; parts.(0) |]))

(* --- cross-domain mailbox -------------------------------------------- *)

let test_mailbox_lanes () =
  let mb = Mailbox.create () in
  Mailbox.push mb Laneq.Bulk ~net:(net "10.1.0.0/16") "b1";
  Mailbox.push mb Laneq.Urgent ~net:(net "10.2.0.0/16") "u1";
  Mailbox.push mb Laneq.Bulk ~net:(net "10.3.0.0/16") "b2";
  Mailbox.push mb Laneq.Urgent ~net:(net "10.4.0.0/16") "u2";
  check Alcotest.int "length" 4 (Mailbox.length mb);
  let drained = Mailbox.drain mb in
  check
    Alcotest.(list string)
    "urgent lane first, FIFO within each lane"
    [ "u1"; "u2"; "b1"; "b2" ]
    (List.map snd drained);
  check Alcotest.bool "drained empty" true (Mailbox.is_empty mb)

let test_mailbox_demotion () =
  let mb = Mailbox.create ~ordered:true () in
  let n = net "10.1.0.0/16" in
  Mailbox.push mb Laneq.Bulk ~net:n "bulk";
  Mailbox.push mb Laneq.Urgent ~net:n "urgent-demoted";
  check Alcotest.int "demotion recorded" 1 (Mailbox.demoted mb);
  check
    Alcotest.(list string)
    "per-prefix FIFO preserved across lanes"
    [ "bulk"; "urgent-demoted" ]
    (List.map snd (Mailbox.drain mb))

let test_mailbox_bulk_slice () =
  let mb = Mailbox.create () in
  for i = 1 to 10 do
    Mailbox.push mb Laneq.Bulk ~net:(net "10.1.0.0/16") i
  done;
  Mailbox.push mb Laneq.Urgent ~net:(net "10.2.0.0/16") 99;
  let batch = Mailbox.drain ~bulk_slice:3 mb in
  (* urgent drains dry, bulk is bounded *)
  check
    Alcotest.(list int)
    "urgent dry + bounded bulk" [ 99; 1; 2; 3 ] (List.map snd batch);
  check Alcotest.int "rest still queued" 7 (Mailbox.length mb)

let test_mailbox_wakeup () =
  let fired = ref 0 in
  let mb = Mailbox.create ~on_wakeup:(fun () -> incr fired) () in
  Mailbox.push mb Laneq.Bulk ~net:(net "10.1.0.0/16") 1;
  Mailbox.push mb Laneq.Bulk ~net:(net "10.1.0.0/16") 2;
  check Alcotest.int "only the empty->non-empty transition fires" 1 !fired;
  ignore (Mailbox.drain mb);
  Mailbox.push mb Laneq.Bulk ~net:(net "10.1.0.0/16") 3;
  check Alcotest.int "fires again after drain" 2 !fired

let test_mailbox_close () =
  let mb = Mailbox.create () in
  Mailbox.push mb Laneq.Bulk ~net:(net "10.1.0.0/16") 1;
  Mailbox.close mb;
  check Alcotest.bool "closed" true (Mailbox.is_closed mb);
  Mailbox.push mb Laneq.Bulk ~net:(net "10.1.0.0/16") 2;
  check Alcotest.int "push after close dropped" 1 (Mailbox.length mb);
  check
    Alcotest.(list int)
    "drain_wait hands out the remainder" [ 1 ]
    (List.map snd (Mailbox.drain_wait mb));
  check
    Alcotest.(list int)
    "then reports closed-and-empty" []
    (List.map snd (Mailbox.drain_wait mb))

let test_mailbox_timeout () =
  let mb : int Mailbox.t = Mailbox.create () in
  let t0 = Unix.gettimeofday () in
  let out = Mailbox.drain_wait ~timeout_s:0.05 mb in
  let dt = Unix.gettimeofday () -. t0 in
  check Alcotest.(list int) "timeout yields nothing" [] (List.map snd out);
  if dt < 0.04 || dt > 2.0 then Alcotest.failf "odd timeout wait: %.3fs" dt

let test_mailbox_cross_domain () =
  let mb = Mailbox.create () in
  let total = 20_000 in
  let producer =
    Domain.spawn (fun () ->
        for i = 1 to total do
          let lane = if i mod 7 = 0 then Laneq.Urgent else Laneq.Bulk in
          Mailbox.push mb lane ~net:(net "10.1.0.0/16") i
        done;
        Mailbox.close mb)
  in
  (* per-prefix FIFO: everything is one prefix, so the consumer must
     see values in strictly increasing order regardless of lanes *)
  let seen = ref 0 and last = ref 0 and ok = ref true in
  let rec consume () =
    match Mailbox.drain_wait ~bulk_slice:512 mb with
    | [] -> ()
    | batch ->
      List.iter
        (fun (_, v) ->
           incr seen;
           if v <= !last then ok := false;
           last := v)
        batch;
      consume ()
  in
  consume ();
  Domain.join producer;
  check Alcotest.bool "strictly increasing across domains" true !ok;
  check Alcotest.int "nothing lost" total !seen

(* --- cross-domain eventloop wakeup ----------------------------------- *)

let test_post_sim () =
  let loop = Eventloop.create () in
  let ran = ref false in
  check Alcotest.bool "quiescent before" true (Eventloop.quiescent loop);
  let d =
    Domain.spawn (fun () -> Eventloop.post loop (fun () -> ran := true))
  in
  Domain.join d;
  check Alcotest.bool "posted work counts as pending" false
    (Eventloop.quiescent loop);
  Eventloop.run_until_idle loop;
  check Alcotest.bool "ran on the loop's domain" true !ran;
  check Alcotest.bool "quiescent after" true (Eventloop.quiescent loop)

let test_post_real_wakeup () =
  let loop = Eventloop.create ~mode:`Real () in
  let ran = ref false in
  let d =
    Domain.spawn (fun () ->
        Unix.sleepf 0.02;
        Eventloop.post loop (fun () -> ran := true))
  in
  (* The posting domain fires mid-select; the self-pipe must wake the
     loop well before many 100ms select timeouts elapse. *)
  let deadline = Unix.gettimeofday () +. 5.0 in
  while (not !ran) && Unix.gettimeofday () < deadline do
    ignore (Eventloop.run_once loop)
  done;
  Domain.join d;
  check Alcotest.bool "woken and ran" true !ran

let test_post_fifo () =
  let loop = Eventloop.create () in
  let order = ref [] in
  for i = 1 to 5 do
    Eventloop.post loop (fun () -> order := i :: !order)
  done;
  Eventloop.run_until_idle loop;
  check Alcotest.(list int) "posted callbacks run in order" [ 1; 2; 3; 4; 5 ]
    (List.rev !order)

(* --- engine vs the single-domain pipeline (QCheck) -------------------- *)

(* Universe: BGP prefixes spread across the top bits (so a multi-shard
   split actually separates them), internal prefixes that cover some
   nexthops but not others (so the extint gate opens and closes), and
   XRL-external prefixes disjoint from the BGP-fed ones. *)
let bgp_nets =
  Array.map net
    [| "8.1.0.0/16"; "32.6.0.0/16"; "64.2.0.0/16"; "128.3.0.0/16";
       "160.7.0.0/16"; "200.4.0.0/16"; "250.5.0.0/16"; "8.1.128.0/17" |]

let int_nets =
  Array.map net [| "10.0.0.0/8"; "192.0.0.0/8"; "7.0.0.0/8"; "10.9.0.0/16" |]

let ext_nets = Array.map net [| "77.1.0.0/16"; "78.2.0.0/16"; "79.3.0.0/16" |]
let nexthops =
  Array.map addr [| "10.9.0.1"; "192.168.0.1"; "7.7.7.7"; "99.9.9.9" |]

let internal_protocols = [| "connected"; "static"; "ospf"; "rip" |]

let peer_infos =
  [ (1, Bgp_types.Ebgp, 65001); (2, Bgp_types.Ebgp, 65002);
    (3, Bgp_types.Ibgp, 65000); (4, Bgp_types.Ibgp, 65000) ]
  |> List.map (fun (peer_id, kind, peer_as) ->
      { Bgp_types.peer_id; peer_addr = Ipv4.of_octets 10 0 0 peer_id;
        peer_as; kind;
        peer_bgp_id = Ipv4.of_octets peer_id peer_id peer_id peer_id })

type gop =
  | GBgpAdd of int * int * int * int * int * int
      (* peer idx, net idx, nexthop idx, med, localpref, igp metric *)
  | GBgpDel of int * int (* peer idx, net idx *)
  | GIntAdd of int * int * int * int (* proto idx, net idx, nh idx, metric *)
  | GIntDel of int * int (* proto idx, net idx *)
  | GExtAdd of bool * int * int (* ibgp?, net idx, nh idx *)
  | GExtDel of bool * int (* ibgp?, net idx *)

let gen_op =
  QCheck.Gen.(
    frequency
      [ (5,
         map
           (fun (p, n, nh, (med, lp, igp)) -> GBgpAdd (p, n, nh, med, lp, igp))
           (quad (int_range 0 3)
              (int_range 0 (Array.length bgp_nets - 1))
              (int_range 0 (Array.length nexthops - 1))
              (triple (int_range 0 3) (int_range 90 110) (int_range 0 3))));
        (3,
         map2 (fun p n -> GBgpDel (p, n)) (int_range 0 3)
           (int_range 0 (Array.length bgp_nets - 1)));
        (3,
         map
           (fun (p, n, nh, m) -> GIntAdd (p, n, nh, m))
           (quad (int_range 0 3)
              (int_range 0 (Array.length int_nets - 1))
              (int_range 0 (Array.length nexthops - 1))
              (int_range 0 5)));
        (2,
         map2 (fun p n -> GIntDel (p, n)) (int_range 0 3)
           (int_range 0 (Array.length int_nets - 1)));
        (2,
         map
           (fun (i, n, nh) -> GExtAdd (i, n, nh))
           (triple bool
              (int_range 0 (Array.length ext_nets - 1))
              (int_range 0 (Array.length nexthops - 1))));
        (1,
         map2 (fun i n -> GExtDel (i, n)) bool
           (int_range 0 (Array.length ext_nets - 1))) ])

let make_bgp_route ~peer ~neti ~nhi ~med ~lp ~igp =
  let info = List.nth peer_infos peer in
  { Bgp_types.net = bgp_nets.(neti);
    attrs =
      { (Bgp_types.default_attrs ~nexthop:nexthops.(nhi)) with
        Bgp_types.aspath = Aspath.prepend info.peer_as Aspath.empty;
        med = Some med;
        localpref =
          (if info.kind = Bgp_types.Ibgp then Some lp else None) };
    peer_id = info.peer_id;
    igp_metric = Some igp }

(* A minimal peer branch: stores the latest route per prefix and lets
   the pull-based decision table look it up. *)
class stub_branch name =
  object
    inherit Bgp_table.base name
    val store : (Ipv4net.t, Bgp_types.route) Hashtbl.t = Hashtbl.create 16
    method add_route (r : Bgp_types.route) =
      Hashtbl.replace store r.Bgp_types.net r
    method delete_route (r : Bgp_types.route) =
      Hashtbl.remove store r.Bgp_types.net
    method lookup_route n = Hashtbl.find_opt store n
  end

let prop_engine_matches_single_domain =
  QCheck.Test.make ~name:"engine: sharded = single-domain decision+RIB"
    ~count:30
    QCheck.(
      pair (make ~print:(fun n -> string_of_int n) Gen.(oneofl [ 1; 2; 4 ]))
        (make Gen.(list_size (int_range 60 200) gen_op)))
    (fun (shards, ops) ->
       (* reference: the real decision table over stub peer branches,
          its winner stream feeding the real single-domain RIB exactly
          as Bgp_process's RIB branch would *)
       let loop = Eventloop.create () in
       let finder = Finder.create () in
       let rib = Rib.create ~send_to_fea:false finder loop () in
       let decision = new Bgp_decision.decision_table ~name:"decision" () in
       let branches =
         List.map
           (fun info ->
              let b =
                new stub_branch
                  (Printf.sprintf "peer%d" info.Bgp_types.peer_id)
              in
              decision#add_parent ~info (b :> Bgp_table.table);
              (info.Bgp_types.peer_id, b))
           peer_infos
       in
       let kind_of peer_id =
         (List.find
            (fun i -> i.Bgp_types.peer_id = peer_id)
            peer_infos).Bgp_types.kind
       in
       let proto_of (r : Bgp_types.route) =
         match kind_of r.peer_id with
         | Bgp_types.Ibgp -> "ibgp"
         | Bgp_types.Ebgp -> "ebgp"
       in
       let rib_branch =
         object
           method tbl_name = "ref-rib-branch"
           method set_next (_ : Bgp_table.table option) = ()
           method lookup_route (_ : Ipv4net.t) : Bgp_types.route option =
             None
           method add_route (r : Bgp_types.route) =
             (match
                Rib.add_route rib ~protocol:(proto_of r) ~net:r.net
                  ~nexthop:r.attrs.nexthop
                  ~metric:(Option.value r.attrs.med ~default:0) ()
              with
              | Ok () -> ()
              | Error e -> failwith e)
           method delete_route (r : Bgp_types.route) =
             ignore (Rib.delete_route rib ~protocol:(proto_of r) ~net:r.net)
         end
       in
       decision#set_next (Some (rib_branch :> Bgp_table.table));
       (* sharded side: one engine per range plus the delta mirrors an
          applier would maintain *)
       let engines =
         Array.init shards (fun shard -> Shard.Engine.create ~shard ~shards)
       in
       let bgp_mirror = Hashtbl.create 64 in
       let rib_mirror = Hashtbl.create 64 in
       let owner n = engines.(Ptree.shard_of ~shards n) in
       (* emit_bgp re-enacts the real wiring: the winner delta lands in
          the process mirror, whose fanout diff (delete old, add new)
          crosses the RIB's XRL boundary and is dispatched back to the
          owner engine as an ebgp/ibgp origin operation *)
       let rec emit =
         { Shard.Engine.emit_bgp =
             (fun n w ->
                let old = Hashtbl.find_opt bgp_mirror n in
                (match w with
                 | Some r -> Hashtbl.replace bgp_mirror n r
                 | None -> Hashtbl.remove bgp_mirror n);
                (match old with
                 | Some (o : Bgp_types.route) when o.peer_id <> 0 ->
                   Shard.Engine.apply_rib (owner n) ~emit
                     (Rib.Shard_delete { protocol = proto_of o; net = n })
                 | _ -> ());
                match w with
                | Some (r : Bgp_types.route) when r.peer_id <> 0 ->
                  Shard.Engine.apply_rib (owner n) ~emit
                    (Rib.Shard_add
                       (Rib_route.make ~net:n ~nexthop:r.attrs.nexthop
                          ~metric:(Option.value r.attrs.med ~default:0)
                          ~protocol:(proto_of r) ()))
                | _ -> ());
           emit_rib =
             (fun n w ->
                match w with
                | Some r -> Hashtbl.replace rib_mirror n r
                | None -> Hashtbl.remove rib_mirror n) }
       in
       let bgp_to_owner (op : Bgp_decision.shard_op) n =
         Shard.Engine.apply_bgp (owner n) ~emit op
       in
       let rib_broadcast op =
         Array.iter (fun e -> Shard.Engine.apply_rib e ~emit op) engines
       in
       List.iter
         (fun info ->
            Array.iter
              (fun e ->
                 Shard.Engine.apply_bgp e ~emit
                   (Bgp_decision.Shard_peer info))
              engines)
         peer_infos;
       (* drive both sides with the same accepted operations *)
       List.iter
         (fun op ->
            match op with
            | GBgpAdd (p, n, nh, med, lp, igp) ->
              let r = make_bgp_route ~peer:p ~neti:n ~nhi:nh ~med ~lp ~igp in
              let branch = List.assoc r.peer_id branches in
              branch#add_route r;
              decision#add_route r;
              bgp_to_owner (Bgp_decision.Shard_add r) r.net
            | GBgpDel (p, n) ->
              let info = List.nth peer_infos p in
              let branch = List.assoc info.Bgp_types.peer_id branches in
              (match branch#lookup_route bgp_nets.(n) with
               | None -> () (* nothing to withdraw on either side *)
               | Some r ->
                 branch#delete_route r;
                 decision#delete_route r;
                 bgp_to_owner (Bgp_decision.Shard_delete r) r.net)
            | GIntAdd (p, n, nh, metric) ->
              let protocol = internal_protocols.(p) in
              (match
                 Rib.add_route rib ~protocol ~net:int_nets.(n)
                   ~nexthop:nexthops.(nh) ~metric ()
               with
               | Error e -> failwith e
               | Ok () ->
                 rib_broadcast
                   (Rib.Shard_add
                      (Rib_route.make ~net:int_nets.(n)
                         ~nexthop:nexthops.(nh) ~metric ~protocol ())))
            | GIntDel (p, n) ->
              let protocol = internal_protocols.(p) in
              (match Rib.delete_route rib ~protocol ~net:int_nets.(n) with
               | Error _ -> () (* absent: skipped on both sides *)
               | Ok () ->
                 rib_broadcast
                   (Rib.Shard_delete { protocol; net = int_nets.(n) }))
            | GExtAdd (ibgp, n, nh) ->
              let protocol = if ibgp then "ibgp" else "ebgp" in
              (match
                 Rib.add_route rib ~protocol ~net:ext_nets.(n)
                   ~nexthop:nexthops.(nh) ()
               with
               | Error e -> failwith e
               | Ok () ->
                 let r =
                   Rib_route.make ~net:ext_nets.(n) ~nexthop:nexthops.(nh)
                     ~protocol ()
                 in
                 Shard.Engine.apply_rib (owner r.Rib_route.net) ~emit
                   (Rib.Shard_add r))
            | GExtDel (ibgp, n) ->
              let protocol = if ibgp then "ibgp" else "ebgp" in
              (match Rib.delete_route rib ~protocol ~net:ext_nets.(n) with
               | Error _ -> ()
               | Ok () ->
                 Shard.Engine.apply_rib
                   (owner ext_nets.(n))
                   ~emit
                   (Rib.Shard_delete { protocol; net = ext_nets.(n) })))
         ops;
       Eventloop.run_until_idle loop;
       (* the union of per-shard winners — and the mirror rebuilt from
          the delta stream — must both equal the single-domain result *)
       let ref_bgp = Hashtbl.create 64 in
       decision#fold_winners
         (fun r () -> Hashtbl.replace ref_bgp r.Bgp_types.net r)
         ();
       let ref_rib = Hashtbl.create 64 in
       Rib.fold_winners rib
         (fun r () -> Hashtbl.replace ref_rib r.Rib_route.net r)
         ();
       let same_tbl equal a b =
         Hashtbl.length a = Hashtbl.length b
         && Hashtbl.fold
           (fun k v acc ->
              acc
              && match Hashtbl.find_opt b k with
              | Some v' -> equal v v'
              | None -> false)
           a true
       in
       let engines_bgp = Hashtbl.create 64 in
       let engines_rib = Hashtbl.create 64 in
       Hashtbl.iter
         (fun n _ ->
            match Shard.Engine.bgp_winner (owner n) n with
            | Some r -> Hashtbl.replace engines_bgp n r
            | None -> ())
         ref_bgp;
       (* also collect engine winners the reference does not have, to
          catch extras: walk the mirrors, which are rebuilt purely from
          emitted deltas *)
       Hashtbl.iter
         (fun n r ->
            match Shard.Engine.bgp_winner (owner n) n with
            | Some r' when Bgp_types.route_equal r r' -> ()
            | _ -> Hashtbl.replace engines_bgp n r)
         bgp_mirror;
       Hashtbl.iter
         (fun n _ ->
            match Shard.Engine.rib_winner (owner n) n with
            | Some r -> Hashtbl.replace engines_rib n r
            | None -> ())
         ref_rib;
       Hashtbl.iter
         (fun n r ->
            match Shard.Engine.rib_winner (owner n) n with
            | Some r' when Rib_route.equal r r' -> ()
            | _ -> Hashtbl.replace engines_rib n r)
         rib_mirror;
       let bgp_count =
         Array.fold_left
           (fun acc e -> acc + Shard.Engine.bgp_winner_count e)
           0 engines
       in
       let rib_count =
         Array.fold_left
           (fun acc e -> acc + Shard.Engine.rib_winner_count e)
           0 engines
       in
       Rib.shutdown rib;
       same_tbl Bgp_types.route_equal ref_bgp engines_bgp
       && same_tbl Bgp_types.route_equal ref_bgp bgp_mirror
       && same_tbl Rib_route.equal ref_rib engines_rib
       && same_tbl Rib_route.equal ref_rib rib_mirror
       && bgp_count = Hashtbl.length ref_bgp
       && rib_count = Hashtbl.length ref_rib)

(* --- engine reset: stale candidates do not survive a BGP rebirth ------ *)

let test_engine_reset_bgp () =
  let eng = Shard.Engine.create ~shard:0 ~shards:1 in
  let deltas = ref 0 in
  let emit =
    { Shard.Engine.emit_bgp = (fun _ _ -> incr deltas);
      emit_rib = (fun _ _ -> ()) }
  in
  let attach_all () =
    List.iter
      (fun info ->
         Shard.Engine.apply_bgp eng ~emit (Bgp_decision.Shard_peer info))
      peer_infos
  in
  attach_all ();
  let r0 = make_bgp_route ~peer:0 ~neti:0 ~nhi:0 ~med:1 ~lp:100 ~igp:5 in
  let r1 = make_bgp_route ~peer:1 ~neti:1 ~nhi:0 ~med:1 ~lp:100 ~igp:5 in
  Shard.Engine.apply_bgp eng ~emit (Bgp_decision.Shard_add r0);
  Shard.Engine.apply_bgp eng ~emit (Bgp_decision.Shard_add r1);
  check Alcotest.int "two winners before reset" 2
    (Shard.Engine.bgp_winner_count eng);
  let before = !deltas in
  Shard.Engine.reset_bgp eng;
  check Alcotest.int "reset emits no deltas" before !deltas;
  check Alcotest.int "no winners after reset" 0
    (Shard.Engine.bgp_winner_count eng);
  (* the reborn process's peers resend their sessions; a route withdrawn
     while BGP was dead (r1) is simply never re-fed, so it must not
     reappear as a stale candidate *)
  attach_all ();
  Shard.Engine.apply_bgp eng ~emit (Bgp_decision.Shard_add r0);
  check Alcotest.int "only re-fed routes win" 1
    (Shard.Engine.bgp_winner_count eng);
  check Alcotest.bool "stale candidate gone" true
    (Option.is_none (Shard.Engine.bgp_winner eng r1.Bgp_types.net))

(* --- live pool: multi-domain RIB vs single-domain RIB ----------------- *)

let test_pool_rib_equivalence () =
  let loop_s = Eventloop.create () in
  let finder_s = Finder.create () in
  let pool = Shard.create ~shards:4 loop_s () in
  let rib_s =
    Rib.create ~send_to_fea:false
      ~shard_dispatch:(Shard.rib_dispatch pool)
      finder_s loop_s ()
  in
  Shard.connect_rib pool rib_s;
  let loop_r = Eventloop.create () in
  let finder_r = Finder.create () in
  let rib_r = Rib.create ~send_to_fea:false finder_r loop_r () in
  let protocols =
    [| "connected"; "static"; "ospf"; "rip"; "ebgp"; "ibgp" |]
  in
  let rng = Random.State.make [| Seeded.seed; 77 |] in
  for i = 0 to 1499 do
    let protocol = protocols.(Random.State.int rng (Array.length protocols)) in
    let n =
      Ipv4net.make
        (Ipv4.of_octets (Random.State.int rng 256) (i mod 50) 0 0)
        16
    in
    let nh = nexthops.(Random.State.int rng (Array.length nexthops)) in
    if Random.State.int rng 4 = 0 then begin
      let a = Rib.delete_route rib_s ~protocol ~net:n in
      let b = Rib.delete_route rib_r ~protocol ~net:n in
      check Alcotest.bool "delete outcomes agree"
        (Result.is_ok a) (Result.is_ok b)
    end
    else begin
      let metric = Random.State.int rng 10 in
      (match Rib.add_route rib_s ~protocol ~net:n ~nexthop:nh ~metric () with
       | Ok () -> ()
       | Error e -> Alcotest.fail e);
      match Rib.add_route rib_r ~protocol ~net:n ~nexthop:nh ~metric () with
      | Ok () -> ()
      | Error e -> Alcotest.fail e
    end
  done;
  Shard.quiesce pool;
  Eventloop.run_until_idle loop_s;
  Eventloop.run_until_idle loop_r;
  check Alcotest.int "in-flight backlog drained" 0 (Shard.backlog pool);
  let winners rib =
    Rib.fold_winners rib (fun r acc -> (r.Rib_route.net, r) :: acc) []
    |> List.sort (fun (a, _) (b, _) -> Ipv4net.compare a b)
  in
  let ws = winners rib_s and wr = winners rib_r in
  check Alcotest.int "same winner count" (List.length wr) (List.length ws);
  List.iter2
    (fun (ns, rs) (nr, rr) ->
       if not (Ipv4net.equal ns nr && Rib_route.equal rs rr) then
         Alcotest.failf "winner mismatch at %s vs %s"
           (Ipv4net.to_string ns) (Ipv4net.to_string nr))
    ws wr;
  (* a replay re-emits every winner; appliers diff, so nothing changes *)
  let before = Rib.route_count rib_s in
  Shard.replay pool;
  Shard.quiesce pool;
  Eventloop.run_until_idle loop_s;
  check Alcotest.int "replay is idempotent" before (Rib.route_count rib_s);
  check Alcotest.int "per-protocol counts preserved"
    (List.fold_left
       (fun acc p -> acc + Rib.origin_route_count rib_r p)
       0 (Rib.protocols rib_r))
    (List.fold_left
       (fun acc p -> acc + Rib.origin_route_count rib_s p)
       0 (Rib.protocols rib_s));
  Shard.shutdown pool;
  Rib.shutdown rib_s;
  Rib.shutdown rib_r

let test_pool_worker_failure_reported () =
  let loop = Eventloop.create () in
  let pool = Shard.create ~shards:2 loop () in
  (* An engine-level invariant violation on a worker domain must not
     vanish: the next quiesce reports it. A delete for a peer the
     engine never saw is harmless, so provoke a crash differently — via
     an op whose processing raises. Shard_peer with absurd data cannot
     raise, so use the one op that can: none today. Instead check the
     healthy path: quiesce on an idle pool completes. *)
  Shard.quiesce pool;
  check Alcotest.int "idle pool has no backlog" 0 (Shard.backlog pool);
  Shard.shutdown pool;
  (* shutdown is idempotent and dispatches after it are dropped *)
  Shard.shutdown pool;
  Shard.rib_dispatch pool ~lane:Laneq.Urgent
    (Rib.Shard_add
       (Rib_route.make ~net:(net "10.0.0.0/8") ~nexthop:(addr "10.0.0.1")
          ~protocol:"static" ()));
  check Alcotest.int "post-shutdown dispatch dropped" 0 (Shard.backlog pool)

let () =
  Alcotest.run "xorp_shard"
    [
      ( "ptree_shard",
        [ Alcotest.test_case "shard_bits" `Quick test_shard_bits;
          Alcotest.test_case "shard_of" `Quick test_shard_of;
          Alcotest.test_case "split_points" `Quick test_split_points;
          Alcotest.test_case "partition_merge" `Quick test_partition_merge ] );
      ( "mailbox",
        [ Alcotest.test_case "lanes" `Quick test_mailbox_lanes;
          Alcotest.test_case "demotion" `Quick test_mailbox_demotion;
          Alcotest.test_case "bulk_slice" `Quick test_mailbox_bulk_slice;
          Alcotest.test_case "wakeup" `Quick test_mailbox_wakeup;
          Alcotest.test_case "close" `Quick test_mailbox_close;
          Alcotest.test_case "timeout" `Quick test_mailbox_timeout;
          Alcotest.test_case "cross_domain" `Quick test_mailbox_cross_domain ]
      );
      ( "eventloop_post",
        [ Alcotest.test_case "sim" `Quick test_post_sim;
          Alcotest.test_case "real_wakeup" `Quick test_post_real_wakeup;
          Alcotest.test_case "fifo" `Quick test_post_fifo ] );
      ( "equivalence",
        Alcotest.test_case "reset_bgp" `Quick test_engine_reset_bgp
        :: List.map Seeded.qcheck [ prop_engine_matches_single_domain ] );
      ( "pool",
        [ Alcotest.test_case "rib_equivalence" `Quick
            test_pool_rib_equivalence;
          Alcotest.test_case "lifecycle" `Quick
            test_pool_worker_failure_reported ] );
    ]
