(* Whole-router integration tests: multiple routers booted from
   configuration files running several protocols at once, route
   redistribution across protocols, component death and recovery,
   determinism of the simulated world, and end-to-end consistency
   between BGP, the RIB and the FIB. *)

let check = Alcotest.check
let addr = Ipv4.of_string_exn
let _net = Ipv4net.of_string_exn

let boot ~loop ~netsim name config =
  match Rtrmgr.boot ~loop ~netsim ~config () with
  | Ok r -> r
  | Error problems ->
    Alcotest.failf "%s rejected: %s" name (String.concat "; " problems)

let run_for loop s = Eventloop.run_until_time loop (Eventloop.now loop +. s)

(* Topology: an ISP speaking BGP to a border router that runs OSPF
   into a core router; the core also speaks RIP to a legacy box.

     isp (AS 65100) --eBGP-- border (AS 65001, OSPF) --OSPF-- core
                                                       core --RIP-- legacy
*)

let isp_config = {|
interfaces {
    interface eth0 { address: 10.0.0.9 }
}
protocols {
    bgp {
        local-as: 65100
        bgp-id: 9.9.9.9
        network 128.16.0.0/16 { }
        network 128.17.0.0/16 { }
        network 128.18.0.0/16 { }
        peer 10.0.0.1 { as: 65001 local-ip: 10.0.0.9 }
    }
}
|}

let border_config = {|
interfaces {
    interface eth0 { address: 10.0.0.1 }
    interface eth1 { address: 10.0.1.1 }
}
protocols {
    bgp {
        local-as: 65001
        bgp-id: 1.1.1.1
        peer 10.0.0.9 { as: 65100 local-ip: 10.0.0.1 }
    }
    ospf {
        router-id: 1.1.1.1
        interface 10.0.1.1 {
            neighbor 10.0.1.2 { router-id: 2.2.2.2 }
        }
        stub 172.20.0.0/16 { cost: 1 }
    }
}
|}

let core_config = {|
interfaces {
    interface eth0 { address: 10.0.1.2 }
    interface eth1 { address: 10.0.2.2 }
}
protocols {
    ospf {
        router-id: 2.2.2.2
        interface 10.0.1.2 {
            neighbor 10.0.1.1 { router-id: 1.1.1.1 }
        }
        stub 172.21.0.0/16 { cost: 1 }
    }
    rip {
        interface 10.0.2.2 { neighbor: 10.0.2.3 }
        redistribute: "load protocol; push.str ospf; eq; jfalse no; accept; label no; reject"
    }
}
|}

let legacy_config = {|
interfaces {
    interface eth0 { address: 10.0.2.3 }
}
protocols {
    rip {
        interface 10.0.2.3 { neighbor: 10.0.2.2 }
        route 192.168.77.0/24 { metric: 1 }
    }
}
|}

let build_world () =
  let loop = Eventloop.create () in
  let netsim = Netsim.create loop in
  let isp = boot ~loop ~netsim "isp" isp_config in
  let border = boot ~loop ~netsim "border" border_config in
  let core = boot ~loop ~netsim "core" core_config in
  let legacy = boot ~loop ~netsim "legacy" legacy_config in
  (loop, isp, border, core, legacy)

let proto_at router a =
  match Rib.lookup_best (Rtrmgr.rib router) (addr a) with
  | Some r -> r.Rib_route.protocol
  | None -> "unroutable"

let test_multiprotocol_world () =
  let loop, _isp, border, core, legacy = build_world () in
  run_for loop 60.0;
  (* BGP at the border. *)
  check Alcotest.string "ISP route via ebgp at border" "ebgp"
    (proto_at border "128.16.5.5");
  (* OSPF between border and core, both directions. *)
  check Alcotest.string "core's stub at border via ospf" "ospf"
    (proto_at border "172.21.3.3");
  check Alcotest.string "border's stub at core via ospf" "ospf"
    (proto_at core "172.20.3.3");
  (* RIP between core and legacy. *)
  check Alcotest.string "legacy route at core via rip" "rip"
    (proto_at core "192.168.77.9");
  (* Redistribution: the core leaks OSPF routes into RIP, so the legacy
     box can reach the border's stub. *)
  check Alcotest.string "ospf-redistributed route at legacy" "rip"
    (proto_at legacy "172.20.3.3");
  (* ...but not BGP routes (the filter only accepts protocol ospf), and
     the border's BGP routes were never in OSPF anyway. *)
  check Alcotest.string "no ISP route at legacy" "unroutable"
    (proto_at legacy "128.16.5.5");
  (* FIB consistency: every RIB winner is installed. *)
  List.iter
    (fun router ->
       let rib_count = Rib.route_count (Rtrmgr.rib router) in
       let fib_count = Fib.size (Fea.fib (Rtrmgr.fea router)) in
       check Alcotest.int "FIB matches RIB" rib_count fib_count)
    [ border; core; legacy ]

let test_show_commands_everywhere () =
  let loop, _isp, border, core, _legacy = build_world () in
  run_for loop 60.0;
  let infix = Astring.String.is_infix in
  check Alcotest.bool "border shows ebgp" true
    (infix ~affix:"ebgp" (Rtrmgr.show_routes border));
  check Alcotest.bool "border shows Established" true
    (infix ~affix:"Established" (Rtrmgr.show_bgp_peers border));
  check Alcotest.bool "core shows ospf table" true
    (infix ~affix:"172.20.0.0/16" (Rtrmgr.show_ospf core));
  check Alcotest.bool "core shows rip" true
    (infix ~affix:"192.168.77.0/24" (Rtrmgr.show_rip core))

let test_bgp_death_flushes_rib () =
  let loop, isp, border, _core, _legacy = build_world () in
  run_for loop 60.0;
  check Alcotest.string "route present" "ebgp" (proto_at border "128.16.5.5");
  (* The ISP's whole BGP process dies. The border's BGP sees the
     session drop and withdraws; even if it didn't, the Finder death
     notification would flush the origin tables. *)
  Bgp_process.shutdown (Option.get (Rtrmgr.bgp isp));
  run_for loop 30.0;
  check Alcotest.string "flushed from RIB" "unroutable"
    (proto_at border "128.16.5.5");
  check Alcotest.bool "flushed from FIB" true
    (Fib.lookup (Fea.fib (Rtrmgr.fea border)) (addr "128.16.5.5") = None);
  (* OSPF unaffected. *)
  check Alcotest.string "ospf still fine" "ospf" (proto_at border "172.21.3.3")

let test_ospf_link_death_reconverges () =
  let loop, _isp, border, core, legacy = build_world () in
  run_for loop 60.0;
  check Alcotest.string "present before" "rip" (proto_at legacy "172.20.3.3");
  (* The border's OSPF dies; the core must withdraw its routes and the
     redistribution into RIP must poison them at the legacy box. *)
  Ospf_process.shutdown (Option.get (Rtrmgr.ospf border));
  run_for loop 120.0;
  check Alcotest.string "withdrawn at core" "unroutable"
    (proto_at core "172.20.3.3");
  check Alcotest.string "poisoned through RIP" "unroutable"
    (proto_at legacy "172.20.3.3")

let test_determinism () =
  (* The whole four-router world is deterministic under the simulated
     clock: two runs dispatch exactly the same number of events and end
     in identical route tables. *)
  let snapshot () =
    let loop, _isp, border, core, legacy = build_world () in
    run_for loop 90.0;
    let dump router =
      Rib.fold_winners (Rtrmgr.rib router)
        (fun r acc -> Rib_route.to_string r :: acc)
        []
      |> List.sort compare
    in
    (Eventloop.events_dispatched loop, dump border, dump core, dump legacy)
  in
  let d1, b1, c1, l1 = snapshot () in
  let d2, b2, c2, l2 = snapshot () in
  check Alcotest.int "same event count" d1 d2;
  check (Alcotest.list Alcotest.string) "same border RIB" b1 b2;
  check (Alcotest.list Alcotest.string) "same core RIB" c1 c2;
  check (Alcotest.list Alcotest.string) "same legacy RIB" l1 l2

let test_xrl_scripting_against_world () =
  (* The paper's scriptability claim, exercised against a live router:
     textual XRLs parsed and dispatched from "outside". *)
  let loop, _isp, border, _core, _legacy = build_world () in
  run_for loop 60.0;
  let caller = Rib.xrl_router (Rtrmgr.rib border) in
  let call text =
    match Xrl.of_text text with
    | Error e -> Alcotest.failf "parse %s: %s" text e
    | Ok xrl ->
      let err, args = Xrl_router.call_blocking caller xrl in
      if not (Xrl_error.is_ok err) then
        Alcotest.failf "%s failed: %s" text (Xrl_error.to_string err);
      args
  in
  let args = call "finder://rib/rib/1.0/get_route_count" in
  check Alcotest.bool "routes present" true (Xrl_atom.get_u32 args "count" > 3);
  let args =
    call "finder://rib/rib/1.0/lookup_route_by_dest?addr:ipv4=128.16.5.5"
  in
  check Alcotest.string "scripted lookup" "ebgp" (Xrl_atom.get_txt args "protocol");
  let args = call "finder://fea/fea/1.0/get_fib_size" in
  check Alcotest.bool "fib size sane" true (Xrl_atom.get_u32 args "size" > 3);
  let args = call "finder://bgp/bgp/1.0/get_peer_state?peer:ipv4=10.0.0.9" in
  check Alcotest.string "peer state" "Established" (Xrl_atom.get_txt args "state")

let test_churn_consistency () =
  (* Hammer the border's RIB from several "protocols" while BGP traffic
     flows; at every quiescent point the FIB must equal the RIB. *)
  let loop, isp, border, _core, _legacy = build_world () in
  run_for loop 60.0;
  let rib = Rtrmgr.rib border in
  let rng = Rng.create 99 in
  for round = 1 to 20 do
    for i = 1 to 20 do
      let p =
        Ipv4net.make (Ipv4.of_octets 203 (round mod 4) i 0) 24
      in
      if Rng.bool rng then
        ignore
          (Rib.add_route rib ~protocol:"static" ~net:p
             ~nexthop:(addr "10.0.0.9") ())
      else ignore (Rib.delete_route rib ~protocol:"static" ~net:p)
    done;
    (* BGP-side churn too. *)
    let bgp_isp = Option.get (Rtrmgr.bgp isp) in
    Bgp_process.originate bgp_isp (Ipv4net.make (Ipv4.of_octets 129 round 0 0) 16);
    if round mod 3 = 0 then
      Bgp_process.withdraw bgp_isp
        (Ipv4net.make (Ipv4.of_octets 129 (round - 1) 0 0) 16);
    run_for loop 2.0
  done;
  run_for loop 10.0;
  check Alcotest.int "FIB matches RIB after churn"
    (Rib.route_count rib)
    (Fib.size (Fea.fib (Rtrmgr.fea border)))

let () =
  Alcotest.run "xorp_integration"
    [
      ( "world",
        [
          Alcotest.test_case "multi-protocol routing" `Slow
            test_multiprotocol_world;
          Alcotest.test_case "show commands" `Slow test_show_commands_everywhere;
          Alcotest.test_case "xrl scripting" `Slow
            test_xrl_scripting_against_world;
        ] );
      ( "failures",
        [
          Alcotest.test_case "bgp death flushes rib" `Slow
            test_bgp_death_flushes_rib;
          Alcotest.test_case "ospf death reconverges" `Slow
            test_ospf_link_death_reconverges;
        ] );
      ( "properties",
        [
          Alcotest.test_case "determinism" `Slow test_determinism;
          Alcotest.test_case "churn consistency" `Slow test_churn_consistency;
        ] );
    ]
