(* Tests for the scanner-based BGP baseline: correctness of the
   scanner design and, crucially, the latency contrast with the
   event-driven router that Figure 13 is about. *)

let check = Alcotest.check
let addr = Ipv4.of_string_exn
let net = Ipv4net.of_string_exn

let run_for loop seconds =
  Eventloop.run_until_time loop (Eventloop.now loop +. seconds)

let scanner_pair ?(scan_interval = 30.0) () =
  let loop = Eventloop.create () in
  let netsim = Netsim.create loop in
  let a =
    Scanner_bgp.create loop netsim ~local_as:65001 ~bgp_id:(addr "1.1.1.1")
      ~scan_interval ()
  in
  let b =
    Scanner_bgp.create loop netsim ~local_as:65002 ~bgp_id:(addr "2.2.2.2")
      ~scan_interval ()
  in
  Scanner_bgp.add_peer a ~peer_addr:(addr "10.0.0.2")
    ~local_addr:(addr "10.0.0.1") ~peer_as:65002 ();
  Scanner_bgp.add_peer b ~peer_addr:(addr "10.0.0.1")
    ~local_addr:(addr "10.0.0.2") ~peer_as:65001 ();
  Scanner_bgp.start a;
  Scanner_bgp.start b;
  run_for loop 2.0;
  (loop, a, b)

let test_establishment () =
  let _, a, b = scanner_pair () in
  check Alcotest.int "a established" 1 (Scanner_bgp.established_count a);
  check Alcotest.int "b established" 1 (Scanner_bgp.established_count b)

let test_routes_flow_after_scan () =
  let loop, a, b = scanner_pair () in
  Scanner_bgp.originate a (net "128.16.0.0/16");
  (* Nothing happens until a's scanner fires... *)
  run_for loop 5.0;
  check Alcotest.int "not yet propagated" 0 (Scanner_bgp.route_count b);
  (* ...then both scanners have fired and the route is at b. *)
  run_for loop 60.0;
  check Alcotest.int "propagated after scans" 1 (Scanner_bgp.route_count b);
  check Alcotest.bool "scans happened" true (Scanner_bgp.scans_performed a >= 2)

let test_scanner_latency_sawtooth () =
  (* Measure propagation delay as a function of arrival time within the
     scan period: routes arriving just after a scan wait ~full
     interval. *)
  let loop, a, b = scanner_pair ~scan_interval:30.0 () in
  run_for loop 35.0; (* let initial scans settle *)
  let t_introduce = Eventloop.now loop in
  Scanner_bgp.originate a (net "128.99.0.0/16");
  Eventloop.run ~until:(fun () -> Scanner_bgp.route_count b >= 1) loop;
  let delay = Eventloop.now loop -. t_introduce in
  (* Must be visible only after a's next scan plus b's processing; with
     a 30 s scanner the delay is non-trivial. *)
  check Alcotest.bool
    (Printf.sprintf "scanner delay %.1fs is substantial" delay)
    true
    (delay > 5.0 && delay <= 61.0)

let test_event_driven_beats_scanner () =
  (* The Figure 13 contrast in miniature: same topology, same stimulus;
     the event-driven router delivers in well under a second of
     simulated time, the scanner-based one takes tens of seconds. *)
  let event_driven_delay () =
    let loop = Eventloop.create () in
    let netsim = Netsim.create loop in
    let mk as_ id =
      let finder = Finder.create () in
      Bgp_process.create ~send_to_rib:false ~nexthop_mode:`Assume_resolvable
        finder loop ~netsim ~local_as:as_ ~bgp_id:(addr id) ()
    in
    let a = mk 65001 "1.1.1.1" and b = mk 65002 "2.2.2.2" in
    Bgp_process.add_peer a
      (Bgp_process.default_peer_config ~peer_addr:(addr "10.0.0.2")
         ~local_addr:(addr "10.0.0.1") ~peer_as:65002);
    Bgp_process.add_peer b
      (Bgp_process.default_peer_config ~peer_addr:(addr "10.0.0.1")
         ~local_addr:(addr "10.0.0.2") ~peer_as:65001);
    Bgp_process.start a;
    Bgp_process.start b;
    run_for loop 35.0;
    let t0 = Eventloop.now loop in
    Bgp_process.originate a (net "128.99.0.0/16");
    Eventloop.run ~until:(fun () -> Bgp_process.route_count b >= 1) loop;
    Eventloop.now loop -. t0
  in
  let scanner_delay () =
    let loop, a, b = scanner_pair ~scan_interval:30.0 () in
    run_for loop 35.0;
    let t0 = Eventloop.now loop in
    Scanner_bgp.originate a (net "128.99.0.0/16");
    Eventloop.run ~until:(fun () -> Scanner_bgp.route_count b >= 1) loop;
    Eventloop.now loop -. t0
  in
  let ed = event_driven_delay () and sc = scanner_delay () in
  check Alcotest.bool
    (Printf.sprintf "event-driven %.3fs << scanner %.1fs" ed sc)
    true
    (ed < 1.0 && sc > 5.0 && sc /. ed > 10.0)

let test_withdrawal_via_scan () =
  let loop, a, b = scanner_pair () in
  Scanner_bgp.originate a (net "128.16.0.0/16");
  run_for loop 70.0;
  check Alcotest.int "propagated" 1 (Scanner_bgp.route_count b);
  (* Take the session down: b's adj-in flushes and its next scan drops
     the route. *)
  Scanner_bgp.shutdown a;
  run_for loop 70.0;
  check Alcotest.int "withdrawn after scan" 0 (Scanner_bgp.route_count b)

let () =
  Alcotest.run "xorp_scanner"
    [
      ( "scanner",
        [
          Alcotest.test_case "establishment" `Quick test_establishment;
          Alcotest.test_case "routes flow after scan" `Quick
            test_routes_flow_after_scan;
          Alcotest.test_case "latency sawtooth" `Quick
            test_scanner_latency_sawtooth;
          Alcotest.test_case "event-driven beats scanner" `Quick
            test_event_driven_beats_scanner;
          Alcotest.test_case "withdrawal via scan" `Quick
            test_withdrawal_via_scan;
        ] );
    ]
