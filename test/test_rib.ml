(* Tests for the staged RIB: administrative-distance arbitration across
   merge stages, ExtInt nexthop gating, interest registration with
   invalidation, redistribution, background flush on protocol death,
   and stream consistency (§5.1's rules, checked by a model sink). *)

let check = Alcotest.check
let addr = Ipv4.of_string_exn
let net = Ipv4net.of_string_exn

(* A consistency-checking subscriber: maintains a model of the winner
   stream and fails on rule violations (delete without add, double
   add). This is our equivalent of BGP's checking cache stage. *)
type model = {
  routes : (Ipv4net.t, Rib_route.t) Hashtbl.t;
  mutable adds : int;
  mutable deletes : int;
}

let attach_model rib =
  let m = { routes = Hashtbl.create 64; adds = 0; deletes = 0 } in
  Rib.subscribe_redist rib ~name:"model" ~policy:Policy.always_accept
    ~on_add:(fun r ->
        m.adds <- m.adds + 1;
        if Hashtbl.mem m.routes r.Rib_route.net then
          Alcotest.failf "double add for %s" (Ipv4net.to_string r.net);
        Hashtbl.replace m.routes r.net r)
    ~on_delete:(fun r ->
        m.deletes <- m.deletes + 1;
        match Hashtbl.find_opt m.routes r.Rib_route.net with
        | None ->
          Alcotest.failf "delete without add for %s" (Ipv4net.to_string r.net)
        | Some cur ->
          if not (Rib_route.equal cur r) then
            Alcotest.failf "delete of stale route for %s"
              (Ipv4net.to_string r.net);
          Hashtbl.remove m.routes r.net);
  m

let setup ?(send_to_fea = true) () =
  let loop = Eventloop.create () in
  let finder = Finder.create () in
  let fea = Fea.create finder loop () in
  let rib = Rib.create ~send_to_fea finder loop () in
  (loop, finder, fea, rib)

let add rib ~protocol ?(metric = 0) n nh =
  match Rib.add_route rib ~protocol ~net:(net n) ~nexthop:(addr nh) ~metric () with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let del rib ~protocol n =
  match Rib.delete_route rib ~protocol ~net:(net n) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let winner_protocol rib a =
  match Rib.lookup_best rib (addr a) with
  | Some r -> r.Rib_route.protocol
  | None -> "none"

(* --- basic flow ------------------------------------------------------ *)

let test_route_reaches_fea () =
  let loop, _, fea, rib = setup () in
  add rib ~protocol:"static" "10.0.0.0/8" "192.0.2.1";
  Eventloop.run loop;
  check Alcotest.int "installed in FIB" 1 (Fib.size (Fea.fib fea));
  (match Fib.lookup (Fea.fib fea) (addr "10.1.2.3") with
   | Some e -> check Alcotest.string "protocol recorded" "static" e.Fib.protocol
   | None -> Alcotest.fail "no FIB entry");
  del rib ~protocol:"static" "10.0.0.0/8";
  Eventloop.run loop;
  check Alcotest.int "removed from FIB" 0 (Fib.size (Fea.fib fea))

let test_admin_distance_arbitration () =
  let loop, _, fea, rib = setup () in
  let m = attach_model rib in
  add rib ~protocol:"rip" ~metric:3 "10.0.0.0/8" "192.0.2.120";
  add rib ~protocol:"static" "10.0.0.0/8" "192.0.2.1";
  Eventloop.run loop;
  check Alcotest.string "static (1) beats rip (120)" "static"
    (winner_protocol rib "10.1.1.1");
  (match Fib.lookup (Fea.fib fea) (addr "10.1.1.1") with
   | Some e -> check Alcotest.string "fib agrees" "static" e.Fib.protocol
   | None -> Alcotest.fail "no FIB entry");
  (* Withdraw the winner; rip takes over. *)
  del rib ~protocol:"static" "10.0.0.0/8";
  Eventloop.run loop;
  check Alcotest.string "rip takes over" "rip" (winner_protocol rib "10.1.1.1");
  (match Fib.lookup (Fea.fib fea) (addr "10.1.1.1") with
   | Some e -> check Alcotest.string "fib switched" "rip" e.Fib.protocol
   | None -> Alcotest.fail "no FIB entry after failover");
  (* Withdraw the loser first in a fresh conflict: no churn at all. *)
  add rib ~protocol:"connected" "20.0.0.0/8" "0.0.0.0";
  add rib ~protocol:"rip" "20.0.0.0/8" "192.0.2.120";
  let adds_before = m.adds in
  del rib ~protocol:"rip" "20.0.0.0/8";
  Eventloop.run loop;
  check Alcotest.int "shadowed withdrawal is silent" adds_before m.adds;
  check Alcotest.string "connected still wins" "connected"
    (winner_protocol rib "20.0.0.1")

let test_same_protocol_replace () =
  let loop, _, _, rib = setup () in
  let m = attach_model rib in
  add rib ~protocol:"static" "10.0.0.0/8" "192.0.2.1";
  add rib ~protocol:"static" "10.0.0.0/8" "192.0.2.9";
  Eventloop.run loop;
  (match Rib.lookup_best rib (addr "10.0.0.1") with
   | Some r ->
     check Alcotest.string "new nexthop" "192.0.2.9" (Ipv4.to_string r.nexthop)
   | None -> Alcotest.fail "no route");
  check Alcotest.int "model consistent" 1 (Hashtbl.length m.routes)

let test_more_specific_coexists () =
  let loop, _, fea, rib = setup () in
  add rib ~protocol:"static" "10.0.0.0/8" "192.0.2.1";
  add rib ~protocol:"rip" "10.1.0.0/16" "192.0.2.120";
  Eventloop.run loop;
  check Alcotest.int "both installed" 2 (Fib.size (Fea.fib fea));
  check Alcotest.string "specific wins inside" "rip"
    (winner_protocol rib "10.1.2.3");
  check Alcotest.string "aggregate outside" "static"
    (winner_protocol rib "10.2.0.1")

(* --- ExtInt nexthop gating ------------------------------------------- *)

let test_bgp_nexthop_gating () =
  let loop, _, fea, rib = setup () in
  let m = attach_model rib in
  (* EBGP route with an unresolvable nexthop: held back. *)
  add rib ~protocol:"ebgp" "128.16.0.0/16" "10.9.9.9";
  Eventloop.run loop;
  check Alcotest.string "not propagated" "none" (winner_protocol rib "128.16.0.1");
  check Alcotest.int "fib empty" 0 (Fib.size (Fea.fib fea));
  (* An IGP route to the nexthop appears: the BGP route goes live. *)
  add rib ~protocol:"rip" "10.9.0.0/16" "192.0.2.120";
  Eventloop.run loop;
  check Alcotest.string "bgp now live" "ebgp" (winner_protocol rib "128.16.0.1");
  check Alcotest.int "both in fib" 2 (Fib.size (Fea.fib fea));
  (* The IGP route goes away: the BGP route is withdrawn again. *)
  del rib ~protocol:"rip" "10.9.0.0/16";
  Eventloop.run loop;
  check Alcotest.string "bgp withdrawn" "none" (winner_protocol rib "128.16.0.1");
  check Alcotest.int "fib empty again" 0 (Fib.size (Fea.fib fea));
  check Alcotest.int "stream stayed consistent" 0 (Hashtbl.length m.routes)

let test_ebgp_vs_igp_same_prefix () =
  let loop, _, _, rib = setup () in
  (* Make the BGP nexthop resolvable. *)
  add rib ~protocol:"connected" "10.0.0.0/24" "0.0.0.0";
  add rib ~protocol:"ebgp" "128.16.0.0/16" "10.0.0.7";
  add rib ~protocol:"rip" "128.16.0.0/16" "10.0.0.120";
  Eventloop.run loop;
  check Alcotest.string "ebgp (20) beats rip (120)" "ebgp"
    (winner_protocol rib "128.16.0.1");
  del rib ~protocol:"ebgp" "128.16.0.0/16";
  Eventloop.run loop;
  check Alcotest.string "rip reinstated" "rip" (winner_protocol rib "128.16.0.1")

let test_ibgp_loses_to_igp () =
  let loop, _, _, rib = setup () in
  add rib ~protocol:"connected" "10.0.0.0/24" "0.0.0.0";
  add rib ~protocol:"ibgp" "128.16.0.0/16" "10.0.0.7";
  add rib ~protocol:"ospf" "128.16.0.0/16" "10.0.0.110";
  Eventloop.run loop;
  check Alcotest.string "ospf (110) beats ibgp (200)" "ospf"
    (winner_protocol rib "128.16.0.1")

(* --- interest registration (§5.2.1) ---------------------------------- *)

let fig8_load rib =
  add rib ~protocol:"connected" "192.0.2.0/24" "0.0.0.0";
  List.iter
    (fun n -> add rib ~protocol:"static" n "192.0.2.1")
    [ "128.16.0.0/16"; "128.16.0.0/18"; "128.16.128.0/17"; "128.16.192.0/18" ]

let test_register_interest_fig8 () =
  let loop, _, _, rib = setup () in
  fig8_load rib;
  Eventloop.run loop;
  let a1 = Rib.register_interest rib ~client:"bgp-1" (addr "128.16.32.1") in
  check Alcotest.string "matched /18" "128.16.0.0/18"
    (match a1.Register_table.matched with
     | Some r -> Ipv4net.to_string r.Rib_route.net
     | None -> "none");
  check Alcotest.string "valid /18" "128.16.0.0/18"
    (Ipv4net.to_string a1.Register_table.valid_subnet);
  let a2 = Rib.register_interest rib ~client:"bgp-1" (addr "128.16.160.1") in
  check Alcotest.string "matched /17" "128.16.128.0/17"
    (match a2.Register_table.matched with
     | Some r -> Ipv4net.to_string r.Rib_route.net
     | None -> "none");
  check Alcotest.string "valid narrowed to /18" "128.16.128.0/18"
    (Ipv4net.to_string a2.Register_table.valid_subnet)

let test_interest_invalidation () =
  let loop, finder, _, rib = setup () in
  (* A fake BGP that records invalidation callbacks. *)
  let invalidated = ref [] in
  let client = Xrl_router.create finder loop ~class_name:"fakebgp" () in
  Xrl_router.add_handler client ~interface:"rib_client"
    ~method_name:"route_info_invalid" (fun args reply ->
        invalidated :=
          Ipv4net.to_string (Xrl_atom.get_ipv4net args "valid") :: !invalidated;
        reply Xrl_error.Ok_xrl []);
  fig8_load rib;
  Eventloop.run loop;
  let client_name = Xrl_router.instance_name client in
  let a =
    Rib.register_interest rib ~client:client_name (addr "128.16.160.1")
  in
  check Alcotest.string "valid subnet" "128.16.128.0/18"
    (Ipv4net.to_string a.Register_table.valid_subnet);
  (* An unrelated change does not invalidate. *)
  add rib ~protocol:"static" "20.0.0.0/8" "192.0.2.1";
  Eventloop.run loop;
  check (Alcotest.list Alcotest.string) "no invalidation" [] !invalidated;
  (* A more-specific route inside the valid range invalidates. *)
  add rib ~protocol:"static" "128.16.130.0/24" "192.0.2.1";
  Eventloop.run loop;
  check (Alcotest.list Alcotest.string) "one invalidation" [ "128.16.128.0/18" ]
    !invalidated;
  (* The registration is gone: another change is silent. *)
  add rib ~protocol:"static" "128.16.131.0/24" "192.0.2.1";
  Eventloop.run loop;
  check Alcotest.int "registration dropped after notice" 1
    (List.length !invalidated);
  (* Re-register: the valid range now reflects the /24. *)
  let a2 =
    Rib.register_interest rib ~client:client_name (addr "128.16.160.1")
  in
  check Alcotest.bool "narrower than before" true
    (Ipv4net.prefix_len a2.Register_table.valid_subnet >= 18)

let test_deregister () =
  let loop, _, _, rib = setup () in
  fig8_load rib;
  Eventloop.run loop;
  let a = Rib.register_interest rib ~client:"c1" (addr "128.16.32.1") in
  check Alcotest.bool "dereg works" true
    (Rib.deregister_interest rib ~client:"c1" a.Register_table.valid_subnet);
  check Alcotest.bool "second dereg fails" false
    (Rib.deregister_interest rib ~client:"c1" a.Register_table.valid_subnet);
  (* No invalidation after deregistration. *)
  add rib ~protocol:"static" "128.16.1.0/24" "192.0.2.1";
  Eventloop.run loop;
  check Alcotest.int "none sent" 0 (Rib.invalidations_sent rib)

(* --- redistribution --------------------------------------------------- *)

let test_redist_with_policy () =
  let loop, _, _, rib = setup () in
  add rib ~protocol:"static" "10.0.0.0/8" "192.0.2.1";
  add rib ~protocol:"static" "172.16.0.0/12" "192.0.2.1";
  Eventloop.run loop;
  (* Only routes within 10/8; bump metric to 5. *)
  let policy =
    Result.get_ok
      (Policy.compile
         {|
load network
push.net 10.0.0.0/8
within
jfalse out
push.u32 5
store metric
accept
label out
reject
|})
  in
  let got_adds = ref [] and got_dels = ref [] in
  Rib.subscribe_redist rib ~name:"to-rip" ~policy
    ~on_add:(fun r ->
        got_adds := (Ipv4net.to_string r.Rib_route.net, r.metric) :: !got_adds)
    ~on_delete:(fun r ->
        got_dels := Ipv4net.to_string r.Rib_route.net :: !got_dels);
  (* Subscription dumps the existing table through the filter. *)
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "dump filtered and modified"
    [ ("10.0.0.0/8", 5) ]
    !got_adds;
  (* Subsequent updates flow through too. *)
  add rib ~protocol:"static" "10.3.0.0/16" "192.0.2.1";
  del rib ~protocol:"static" "10.0.0.0/8";
  add rib ~protocol:"static" "192.168.0.0/16" "192.0.2.1";
  Eventloop.run loop;
  check Alcotest.int "one more add" 2 (List.length !got_adds);
  check (Alcotest.list Alcotest.string) "one delete" [ "10.0.0.0/8" ] !got_dels;
  Rib.unsubscribe_redist rib ~name:"to-rip";
  add rib ~protocol:"static" "10.4.0.0/16" "192.0.2.1";
  Eventloop.run loop;
  check Alcotest.int "silent after unsubscribe" 2 (List.length !got_adds)

(* --- protocol death and background flush ------------------------------ *)

let test_flush_on_protocol_death () =
  let loop, finder, fea, rib = setup () in
  (* A fake RIP process registers, originates routes, and dies. *)
  let rip = Xrl_router.create finder loop ~class_name:"rip" () in
  for i = 0 to 99 do
    add rib ~protocol:"rip" (Printf.sprintf "10.%d.0.0/16" i) "192.0.2.120"
  done;
  Eventloop.run loop;
  check Alcotest.int "all in FIB" 100 (Fib.size (Fea.fib fea));
  check Alcotest.int "origin holds them" 100 (Rib.origin_route_count rib "rip");
  Xrl_router.shutdown rip;
  (* The flush is a background task: it runs as the loop idles. *)
  Eventloop.run loop;
  check Alcotest.int "origin flushed" 0 (Rib.origin_route_count rib "rip");
  check Alcotest.int "FIB flushed" 0 (Fib.size (Fea.fib fea))

let test_flush_interleaves_with_events () =
  (* While a big flush proceeds, freshly originated routes from another
     protocol still go through promptly. *)
  let loop, _, _, rib = setup ~send_to_fea:false () in
  for i = 0 to 999 do
    add rib ~protocol:"rip"
      (Printf.sprintf "10.%d.%d.0/24" (i / 250) (i mod 250))
      "192.0.2.120"
  done;
  Eventloop.run_until_idle loop;
  Rib.flush_protocol rib "rip";
  (* Immediately originate a static route; it must win the race with
     the 1000-route background deletion. *)
  add rib ~protocol:"static" "172.16.0.0/12" "192.0.2.1";
  let seen_at = ref (-1) in
  ignore
    (Eventloop.after loop 0.0 (fun () ->
         if Rib.lookup_best rib (addr "172.16.0.1") <> None then
           seen_at := Rib.origin_route_count rib "rip"));
  Eventloop.run loop;
  check Alcotest.bool "static visible before flush finished" true (!seen_at > 0);
  check Alcotest.int "flush completed" 0 (Rib.origin_route_count rib "rip")

(* --- XRL interface ----------------------------------------------------- *)

let test_xrl_interface () =
  let loop, finder, _, rib = setup () in
  ignore rib;
  let caller = Xrl_router.create finder loop ~class_name:"caller" () in
  let call xrl =
    let err, args = Xrl_router.call_blocking caller xrl in
    if not (Xrl_error.is_ok err) then
      Alcotest.failf "XRL failed: %s" (Xrl_error.to_string err);
    args
  in
  ignore
    (call
       (Xrl.make ~target:"rib" ~interface:"rib" ~method_name:"add_route"
          [ Xrl_atom.txt "protocol" "static";
            Xrl_atom.ipv4net "net" (net "10.0.0.0/8");
            Xrl_atom.ipv4 "nexthop" (addr "192.0.2.1");
            Xrl_atom.u32 "metric" 1 ]));
  let args =
    call
      (Xrl.make ~target:"rib" ~interface:"rib"
         ~method_name:"lookup_route_by_dest"
         [ Xrl_atom.ipv4 "addr" (addr "10.5.5.5") ])
  in
  check Alcotest.string "protocol" "static" (Xrl_atom.get_txt args "protocol");
  let args =
    call (Xrl.make ~target:"rib" ~interface:"rib" ~method_name:"get_route_count" [])
  in
  check Alcotest.int "count" 1 (Xrl_atom.get_u32 args "count");
  (* register_interest over XRL *)
  let args =
    call
      (Xrl.make ~target:"rib" ~interface:"rib" ~method_name:"register_interest"
         [ Xrl_atom.txt "client" (Xrl_router.instance_name caller);
           Xrl_atom.ipv4 "addr" (addr "10.1.2.3") ])
  in
  check Alcotest.bool "resolves" true (Xrl_atom.get_bool args "resolves");
  check Alcotest.string "matched net" "10.0.0.0/8"
    (Ipv4net.to_string (Xrl_atom.get_ipv4net args "net"));
  (* unknown protocol errors *)
  let err, _ =
    Xrl_router.call_blocking caller
      (Xrl.make ~target:"rib" ~interface:"rib" ~method_name:"add_route"
         [ Xrl_atom.txt "protocol" "ghostproto";
           Xrl_atom.ipv4net "net" (net "1.0.0.0/8");
           Xrl_atom.ipv4 "nexthop" (addr "192.0.2.1") ])
  in
  check Alcotest.bool "unknown protocol rejected" false (Xrl_error.is_ok err)

(* --- profile points ---------------------------------------------------- *)

let test_profile_pipeline_order () =
  let loop = Eventloop.create () in
  let finder = Finder.create () in
  let profiler = Profiler.create loop in
  ignore (Fea.create ~profiler finder loop ());
  let rib = Rib.create ~profiler finder loop () in
  Profiler.enable_all profiler;
  add rib ~protocol:"static" "10.0.0.0/8" "192.0.2.1";
  Eventloop.run loop;
  let points =
    List.map (fun r -> r.Profiler.point) (Profiler.all_records profiler)
  in
  check (Alcotest.list Alcotest.string) "pipeline order"
    [ Rib.pp_queued_fea; Rib.pp_sent_fea; Fea.pp_arrived; Fea.pp_kernel ]
    points

(* --- bulk FEA transfer ------------------------------------------------- *)

let test_bulk_fea_install () =
  (* Many routes originated within one event-loop turn must reach the
     FEA — via the bulk add_routes4 path — and land in the FIB exactly
     as if they had been sent one XRL each. *)
  let loop = Eventloop.create () in
  let finder = Finder.create () in
  let profiler = Profiler.create loop in
  let fea = Fea.create ~profiler finder loop () in
  let rib = Rib.create ~profiler finder loop () in
  Profiler.enable_all profiler;
  let n = 64 in
  for i = 0 to n - 1 do
    add rib ~protocol:"static"
      (Printf.sprintf "10.%d.%d.0/24" (i / 256) (i mod 256))
      "192.0.2.1"
  done;
  Eventloop.run loop;
  check Alcotest.int "all installed" n (Fib.size (Fea.fib fea));
  check Alcotest.int "installed counter" n (Fea.routes_installed fea);
  (* Per-route profile points survive bulk transfer: every route shows
     the full queued -> sent -> arrived -> kernel pipeline. *)
  let count point =
    List.length
      (List.filter
         (fun r -> r.Profiler.point = point)
         (Profiler.all_records profiler))
  in
  check Alcotest.int "queued points" n (count Rib.pp_queued_fea);
  check Alcotest.int "sent points" n (count Rib.pp_sent_fea);
  check Alcotest.int "arrived points" n (count Fea.pp_arrived);
  check Alcotest.int "kernel points" n (count Fea.pp_kernel);
  (* And bulk deletion drains the FIB the same way. *)
  for i = 0 to n - 1 do
    del rib ~protocol:"static"
      (Printf.sprintf "10.%d.%d.0/24" (i / 256) (i mod 256))
  done;
  Eventloop.run loop;
  check Alcotest.int "all removed" 0 (Fib.size (Fea.fib fea))

let test_bulk_fea_preserves_add_delete_order () =
  (* An add/delete alternation on the same prefix within one turn must
     reach the FIB in sequence (runs are flushed in order). *)
  let loop = Eventloop.create () in
  let finder = Finder.create () in
  let fea = Fea.create finder loop () in
  let rib = Rib.create finder loop () in
  add rib ~protocol:"static" "10.0.0.0/8" "192.0.2.1";
  add rib ~protocol:"static" "10.1.0.0/16" "192.0.2.1";
  del rib ~protocol:"static" "10.0.0.0/8";
  add rib ~protocol:"static" "10.2.0.0/16" "192.0.2.1";
  Eventloop.run loop;
  check Alcotest.int "net FIB size" 2 (Fib.size (Fea.fib fea));
  check Alcotest.bool "10.0.0.0/8 gone" true
    (Fib.lookup (Fea.fib fea) (addr "10.200.0.1") = None)

(* --- RIB restart: FEA mark-and-sweep --------------------------------- *)

let test_fea_sweeps_stale_fib_after_rib_restart () =
  (* A route withdrawn while the RIB is down can never reach the reborn
     RIB — no live component remembers the withdrawal. The FEA closes
     the hole: on RIB rebirth it marks its whole FIB stale, re-installs
     unmark, and a hold timer sweeps whatever was not re-announced. *)
  let loop, finder, fea, rib = setup () in
  add rib ~protocol:"static" "10.0.0.0/8" "192.0.2.1";
  add rib ~protocol:"static" "172.16.0.0/12" "192.0.2.1";
  Eventloop.run loop;
  check Alcotest.int "both installed" 2 (Fib.size (Fea.fib fea));
  (* RIB dies. Its routes — and any withdrawal that would have come —
     are gone; the FIB still holds both entries. *)
  Rib.shutdown rib;
  Eventloop.run loop;
  check Alcotest.int "FIB survives the RIB" 2 (Fib.size (Fea.fib fea));
  (* Rebirth: only one of the two routes still exists (the other was
     "withdrawn during the outage" — nobody re-adds it). *)
  let rib' = Rib.create finder loop () in
  add rib' ~protocol:"static" "10.0.0.0/8" "192.0.2.1";
  (* Bounded run: [Eventloop.run] would fast-forward virtual time
     through the 30 s hold timer itself. *)
  Eventloop.run_until_time loop (Eventloop.now loop +. 5.0);
  (* Before the hold expires the unconfirmed entry is still there:
     graceful restart, not a flush. *)
  check Alcotest.bool "unconfirmed entry still forwarding" true
    (Fib.get (Fea.fib fea) (net "172.16.0.0/12") <> None);
  Eventloop.run_until_time loop (Eventloop.now loop +. 35.0);
  check Alcotest.bool "re-announced entry kept" true
    (Fib.get (Fea.fib fea) (net "10.0.0.0/8") <> None);
  check Alcotest.bool "unconfirmed entry swept" true
    (Fib.get (Fea.fib fea) (net "172.16.0.0/12") = None);
  check Alcotest.int "sweep counted" 1
    (Telemetry.counter_value (Telemetry.counter "fea.rib_sweep.removed"))

let () =
  Alcotest.run "xorp_rib"
    [
      ( "flow",
        [
          Alcotest.test_case "route reaches FEA" `Quick test_route_reaches_fea;
          Alcotest.test_case "admin distance arbitration" `Quick
            test_admin_distance_arbitration;
          Alcotest.test_case "same-protocol replace" `Quick
            test_same_protocol_replace;
          Alcotest.test_case "more-specific coexists" `Quick
            test_more_specific_coexists;
        ] );
      ( "extint",
        [
          Alcotest.test_case "nexthop gating" `Quick test_bgp_nexthop_gating;
          Alcotest.test_case "ebgp vs igp same prefix" `Quick
            test_ebgp_vs_igp_same_prefix;
          Alcotest.test_case "ibgp loses to igp" `Quick test_ibgp_loses_to_igp;
        ] );
      ( "register",
        [
          Alcotest.test_case "figure 8 answers" `Quick
            test_register_interest_fig8;
          Alcotest.test_case "invalidation" `Quick test_interest_invalidation;
          Alcotest.test_case "deregister" `Quick test_deregister;
        ] );
      ( "redist",
        [ Alcotest.test_case "policy filtering" `Quick test_redist_with_policy ] );
      ( "lifetime",
        [
          Alcotest.test_case "flush on protocol death" `Quick
            test_flush_on_protocol_death;
          Alcotest.test_case "flush interleaves with events" `Quick
            test_flush_interleaves_with_events;
          Alcotest.test_case "FEA sweeps stale FIB after RIB restart" `Quick
            test_fea_sweeps_stale_fib_after_rib_restart;
        ] );
      ( "xrl",
        [ Alcotest.test_case "rib/1.0 interface" `Quick test_xrl_interface ] );
      ( "profile",
        [
          Alcotest.test_case "pipeline point order" `Quick
            test_profile_pipeline_order;
        ] );
      ( "bulk_fea",
        [
          Alcotest.test_case "bulk install and delete" `Quick
            test_bulk_fea_install;
          Alcotest.test_case "add/delete order preserved" `Quick
            test_bulk_fea_preserves_add_delete_order;
        ] );
    ]
