(* Cross-cutting property-based tests: the BGP decision ladder is a
   strict order, damping decay is monotone, the whole staged RIB agrees
   with a flat reference model under random churn, and the fanout queue
   preserves per-reader order and filtering under random traffic. *)

let addr = Ipv4.of_string_exn

(* --- BGP decision ladder ------------------------------------------------ *)

let gen_route_info =
  QCheck.Gen.(
    let* peer_id = int_range 1 5 in
    let* lp = int_range 90 110 in
    let* plen = int_range 1 4 in
    let* path = list_repeat plen (int_range 1 9) in
    let* origin = oneofl [ Bgp_types.IGP; Bgp_types.EGP; Bgp_types.INCOMPLETE ] in
    let* med = int_range 0 3 in
    let* kind = oneofl [ Bgp_types.Ebgp; Bgp_types.Ibgp ] in
    let* igp = int_range 0 3 in
    let* netoct = int_range 1 200 in
    let info =
      { Bgp_types.peer_id;
        peer_addr = Ipv4.of_octets 10 0 0 peer_id;
        peer_as = 65000 + peer_id;
        kind;
        peer_bgp_id = Ipv4.of_octets peer_id peer_id peer_id peer_id }
    in
    let route =
      { Bgp_types.net = Ipv4net.make (Ipv4.of_octets netoct 0 0 0) 16;
        attrs =
          { (Bgp_types.default_attrs ~nexthop:(Ipv4.of_octets 10 9 0 peer_id)) with
            Bgp_types.aspath = [ Aspath.Seq path ];
            localpref = Some lp;
            med = Some med;
            origin };
        peer_id;
        igp_metric = Some igp }
    in
    return (route, info))

let arb_route_info = QCheck.make gen_route_info

let prop_decision_irreflexive =
  QCheck.Test.make ~name:"decision: nothing beats itself" ~count:500
    arb_route_info (fun (r, i) -> not (Bgp_decision.better r i r i))

let prop_decision_asymmetric =
  QCheck.Test.make ~name:"decision: asymmetry" ~count:500
    (QCheck.pair arb_route_info arb_route_info)
    (fun ((a, ia), (b, ib)) ->
       not (Bgp_decision.better a ia b ib && Bgp_decision.better b ib a ia))

let prop_decision_transitive =
  QCheck.Test.make ~name:"decision: transitivity" ~count:500
    (QCheck.triple arb_route_info arb_route_info arb_route_info)
    (fun ((a, ia), (b, ib), (c, ic)) ->
       if Bgp_decision.better a ia b ib && Bgp_decision.better b ib c ic then
         Bgp_decision.better a ia c ic
       else true)

let prop_decision_total_across_peers =
  (* Two routes from different peer addresses are always strictly
     ordered one way or the other: no silent ties that would make the
     decision unstable. *)
  QCheck.Test.make ~name:"decision: totality across distinct peers" ~count:500
    (QCheck.pair arb_route_info arb_route_info)
    (fun ((a, ia), (b, ib)) ->
       if Ipv4.equal ia.Bgp_types.peer_addr ib.Bgp_types.peer_addr then true
       else Bgp_decision.better a ia b ib || Bgp_decision.better b ib a ia)

(* --- damping decay -------------------------------------------------------- *)

let prop_damping_decay_monotone =
  QCheck.Test.make ~name:"damping: penalty decays monotonically" ~count:50
    QCheck.(pair (int_range 1 5) (int_range 1 600))
    (fun (flaps, dt) ->
       let loop = Eventloop.create () in
       let ribin = new Bgp_ribin.rib_in ~name:"in" ~peer_id:1 loop in
       let damp =
         new Bgp_damping.damping_table ~name:"d"
           ~parent:(ribin :> Bgp_table.table)
           loop
       in
       Bgp_table.plumb ribin damp;
       let net = Ipv4net.make (Ipv4.of_octets 10 0 0 0) 8 in
       let route =
         { Bgp_types.net;
           attrs = Bgp_types.default_attrs ~nexthop:(addr "10.0.0.1");
           peer_id = 1; igp_metric = None }
       in
       for _ = 1 to flaps do
         ribin#add_route route;
         ribin#delete_route route
       done;
       match damp#penalty_of net with
       | None -> flaps = 0
       | Some p0 ->
         Eventloop.run_until_time loop (Eventloop.now loop +. float_of_int dt);
         (match damp#penalty_of net with
          | None -> true (* forgiven entirely *)
          | Some p1 -> p1 <= p0 +. 1e-9))

(* --- staged RIB vs flat model ---------------------------------------------- *)

type model_op = M_add of string * int * int | M_del of string * int
(* protocol index, /16 third octet for prefix variety, op *)

let protocols = [| "connected"; "static"; "ospf"; "rip" |]

let gen_ops =
  QCheck.Gen.(
    list_size (int_range 1 120)
      (let* proto = int_range 0 3 in
       let* oct = int_range 0 7 in
       let* len = oneofl [ 8; 16; 24 ] in
       let* is_add = bool in
       return
         (if is_add then M_add (protocols.(proto), oct, len)
          else M_del (protocols.(proto), oct))))

let arb_ops =
  QCheck.make gen_ops
    ~print:(fun ops ->
        String.concat ";"
          (List.map
             (function
               | M_add (p, o, l) -> Printf.sprintf "+%s/10.%d/%d" p o l
               | M_del (p, o) -> Printf.sprintf "-%s/10.%d" p o)
             ops))

let prop_rib_matches_flat_model =
  QCheck.Test.make ~name:"staged RIB agrees with a flat model" ~count:100
    arb_ops (fun ops ->
        let loop = Eventloop.create () in
        let finder = Finder.create () in
        let rib = Rib.create ~send_to_fea:false finder loop () in
        (* Flat model: (protocol, net) -> route. *)
        let model : (string * Ipv4net.t, Rib_route.t) Hashtbl.t =
          Hashtbl.create 64
        in
        let net_of oct len = Ipv4net.make (Ipv4.of_octets 10 oct 0 0) len in
        List.iteri
          (fun i op ->
             match op with
             | M_add (proto, oct, len) ->
               let n = net_of oct len in
               ignore
                 (Rib.add_route rib ~protocol:proto ~net:n
                    ~nexthop:(Ipv4.of_octets 192 0 2 (1 + (i mod 200))) ());
               Hashtbl.replace model (proto, n)
                 (Rib_route.make ~net:n
                    ~nexthop:(Ipv4.of_octets 192 0 2 (1 + (i mod 200)))
                    ~protocol:proto ())
             | M_del (proto, oct) ->
               (* delete whichever lengths exist for this prefix family *)
               List.iter
                 (fun len ->
                    let n = net_of oct len in
                    if Hashtbl.mem model (proto, n) then begin
                      ignore (Rib.delete_route rib ~protocol:proto ~net:n);
                      Hashtbl.remove model (proto, n)
                    end)
                 [ 8; 16; 24 ])
          ops;
        Eventloop.run_until_idle loop;
        (* Reference lookup: longest prefix, then lowest admin
           distance. *)
        let reference a =
          Hashtbl.fold
            (fun (_, n) r best ->
               if Ipv4net.contains_addr n a then
                 match best with
                 | None -> Some r
                 | Some b ->
                   let ln = Ipv4net.prefix_len n
                   and lb = Ipv4net.prefix_len b.Rib_route.net in
                   if ln > lb then Some r
                   else if ln = lb
                           && r.Rib_route.admin_distance < b.Rib_route.admin_distance
                   then Some r
                   else best
               else best)
            model None
        in
        (* Probe a grid of addresses. *)
        List.for_all
          (fun oct ->
             let probe = Ipv4.of_octets 10 oct 1 1 in
             match Rib.lookup_best rib probe, reference probe with
             | None, None -> true
             | Some got, Some want ->
               Ipv4net.equal got.Rib_route.net want.Rib_route.net
               && got.Rib_route.admin_distance = want.Rib_route.admin_distance
             | Some _, None | None, Some _ -> false)
          [ 0; 1; 2; 3; 4; 5; 6; 7 ])

(* --- fanout ordering --------------------------------------------------------- *)

let prop_fanout_order_and_filtering =
  QCheck.Test.make ~name:"fanout: per-reader order and no echo" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 200) (pair (int_range 1 3) (int_range 0 50)))
    (fun stream ->
       let loop = Eventloop.create () in
       let infos = Hashtbl.create 4 in
       let fanout =
         new Bgp_fanout.fanout_table ~name:"f" ~batch:7
           ~peer_info_of:(fun id -> Hashtbl.find_opt infos id)
           loop
       in
       let seen : (int, (int * int) list ref) Hashtbl.t = Hashtbl.create 4 in
       List.iter
         (fun id ->
            let info =
              { Bgp_types.peer_id = id;
                peer_addr = Ipv4.of_octets 10 0 0 id;
                peer_as = 65000 + id; kind = Bgp_types.Ebgp;
                peer_bgp_id = Ipv4.of_octets id id id id }
            in
            Hashtbl.replace infos id info;
            let log = ref [] in
            Hashtbl.replace seen id log;
            let parent =
              (new Bgp_ribin.rib_in ~name:"null" ~peer_id:99 loop
                :> Bgp_table.table)
            in
            let sink =
              new Bgp_table.sink ~name:"s" ~parent
                ~on_add:(fun r ->
                    log :=
                      ( r.Bgp_types.peer_id,
                        Ipv4.to_int (Ipv4net.network r.Bgp_types.net) )
                      :: !log)
                ~on_delete:(fun _ -> ())
            in
            fanout#add_reader ~info (sink :> Bgp_table.table))
         [ 1; 2; 3 ];
       List.iter
         (fun (from_peer, tag) ->
            fanout#add_route
              { Bgp_types.net = Ipv4net.make (Ipv4.of_octets 10 1 tag 0) 24;
                attrs = Bgp_types.default_attrs ~nexthop:(addr "10.0.0.9");
                peer_id = from_peer; igp_metric = Some 0 })
         stream;
       Eventloop.run loop;
       (* Each reader must have received exactly the stream minus its
          own contributions, in order. *)
       List.for_all
         (fun id ->
            let expect =
              List.filter_map
                (fun (from_peer, tag) ->
                   if from_peer = id then None
                   else
                     Some
                       ( from_peer,
                         Ipv4.to_int
                           (Ipv4net.network (Ipv4net.make (Ipv4.of_octets 10 1 tag 0) 24)) ))
                stream
            in
            List.rev !(Hashtbl.find seen id) = expect)
         [ 1; 2; 3 ])

let () =
  Alcotest.run "xorp_properties"
    [
      ( "decision_order",
        List.map Seeded.qcheck
          [ prop_decision_irreflexive; prop_decision_asymmetric;
            prop_decision_transitive; prop_decision_total_across_peers ] );
      ( "damping",
        List.map Seeded.qcheck [ prop_damping_decay_monotone ] );
      ( "rib_model",
        List.map Seeded.qcheck [ prop_rib_matches_flat_model ] );
      ( "fanout",
        List.map Seeded.qcheck
          [ prop_fanout_order_and_filtering ] );
    ]
