(* Cross-cutting property-based tests: the BGP decision ladder is a
   strict order, damping decay is monotone, the whole staged RIB agrees
   with a flat reference model under random churn, and the fanout queue
   preserves per-reader order and filtering under random traffic. *)

let addr = Ipv4.of_string_exn

(* --- BGP decision ladder ------------------------------------------------ *)

let gen_route_info =
  QCheck.Gen.(
    let* peer_id = int_range 1 5 in
    let* lp = int_range 90 110 in
    let* plen = int_range 1 4 in
    let* path = list_repeat plen (int_range 1 9) in
    let* origin = oneofl [ Bgp_types.IGP; Bgp_types.EGP; Bgp_types.INCOMPLETE ] in
    let* med = int_range 0 3 in
    let* kind = oneofl [ Bgp_types.Ebgp; Bgp_types.Ibgp ] in
    let* igp = int_range 0 3 in
    let* netoct = int_range 1 200 in
    let info =
      { Bgp_types.peer_id;
        peer_addr = Ipv4.of_octets 10 0 0 peer_id;
        peer_as = 65000 + peer_id;
        kind;
        peer_bgp_id = Ipv4.of_octets peer_id peer_id peer_id peer_id }
    in
    let route =
      { Bgp_types.net = Ipv4net.make (Ipv4.of_octets netoct 0 0 0) 16;
        attrs =
          { (Bgp_types.default_attrs ~nexthop:(Ipv4.of_octets 10 9 0 peer_id)) with
            Bgp_types.aspath = [ Aspath.Seq path ];
            localpref = Some lp;
            med = Some med;
            origin };
        peer_id;
        igp_metric = Some igp }
    in
    return (route, info))

let arb_route_info = QCheck.make gen_route_info

let prop_decision_irreflexive =
  QCheck.Test.make ~name:"decision: nothing beats itself" ~count:500
    arb_route_info (fun (r, i) -> not (Bgp_decision.better r i r i))

let prop_decision_asymmetric =
  QCheck.Test.make ~name:"decision: asymmetry" ~count:500
    (QCheck.pair arb_route_info arb_route_info)
    (fun ((a, ia), (b, ib)) ->
       not (Bgp_decision.better a ia b ib && Bgp_decision.better b ib a ia))

let prop_decision_transitive =
  QCheck.Test.make ~name:"decision: transitivity" ~count:500
    (QCheck.triple arb_route_info arb_route_info arb_route_info)
    (fun ((a, ia), (b, ib), (c, ic)) ->
       if Bgp_decision.better a ia b ib && Bgp_decision.better b ib c ic then
         Bgp_decision.better a ia c ic
       else true)

let prop_decision_total_across_peers =
  (* Two routes from different peer addresses are always strictly
     ordered one way or the other: no silent ties that would make the
     decision unstable. *)
  QCheck.Test.make ~name:"decision: totality across distinct peers" ~count:500
    (QCheck.pair arb_route_info arb_route_info)
    (fun ((a, ia), (b, ib)) ->
       if Ipv4.equal ia.Bgp_types.peer_addr ib.Bgp_types.peer_addr then true
       else Bgp_decision.better a ia b ib || Bgp_decision.better b ib a ia)

(* --- damping decay -------------------------------------------------------- *)

let prop_damping_decay_monotone =
  QCheck.Test.make ~name:"damping: penalty decays monotonically" ~count:50
    QCheck.(pair (int_range 1 5) (int_range 1 600))
    (fun (flaps, dt) ->
       let loop = Eventloop.create () in
       let ribin = new Bgp_ribin.rib_in ~name:"in" ~peer_id:1 loop in
       let damp =
         new Bgp_damping.damping_table ~name:"d"
           ~parent:(ribin :> Bgp_table.table)
           loop
       in
       Bgp_table.plumb ribin damp;
       let net = Ipv4net.make (Ipv4.of_octets 10 0 0 0) 8 in
       let route =
         { Bgp_types.net;
           attrs = Bgp_types.default_attrs ~nexthop:(addr "10.0.0.1");
           peer_id = 1; igp_metric = None }
       in
       for _ = 1 to flaps do
         ribin#add_route route;
         ribin#delete_route route
       done;
       match damp#penalty_of net with
       | None -> flaps = 0
       | Some p0 ->
         Eventloop.run_until_time loop (Eventloop.now loop +. float_of_int dt);
         (match damp#penalty_of net with
          | None -> true (* forgiven entirely *)
          | Some p1 -> p1 <= p0 +. 1e-9))

(* --- staged RIB vs flat model ---------------------------------------------- *)

type model_op = M_add of string * int * int | M_del of string * int
(* protocol index, /16 third octet for prefix variety, op *)

let protocols = [| "connected"; "static"; "ospf"; "rip" |]

let gen_ops =
  QCheck.Gen.(
    list_size (int_range 1 120)
      (let* proto = int_range 0 3 in
       let* oct = int_range 0 7 in
       let* len = oneofl [ 8; 16; 24 ] in
       let* is_add = bool in
       return
         (if is_add then M_add (protocols.(proto), oct, len)
          else M_del (protocols.(proto), oct))))

let arb_ops =
  QCheck.make gen_ops
    ~print:(fun ops ->
        String.concat ";"
          (List.map
             (function
               | M_add (p, o, l) -> Printf.sprintf "+%s/10.%d/%d" p o l
               | M_del (p, o) -> Printf.sprintf "-%s/10.%d" p o)
             ops))

let prop_rib_matches_flat_model =
  QCheck.Test.make ~name:"staged RIB agrees with a flat model" ~count:100
    arb_ops (fun ops ->
        let loop = Eventloop.create () in
        let finder = Finder.create () in
        let rib = Rib.create ~send_to_fea:false finder loop () in
        (* Flat model: (protocol, net) -> route. *)
        let model : (string * Ipv4net.t, Rib_route.t) Hashtbl.t =
          Hashtbl.create 64
        in
        let net_of oct len = Ipv4net.make (Ipv4.of_octets 10 oct 0 0) len in
        List.iteri
          (fun i op ->
             match op with
             | M_add (proto, oct, len) ->
               let n = net_of oct len in
               ignore
                 (Rib.add_route rib ~protocol:proto ~net:n
                    ~nexthop:(Ipv4.of_octets 192 0 2 (1 + (i mod 200))) ());
               Hashtbl.replace model (proto, n)
                 (Rib_route.make ~net:n
                    ~nexthop:(Ipv4.of_octets 192 0 2 (1 + (i mod 200)))
                    ~protocol:proto ())
             | M_del (proto, oct) ->
               (* delete whichever lengths exist for this prefix family *)
               List.iter
                 (fun len ->
                    let n = net_of oct len in
                    if Hashtbl.mem model (proto, n) then begin
                      ignore (Rib.delete_route rib ~protocol:proto ~net:n);
                      Hashtbl.remove model (proto, n)
                    end)
                 [ 8; 16; 24 ])
          ops;
        Eventloop.run_until_idle loop;
        (* Reference lookup: longest prefix, then lowest admin
           distance. *)
        let reference a =
          Hashtbl.fold
            (fun (_, n) r best ->
               if Ipv4net.contains_addr n a then
                 match best with
                 | None -> Some r
                 | Some b ->
                   let ln = Ipv4net.prefix_len n
                   and lb = Ipv4net.prefix_len b.Rib_route.net in
                   if ln > lb then Some r
                   else if ln = lb
                           && r.Rib_route.admin_distance < b.Rib_route.admin_distance
                   then Some r
                   else best
               else best)
            model None
        in
        (* Probe a grid of addresses. *)
        List.for_all
          (fun oct ->
             let probe = Ipv4.of_octets 10 oct 1 1 in
             match Rib.lookup_best rib probe, reference probe with
             | None, None -> true
             | Some got, Some want ->
               Ipv4net.equal got.Rib_route.net want.Rib_route.net
               && got.Rib_route.admin_distance = want.Rib_route.admin_distance
             | Some _, None | None, Some _ -> false)
          [ 0; 1; 2; 3; 4; 5; 6; 7 ])

(* --- fanout ordering --------------------------------------------------------- *)

let prop_fanout_order_and_filtering =
  QCheck.Test.make ~name:"fanout: per-reader order and no echo" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 200) (pair (int_range 1 3) (int_range 0 50)))
    (fun stream ->
       let loop = Eventloop.create () in
       let infos = Hashtbl.create 4 in
       let fanout =
         new Bgp_fanout.fanout_table ~name:"f" ~batch:7
           ~peer_info_of:(fun id -> Hashtbl.find_opt infos id)
           loop
       in
       let seen : (int, (int * int) list ref) Hashtbl.t = Hashtbl.create 4 in
       List.iter
         (fun id ->
            let info =
              { Bgp_types.peer_id = id;
                peer_addr = Ipv4.of_octets 10 0 0 id;
                peer_as = 65000 + id; kind = Bgp_types.Ebgp;
                peer_bgp_id = Ipv4.of_octets id id id id }
            in
            Hashtbl.replace infos id info;
            let log = ref [] in
            Hashtbl.replace seen id log;
            let parent =
              (new Bgp_ribin.rib_in ~name:"null" ~peer_id:99 loop
                :> Bgp_table.table)
            in
            let sink =
              new Bgp_table.sink ~name:"s" ~parent
                ~on_add:(fun r ->
                    log :=
                      ( r.Bgp_types.peer_id,
                        Ipv4.to_int (Ipv4net.network r.Bgp_types.net) )
                      :: !log)
                ~on_delete:(fun _ -> ())
            in
            fanout#add_reader ~info (sink :> Bgp_table.table))
         [ 1; 2; 3 ];
       List.iter
         (fun (from_peer, tag) ->
            fanout#add_route
              { Bgp_types.net = Ipv4net.make (Ipv4.of_octets 10 1 tag 0) 24;
                attrs = Bgp_types.default_attrs ~nexthop:(addr "10.0.0.9");
                peer_id = from_peer; igp_metric = Some 0 })
         stream;
       Eventloop.run loop;
       (* Each reader must have received exactly the stream minus its
          own contributions, in order. *)
       List.for_all
         (fun id ->
            let expect =
              List.filter_map
                (fun (from_peer, tag) ->
                   if from_peer = id then None
                   else
                     Some
                       ( from_peer,
                         Ipv4.to_int
                           (Ipv4net.network (Ipv4net.make (Ipv4.of_octets 10 1 tag 0) 24)) ))
                stream
            in
            List.rev !(Hashtbl.find seen id) = expect)
         [ 1; 2; 3 ])

(* --- priority lanes -------------------------------------------------------- *)

(* The Laneq contract: however pushes and drain turns interleave, and
   whichever lane each push rides, consumption order per prefix is push
   order (the §5.1.2 guard demotes an urgent push whose prefix still
   has bulk work pending). A turn is the consumer contract in code:
   urgent drained dry, then a bounded bulk batch. *)
type laneq_op = L_push of int * bool (* net index, is_bulk *) | L_turn

let gen_laneq_ops =
  QCheck.Gen.(
    list_size (int_range 1 200)
      (let* is_turn = frequency [ (3, return false); (1, return true) ] in
       if is_turn then return L_turn
       else
         let* net = int_range 0 3 in
         let* bulk = bool in
         return (L_push (net, bulk))))

let arb_laneq_ops =
  QCheck.make gen_laneq_ops
    ~print:(fun ops ->
        String.concat ""
          (List.map
             (function
               | L_push (n, b) -> Printf.sprintf "%c%d" (if b then 'b' else 'u') n
               | L_turn -> "|")
             ops))

let prop_laneq_per_prefix_fifo =
  QCheck.Test.make ~name:"laneq: per-prefix FIFO across lanes" ~count:300
    arb_laneq_ops (fun ops ->
        let q : int Laneq.t = Laneq.create () in
        let nets =
          Array.init 4 (fun i -> Ipv4net.make (Ipv4.of_octets 10 i 0 0) 16)
        in
        let seq = ref 0 in
        let drained : (int, int list ref) Hashtbl.t = Hashtbl.create 4 in
        let note net v =
          let l =
            match Hashtbl.find_opt drained net with
            | Some l -> l
            | None ->
              let l = ref [] in
              Hashtbl.replace drained net l;
              l
          in
          l := v :: !l
        in
        let net_index n = Ipv4.to_int (Ipv4net.network n) lsr 16 land 0xff in
        let turn () =
          let rec urgent () =
            match Laneq.pop_urgent q with
            | Some (n, v) -> note (net_index n) v; urgent ()
            | None -> ()
          in
          urgent ();
          for _ = 1 to 3 do
            match Laneq.pop_bulk q with
            | Some (n, v) -> note (net_index n) v
            | None -> ()
          done
        in
        List.iter
          (function
            | L_push (i, bulk) ->
              incr seq;
              Laneq.push q
                (if bulk then Laneq.Bulk else Laneq.Urgent)
                ~net:nets.(i) !seq
            | L_turn -> turn ())
          ops;
        while not (Laneq.is_empty q) do turn () done;
        Hashtbl.fold
          (fun _ l ok ->
             let order = List.rev !l in
             ok && List.sort compare order = order)
          drained true)

(* Sliced inbound staging must be invisible at the routing level: the
   same announce/withdraw script, played into one receiver that stages
   and drains every UPDATE in 2-op background slices (all bulk lane)
   and into one that processes every UPDATE synchronously (all
   urgent), must end with identical winner tables. *)
type inbound_op = I_ann of int | I_wdr of int | I_settle

let gen_inbound_ops =
  QCheck.Gen.(
    list_size (int_range 1 60)
      (let* k = int_range 0 9 in
       let* net = int_range 0 11 in
       return
         (if k = 0 then I_settle else if k <= 6 then I_ann net else I_wdr net)))

let arb_inbound_ops =
  QCheck.make gen_inbound_ops
    ~print:(fun ops ->
        String.concat ";"
          (List.map
             (function
               | I_ann n -> Printf.sprintf "+%d" n
               | I_wdr n -> Printf.sprintf "-%d" n
               | I_settle -> "~")
             ops))

let prop_sliced_inbound_equivalence =
  QCheck.Test.make ~name:"sliced inbound agrees with synchronous" ~count:25
    arb_inbound_ops (fun ops ->
        let world ~sliced =
          let loop = Eventloop.create () in
          let netsim = Netsim.create loop in
          let finder = Finder.create () in
          let mk ?inbound_slice ?urgent_threshold ~local_as ~bgp_id () =
            Bgp_process.create ~send_to_rib:false
              ~nexthop_mode:`Assume_resolvable ?inbound_slice
              ?urgent_threshold finder loop ~netsim ~local_as ~bgp_id ()
          in
          let a = mk ~local_as:65001 ~bgp_id:(addr "1.1.1.1") () in
          let b =
            if sliced then
              (* Tiny slices, threshold 1: every UPDATE staged, every
                 drained op rides the bulk lane. *)
              mk ~inbound_slice:2 ~urgent_threshold:1 ~local_as:65002
                ~bgp_id:(addr "2.2.2.2") ()
            else
              (* Threshold too high to ever stage: the synchronous
                 reference pipeline. *)
              mk ~urgent_threshold:1_000_000 ~local_as:65002
                ~bgp_id:(addr "2.2.2.2") ()
          in
          Bgp_process.add_peer a
            (Bgp_process.default_peer_config ~peer_addr:(addr "10.0.0.2")
               ~local_addr:(addr "10.0.0.1") ~peer_as:65002);
          Bgp_process.add_peer b
            (Bgp_process.default_peer_config ~peer_addr:(addr "10.0.0.1")
               ~local_addr:(addr "10.0.0.2") ~peer_as:65001);
          Bgp_process.start a;
          Bgp_process.start b;
          Eventloop.run_until_time loop (Eventloop.now loop +. 2.0);
          let test_net i = Ipv4net.make (Ipv4.of_octets 10 100 i 0) 24 in
          List.iter
            (function
              | I_ann i -> Bgp_process.originate a (test_net i)
              | I_wdr i -> Bgp_process.withdraw a (test_net i)
              | I_settle ->
                Eventloop.run_until_time loop (Eventloop.now loop +. 0.2))
            ops;
          Eventloop.run_until_time loop (Eventloop.now loop +. 5.0);
          Eventloop.run_until_idle loop;
          let winners =
            Bgp_process.fold_winners b
              (fun r acc ->
                 (Ipv4net.to_string r.Bgp_types.net, r.Bgp_types.attrs) :: acc)
              []
          in
          (Bgp_process.inbound_backlog b, winners)
        in
        let backlog_sliced, sliced = world ~sliced:true in
        let _, sync = world ~sliced:false in
        backlog_sliced = 0
        && List.length sliced = List.length sync
        && List.for_all2
          (fun (n1, a1) (n2, a2) -> n1 = n2 && Bgp_types.attrs_equal a1 a2)
          sliced sync)

let () =
  Alcotest.run "xorp_properties"
    [
      ( "decision_order",
        List.map Seeded.qcheck
          [ prop_decision_irreflexive; prop_decision_asymmetric;
            prop_decision_transitive; prop_decision_total_across_peers ] );
      ( "damping",
        List.map Seeded.qcheck [ prop_damping_decay_monotone ] );
      ( "rib_model",
        List.map Seeded.qcheck [ prop_rib_matches_flat_model ] );
      ( "fanout",
        List.map Seeded.qcheck
          [ prop_fanout_order_and_filtering ] );
      ( "lanes",
        List.map Seeded.qcheck
          [ prop_laneq_per_prefix_fifo; prop_sliced_inbound_equivalence ] );
    ]
