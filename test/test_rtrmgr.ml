(* Router Manager tests: config parsing, template validation, booting
   complete routers from configuration text, and operator commands. *)

let check = Alcotest.check
let addr = Ipv4.of_string_exn
let net = Ipv4net.of_string_exn

(* --- config tree -------------------------------------------------------- *)

let parse_ok s =
  match Config_tree.parse s with
  | Ok t -> t
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_parse_basic () =
  let cfg = parse_ok {|
# a comment
protocols {
    bgp {
        local-as: 65001
        peer 10.0.0.2 {
            as: 65002
        }
    }
}
|} in
  let bgp = Option.get (Config_tree.path cfg [ "protocols"; "bgp" ]) in
  check (Alcotest.option Alcotest.string) "leaf" (Some "65001")
    (Config_tree.leaf bgp "local-as");
  match Config_tree.children bgp "peer" with
  | [ peer ] ->
    check (Alcotest.option Alcotest.string) "key" (Some "10.0.0.2")
      peer.Config_tree.key;
    check (Alcotest.option Alcotest.string) "peer leaf" (Some "65002")
      (Config_tree.leaf peer "as")
  | l -> Alcotest.failf "expected one peer, got %d" (List.length l)

let test_parse_multiple_same_name () =
  let cfg = parse_ok {|
protocols {
    static {
        route 10.0.0.0/8 { nexthop: 192.0.2.1 }
        route 20.0.0.0/8 { nexthop: 192.0.2.2 }
    }
}
|} in
  let static = Option.get (Config_tree.path cfg [ "protocols"; "static" ]) in
  check Alcotest.int "two routes" 2
    (List.length (Config_tree.children static "route"))

let test_parse_errors () =
  List.iter
    (fun (s, what) ->
       match Config_tree.parse s with
       | Ok _ -> Alcotest.failf "accepted %s" what
       | Error e ->
         check Alcotest.bool
           (Printf.sprintf "%s error has line number: %s" what e)
           true
           (String.length e > 5 && String.sub e 0 5 = "line "))
    [ ("a {", "unclosed block");
      ("}", "unmatched brace");
      ("word", "dangling word");
      ("a b c {}", "two keys");
      ("x:\n", "missing value") ]

let test_render_roundtrip () =
  let src = {|
interfaces {
    interface eth0 {
        address: 10.0.0.1
    }
}
protocols {
    static {
        route 10.0.0.0/8 {
            nexthop: 192.0.2.1
        }
    }
}
|} in
  let cfg = parse_ok src in
  let cfg2 = parse_ok (Config_tree.render cfg) in
  check Alcotest.string "render/parse fixpoint" (Config_tree.render cfg)
    (Config_tree.render cfg2)

(* Random config trees survive a render/parse round trip. *)
let prop_render_parse_fixpoint =
  let gen_tree =
    QCheck.Gen.(
      let word = map (fun i -> Printf.sprintf "w%d" i) (int_bound 30) in
      let leaf = pair word (map (fun i -> Printf.sprintf "v%d" i) (int_bound 99)) in
      let rec node depth =
        let* name = word in
        let* key = opt (map (fun i -> Printf.sprintf "k%d" i) (int_bound 9)) in
        let* leaves = list_size (int_bound 3) leaf in
        let* children =
          if depth = 0 then return [] else list_size (int_bound 2) (node (depth - 1))
        in
        return { Config_tree.name; key; leaves; children }
      in
      let* children = list_size (int_range 1 4) (node 2) in
      let* leaves = list_size (int_bound 2) leaf in
      return { Config_tree.name = "root"; key = None; leaves; children })
  in
  QCheck.Test.make ~name:"config render/parse fixpoint" ~count:200
    (QCheck.make gen_tree)
    (fun tree ->
       let rendered = Config_tree.render tree in
       match Config_tree.parse rendered with
       | Error _ -> false
       | Ok back -> Config_tree.render back = rendered)

(* --- template validation -------------------------------------------------- *)

let validate s =
  Template.validate Template.builtin (parse_ok s)

let test_validate_good () =
  match
    validate {|
interfaces {
    interface eth0 { address: 10.0.0.1 }
}
protocols {
    bgp {
        local-as: 65001
        bgp-id: 1.1.1.1
        peer 10.0.0.2 { as: 65002 local-ip: 10.0.0.1 }
        network 128.16.0.0/16 { }
    }
    rip {
        interface 10.0.0.1 { neighbor: 10.0.0.2 }
    }
}
|}
  with
  | Ok () -> ()
  | Error problems -> Alcotest.failf "valid config rejected: %s" (List.hd problems)

let expect_problem s fragment =
  match validate s with
  | Ok () -> Alcotest.failf "accepted config that should fail on %S" fragment
  | Error problems ->
    if
      not
        (List.exists
           (fun p -> Astring.String.is_infix ~affix:fragment p)
           problems)
    then
      Alcotest.failf "no problem mentions %S; got: %s" fragment
        (String.concat " | " problems)

let test_validate_catches () =
  expect_problem "frobnicator { }" "unknown section";
  expect_problem
    "protocols { bgp { local-as: 65001 bgp-id: 1.1.1.1 color: red } }"
    "unknown attribute";
  expect_problem "protocols { bgp { bgp-id: 1.1.1.1 } }" "local-as";
  expect_problem
    "protocols { bgp { local-as: banana bgp-id: 1.1.1.1 } }" "valid u32";
  expect_problem
    "protocols { bgp { local-as: 1 bgp-id: 1.1.1.1 peer nonsense { as: 2 local-ip: 10.0.0.1 } } }"
    "valid ipv4";
  expect_problem
    "protocols { static { route 10.0.0.0/8 { nexthop: 192.0.2.1 } } static { } }"
    "only once";
  expect_problem "interfaces { interface eth0 { } }" "address"

(* --- booting routers -------------------------------------------------------- *)

let test_boot_rejects_bad_config () =
  (match Rtrmgr.boot ~config:"nonsense {" () with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "booted from a syntax error");
  match Rtrmgr.boot ~config:"frobnicator { }" () with
  | Error problems ->
    check Alcotest.bool "mentions the unknown section" true
      (List.exists
         (fun p -> Astring.String.is_infix ~affix:"frobnicator" p)
         problems)
  | Ok _ -> Alcotest.fail "booted from an invalid config"

let test_boot_static_router () =
  let config = {|
interfaces {
    interface eth0 { address: 10.0.0.1 }
}
protocols {
    static {
        route 172.16.0.0/12 { nexthop: 10.0.0.254 }
    }
}
|} in
  match Rtrmgr.boot ~config () with
  | Error problems -> Alcotest.fail (String.concat "; " problems)
  | Ok router ->
    let loop = Rtrmgr.eventloop router in
    Eventloop.run_until_idle loop;
    (match Rib.lookup_best (Rtrmgr.rib router) (addr "172.16.1.1") with
     | Some r -> check Alcotest.string "static route" "static" r.Rib_route.protocol
     | None -> Alcotest.fail "static route missing");
    (* connected route for the interface *)
    (match Rib.lookup_best (Rtrmgr.rib router) (addr "10.0.0.9") with
     | Some r -> check Alcotest.string "connected" "connected" r.Rib_route.protocol
     | None -> Alcotest.fail "connected route missing");
    (* FIB has both *)
    check Alcotest.int "fib" 2 (Fib.size (Fea.fib (Rtrmgr.fea router)));
    let shown = Rtrmgr.show_routes router in
    check Alcotest.bool "show_routes mentions the prefix" true
      (Astring.String.is_infix ~affix:"172.16.0.0/12" shown);
    Rtrmgr.shutdown router

let bgp_pair_configs =
  ( {|
interfaces {
    interface eth0 { address: 10.0.0.1 }
}
protocols {
    bgp {
        local-as: 65001
        bgp-id: 1.1.1.1
        network 128.16.0.0/16 { }
        network 128.17.0.0/16 { }
        peer 10.0.0.2 {
            as: 65002
            local-ip: 10.0.0.1
        }
    }
}
|},
    {|
interfaces {
    interface eth0 { address: 10.0.0.2 }
}
protocols {
    bgp {
        local-as: 65002
        bgp-id: 2.2.2.2
        peer 10.0.0.1 {
            as: 65001
            local-ip: 10.0.0.2
            import-policy: "load network; push.net 128.17.0.0/16; within; jfalse keep; reject; label keep"
        }
    }
}
|} )

let test_boot_bgp_pair_from_config () =
  let cfg_a, cfg_b = bgp_pair_configs in
  let loop = Eventloop.create () in
  let netsim = Netsim.create loop in
  let boot config =
    match Rtrmgr.boot ~loop ~netsim ~config () with
    | Ok r -> r
    | Error problems -> Alcotest.fail (String.concat "; " problems)
  in
  let ra = boot cfg_a in
  let rb = boot cfg_b in
  Eventloop.run_until_time loop 10.0;
  let bgp_b = Option.get (Rtrmgr.bgp rb) in
  (* b's import policy rejects 128.17/16, accepts 128.16/16. *)
  check Alcotest.int "one route at b" 1 (Bgp_process.route_count bgp_b);
  (match Rib.lookup_best (Rtrmgr.rib rb) (addr "128.16.1.1") with
   | Some r -> check Alcotest.string "ebgp in rib" "ebgp" r.Rib_route.protocol
   | None -> Alcotest.fail "128.16/16 not in b's RIB");
  check Alcotest.bool "128.17/16 filtered" true
    (Rib.lookup_best (Rtrmgr.rib rb) (addr "128.17.1.1") = None);
  (* show commands *)
  check Alcotest.bool "peer shown Established" true
    (Astring.String.is_infix ~affix:"Established" (Rtrmgr.show_bgp_peers rb));
  check Alcotest.bool "fib shown" true
    (Astring.String.is_infix ~affix:"128.16.0.0/16" (Rtrmgr.show_fib rb));
  (* The queue pane names the staging queues and both fanout lanes,
     and everything has drained at quiescence. *)
  let queues = Rtrmgr.show_queues rb in
  List.iter
    (fun row ->
       check Alcotest.bool (row ^ " shown") true
         (Astring.String.is_infix ~affix:row queues))
    [ "bgp.inbound"; "bgp.fanout.lane.urgent"; "bgp.fanout.lane.bulk";
      "rib.fea_q" ];
  List.iteri
    (fun i line ->
       if i > 0 && line <> "" then
         match List.rev (String.split_on_char ' ' line) with
         | depth :: _ ->
           check Alcotest.string
             (Printf.sprintf "queue row %d drained" i) "0" depth
         | [] -> ())
    (String.split_on_char '\n' queues);
  Rtrmgr.shutdown ra;
  Rtrmgr.shutdown rb

let test_boot_rip_pair_from_config () =
  let mk ifaddr nbr extra = Printf.sprintf {|
interfaces {
    interface eth0 { address: %s }
}
protocols {
    rip {
        interface %s { neighbor: %s }
%s
    }
}
|} ifaddr ifaddr nbr extra in
  let loop = Eventloop.create () in
  let netsim = Netsim.create loop in
  let boot config =
    match Rtrmgr.boot ~loop ~netsim ~config () with
    | Ok r -> r
    | Error problems -> Alcotest.fail (String.concat "; " problems)
  in
  let ra =
    boot (mk "10.0.0.1" "10.0.0.2" "        route 203.0.113.0/24 { metric: 2 }")
  in
  let rb = boot (mk "10.0.0.2" "10.0.0.1" "") in
  Eventloop.run_until_time loop 40.0;
  let rip_b = Option.get (Rtrmgr.rip rb) in
  (match Rip_process.lookup rip_b (net "203.0.113.0/24") with
   | Some (m, _) -> check Alcotest.int "metric 3 at b" 3 m
   | None -> Alcotest.fail "rip route not learned");
  check Alcotest.bool "show_rip" true
    (Astring.String.is_infix ~affix:"203.0.113.0/24" (Rtrmgr.show_rip rb));
  Rtrmgr.shutdown ra;
  Rtrmgr.shutdown rb

let test_config_text_roundtrip () =
  let cfg_a, _ = bgp_pair_configs in
  let loop = Eventloop.create () in
  let netsim = Netsim.create loop in
  match Rtrmgr.boot ~loop ~netsim ~config:cfg_a () with
  | Error problems -> Alcotest.fail (String.concat "; " problems)
  | Ok r ->
    let rendered = Rtrmgr.config_text r in
    (match Config_tree.parse rendered with
     | Ok _ -> ()
     | Error e -> Alcotest.failf "rendered config does not re-parse: %s" e);
    Rtrmgr.shutdown r

let () =
  Alcotest.run "xorp_rtrmgr"
    [
      ( "config_tree",
        [
          Alcotest.test_case "parse basics" `Quick test_parse_basic;
          Alcotest.test_case "repeated sections" `Quick
            test_parse_multiple_same_name;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "render roundtrip" `Quick test_render_roundtrip;
          QCheck_alcotest.to_alcotest prop_render_parse_fixpoint;
        ] );
      ( "template",
        [
          Alcotest.test_case "valid config" `Quick test_validate_good;
          Alcotest.test_case "catches mistakes" `Quick test_validate_catches;
        ] );
      ( "boot",
        [
          Alcotest.test_case "rejects bad config" `Quick
            test_boot_rejects_bad_config;
          Alcotest.test_case "static router" `Quick test_boot_static_router;
          Alcotest.test_case "bgp pair from config" `Quick
            test_boot_bgp_pair_from_config;
          Alcotest.test_case "rip pair from config" `Quick
            test_boot_rip_pair_from_config;
          Alcotest.test_case "config text roundtrip" `Quick
            test_config_text_roundtrip;
        ] );
    ]
