(* Deterministic seeding for the QCheck property suites.

   Each suite derives every generator stream from one integer seed, so
   any failure is replayable bit-for-bit:

     QCHECK_SEED=918273645 dune exec test/test_properties.exe

   Without QCHECK_SEED a fresh seed is drawn at startup; it is printed
   whenever a property fails so the run can be reproduced. *)

let seed =
  match Option.bind (Sys.getenv_opt "QCHECK_SEED") int_of_string_opt with
  | Some s -> s
  | None ->
    Random.self_init ();
    Random.int 0x3FFFFFFF

(* Like [QCheck_alcotest.to_alcotest], but drawing from the shared seed
   and reprinting it on failure. Each property gets its own state built
   from the same seed, so dropping tests from a suite does not perturb
   the streams of the ones that remain. *)
let qcheck test =
  let name, speed, run =
    QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| seed |]) test
  in
  ( name,
    speed,
    fun args ->
      try run args
      with e ->
        Printf.printf "property failed; replay with QCHECK_SEED=%d\n%!" seed;
        raise e )
