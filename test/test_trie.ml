(* Tests for the Patricia tree: structure, longest-prefix match, the
   Figure 8 largest-enclosing-subnet computation, and safe iterators
   under concurrent mutation (paper §5.3). *)

let check = Alcotest.check
let net = Ipv4net.of_string_exn
let addr = Ipv4.of_string_exn
let ipv4net = Alcotest.testable Ipv4net.pp Ipv4net.equal

let assert_ok t =
  match Ptree.check_invariants t with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "invariant broken: %s" msg

let build nets =
  let t = Ptree.create () in
  List.iter (fun n -> ignore (Ptree.insert t (net n) n)) nets;
  t

let test_insert_find () =
  let t = build [ "10.0.0.0/8"; "10.1.0.0/16"; "192.168.0.0/24" ] in
  check (Alcotest.option Alcotest.string) "find /8" (Some "10.0.0.0/8")
    (Ptree.find t (net "10.0.0.0/8"));
  check (Alcotest.option Alcotest.string) "find /16" (Some "10.1.0.0/16")
    (Ptree.find t (net "10.1.0.0/16"));
  check (Alcotest.option Alcotest.string) "absent" None
    (Ptree.find t (net "10.2.0.0/16"));
  check Alcotest.int "size" 3 (Ptree.size t);
  assert_ok t

let test_insert_replaces () =
  let t = Ptree.create () in
  ignore (Ptree.insert t (net "10.0.0.0/8") 1);
  let old = Ptree.insert t (net "10.0.0.0/8") 2 in
  check (Alcotest.option Alcotest.int) "old value returned" (Some 1) old;
  check (Alcotest.option Alcotest.int) "new value stored" (Some 2)
    (Ptree.find t (net "10.0.0.0/8"));
  check Alcotest.int "size unchanged" 1 (Ptree.size t)

let test_default_route () =
  let t = build [ "0.0.0.0/0"; "10.0.0.0/8" ] in
  check (Alcotest.option Alcotest.string) "default stored" (Some "0.0.0.0/0")
    (Ptree.find t Ipv4net.default);
  (match Ptree.longest_match t (addr "192.0.2.1") with
   | Some (n, _) -> check ipv4net "default matches anything" Ipv4net.default n
   | None -> Alcotest.fail "no match");
  assert_ok t

let test_longest_match () =
  let t = build [ "128.16.0.0/16"; "128.16.0.0/18"; "128.16.128.0/17";
                  "128.16.192.0/18" ] in
  let lm a =
    match Ptree.longest_match t (addr a) with
    | Some (n, _) -> Ipv4net.to_string n
    | None -> "none"
  in
  check Alcotest.string "32.1 matches /18" "128.16.0.0/18" (lm "128.16.32.1");
  check Alcotest.string "160.1 matches /17" "128.16.128.0/17" (lm "128.16.160.1");
  check Alcotest.string "192.1 matches 2nd /18" "128.16.192.0/18" (lm "128.16.192.1");
  check Alcotest.string "64.1 matches /16" "128.16.0.0/16" (lm "128.16.64.1");
  check Alcotest.string "no match outside" "none" (lm "128.17.0.1");
  assert_ok t

let test_longest_match_net () =
  let t = build [ "10.0.0.0/8"; "10.1.0.0/16" ] in
  (match Ptree.longest_match_net t (net "10.1.2.0/24") with
   | Some (n, _) -> check ipv4net "covers /24" (net "10.1.0.0/16") n
   | None -> Alcotest.fail "no match");
  (match Ptree.longest_match_net t (net "10.1.0.0/16") with
   | Some (n, _) -> check ipv4net "exact counts" (net "10.1.0.0/16") n
   | None -> Alcotest.fail "no exact match");
  (match Ptree.longest_match_net t (net "10.0.0.0/7") with
   | Some _ -> Alcotest.fail "/7 is not covered by /8"
   | None -> ())

let test_remove () =
  let t = build [ "10.0.0.0/8"; "10.1.0.0/16"; "10.1.2.0/24" ] in
  check (Alcotest.option Alcotest.string) "removed" (Some "10.1.0.0/16")
    (Ptree.remove t (net "10.1.0.0/16"));
  check (Alcotest.option Alcotest.string) "gone" None
    (Ptree.find t (net "10.1.0.0/16"));
  check (Alcotest.option Alcotest.string) "others stay" (Some "10.1.2.0/24")
    (Ptree.find t (net "10.1.2.0/24"));
  check (Alcotest.option Alcotest.string) "double remove" None
    (Ptree.remove t (net "10.1.0.0/16"));
  check Alcotest.int "size" 2 (Ptree.size t);
  assert_ok t;
  (* longest match no longer sees the removed route *)
  (match Ptree.longest_match t (addr "10.1.2.3") with
   | Some (n, _) -> check ipv4net "match skips removed" (net "10.1.2.0/24") n
   | None -> Alcotest.fail "no match")

let test_iter_order () =
  let t = build [ "192.168.0.0/24"; "10.0.0.0/8"; "10.1.0.0/16";
                  "10.0.0.0/16"; "172.16.0.0/12" ] in
  let keys = List.map (fun (k, _) -> Ipv4net.to_string k) (Ptree.to_list t) in
  check (Alcotest.list Alcotest.string) "lexicographic pre-order"
    [ "10.0.0.0/8"; "10.0.0.0/16"; "10.1.0.0/16"; "172.16.0.0/12";
      "192.168.0.0/24" ]
    keys

let test_clear () =
  let t = build [ "10.0.0.0/8"; "10.1.0.0/16" ] in
  Ptree.clear t;
  check Alcotest.int "empty" 0 (Ptree.size t);
  check (Alcotest.option Alcotest.string) "gone" None
    (Ptree.find t (net "10.0.0.0/8"));
  assert_ok t

(* --- Figure 8: largest enclosing subnet ----------------------------- *)

let fig8_tree () =
  build [ "128.16.0.0/16"; "128.16.0.0/18"; "128.16.128.0/17";
          "128.16.192.0/18" ]

let test_les_simple () =
  let t = fig8_tree () in
  check ipv4net "32.1: whole /18 is hole-free" (net "128.16.0.0/18")
    (Ptree.largest_enclosing_hole t (addr "128.16.32.1"))

let test_les_overlayed () =
  let t = fig8_tree () in
  (* The paper's key example: 128.16.160.1 matches 128.16.128.0/17,
     which is overlayed by 128.16.192.0/18, so the valid cache range is
     only 128.16.128.0/18. *)
  check ipv4net "160.1: narrowed to /18" (net "128.16.128.0/18")
    (Ptree.largest_enclosing_hole t (addr "128.16.160.1"))

let test_les_inside_overlay () =
  let t = fig8_tree () in
  check ipv4net "192.1: the overlaying /18 itself" (net "128.16.192.0/18")
    (Ptree.largest_enclosing_hole t (addr "128.16.192.1"))

let test_les_no_match () =
  let t = fig8_tree () in
  (* No route covers 20.0.0.0; the hole is huge but must exclude
     128.16/16. 20.0.0.1 = 00010100...; 128.x = 1xxxxxxx: they diverge
     at bit 0, so the hole is 0.0.0.0/1. *)
  check ipv4net "hole outside all routes" (net "0.0.0.0/1")
    (Ptree.largest_enclosing_hole t (addr "20.0.0.1"))

let test_les_middle_sibling () =
  let t = build [ "10.0.0.0/8"; "10.64.0.0/16" ] in
  (* 10.128.0.0 inside /8; sibling /16 overlays the /8 on the other
     half: 10.128.x diverges from 10.64.x at bit 8 (the 10.128/9 half
     contains no more-specifics). *)
  check ipv4net "narrow past the sibling" (net "10.128.0.0/9")
    (Ptree.largest_enclosing_hole t (addr "10.128.0.1"))

let test_has_strictly_inside () =
  let t = fig8_tree () in
  check Alcotest.bool "/16 has inner routes" true
    (Ptree.has_strictly_inside t (net "128.16.0.0/16"));
  check Alcotest.bool "/18 is a leaf" false
    (Ptree.has_strictly_inside t (net "128.16.0.0/18"));
  check Alcotest.bool "unrelated" false
    (Ptree.has_strictly_inside t (net "20.0.0.0/8"));
  check Alcotest.bool "strict: equality is not inside" false
    (Ptree.has_strictly_inside t (net "128.16.192.0/18"))

(* --- Safe iterators (§5.3) ------------------------------------------ *)

let test_iter_complete () =
  let t = build [ "10.0.0.0/8"; "10.1.0.0/16"; "172.16.0.0/12";
                  "192.168.1.0/24" ] in
  let it = Ptree.Safe_iter.start t in
  let rec drain acc =
    match Ptree.Safe_iter.next it with
    | Some (k, _) -> drain (Ipv4net.to_string k :: acc)
    | None -> List.rev acc
  in
  check (Alcotest.list Alcotest.string) "visits all in order"
    [ "10.0.0.0/8"; "10.1.0.0/16"; "172.16.0.0/12"; "192.168.1.0/24" ]
    (drain [])

let test_iter_survives_delete_current () =
  let t = build [ "10.0.0.0/8"; "10.1.0.0/16"; "172.16.0.0/12" ] in
  let it = Ptree.Safe_iter.start t in
  (match Ptree.Safe_iter.next it with
   | Some (k, _) -> check ipv4net "first" (net "10.0.0.0/8") k
   | None -> Alcotest.fail "empty");
  (* Delete the node the iterator is pinned to. *)
  ignore (Ptree.remove t (net "10.0.0.0/8"));
  check (Alcotest.option Alcotest.string) "binding is gone" None
    (Ptree.find t (net "10.0.0.0/8"));
  (* The iterator still advances correctly. *)
  (match Ptree.Safe_iter.next it with
   | Some (k, _) -> check ipv4net "next" (net "10.1.0.0/16") k
   | None -> Alcotest.fail "iterator lost its place");
  (match Ptree.Safe_iter.next it with
   | Some (k, _) -> check ipv4net "third" (net "172.16.0.0/12") k
   | None -> Alcotest.fail "iterator lost its place");
  check Alcotest.bool "end" true (Ptree.Safe_iter.next it = None);
  (* Once the iterator left, deferred physical deletion happened. *)
  assert_ok t

let test_iter_survives_delete_everything () =
  let nets = [ "10.0.0.0/8"; "10.1.0.0/16"; "10.1.2.0/24"; "172.16.0.0/12";
               "192.168.0.0/16"; "192.168.1.0/24" ] in
  let t = build nets in
  let it = Ptree.Safe_iter.start t in
  (match Ptree.Safe_iter.next it with
   | Some _ -> ()
   | None -> Alcotest.fail "empty");
  List.iter (fun n -> ignore (Ptree.remove t (net n))) nets;
  check Alcotest.int "all removed" 0 (Ptree.size t);
  check Alcotest.bool "iterator sees the end" true
    (Ptree.Safe_iter.next it = None);
  assert_ok t

let test_iter_sees_insertions_ahead () =
  let t = build [ "10.0.0.0/8"; "192.168.0.0/16" ] in
  let it = Ptree.Safe_iter.start t in
  ignore (Ptree.Safe_iter.next it);
  (* insert ahead of the cursor *)
  ignore (Ptree.insert t (net "172.16.0.0/12") "new");
  let rest =
    let rec drain acc =
      match Ptree.Safe_iter.next it with
      | Some (k, _) -> drain (Ipv4net.to_string k :: acc)
      | None -> List.rev acc
    in
    drain []
  in
  check (Alcotest.list Alcotest.string) "new binding visited"
    [ "172.16.0.0/12"; "192.168.0.0/16" ] rest

let test_iter_stop_releases () =
  let t = build [ "10.0.0.0/8"; "10.1.0.0/16" ] in
  let it = Ptree.Safe_iter.start t in
  ignore (Ptree.Safe_iter.next it);
  ignore (Ptree.remove t (net "10.0.0.0/8"));
  Ptree.Safe_iter.stop it;
  Ptree.Safe_iter.stop it; (* idempotent *)
  assert_ok t;
  check Alcotest.bool "next after stop" true (Ptree.Safe_iter.next it = None)

let test_two_iterators_one_node () =
  let t = build [ "10.0.0.0/8"; "10.1.0.0/16" ] in
  let it1 = Ptree.Safe_iter.start t in
  let it2 = Ptree.Safe_iter.start t in
  ignore (Ptree.Safe_iter.next it1);
  ignore (Ptree.Safe_iter.next it2);
  ignore (Ptree.remove t (net "10.0.0.0/8"));
  ignore (Ptree.Safe_iter.next it1); (* it1 leaves; it2 still pins *)
  (match Ptree.Safe_iter.next it2 with
   | Some (k, _) -> check ipv4net "it2 advances too" (net "10.1.0.0/16") k
   | None -> Alcotest.fail "it2 lost its place");
  Ptree.Safe_iter.stop it1;
  Ptree.Safe_iter.stop it2;
  assert_ok t

(* --- qcheck properties ---------------------------------------------- *)

let arb_nets =
  let gen_net =
    QCheck.Gen.(
      map2
        (fun i len -> Ipv4net.make (Ipv4.of_int (i * 2654435761)) (8 + (len mod 25)))
        (int_bound 0x3FFFFFFF) (int_bound 24))
  in
  QCheck.make
    QCheck.Gen.(list_size (int_range 1 120) gen_net)
    ~print:(fun l -> String.concat ";" (List.map Ipv4net.to_string l))

let prop_model_find =
  QCheck.Test.make ~name:"find agrees with assoc-list model" ~count:200 arb_nets
    (fun nets ->
       let t = Ptree.create () in
       let model = Hashtbl.create 64 in
       List.iteri
         (fun i n ->
            ignore (Ptree.insert t n i);
            Hashtbl.replace model n i)
         nets;
       Hashtbl.fold
         (fun n i acc -> acc && Ptree.find t n = Some i)
         model
         (Ptree.size t = Hashtbl.length model
          && Ptree.check_invariants t = Ok (Printf.sprintf "%d bindings, structure consistent" (Hashtbl.length model))))

let prop_longest_match_model =
  QCheck.Test.make ~name:"longest_match agrees with linear scan" ~count:200
    (QCheck.pair arb_nets (QCheck.int_bound 0x3FFFFFFF))
    (fun (nets, a) ->
       let a = Ipv4.of_int (a * 40503) in
       let t = Ptree.create () in
       List.iter (fun n -> ignore (Ptree.insert t n n)) nets;
       let expected =
         List.fold_left
           (fun best n ->
              if Ipv4net.contains_addr n a then
                match best with
                | Some b when Ipv4net.prefix_len b >= Ipv4net.prefix_len n ->
                  best
                | _ -> Some n
              else best)
           None nets
       in
       match Ptree.longest_match t a, expected with
       | None, None -> true
       | Some (n, _), Some e -> Ipv4net.equal n e
       | _ -> false)

let prop_remove_all_empties =
  QCheck.Test.make ~name:"removing everything empties the tree" ~count:200
    arb_nets (fun nets ->
        let t = Ptree.create () in
        List.iter (fun n -> ignore (Ptree.insert t n ())) nets;
        List.iter (fun n -> ignore (Ptree.remove t n)) nets;
        Ptree.size t = 0 && Ptree.to_list t = []
        && (match Ptree.check_invariants t with Ok _ -> true | Error _ -> false))

let prop_les_is_hole =
  QCheck.Test.make ~name:"largest_enclosing_hole contains no inner route"
    ~count:200
    (QCheck.pair arb_nets (QCheck.int_bound 0x3FFFFFFF))
    (fun (nets, a) ->
       let a = Ipv4.of_int (a * 48271) in
       let t = Ptree.create () in
       List.iter (fun n -> ignore (Ptree.insert t n ())) nets;
       let hole = Ptree.largest_enclosing_hole t a in
       Ipv4net.contains_addr hole a
       && (not (Ptree.has_strictly_inside t hole))
       &&
       (* every address in the hole has the same longest match *)
       let lm x = Option.map fst (Ptree.longest_match t x) in
       let same x = lm x = lm a in
       same (Ipv4net.first_addr hole) && same (Ipv4net.last_addr hole))

let prop_iterator_vs_snapshot =
  QCheck.Test.make ~name:"safe iterator visits surviving bindings" ~count:200
    arb_nets (fun nets ->
        let t = Ptree.create () in
        List.iter (fun n -> ignore (Ptree.insert t n ())) nets;
        (* Walk while deleting every other visited binding behind the
           cursor; the iterator must still terminate and visit each
           surviving key at most once. *)
        let it = Ptree.Safe_iter.start t in
        let visited = ref [] in
        let flip = ref false in
        let rec go () =
          match Ptree.Safe_iter.next it with
          | None -> ()
          | Some (k, ()) ->
            visited := k :: !visited;
            flip := not !flip;
            if !flip then ignore (Ptree.remove t k);
            go ()
        in
        go ();
        let sorted = List.sort Ipv4net.compare !visited in
        let rec no_dup = function
          | a :: (b :: _ as rest) -> (not (Ipv4net.equal a b)) && no_dup rest
          | _ -> true
        in
        no_dup sorted
        && (match Ptree.check_invariants t with Ok _ -> true | Error _ -> false))

let () =
  Alcotest.run "xorp_trie"
    [
      ( "basic",
        [
          Alcotest.test_case "insert and find" `Quick test_insert_find;
          Alcotest.test_case "insert replaces" `Quick test_insert_replaces;
          Alcotest.test_case "default route" `Quick test_default_route;
          Alcotest.test_case "longest match" `Quick test_longest_match;
          Alcotest.test_case "longest match net" `Quick test_longest_match_net;
          Alcotest.test_case "remove" `Quick test_remove;
          Alcotest.test_case "iteration order" `Quick test_iter_order;
          Alcotest.test_case "clear" `Quick test_clear;
        ] );
      ( "figure8",
        [
          Alcotest.test_case "simple /18" `Quick test_les_simple;
          Alcotest.test_case "overlayed /17" `Quick test_les_overlayed;
          Alcotest.test_case "inside the overlay" `Quick test_les_inside_overlay;
          Alcotest.test_case "no matching route" `Quick test_les_no_match;
          Alcotest.test_case "sibling overlay" `Quick test_les_middle_sibling;
          Alcotest.test_case "has_strictly_inside" `Quick test_has_strictly_inside;
        ] );
      ( "safe_iter",
        [
          Alcotest.test_case "complete walk" `Quick test_iter_complete;
          Alcotest.test_case "delete current node" `Quick
            test_iter_survives_delete_current;
          Alcotest.test_case "delete everything mid-walk" `Quick
            test_iter_survives_delete_everything;
          Alcotest.test_case "sees insertions ahead" `Quick
            test_iter_sees_insertions_ahead;
          Alcotest.test_case "stop releases pin" `Quick test_iter_stop_releases;
          Alcotest.test_case "two iterators, one node" `Quick
            test_two_iterators_one_node;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_model_find;
            prop_longest_match_model;
            prop_remove_all_empties;
            prop_les_is_hole;
            prop_iterator_vs_snapshot;
          ] );
    ]
