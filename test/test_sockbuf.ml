(* Direct tests for the framed non-blocking connection used by the TCP
   protocol family: frame reassembly across arbitrary segmentation,
   large frames, write buffering, and close semantics — over a real
   socketpair on a real-clock loop. *)

let check = Alcotest.check

let run_until loop pred what =
  let t0 = Unix.gettimeofday () in
  Eventloop.run
    ~until:(fun () -> pred () || Unix.gettimeofday () -. t0 > 10.0)
    loop;
  if not (pred ()) then Alcotest.failf "timed out waiting for %s" what

let pair loop =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let got_a = ref [] and got_b = ref [] in
  let closed_a = ref false and closed_b = ref false in
  let ca =
    Sockbuf.attach loop a
      ~on_frame:(fun f -> got_a := f :: !got_a)
      ~on_close:(fun () -> closed_a := true)
  in
  let cb =
    Sockbuf.attach loop b
      ~on_frame:(fun f -> got_b := f :: !got_b)
      ~on_close:(fun () -> closed_b := true)
  in
  (ca, cb, got_a, got_b, closed_a, closed_b)

let test_roundtrip () =
  let loop = Eventloop.create ~mode:`Real () in
  let ca, cb, got_a, got_b, _, _ = pair loop in
  Sockbuf.send_frame ca "hello";
  Sockbuf.send_frame ca "";
  Sockbuf.send_frame cb "world";
  run_until loop
    (fun () -> List.length !got_b >= 2 && List.length !got_a >= 1)
    "frames";
  check (Alcotest.list Alcotest.string) "b got both, in order"
    [ "hello"; "" ] (List.rev !got_b);
  check (Alcotest.list Alcotest.string) "a got one" [ "world" ] (List.rev !got_a);
  Sockbuf.close ca;
  Sockbuf.close cb

let test_large_frames_and_buffering () =
  (* Frames far larger than the 64k read scratch and kernel socket
     buffers: exercises partial reads, partial writes and the
     writability callback path. *)
  let loop = Eventloop.create ~mode:`Real () in
  let ca, cb, _, got_b, _, _ = pair loop in
  let big = String.init 1_000_000 (fun i -> Char.chr (i land 0xFF)) in
  Sockbuf.send_frame ca big;
  Sockbuf.send_frame ca "tail";
  check Alcotest.bool "write queued beyond socket buffer" true
    (Sockbuf.pending_bytes ca > 0);
  run_until loop (fun () -> List.length !got_b >= 2) "large frame";
  (match List.rev !got_b with
   | [ f1; f2 ] ->
     check Alcotest.int "megabyte frame intact" 1_000_000 (String.length f1);
     check Alcotest.bool "content intact" true (String.equal f1 big);
     check Alcotest.string "framing preserved" "tail" f2
   | l -> Alcotest.failf "expected 2 frames, got %d" (List.length l));
  check Alcotest.int "sender fully drained" 0 (Sockbuf.pending_bytes ca);
  Sockbuf.close ca;
  Sockbuf.close cb

let test_many_small_frames () =
  let loop = Eventloop.create ~mode:`Real () in
  let ca, cb, _, got_b, _, _ = pair loop in
  for i = 1 to 500 do
    Sockbuf.send_frame ca (Printf.sprintf "frame-%d" i)
  done;
  run_until loop (fun () -> List.length !got_b >= 500) "500 frames";
  let frames = List.rev !got_b in
  check Alcotest.int "count" 500 (List.length frames);
  List.iteri
    (fun i f -> check Alcotest.string "order" (Printf.sprintf "frame-%d" (i + 1)) f)
    frames;
  Sockbuf.close ca;
  Sockbuf.close cb

let test_remote_close_notifies () =
  let loop = Eventloop.create ~mode:`Real () in
  let ca, cb, _, _, _closed_a, closed_b = pair loop in
  check Alcotest.bool "open" true (Sockbuf.is_open cb);
  Sockbuf.close ca;
  run_until loop (fun () -> !closed_b) "remote close";
  check Alcotest.bool "b notified" true !closed_b;
  check Alcotest.bool "b closed" false (Sockbuf.is_open cb)

let test_local_close_is_silent_and_idempotent () =
  let loop = Eventloop.create ~mode:`Real () in
  let ca, cb, _, _, closed_a, _ = pair loop in
  Sockbuf.close ca;
  Sockbuf.close ca; (* idempotent *)
  check Alcotest.bool "local close does not self-notify" false !closed_a;
  check Alcotest.bool "closed" false (Sockbuf.is_open ca);
  (* Sends after close are silently dropped. *)
  Sockbuf.send_frame ca "late";
  Eventloop.run_until_idle loop;
  Sockbuf.close cb

let () =
  Alcotest.run "xorp_sockbuf"
    [
      ( "framing",
        [
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "large frames + buffering" `Quick
            test_large_frames_and_buffering;
          Alcotest.test_case "500 small frames in order" `Quick
            test_many_small_frames;
        ] );
      ( "close",
        [
          Alcotest.test_case "remote close notifies" `Quick
            test_remote_close_notifies;
          Alcotest.test_case "local close silent + idempotent" `Quick
            test_local_close_is_silent_and_idempotent;
        ] );
    ]
