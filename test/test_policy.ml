(* Tests for the policy stack language: compilation, the VM, verdicts,
   attribute modification, error containment. *)

let check = Alcotest.check

let compile_ok src =
  match Policy.compile src with
  | Ok p -> p
  | Error e -> Alcotest.failf "compile failed: %s" e

let table kvs =
  let t = Hashtbl.create 8 in
  List.iter (fun (k, v) -> Hashtbl.replace t k v) kvs;
  t

let eval_ok prog ctx =
  match Policy.eval prog ctx with
  | Ok v -> v
  | Error e -> Alcotest.failf "eval failed: %s" e

let verdict =
  Alcotest.testable
    (fun fmt v ->
       Format.pp_print_string fmt
         (match v with
          | Policy.Accept -> "accept"
          | Policy.Reject -> "reject"
          | Policy.Default -> "default"))
    ( = )

let test_empty_program () =
  let p = compile_ok "" in
  check Alcotest.int "no instructions" 0 (Policy.instruction_count p);
  let ctx = Policy.ctx_of_table (table []) () in
  check verdict "falls through" Policy.Default (eval_ok p ctx)

let test_accept_reject () =
  let ctx = Policy.ctx_of_table (table []) () in
  check verdict "accept" Policy.Accept (eval_ok Policy.always_accept ctx);
  check verdict "reject" Policy.Reject (eval_ok Policy.always_reject ctx)

let test_comments_and_blank_lines () =
  let p = compile_ok "# a comment\n\n   \naccept # trailing\n" in
  check Alcotest.int "one instruction" 1 (Policy.instruction_count p)

let test_arith_and_comparison () =
  let src = {|
push.u32 2
push.u32 3
mul
push.u32 1
add
push.u32 7
eq
jfalse bad
accept
label bad
reject
|} in
  let ctx = Policy.ctx_of_table (table []) () in
  check verdict "2*3+1=7" Policy.Accept (eval_ok (compile_ok src) ctx)

let test_load_store () =
  let tbl = table [ ("localpref", Policy.Int 100) ] in
  let ctx = Policy.ctx_of_table tbl () in
  let src = {|
load localpref
push.u32 50
add
store localpref
accept
|} in
  check verdict "accept" Policy.Accept (eval_ok (compile_ok src) ctx);
  check Alcotest.bool "localpref bumped" true
    (Hashtbl.find tbl "localpref" = Policy.Int 150)

let test_prefix_ops () =
  let tbl = table [ ("network", Policy.Net (Ipv4net.of_string_exn "10.1.2.0/24")) ] in
  let ctx = Policy.ctx_of_table tbl () in
  let src = {|
load network
push.net 10.0.0.0/8
within
jfalse no
load network
prefix_len
push.u32 24
eq
jfalse no
accept
label no
reject
|} in
  check verdict "within and prefix_len" Policy.Accept
    (eval_ok (compile_ok src) ctx)

let test_contains_addr () =
  let ctx = Policy.ctx_of_table (table []) () in
  let src = {|
push.net 192.168.0.0/16
push.addr 192.168.4.4
contains
jfalse no
accept
label no
reject
|} in
  check verdict "contains addr" Policy.Accept (eval_ok (compile_ok src) ctx)

let test_boolean_ops () =
  let ctx = Policy.ctx_of_table (table []) () in
  let src = {|
push.bool true
push.bool false
or
push.bool true
and
not
jfalse good
reject
label good
accept
|} in
  check verdict "(true||false)&&true, negated, jfalse" Policy.Accept
    (eval_ok (compile_ok src) ctx)

let test_jump_forward_and_back () =
  (* Loop: count down from 3 using an attribute, then accept. Exercises
     backward jumps. *)
  let tbl = table [ ("n", Policy.Int 3) ] in
  let ctx = Policy.ctx_of_table tbl () in
  let src = {|
label top
load n
push.u32 0
eq
jfalse decr
accept
label decr
load n
push.u32 1
sub
store n
jmp top
|} in
  check verdict "loop terminates" Policy.Accept (eval_ok (compile_ok src) ctx);
  check Alcotest.bool "counted down" true (Hashtbl.find tbl "n" = Policy.Int 0)

let test_step_limit () =
  let ctx = Policy.ctx_of_table (table []) () in
  let src = "label spin\njmp spin\n" in
  match Policy.eval (compile_ok src) ctx with
  | Error msg ->
    check Alcotest.bool "mentions limit" true
      (Astring.String.is_infix ~affix:"limit" msg
       || String.length msg > 0)
  | Ok _ -> Alcotest.fail "infinite loop terminated?"

let test_compile_errors () =
  List.iter
    (fun (src, what) ->
       match Policy.compile src with
       | Ok _ -> Alcotest.failf "accepted bad program (%s)" what
       | Error msg ->
         check Alcotest.bool
           (Printf.sprintf "error has line number (%s): %s" what msg)
           true
           (String.length msg > 5 && String.sub msg 0 5 = "line "))
    [ ("frobnicate", "unknown op");
      ("push.u32 banana", "bad int");
      ("jmp nowhere", "unknown label");
      ("push.net 10.0.0.0/40", "bad prefix");
      ("label a\nlabel a", "duplicate label");
      ("push.bool maybe", "bad bool") ]

let test_runtime_errors () =
  let ctx = Policy.ctx_of_table (table []) () in
  List.iter
    (fun (src, what) ->
       match Policy.eval (compile_ok src) ctx with
       | Error _ -> ()
       | Ok _ -> Alcotest.failf "no fault for %s" what)
    [ ("add", "stack underflow");
      ("push.bool true\npush.u32 1\nadd", "type error");
      ("load nonexistent", "unknown attribute");
      ("push.u32 1\njfalse x\nlabel x", "jfalse on int") ]

let test_read_only_attrs () =
  let tbl = table [ ("network", Policy.Net (Ipv4net.of_string_exn "10.0.0.0/8")) ] in
  let ctx = Policy.ctx_of_table tbl ~read_only:[ "network" ] () in
  match Policy.eval (compile_ok "push.net 1.0.0.0/8\nstore network") ctx with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrote a read-only attribute"

let test_swap_dup_pop () =
  let ctx = Policy.ctx_of_table (table []) () in
  let src = {|
push.u32 1
push.u32 2
swap
pop
push.u32 2
eq
jfalse bad
accept
label bad
reject
|} in
  check verdict "swap/pop semantics" Policy.Accept (eval_ok (compile_ok src) ctx)

(* A couple of properties: compile/eval never raises. *)
let prop_compile_never_raises =
  QCheck.Test.make ~name:"compile never raises" ~count:500
    QCheck.(string_gen_of_size (Gen.int_bound 60) Gen.printable)
    (fun src ->
       match Policy.compile src with Ok _ | Error _ -> true)

let prop_eval_never_raises =
  QCheck.Test.make ~name:"eval of random int programs never raises" ~count:300
    QCheck.(list_of_size (Gen.int_bound 20) (int_bound 5))
    (fun ops ->
       let src =
         String.concat "\n"
           (List.map
              (function
                | 0 -> "push.u32 1"
                | 1 -> "add"
                | 2 -> "dup"
                | 3 -> "pop"
                | 4 -> "eq"
                | _ -> "swap")
              ops)
       in
       match Policy.compile src with
       | Error _ -> true
       | Ok p ->
         let ctx = Policy.ctx_of_table (Hashtbl.create 1) () in
         (match Policy.eval p ctx with Ok _ | Error _ -> true))

let () =
  Alcotest.run "xorp_policy"
    [
      ( "basics",
        [
          Alcotest.test_case "empty program" `Quick test_empty_program;
          Alcotest.test_case "accept/reject" `Quick test_accept_reject;
          Alcotest.test_case "comments" `Quick test_comments_and_blank_lines;
          Alcotest.test_case "arithmetic" `Quick test_arith_and_comparison;
          Alcotest.test_case "load/store" `Quick test_load_store;
          Alcotest.test_case "prefix ops" `Quick test_prefix_ops;
          Alcotest.test_case "contains addr" `Quick test_contains_addr;
          Alcotest.test_case "boolean ops" `Quick test_boolean_ops;
          Alcotest.test_case "jumps and loops" `Quick test_jump_forward_and_back;
          Alcotest.test_case "swap/dup/pop" `Quick test_swap_dup_pop;
        ] );
      ( "safety",
        [
          Alcotest.test_case "step limit" `Quick test_step_limit;
          Alcotest.test_case "compile errors" `Quick test_compile_errors;
          Alcotest.test_case "runtime errors" `Quick test_runtime_errors;
          Alcotest.test_case "read-only attributes" `Quick test_read_only_attrs;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_compile_never_raises; prop_eval_never_raises ] );
    ]
