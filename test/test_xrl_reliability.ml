(* Tests for the XRL reliability layer: caller-side deadlines, the
   settle-once guarantee, bounded retry with backoff, death-driven
   sender cleanup, ordered failure delivery, and chaos-driven
   kill/restart recovery (RIB + FEA). Everything that injects faults
   runs from fixed seeds, so failures replay exactly. *)

let check = Alcotest.check
let addr = Ipv4.of_string_exn
let net = Ipv4net.of_string_exn

let add_xrl a b =
  Xrl.make ~target:"adder" ~interface:"math" ~method_name:"add"
    [ Xrl_atom.u32 "a" a; Xrl_atom.u32 "b" b ]

(* --- deadlines ------------------------------------------------------ *)

let test_timeout_then_late_reply () =
  (* Deadline fires at t=1; the peer replies at t=5. The caller must
     see exactly one callback (Timed_out), the late reply must be
     dropped, and the pending-send accounting must return to zero. *)
  Telemetry.reset ();
  let loop = Eventloop.create () in
  let finder = Finder.create () in
  let target =
    Xrl_router.create finder loop ~class_name:"adder" ()
  in
  Xrl_router.add_handler target ~interface:"math" ~method_name:"add"
    (fun args reply ->
       let a = Xrl_atom.get_u32 args "a" and b = Xrl_atom.get_u32 args "b" in
       ignore
         (Eventloop.after loop 5.0 (fun () ->
              reply Xrl_error.Ok_xrl [ Xrl_atom.u32 "sum" (a + b) ])));
  let caller = Xrl_router.create finder loop ~class_name:"caller" () in
  let calls = ref 0 in
  let outcome = ref Xrl_error.Ok_xrl in
  Xrl_router.send ~deadline:1.0 caller (add_xrl 20 22) (fun err _ ->
      incr calls;
      outcome := err);
  Eventloop.run_until_time loop (Eventloop.now loop +. 10.0);
  check Alcotest.int "exactly one callback" 1 !calls;
  (match !outcome with
   | Xrl_error.Timed_out _ -> ()
   | e -> Alcotest.failf "expected Timed_out, got %s" (Xrl_error.to_string e));
  check Alcotest.int "pending back to zero" 0 (Xrl_router.pending_sends caller);
  check Alcotest.bool "timeout counted" true
    (Telemetry.counter_value (Telemetry.counter "xrl.timeouts") > 0);
  check Alcotest.bool "late reply counted as dropped" true
    (Telemetry.counter_value (Telemetry.counter "xrl.late_replies_dropped") > 0);
  Xrl_router.shutdown target;
  Xrl_router.shutdown caller

let test_call_blocking_never_reply () =
  (* Acceptance criterion: call_blocking against a peer that accepts
     the request but never replies must return Timed_out within the
     deadline — no hang, no leaked pending send. Over real TCP. *)
  let loop = Eventloop.create ~mode:`Real () in
  let finder = Finder.create () in
  let target =
    Xrl_router.create ~families:[ Pf_tcp.family ] finder loop
      ~class_name:"adder" ()
  in
  Xrl_router.add_handler target ~interface:"math" ~method_name:"add"
    (fun _args _reply -> () (* accept, never reply *));
  let caller =
    Xrl_router.create ~families:[ Pf_tcp.family ] ~family_pref:[ "stcp" ]
      finder loop ~class_name:"caller" ()
  in
  let t0 = Unix.gettimeofday () in
  let err, _ = Xrl_router.call_blocking ~deadline:0.3 caller (add_xrl 1 2) in
  let elapsed = Unix.gettimeofday () -. t0 in
  (match err with
   | Xrl_error.Timed_out _ -> ()
   | e -> Alcotest.failf "expected Timed_out, got %s" (Xrl_error.to_string e));
  check Alcotest.bool
    (Printf.sprintf "returned promptly (%.2fs)" elapsed)
    true (elapsed < 5.0);
  check Alcotest.int "pending back to zero" 0 (Xrl_router.pending_sends caller);
  Xrl_router.shutdown target;
  Xrl_router.shutdown caller

(* --- retry ---------------------------------------------------------- *)

let test_retry_until_target_appears () =
  (* The target class registers only at t=0.25; a retrying call issued
     at t=0 must ride its backoff through the Resolve_failed window and
     succeed once the target is up. *)
  Telemetry.reset ();
  let loop = Eventloop.create () in
  let finder = Finder.create () in
  let caller = Xrl_router.create finder loop ~class_name:"caller" () in
  ignore
    (Eventloop.after loop 0.25 (fun () ->
         let target = Xrl_router.create finder loop ~class_name:"adder" () in
         Xrl_router.add_handler target ~interface:"math" ~method_name:"add"
           (fun args reply ->
              let a = Xrl_atom.get_u32 args "a"
              and b = Xrl_atom.get_u32 args "b" in
              reply Xrl_error.Ok_xrl [ Xrl_atom.u32 "sum" (a + b) ])));
  let retry =
    { Xrl_router.default_retry with
      max_attempts = 8; base_delay = 0.05; attempt_timeout = None }
  in
  let result = ref None in
  Xrl_router.send ~retry caller (add_xrl 40 2) (fun err args ->
      result := Some (err, args));
  Eventloop.run_until_time loop (Eventloop.now loop +. 30.0);
  (match !result with
   | Some (err, args) when Xrl_error.is_ok err ->
     check Alcotest.int "sum" 42 (Xrl_atom.get_u32 args "sum")
   | Some (err, _) ->
     Alcotest.failf "expected success, got %s" (Xrl_error.to_string err)
   | None -> Alcotest.fail "call never settled");
  check Alcotest.bool "retries counted" true
    (Telemetry.counter_value (Telemetry.counter "xrl.retries") > 0);
  check Alcotest.int "pending back to zero" 0 (Xrl_router.pending_sends caller)

(* --- shutdown hygiene ----------------------------------------------- *)

let test_shutdown_unhooks_and_is_idempotent () =
  (* Satellite bug: shutdown used to leak the router's Finder
     invalidation hook forever. *)
  let loop = Eventloop.create () in
  let finder = Finder.create () in
  let baseline = Finder.invalidate_hook_count finder in
  let a = Xrl_router.create finder loop ~class_name:"a" () in
  let b = Xrl_router.create finder loop ~class_name:"b" () in
  check Alcotest.int "two hooks registered" (baseline + 2)
    (Finder.invalidate_hook_count finder);
  Xrl_router.shutdown a;
  Xrl_router.shutdown a (* double shutdown must be a no-op *);
  check Alcotest.int "a's hook removed exactly once" (baseline + 1)
    (Finder.invalidate_hook_count finder);
  Xrl_router.shutdown b;
  check Alcotest.int "all hooks removed" baseline
    (Finder.invalidate_hook_count finder)

let test_shutdown_fails_queued_batch_fifo () =
  (* Calls still sitting in the per-destination batch queue at shutdown
     must fail in send (FIFO) order. *)
  let loop = Eventloop.create ~mode:`Real () in
  let finder = Finder.create () in
  let target =
    Xrl_router.create ~families:[ Pf_tcp.family ] finder loop
      ~class_name:"adder" ()
  in
  Xrl_router.add_handler target ~interface:"math" ~method_name:"add"
    (fun args reply ->
       reply Xrl_error.Ok_xrl
         [ Xrl_atom.u32 "sum" (2 * Xrl_atom.get_u32 args "a") ]);
  let caller =
    Xrl_router.create ~families:[ Pf_tcp.family ] ~family_pref:[ "stcp" ]
      ~batching:true finder loop ~class_name:"caller" ()
  in
  let order = ref [] in
  for i = 1 to 5 do
    Xrl_router.send caller (add_xrl i i) (fun err _ ->
        match err with
        | Xrl_error.Send_failed _ -> order := i :: !order
        | e -> Alcotest.failf "call %d: expected Send_failed, got %s" i
                 (Xrl_error.to_string e))
  done;
  (* The batch flush is deferred to the next loop turn, which never
     comes: shutdown first. *)
  Xrl_router.shutdown caller;
  check (Alcotest.list Alcotest.int) "failed in send order" [ 1; 2; 3; 4; 5 ]
    (List.rev !order);
  check Alcotest.int "pending back to zero" 0 (Xrl_router.pending_sends caller);
  Xrl_router.shutdown target

let test_tcp_fail_all_seq_order () =
  (* Satellite bug: pf_tcp failed outstanding calls in Hashtbl.fold
     order. Close a sender with 10 requests in flight; errors must
     arrive in ascending-seq (= send) order. *)
  let loop = Eventloop.create ~mode:`Real () in
  let finder = Finder.create () in
  let target =
    Xrl_router.create ~families:[ Pf_tcp.family ] finder loop
      ~class_name:"adder" ()
  in
  Xrl_router.add_handler target ~interface:"math" ~method_name:"add"
    (fun _args _reply -> () (* hold every reply *));
  let caller =
    Xrl_router.create ~families:[ Pf_tcp.family ] ~family_pref:[ "stcp" ]
      ~batching:false finder loop ~class_name:"caller" ()
  in
  let order = ref [] in
  for i = 1 to 10 do
    (* batching off: each send transmits immediately and registers its
       seq in the transport's outstanding table. *)
    Xrl_router.send caller (add_xrl i i) (fun err _ ->
        match err with
        | Xrl_error.Send_failed _ -> order := i :: !order
        | e -> Alcotest.failf "call %d: expected Send_failed, got %s" i
                 (Xrl_error.to_string e))
  done;
  Xrl_router.shutdown caller;
  check (Alcotest.list Alcotest.int) "failed in seq order"
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ] (List.rev !order);
  Xrl_router.shutdown target

(* --- deferred kill dispatch ----------------------------------------- *)

let test_kill_dispatch_is_deferred () =
  (* Satellite bug: the kill family dispatched synchronously inside the
     caller's send, re-entering the receiver. The signal must land on a
     later event-loop turn. *)
  let loop = Eventloop.create () in
  let finder = Finder.create () in
  let got = ref None in
  let victim =
    Xrl_router.create ~families:[ Pf_intra.family; Pf_kill.family ]
      finder loop ~class_name:"victim" ()
  in
  Pf_kill.make_signalable victim ~on_signal:(fun s -> got := Some s);
  let killer =
    Xrl_router.create ~families:[ Pf_kill.family ] ~family_pref:[ "kill" ]
      finder loop ~class_name:"killer" ()
  in
  let replied = ref false in
  Pf_kill.send_signal killer ~target:"victim" ~signal:"HUP" (fun err ->
      replied := true;
      if not (Xrl_error.is_ok err) then
        Alcotest.failf "signal failed: %s" (Xrl_error.to_string err));
  check Alcotest.bool "not delivered synchronously" true (!got = None);
  Eventloop.run_until_idle loop;
  check (Alcotest.option Alcotest.string) "delivered on a later turn"
    (Some "HUP") !got;
  check Alcotest.bool "reply arrived" true !replied;
  Xrl_router.shutdown victim;
  Xrl_router.shutdown killer

(* --- chaos ---------------------------------------------------------- *)

let test_chaos_duplicates_are_absorbed () =
  (* dup_prob = 1: every reply is delivered twice by the transport. The
     router's settle-once guard must absorb the duplicates. *)
  Telemetry.reset ();
  let loop = Eventloop.create () in
  let finder = Finder.create () in
  let cfg = Pf_chaos.config ~dup_prob:1.0 () in
  let fam = Pf_chaos.wrap ~seed:0xD0_0D ~config:cfg Pf_intra.family in
  let target =
    Xrl_router.create ~families:[ fam ] finder loop ~class_name:"adder" ()
  in
  Xrl_router.add_handler target ~interface:"math" ~method_name:"add"
    (fun args reply ->
       reply Xrl_error.Ok_xrl
         [ Xrl_atom.u32 "sum"
             (Xrl_atom.get_u32 args "a" + Xrl_atom.get_u32 args "b") ]);
  let caller =
    Xrl_router.create ~families:[ fam ] finder loop ~class_name:"caller" ()
  in
  let n = 20 in
  let fired = Array.make (n + 1) 0 in
  for i = 1 to n do
    Xrl_router.send caller (add_xrl i i) (fun err _ ->
        if Xrl_error.is_ok err then fired.(i) <- fired.(i) + 1)
  done;
  Eventloop.run_until_idle loop;
  for i = 1 to n do
    check Alcotest.int (Printf.sprintf "call %d fired once" i) 1 fired.(i)
  done;
  check Alcotest.bool "duplicates were injected" true
    (Telemetry.counter_value (Telemetry.counter "xrl.chaos.dups") > 0);
  check Alcotest.bool "duplicates were dropped" true
    (Telemetry.counter_value (Telemetry.counter "xrl.late_replies_dropped") > 0);
  check Alcotest.int "pending back to zero" 0 (Xrl_router.pending_sends caller)

let test_chaos_drops_recovered_by_retry () =
  (* 30% of requests black-holed; retrying calls with a per-attempt
     timeout must all eventually succeed. Fixed seeds end to end, so
     this runs the same way every time. *)
  let loop = Eventloop.create () in
  let finder = Finder.create () in
  let cfg = Pf_chaos.config ~drop_prob:0.3 () in
  let fam = Pf_chaos.wrap ~seed:0x5EED ~config:cfg Pf_intra.family in
  let target =
    Xrl_router.create ~families:[ fam ] finder loop ~class_name:"adder" ()
  in
  Xrl_router.add_handler target ~interface:"math" ~method_name:"add"
    (fun args reply ->
       reply Xrl_error.Ok_xrl
         [ Xrl_atom.u32 "sum"
             (Xrl_atom.get_u32 args "a" + Xrl_atom.get_u32 args "b") ]);
  let caller =
    Xrl_router.create ~families:[ fam ] finder loop ~class_name:"caller" ()
  in
  let retry =
    { Xrl_router.default_retry with
      max_attempts = 8; base_delay = 0.02; attempt_timeout = Some 0.5 }
  in
  let n = 30 in
  let ok = ref 0 in
  let failures = ref [] in
  for i = 1 to n do
    Xrl_router.send ~retry caller (add_xrl i 1) (fun err args ->
        if Xrl_error.is_ok err && Xrl_atom.get_u32 args "sum" = i + 1 then
          incr ok
        else failures := Xrl_error.to_string err :: !failures)
  done;
  Eventloop.run_until_time loop (Eventloop.now loop +. 120.0);
  check (Alcotest.list Alcotest.string) "no failures" [] !failures;
  check Alcotest.int "all calls succeeded" n !ok;
  check Alcotest.int "pending back to zero" 0 (Xrl_router.pending_sends caller)

(* --- FEA kill/restart under chaos ----------------------------------- *)

let fib_signature fea =
  List.sort compare
    (List.map
       (fun (e : Fib.entry) ->
          (Ipv4net.to_string e.Fib.net, Ipv4.to_string e.Fib.nexthop))
       (Fib.entries (Fea.fib fea)))

(* Drive the same adds-only route load through RIB → FEA, killing and
   restarting the FEA mid-load when [kill] is set, over a chaos-wrapped
   transport when [chaos] is set. Returns the surviving FEA's FIB. *)
let run_fea_scenario ~chaos ~kill () =
  let loop = Eventloop.create () in
  let finder = Finder.create () in
  let fam =
    if chaos then
      Pf_chaos.wrap ~seed:0xC4A05
        ~config:
          (Pf_chaos.config ~drop_prob:0.15 ~dup_prob:0.1 ~delay:0.002
             ~delay_jitter:0.004 ())
        Pf_intra.family
    else Pf_intra.family
  in
  let fea = ref (Fea.create ~families:[ fam ] finder loop ()) in
  let rib = Rib.create ~families:[ fam ] finder loop () in
  let add i =
    match
      Rib.add_route rib ~protocol:"static"
        ~net:(net (Printf.sprintf "10.%d.%d.0/24" (i / 256) (i mod 256)))
        ~nexthop:(addr "192.0.2.1") ()
    with
    | Ok () -> ()
    | Error e -> Alcotest.failf "add %d: %s" i e
  in
  for i = 1 to 20 do add i done;
  (* Let some (not necessarily all) updates reach the FEA... *)
  Eventloop.run_until_time loop (Eventloop.now loop +. 0.01);
  if kill then Fea.shutdown !fea;
  (* ...then keep loading while it is down. *)
  for i = 21 to 40 do add i done;
  Eventloop.run_until_time loop (Eventloop.now loop +. 0.05);
  if kill then fea := Fea.create ~families:[ fam ] finder loop ();
  (* Converge: generous horizon so every retry/backoff chain and the
     rebirth replay complete (simulated time is free). *)
  Eventloop.run_until_time loop (Eventloop.now loop +. 300.0);
  let signature = fib_signature !fea in
  Rib.shutdown rib;
  Fea.shutdown !fea;
  signature

let test_fea_kill_restart_converges () =
  (* Acceptance criterion: kill the FEA mid-load, restart it, and the
     RIB must converge the new instance's FIB to exactly what a
     fault-free run produces — despite drops, dups and delays. *)
  let expected = run_fea_scenario ~chaos:false ~kill:false () in
  check Alcotest.int "baseline has all routes" 40 (List.length expected);
  let faulted = run_fea_scenario ~chaos:true ~kill:true () in
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
    "restarted FEA converged to the no-fault FIB" expected faulted

let test_fea_death_holds_updates () =
  (* Without chaos: updates made while no FEA is live are held, not
     lost — and the rebirth replay installs the full FIB. *)
  let loop = Eventloop.create () in
  let finder = Finder.create () in
  let fea = Fea.create finder loop () in
  let rib = Rib.create finder loop () in
  (match
     Rib.add_route rib ~protocol:"static" ~net:(net "10.0.1.0/24")
       ~nexthop:(addr "192.0.2.1") ()
   with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  Eventloop.run_until_idle loop;
  check Alcotest.int "first route installed" 1 (Fib.size (Fea.fib fea));
  Fea.shutdown fea;
  (match
     Rib.add_route rib ~protocol:"static" ~net:(net "10.0.2.0/24")
       ~nexthop:(addr "192.0.2.1") ()
   with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  Eventloop.run_until_time loop (Eventloop.now loop +. 30.0);
  let fea2 = Fea.create finder loop () in
  Eventloop.run_until_time loop (Eventloop.now loop +. 30.0);
  check Alcotest.int "replay installed the full FIB" 2
    (Fib.size (Fea.fib fea2));
  Rib.shutdown rib;
  Fea.shutdown fea2

let () =
  Alcotest.run "xrl_reliability"
    [ ( "deadline",
        [ Alcotest.test_case "timeout then late reply" `Quick
            test_timeout_then_late_reply;
          Alcotest.test_case "call_blocking never-reply peer" `Quick
            test_call_blocking_never_reply ] );
      ( "retry",
        [ Alcotest.test_case "retry until target appears" `Quick
            test_retry_until_target_appears ] );
      ( "shutdown",
        [ Alcotest.test_case "unhooks finder, idempotent" `Quick
            test_shutdown_unhooks_and_is_idempotent;
          Alcotest.test_case "queued batch fails FIFO" `Quick
            test_shutdown_fails_queued_batch_fifo;
          Alcotest.test_case "tcp fail_all in seq order" `Quick
            test_tcp_fail_all_seq_order ] );
      ( "kill",
        [ Alcotest.test_case "dispatch is deferred" `Quick
            test_kill_dispatch_is_deferred ] );
      ( "chaos",
        [ Alcotest.test_case "duplicates absorbed" `Quick
            test_chaos_duplicates_are_absorbed;
          Alcotest.test_case "drops recovered by retry" `Quick
            test_chaos_drops_recovered_by_retry ] );
      ( "fea-lifecycle",
        [ Alcotest.test_case "death holds updates, rebirth replays" `Quick
            test_fea_death_holds_updates;
          Alcotest.test_case "kill/restart converges under chaos" `Quick
            test_fea_kill_restart_converges ] ) ]
