(* docs/XRL.md claims to document every registered XRL method. This
   test holds it to that: instantiate every component, read each
   router's live registrations via [Xrl_router.registered_methods],
   and diff the two sets. A handler added without documentation — or
   documentation for a method that no longer exists — fails here. *)

(* cwd is the test directory under `dune runtest` but the workspace
   root under `dune exec`; search upward for the doc. *)
let doc_path =
  let candidates =
    [ "docs/XRL.md"; "../docs/XRL.md"; "../../docs/XRL.md";
      "../../../docs/XRL.md" ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> Alcotest.fail "docs/XRL.md not found from the test directory"

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* A documented method id is an inline-code span of the exact shape
   interface/version/name. Other backticked text (paths, signatures,
   URLs) never matches the three-part identifier/version/identifier
   shape, so a plain scan over backtick spans suffices. *)
let is_ident s =
  s <> ""
  && String.for_all
       (fun c ->
          (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
          || (c >= '0' && c <= '9') || c = '_')
       s

let is_version s =
  s <> "" && String.for_all (fun c -> (c >= '0' && c <= '9') || c = '.') s

let is_method_id s =
  match String.split_on_char '/' s with
  | [ iface; version; name ] ->
    is_ident iface && is_version version && is_ident name
  | _ -> false

let backtick_spans text =
  let spans = ref [] in
  let buf = Buffer.create 64 in
  let inside = ref false in
  String.iter
    (fun c ->
       if c = '`' then begin
         if !inside then spans := Buffer.contents buf :: !spans;
         Buffer.clear buf;
         inside := not !inside
       end
       else if !inside then Buffer.add_char buf c)
    text;
  List.rev !spans

let documented_ids text =
  backtick_spans text |> List.filter is_method_id |> List.sort_uniq compare

let live_ids () =
  let loop = Eventloop.create () in
  let finder = Finder.create () in
  let netsim = Netsim.create loop in
  let fea = Fea.create ~netsim finder loop () in
  let rib = Rib.create finder loop () in
  let bgp =
    Bgp_process.create finder loop ~netsim ~local_as:65000
      ~bgp_id:(Ipv4.of_string_exn "10.0.0.1") ()
  in
  let rip =
    Rip_process.create finder loop (Rip_process.default_config ~ifaces:[])
  in
  let ospf =
    Ospf_process.create finder loop
      (Ospf_process.default_config
         ~router_id:(Ipv4.of_string_exn "10.0.0.1") ~ifaces:[] ())
  in
  let finder_router = Finder_xrl.expose finder loop in
  let telemetry_router = Telemetry_xrl.expose finder loop in
  let signalable = Xrl_router.create finder loop ~class_name:"victim" () in
  Pf_kill.make_signalable signalable ~on_signal:(fun _ -> ());
  List.concat_map Xrl_router.registered_methods
    [ Fea.xrl_router fea; Rib.xrl_router rib; Bgp_process.xrl_router bgp;
      Rip_process.xrl_router rip; Ospf_process.xrl_router ospf;
      finder_router; telemetry_router; signalable ]
  |> List.sort_uniq compare

let test_doc_matches_registrations () =
  let documented = documented_ids (read_file doc_path) in
  let live = live_ids () in
  let missing = List.filter (fun m -> not (List.mem m documented)) live in
  let stale = List.filter (fun m -> not (List.mem m live)) documented in
  if missing <> [] then
    Alcotest.failf "registered but not in docs/XRL.md: %s"
      (String.concat ", " missing);
  if stale <> [] then
    Alcotest.failf "in docs/XRL.md but not registered: %s"
      (String.concat ", " stale);
  Alcotest.(check bool) "non-empty" true (List.length live > 20)

(* The hand-written IDL specs must agree with what components actually
   register for the interfaces they declare. *)
let test_idl_covers_registrations () =
  let live = live_ids () in
  let undeclared =
    List.filter
      (fun mid ->
         match String.split_on_char '/' mid with
         | [ iface; version; name ] -> (
             match Xrl_idl.find_interface iface with
             | None -> false (* interface has no IDL spec: fine *)
             | Some i ->
               not
                 (version = i.Xrl_idl.i_version
                  && List.exists
                       (fun m -> m.Xrl_idl.m_name = name)
                       i.Xrl_idl.i_methods))
         | _ -> false)
      live
  in
  if undeclared <> [] then
    Alcotest.failf "registered but missing from the Xrl_idl spec: %s"
      (String.concat ", " undeclared)

let () =
  Alcotest.run "xorp_xrl_doc"
    [ ( "reference",
        [ Alcotest.test_case "docs/XRL.md matches live registrations" `Quick
            test_doc_matches_registrations;
          Alcotest.test_case "IDL specs cover live registrations" `Quick
            test_idl_covers_registrations ] ) ]
