(* camlXORP benchmark harness: regenerates every table and figure in
   the paper's evaluation (§8), plus ablations and micro-benchmarks.

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- fig9    # one experiment
     dune exec bench/main.exe -- list    # what exists

   See DESIGN.md for the experiment index and EXPERIMENTS.md for
   recorded paper-vs-measured results. *)

let experiments =
  [ ("fig9", "XRL throughput: intra/TCP/UDP vs #args (§8.1, Figure 9)",
     Fig9.run);
    ("fig10", "route latency, empty table (§8.2, Figure 10)",
     Fig_latency.run_fig10);
    ("fig11", "route latency, 146515 routes, same peering (Figure 11)",
     Fig_latency.run_fig11);
    ("fig12", "route latency, 146515 routes, different peering (Figure 12)",
     Fig_latency.run_fig12);
    ("pipeline",
     "figures 10-12 + occupancy/during-load/churn sweep, emits BENCH_pipeline.json",
     Fig_latency.run_all);
    ("domains",
     "full-table load throughput vs shard-worker domains {1,2,4,8}",
     Fig_latency.run_domains);
    ("domains-smoke",
     "CI smoke: sharded load at 4 domains with a routes/s floor gate",
     Fig_latency.run_domains_smoke);
    ("fig13", "event-driven vs 30s scanners (Figure 13)", Fig13.run);
    ("converge",
     "network-wide convergence after a link flap, {3,10,30,100} routers, \
      emits BENCH_converge.json",
     Converge.run);
    ("converge-smoke",
     "CI smoke: 30-router flap re-convergence under a wall budget",
     Converge.smoke);
    ("forward",
     "packets/s through the element-graph data plane, 146515-route FIB, \
      emits BENCH_forward.json",
     Forward.run);
    ("memory", "full-table memory footprint (§5.1)", Memory.run);
    ("ablation-pipeline", "A1: TCP pipeline window sweep",
     Ablations.run_pipeline);
    ("ablation-stages", "A2: staged vs monolithic processing",
     Ablations.run_stages);
    ("ablation-slices", "A3: deletion slice size vs event latency",
     Ablations.run_slices);
    ("telemetry", "telemetry on/off overhead through the BGP pipeline",
     Telemetry_overhead.run);
    ("micro", "Bechamel micro-benchmarks of hot primitives", Micro.run);
    ("smoke", "CI smoke: short fig9 transaction + batched transports",
     Fig9.smoke) ]

let list_them () =
  Printf.printf "available experiments:\n";
  List.iter
    (fun (name, descr, _) -> Printf.printf "  %-18s %s\n" name descr)
    experiments;
  Printf.printf "  %-18s %s\n" "all" "run everything (default)"

let run_one name =
  match List.find_opt (fun (n, _, _) -> n = name) experiments with
  | Some (_, _, f) -> f ()
  | None ->
    Printf.eprintf "unknown experiment %S\n" name;
    list_them ();
    exit 1

let () =
  Printf.printf "camlXORP %s benchmark harness (paper: NSDI 2005)\n%!"
    Xorp.version;
  match Array.to_list Sys.argv with
  | _ :: [] | _ :: "all" :: _ ->
    (* "all" skips the aggregates already covered elsewhere: "pipeline"
       re-runs figs 10-12 plus the domains sweep, and the smoke entries
       exist for CI. *)
    List.iter
      (fun (name, _, f) ->
         if
           name <> "pipeline" && name <> "smoke" && name <> "domains"
           && name <> "domains-smoke" && name <> "converge-smoke"
         then (ignore name; f ()))
      experiments
  | _ :: "list" :: _ -> list_them ()
  | _ :: names -> List.iter run_one names
  | [] -> ()
