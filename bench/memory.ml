(* The §5.1 memory claim: "a XORP router holding a full backbone
   routing table of about 150,000 routes requires about 120 MB for BGP
   and 60 MB for the RIB, which is simply not a problem on any recent
   hardware." The figures quantify the cost of duplicating state
   between stages, which the staged design accepts for independence.

   We measure the live-heap growth attributable to BGP's stage network
   (PeerIn store + resolver store + decision winners + Adj-RIB-Out) and
   to the RIB's stages when loaded with the synthetic 146,515-route
   feed. *)

open Bench_util

let live_mb () =
  Gc.full_major ();
  let st = Gc.stat () in
  float_of_int (st.Gc.live_words * (Sys.word_size / 8)) /. 1024.0 /. 1024.0

let run () =
  header "Memory: full backbone table (paper §5.1 claim)";
  paper_note
    [ "Paper: ~150k routes => ~120 MB in BGP, ~60 MB in the RIB (C++,";
      "per-stage duplication). We measure live-heap growth for the same";
      "route volume; OCaml values differ in size, the shape claim is that";
      "BGP > RIB (more stages hold copies) and both are laptop-trivial." ];
  let loop = Eventloop.create () in
  let netsim = Netsim.create loop in
  let feed = Feed.generate Feed.paper_table_size in
  let base = live_mb () in
  (* BGP side: standalone full pipeline with one peer and one probe. *)
  let bgp = standalone_bgp ~loop ~netsim ~local_as:65000 ~bgp_id:(addr "10.0.0.1") () in
  Bgp_process.add_peer bgp
    { (default_peer ~peer_addr:(addr "10.0.0.11") ~local_addr:(addr "10.0.0.1")
         ~peer_as:65100)
      with Bgp_process.passive = Some true };
  Bgp_process.start bgp;
  let injector =
    Injector.create ~loop ~netsim ~local_addr:(addr "10.0.0.11")
      ~local_as:65100 ~peer_addr:(addr "10.0.0.1") ~peer_as:65000 ()
  in
  Injector.connect injector;
  Eventloop.run ~until:(fun () -> Injector.established injector) loop;
  Injector.announce injector ~nexthop:(addr "10.0.0.11")
    (Array.to_list (Array.map (fun e -> e.Feed.net) feed));
  Eventloop.run
    ~until:(fun () -> Bgp_process.route_count bgp >= Feed.paper_table_size)
    loop;
  let after_bgp = live_mb () in
  (* RIB side: load the same table directly. *)
  let finder2 = Finder.create () in
  let rib = Rib.create ~send_to_fea:false finder2 loop () in
  Array.iter
    (fun e ->
       ignore
         (Rib.add_route rib ~protocol:"static" ~net:e.Feed.net
            ~nexthop:e.Feed.nexthop ()))
    feed;
  Eventloop.run_until_idle loop;
  let after_rib = live_mb () in
  let bgp_mb = after_bgp -. base in
  let rib_mb = after_rib -. after_bgp in
  pf "\nroutes loaded:        %d\n" Feed.paper_table_size;
  pf "BGP stage network:    %.1f MB   (paper: ~120 MB)\n" bgp_mb;
  pf "RIB stage network:    %.1f MB   (paper: ~60 MB)\n" rib_mb;
  pf "BGP/RIB ratio:        %.2fx  (paper: 2.0x — BGP duplicates more)\n"
    (bgp_mb /. rib_mb);
  pf "per route (BGP):      %.0f bytes\n"
    (bgp_mb *. 1024.0 *. 1024.0 /. float_of_int Feed.paper_table_size);
  Bgp_process.shutdown bgp;
  Rib.shutdown rib
