(* Figures 10, 11, 12 — and the conditions around them: route
   propagation latency through the eight profile points of §8.2,
   measured on the full stack (BGP + RIB + FEA wired through XRLs)
   with a real clock.

   - Figure 10: BGP holds no other routes (0% occupancy).
   - Figure 11: BGP preloaded with the synthetic 146,515-route backbone
     feed; test routes arrive on the same peering as the feed.
   - Figure 12: same preload; test routes arrive on a different peering.
   - occupancy-50: the sweep point between Figures 10 and 11.
   - during-load: test routes measured while the full table is still
     streaming in — the latency a flap sees mid-convergence.
   - churn: full table plus sustained background flapping on the feed
     peering while test routes are measured.

   Methodology follows the paper: introduce fresh test routes one at a
   time, trace each through the pipeline, report per-point latency
   relative to "Entering BGP". The paper keeps one route installed
   during the empty-table test "to prevent additional interactions
   with the RIB that typically would not happen with the full routing
   table"; we do the same. Deviation: the paper paces routes at one
   per two seconds; we pace at 50 ms to keep the bench short — pacing
   only isolates the samples.

   Results land on stdout and in BENCH_pipeline.json. *)

open Bench_util

let points =
  [ (Bgp_process.pp_entering, "Entering BGP");
    (Bgp_process.pp_queued_rib, "Queued for transmission to the RIB");
    (Bgp_process.pp_sent_rib, "Sent to RIB");
    (Rib.pp_arrived, "Arriving at the RIB");
    (Rib.pp_queued_fea, "Queued for transmission to the FEA");
    (Rib.pp_sent_fea, "Sent to the FEA");
    (Fea.pp_arrived, "Arriving at FEA");
    (Fea.pp_kernel, "Entering kernel") ]

(* --- latency statistics ---------------------------------------------- *)

type pstats = {
  n : int;
  avg : float;
  sd : float;
  min_v : float;
  max_v : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then nan
  else begin
    (* nearest-rank on a sorted array *)
    let idx = int_of_float (ceil (q /. 100.0 *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) idx))
  end

let pstats_of deltas =
  let st = stats deltas in
  let sorted = Array.of_list deltas in
  Array.sort compare sorted;
  { n = Array.length sorted; avg = st.avg; sd = st.sd; min_v = st.min_v;
    max_v = st.max_v; p50 = percentile sorted 50.0;
    p90 = percentile sorted 90.0; p99 = percentile sorted 99.0 }

(* --- the stack under test -------------------------------------------- *)

type setup = {
  loop : Eventloop.t;
  profiler : Profiler.t;
  fea : Fea.t;
  rib : Rib.t;
  bgp : Bgp_process.t;
  pool : Shard.t option;
  feed_peer : Injector.t;
  test_peer : Injector.t;
  feed : Feed.entry array;
  (* Monotonically increasing test-route number, so every measurement
     phase on a shared stack uses fresh prefixes (and fresh profile
     payload tags). *)
  mutable next_test : int;
}

(* Unique /24s well away from the feed (which stays under 224/8). *)
let test_net i = Ipv4net.make (Ipv4.of_octets 240 (i / 250) (i mod 250) 0) 24

(* Build the stack with both peerings established and the paper's one
   steady route installed. The feed is generated here but not yet
   announced; phases announce it when (and while) they need it.
   [domains > 1] runs the decision and arbitration stages sharded
   across that many worker domains (docs/CONCURRENCY.md). *)
let build ?(domains = 1) () =
  let loop = Eventloop.create ~mode:`Real () in
  let netsim = Netsim.create ~default_latency:0.0005 loop in
  let finder = Finder.create () in
  let profiler = Profiler.create loop in
  let fea = Fea.create ~profiler finder loop () in
  let pool =
    if domains > 1 then Some (Shard.create ~shards:domains loop ()) else None
  in
  let rib =
    Rib.create ~profiler
      ?shard_dispatch:(Option.map Shard.rib_dispatch pool)
      finder loop ()
  in
  Option.iter (fun p -> Shard.connect_rib p rib) pool;
  (* The peering LAN is reachable: BGP nexthops resolve. *)
  Result.get_ok
    (Rib.add_route rib ~protocol:"connected" ~net:(net "10.0.0.0/24")
       ~nexthop:Ipv4.zero ());
  let bgp =
    Bgp_process.create ~profiler
      ?shard_dispatch:(Option.map Shard.bgp_dispatch pool)
      finder loop ~netsim ~local_as:65000 ~bgp_id:(addr "10.0.0.1") ()
  in
  Option.iter (fun p -> Shard.connect_bgp p bgp) pool;
  let add_peer peer_addr =
    Bgp_process.add_peer bgp
      { (default_peer ~peer_addr:(addr peer_addr)
           ~local_addr:(addr "10.0.0.1") ~peer_as:65100)
        with Bgp_process.passive = Some true }
  in
  add_peer "10.0.0.11";
  add_peer "10.0.0.12";
  Bgp_process.start bgp;
  let injector local =
    Injector.create ~loop ~netsim ~local_addr:(addr local) ~local_as:65100
      ~peer_addr:(addr "10.0.0.1") ~peer_as:65000 ()
  in
  let feed_peer = injector "10.0.0.11" in
  let test_peer = injector "10.0.0.12" in
  Injector.connect feed_peer;
  Injector.connect test_peer;
  run_real_until loop
    (fun () ->
       Injector.established feed_peer && Injector.established test_peer)
    ~timeout_s:20.0 "session establishment";
  (* The paper's steady single route for the empty-table case. Kept
     outside the synthetic feed's 1.x-223.x space so it cannot collide
     with a preloaded prefix. *)
  Injector.announce test_peer ~nexthop:(addr "10.0.0.11")
    [ net "250.0.2.0/24" ];
  let s =
    { loop; profiler; fea; rib; bgp; pool; feed_peer; test_peer;
      feed = Feed.generate Feed.paper_table_size; next_test = 0 }
  in
  run_real_until loop
    (fun () ->
       Bgp_process.route_count bgp >= 1 && Rib.route_count rib >= 2
       && Fib.size (Fea.fib fea) >= 2)
    ~timeout_s:60.0 "initial settling";
  s

let settled s ~preload =
  Bgp_process.route_count s.bgp > preload
  && Bgp_process.inbound_backlog s.bgp = 0
  && Bgp_process.fanout_queue_length s.bgp = 0
  && Rib.fea_queue_length s.rib = 0
  && Rib.route_count s.rib >= preload + 2
  && Fib.size (Fea.fib s.fea) >= preload + 2

type load_timing = { routes : int; bgp_s : float; settled_s : float }

(* Announce the first [n] feed routes and wait for the whole stack to
   settle: BGP's fanout drained, the RIB holding every winner plus the
   connected route, and the FIB in sync. *)
let preload s n =
  let t0 = Unix.gettimeofday () in
  let nets =
    Array.to_list (Array.map (fun e -> e.Feed.net) (Array.sub s.feed 0 n))
  in
  Injector.announce s.feed_peer ~nexthop:(addr "10.0.0.11") nets;
  run_real_until s.loop
    (fun () -> Bgp_process.route_count s.bgp >= n)
    ~timeout_s:600.0 "preload";
  let bgp_s = Unix.gettimeofday () -. t0 in
  run_real_until s.loop
    (fun () -> settled s ~preload:n)
    ~timeout_s:600.0 "stack settling";
  { routes = n; bgp_s; settled_s = Unix.gettimeofday () -. t0 }

let teardown s =
  Option.iter Shard.shutdown s.pool;
  Bgp_process.shutdown s.bgp;
  Rib.shutdown s.rib;
  Fea.shutdown s.fea;
  ignore s.feed_peer;
  ignore s.test_peer

(* --- domains sweep ---------------------------------------------------- *)

type domains_point = { d_domains : int; d_load : load_timing }

let load_rps (l : load_timing) = float_of_int l.routes /. l.settled_s

(* Full-table load timed at each shard-worker count. domains=1 is the
   unsharded pipeline — the exact code path of every other phase in
   this bench — so the sweep's first row doubles as a baseline check. *)
let run_domains_points ns =
  header "Domains sweep: full-table load vs shard-worker domains";
  paper_note
    [ "Not a paper figure: the decision + arbitration stages sharded by";
      "prefix range across OCaml domains (docs/CONCURRENCY.md).";
      "domains=1 is the single-domain pipeline unchanged. Speedup needs";
      "real cores; on a single-core container the sweep instead prices";
      "the cross-domain message passing, which must stay moderate." ];
  List.map
    (fun d ->
       let s = build ~domains:d () in
       let load = preload s Feed.paper_table_size in
       pf
         "domains %d: %d routes, BGP in %.2fs, settled through FIB in %.2fs (%.0f routes/s)\n"
         d load.routes load.bgp_s load.settled_s (load_rps load);
       teardown s;
       { d_domains = d; d_load = load })
    ns

(* --- tracing test routes through the profile points ------------------ *)

(* Incremental record consumption: the profiler's ring is drained into
   a hash index as the measurement runs, so bulk phases (during-load,
   churn) can log millions of feed records without evicting the test
   routes' — and extraction is O(records), not O(routes x records) as
   a per-route scan over the ring would be. *)
type tracer = {
  expected : (string, unit) Hashtbl.t; (* payload tags of test routes *)
  times : (string * string, float) Hashtbl.t; (* (tag, point) -> first time *)
}

let make_tracer ~base ~n =
  let expected = Hashtbl.create (2 * n) in
  for i = base + 1 to base + n do
    Hashtbl.replace expected ("add " ^ Ipv4net.to_string (test_net i)) ()
  done;
  { expected; times = Hashtbl.create (16 * n) }

let absorb tr records =
  List.iter
    (fun (r : Profiler.record) ->
       if Hashtbl.mem tr.expected r.payload then begin
         let key = (r.payload, r.point) in
         if not (Hashtbl.mem tr.times key) then
           Hashtbl.add tr.times key r.time
       end)
    records

(* Per-route deltas relative to "Entering BGP", as per-point lists. *)
let extract tr ~base ~n =
  let per_point = Hashtbl.create 16 in
  let traced = ref 0 in
  for i = base + 1 to base + n do
    let tag = "add " ^ Ipv4net.to_string (test_net i) in
    match Hashtbl.find_opt tr.times (tag, Bgp_process.pp_entering) with
    | None -> ()
    | Some t0 ->
      let complete = ref true in
      List.iter
        (fun (point, _) ->
           if point <> Bgp_process.pp_entering then
             match Hashtbl.find_opt tr.times (tag, point) with
             | Some tp ->
               let ms = (tp -. t0) *. 1000.0 in
               let cur =
                 Option.value (Hashtbl.find_opt per_point point) ~default:[]
               in
               Hashtbl.replace per_point point (ms :: cur)
             | None -> complete := false)
        points;
      if !complete then incr traced
  done;
  let rows =
    List.filter_map
      (fun (point, label) ->
         if point = Bgp_process.pp_entering then None
         else
           Some
             ( point, label,
               pstats_of
                 (Option.value (Hashtbl.find_opt per_point point) ~default:[])
             ))
      points
  in
  (!traced, rows)

(* Sleep by arming a loop timer, not by polling a wall-clock deadline:
   with no timer due, the loop's idle poll sleeps in 100 ms slices, and
   a predicate-only wait would stretch every 35 ms pacing gap to
   ~100 ms (quadrupling the bench's wall time). *)
let wall_sleep loop seconds =
  let woke = ref false in
  ignore (Eventloop.after loop seconds (fun () -> woke := true));
  Eventloop.run ~until:(fun () -> !woke) loop

(* --- background churn ------------------------------------------------ *)

(* Rotates through the loaded feed withdrawing small batches and
   re-announcing them shortly after, producing a steady stream of real
   route changes through the whole pipeline while test routes are
   measured. Each [step] call withdraws one batch and re-announces the
   batch withdrawn two steps earlier. *)
type churner = {
  s : setup;
  batch : int;
  mutable cursor : int;
  pending : Ipv4net.t list Queue.t; (* withdrawn, awaiting re-announce *)
}

let make_churner s ~batch = { s; batch; cursor = 0; pending = Queue.create () }

let churn_step c =
  let n = Array.length c.s.feed in
  let nets =
    List.init c.batch (fun i -> c.s.feed.((c.cursor + i) mod n).Feed.net)
  in
  c.cursor <- (c.cursor + c.batch) mod n;
  Injector.withdraw c.s.feed_peer nets;
  Queue.push nets c.pending;
  if Queue.length c.pending > 2 then
    Injector.announce c.s.feed_peer ~nexthop:(addr "10.0.0.11")
      (Queue.pop c.pending)

let churn_finish c =
  (* Restore whatever is still withdrawn so the table is whole again. *)
  Queue.iter
    (fun nets ->
       Injector.announce c.s.feed_peer ~nexthop:(addr "10.0.0.11") nets)
    c.pending;
  Queue.clear c.pending

(* --- one measurement phase ------------------------------------------- *)

type experiment = {
  name : string;
  descr : string;
  preload_n : int;
  occupancy_pct : int;
  peering : string; (* which peering carries the test routes *)
  churn_rps : int;
  during_load : bool;
  n_routes : int;
  traced : int;
  rows : (string * string * pstats) list;
}

(* Flap [n] fresh test routes one at a time on [peer], tracing each
   through all eight points. [churn], when given, is stepped twice per
   flap cycle. [keep_going] can extend the run (during-load measures
   until the table finishes loading). *)
let flap_routes s ~peer ~n ?churn ?(keep_going = fun () -> false) () =
  let base = s.next_test in
  (* Reserve generously: keep_going may extend past n. *)
  let cap = n + 2000 in
  s.next_test <- s.next_test + cap;
  let tr = make_tracer ~base ~n:cap in
  ignore (Profiler.drain s.profiler);
  Profiler.enable_all s.profiler;
  let flapped = ref 0 in
  let flap_one i =
    let net = test_net i in
    (match churn with Some c -> churn_step c | None -> ());
    Injector.announce peer ~nexthop:(addr "10.0.0.11") [ net ];
    wall_sleep s.loop 0.035;
    absorb tr (Profiler.drain s.profiler);
    (match churn with Some c -> churn_step c | None -> ());
    Injector.withdraw peer [ net ];
    wall_sleep s.loop 0.015;
    absorb tr (Profiler.drain s.profiler);
    incr flapped
  in
  let i = ref 1 in
  while !i <= n || (!i <= cap && keep_going ()) do
    flap_one (base + !i);
    incr i
  done;
  wall_sleep s.loop 0.3;
  absorb tr (Profiler.drain s.profiler);
  Profiler.disable_all s.profiler;
  (match churn with Some c -> churn_finish c | None -> ());
  let traced, rows = extract tr ~base ~n:!flapped in
  (!flapped, traced, rows)

let print_rows ~traced ~n_routes rows =
  pf "\ntraced %d/%d test routes end to end\n" traced n_routes;
  pf "%-38s %8s %8s %8s %8s %8s %8s  (ms)\n" "Profile Point" "Avg" "SD" "P50"
    "P90" "P99" "Max";
  pf "%-38s %8s %8s %8s %8s %8s %8s\n" "Entering BGP" "-" "-" "-" "-" "-" "-";
  List.iter
    (fun (_, label, st) ->
       pf "%-38s %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f\n" label st.avg st.sd
         st.p50 st.p90 st.p99 st.max_v)
    rows

(* CI gate on head-of-line blocking: the median flap measured while the
   full table streams in must stay within [during_gate_ratio] x the
   idle median, or under an absolute floor. The floor covers loop-turn
   granularity: the flap crosses the pipeline in a handful of turns,
   each of which legitimately carries one bounded bulk slice of the
   load, so a few milliseconds is the physics of sharing the loop —
   what the gate must catch is the pre-lane behaviour, where the flap
   queued behind the entire remaining table (p50 in the seconds). The
   floor is ~7x the p50 measured on a loaded container, the same
   headroom policy as the 60 s full-load budget. *)
let during_gate_ratio = 10.0
let during_gate_floor_ms = 10.0

(* --- JSON output ----------------------------------------------------- *)

let emit_json ~path ~load ?gate ?domains_sweep experiments =
  let buf = Buffer.create 4096 in
  let bpf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  bpf "{\n";
  bpf "  \"bench\": \"pipeline\",\n";
  bpf "  \"table_size\": %d,\n" Feed.paper_table_size;
  bpf "  \"pacing_ms\": 50,\n";
  (match gate with
   | Some (idle_p50, during_p50, limit) ->
     bpf
       "  \"during_load_gate\": { \"idle_p50_ms\": %.4f, \"during_p50_ms\": %.4f, \"limit_ms\": %.4f, \"ratio\": %.1f, \"floor_ms\": %.1f },\n"
       idle_p50 during_p50 limit during_gate_ratio during_gate_floor_ms
   | None -> ());
  bpf "  \"paper_ms\": { \"fig10_kernel_avg\": 3.374, \"fig11_kernel_avg\": 3.632, \"fig12_kernel_avg\": 4.417 },\n";
  (match load with
   | Some l ->
     bpf
       "  \"initial_load\": { \"routes\": %d, \"bgp_s\": %.3f, \"settled_s\": %.3f, \"routes_per_s\": %.0f },\n"
       l.routes l.bgp_s l.settled_s
       (float_of_int l.routes /. l.settled_s)
   | None -> ());
  (match domains_sweep with
   | Some pts ->
     bpf "  \"domains_sweep\": [\n";
     let n_pts = List.length pts in
     List.iteri
       (fun i p ->
          bpf
            "    { \"domains\": %d, \"routes\": %d, \"bgp_s\": %.3f, \"settled_s\": %.3f, \"routes_per_s\": %.0f }%s\n"
            p.d_domains p.d_load.routes p.d_load.bgp_s p.d_load.settled_s
            (load_rps p.d_load)
            (if i = n_pts - 1 then "" else ","))
       pts;
     bpf "  ],\n"
   | None -> ());
  bpf "  \"experiments\": [\n";
  List.iteri
    (fun i e ->
       bpf "    {\n";
       bpf "      \"name\": %S,\n" e.name;
       bpf "      \"description\": %S,\n" e.descr;
       bpf "      \"preload\": %d,\n" e.preload_n;
       bpf "      \"occupancy_pct\": %d,\n" e.occupancy_pct;
       bpf "      \"peering\": %S,\n" e.peering;
       bpf "      \"churn_rps\": %d,\n" e.churn_rps;
       bpf "      \"during_load\": %b,\n" e.during_load;
       bpf "      \"routes\": %d,\n" e.n_routes;
       bpf "      \"traced\": %d,\n" e.traced;
       bpf "      \"points\": [\n";
       let n_rows = List.length e.rows in
       List.iteri
         (fun j (point, label, st) ->
            bpf
              "        { \"point\": %S, \"label\": %S, \"samples\": %d, \"avg_ms\": %.4f, \"sd_ms\": %.4f, \"min_ms\": %.4f, \"max_ms\": %.4f, \"p50_ms\": %.4f, \"p90_ms\": %.4f, \"p99_ms\": %.4f }%s\n"
              point label st.n st.avg st.sd st.min_v st.max_v st.p50 st.p90
              st.p99
              (if j = n_rows - 1 then "" else ","))
         e.rows;
       bpf "      ]\n";
       bpf "    }%s\n" (if i = List.length experiments - 1 then "" else ","))
    experiments;
  bpf "  ]\n";
  bpf "}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  pf "\nwrote %s\n" path

(* --- the experiments ------------------------------------------------- *)

let kernel_avg e =
  match
    List.find_opt (fun (point, _, _) -> point = Fea.pp_kernel) e.rows
  with
  | Some (_, _, st) -> st.avg
  | None -> nan

let kernel_p50 e =
  match
    List.find_opt (fun (point, _, _) -> point = Fea.pp_kernel) e.rows
  with
  | Some (_, _, st) -> st.p50
  | None -> nan

(* Single-figure entry points for the bench registry. *)

let run_single ~title ~paper_rows ~preload_n ~same_peering () =
  header title;
  paper_note paper_rows;
  let s = build () in
  if preload_n > 0 then ignore (preload s preload_n);
  let peer = if same_peering then s.feed_peer else s.test_peer in
  let n, traced, rows = flap_routes s ~peer ~n:255 () in
  print_rows ~traced ~n_routes:n rows;
  teardown s

let run_fig10 () =
  run_single ~title:"Figure 10: route propagation latency, no initial routes"
    ~paper_rows:[ "Paper avg to kernel: 3.374 ms." ] ~preload_n:0
    ~same_peering:true ()

let run_fig11 () =
  run_single
    ~title:"Figure 11: latency with 146,515 initial routes (same peering)"
    ~paper_rows:[ "Paper avg to kernel: 3.632 ms." ]
    ~preload_n:Feed.paper_table_size ~same_peering:true ()

let run_fig12 () =
  run_single
    ~title:"Figure 12: latency with 146,515 initial routes (different peering)"
    ~paper_rows:[ "Paper avg to kernel: 4.417 ms." ]
    ~preload_n:Feed.paper_table_size ~same_peering:false ()

let run_all () =
  let results = ref [] in
  let push e =
    results := e :: !results;
    e
  in
  (* Stack A carries figure 10, the during-load phase, figure 11 and
     the churn phase, in that order: each leaves the table exactly
     where the next needs it (empty -> loading -> loaded). *)
  let s = build () in

  header "Figure 10: route propagation latency, no initial routes";
  paper_note
    [ "255 test routes through 8 profile points, empty BGP table.";
      "Paper avg to kernel: 3.374 ms (their IPC crosses real processes)." ];
  let n, traced, rows = flap_routes s ~peer:s.feed_peer ~n:255 () in
  print_rows ~traced ~n_routes:n rows;
  let fig10 =
    push
      { name = "fig10"; descr = "empty table, test routes on the feed peering";
        preload_n = 0; occupancy_pct = 0; peering = "same"; churn_rps = 0;
        during_load = false; n_routes = n; traced; rows }
  in

  header "During load: latency while the 146,515-route table streams in";
  paper_note
    [ "Not a paper figure: the paper measures before and after load;";
      "this phase measures the flap latency a route sees mid-convergence." ];
  let t_load0 = Unix.gettimeofday () in
  Injector.announce s.feed_peer ~nexthop:(addr "10.0.0.11")
    (Array.to_list (Array.map (fun e -> e.Feed.net) s.feed));
  let bgp_done = ref 0.0 in
  let n, traced, rows =
    flap_routes s ~peer:s.test_peer ~n:1
      ~keep_going:(fun () ->
          if !bgp_done = 0.0
          && Bgp_process.route_count s.bgp >= Feed.paper_table_size
          then bgp_done := Unix.gettimeofday () -. t_load0;
          not (settled s ~preload:Feed.paper_table_size))
      ()
  in
  let load =
    { routes = Feed.paper_table_size; bgp_s = !bgp_done;
      settled_s = Unix.gettimeofday () -. t_load0 }
  in
  print_rows ~traced ~n_routes:n rows;
  pf "\ninitial load: %d routes, BGP in %.2fs, settled through FIB in %.2fs (%.0f routes/s)\n"
    load.routes load.bgp_s load.settled_s
    (float_of_int load.routes /. load.settled_s);
  (* CI gate: a full-table load slower than this means a pipeline
     regression (the bound is ~6x the measured time on a loaded
     container). *)
  if load.settled_s > 60.0 then
    failwith
      (Printf.sprintf "full-table load took %.1fs, budget is 60s"
         load.settled_s);
  let during =
    push
      { name = "during_load";
        descr = "test routes on a second peering while the table loads";
        preload_n = Feed.paper_table_size; occupancy_pct = 100;
        peering = "different"; churn_rps = 0; during_load = true;
        n_routes = n; traced; rows }
  in
  (* CI gate: a flap mid-load rides the urgent lane past the bulk
     backlog; if it queues behind the table again, fail loudly. *)
  let idle_p50 = kernel_p50 fig10 in
  let during_p50 = kernel_p50 during in
  let gate_limit =
    Float.max (during_gate_ratio *. idle_p50) during_gate_floor_ms
  in
  pf "\nduring-load gate: p50 to kernel %.3f ms (idle %.3f ms, limit %.3f ms)\n"
    during_p50 idle_p50 gate_limit;
  if not (during_p50 <= gate_limit) (* also catches nan: no traced routes *)
  then
    failwith
      (Printf.sprintf
         "during-load p50 %.3f ms exceeds gate %.3f ms (%.0fx idle p50 %.3f ms, floor %.0f ms): head-of-line blocking is back"
         during_p50 gate_limit during_gate_ratio idle_p50
         during_gate_floor_ms);

  header "Figure 11: latency with 146,515 initial routes (same peering)";
  paper_note
    [ "Same measurement over a full backbone table, test routes on the";
      "same peering. Paper avg to kernel: 3.632 ms - barely above the";
      "empty-table case; latency must not degrade with table size." ];
  let n, traced, rows = flap_routes s ~peer:s.feed_peer ~n:255 () in
  print_rows ~traced ~n_routes:n rows;
  let fig11 =
    push
      { name = "fig11"; descr = "full table, test routes on the feed peering";
        preload_n = Feed.paper_table_size; occupancy_pct = 100;
        peering = "same"; churn_rps = 0; during_load = false;
        n_routes = n; traced; rows }
  in

  header "Churn: full table plus sustained background flapping";
  paper_note
    [ "Not a paper figure: the feed peering withdraws and re-announces";
      "batches of real table routes (~400 updates/s) while test routes";
      "are measured on the second peering." ];
  let churn = make_churner s ~batch:5 in
  let n, traced, rows =
    flap_routes s ~peer:s.test_peer ~n:120 ~churn ()
  in
  print_rows ~traced ~n_routes:n rows;
  let churned =
    push
      { name = "churn";
        descr = "full table with ~400 background updates/s from the feed";
        preload_n = Feed.paper_table_size; occupancy_pct = 100;
        peering = "different"; churn_rps = 400; during_load = false;
        n_routes = n; traced; rows }
  in
  teardown s;

  header "Occupancy 50%: latency with 73,257 initial routes";
  paper_note
    [ "The sweep point between Figures 10 and 11: latency should be";
      "flat in table size, not halfway to some degraded value." ];
  let s = build () in
  ignore (preload s (Feed.paper_table_size / 2));
  let n, traced, rows = flap_routes s ~peer:s.feed_peer ~n:128 () in
  print_rows ~traced ~n_routes:n rows;
  let occ50 =
    push
      { name = "occupancy50";
        descr = "half table, test routes on the feed peering";
        preload_n = Feed.paper_table_size / 2; occupancy_pct = 50;
        peering = "same"; churn_rps = 0; during_load = false;
        n_routes = n; traced; rows }
  in
  teardown s;

  header "Figure 12: latency with 146,515 initial routes (different peering)";
  paper_note
    [ "Test routes now arrive via a second peering, exercising different";
      "code paths. Paper avg to kernel: 4.417 ms." ];
  let s = build () in
  ignore (preload s Feed.paper_table_size);
  let n, traced, rows = flap_routes s ~peer:s.test_peer ~n:255 () in
  print_rows ~traced ~n_routes:n rows;
  let fig12 =
    push
      { name = "fig12"; descr = "full table, test routes on a second peering";
        preload_n = Feed.paper_table_size; occupancy_pct = 100;
        peering = "different"; churn_rps = 0; during_load = false;
        n_routes = n; traced; rows }
  in
  teardown s;

  let sweep = run_domains_points [ 1; 2; 4; 8 ] in

  header "Figures 10-12 shape summary";
  let k10 = kernel_avg fig10
  and k50 = kernel_avg occ50
  and k11 = kernel_avg fig11
  and k12 = kernel_avg fig12
  and kload = kernel_avg during
  and kchurn = kernel_avg churned in
  pf "avg latency to kernel: empty %.3f ms | 50%% %.3f ms | full/same %.3f ms | full/diff %.3f ms\n"
    k10 k50 k11 k12;
  pf "                       during load %.3f ms | under churn %.3f ms\n" kload
    kchurn;
  pf "full-table vs empty-table ratio: %.2fx (paper: 1.08x - no degradation)\n"
    (k11 /. k10);
  pf "different-peering vs same: %.2fx (paper: 1.22x)\n" (k12 /. k11);
  emit_json ~path:"BENCH_pipeline.json" ~load:(Some load)
    ~gate:(idle_p50, during_p50, gate_limit) ~domains_sweep:sweep
    (List.rev !results)

(* Standalone sweep (the full pipeline bench also runs it and records
   the series in BENCH_pipeline.json). *)
let run_domains () = ignore (run_domains_points [ 1; 2; 4; 8 ])

(* CI gate: the sharded pipeline must load the full table, settle, and
   tear down cleanly, at a throughput no worse than ~1/3 of the
   measured single-core rate (same headroom policy as the 60 s
   full-load budget — the gate catches the sharded path collapsing,
   not container jitter). *)
let domains_smoke_floor_rps = 5000.0

let run_domains_smoke () =
  match run_domains_points [ 4 ] with
  | [ p ] ->
    let rps = load_rps p.d_load in
    if rps < domains_smoke_floor_rps then
      failwith
        (Printf.sprintf
           "sharded load at 4 domains ran at %.0f routes/s, floor is %.0f"
           rps domains_smoke_floor_rps)
  | _ -> assert false
