(* Figures 10, 11, 12: route propagation latency through the eight
   profile points of §8.2, measured on the full stack (BGP + RIB + FEA
   wired through XRLs) with a real clock.

   - Figure 10: BGP holds no other routes.
   - Figure 11: BGP preloaded with the synthetic 146,515-route backbone
     feed; test routes arrive on the same peering as the feed.
   - Figure 12: same preload; test routes arrive on a different peering.

   Methodology follows the paper: introduce fresh test routes one at a
   time, trace each through the pipeline, report per-point
   avg/sd/min/max relative to "Entering BGP". The paper keeps one route
   installed during the empty-table test "to prevent additional
   interactions with the RIB that typically would not happen with the
   full routing table"; we do the same. Deviation: the paper paces
   routes at one per two seconds; we pace at 50 ms to keep the bench
   short — pacing only isolates the samples. *)

open Bench_util

let n_test_routes = 255

let points =
  [ (Bgp_process.pp_entering, "Entering BGP");
    (Bgp_process.pp_queued_rib, "Queued for transmission to the RIB");
    (Bgp_process.pp_sent_rib, "Sent to RIB");
    (Rib.pp_arrived, "Arriving at the RIB");
    (Rib.pp_queued_fea, "Queued for transmission to the FEA");
    (Rib.pp_sent_fea, "Sent to the FEA");
    (Fea.pp_arrived, "Arriving at FEA");
    (Fea.pp_kernel, "Entering kernel") ]

type setup = {
  loop : Eventloop.t;
  profiler : Profiler.t;
  fea : Fea.t;
  rib : Rib.t;
  bgp : Bgp_process.t;
  feed_peer : Injector.t;
  test_peer : Injector.t;
}

let build ~preload ~same_peering () =
  let loop = Eventloop.create ~mode:`Real () in
  let netsim = Netsim.create ~default_latency:0.0005 loop in
  let finder = Finder.create () in
  let profiler = Profiler.create loop in
  let fea = Fea.create ~profiler finder loop () in
  let rib = Rib.create ~profiler finder loop () in
  let fea_c = fea and rib_c = rib in
  (* The peering LAN is reachable: BGP nexthops resolve. *)
  Result.get_ok
    (Rib.add_route rib ~protocol:"connected" ~net:(net "10.0.0.0/24")
       ~nexthop:Ipv4.zero ());
  let bgp =
    Bgp_process.create ~profiler finder loop ~netsim ~local_as:65000
      ~bgp_id:(addr "10.0.0.1") ()
  in
  let add_peer peer_addr =
    Bgp_process.add_peer bgp
      { (default_peer ~peer_addr:(addr peer_addr)
           ~local_addr:(addr "10.0.0.1") ~peer_as:65100)
        with Bgp_process.passive = Some true }
  in
  add_peer "10.0.0.11";
  add_peer "10.0.0.12";
  Bgp_process.start bgp;
  let injector local =
    Injector.create ~loop ~netsim ~local_addr:(addr local) ~local_as:65100
      ~peer_addr:(addr "10.0.0.1") ~peer_as:65000 ()
  in
  let feed_peer = injector "10.0.0.11" in
  let test_peer = if same_peering then feed_peer else injector "10.0.0.12" in
  Injector.connect feed_peer;
  if not same_peering then Injector.connect test_peer;
  run_real_until loop
    (fun () ->
       Injector.established feed_peer && Injector.established test_peer)
    ~timeout_s:20.0 "session establishment";
  (* Preload the big table from the feed peer. *)
  if preload > 0 then begin
    let feed = Feed.generate preload in
    let nets = Array.to_list (Array.map (fun e -> e.Feed.net) feed) in
    (* One nexthop on the peering LAN, like a real session. *)
    Injector.announce feed_peer ~nexthop:(addr "10.0.0.11") nets;
    run_real_until loop
      (fun () -> Bgp_process.route_count bgp >= preload)
      ~timeout_s:600.0 "preload";
    pf "   (preloaded %d routes)\n%!" preload
  end;
  (* The paper's steady single route for the empty-table case. Kept
     outside the synthetic feed's 1.x-223.x space so it cannot collide
     with a preloaded prefix. *)
  Injector.announce test_peer ~nexthop:(addr "10.0.0.11")
    [ net "250.0.2.0/24" ];
  (* Wait for the whole stack to settle: BGP's fanout drained, the
     RIB holding every winner plus the connected route, and the FIB in
     sync — otherwise the first test routes would measure the preload
     backlog rather than steady-state latency. *)
  let expected_rib = preload + 2 in
  run_real_until loop
    (fun () ->
       Bgp_process.route_count bgp > preload
       && Bgp_process.fanout_queue_length bgp = 0
       && Rib.route_count rib >= expected_rib
       && Fib.size (Fea.fib fea) >= expected_rib)
    ~timeout_s:600.0 "stack settling";
  { loop; profiler; fea = fea_c; rib = rib_c; bgp; feed_peer; test_peer }

let wall_sleep loop seconds =
  let t0 = Unix.gettimeofday () in
  Eventloop.run ~until:(fun () -> Unix.gettimeofday () -. t0 >= seconds) loop

let test_net i =
  (* Unique /24s well away from the feed (which stays under 224/8). *)
  Ipv4net.make (Ipv4.of_octets 240 (i / 250) (i mod 250) 0) 24

let run_experiment ~title ~preload ~same_peering ~paper_rows () =
  header title;
  paper_note paper_rows;
  let s = build ~preload ~same_peering () in
  Profiler.enable_all s.profiler;
  for i = 1 to n_test_routes do
    let n = test_net i in
    Injector.announce s.test_peer ~nexthop:(addr "10.0.0.11") [ n ];
    wall_sleep s.loop 0.035;
    Injector.withdraw s.test_peer [ n ];
    wall_sleep s.loop 0.015
  done;
  wall_sleep s.loop 0.3;
  Profiler.disable_all s.profiler;
  (* Per-route deltas relative to "Entering BGP". *)
  let records = Profiler.all_records s.profiler in
  let per_point = Hashtbl.create 16 in (* point -> deltas (ms), newest first *)
  let count_complete = ref 0 in
  for i = 1 to n_test_routes do
    let tag = "add " ^ Ipv4net.to_string (test_net i) in
    let time_of point =
      List.find_map
        (fun r ->
           if r.Profiler.point = point && r.Profiler.payload = tag then
             Some r.Profiler.time
           else None)
        records
    in
    match time_of Bgp_process.pp_entering with
    | None -> ()
    | Some t0 ->
      let complete = ref true in
      List.iter
        (fun (point, _) ->
           if point <> Bgp_process.pp_entering then
             match time_of point with
             | Some tp ->
               let ms = (tp -. t0) *. 1000.0 in
               let cur =
                 Option.value (Hashtbl.find_opt per_point point) ~default:[]
               in
               Hashtbl.replace per_point point (ms :: cur)
             | None -> complete := false)
        points;
      if !complete then incr count_complete
  done;
  pf "\ntraced %d/%d test routes end to end\n" !count_complete n_test_routes;
  pf "%-38s %8s %8s %8s %8s  (ms)\n" "Profile Point" "Avg" "SD" "Min" "Max";
  pf "%-38s %8s %8s %8s %8s\n" "Entering BGP" "-" "-" "-" "-";
  let result = ref [] in
  List.iter
    (fun (point, label) ->
       if point <> Bgp_process.pp_entering then begin
         let deltas =
           Option.value (Hashtbl.find_opt per_point point) ~default:[]
         in
         let st = stats deltas in
         result := (point, st) :: !result;
         pf "%-38s %8.3f %8.3f %8.3f %8.3f\n" label st.avg st.sd st.min_v
           st.max_v
       end)
    points;
  (* Tear everything down so later experiments measure a clean heap:
     components left registered stay live through the intra-process
     registry. *)
  Bgp_process.shutdown s.bgp;
  Rib.shutdown s.rib;
  Fea.shutdown s.fea;
  ignore s.feed_peer;
  List.rev !result

let kernel_avg results =
  match List.assoc_opt Fea.pp_kernel results with
  | Some st -> st.avg
  | None -> nan

let run_all () =
  let r10 =
    run_experiment
      ~title:"Figure 10: route propagation latency, no initial routes"
      ~preload:0 ~same_peering:true
      ~paper_rows:
        [ "255 test routes through 8 profile points, empty BGP table.";
          "Paper avg to kernel: 3.374 ms (their IPC crosses real processes)." ]
      ()
  in
  let r11 =
    run_experiment
      ~title:
        "Figure 11: latency with 146,515 initial routes (same peering)"
      ~preload:Feed.paper_table_size ~same_peering:true
      ~paper_rows:
        [ "Same measurement over a full backbone table, test routes on the";
          "same peering. Paper avg to kernel: 3.632 ms — barely above the";
          "empty-table case; latency must not degrade with table size." ]
      ()
  in
  let r12 =
    run_experiment
      ~title:
        "Figure 12: latency with 146,515 initial routes (different peering)"
      ~preload:Feed.paper_table_size ~same_peering:false
      ~paper_rows:
        [ "Test routes now arrive via a second peering, exercising different";
          "code paths. Paper avg to kernel: 4.417 ms." ]
      ()
  in
  header "Figures 10-12 shape summary";
  let k10 = kernel_avg r10 and k11 = kernel_avg r11 and k12 = kernel_avg r12 in
  pf "avg latency to kernel: empty %.3f ms | full/same %.3f ms | full/diff %.3f ms\n"
    k10 k11 k12;
  pf "full-table vs empty-table ratio: %.2fx (paper: 1.08x — no degradation)\n"
    (k11 /. k10);
  pf "different-peering vs same: %.2fx (paper: 1.22x)\n" (k12 /. k11)
