(* Telemetry overhead: what instrumentation costs on the hot path.

   Pushes adds + deletes through the real per-peer BGP pipeline
   (PeerIn -> filters -> resolver -> decision -> sink) — every stage of
   which carries Telemetry.time wrappers — first with telemetry
   disabled, then enabled. The difference is the full cost of metrics:
   with telemetry off the wrappers are a single ref read, so the
   disabled run doubles as the "uninstrumented" baseline.

   Documented bound (asserted below): enabling telemetry costs less
   than 5 us per route operation through the five-stage pipeline —
   i.e. ~10 clock reads plus histogram updates. Typical measured cost
   is well under 1 us. *)

open Bench_util

let overhead_bound_us = 5.0

let mkroute i =
  { Bgp_types.net =
      Ipv4net.make
        (Ipv4.of_octets (10 + (i / 65536)) ((i / 256) mod 256) (i mod 256) 0)
        24;
    attrs =
      { (Bgp_types.default_attrs ~nexthop:(addr "10.0.0.11")) with
        Bgp_types.aspath = [ Aspath.Seq [ 65100; 200 + (i mod 7) ] ] };
    peer_id = 1;
    igp_metric = None }

(* The A2 staged pipeline, fresh per measurement run. *)
let make_pipeline loop =
  let ribin = new Bgp_ribin.rib_in ~name:"in" ~peer_id:1 loop in
  let filter =
    new Bgp_filter.filter_table ~name:"f"
      ~parent:(ribin :> Bgp_table.table)
      ~local_as:65000 ~peer_as:65100 ~programs:[] ()
  in
  Bgp_table.plumb ribin filter;
  let nht =
    new Bgp_nexthop.nexthop_table ~name:"nh"
      ~resolve:(fun nh cb ->
          cb
            { Bgp_nexthop.resolvable = true; metric = 0;
              valid = Ipv4net.host nh })
      ()
  in
  Bgp_table.plumb filter nht;
  let decision = new Bgp_decision.decision_table ~name:"d" () in
  Bgp_table.plumb nht decision;
  decision#add_parent
    ~info:
      { Bgp_types.peer_id = 1; peer_addr = addr "10.0.0.11"; peer_as = 65100;
        kind = Bgp_types.Ebgp; peer_bgp_id = addr "10.0.0.11" }
    (nht :> Bgp_table.table);
  let sink =
    new Bgp_table.sink ~name:"sink"
      ~parent:(decision :> Bgp_table.table)
      ~on_add:(fun _ -> ())
      ~on_delete:(fun _ -> ())
  in
  decision#set_next (Some (sink :> Bgp_table.table));
  ribin

let run_once routes =
  let loop = Eventloop.create () in
  let ribin = make_pipeline loop in
  let t0 = Unix.gettimeofday () in
  Array.iter (fun r -> ribin#add_route r) routes;
  Array.iter (fun r -> ribin#delete_route r) routes;
  Unix.gettimeofday () -. t0

let run () =
  header "Telemetry: instrumentation overhead on the BGP pipeline";
  paper_note
    [ "Not in the paper; bounds what the xorp_telemetry subsystem may";
      "cost. Disabled-mode wrappers are one ref read, so disabled ~=";
      "uninstrumented. Asserted: enabling costs < 5 us per route op." ];
  let was_enabled = Telemetry.is_enabled () in
  let n = 50_000 in
  let routes = Array.init n mkroute in
  let ops = float_of_int (2 * n) in
  (* Warm up allocators and the stage metric instances. *)
  Telemetry.set_enabled false;
  ignore (run_once routes);
  let measure enabled =
    Telemetry.set_enabled enabled;
    (* Best of 3: per-run noise dominates sub-us effects. *)
    List.fold_left min infinity
      (List.init 3 (fun _ -> run_once routes))
  in
  let off = measure false in
  let on = measure true in
  Telemetry.set_enabled was_enabled;
  let per_op_us dt = dt /. ops *. 1e6 in
  let overhead_us = per_op_us on -. per_op_us off in
  pf "\n%-10s %10s %14s %14s\n" "telemetry" "time" "routes/sec" "us/route-op";
  pf "%-10s %9.3fs %14.0f %14.3f\n" "off" off (ops /. off) (per_op_us off);
  pf "%-10s %9.3fs %14.0f %14.3f\n" "on" on (ops /. on) (per_op_us on);
  pf "\nshape: telemetry adds %.3f us per route op (bound: %.1f us)\n"
    overhead_us overhead_bound_us;
  if overhead_us >= overhead_bound_us then
    failwith
      (Printf.sprintf
         "telemetry overhead %.3f us/op exceeds the documented %.1f us bound"
         overhead_us overhead_bound_us);
  pf "bound ok\n%!"
