(* Ablation benches for design choices DESIGN.md calls out.

   A1  TCP pipeline-window sweep: why request pipelining makes the TCP
       family competitive (§8.1 blames UDP's slowness on its absence).
   A2  Staged vs monolithic route processing: the "small performance
       penalty" §5.1 accepts for the staged design.
   A3  Background-task slice size: deletion slicing trades total
       deletion time against worst-case event latency (§5.1.2). *)

open Bench_util

(* --- A1: pipeline window ---------------------------------------------- *)

let run_pipeline () =
  header "Ablation A1: TCP pipeline window sweep";
  paper_note
    [ "The UDP family of Figure 9 is 'primarily to illustrate the effect";
      "of request pipelining'. Window 1 emulates it over TCP; throughput";
      "should grow with the window and saturate." ];
  let loop = Eventloop.create ~mode:`Real () in
  let finder = Finder.create () in
  let target =
    Xrl_router.create ~families:[ Pf_tcp.family ] finder loop
      ~class_name:"benchtarget" ()
  in
  Xrl_router.add_handler target ~interface:"bench" ~method_name:"noop"
    (fun _ reply -> reply Xrl_error.Ok_xrl []);
  let caller =
    Xrl_router.create ~families:[ Pf_tcp.family ] ~family_pref:[ "stcp" ]
      finder loop ~class_name:"benchcaller" ()
  in
  let xrl =
    Xrl.make ~target:"benchtarget" ~interface:"bench" ~method_name:"noop"
      [ Xrl_atom.u32 "a" 1 ]
  in
  let transaction window =
    let n = 5000 in
    let completed = ref 0 in
    let launched = ref 0 in
    let rec fire () =
      if !launched < n then begin
        incr launched;
        Xrl_router.send caller xrl (fun _ _ ->
            incr completed;
            fire ())
      end
    in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to window do fire () done;
    run_real_until loop (fun () -> !completed >= n) ~timeout_s:120.0
      "pipeline transaction";
    float_of_int n /. (Unix.gettimeofday () -. t0)
  in
  pf "\n%-8s %14s\n" "window" "XRLs/second";
  let rates =
    List.map
      (fun w ->
         let r = transaction w in
         pf "%-8d %14.0f\n%!" w r;
         (w, r))
      [ 1; 2; 4; 8; 16; 32; 64; 128 ]
  in
  pf "\nshape: window 128 vs window 1: %.1fx\n"
    (List.assoc 128 rates /. List.assoc 1 rates);
  Xrl_router.shutdown caller;
  Xrl_router.shutdown target

(* --- A2: staged vs monolithic ------------------------------------------ *)

(* A minimal "monolithic" BGP route processor: one hash table, direct
   decision, no stages — the Figure 3 design in miniature. *)
module Monolithic = struct
  type t = {
    rib_in : (Ipv4net.t, Bgp_types.route) Hashtbl.t;
    best : (Ipv4net.t, Bgp_types.route) Hashtbl.t;
    mutable emitted : int;
  }

  let create () =
    { rib_in = Hashtbl.create 65536; best = Hashtbl.create 65536; emitted = 0 }

  let add t (r : Bgp_types.route) =
    Hashtbl.replace t.rib_in r.net r;
    (match Hashtbl.find_opt t.best r.net with
     | Some cur when Bgp_types.route_equal cur r -> ()
     | _ ->
       Hashtbl.replace t.best r.net r;
       t.emitted <- t.emitted + 1)

  let delete t (r : Bgp_types.route) =
    Hashtbl.remove t.rib_in r.net;
    if Hashtbl.mem t.best r.net then begin
      Hashtbl.remove t.best r.net;
      t.emitted <- t.emitted + 1
    end
end

let mkroute i =
  { Bgp_types.net =
      Ipv4net.make (Ipv4.of_octets (10 + (i / 65536)) ((i / 256) mod 256) (i mod 256) 0) 24;
    attrs =
      { (Bgp_types.default_attrs ~nexthop:(addr "10.0.0.11")) with
        Bgp_types.aspath = [ Aspath.Seq [ 65100; 200 + (i mod 7) ] ] };
    peer_id = 1;
    igp_metric = None }

let run_stages () =
  header "Ablation A2: staged pipeline vs monolithic processing";
  paper_note
    [ "§5.1: the staged design costs 'a small performance penalty and";
      "slightly greater memory usage'. We push 100k adds + 100k deletes";
      "through the real per-peer pipeline (PeerIn -> filters -> resolver";
      "-> decision -> sink) and through a single-table monolith." ];
  let n = 100_000 in
  let routes = Array.init n mkroute in
  (* Staged: the real pipeline objects. *)
  let loop = Eventloop.create () in
  let ribin = new Bgp_ribin.rib_in ~name:"in" ~peer_id:1 loop in
  let filter =
    new Bgp_filter.filter_table ~name:"f"
      ~parent:(ribin :> Bgp_table.table)
      ~local_as:65000 ~peer_as:65100 ~programs:[] ()
  in
  Bgp_table.plumb ribin filter;
  let nht =
    new Bgp_nexthop.nexthop_table ~name:"nh"
      ~resolve:(fun nh cb ->
          cb { Bgp_nexthop.resolvable = true; metric = 0; valid = Ipv4net.host nh })
      ()
  in
  Bgp_table.plumb filter nht;
  let decision = new Bgp_decision.decision_table ~name:"d" () in
  Bgp_table.plumb nht decision;
  decision#add_parent
    ~info:
      { Bgp_types.peer_id = 1; peer_addr = addr "10.0.0.11"; peer_as = 65100;
        kind = Bgp_types.Ebgp; peer_bgp_id = addr "10.0.0.11" }
    (nht :> Bgp_table.table);
  let emitted = ref 0 in
  let sink =
    new Bgp_table.sink ~name:"sink"
      ~parent:(decision :> Bgp_table.table)
      ~on_add:(fun _ -> incr emitted)
      ~on_delete:(fun _ -> incr emitted)
  in
  decision#set_next (Some (sink :> Bgp_table.table));
  let t0 = Unix.gettimeofday () in
  Array.iter (fun r -> ribin#add_route r) routes;
  Array.iter (fun r -> ribin#delete_route r) routes;
  let staged_dt = Unix.gettimeofday () -. t0 in
  (* Monolithic. *)
  let mono = Monolithic.create () in
  let t0 = Unix.gettimeofday () in
  Array.iter (fun r -> Monolithic.add mono r) routes;
  Array.iter (fun r -> Monolithic.delete mono r) routes;
  let mono_dt = Unix.gettimeofday () -. t0 in
  pf "\n%-12s %10s %14s %10s\n" "design" "time" "routes/sec" "emitted";
  pf "%-12s %9.3fs %14.0f %10d\n" "staged" staged_dt
    (float_of_int (2 * n) /. staged_dt)
    !emitted;
  pf "%-12s %9.3fs %14.0f %10d\n" "monolithic" mono_dt
    (float_of_int (2 * n) /. mono_dt)
    mono.Monolithic.emitted;
  pf "\nshape: staged costs %.1fx the monolith (paper: 'small penalty')\n"
    (staged_dt /. mono_dt)

(* --- A3: deletion slice size -------------------------------------------- *)

let run_slices () =
  header "Ablation A3: background deletion slice size vs event latency";
  paper_note
    [ "§5.1.2 deletes a dead peering's table as a background task so a";
      "flapping peer 'should not prevent or unduly delay the processing";
      "of BGP updates from other peers'. Bigger slices finish sooner but";
      "hold the loop longer per slice: worst-case event lateness grows." ];
  let n = 100_000 in
  pf "\n%-8s %14s %18s\n" "slice" "deletion time" "max timer lateness";
  List.iter
    (fun slice ->
       let loop = Eventloop.create ~mode:`Real () in
       let ribin = new Bgp_ribin.rib_in ~name:"in" ~peer_id:1 loop in
       let sink =
         new Bgp_table.sink ~name:"sink"
           ~parent:(ribin :> Bgp_table.table)
           ~on_add:(fun _ -> ())
           ~on_delete:(fun _ -> ())
       in
       ribin#set_next (Some (sink :> Bgp_table.table));
       for i = 0 to n - 1 do
         ribin#add_route (mkroute i)
       done;
       (* A 2 ms heartbeat competes with the deletion; measure its
          worst-case lateness. *)
       let max_late = ref 0.0 in
       let expected = ref (Unix.gettimeofday () +. 0.002) in
       let heartbeat = ref None in
       heartbeat :=
         Some
           (Eventloop.periodic loop 0.002 (fun () ->
                let now = Unix.gettimeofday () in
                let late = now -. !expected in
                if late > !max_late then max_late := late;
                expected := now +. 0.002;
                true));
       let t0 = Unix.gettimeofday () in
       ribin#peering_went_down ~slice ();
       Eventloop.run
         ~until:(fun () -> ribin#active_deletion_stages = 0)
         loop;
       let dt = Unix.gettimeofday () -. t0 in
       Option.iter Eventloop.cancel !heartbeat;
       pf "%-8d %13.3fs %17.3fms\n%!" slice dt (!max_late *. 1000.0))
    [ 10; 100; 1000; 10000 ]
