(* Time-to-network-wide-convergence after a link flap, vs network size.

   The paper argues (§8.3) that what matters for a routing system is
   not raw throughput but how fast the *network* re-converges after an
   event. This benchmark boots N complete router stacks (Rtrmgr, FEA,
   RIB, BGP each) on one virtual clock via the topology harness,
   converges them, reset-cuts a middle link (the far end sees the
   close immediately, withdrawals propagate, the link heals 2 s later
   and the session re-dumps), and measures how much virtual time
   passes until every router's tables stop changing — then verifies
   the converged network against the full invariant set (reachability,
   loop-free forwarding walks, hop-optimality).

   Sizes 3 (chain), 10 (2x5 grid), 30 (5x6 grid), 100 (10x10 grid).
   Virtual seconds measure protocol dynamics (timers, retries,
   propagation rounds); wall seconds measure the harness itself.
   Emits BENCH_converge.json. [smoke] runs only the 30-router case
   under a wall-clock budget as a CI gate. *)

open Bench_util

let seed = 42

(* Convergence sampling: fine-grained so the virtual-time figure has
   sub-second resolution (the default 9.7 s step is for pass/fail, not
   measurement), but with the same ~50 s stable window as the default
   detector. The window must exceed the longest legitimate quiet gap
   in convergence: boot-time BGP connection collisions can redial on
   the 4 s connect-retry for several rounds without any table count
   changing, so a short window declares victory mid-gap.
   [last_change] is unaffected by the window: it records when the
   tables actually stopped moving. *)
let step = 0.53
let needed = 97
let max_steps = 600

type row = {
  routers : int;
  links : int;
  shape : string;
  boot_converge_s : float; (* virtual time to first quiescence *)
  flap_converge_s : float; (* virtual time from flap to quiescence *)
  wall_s : float;          (* harness wall time for the whole cycle *)
  dispatched : int;
  violations : string list;
}

let measure (shape, topo) =
  let t0 = Unix.gettimeofday () in
  let params = { Simnet.default_params with seed } in
  let w = Simnet.spawn params topo in
  let booted, boot_last = Simnet.converge ~step ~needed ~max_steps w in
  Simnet.check_all w ~tag:"boot";
  (* Flap the middle link: a reset cut that heals 2 s later. *)
  let links = topo.Topology.links in
  let a, b = List.nth links (List.length links / 2) in
  let t_flap = Eventloop.now (Simnet.eventloop w) in
  Simnet.exec w (Simnet.E_flap (a, b));
  let reconverged, flap_last = Simnet.converge ~step ~needed ~max_steps w in
  Simnet.check_all w ~tag:"after-flap";
  Simnet.teardown w;
  let viol = Simnet.violations w in
  let viol = if booted && reconverged then viol else "did not converge" :: viol in
  let wall = Unix.gettimeofday () -. t0 in
  let r =
    { routers = Topology.size topo; links = List.length links; shape;
      boot_converge_s = boot_last;
      flap_converge_s = Float.max 0. (flap_last -. t_flap);
      wall_s = wall;
      dispatched = Eventloop.events_dispatched (Simnet.eventloop w);
      violations = viol }
  in
  pf "   %-9s %3d routers %3d links: boot %6.2fs, flap->converged %6.2fs \
      (virtual; %.1fs wall, %d events)%s\n%!"
    shape r.routers r.links r.boot_converge_s r.flap_converge_s wall
    r.dispatched
    (if viol = [] then "" else "  INVARIANT VIOLATIONS");
  List.iter (fun v -> pf "     violation: %s\n" v) viol;
  r

let sizes () =
  [ ("chain", Topology.chain 3);
    ("grid2x5", Topology.grid 2 5);
    ("grid5x6", Topology.grid 5 6);
    ("grid10x10", Topology.grid 10 10) ]

let emit rows =
  let buf = Buffer.create 1024 in
  let bpf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  bpf "{\n";
  bpf "  \"bench\": \"converge\",\n";
  bpf "  \"seed\": %d,\n" seed;
  bpf "  \"sample_step_s\": %.2f,\n" step;
  bpf "  \"event\": \"reset-cut middle link, heal after 2s\",\n";
  bpf "  \"sizes\": [\n";
  let n = List.length rows in
  List.iteri
    (fun i r ->
       bpf
         "    { \"routers\": %d, \"links\": %d, \"shape\": %S, \
          \"boot_converge_s\": %.2f, \"flap_converge_s\": %.2f, \
          \"wall_s\": %.2f, \"dispatched\": %d, \"violations\": %d }%s\n"
         r.routers r.links r.shape r.boot_converge_s r.flap_converge_s
         r.wall_s r.dispatched
         (List.length r.violations)
         (if i = n - 1 then "" else ","))
    rows;
  bpf "  ]\n";
  bpf "}\n";
  let oc = open_out "BENCH_converge.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  pf "   wrote BENCH_converge.json\n%!"

let gate rows =
  let bad = List.filter (fun r -> r.violations <> []) rows in
  if bad <> [] then begin
    List.iter
      (fun r ->
         Printf.eprintf "converge: GATE FAILED: %s (%d routers): %s\n"
           r.shape r.routers
           (String.concat "; " r.violations))
      bad;
    exit 1
  end

let run () =
  header "converge: network-wide convergence after a link flap vs size";
  paper_note
    [ "the metric that matters is network re-convergence time (§8.3);";
      "each point is N full router stacks on one virtual clock" ];
  let rows = List.map measure (sizes ()) in
  emit rows;
  gate rows;
  pf "   gates passed: every size re-converged with all invariants green\n%!"

(* CI smoke: the 30-router flap cycle must finish inside a wall
   budget. The budget is deliberately loose (CI machines vary); the
   point is catching accidental quadratic blowups in the harness, not
   micro-regressions. *)
let smoke () =
  header "converge-smoke: 30-router flap cycle under a wall budget";
  let budget_s = 120. in
  let r = measure ("grid5x6", Topology.grid 5 6) in
  gate [ r ];
  if r.wall_s > budget_s then begin
    Printf.eprintf "converge-smoke: GATE FAILED: %.1fs wall above %.0fs budget\n"
      r.wall_s budget_s;
    exit 1
  end;
  pf "   gates passed: invariants green, %.1fs wall within %.0fs budget\n%!"
    r.wall_s budget_s
