(* Figure 9: XRL performance (XRLs/second) for the Intra-Process, TCP
   and UDP protocol families, as a function of the number of XRL
   arguments.

   Exactly the paper's methodology (§8.1): a transaction of 10,000
   XRLs with a pipeline window of 100 — the sender fires 100
   back-to-back, then one new request per response. UDP deliberately
   does not pipeline (it is the paper's early prototype, kept to show
   the cost), so its window degenerates to 1. Transports are real
   loopback sockets on a real select loop; intra-process is a direct
   call.

   On top of the paper's three series this adds:
   - a "tcp+batch" series: the same transaction with sender-side
     request batching on (sends made in one event-loop turn coalesce
     into one frame), quantifying what the fast path buys;
   - a RIB-to-FEA route-install benchmark comparing per-route XRLs
     against the bulk add_routes4 transfer;
   - machine-readable output in BENCH_xrl.json. *)

open Bench_util

let transaction_size = 10_000
let window = 100

let make_target finder loop families =
  let router =
    Xrl_router.create ~families finder loop ~class_name:"benchtarget" ()
  in
  Xrl_router.add_handler router ~interface:"bench" ~method_name:"noop"
    (fun _args reply -> reply Xrl_error.Ok_xrl []);
  router

let make_xrl nargs =
  Xrl.make ~target:"benchtarget" ~interface:"bench" ~method_name:"noop"
    (List.init nargs (fun i -> Xrl_atom.u32 (Printf.sprintf "arg%d" i) i))

(* Run one transaction; returns XRLs/second. Arguments are built per
   call, as a real caller would, so every family pays the per-argument
   cost (this is what makes the intra/TCP gap close as argument counts
   grow, as in the paper). *)
let run_transaction ?(size = transaction_size) ~loop ~caller ~nargs ~window ()
  =
  let completed = ref 0 in
  let launched = ref 0 in
  let failed = ref 0 in
  let rec fire () =
    if !launched < size then begin
      incr launched;
      Xrl_router.send caller (make_xrl nargs) (fun err _ ->
          if not (Xrl_error.is_ok err) then incr failed;
          incr completed;
          fire ())
    end
  in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to window do fire () done;
  run_real_until loop
    (fun () -> !completed >= size)
    ~timeout_s:120.0 "xrl transaction";
  let dt = Unix.gettimeofday () -. t0 in
  if !failed > 0 then failwith (Printf.sprintf "%d XRLs failed" !failed);
  float_of_int size /. dt

let family_of = function
  | "intra" -> (Pf_intra.family, "x-intra")
  | "tcp" -> (Pf_tcp.family, "stcp")
  | "udp" -> (Pf_udp.family, "sudp")
  | f -> invalid_arg f

(* [batching] defaults to off so the three classic series measure the
   paper's frame-per-request path unchanged; the "tcp+batch" series
   turns it on. *)
let measure_family ?(batching = false) ?size fam_name nargs_list =
  let fam, pref = family_of fam_name in
  let loop = Eventloop.create ~mode:`Real () in
  let finder = Finder.create () in
  let target = make_target finder loop [ fam ] in
  let caller =
    Xrl_router.create ~families:[ fam ] ~family_pref:[ pref ] ~batching
      finder loop ~class_name:"benchcaller" ()
  in
  (* UDP has no pipelining: its sender serializes, so the effective
     window is 1 no matter what we submit; submit with the standard
     window anyway, faithfully to the harness. *)
  let results =
    List.map
      (fun nargs ->
         let rate = run_transaction ?size ~loop ~caller ~nargs ~window () in
         (nargs, rate))
      nargs_list
  in
  Xrl_router.shutdown caller;
  Xrl_router.shutdown target;
  results

(* --- RIB -> FEA route install --------------------------------------- *)

(* Originate [n] statics into a RIB wired to a FEA over TCP and time
   until they are all in the FIB. [bulk] selects the fast path (route
   coalescing + add_routes4 + frame batching) vs the legacy one XRL
   per route. *)
let measure_rib_fea ~bulk n =
  let loop = Eventloop.create ~mode:`Real () in
  let finder = Finder.create () in
  let fea = Fea.create ~families:[ Pf_tcp.family ] finder loop () in
  let rib =
    Rib.create ~families:[ Pf_tcp.family ] ~batching:bulk ~bulk_fea:bulk
      finder loop ()
  in
  (* Originate first (identical pipeline cost in both modes, all
     updates land in the RIB's outbound FEA queue), then time the
     install leg: flush, wire transfer, FEA dispatch, FIB insert. *)
  for i = 0 to n - 1 do
    match
      Rib.add_route rib ~protocol:"static"
        ~net:(Ipv4net.make (Ipv4.of_int ((10 lsl 24) lor (i lsl 8))) 24)
        ~nexthop:(addr "192.0.2.1") ()
    with
    | Ok () -> ()
    | Error e -> failwith e
  done;
  let t0 = Unix.gettimeofday () in
  run_real_until loop
    (fun () -> Fib.size (Fea.fib fea) >= n)
    ~timeout_s:120.0 "rib->fea install";
  let dt = Unix.gettimeofday () -. t0 in
  Rib.shutdown rib;
  Fea.shutdown fea;
  float_of_int n /. dt

(* --- machine-readable output ----------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* series: (family, batching, (nargs, rate) list) list
   install: (mode, routes, rate) list *)
let emit_json ~path ~size ~window series install =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\n  \"transaction_size\": %d,\n  \"window\": %d,\n  \"series\": [\n"
       size window);
  List.iteri
    (fun i (fam, batching, points) ->
       if i > 0 then Buffer.add_string buf ",\n";
       Buffer.add_string buf
         (Printf.sprintf
            "    {\"family\": \"%s\", \"batching\": %b, \"points\": ["
            (json_escape fam) batching);
       List.iteri
         (fun j (nargs, rate) ->
            if j > 0 then Buffer.add_string buf ", ";
            Buffer.add_string buf
              (Printf.sprintf "{\"nargs\": %d, \"xrls_per_sec\": %.1f}" nargs
                 rate))
         points;
       Buffer.add_string buf "]}")
    series;
  Buffer.add_string buf "\n  ],\n  \"rib_fea_install\": [\n";
  List.iteri
    (fun i (mode, routes, rate) ->
       if i > 0 then Buffer.add_string buf ",\n";
       Buffer.add_string buf
         (Printf.sprintf
            "    {\"mode\": \"%s\", \"routes\": %d, \"routes_per_sec\": %.1f}"
            (json_escape mode) routes rate))
    install;
  Buffer.add_string buf "\n  ]\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  pf "\nwrote %s\n" path

(* --- entry points ----------------------------------------------------- *)

let run () =
  header "Figure 9: XRL performance for various communication families";
  paper_note
    [ "10,000-XRL transactions, pipeline window 100 (UDP: no pipelining).";
      "Paper (1.1GHz Athlon): Intra ~12000/s at 0 args, TCP close behind";
      "and converging with Intra as argument count grows; UDP several";
      "times slower because each XRL pays a full round trip." ];
  let points = [ 0; 5; 10; 15; 20; 25 ] in
  let all =
    List.map
      (fun fam -> (fam, measure_family fam points))
      [ "intra"; "tcp"; "udp" ]
  in
  let tcp_batch = measure_family ~batching:true "tcp" points in
  pf "\n%-6s %12s %12s %12s %12s  (XRLs/second)\n" "#args" "Intra" "TCP"
    "TCP+batch" "UDP";
  List.iter
    (fun nargs ->
       let rate fam = List.assoc nargs (List.assoc fam all) in
       pf "%-6d %12.0f %12.0f %12.0f %12.0f\n" nargs (rate "intra")
         (rate "tcp")
         (List.assoc nargs tcp_batch)
         (rate "udp"))
    points;
  (* Shape checks, mirroring the paper's qualitative claims. *)
  let r fam n = List.assoc n (List.assoc fam all) in
  pf "\nshape: intra/tcp ratio at 0 args:  %.2fx (paper: >1)\n"
    (r "intra" 0 /. r "tcp" 0);
  pf "shape: intra/tcp ratio at 25 args: %.2fx (paper: ~1, gap closes)\n"
    (r "intra" 25 /. r "tcp" 25);
  pf "shape: tcp/udp ratio at 0 args:    %.2fx (paper: >>1, pipelining wins)\n"
    (r "tcp" 0 /. r "udp" 0);
  pf "shape: batch/tcp ratio at 0 args:  %.2fx (batching amortizes frames)\n"
    (List.assoc 0 tcp_batch /. r "tcp" 0);
  let n_routes = 20_000 in
  pf "\nRIB -> FEA install, %d routes over TCP:\n" n_routes;
  let per_route = measure_rib_fea ~bulk:false n_routes in
  let bulk = measure_rib_fea ~bulk:true n_routes in
  pf "  per-route XRLs:   %10.0f routes/s\n" per_route;
  pf "  bulk add_routes4: %10.0f routes/s\n" bulk;
  pf "  speedup:          %10.2fx (target: >= 3x)\n" (bulk /. per_route);
  emit_json ~path:"BENCH_xrl.json" ~size:transaction_size ~window
    (List.map (fun (fam, pts) -> (fam, false, pts)) all
     @ [ ("tcp", true, tcp_batch) ])
    [ ("per_route", n_routes, per_route); ("bulk", n_routes, bulk) ]

(* Short CI variant: one TCP transaction each way plus a small bulk
   install, with sanity bounds loose enough for shared runners. *)
let smoke () =
  header "Smoke: short fig9 transaction + batched transports";
  let size = 2_000 in
  let points = [ 0; 10 ] in
  let tcp = measure_family ~size "tcp" points in
  let tcp_batch = measure_family ~size ~batching:true "tcp" points in
  pf "%-6s %12s %12s  (XRLs/second, %d-XRL transaction)\n" "#args" "TCP"
    "TCP+batch" size;
  List.iter
    (fun nargs ->
       pf "%-6d %12.0f %12.0f\n" nargs (List.assoc nargs tcp)
         (List.assoc nargs tcp_batch))
    points;
  let n_routes = 5_000 in
  let per_route = measure_rib_fea ~bulk:false n_routes in
  let bulk = measure_rib_fea ~bulk:true n_routes in
  pf "RIB -> FEA, %d routes: per-route %.0f/s, bulk %.0f/s (%.2fx)\n"
    n_routes per_route bulk (bulk /. per_route);
  emit_json ~path:"BENCH_xrl.json" ~size ~window
    [ ("tcp", false, tcp); ("tcp", true, tcp_batch) ]
    [ ("per_route", n_routes, per_route); ("bulk", n_routes, bulk) ];
  if bulk < per_route then
    failwith "smoke: bulk route install slower than per-route XRLs";
  pf "smoke ok\n%!"
