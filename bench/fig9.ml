(* Figure 9: XRL performance (XRLs/second) for the Intra-Process, TCP
   and UDP protocol families, as a function of the number of XRL
   arguments.

   Exactly the paper's methodology (§8.1): a transaction of 10,000
   XRLs with a pipeline window of 100 — the sender fires 100
   back-to-back, then one new request per response. UDP deliberately
   does not pipeline (it is the paper's early prototype, kept to show
   the cost), so its window degenerates to 1. Transports are real
   loopback sockets on a real select loop; intra-process is a direct
   call. *)

open Bench_util

let transaction_size = 10_000
let window = 100

let make_target finder loop families =
  let router =
    Xrl_router.create ~families finder loop ~class_name:"benchtarget" ()
  in
  Xrl_router.add_handler router ~interface:"bench" ~method_name:"noop"
    (fun _args reply -> reply Xrl_error.Ok_xrl []);
  router

let make_xrl nargs =
  Xrl.make ~target:"benchtarget" ~interface:"bench" ~method_name:"noop"
    (List.init nargs (fun i -> Xrl_atom.u32 (Printf.sprintf "arg%d" i) i))

(* Run one transaction; returns XRLs/second. Arguments are built per
   call, as a real caller would, so every family pays the per-argument
   cost (this is what makes the intra/TCP gap close as argument counts
   grow, as in the paper). *)
let run_transaction ~loop ~caller ~nargs ~window () =
  let completed = ref 0 in
  let launched = ref 0 in
  let failed = ref 0 in
  let rec fire () =
    if !launched < transaction_size then begin
      incr launched;
      Xrl_router.send caller (make_xrl nargs) (fun err _ ->
          if not (Xrl_error.is_ok err) then incr failed;
          incr completed;
          fire ())
    end
  in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to window do fire () done;
  run_real_until loop
    (fun () -> !completed >= transaction_size)
    ~timeout_s:120.0 "xrl transaction";
  let dt = Unix.gettimeofday () -. t0 in
  if !failed > 0 then failwith (Printf.sprintf "%d XRLs failed" !failed);
  float_of_int transaction_size /. dt

let family_of = function
  | "intra" -> (Pf_intra.family, "x-intra")
  | "tcp" -> (Pf_tcp.family, "stcp")
  | "udp" -> (Pf_udp.family, "sudp")
  | f -> invalid_arg f

let measure_family fam_name nargs_list =
  let fam, pref = family_of fam_name in
  let loop = Eventloop.create ~mode:`Real () in
  let finder = Finder.create () in
  let target = make_target finder loop [ fam ] in
  let caller =
    Xrl_router.create ~families:[ fam ] ~family_pref:[ pref ] finder loop
      ~class_name:"benchcaller" ()
  in
  (* UDP has no pipelining: its sender serializes, so the effective
     window is 1 no matter what we submit; submit with the standard
     window anyway, faithfully to the harness. *)
  let results =
    List.map
      (fun nargs ->
         let rate = run_transaction ~loop ~caller ~nargs ~window () in
         (nargs, rate))
      nargs_list
  in
  Xrl_router.shutdown caller;
  Xrl_router.shutdown target;
  results

let run () =
  header "Figure 9: XRL performance for various communication families";
  paper_note
    [ "10,000-XRL transactions, pipeline window 100 (UDP: no pipelining).";
      "Paper (1.1GHz Athlon): Intra ~12000/s at 0 args, TCP close behind";
      "and converging with Intra as argument count grows; UDP several";
      "times slower because each XRL pays a full round trip." ];
  let points = [ 0; 5; 10; 15; 20; 25 ] in
  let all =
    List.map
      (fun fam -> (fam, measure_family fam points))
      [ "intra"; "tcp"; "udp" ]
  in
  pf "\n%-6s %12s %12s %12s  (XRLs/second)\n" "#args" "Intra" "TCP" "UDP";
  List.iter
    (fun nargs ->
       let rate fam = List.assoc nargs (List.assoc fam all) in
       pf "%-6d %12.0f %12.0f %12.0f\n" nargs (rate "intra") (rate "tcp")
         (rate "udp"))
    points;
  (* Shape checks, mirroring the paper's qualitative claims. *)
  let r fam n = List.assoc n (List.assoc fam all) in
  pf "\nshape: intra/tcp ratio at 0 args:  %.2fx (paper: >1)\n"
    (r "intra" 0 /. r "tcp" 0);
  pf "shape: intra/tcp ratio at 25 args: %.2fx (paper: ~1, gap closes)\n"
    (r "intra" 25 /. r "tcp" 25);
  pf "shape: tcp/udp ratio at 0 args:    %.2fx (paper: >>1, pipelining wins)\n"
    (r "tcp" 0 /. r "udp" 0)
