(* Shared helpers for the benchmark harness. *)

let addr = Ipv4.of_string_exn
let net = Ipv4net.of_string_exn

let pf fmt = Printf.printf fmt

let header title =
  pf "\n== %s ==\n%!" title

let paper_note lines =
  List.iter (fun l -> pf "   paper: %s\n" l) lines;
  pf "%!"

type series_stats = { avg : float; sd : float; min_v : float; max_v : float }

let stats values =
  match values with
  | [] -> { avg = nan; sd = nan; min_v = nan; max_v = nan }
  | _ ->
    let n = float_of_int (List.length values) in
    let sum = List.fold_left ( +. ) 0.0 values in
    let avg = sum /. n in
    let var =
      List.fold_left (fun acc v -> acc +. ((v -. avg) ** 2.0)) 0.0 values /. n
    in
    { avg; sd = sqrt var;
      min_v = List.fold_left min infinity values;
      max_v = List.fold_left max neg_infinity values }

let run_real_until loop pred ~timeout_s what =
  let t0 = Unix.gettimeofday () in
  Eventloop.run
    ~until:(fun () -> pred () || Unix.gettimeofday () -. t0 > timeout_s)
    loop;
  if not (pred ()) then
    failwith (Printf.sprintf "bench: timed out waiting for %s" what)

(* A standalone event-driven BGP router (no RIB), as used by several
   experiments. *)
let standalone_bgp ~loop ~netsim ~local_as ~bgp_id () =
  let finder = Finder.create () in
  Bgp_process.create ~send_to_rib:false ~nexthop_mode:`Assume_resolvable
    finder loop ~netsim ~local_as ~bgp_id ()

let default_peer = Bgp_process.default_peer_config

(* A raw measurement peer: speaks just enough BGP to receive routes and
   timestamp their arrival (the paper's observation point in Figure
   13). *)
module Probe = struct
  type t = {
    fsm : Peer_fsm.t;
    arrivals : (Ipv4net.t * float) Queue.t;
    loop : Eventloop.t;
  }

  let create ~loop ~netsim ~local_addr ~local_as ~peer_addr:_ ~peer_as
      ~bgp_port () =
    let arrivals = Queue.create () in
    let fsm =
      lazy
        (Peer_fsm.create loop
           { Peer_fsm.local_as; bgp_id = local_addr; peer_as;
             hold_time = 300.0 }
           {
             Peer_fsm.on_established = (fun () -> ());
             on_update =
               (fun msg ->
                  match msg with
                  | Bgp_packet.Update { nlri; _ } ->
                    let now = Eventloop.now loop in
                    List.iter (fun n -> Queue.push (n, now) arrivals) nlri
                  | _ -> ());
             on_down = (fun _ -> ());
           })
    in
    let fsm = Lazy.force fsm in
    ignore
      (Netsim.Stream.listen netsim ~addr:local_addr ~port:bgp_port (fun ep ->
           Netsim.Stream.on_receive ep (fun data -> Peer_fsm.recv fsm data);
           Netsim.Stream.on_close ep (fun () -> Peer_fsm.transport_closed fsm);
           Peer_fsm.start_passive fsm;
           Peer_fsm.transport_up fsm
             { Peer_fsm.tr_send = (fun d -> Netsim.Stream.send ep d);
               tr_close = (fun () -> Netsim.Stream.close ep) }));
    { fsm; arrivals; loop }

  let established t = Peer_fsm.state t.fsm = Peer_fsm.Established
  let arrivals t = List.of_seq (Queue.to_seq t.arrivals)
end

(* An active test peer that dials a router under test and injects
   routes — the "peering" side of Figures 10–12. *)
module Injector = struct
  type t = {
    fsm : Peer_fsm.t;
    loop : Eventloop.t;
    netsim : Netsim.t;
    local_addr : Ipv4.t;
    peer_addr : Ipv4.t;
    bgp_port : int;
  }

  let create ~loop ~netsim ~local_addr ~local_as ~peer_addr ~peer_as
      ?(bgp_port = 179) () =
    let fsm =
      Peer_fsm.create loop
        { Peer_fsm.local_as; bgp_id = local_addr; peer_as; hold_time = 300.0 }
        { Peer_fsm.on_established = (fun () -> ());
          on_update = (fun _ -> ());
          on_down = (fun _ -> ()) }
    in
    { fsm; loop; netsim; local_addr; peer_addr; bgp_port }

  let connect t =
    Peer_fsm.start_active t.fsm;
    Netsim.Stream.connect t.netsim ~src:t.local_addr ~dst:t.peer_addr
      ~port:t.bgp_port (fun ep ->
          match ep with
          | None -> failwith "Injector: connection refused"
          | Some ep ->
            Netsim.Stream.on_receive ep (fun d -> Peer_fsm.recv t.fsm d);
            Netsim.Stream.on_close ep (fun () ->
                Peer_fsm.transport_closed t.fsm);
            Peer_fsm.transport_up t.fsm
              { Peer_fsm.tr_send = (fun d -> Netsim.Stream.send ep d);
                tr_close = (fun () -> Netsim.Stream.close ep) })

  let established t = Peer_fsm.state t.fsm = Peer_fsm.Established

  let announce t ?(aspath = [ Aspath.Seq [ 65100 ] ]) ?med ~nexthop nets =
    let attrs =
      { (Bgp_types.default_attrs ~nexthop) with
        Bgp_types.aspath; med }
    in
    let rec chunks = function
      | [] -> ()
      | nets ->
        let rec take n acc = function
          | rest when n = 0 -> (List.rev acc, rest)
          | x :: rest -> take (n - 1) (x :: acc) rest
          | [] -> (List.rev acc, [])
        in
        let head, rest = take 700 [] nets in
        ignore
          (Peer_fsm.send_update t.fsm
             (Bgp_packet.Update
                { withdrawn = []; attrs = Some attrs; nlri = head }));
        chunks rest
    in
    chunks nets

  let withdraw t nets =
    ignore
      (Peer_fsm.send_update t.fsm
         (Bgp_packet.Update { withdrawn = nets; attrs = None; nlri = [] }))
end
