(* Figure 13: BGP route latency induced by a router.

   The paper's experiment: introduce 255 routes from one BGP peer at
   one-second intervals and record when each appears at another peer,
   for four routers: XORP and MRTd (event-driven: delay never exceeds
   one second) versus Cisco and Quagga (30-second route scanners: the
   classic sawtooth, routes waiting up to the whole scan interval).

   Topology per run: injector → router-under-test → probe, on the
   simulated network with the simulated clock (255 virtual seconds run
   in well under a real second, deterministically).

   Stand-ins (see DESIGN.md): "XORP" is the full camlXORP stack (BGP +
   RIB + FEA over XRLs); "MRTd" is the same event-driven BGP engine in
   closely-coupled single-process mode (no RIB round trip); "Cisco" and
   "Quagga" are the from-scratch scanner-based baseline with 30 s
   scanners at different phases. *)

open Bench_util

let n_routes = 255
let interval = 1.0

type dut =
  | Xorp_stack
  | Mrtd_like
  | Scanner of float (* scan phase offset *)

let dut_name = function
  | Xorp_stack -> "XORP"
  | Mrtd_like -> "MRTd"
  | Scanner o -> if o < 15.0 then "Cisco" else "Quagga"

(* Build the router under test; returns a "started" unit and its
   established-count probe. *)
let build_dut dut ~loop ~netsim =
  match dut with
  | Xorp_stack ->
    let finder = Finder.create () in
    let fea = Fea.create finder loop () in
    let _fea = fea in
    let rib = Rib.create finder loop () in
    Result.get_ok
      (Rib.add_route rib ~protocol:"connected" ~net:(net "10.0.0.0/24")
         ~nexthop:Ipv4.zero ());
    let bgp =
      Bgp_process.create finder loop ~netsim ~local_as:65000
        ~bgp_id:(addr "10.0.0.1") ()
    in
    Bgp_process.add_peer bgp
      { (default_peer ~peer_addr:(addr "10.0.0.11")
           ~local_addr:(addr "10.0.0.1") ~peer_as:65100)
        with Bgp_process.passive = Some true };
    Bgp_process.add_peer bgp
      (default_peer ~peer_addr:(addr "10.0.0.21")
         ~local_addr:(addr "10.0.0.1") ~peer_as:65200);
    Bgp_process.start bgp;
    `Stack
      ( (fun () -> Bgp_process.established_count bgp = 2),
        fun () ->
          Bgp_process.shutdown bgp;
          Rib.shutdown rib;
          Fea.shutdown _fea )
  | Mrtd_like ->
    let bgp = standalone_bgp ~loop ~netsim ~local_as:65000 ~bgp_id:(addr "10.0.0.1") () in
    Bgp_process.add_peer bgp
      { (default_peer ~peer_addr:(addr "10.0.0.11")
           ~local_addr:(addr "10.0.0.1") ~peer_as:65100)
        with Bgp_process.passive = Some true };
    Bgp_process.add_peer bgp
      (default_peer ~peer_addr:(addr "10.0.0.21")
         ~local_addr:(addr "10.0.0.1") ~peer_as:65200);
    Bgp_process.start bgp;
    `Stack
      ( (fun () -> Bgp_process.established_count bgp = 2),
        fun () -> Bgp_process.shutdown bgp )
  | Scanner offset ->
    let sc =
      Scanner_bgp.create loop netsim ~local_as:65000 ~bgp_id:(addr "10.0.0.1")
        ~scan_interval:30.0 ~scan_offset:offset ()
    in
    Scanner_bgp.add_peer sc ~peer_addr:(addr "10.0.0.11")
      ~local_addr:(addr "10.0.0.1") ~peer_as:65100 ~passive:true ();
    Scanner_bgp.add_peer sc ~peer_addr:(addr "10.0.0.21")
      ~local_addr:(addr "10.0.0.1") ~peer_as:65200 ~passive:false ();
    Scanner_bgp.start sc;
    `Stack
      ( (fun () -> Scanner_bgp.established_count sc = 2),
        fun () -> Scanner_bgp.shutdown sc )

let run_dut dut =
  let loop = Eventloop.create () in
  let netsim = Netsim.create loop in
  let probe =
    Probe.create ~loop ~netsim ~local_addr:(addr "10.0.0.21") ~local_as:65200
      ~peer_addr:(addr "10.0.0.1") ~peer_as:65000 ~bgp_port:179 ()
  in
  let (`Stack (established, teardown)) = build_dut dut ~loop ~netsim in
  let injector =
    Injector.create ~loop ~netsim ~local_addr:(addr "10.0.0.11")
      ~local_as:65100 ~peer_addr:(addr "10.0.0.1") ~peer_as:65000 ()
  in
  Injector.connect injector;
  Eventloop.run
    ~until:(fun () ->
        established () && Injector.established injector
        && Probe.established probe)
    loop;
  if not (established ()) then failwith "DUT sessions did not establish";
  (* Introduce one route per second; the DUT's nexthop for the RIB case
     resolves via the connected 10.0.0.0/24. *)
  let t_base = Eventloop.now loop in
  let introduced = Hashtbl.create 512 in
  for i = 1 to n_routes do
    let at = t_base +. (float_of_int i *. interval) in
    let n = Ipv4net.make (Ipv4.of_octets 240 (i / 250) (i mod 250) 0) 24 in
    Hashtbl.replace introduced n at;
    ignore
      (Eventloop.at loop at (fun () ->
           Injector.announce injector ~nexthop:(addr "10.0.0.11") [ n ]))
  done;
  (* Run long enough for the slowest scanner to flush everything. *)
  Eventloop.run_until_time loop (t_base +. float_of_int n_routes +. 70.0);
  teardown ();
  let arrivals = Probe.arrivals probe in
  let series =
    List.filter_map
      (fun (n, t_arrive) ->
         match Hashtbl.find_opt introduced n with
         | Some t_in -> Some (t_in -. t_base, t_arrive -. t_in)
         | None -> None)
      arrivals
  in
  (List.length series, List.sort compare series)

let run () =
  header "Figure 13: BGP route flow (propagation delay at a downstream peer)";
  paper_note
    [ "255 routes at 1 s intervals through four routers.";
      "Paper: XORP and MRTd always deliver in <1 s; Cisco and Quagga show";
      "a 30 s scanner sawtooth with delays up to ~35 s." ];
  let duts = [ Xorp_stack; Mrtd_like; Scanner 13.0; Scanner 27.0 ] in
  let results = List.map (fun d -> (dut_name d, run_dut d)) duts in
  pf "\n%-8s %8s %10s %10s %10s\n" "router" "routes" "avg delay" "max delay"
    "min delay";
  List.iter
    (fun (name, (count, series)) ->
       let delays = List.map snd series in
       let st = stats delays in
       pf "%-8s %8d %9.3fs %9.3fs %9.3fs\n" name count st.avg st.max_v st.min_v)
    results;
  (* The sawtooth itself, decimated: one sample every 16 routes. *)
  pf "\nper-route delay series (arrival-time → delay, every 16th route):\n";
  pf "%-10s" "t(s)";
  List.iter (fun (name, _) -> pf "%10s" name) results;
  pf "\n";
  let nth_series name i =
    let _, series = List.assoc name results in
    match List.nth_opt series i with
    | Some (_, d) -> d
    | None -> nan
  in
  let rec rows i =
    if i < n_routes then begin
      pf "%-10.0f" (float_of_int (i + 1));
      List.iter (fun (name, _) -> pf "%10.2f" (nth_series name i)) results;
      pf "\n";
      rows (i + 16)
    end
  in
  rows 0;
  (* Shape checks *)
  let max_delay name =
    let _, series = List.assoc name results in
    List.fold_left (fun acc (_, d) -> max acc d) 0.0 series
  in
  pf "\nshape: XORP max delay %.2fs, MRTd max %.2fs (paper: never exceed 1 s)\n"
    (max_delay "XORP") (max_delay "MRTd");
  pf "shape: Cisco max %.2fs, Quagga max %.2fs (paper: up to ~35 s sawtooth)\n"
    (max_delay "Cisco") (max_delay "Quagga")
