(* Micro-benchmarks (Bechamel): the hot primitives under everything —
   XRL marshaling, Patricia-tree operations, policy evaluation, BGP
   message encoding. These quantify the constants behind the macro
   figures (e.g. why the Figure 9 gap between intra and TCP closes as
   argument counts grow: marshaling cost grows linearly). *)

open Bechamel
open Toolkit

let sample_xrl nargs =
  Xrl.make ~protocol:"stcp" ~target:"127.0.0.1:1" ~interface:"bench"
    ~method_name:"noop"
    (List.init nargs (fun i -> Xrl_atom.u32 (Printf.sprintf "arg%d" i) i))

let test_encode nargs =
  let xrl = sample_xrl nargs in
  Test.make
    ~name:(Printf.sprintf "xrl_wire.encode/%d-args" nargs)
    (Staged.stage (fun () ->
         ignore (Xrl_wire.encode (Xrl_wire.Request { seq = 1; xrl }))))

let test_decode nargs =
  let wire = Xrl_wire.encode (Xrl_wire.Request { seq = 1; xrl = sample_xrl nargs }) in
  Test.make
    ~name:(Printf.sprintf "xrl_wire.decode/%d-args" nargs)
    (Staged.stage (fun () -> ignore (Xrl_wire.decode wire)))

let test_ptree_ops =
  let feed = Feed.generate 20000 in
  let trie = Ptree.create () in
  Array.iter (fun e -> ignore (Ptree.insert trie e.Feed.net e.Feed.nexthop)) feed;
  let rng = Rng.create 5 in
  [ Test.make ~name:"ptree.longest_match/20k"
      (Staged.stage (fun () ->
           let i = Rng.int rng 20000 in
           ignore
             (Ptree.longest_match trie (Ipv4net.network feed.(i).Feed.net))));
    Test.make ~name:"ptree.insert+remove/20k"
      (Staged.stage (fun () ->
           let n = Ipv4net.make (Ipv4.of_int (Rng.int rng 0x3FFFFFFF)) 24 in
           ignore (Ptree.insert trie n Ipv4.zero);
           ignore (Ptree.remove trie n))) ]

let test_policy =
  let prog =
    Result.get_ok
      (Policy.compile
         "load network\npush.net 10.0.0.0/8\nwithin\njfalse k\npush.u32 200\nstore localpref\naccept\nlabel k\nreject")
  in
  let tbl = Hashtbl.create 4 in
  Hashtbl.replace tbl "network" (Policy.Net (Ipv4net.of_string_exn "10.1.0.0/16"));
  Hashtbl.replace tbl "localpref" (Policy.Int 100);
  let ctx = Policy.ctx_of_table tbl () in
  Test.make ~name:"policy.eval/8-instr"
    (Staged.stage (fun () -> ignore (Policy.eval prog ctx)))

let test_bgp_encode =
  let attrs =
    { (Bgp_types.default_attrs ~nexthop:(Ipv4.of_octets 10 0 0 1)) with
      Bgp_types.aspath = [ Aspath.Seq [ 65000; 65100; 3356 ] ] }
  in
  let nets =
    List.init 50 (fun i -> Ipv4net.make (Ipv4.of_octets 10 0 i 0) 24)
  in
  let msg = Bgp_packet.Update { withdrawn = []; attrs = Some attrs; nlri = nets } in
  let wire = Bgp_packet.encode msg in
  [ Test.make ~name:"bgp_packet.encode/50-nlri"
      (Staged.stage (fun () -> ignore (Bgp_packet.encode msg)));
    Test.make ~name:"bgp_packet.decode/50-nlri"
      (Staged.stage (fun () -> ignore (Bgp_packet.decode wire))) ]

(* Cost of arming (and, on the fast path, cancelling) the per-call
   deadline timer: a full intra-process call with and without
   ?deadline. Each iteration drains the loop so cancelled timers do not
   pile up in the heap and skew later iterations. *)
let test_deadline_overhead =
  let loop = Eventloop.create () in
  let finder = Finder.create () in
  let target = Xrl_router.create finder loop ~class_name:"bench-adder" () in
  Xrl_router.add_handler target ~interface:"bench" ~method_name:"noop"
    (fun _ reply -> reply Xrl_error.Ok_xrl []);
  let caller = Xrl_router.create finder loop ~class_name:"bench-caller" () in
  let xrl =
    Xrl.make ~target:"bench-adder" ~interface:"bench" ~method_name:"noop" []
  in
  let sink _ _ = () in
  [ Test.make ~name:"xrl.intra_call/no-deadline"
      (Staged.stage (fun () ->
           Xrl_router.send caller xrl sink;
           Eventloop.run loop));
    Test.make ~name:"xrl.intra_call/deadline"
      (Staged.stage (fun () ->
           Xrl_router.send ~deadline:5.0 caller xrl sink;
           Eventloop.run loop)) ]

let all_tests =
  Test.make_grouped ~name:"micro"
    ([ test_encode 0; test_encode 10; test_encode 25;
       test_decode 0; test_decode 10; test_decode 25 ]
     @ test_ptree_ops @ [ test_policy ] @ test_bgp_encode
     @ test_deadline_overhead)

let run () =
  Bench_util.header "Micro-benchmarks (Bechamel)";
  (* Earlier experiments may leave a bloated heap (the memory bench
     loads 146k routes); compact so GC noise does not inflate the
     nanosecond numbers. *)
  Gc.compact ();
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances all_tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  Printf.printf "\n%-34s %14s\n" "operation" "ns/op";
  List.iter
    (fun (name, ols_result) ->
       match Analyze.OLS.estimates ols_result with
       | Some (est :: _) -> Printf.printf "%-34s %14.1f\n" name est
       | _ -> Printf.printf "%-34s %14s\n" name "n/a")
    (List.sort compare rows)
