(* Forwarding throughput through the element-graph data plane.

   A DUT FEA carries the paper's full backbone table (146,515 routes,
   §8.2) in its FIB; packets enter over netsim on eth0, traverse the
   default element graph (Classify → CheckHeader → LpmLookup → DecTtl →
   Queue → Scheduler → ToNetsim) and exit toward their nexthops, where
   receiver sockets count arrivals. Reported packets/s is wall-clock —
   simulated time is free, the cost measured is the per-packet work of
   the graph plus netsim delivery. A bare Fib.lookup loop over the same
   destinations is timed alongside to show the graph's overhead over
   the lookup itself.

   Emits BENCH_forward.json and enforces two gates itself: packet
   conservation (every injected packet must arrive; the table routes
   them all) and a minimum packets/s floor, so the CI smoke run fails
   loudly on a forwarding-path regression. *)

open Bench_util

let n_packets = 200_000
let batch = 256 (* < the default Queue(512) capacity *)
let min_pps = 20_000.

(* The DUT's own addresses must stay clear of the feed's nexthop pool
   (10.0.{0..3}.{1..8}) or a receiver would collide with an interface. *)
let dut_ifaces =
  [ ("eth0", addr "10.100.0.1"); ("eth1", addr "10.101.0.1") ]

let run () =
  header
    (Printf.sprintf "forwarding throughput, %d-route FIB (element graph)"
       Feed.paper_table_size);
  let loop = Eventloop.create () in
  let netsim = Netsim.create loop in
  let finder = Finder.create () in
  let fea = Fea.create ~interfaces:dut_ifaces ~netsim finder loop () in
  let dp =
    match Fea.dataplane fea with
    | Some dp -> dp
    | None -> failwith "forward: FEA came up without a data plane"
  in
  let fib = Fea.fib fea in
  let feed = Feed.generate Feed.paper_table_size in
  Array.iter
    (fun (e : Feed.entry) ->
       Fib.add fib
         { Fib.net = e.Feed.net; nexthop = e.Feed.nexthop; ifname = "eth1";
           protocol = "static" })
    feed;
  pf "   FIB loaded: %d routes\n%!" (Fib.size fib);
  (* A receiver per nexthop, one hop beyond eth1. *)
  let received = ref 0 in
  List.iter
    (fun nh ->
       let s = Netsim.Dgram.bind netsim ~addr:nh ~port:Fea.dataplane_port in
       Netsim.Dgram.on_receive s (fun ~src:_ ~sport:_ _ -> incr received))
    (Feed.nexthops feed);
  (* Destinations cycle through the feed's prefixes. *)
  let dsts =
    Array.of_seq
      (Seq.filter
         (fun a -> not (Ipv4.equal a Ipv4.zero || Ipv4.is_multicast a))
         (Seq.map
            (fun (e : Feed.entry) -> Ipv4net.first_addr e.Feed.net)
            (Array.to_seq feed)))
  in
  let sender =
    Netsim.Dgram.bind netsim ~addr:(addr "10.100.0.99")
      ~port:Fea.dataplane_port
  in
  let dut = addr "10.100.0.1" in
  let src = addr "10.100.0.99" in
  let t0 = Unix.gettimeofday () in
  let sent = ref 0 in
  while !sent < n_packets do
    let this = min batch (n_packets - !sent) in
    for i = 0 to this - 1 do
      let dst = dsts.((!sent + i) mod Array.length dsts) in
      Netsim.Dgram.sendto sender ~dst:dut ~dport:Fea.dataplane_port
        (Packet.to_wire (Packet.make ~src ~dst ()))
    done;
    sent := !sent + this;
    Eventloop.run loop
  done;
  let wall = Unix.gettimeofday () -. t0 in
  let pps = float_of_int !sent /. wall in
  (* The same destinations through the bare longest-match, for scale. *)
  let t1 = Unix.gettimeofday () in
  for i = 0 to n_packets - 1 do
    ignore (Fib.lookup fib dsts.(i mod Array.length dsts))
  done;
  let lookup_wall = Unix.gettimeofday () -. t1 in
  let lookup_pps = float_of_int n_packets /. lookup_wall in
  pf "   injected %d packets in %.2fs: %.0f packets/s end to end\n" !sent
    wall pps;
  pf "   bare Fib.lookup over the same destinations: %.0f lookups/s\n"
    lookup_pps;
  let stats = Dataplane.stats dp in
  List.iter
    (fun (s : Dataplane.stats) ->
       if s.Dataplane.st_rx > 0 || s.Dataplane.st_drops <> [] then
         pf "   %-12s %-12s rx %8d  tx %8d%s\n" s.Dataplane.st_name
           s.Dataplane.st_klass s.Dataplane.st_rx s.Dataplane.st_tx
           (match s.Dataplane.st_drops with
            | [] -> ""
            | ds ->
              "  drops "
              ^ String.concat ", "
                  (List.map
                     (fun (r, n) -> Printf.sprintf "%s:%d" r n)
                     ds)))
    stats;
  (* JSON artifact. *)
  let buf = Buffer.create 1024 in
  let bpf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  bpf "{\n";
  bpf "  \"bench\": \"forward\",\n";
  bpf "  \"table_size\": %d,\n" (Fib.size fib);
  bpf "  \"packets\": %d,\n" !sent;
  bpf "  \"received\": %d,\n" !received;
  bpf "  \"wall_s\": %.3f,\n" wall;
  bpf "  \"pps\": %.0f,\n" pps;
  bpf "  \"lookup_only_pps\": %.0f,\n" lookup_pps;
  bpf "  \"min_pps_gate\": %.0f,\n" min_pps;
  bpf "  \"elements\": [\n";
  let n_stats = List.length stats in
  List.iteri
    (fun i (s : Dataplane.stats) ->
       bpf
         "    { \"name\": %S, \"class\": %S, \"rx\": %d, \"tx\": %d, \
          \"drops\": { %s } }%s\n"
         s.Dataplane.st_name s.Dataplane.st_klass s.Dataplane.st_rx
         s.Dataplane.st_tx
         (String.concat ", "
            (List.map
               (fun (r, n) -> Printf.sprintf "%S: %d" r n)
               s.Dataplane.st_drops))
         (if i = n_stats - 1 then "" else ","))
    stats;
  bpf "  ]\n";
  bpf "}\n";
  let oc = open_out "BENCH_forward.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  pf "   wrote BENCH_forward.json\n%!";
  Fea.shutdown fea;
  (* Gates: conservation first (a lost packet is a correctness bug, not
     a performance one), then the throughput floor. *)
  if !received <> !sent then begin
    Printf.eprintf "forward: GATE FAILED: sent %d packets, received %d\n"
      !sent !received;
    exit 1
  end;
  if pps < min_pps then begin
    Printf.eprintf "forward: GATE FAILED: %.0f packets/s below floor %.0f\n"
      pps min_pps;
    exit 1
  end;
  pf "   gates passed: conservation (%d = %d), floor (%.0f >= %.0f pps)\n%!"
    !received !sent pps min_pps
