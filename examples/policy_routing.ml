(* Route redistribution through policy filters (paper §3 and §8.3).

   Two routers booted from configuration files. Router A learns routes
   over RIP, and its RIB redistributes a policy-filtered subset into
   BGP's world... here we show the RIB redist stage directly: static
   and RIP routes flow into RIP advertisements via the stack-language
   filter, with a metric override, while a denied block stays private.

     dune exec examples/policy_routing.exe *)

let addr = Ipv4.of_string_exn
let net = Ipv4net.of_string_exn

let config_a = {|
interfaces {
    interface eth0 { address: 10.0.0.1 }
}
protocols {
    static {
        route 172.16.0.0/12 { nexthop: 10.0.0.254 }
        route 198.18.0.0/15 { nexthop: 10.0.0.254 }
        route 192.168.0.0/16 { nexthop: 10.0.0.254 }
    }
    rip {
        interface 10.0.0.1 { neighbor: 10.0.0.2 }
        redistribute: "load protocol; push.str static; eq; jfalse done; load network; push.net 192.168.0.0/16; within; jfalse export; reject; label export; push.u32 5; store metric; accept; label done; reject"
    }
}
|}

let config_b = {|
interfaces {
    interface eth0 { address: 10.0.0.2 }
}
protocols {
    rip {
        interface 10.0.0.2 { neighbor: 10.0.0.1 }
    }
}
|}

let () =
  let loop = Eventloop.create () in
  let netsim = Netsim.create loop in
  let boot name config =
    match Rtrmgr.boot ~loop ~netsim ~config () with
    | Ok r -> r
    | Error problems ->
      Printf.eprintf "%s rejected:\n" name;
      List.iter (fun p -> Printf.eprintf "  %s\n" p) problems;
      exit 1
  in
  let ra = boot "router-a" config_a in
  let rb = boot "router-b" config_b in
  Printf.printf
    "router A redistributes its static routes into RIP through a policy:\n";
  Printf.printf "  - only static routes (protocol test)\n";
  Printf.printf "  - 192.168.0.0/16 is kept private (reject)\n";
  Printf.printf "  - exported routes get metric 5\n\n";
  Eventloop.run_until_time loop 40.0;

  Printf.printf "router A's RIB:\n%s\n" (Rtrmgr.show_routes ra);
  Printf.printf "router B learned over RIP:\n%s\n" (Rtrmgr.show_rip rb);

  let check what a expected =
    let got =
      match Rib.lookup_best (Rtrmgr.rib rb) (addr a) with
      | Some r -> r.Rib_route.protocol
      | None -> "unroutable"
    in
    Printf.printf "  %-14s at B: %-12s (expected %s)\n" what got expected
  in
  check "172.16.5.5" "172.16.5.5" "rip";
  check "198.18.5.5" "198.18.5.5" "rip";
  check "192.168.1.1" "192.168.1.1" "unroutable (kept private)";

  (* The deleted static route is retracted from RIP as well. *)
  Printf.printf "\nwithdrawing 198.18.0.0/15 at A...\n";
  Result.get_ok
    (Rib.delete_route (Rtrmgr.rib ra) ~protocol:"static" ~net:(net "198.18.0.0/15"));
  Eventloop.run_until_time loop (Eventloop.now loop +. 10.0);
  check "198.18.5.5" "198.18.5.5" "unroutable (withdrawn)";
  Rtrmgr.shutdown ra;
  Rtrmgr.shutdown rb
