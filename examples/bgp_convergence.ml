(* BGP convergence under a peering flap (paper §5.1.2).

   Two routers exchange a 50,000-route table; then the peering is
   killed. Watch the receiving router hand the dead session's table to
   a dynamic background deletion stage, stay responsive to a competing
   peer's updates throughout, and relearn everything when the peering
   returns — while the stacked deletion stages quietly retire.

     dune exec examples/bgp_convergence.exe *)

let addr = Ipv4.of_string_exn
let table_size = 50_000

let mknet i = Ipv4net.make (Ipv4.of_octets 100 (i / 256) (i mod 256) 0) 24

let () =
  let loop = Eventloop.create () in
  let netsim = Netsim.create loop in
  let mk as_ id =
    let finder = Finder.create () in
    Bgp_process.create ~send_to_rib:false ~nexthop_mode:`Assume_resolvable
      finder loop ~netsim ~local_as:as_ ~bgp_id:(addr id) ()
  in
  let a = mk 65001 "1.1.1.1" in
  let b = mk 65002 "2.2.2.2" in
  let c = mk 65003 "3.3.3.3" in
  (* a and c both peer with b; deletion at b runs 100 routes/slice. *)
  Bgp_process.add_peer a
    (Bgp_process.default_peer_config ~peer_addr:(addr "10.0.0.2")
       ~local_addr:(addr "10.0.0.1") ~peer_as:65002);
  Bgp_process.add_peer b
    { (Bgp_process.default_peer_config ~peer_addr:(addr "10.0.0.1")
         ~local_addr:(addr "10.0.0.2") ~peer_as:65001)
      with Bgp_process.deletion_slice = 100 };
  Bgp_process.add_peer c
    (Bgp_process.default_peer_config ~peer_addr:(addr "10.0.2.2")
       ~local_addr:(addr "10.0.2.3") ~peer_as:65002);
  Bgp_process.add_peer b
    (Bgp_process.default_peer_config ~peer_addr:(addr "10.0.2.3")
       ~local_addr:(addr "10.0.2.2") ~peer_as:65003);
  List.iter Bgp_process.start [ a; b; c ];
  Eventloop.run_until_time loop 5.0;
  Printf.printf "sessions up: b has %d established peers\n"
    (Bgp_process.established_count b);

  Printf.printf "a originates %d routes...\n%!" table_size;
  for i = 0 to table_size - 1 do
    Bgp_process.originate a (mknet i)
  done;
  Eventloop.run
    ~until:(fun () -> Bgp_process.route_count b >= table_size)
    loop;
  Printf.printf "b converged: %d routes at t=%.1fs (sim)\n\n"
    (Bgp_process.route_count b) (Eventloop.now loop);

  (* Kill the peering. *)
  Printf.printf "killing the a-b peering...\n";
  Bgp_process.remove_peer a (addr "10.0.0.2");
  Eventloop.run
    ~until:(fun () -> Bgp_process.deletion_stages b (addr "10.0.0.1") = 1)
    loop;
  Printf.printf
    "b spawned a background deletion stage; PeerIn already empty (%d routes)\n"
    (Bgp_process.ribin_count b (addr "10.0.0.1"));

  (* While 50k deletes grind through in the background, a competing
     update from c must go through promptly — the §5.1.2 point. *)
  let t0 = Eventloop.now loop in
  Bgp_process.originate c (Ipv4net.of_string_exn "203.0.113.0/24");
  Eventloop.run
    ~until:(fun () ->
        Bgp_process.ribin_count b (addr "10.0.2.3") >= 1)
    loop;
  Printf.printf
    "c's update processed in %.3fs (sim) while the deletion was in progress\n"
    (Eventloop.now loop -. t0);

  (* Peer a comes back before the deletion finishes. *)
  Printf.printf "\nre-establishing the a-b peering...\n";
  Bgp_process.add_peer a
    (Bgp_process.default_peer_config ~peer_addr:(addr "10.0.0.2")
       ~local_addr:(addr "10.0.0.1") ~peer_as:65002);
  for i = 0 to table_size - 1 do
    Bgp_process.originate a (mknet i)
  done;
  Eventloop.run
    ~until:(fun () -> Bgp_process.route_count b >= table_size + 1)
    loop;
  Printf.printf "b reconverged: %d routes (50k relearned + c's one)\n"
    (Bgp_process.route_count b);
  Eventloop.run
    ~until:(fun () -> Bgp_process.deletion_stages b (addr "10.0.0.1") = 0)
    loop;
  Printf.printf "all deletion stages retired by t=%.1fs (sim)\n"
    (Eventloop.now loop);
  Printf.printf "\nconsistency violations at b: %d\n"
    (List.length (Bgp_process.cache_violations b))
