(* Extensibility (paper §8.3, "Adding a New Routing Protocol").

   A toy routing protocol implemented entirely OUTSIDE the core
   libraries, talking to the router purely through public XRL
   interfaces — the paper's extensibility claim in action. The protocol
   ("gossip") floods host routes it invents; it registers itself with
   the Finder, originates routes with rib/1.0 XRLs, tracks how its
   addresses are routed via register_interest, and reacts to
   rib_client/1.0 invalidation callbacks. Nothing in xorp_rib or
   xorp_fea knows it exists.

     dune exec examples/extension_protocol.exe *)

let addr = Ipv4.of_string_exn
let net = Ipv4net.of_string_exn

(* The entire "protocol". Note: only Xrl_router / Xrl / Xrl_atom and
   the published rib/1.0 + rib_client/1.0 interfaces are used. *)
module Gossip = struct
  type t = {
    router : Xrl_router.t;
    loop : Eventloop.t;
    mutable invalidations : int;
  }

  let rib_xrl method_name args =
    Xrl.make ~target:"rib" ~interface:"rib" ~method_name args

  let create finder loop =
    let router = Xrl_router.create finder loop ~class_name:"gossip" () in
    let t = { router; loop; invalidations = 0 } in
    (* The RIB calls this back when a cached routing answer becomes
       stale (§5.2.1). *)
    Xrl_router.add_handler router ~interface:"rib_client"
      ~method_name:"route_info_invalid" (fun args reply ->
          let valid = Xrl_atom.get_ipv4net args "valid" in
          t.invalidations <- t.invalidations + 1;
          Printf.printf "  [gossip] cache invalidated for %s; re-querying\n"
            (Ipv4net.to_string valid);
          reply Xrl_error.Ok_xrl []);
    t

  let originate t prefix nexthop =
    Xrl_router.send t.router
      (rib_xrl "add_route"
         [ Xrl_atom.txt "protocol" "static";
           (* The RIB knows no "gossip" protocol; the paper's ad-hoc
              team needed exactly one trivial interface change. We ride
              the static origin table instead of changing the RIB —
              with a tag marking gossip ownership. *)
           Xrl_atom.ipv4net "net" prefix;
           Xrl_atom.ipv4 "nexthop" nexthop;
           Xrl_atom.u32 "metric" 7 ])
      (fun err _ ->
         if not (Xrl_error.is_ok err) then
           Printf.printf "  [gossip] originate failed: %s\n"
             (Xrl_error.to_string err))

  let watch t a =
    Xrl_router.send t.router
      (rib_xrl "register_interest"
         [ Xrl_atom.txt "client" (Xrl_router.instance_name t.router);
           Xrl_atom.ipv4 "addr" a ])
      (fun err args ->
         if Xrl_error.is_ok err then
           Printf.printf "  [gossip] %s resolves=%b valid-for=%s\n"
             (Ipv4.to_string a)
             (Xrl_atom.get_bool args "resolves")
             (Ipv4net.to_string (Xrl_atom.get_ipv4net args "valid")))
end

let () =
  Printf.printf
    "a third-party protocol extends the router through public XRLs only\n\n";
  let loop = Eventloop.create () in
  let netsim = Netsim.create loop in
  let stack =
    Xorp.make_stack ~interfaces:[ ("eth0", addr "10.0.0.1") ] ~loop
      ~net:netsim ()
  in
  let gossip = Gossip.create stack.Xorp.finder loop in

  Printf.printf "gossip originates two routes over rib/1.0:\n";
  Gossip.originate gossip (net "198.51.100.0/24") (addr "10.0.0.77");
  Gossip.originate gossip (net "198.51.0.0/16") (addr "10.0.0.78");
  Eventloop.run_until_idle loop;

  Printf.printf "\ngossip registers interest in an address it cares about:\n";
  Gossip.watch gossip (addr "198.51.100.42");
  Eventloop.run_until_idle loop;

  Printf.printf
    "\nanother protocol (static) injects a more-specific route inside the\n\
     watched range; the RIB notifies gossip (lifetime of cached answers):\n";
  Result.get_ok
    (Rib.add_route stack.Xorp.rib ~protocol:"static"
       ~net:(net "198.51.100.128/25") ~nexthop:(addr "10.0.0.99") ());
  Eventloop.run_until_idle loop;

  Printf.printf "\ngossip re-queries and gets the narrowed answer:\n";
  Gossip.watch gossip (addr "198.51.100.42");
  Eventloop.run_until_idle loop;

  Printf.printf "\nrouter's FIB now (all installed via the normal pipeline):\n";
  List.iter
    (fun (e : Fib.entry) ->
       Printf.printf "  %-20s via %s\n"
         (Ipv4net.to_string e.Fib.net)
         (Ipv4.to_string e.nexthop))
    (Fib.entries (Fea.fib stack.Xorp.fea));
  Printf.printf "\ninvalidation callbacks received: %d\n" gossip.Gossip.invalidations;
  Xorp.shutdown_stack stack
