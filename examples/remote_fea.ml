(* A remote forwarding engine (paper §4, §7).

   "A flexible IPC mechanism lets modules communicate with each other
   independent of whether those modules are part of the same process,
   or even on the same machine; this allows untrusted processes to be
   run ... even on different machines from the forwarding engine."

   Here the FEA lives on a different simulated machine from the RIB:
   the control plane (RIB) runs on 10.0.0.1, the forwarding engine on
   10.0.0.2, and every route installation crosses the simulated network
   through the "sim" XRL protocol family — no component code changes,
   just a different protocol-family configuration, which is the whole
   point.

     dune exec examples/remote_fea.exe *)

let addr = Ipv4.of_string_exn
let net = Ipv4net.of_string_exn

let () =
  let loop = Eventloop.create () in
  let netsim = Netsim.create ~default_latency:0.004 loop in
  let finder = Finder.create () in

  (* The forwarding machine: the FEA registers ONLY the sim transport,
     bound to machine B's address. *)
  let machine_b = Pf_sim.family netsim ~local_addr:(addr "10.0.0.2") in
  let fea = Fea.create ~families:[ machine_b ] finder loop () in

  (* The control machine: the RIB can speak intra-process (to local
     components) and sim (to reach machine B). *)
  let machine_a = Pf_sim.family netsim ~local_addr:(addr "10.0.0.1") in
  let rib =
    Rib.create
      ~families:[ Pf_intra.family; machine_a ]
      finder loop ()
  in

  Printf.printf "RIB on machine 10.0.0.1; FEA on machine 10.0.0.2 (4 ms links)\n\n";
  (match Finder.resolve finder
           (Xrl.make ~target:"fea" ~interface:"fea" ~method_name:"get_fib_size" [])
   with
   | Ok r ->
     Printf.printf "the Finder resolves the FEA to: %s via the %S family\n\n"
       r.Finder.address r.Finder.family
   | Error e -> Printf.printf "resolve error: %s\n" (Xrl_error.to_string e));

  (* Install routes: each one crosses the simulated network. *)
  let t0 = Eventloop.now loop in
  List.iter
    (fun (n, nh) ->
       Result.get_ok
         (Rib.add_route rib ~protocol:"static" ~net:(net n)
            ~nexthop:(addr nh) ()))
    [ ("172.16.0.0/12", "10.0.0.254");
      ("192.168.0.0/16", "10.0.0.254");
      ("203.0.113.0/24", "10.0.0.254") ];
  (* Give the simulated network time to carry the XRLs (4 ms/hop). *)
  Eventloop.run_until_time loop (Eventloop.now loop +. 0.1);
  Printf.printf "3 routes installed in the remote FIB: size=%d\n"
    (Fib.size (Fea.fib fea));
  Printf.printf "simulated time consumed by the remote installs: %.1f ms\n"
    ((Eventloop.now loop -. t0) *. 1000.0);

  (* An operator on machine A queries the remote forwarding engine over
     the same transport. *)
  let caller =
    Xrl_router.create ~families:[ machine_a ] ~family_pref:[ "sim" ] finder
      loop ~class_name:"operator" ()
  in
  let err, args =
    Xrl_router.call_blocking caller
      (Xrl.make ~target:"fea" ~interface:"fea" ~method_name:"lookup_route4"
         [ Xrl_atom.ipv4 "addr" (addr "172.16.9.9") ])
  in
  (match err with
   | Xrl_error.Ok_xrl ->
     Printf.printf "\nremote forwarding lookup for 172.16.9.9: %s via %s\n"
       (Ipv4net.to_string (Xrl_atom.get_ipv4net args "net"))
       (Ipv4.to_string (Xrl_atom.get_ipv4 args "nexthop"))
   | e -> Printf.printf "lookup failed: %s\n" (Xrl_error.to_string e));

  (* Withdraw a route; the delete also crosses the network. *)
  Result.get_ok
    (Rib.delete_route rib ~protocol:"static" ~net:(net "203.0.113.0/24"));
  Eventloop.run_until_time loop (Eventloop.now loop +. 0.1);
  Printf.printf "\nafter withdrawal, remote FIB size=%d\n" (Fib.size (Fea.fib fea));
  Printf.printf
    "\nno component knew or cared where its peers ran — only the protocol\n\
     families changed. that is the §6 transport-independence claim.\n"
