(* Quickstart: assemble one router programmatically, feed it routes
   from two protocols, and watch the staged RIB arbitrate and install
   winners into the forwarding table.

     dune exec examples/quickstart.exe *)

let addr = Ipv4.of_string_exn
let net = Ipv4net.of_string_exn

let () =
  Printf.printf "camlXORP %s quickstart\n\n" Xorp.version;

  (* Every router runs on one event loop. The default clock is
     simulated: time advances only as events demand, deterministically. *)
  let loop = Eventloop.create () in
  let netsim = Netsim.create loop in

  (* A stack = FEA + RIB wired through a Finder by XRLs. *)
  let stack =
    Xorp.make_stack ~interfaces:[ ("eth0", addr "10.0.0.1") ] ~loop
      ~net:netsim ()
  in

  (* Feed the RIB from two "protocols". Static has administrative
     distance 1; RIP has 120 — the merge stages arbitrate. *)
  let add protocol ?(metric = 0) n nh =
    Result.get_ok
      (Rib.add_route stack.Xorp.rib ~protocol ~net:(net n)
         ~nexthop:(addr nh) ~metric ())
  in
  add "static" "172.16.0.0/12" "10.0.0.254";
  add "rip" ~metric:4 "172.16.0.0/12" "10.0.0.7"; (* loses to static *)
  add "rip" ~metric:2 "192.168.0.0/16" "10.0.0.7";
  Eventloop.run_until_idle loop;

  let lookup what a =
    match Rib.lookup_best stack.Xorp.rib (addr a) with
    | Some r ->
      Printf.printf "%-22s -> %s via %s (%s, distance %d)\n" what
        (Ipv4net.to_string r.Rib_route.net)
        (Ipv4.to_string r.nexthop) r.protocol r.admin_distance
    | None -> Printf.printf "%-22s -> unroutable\n" what
  in
  Printf.printf "RIB decisions (static beats rip on 172.16/12):\n";
  lookup "172.16.5.5" "172.16.5.5";
  lookup "192.168.1.1" "192.168.1.1";
  lookup "8.8.8.8" "8.8.8.8";

  (* Winners were pushed to the FEA over XRLs and installed in the
     forwarding table. *)
  Printf.printf "\nFIB (%d entries, via fea/1.0 XRLs):\n"
    (Fib.size (Fea.fib stack.Xorp.fea));
  List.iter
    (fun (e : Fib.entry) ->
       Printf.printf "  %-18s via %-12s [%s]\n"
         (Ipv4net.to_string e.Fib.net)
         (Ipv4.to_string e.nexthop)
         e.protocol)
    (Fib.entries (Fea.fib stack.Xorp.fea));

  (* Withdraw the static route: the merge stage fails over to RIP and
     the FIB follows. *)
  Result.get_ok
    (Rib.delete_route stack.Xorp.rib ~protocol:"static" ~net:(net "172.16.0.0/12"));
  Eventloop.run_until_idle loop;
  Printf.printf "\nafter withdrawing the static route:\n";
  lookup "172.16.5.5" "172.16.5.5";

  (* Interest registration (paper §5.2.1): ask how an address is routed
     and for which range the answer holds. *)
  let answer = Rib.register_interest stack.Xorp.rib ~client:"demo" (addr "172.16.9.9") in
  Printf.printf
    "\ninterest registration for 172.16.9.9:\n  matched %s, answer valid for %s\n"
    (match answer.Register_table.matched with
     | Some r -> Ipv4net.to_string r.Rib_route.net
     | None -> "nothing")
    (Ipv4net.to_string answer.Register_table.valid_subnet);

  Xorp.shutdown_stack stack;
  Printf.printf "\ndone.\n"
