(** Bounded ring buffer: the storage discipline for every kind of
    telemetry record (profile records, trace spans).

    A ring never grows: once [capacity] entries are live, each push
    overwrites the oldest entry. Pushing is O(1) with no allocation
    beyond the pushed value itself, so rings are safe to leave in
    production hot paths — the property the flat list in the old
    profiler lacked. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity < 1]. *)

val capacity : 'a t -> int

val length : 'a t -> int
(** Live entries, at most [capacity]. *)

val total_pushed : 'a t -> int
(** Lifetime pushes, including entries since overwritten or cleared. *)

val push : 'a t -> 'a -> unit

val clear : 'a t -> unit
(** Drop live entries ([total_pushed] keeps counting). *)

val to_list : 'a t -> 'a list
(** Live entries, oldest first. *)

val iter : ('a -> unit) -> 'a t -> unit
(** Oldest first. *)

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
(** Oldest first. *)
