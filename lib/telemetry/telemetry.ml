(* Process-wide metrics + tracing. See telemetry.mli for the model. *)

let enabled = ref true
let set_enabled b = enabled := b
let is_enabled () = !enabled

type counter = { mutable c_value : int }
type gauge = { mutable g_value : float }

module Histogram = struct
  (* Upper bounds m * 10^e for m in 1..9, e in 0..8 (81 bounds), plus
     one overflow bucket. Log-linear: within a bucket any two values
     differ by at most 2x, so a bucket-bound quantile estimate is at
     most 2x the true quantile. *)
  let bounds =
    Array.init 81 (fun i ->
        let e = i / 9 and m = (i mod 9) + 1 in
        float_of_int m *. (10. ** float_of_int e))

  let bucket_count = Array.length bounds + 1

  type t = {
    h_counts : int array; (* length bucket_count *)
    mutable h_count : int;
    mutable h_sum : float;
    mutable h_max : float;
  }

  let make () =
    { h_counts = Array.make bucket_count 0; h_count = 0; h_sum = 0.; h_max = 0. }

  let bucket_upper_bound i =
    if i < 0 || i >= bucket_count then invalid_arg "bucket_upper_bound"
    else if i = bucket_count - 1 then infinity
    else bounds.(i)

  (* First bucket whose upper bound is >= v. *)
  let bucket_index v =
    let n = Array.length bounds in
    if v <= bounds.(0) then 0
    else if v > bounds.(n - 1) then n
    else begin
      (* invariant: bounds.(lo) < v <= bounds.(hi) *)
      let lo = ref 0 and hi = ref (n - 1) in
      while !hi - !lo > 1 do
        let mid = (!lo + !hi) / 2 in
        if bounds.(mid) >= v then hi := mid else lo := mid
      done;
      !hi
    end

  let observe_unguarded t v =
    t.h_counts.(bucket_index v) <- t.h_counts.(bucket_index v) + 1;
    t.h_count <- t.h_count + 1;
    t.h_sum <- t.h_sum +. v;
    if v > t.h_max then t.h_max <- v

  let count t = t.h_count
  let sum t = t.h_sum
  let max_observed t = t.h_max
  let counts t = Array.copy t.h_counts

  let quantile t q =
    if t.h_count = 0 then 0.
    else begin
      let q = if q < 0. then 0. else if q > 1. then 1. else q in
      let rank = max 1 (int_of_float (ceil (q *. float_of_int t.h_count))) in
      let rec go i cum =
        if i >= bucket_count then t.h_max
        else
          let cum = cum + t.h_counts.(i) in
          if cum >= rank then
            if i = bucket_count - 1 then t.h_max else bounds.(i)
          else go (i + 1) cum
      in
      go 0 0
    end

  let clear t =
    Array.fill t.h_counts 0 bucket_count 0;
    t.h_count <- 0;
    t.h_sum <- 0.;
    t.h_max <- 0.
end

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of Histogram.t

module Trace_defs = struct
  type ctx = { trace_id : int; span_id : int }

  type span = {
    sp_trace : int;
    sp_span : int;
    sp_parent : int option;
    sp_name : string;
    sp_start : float;
    mutable sp_stop : float;
    mutable sp_note : string;
  }
end

type registry = {
  metrics : (string, metric) Hashtbl.t;
  span_ring : Trace_defs.span Telemetry_ring.t;
}

let create_registry ?(span_capacity = 8192) () =
  { metrics = Hashtbl.create 64;
    span_ring = Telemetry_ring.create ~capacity:span_capacity }

let global = create_registry ()

(* Ambient name prefix. Instrumented components register hierarchical
   names like "fea.install.latency_us"; when several router stacks
   share one process (lib/simtest topologies), each boots under its
   own namespace ("r1.") so same-class components land on distinct
   metrics instead of silently sharing counters. *)
let namespace = ref ""
let set_namespace ns = namespace := ns
let current_namespace () = !namespace
let qualify name = if !namespace = "" then name else !namespace ^ name

let with_namespace ns f =
  let saved = !namespace in
  namespace := ns;
  match f () with
  | v -> namespace := saved; v
  | exception e -> namespace := saved; raise e

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let get_or_create registry name make match_kind =
  match Hashtbl.find_opt registry.metrics name with
  | Some m -> (
      match match_kind m with
      | Some v -> v
      | None ->
          invalid_arg
            (Printf.sprintf "Telemetry: %s already registered as a %s" name
               (kind_name m)))
  | None ->
      let m, v = make () in
      Hashtbl.replace registry.metrics name m;
      v

let counter ?(registry = global) name =
  get_or_create registry (qualify name)
    (fun () -> let c = { c_value = 0 } in (Counter c, c))
    (function Counter c -> Some c | _ -> None)

let gauge ?(registry = global) name =
  get_or_create registry (qualify name)
    (fun () -> let g = { g_value = 0. } in (Gauge g, g))
    (function Gauge g -> Some g | _ -> None)

let histogram ?(registry = global) name =
  get_or_create registry (qualify name)
    (fun () -> let h = Histogram.make () in (Histogram h, h))
    (function Histogram h -> Some h | _ -> None)

let incr c = if !enabled then c.c_value <- c.c_value + 1
let add c n = if !enabled then c.c_value <- c.c_value + n
let counter_value c = c.c_value

let set_gauge g v = if !enabled then g.g_value <- v
let gauge_value g = g.g_value

let observe h v = if !enabled then Histogram.observe_unguarded h v

let time h f =
  if not !enabled then f ()
  else begin
    let t0 = Unix.gettimeofday () in
    let finish () =
      Histogram.observe_unguarded h ((Unix.gettimeofday () -. t0) *. 1e6)
    in
    match f () with
    | v -> finish (); v
    | exception e -> finish (); raise e
  end

let find_metric ?(registry = global) name =
  Hashtbl.find_opt registry.metrics name

let list_metrics ?(registry = global) () =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) registry.metrics []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let zero_metric = function
  | Counter c -> c.c_value <- 0
  | Gauge g -> g.g_value <- 0.
  | Histogram h -> Histogram.clear h

let reset ?(registry = global) () =
  Hashtbl.iter (fun _ m -> zero_metric m) registry.metrics;
  Telemetry_ring.clear registry.span_ring

let reset_prefix ?(registry = global) prefix =
  let prefix = qualify prefix in
  Hashtbl.iter
    (fun name m ->
      if String.length name >= String.length prefix
         && String.sub name 0 (String.length prefix) = prefix
      then zero_metric m)
    registry.metrics

module Trace = struct
  include Trace_defs

  (* Ids are process-unique; trace ids and span ids draw from separate
     sequences so a wire context is unambiguous even across traces. *)
  let next_trace = ref 0
  let next_span = ref 0
  let fresh r = Stdlib.incr r; !r

  let ambient : ctx option ref = ref None
  let current () = !ambient

  let with_ctx ctx f =
    let saved = !ambient in
    ambient := ctx;
    match f () with
    | v -> ambient := saved; v
    | exception e -> ambient := saved; raise e

  let start ?registry:_ ?parent ~name ~now () =
    let parent = match parent with Some _ as p -> p | None -> !ambient in
    let trace_id, parent_span =
      match parent with
      | Some c -> (c.trace_id, Some c.span_id)
      | None -> (fresh next_trace, None)
    in
    { sp_trace = trace_id;
      sp_span = fresh next_span;
      sp_parent = parent_span;
      sp_name = name;
      sp_start = now;
      sp_stop = now;
      sp_note = "" }

  let finish ?(registry = global) ?note ~now span =
    span.sp_stop <- now;
    (match note with Some n -> span.sp_note <- n | None -> ());
    if !enabled then Telemetry_ring.push registry.span_ring span

  let ctx span = { trace_id = span.sp_trace; span_id = span.sp_span }

  let span_sync ?(registry = global) ?note ~name ~clock f =
    if not !enabled then f ()
    else begin
      let span = start ~name ~now:(clock ()) () in
      let fin () = finish ~registry ?note ~now:(clock ()) span in
      match with_ctx (Some (ctx span)) f with
      | v -> fin (); v
      | exception e -> fin (); raise e
    end

  let spans ?(registry = global) () = Telemetry_ring.to_list registry.span_ring
  let spans_recorded ?(registry = global) () =
    Telemetry_ring.total_pushed registry.span_ring

  let ctx_to_string c = Printf.sprintf "%d.%d" c.trace_id c.span_id

  let ctx_of_string s =
    match String.index_opt s '.' with
    | None -> None
    | Some i -> (
        let t = String.sub s 0 i
        and sp = String.sub s (i + 1) (String.length s - i - 1) in
        match (int_of_string_opt t, int_of_string_opt sp) with
        | Some trace_id, Some span_id -> Some { trace_id; span_id }
        | _ -> None)

  let trace_atom_name = "_xorp_trace"
end

(* ---- export ---- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let metric_json m =
  match m with
  | Counter c -> Printf.sprintf {|{"type":"counter","value":%d}|} c.c_value
  | Gauge g ->
      Printf.sprintf {|{"type":"gauge","value":%s}|} (json_float g.g_value)
  | Histogram h ->
      Printf.sprintf
        {|{"type":"histogram","count":%d,"sum":%s,"max":%s,"p50":%s,"p90":%s,"p99":%s}|}
        (Histogram.count h)
        (json_float (Histogram.sum h))
        (json_float (Histogram.max_observed h))
        (json_float (Histogram.quantile h 0.5))
        (json_float (Histogram.quantile h 0.9))
        (json_float (Histogram.quantile h 0.99))

let span_json (s : Trace.span) =
  Printf.sprintf
    {|{"trace":%d,"span":%d,"parent":%s,"name":"%s","start":%s,"stop":%s,"note":"%s"}|}
    s.Trace.sp_trace s.Trace.sp_span
    (match s.Trace.sp_parent with Some p -> string_of_int p | None -> "null")
    (json_escape s.Trace.sp_name)
    (json_float s.Trace.sp_start)
    (json_float s.Trace.sp_stop)
    (json_escape s.Trace.sp_note)

let snapshot_json ?(registry = global) () =
  let metrics =
    list_metrics ~registry ()
    |> List.map (fun (name, m) ->
           Printf.sprintf {|"%s":%s|} (json_escape name) (metric_json m))
    |> String.concat ","
  in
  let spans =
    Telemetry_ring.to_list registry.span_ring
    |> List.map span_json |> String.concat ","
  in
  Printf.sprintf {|{"metrics":{%s},"spans":[%s]}|} metrics spans

let render_table ?(registry = global) () =
  let b = Buffer.create 1024 in
  let metrics = list_metrics ~registry () in
  let counters =
    List.filter_map
      (function n, Counter c -> Some (n, c.c_value) | _ -> None)
      metrics
  and gauges =
    List.filter_map
      (function n, Gauge g -> Some (n, g.g_value) | _ -> None)
      metrics
  and hists =
    List.filter_map
      (function n, Histogram h -> Some (n, h) | _ -> None)
      metrics
    |> List.sort (fun (_, a) (_, b) ->
           compare (Histogram.count b) (Histogram.count a))
  in
  if counters <> [] then begin
    Buffer.add_string b "Counters:\n";
    List.iter
      (fun (n, v) -> Buffer.add_string b (Printf.sprintf "  %-40s %12d\n" n v))
      counters
  end;
  if gauges <> [] then begin
    Buffer.add_string b "Gauges:\n";
    List.iter
      (fun (n, v) ->
        Buffer.add_string b (Printf.sprintf "  %-40s %12s\n" n (json_float v)))
      gauges
  end;
  if hists <> [] then begin
    Buffer.add_string b
      (Printf.sprintf "Latency (us):\n  %-40s %8s %8s %8s %8s %10s\n" "stage"
         "count" "p50" "p90" "p99" "max");
    List.iter
      (fun (n, h) ->
        Buffer.add_string b
          (Printf.sprintf "  %-40s %8d %8.0f %8.0f %8.0f %10.0f\n" n
             (Histogram.count h)
             (Histogram.quantile h 0.5)
             (Histogram.quantile h 0.9)
             (Histogram.quantile h 0.99)
             (Histogram.max_observed h)))
      hists
  end;
  Buffer.add_string b
    (Printf.sprintf "Spans: %d live, %d recorded\n"
       (Telemetry_ring.length registry.span_ring)
       (Telemetry_ring.total_pushed registry.span_ring));
  Buffer.contents b
