(** Cross-component telemetry: metrics, distributed tracing, and
    snapshot export.

    The paper's evaluation (§8.2) follows a route's journey across
    component boundaries with profile points; this subsystem
    generalises that into a process-wide observability layer:

    - {b metrics}: counters, gauges, and fixed-bucket log-linear
      latency histograms with p50/p90/p99 extraction, registered under
      hierarchical dotted names ([bgp.decision.add_us],
      [xrl.tcp.bytes_tx]);
    - {b tracing}: trace contexts (trace id + span id) carried across
      XRL calls as an extra argument, with completed spans recorded in
      a bounded ring ({!Telemetry_ring});
    - {b exposure}: a JSON snapshot and a rendered table, served over
      the [telemetry/0.1] XRL interface (see [Telemetry_xrl]) and by
      [xorpsh]'s [show telemetry] / the [xorp_top] binary.

    Everything records into a {e registry}; the default is a single
    process-wide {!global} registry, matching the repo's
    components-in-one-process substitution for XORP's processes.
    Recording is guarded by one global {!set_enabled} flag so
    instrumentation can stay in production code (the same contract as
    profile points); the disabled cost is a single [ref] read. *)

val set_enabled : bool -> unit
(** Default [true]. When disabled, counters, histograms, and spans
    record nothing (registration still works). *)

val is_enabled : unit -> bool

(** {1 Metrics} *)

type counter
type gauge

module Histogram : sig
  (** Fixed-bucket log-linear histogram. Bucket upper bounds run
      1,2,…,9,10,20,…,90,100,… up to 9e8, plus one overflow bucket —
      so any two values in a bucket are within a factor of two, which
      bounds quantile error. Intended unit: microseconds. *)

  type t

  val bucket_count : int
  val bucket_upper_bound : int -> float
  (** Upper bound of bucket [i]; [infinity] for the overflow bucket. *)

  val bucket_index : float -> int
  (** Bucket a value falls into; values [<= 1.0] (including zero and
      negatives) land in bucket 0. *)

  val count : t -> int
  val sum : t -> float
  val max_observed : t -> float
  val counts : t -> int array
  (** Per-bucket counts (a copy). *)

  val quantile : t -> float -> float
  (** [quantile t q] for [q] in [0,1]: an upper estimate of the [q]th
      quantile — the upper bound of the bucket holding the rank
      [ceil q*n] value (the max observed value for the overflow
      bucket). [0.0] when empty. The estimate lands in the same bucket
      as the true quantile, so it is at most 2x the true value. *)

  val clear : t -> unit
end

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of Histogram.t

type registry

val global : registry
(** The process-wide registry used by all instrumentation. *)

val create_registry : ?span_capacity:int -> unit -> registry
(** A private registry (tests). [span_capacity] defaults to 8192. *)

(** {2 Namespaces}

    Instrumented components register fixed hierarchical names
    (["fea.install.latency_us"]). When several router stacks share one
    process — the topology-parametric simulation harness boots N of
    them — an ambient {e namespace} prefix keeps their metrics apart:
    while it is set (e.g. ["r1."]), {!counter}/{!gauge}/{!histogram}
    register under the prefixed name and {!reset_prefix} zeroes only
    the prefixed subtree. The default namespace is [""], which leaves
    every existing caller untouched. Handles are resolved at
    registration time, so a component that creates its metrics under a
    namespace keeps recording there no matter what the ambient
    namespace is later. *)

val set_namespace : string -> unit
val current_namespace : unit -> string

val with_namespace : string -> (unit -> 'a) -> 'a
(** Run the thunk with the ambient namespace set; always restores the
    previous namespace (also on exceptions). *)

(** {2 Registration}

    Get-or-create. Names are hierarchical dotted paths, implicitly
    prefixed by the ambient namespace.
    @raise Invalid_argument if the name exists with another kind. *)

val counter : ?registry:registry -> string -> counter
val gauge : ?registry:registry -> string -> gauge
val histogram : ?registry:registry -> string -> Histogram.t

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

val observe : Histogram.t -> float -> unit

val time : Histogram.t -> (unit -> 'a) -> 'a
(** Run the thunk, observing its wall-clock duration in microseconds.
    When telemetry is disabled this is just the call. *)

val find_metric : ?registry:registry -> string -> metric option
val list_metrics : ?registry:registry -> unit -> (string * metric) list
(** Sorted by name. *)

val reset : ?registry:registry -> unit -> unit
(** Zero every metric and drop recorded spans (registrations remain). *)

val reset_prefix : ?registry:registry -> string -> unit
(** Zero every metric whose dotted name starts with [prefix] (after
    qualification by the ambient namespace, like registration), in place,
    so existing handles stay valid. Components call this with their
    namespace (e.g. ["fea."]) when a new generation starts, so a
    restarted process does not inherit — and [xorp_top] does not
    display — the dead generation's accumulated counts. *)

(** {1 Distributed tracing} *)

module Trace : sig
  type ctx = { trace_id : int; span_id : int }

  type span = {
    sp_trace : int;
    sp_span : int;
    sp_parent : int option; (* parent span id within the same trace *)
    sp_name : string;
    sp_start : float;
    mutable sp_stop : float;
    mutable sp_note : string;
  }

  val current : unit -> ctx option
  (** The ambient context of the code currently running, if any. *)

  val with_ctx : ctx option -> (unit -> 'a) -> 'a
  (** Run the thunk with the given ambient context; always restores
      the previous context (also on exceptions). *)

  val start :
    ?registry:registry -> ?parent:ctx -> name:string -> now:float -> unit ->
    span
  (** Open a span. The parent defaults to {!current}; a span without a
      parent roots a fresh trace, otherwise it joins the parent's
      trace. Timestamps are supplied by the caller (event-loop clock,
      so simulated time works). *)

  val finish : ?registry:registry -> ?note:string -> now:float -> span -> unit
  (** Close the span and record it in the registry's span ring. *)

  val ctx : span -> ctx

  val span_sync :
    ?registry:registry -> ?note:string -> name:string ->
    clock:(unit -> float) -> (unit -> 'a) -> 'a
  (** Wrap a synchronous computation in a span: parent from ambient,
      ambient set to the new span inside the thunk, finished on return
      (and on exceptions). When telemetry is disabled this is just the
      call. *)

  val spans : ?registry:registry -> unit -> span list
  (** Recorded (finished) spans, oldest first. *)

  val spans_recorded : ?registry:registry -> unit -> int
  (** Lifetime count, including spans that fell off the ring. *)

  val ctx_to_string : ctx -> string
  (** Wire form ["<trace>.<span>"], used as the value of the
      {!trace_atom_name} XRL argument. *)

  val ctx_of_string : string -> ctx option

  val trace_atom_name : string
  (** The reserved XRL argument name carrying a trace context
      ([_xorp_trace]); injected by senders and stripped before
      dispatch, so method handlers never see it. *)
end

(** {1 Export} *)

val snapshot_json : ?registry:registry -> unit -> string
(** Every metric plus the recorded spans, as one JSON object:
    [{"metrics": {...}, "spans": [...]}]. *)

val render_table : ?registry:registry -> unit -> string
(** Operator-facing text: counters and gauges, then histograms sorted
    hottest (highest count) first with p50/p90/p99, then span totals. *)
