type 'a t = {
  cap : int;
  mutable buf : 'a array; (* [||] until the first push *)
  mutable head : int;     (* next write index *)
  mutable len : int;      (* live entries *)
  mutable pushed : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Telemetry_ring.create: capacity < 1";
  { cap = capacity; buf = [||]; head = 0; len = 0; pushed = 0 }

let capacity t = t.cap
let length t = t.len
let total_pushed t = t.pushed

let push t x =
  if Array.length t.buf = 0 then t.buf <- Array.make t.cap x;
  t.buf.(t.head) <- x;
  t.head <- (t.head + 1) mod t.cap;
  if t.len < t.cap then t.len <- t.len + 1;
  t.pushed <- t.pushed + 1

let clear t =
  t.head <- 0;
  t.len <- 0

let iter f t =
  let start = (t.head - t.len + t.cap * 2) mod t.cap in
  for i = 0 to t.len - 1 do
    f t.buf.((start + i) mod t.cap)
  done

let fold f init t =
  let acc = ref init in
  iter (fun x -> acc := f !acc x) t;
  !acc

let to_list t = List.rev (fold (fun acc x -> x :: acc) [] t)
