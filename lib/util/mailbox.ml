(* Cross-domain mailbox: a Laneq behind a mutex and condition variable.

   All state lives under [mu]. Condition.signal and the [on_wakeup]
   callback run outside the lock: signalling needs no lock, and
   [on_wakeup] may take locks of its own (Eventloop.post takes the
   loop's posted-queue mutex) so it must never run under ours. *)

type 'a t = {
  mu : Mutex.t;
  nonempty : Condition.t;
  q : 'a Laneq.t;
  on_wakeup : (unit -> unit) option;
  mutable closed : bool;
}

let create ?(ordered = true) ?on_wakeup () =
  { mu = Mutex.create ();
    nonempty = Condition.create ();
    q = Laneq.create ~ordered ();
    on_wakeup;
    closed = false }

let push t lane ~net v =
  Mutex.lock t.mu;
  if t.closed then Mutex.unlock t.mu
  else begin
    let was_empty = Laneq.is_empty t.q in
    Laneq.push t.q lane ~net v;
    Mutex.unlock t.mu;
    Condition.signal t.nonempty;
    if was_empty then Option.iter (fun f -> f ()) t.on_wakeup
  end

(* Urgent lane dry first, then a bounded bulk batch: the same consumer
   discipline Laneq documents, applied under one lock acquisition. *)
let take_locked t bulk_slice =
  let acc = ref [] in
  let rec urgent () =
    match Laneq.pop_urgent t.q with
    | Some (_, v) ->
      acc := (Laneq.Urgent, v) :: !acc;
      urgent ()
    | None -> ()
  in
  urgent ();
  let rec bulk n =
    if n > 0 then
      match Laneq.pop_bulk t.q with
      | Some (_, v) ->
        acc := (Laneq.Bulk, v) :: !acc;
        bulk (n - 1)
      | None -> ()
  in
  bulk bulk_slice;
  List.rev !acc

let drain ?(bulk_slice = max_int) t =
  Mutex.lock t.mu;
  let out = take_locked t bulk_slice in
  Mutex.unlock t.mu;
  out

let drain_wait ?timeout_s ?(bulk_slice = max_int) t =
  let deadline =
    Option.map (fun s -> Unix.gettimeofday () +. s) timeout_s
  in
  Mutex.lock t.mu;
  let rec wait () =
    if (not (Laneq.is_empty t.q)) || t.closed then take_locked t bulk_slice
    else
      match deadline with
      | None ->
        Condition.wait t.nonempty t.mu;
        wait ()
      | Some d ->
        if Unix.gettimeofday () >= d then []
        else begin
          (* No timed wait in the stdlib Condition: poll on a short
             period. Only the timeout path pays for this; the common
             worker loop passes no timeout and blocks properly. *)
          Mutex.unlock t.mu;
          Unix.sleepf 0.0002;
          Mutex.lock t.mu;
          wait ()
        end
  in
  let out = wait () in
  Mutex.unlock t.mu;
  out

let length t =
  Mutex.lock t.mu;
  let n = Laneq.length t.q in
  Mutex.unlock t.mu;
  n

let is_empty t = length t = 0

let demoted t =
  Mutex.lock t.mu;
  let n = Laneq.demoted t.q in
  Mutex.unlock t.mu;
  n

let close t =
  Mutex.lock t.mu;
  t.closed <- true;
  Mutex.unlock t.mu;
  Condition.broadcast t.nonempty

let is_closed t =
  Mutex.lock t.mu;
  let c = t.closed in
  Mutex.unlock t.mu;
  c
