(** IPv4 addresses.

    Addresses are represented as OCaml [int]s in the range
    [0 .. 2{^32}-1], which avoids [Int32] boxing on 64-bit platforms and
    makes bit manipulation cheap. All functions maintain that range
    invariant. *)

type t
(** An IPv4 address. Total ordering follows numeric (network byte
    order) value. *)

val zero : t
(** [0.0.0.0] *)

val broadcast : t
(** [255.255.255.255] *)

val of_int : int -> t
(** [of_int v] masks [v] to 32 bits. *)

val to_int : t -> int
(** Numeric value in [0 .. 2{^32}-1]. *)

val of_octets : int -> int -> int -> int -> t
(** [of_octets a b c d] is the address [a.b.c.d]. Each octet is masked
    to 8 bits. *)

val to_octets : t -> int * int * int * int

val of_string : string -> t option
(** Parse dotted-quad notation. Returns [None] on malformed input. *)

val of_string_exn : string -> t
(** Like {!of_string}.
    @raise Invalid_argument on malformed input. *)

val to_string : t -> string
(** Dotted-quad rendering, e.g. ["128.16.32.1"]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val succ : t -> t
(** Next address, wrapping at [255.255.255.255]. *)

val logand : t -> t -> t
val logor : t -> t -> t
val lognot : t -> t

val bit : t -> int -> bool
(** [bit a i] is bit [i] of [a], where bit 0 is the {e most} significant
    bit (the convention used by prefix tries).
    @raise Invalid_argument if [i] is outside [0..31]. *)

val mask_of_len : int -> t
(** [mask_of_len l] is the netmask with [l] leading one bits.
    @raise Invalid_argument unless [0 <= l <= 32]. *)

val is_multicast : t -> bool
(** True for 224.0.0.0/4. *)

val is_loopback : t -> bool
(** True for 127.0.0.0/8. *)

val pp : Format.formatter -> t -> unit
