(** Big-endian byte-buffer readers and writers, used by all wire codecs
    (BGP and RIP packets, XRL marshaling).

    Writers append to an internal growable buffer; readers consume a
    [string] with strict bounds checking. *)

exception Truncated
(** Raised by readers when the input runs out before a field ends. *)

module W : sig
  type t

  val create : ?initial:int -> unit -> t
  val u8 : t -> int -> unit
  val u16 : t -> int -> unit
  val u32 : t -> int -> unit
  (** Values are masked to the field width. *)

  val bytes : t -> string -> unit
  val ipv4 : t -> Ipv4.t -> unit
  val length : t -> int
  val contents : t -> string

  val patch_u16 : t -> int -> int -> unit
  (** [patch_u16 w off v] overwrites the 16-bit field at byte offset
      [off], used for length fields written before the body is known.
      @raise Invalid_argument if out of range. *)
end

module R : sig
  type t

  val of_string : ?off:int -> ?len:int -> string -> t
  val u8 : t -> int
  val u16 : t -> int
  val u32 : t -> int
  val bytes : t -> int -> string
  val ipv4 : t -> Ipv4.t
  val remaining : t -> int
  val eof : t -> bool
  val pos : t -> int

  val sub : t -> int -> t
  (** [sub r n] consumes [n] bytes and returns a reader scoped to
      exactly those bytes — handy for length-delimited substructures. *)
end
