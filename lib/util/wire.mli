(** Big-endian byte-buffer readers and writers, used by all wire codecs
    (BGP and RIP packets, XRL marshaling).

    Writers append to an internal growable [Bytes] buffer and support
    O(1) in-place patching of already-written fields (length fields
    written before the body is known); readers consume a [string] with
    strict bounds checking. *)

exception Truncated
(** Raised by readers when the input runs out before a field ends. *)

module W : sig
  type t

  val create : ?initial:int -> unit -> t
  val u8 : t -> int -> unit
  val u16 : t -> int -> unit
  val u32 : t -> int -> unit
  (** Values are masked to the field width. *)

  val bytes : t -> string -> unit
  val ipv4 : t -> Ipv4.t -> unit
  val length : t -> int
  val contents : t -> string

  val patch_u16 : t -> int -> int -> unit
  (** [patch_u16 w off v] overwrites the 16-bit field at byte offset
      [off] in place (O(1)), used for length fields written before the
      body is known.
      @raise Invalid_argument if out of range. *)

  val patch_u32 : t -> int -> int -> unit
  (** 32-bit variant of {!patch_u16}; used by frame headers. *)

  val clear : t -> unit
  (** Reset to empty, keeping the underlying storage for reuse. *)

  val blit : t -> dst:Bytes.t -> dst_off:int -> unit
  (** Copy the written bytes into [dst] at [dst_off] without building
      an intermediate string.
      @raise Invalid_argument if [dst] is too small. *)
end

module R : sig
  type t

  val of_string : ?off:int -> ?len:int -> string -> t
  val u8 : t -> int
  val u16 : t -> int
  val u32 : t -> int
  val bytes : t -> int -> string
  val ipv4 : t -> Ipv4.t
  val remaining : t -> int
  val eof : t -> bool
  val pos : t -> int

  val sub : t -> int -> t
  (** [sub r n] consumes [n] bytes and returns a reader scoped to
      exactly those bytes — handy for length-delimited substructures. *)
end
