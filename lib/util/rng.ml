type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

(* splitmix64: tiny, fast, good enough statistical quality for
   workload generation; the golden-gamma increment guarantees a full
   2^64 period regardless of seed. *)
let bits64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int";
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod bound

let float t =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  v /. 9007199254740992.0 (* 2^53 *)

let bool t = Int64.logand (bits64 t) 1L = 1L

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick";
  arr.(int t (Array.length arr))

let bytes t n =
  String.init n (fun _ -> Char.chr (int t 256))
