(** Binary packing of IPv4 route lists for the bulk FEA XRLs.

    A packed list travels inside a single [binary] XRL atom, so a whole
    flush of routes crosses the IPC boundary as one marshalled call.
    Layout: 32-bit count, then per entry the network (address + prefix
    length) and, for adds, the nexthop, 16-bit length-prefixed
    [ifname] and [protocol] strings, and a 32-bit metric. *)

type add = {
  net : Ipv4net.t;
  nexthop : Ipv4.t;
  ifname : string;
  protocol : string;
  metric : int;
}

val pack_adds : add list -> string
val unpack_adds : string -> (add list, string) result

val pack_deletes : Ipv4net.t list -> string
val unpack_deletes : string -> (Ipv4net.t list, string) result

val max_count : int
(** Decode-side bound on the entry count (rejects absurd lengths before
    allocating). *)
