type t = int

let mask32 = 0xFFFF_FFFF
let zero = 0
let broadcast = mask32
let of_int v = v land mask32
let to_int a = a

let of_octets a b c d =
  ((a land 0xFF) lsl 24) lor ((b land 0xFF) lsl 16)
  lor ((c land 0xFF) lsl 8) lor (d land 0xFF)

let to_octets a = ((a lsr 24) land 0xFF, (a lsr 16) land 0xFF,
                   (a lsr 8) land 0xFF, a land 0xFF)

let of_string s =
  (* Hand-rolled parse: strict dotted quad, no leading/trailing junk. *)
  let n = String.length s in
  let rec octet i acc digits =
    if i >= n then (i, acc, digits)
    else match s.[i] with
      | '0'..'9' when digits < 3 ->
        octet (i + 1) ((acc * 10) + Char.code s.[i] - Char.code '0') (digits + 1)
      | _ -> (i, acc, digits)
  in
  let rec go i part addr =
    let i', v, digits = octet i 0 0 in
    if digits = 0 || v > 255 then None
    else
      let addr = (addr lsl 8) lor v in
      if part = 3 then (if i' = n then Some addr else None)
      else if i' < n && s.[i'] = '.' then go (i' + 1) (part + 1) addr
      else None
  in
  go 0 0 0

let of_string_exn s =
  match of_string s with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Ipv4.of_string_exn: %S" s)

let to_string a =
  let x, y, z, w = to_octets a in
  Printf.sprintf "%d.%d.%d.%d" x y z w

let compare = Int.compare
let equal = Int.equal
let hash a = Hashtbl.hash a
let succ a = (a + 1) land mask32
let logand a b = a land b
let logor a b = a lor b
let lognot a = lnot a land mask32

let bit a i =
  if i < 0 || i > 31 then invalid_arg "Ipv4.bit";
  (a lsr (31 - i)) land 1 = 1

let mask_of_len l =
  if l < 0 || l > 32 then invalid_arg "Ipv4.mask_of_len";
  if l = 0 then 0 else (mask32 lsl (32 - l)) land mask32

let is_multicast a = a lsr 28 = 0xE
let is_loopback a = a lsr 24 = 127
let pp fmt a = Format.pp_print_string fmt (to_string a)
