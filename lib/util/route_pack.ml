(* Binary packing of IPv4 route lists for the bulk FEA XRLs
   (fea/add_routes4 and fea/delete_routes4). A packed list rides in a
   single binary XRL atom, so a whole RIB flush crosses the IPC
   boundary as one marshalled call instead of one call per route. *)

type add = {
  net : Ipv4net.t;
  nexthop : Ipv4.t;
  ifname : string;
  protocol : string;
  metric : int;
}

let max_count = 1 lsl 20

let put_str w s =
  if String.length s > 0xFFFF then invalid_arg "Route_pack: string too long";
  Wire.W.u16 w (String.length s);
  Wire.W.bytes w s

let get_str r =
  let n = Wire.R.u16 r in
  Wire.R.bytes r n

let put_net w net =
  Wire.W.ipv4 w (Ipv4net.network net);
  Wire.W.u8 w (Ipv4net.prefix_len net)

let get_net r =
  let a = Wire.R.ipv4 r in
  let l = Wire.R.u8 r in
  if l > 32 then failwith "Route_pack: bad prefix length";
  Ipv4net.make a l

let pack_adds adds =
  let n = List.length adds in
  let w = Wire.W.create ~initial:(8 + (24 * n)) () in
  Wire.W.u32 w n;
  List.iter
    (fun a ->
       put_net w a.net;
       Wire.W.ipv4 w a.nexthop;
       put_str w a.ifname;
       put_str w a.protocol;
       Wire.W.u32 w a.metric)
    adds;
  Wire.W.contents w

let pack_deletes nets =
  let n = List.length nets in
  let w = Wire.W.create ~initial:(8 + (5 * n)) () in
  Wire.W.u32 w n;
  List.iter (put_net w) nets;
  Wire.W.contents w

let unpack s decode_one =
  try
    let r = Wire.R.of_string s in
    let n = Wire.R.u32 r in
    if n > max_count then Error (Printf.sprintf "route list too long (%d)" n)
    else begin
      let out = ref [] in
      for _ = 1 to n do out := decode_one r :: !out done;
      if not (Wire.R.eof r) then Error "trailing bytes after route list"
      else Ok (List.rev !out)
    end
  with
  | Wire.Truncated -> Error "truncated route list"
  | Failure msg -> Error msg
  | Invalid_argument msg -> Error msg

let unpack_adds s =
  unpack s (fun r ->
      let net = get_net r in
      let nexthop = Wire.R.ipv4 r in
      let ifname = get_str r in
      let protocol = get_str r in
      let metric = Wire.R.u32 r in
      { net; nexthop; ifname; protocol; metric })

let unpack_deletes s = unpack s get_net
