type t = { net : Ipv4.t; len : int }

let make addr len =
  if len < 0 || len > 32 then invalid_arg "Ipv4net.make";
  { net = Ipv4.logand addr (Ipv4.mask_of_len len); len }

let network t = t.net
let prefix_len t = t.len
let netmask t = Ipv4.mask_of_len t.len
let default = { net = Ipv4.zero; len = 0 }
let host a = { net = a; len = 32 }

let of_string s =
  match String.index_opt s '/' with
  | None -> Option.map host (Ipv4.of_string s)
  | Some i ->
    let addr = String.sub s 0 i in
    let len = String.sub s (i + 1) (String.length s - i - 1) in
    (match Ipv4.of_string addr, int_of_string_opt len with
     | Some a, Some l when l >= 0 && l <= 32 -> Some (make a l)
     | _ -> None)

let of_string_exn s =
  match of_string s with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Ipv4net.of_string_exn: %S" s)

let to_string t = Printf.sprintf "%s/%d" (Ipv4.to_string t.net) t.len

let contains_addr t a =
  Ipv4.equal (Ipv4.logand a (Ipv4.mask_of_len t.len)) t.net

let contains outer inner =
  outer.len <= inner.len && contains_addr outer inner.net

let overlaps a b = contains a b || contains b a

let first_addr t = t.net
let last_addr t = Ipv4.logor t.net (Ipv4.lognot (Ipv4.mask_of_len t.len))

let split t =
  if t.len >= 32 then None
  else
    let len = t.len + 1 in
    let left = { net = t.net; len } in
    let right_addr = Ipv4.of_int (Ipv4.to_int t.net lor (1 lsl (31 - t.len))) in
    Some (left, { net = right_addr; len })

let parent t =
  if t.len = 0 then None else Some (make t.net (t.len - 1))

let compare a b =
  let c = Ipv4.compare a.net b.net in
  if c <> 0 then c else Int.compare a.len b.len

let equal a b = compare a b = 0
let hash t = Hashtbl.hash (Ipv4.to_int t.net, t.len)
let pp fmt t = Format.pp_print_string fmt (to_string t)
