type t = int

let max_asn = 0xFFFF_FFFF

let of_int v =
  if v < 0 || v > max_asn then invalid_arg "Asn.of_int";
  v

let to_int v = v
let as_trans = 23456
let is_4byte v = v > 0xFFFF

let is_private v =
  (v >= 64512 && v <= 65534) || (v >= 4200000000 && v <= 4294967294)

let compare = Int.compare
let equal = Int.equal
let to_string = string_of_int

let of_string s =
  match int_of_string_opt s with
  | Some v when v >= 0 && v <= max_asn -> Some v
  | _ -> None

let pp fmt v = Format.pp_print_int fmt v
