(** Deterministic pseudo-random number generator (splitmix64-based).

    The benchmarks and the synthetic route feed must be reproducible
    run-to-run and independent of the stdlib [Random] state, so we keep
    our own explicitly-seeded generator. Not cryptographic. *)

type t

val create : int -> t
(** [create seed]: generators with equal seeds produce equal streams. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0 .. bound-1].
    @raise Invalid_argument if [bound <= 0]. *)

val bits64 : t -> int64
(** Next raw 64-bit value. *)

val float : t -> float
(** Uniform in [0, 1). *)

val bool : t -> bool

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array.
    @raise Invalid_argument on an empty array. *)

val bytes : t -> int -> string
(** [bytes t n] is [n] uniform random bytes (used for Finder keys). *)
