(* Two-lane (urgent/bulk) work queue with a per-prefix ordering guard.

   Used by the BGP->RIB and RIB->FEA stages to let fresh updates (route
   flaps) overtake a bulk table-load backlog while preserving per-prefix
   FIFO order — the paper's §5.1.2 deletion-vs-re-add discipline must
   hold across lanes, not just within one.

   The guard: an urgent push for a prefix that still has entries queued
   in the bulk lane is demoted to the bulk lane, so it cannot overtake
   the older work for its own prefix. Cross-prefix reordering is exactly
   the point; same-prefix reordering is never allowed.

   The contract the guard relies on: within any one drain turn the
   consumer pops the urgent lane dry before touching the bulk lane
   (see [pop_urgent]/[pop_bulk]). Given that, for any prefix p the
   queue preserves push order: older-urgent-then-newer-bulk drains in
   order because urgent goes first, and older-bulk-then-newer-urgent is
   demoted into the bulk lane behind the older entry.

   [ordered:false] disables the guard — the deliberately broken variant
   the simulation fuzzer must catch (see Simtest). *)

type lane = Urgent | Bulk

let lane_name = function Urgent -> "urgent" | Bulk -> "bulk"

type 'a t = {
  urgent : (Ipv4net.t * 'a) Queue.t;
  bulk : (Ipv4net.t * 'a) Queue.t;
  bulk_pending : (Ipv4net.t, int) Hashtbl.t;
  ordered : bool;
  mutable demoted : int;
  mutable peak : int;
}

let create ?(ordered = true) () =
  { urgent = Queue.create (); bulk = Queue.create ();
    bulk_pending = Hashtbl.create 64; ordered; demoted = 0; peak = 0 }

let urgent_length t = Queue.length t.urgent
let bulk_length t = Queue.length t.bulk
let length t = urgent_length t + bulk_length t
let is_empty t = Queue.is_empty t.urgent && Queue.is_empty t.bulk
let demoted t = t.demoted
let peak_length t = t.peak

let bulk_incr t net =
  let n = Option.value (Hashtbl.find_opt t.bulk_pending net) ~default:0 in
  Hashtbl.replace t.bulk_pending net (n + 1)

let bulk_decr t net =
  match Hashtbl.find_opt t.bulk_pending net with
  | Some n when n <= 1 -> Hashtbl.remove t.bulk_pending net
  | Some n -> Hashtbl.replace t.bulk_pending net (n - 1)
  | None -> ()

let push t lane ~net v =
  let lane =
    match lane with
    | Bulk -> Bulk
    | Urgent ->
      if t.ordered && Hashtbl.mem t.bulk_pending net then begin
        (* Older work for this prefix is still in the bulk lane: demote
           so we cannot overtake it (§5.1.2 across lanes). *)
        t.demoted <- t.demoted + 1;
        Bulk
      end
      else Urgent
  in
  (match lane with
   | Urgent -> Queue.push (net, v) t.urgent
   | Bulk ->
     bulk_incr t net;
     Queue.push (net, v) t.bulk);
  let len = length t in
  if len > t.peak then t.peak <- len

let pop_urgent t =
  match Queue.take_opt t.urgent with
  | None -> None
  | Some (net, v) -> Some (net, v)

let pop_bulk t =
  match Queue.take_opt t.bulk with
  | None -> None
  | Some (net, v) ->
    bulk_decr t net;
    Some (net, v)

let pop t =
  match pop_urgent t with
  | Some _ as r -> r
  | None -> pop_bulk t

let clear t =
  Queue.clear t.urgent;
  Queue.clear t.bulk;
  Hashtbl.reset t.bulk_pending
