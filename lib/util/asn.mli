(** Autonomous System numbers (32-bit, RFC 6793). *)

type t

val of_int : int -> t
(** @raise Invalid_argument outside [0 .. 2{^32}-1]. *)

val to_int : t -> int

val as_trans : t
(** AS 23456, the 16-bit placeholder for 4-byte AS numbers. *)

val is_4byte : t -> bool
(** True if the number does not fit in 16 bits. *)

val is_private : t -> bool
(** True for 64512–65534 and 4200000000–4294967294. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val to_string : t -> string
val of_string : string -> t option
val pp : Format.formatter -> t -> unit
