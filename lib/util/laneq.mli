(** Two-lane (urgent/bulk) work queue with a per-prefix ordering guard.

    Lets fresh updates (a route flap) overtake a bulk table-load
    backlog while preserving per-prefix FIFO order: an urgent push for
    a prefix that still has bulk-lane entries pending is demoted to the
    bulk lane so it cannot overtake older work for its own prefix — the
    paper's §5.1.2 deletion-vs-re-add discipline, enforced across
    lanes.

    Consumer contract: within one drain turn, pop the urgent lane dry
    ({!pop_urgent}, or plain {!pop}) before popping the bulk lane.
    Under that discipline, per-prefix push order is preserved while
    urgent entries for {e other} prefixes bypass the bulk backlog. *)

type lane = Urgent | Bulk

val lane_name : lane -> string
(** ["urgent"] / ["bulk"] — for telemetry gauge names and logs. *)

type 'a t

val create : ?ordered:bool -> unit -> 'a t
(** [ordered] (default [true]) enables the per-prefix demotion guard.
    [ordered:false] is the deliberately broken variant used for
    fuzzer-teeth bug injection; never use it in production paths. *)

val push : 'a t -> lane -> net:Ipv4net.t -> 'a -> unit
(** Enqueue on the given lane. An [Urgent] push is silently demoted to
    [Bulk] when [net] has entries pending in the bulk lane (and the
    queue is [ordered]). *)

val pop : 'a t -> (Ipv4net.t * 'a) option
(** Urgent lane first, then bulk. *)

val pop_urgent : 'a t -> (Ipv4net.t * 'a) option
val pop_bulk : 'a t -> (Ipv4net.t * 'a) option

val length : 'a t -> int
val urgent_length : 'a t -> int
val bulk_length : 'a t -> int
val is_empty : 'a t -> bool

val peak_length : 'a t -> int
(** High-water mark of {!length} since creation (survives {!clear}). *)

val demoted : 'a t -> int
(** Urgent pushes demoted to the bulk lane by the ordering guard. *)

val clear : 'a t -> unit
