(** Thread-safe two-lane mailbox — the cross-domain message primitive.

    A {!Laneq.t} (urgent/bulk lanes with the §5.1.2 per-prefix ordering
    guard) wrapped in a mutex + condition variable so that producers on
    any domain can hand work to a consumer on another domain. This is
    the {e only} sanctioned way route state crosses a domain boundary:
    values are moved by message, never shared (see docs/CONCURRENCY.md).

    Ordering contract: per lane, messages are delivered FIFO; a drain
    empties the urgent lane before taking from the bulk lane, and the
    per-prefix guard demotes urgent pushes that would overtake pending
    bulk work for the same prefix — so per-prefix FIFO holds end to end
    exactly as it does for the single-domain queues.

    Values pushed through a mailbox must be immutable (or never touched
    again by the producer); the mailbox passes them by reference, it
    does not copy. *)

type 'a t
(** A mailbox carrying values of type ['a]. Multiple producers, any
    number of consumers (in practice one). *)

val create : ?ordered:bool -> ?on_wakeup:(unit -> unit) -> unit -> 'a t
(** [create ()] makes an empty open mailbox.

    [ordered] (default [true]) enables the per-prefix demotion guard of
    the underlying {!Laneq.t}.

    [on_wakeup] is invoked — on the {e producer's} domain, outside the
    mailbox lock — whenever a push finds the mailbox empty, i.e. on
    every empty-to-non-empty transition. A consumer that drains the
    mailbox to empty before going idle therefore never misses a wakeup.
    The intended use is [Eventloop.post] to nudge a consumer event
    loop; the callback must itself be thread-safe. *)

val push : 'a t -> Laneq.lane -> net:Ipv4net.t -> 'a -> unit
(** Enqueue on the given lane, keyed by [net] for the per-prefix guard.
    Signals any consumer blocked in {!drain_wait} and fires [on_wakeup]
    when the mailbox was empty. Pushes to a closed mailbox are silently
    dropped. *)

val drain : ?bulk_slice:int -> 'a t -> (Laneq.lane * 'a) list
(** Non-blocking drain: returns the whole urgent lane (in FIFO order)
    followed by at most [bulk_slice] bulk entries (default: all of
    them), tagged with the lane each was delivered from. Returns [[]]
    when the mailbox is empty. *)

val drain_wait : ?timeout_s:float -> ?bulk_slice:int -> 'a t ->
  (Laneq.lane * 'a) list
(** Like {!drain}, but blocks the calling domain until the mailbox is
    non-empty or closed. Returns [[]] only when the mailbox is closed
    and empty, or when [timeout_s] (if given) elapses first — the shard
    worker's "sleep until there is work or we are shutting down" call. *)

val length : 'a t -> int
(** Messages currently queued (both lanes). *)

val is_empty : 'a t -> bool

val demoted : 'a t -> int
(** Urgent pushes demoted to the bulk lane by the per-prefix guard
    since creation (monotonic; telemetry and tests). *)

val close : 'a t -> unit
(** Close the mailbox: subsequent pushes are dropped, blocked
    {!drain_wait} calls return (after delivering anything still
    queued). Idempotent. *)

val is_closed : 'a t -> bool
