exception Truncated

module W = struct
  (* Growable byte buffer with in-place patching. [Buffer.t] cannot
     patch without a full copy (its storage is private), which made
     length back-patching O(n); keeping our own [Bytes] makes
     [patch_u16]/[patch_u32] O(1) and lets framing layers reserve a
     header up front and fill it in after the payload is written. *)
  type t = { mutable buf : Bytes.t; mutable len : int }

  let create ?(initial = 64) () =
    { buf = Bytes.create (max initial 16); len = 0 }

  let reserve t n =
    let needed = t.len + n in
    let cap = Bytes.length t.buf in
    if needed > cap then begin
      let cap' = ref (cap * 2) in
      while needed > !cap' do cap' := !cap' * 2 done;
      let buf' = Bytes.create !cap' in
      Bytes.blit t.buf 0 buf' 0 t.len;
      t.buf <- buf'
    end

  let u8 t v =
    reserve t 1;
    Bytes.unsafe_set t.buf t.len (Char.unsafe_chr (v land 0xFF));
    t.len <- t.len + 1

  let u16 t v =
    reserve t 2;
    Bytes.unsafe_set t.buf t.len (Char.unsafe_chr ((v lsr 8) land 0xFF));
    Bytes.unsafe_set t.buf (t.len + 1) (Char.unsafe_chr (v land 0xFF));
    t.len <- t.len + 2

  let u32 t v =
    reserve t 4;
    Bytes.unsafe_set t.buf t.len (Char.unsafe_chr ((v lsr 24) land 0xFF));
    Bytes.unsafe_set t.buf (t.len + 1) (Char.unsafe_chr ((v lsr 16) land 0xFF));
    Bytes.unsafe_set t.buf (t.len + 2) (Char.unsafe_chr ((v lsr 8) land 0xFF));
    Bytes.unsafe_set t.buf (t.len + 3) (Char.unsafe_chr (v land 0xFF));
    t.len <- t.len + 4

  let bytes t s =
    let n = String.length s in
    reserve t n;
    Bytes.blit_string s 0 t.buf t.len n;
    t.len <- t.len + n

  let ipv4 t a = u32 t (Ipv4.to_int a)
  let length t = t.len
  let contents t = Bytes.sub_string t.buf 0 t.len

  let patch_u16 t off v =
    if off < 0 || off + 2 > t.len then invalid_arg "Wire.W.patch_u16";
    Bytes.unsafe_set t.buf off (Char.unsafe_chr ((v lsr 8) land 0xFF));
    Bytes.unsafe_set t.buf (off + 1) (Char.unsafe_chr (v land 0xFF))

  let patch_u32 t off v =
    if off < 0 || off + 4 > t.len then invalid_arg "Wire.W.patch_u32";
    Bytes.unsafe_set t.buf off (Char.unsafe_chr ((v lsr 24) land 0xFF));
    Bytes.unsafe_set t.buf (off + 1) (Char.unsafe_chr ((v lsr 16) land 0xFF));
    Bytes.unsafe_set t.buf (off + 2) (Char.unsafe_chr ((v lsr 8) land 0xFF));
    Bytes.unsafe_set t.buf (off + 3) (Char.unsafe_chr (v land 0xFF))

  let clear t = t.len <- 0

  let blit t ~dst ~dst_off =
    if dst_off < 0 || dst_off + t.len > Bytes.length dst then
      invalid_arg "Wire.W.blit";
    Bytes.blit t.buf 0 dst dst_off t.len
end

module R = struct
  type t = { src : string; limit : int; mutable pos : int }

  let of_string ?(off = 0) ?len src =
    let len = match len with Some l -> l | None -> String.length src - off in
    if off < 0 || len < 0 || off + len > String.length src then
      invalid_arg "Wire.R.of_string";
    { src; limit = off + len; pos = off }

  let need r n = if r.pos + n > r.limit then raise Truncated

  let u8 r =
    need r 1;
    let v = Char.code r.src.[r.pos] in
    r.pos <- r.pos + 1;
    v

  let u16 r =
    let hi = u8 r in
    let lo = u8 r in
    (hi lsl 8) lor lo

  let u32 r =
    let hi = u16 r in
    let lo = u16 r in
    (hi lsl 16) lor lo

  let bytes r n =
    if n < 0 then invalid_arg "Wire.R.bytes";
    need r n;
    let s = String.sub r.src r.pos n in
    r.pos <- r.pos + n;
    s

  let ipv4 r = Ipv4.of_int (u32 r)
  let remaining r = r.limit - r.pos
  let eof r = r.pos >= r.limit
  let pos r = r.pos

  let sub r n =
    if n < 0 then invalid_arg "Wire.R.sub";
    need r n;
    let inner = { src = r.src; limit = r.pos + n; pos = r.pos } in
    r.pos <- r.pos + n;
    inner
end
