exception Truncated

module W = struct
  type t = Buffer.t

  let create ?(initial = 64) () = Buffer.create initial
  let u8 b v = Buffer.add_char b (Char.chr (v land 0xFF))

  let u16 b v =
    u8 b (v lsr 8);
    u8 b v

  let u32 b v =
    u16 b (v lsr 16);
    u16 b v

  let bytes = Buffer.add_string
  let ipv4 b a = u32 b (Ipv4.to_int a)
  let length = Buffer.length
  let contents = Buffer.contents

  let patch_u16 b off v =
    if off < 0 || off + 2 > Buffer.length b then invalid_arg "Wire.W.patch_u16";
    let s = Buffer.to_bytes b in
    Bytes.set s off (Char.chr ((v lsr 8) land 0xFF));
    Bytes.set s (off + 1) (Char.chr (v land 0xFF));
    Buffer.clear b;
    Buffer.add_bytes b s
end

module R = struct
  type t = { src : string; limit : int; mutable pos : int }

  let of_string ?(off = 0) ?len src =
    let len = match len with Some l -> l | None -> String.length src - off in
    if off < 0 || len < 0 || off + len > String.length src then
      invalid_arg "Wire.R.of_string";
    { src; limit = off + len; pos = off }

  let need r n = if r.pos + n > r.limit then raise Truncated

  let u8 r =
    need r 1;
    let v = Char.code r.src.[r.pos] in
    r.pos <- r.pos + 1;
    v

  let u16 r =
    let hi = u8 r in
    let lo = u8 r in
    (hi lsl 8) lor lo

  let u32 r =
    let hi = u16 r in
    let lo = u16 r in
    (hi lsl 16) lor lo

  let bytes r n =
    if n < 0 then invalid_arg "Wire.R.bytes";
    need r n;
    let s = String.sub r.src r.pos n in
    r.pos <- r.pos + n;
    s

  let ipv4 r = Ipv4.of_int (u32 r)
  let remaining r = r.limit - r.pos
  let eof r = r.pos >= r.limit
  let pos r = r.pos

  let sub r n =
    if n < 0 then invalid_arg "Wire.R.sub";
    need r n;
    let inner = { src = r.src; limit = r.pos + n; pos = r.pos } in
    r.pos <- r.pos + n;
    inner
end
