type entry = {
  net : Ipv4net.t;
  nexthop : Ipv4.t;
  as_path : int list;
  med : int;
  localpref : int;
}

let paper_table_size = 146515

(* Prefix-length distribution loosely matching public routing-table
   statistics: /24 dominates, a tail of shorter aggregates. The weights
   sum to 100 and are sampled by cumulative lookup. *)
let len_dist = [| (24, 55); (23, 9); (22, 10); (21, 5); (20, 6);
                  (19, 6); (18, 3); (17, 2); (16, 3); (15, 1) |]

let sample_weighted rng dist total =
  let roll = Rng.int rng total in
  let rec go i acc =
    let v, w = dist.(i) in
    if roll < acc + w || i = Array.length dist - 1 then v
    else go (i + 1) (acc + w)
  in
  go 0 0

let sample_len rng = sample_weighted rng len_dist 100

let sample_nexthop rng =
  (* A handful of peering-LAN addresses, as a real session would have. *)
  Ipv4.of_octets 10 0 (Rng.int rng 4) (1 + Rng.int rng 8)

(* AS-path hop-count distribution matching mid-2000s BGP table surveys:
   mass concentrated at 3-5 hops (mean ~3.9), a thin tail out to 10.
   Weights sum to 1000. *)
let path_len_dist =
  [| (1, 10); (2, 82); (3, 271); (4, 309); (5, 192); (6, 81); (7, 31);
     (8, 14); (9, 6); (10, 4) |]

(* Real paths climb from a stub origin through regional transit into a
   small core, so the first hops are drawn from much smaller AS pools
   than the origins; ~6% of paths prepend their origin AS a few times
   for inbound traffic engineering. *)
let sample_as_path rng =
  let hops = sample_weighted rng path_len_dist 1000 in
  let origin = 1 + Rng.int rng 30000 in
  let path =
    List.init hops (fun i ->
        if i = hops - 1 then origin
        else if i = 0 then 1 + Rng.int rng 64 (* core / tier-1 pool *)
        else 100 + Rng.int rng 2048 (* transit pool *))
  in
  if Rng.int rng 100 < 6 then
    path @ List.init (1 + Rng.int rng 3) (fun _ -> origin)
  else path

let generate ?(seed = 42) n =
  if n < 0 then invalid_arg "Feed.generate";
  let rng = Rng.create seed in
  let seen = Hashtbl.create (2 * n + 1) in
  let fresh_prefix () =
    let rec try_one () =
      let len = sample_len rng in
      (* Restrict to 1.0.0.0 .. 223.255.255.255 so we avoid reserved
         space; host bits are zeroed by Ipv4net.make. *)
      let hi = 1 + Rng.int rng 223 in
      let addr = Ipv4.of_octets hi (Rng.int rng 256) (Rng.int rng 256) 0 in
      let net = Ipv4net.make addr len in
      if Hashtbl.mem seen net then try_one ()
      else begin
        Hashtbl.add seen net ();
        net
      end
    in
    try_one ()
  in
  Array.init n (fun _ ->
      { net = fresh_prefix ();
        nexthop = sample_nexthop rng;
        as_path = sample_as_path rng;
        med = Rng.int rng 100;
        localpref = 100 })

let nexthops entries =
  let tbl = Hashtbl.create 16 in
  Array.iter (fun e -> Hashtbl.replace tbl e.nexthop ()) entries;
  Hashtbl.fold (fun k () acc -> k :: acc) tbl []
  |> List.sort Ipv4.compare
