type entry = {
  net : Ipv4net.t;
  nexthop : Ipv4.t;
  as_path : int list;
  med : int;
  localpref : int;
}

let paper_table_size = 146515

(* Prefix-length distribution loosely matching public routing-table
   statistics: /24 dominates, a tail of shorter aggregates. The weights
   sum to 100 and are sampled by cumulative lookup. *)
let len_dist = [| (24, 55); (23, 9); (22, 10); (21, 5); (20, 6);
                  (19, 6); (18, 3); (17, 2); (16, 3); (15, 1) |]

let sample_len rng =
  let roll = Rng.int rng 100 in
  let rec go i acc =
    let len, w = len_dist.(i) in
    if roll < acc + w || i = Array.length len_dist - 1 then len
    else go (i + 1) (acc + w)
  in
  go 0 0

let sample_nexthop rng =
  (* A handful of peering-LAN addresses, as a real session would have. *)
  Ipv4.of_octets 10 0 (Rng.int rng 4) (1 + Rng.int rng 8)

let sample_as_path rng =
  let hops = 1 + Rng.int rng 6 in
  List.init hops (fun _ -> 1 + Rng.int rng 64000)

let generate ?(seed = 42) n =
  if n < 0 then invalid_arg "Feed.generate";
  let rng = Rng.create seed in
  let seen = Hashtbl.create (2 * n + 1) in
  let fresh_prefix () =
    let rec try_one () =
      let len = sample_len rng in
      (* Restrict to 1.0.0.0 .. 223.255.255.255 so we avoid reserved
         space; host bits are zeroed by Ipv4net.make. *)
      let hi = 1 + Rng.int rng 223 in
      let addr = Ipv4.of_octets hi (Rng.int rng 256) (Rng.int rng 256) 0 in
      let net = Ipv4net.make addr len in
      if Hashtbl.mem seen net then try_one ()
      else begin
        Hashtbl.add seen net ();
        net
      end
    in
    try_one ()
  in
  Array.init n (fun _ ->
      { net = fresh_prefix ();
        nexthop = sample_nexthop rng;
        as_path = sample_as_path rng;
        med = Rng.int rng 100;
        localpref = 100 })

let nexthops entries =
  let tbl = Hashtbl.create 16 in
  Array.iter (fun e -> Hashtbl.replace tbl e.nexthop ()) entries;
  Hashtbl.fold (fun k () acc -> k :: acc) tbl []
  |> List.sort Ipv4.compare
