(** IPv4 network prefixes ("subnets").

    A prefix is an address plus a mask length; the address is always
    stored in canonical form (host bits zeroed), so structural equality
    coincides with semantic equality. *)

type t

val make : Ipv4.t -> int -> t
(** [make addr len] canonicalizes [addr] to [len] bits.
    @raise Invalid_argument unless [0 <= len <= 32]. *)

val network : t -> Ipv4.t
(** Network address (host bits are zero). *)

val prefix_len : t -> int

val netmask : t -> Ipv4.t

val default : t
(** [0.0.0.0/0]. *)

val host : Ipv4.t -> t
(** [/32] prefix covering exactly one address. *)

val of_string : string -> t option
(** Parse ["a.b.c.d/len"]. A bare address parses as a /32. *)

val of_string_exn : string -> t
(** @raise Invalid_argument on malformed input. *)

val to_string : t -> string
(** e.g. ["128.16.0.0/18"]. *)

val contains_addr : t -> Ipv4.t -> bool
(** [contains_addr net a]: does [a] fall inside [net]? *)

val contains : t -> t -> bool
(** [contains outer inner]: is [inner] a subset of (or equal to)
    [outer]? *)

val overlaps : t -> t -> bool
(** True iff one contains the other (IPv4 prefixes either nest or are
    disjoint). *)

val first_addr : t -> Ipv4.t
val last_addr : t -> Ipv4.t

val split : t -> (t * t) option
(** Split into the two half-length-[+1] children; [None] for a /32. *)

val parent : t -> t option
(** The enclosing prefix one bit shorter; [None] for /0. *)

val compare : t -> t -> int
(** Orders by network address, then by prefix length (shorter first),
    so a sorted list groups nested prefixes together. *)

val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
