(** Synthetic Internet route feed generator.

    The paper's full-table experiments use a live backbone feed of
    146,515 routes; we have no live peers, so this module produces a
    deterministic synthetic substitute with a realistic prefix-length
    distribution (dominated by /24s, per routing-table surveys) and
    plausible AS paths. See DESIGN.md for the substitution rationale. *)

type entry = {
  net : Ipv4net.t;
  nexthop : Ipv4.t;
  as_path : int list;
  (** Nearest hop first, origin AS last. Hop count follows a survey
      distribution (mass at 3–5, mean ~3.9, tail to 10); ~6% of paths
      prepend their origin AS, as real traffic engineering does. *)
  med : int;
  localpref : int;
}

val paper_table_size : int
(** 146515 — the table size used throughout the paper's §8.2. *)

val generate : ?seed:int -> int -> entry array
(** [generate n] produces [n] entries with distinct prefixes. The same
    [seed] yields the same feed. O(n) expected time. *)

val nexthops : entry array -> Ipv4.t list
(** Distinct nexthop addresses appearing in the feed, sorted. *)
