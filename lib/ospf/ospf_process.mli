(** The link-state routing component ("OSPF-lite").

    The paper lists OSPF support as under development (§4); this is
    that protocol slot filled with a simplified but architecturally
    faithful link-state IGP:

    - hello-based adjacency with a dead interval (a neighbour is usable
      only while its hellos keep arriving {e and} it reports hearing
      us — the two-way check);
    - sequence-numbered router LSAs flooded hop by hop, with periodic
      refresh and origin-death flush;
    - Dijkstra SPF ({!Spf}) over the link-state database, debounced so
      an LSA burst triggers one computation;
    - resulting routes offered to the RIB as protocol ["ospf"]
      (administrative distance 110).

    Like RIP, all datagrams travel through the FEA's UDP relay
    ([fea_udp/1.0]), so the process remains sandboxable (§7).
    Simplifications versus RFC 2328: no areas, no DR/BDR election, no
    LSAck (reliability by refresh), no aging-based checksum. *)

type neighbor_config = {
  n_addr : Ipv4.t;    (** Neighbour's interface address. *)
  n_id : Ipv4.t;      (** Neighbour's router id. *)
  n_cost : int;       (** Our cost toward it. *)
}

type iface_config = {
  o_addr : Ipv4.t;                 (** Local interface address. *)
  o_neighbors : neighbor_config list;
}

type config = {
  router_id : Ipv4.t;
  ifaces : iface_config list;
  stub_prefixes : (Ipv4net.t * int) list; (** Prefixes this router advertises. *)
  hello_interval : float;          (** Default 5 s. *)
  dead_interval : float;           (** Default 20 s. *)
  refresh_interval : float;        (** LSA re-origination, default 60 s. *)
  send_to_rib : bool;
}

val default_config :
  router_id:Ipv4.t -> ifaces:iface_config list ->
  ?stub_prefixes:(Ipv4net.t * int) list -> unit -> config

type t

val create :
  ?families:Pf.family list ->
  ?profiler:Profiler.t ->
  ?rib_rebirth_resync:bool ->
  Finder.t -> Eventloop.t -> config -> t
(** Registers component class ["ospf"]. [families] selects the XRL
    transports of the component's endpoint (default: intra-process; the
    simulation harness passes a chaos-wrapped family).

    FEA socket opens are retried with backoff, and re-issued when a
    restarted FEA registers (its relay sockets die with it).

    [rib_rebirth_resync] (default true) makes the process watch the
    ["rib"] Finder class and, when a restarted RIB registers, replay
    its installed SPF routes into the reborn (empty) origin table.
    [false] is the deliberately broken variant behind the simulation
    fuzzer's [rib-no-resync] injected bug. *)

val start : t -> unit

val add_stub : t -> Ipv4net.t -> int -> unit
(** Advertise another prefix; floods a new LSA. *)

val remove_stub : t -> Ipv4net.t -> unit

val adjacency_up : t -> Ipv4.t -> bool
(** Is the adjacency with the given router id fully up (two-way)? *)

val lsdb_size : t -> int
val spf_runs : t -> int

val route_table : t -> (Ipv4net.t * int * Ipv4.t) list
(** Current SPF result: (prefix, cost, nexthop interface address);
    excludes our own stubs. *)

val instance_name : t -> string
val shutdown : t -> unit

val xrl_router : t -> Xrl_router.t
(** The component's XRL endpoint (e.g. to inspect registrations). *)
