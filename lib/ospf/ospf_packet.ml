type lsa = {
  origin : Ipv4.t;
  seq : int;
  links : (Ipv4.t * int) list;
  stubs : (Ipv4net.t * int) list;
}

type t =
  | Hello of { router_id : Ipv4.t; heard : Ipv4.t list }
  | Ls_update of lsa list

let magic = 0x4C53 (* "LS" *)
let ty_hello = 1
let ty_lsupdate = 2

let encode t =
  let w = Wire.W.create () in
  Wire.W.u16 w magic;
  (match t with
   | Hello { router_id; heard } ->
     Wire.W.u8 w ty_hello;
     Wire.W.ipv4 w router_id;
     Wire.W.u16 w (List.length heard);
     List.iter (Wire.W.ipv4 w) heard
   | Ls_update lsas ->
     Wire.W.u8 w ty_lsupdate;
     Wire.W.u16 w (List.length lsas);
     List.iter
       (fun lsa ->
          Wire.W.ipv4 w lsa.origin;
          Wire.W.u32 w lsa.seq;
          Wire.W.u16 w (List.length lsa.links);
          List.iter
            (fun (n, cost) ->
               Wire.W.ipv4 w n;
               Wire.W.u32 w cost)
            lsa.links;
          Wire.W.u16 w (List.length lsa.stubs);
          List.iter
            (fun (net, cost) ->
               Wire.W.ipv4 w (Ipv4net.network net);
               Wire.W.u8 w (Ipv4net.prefix_len net);
               Wire.W.u32 w cost)
            lsa.stubs)
       lsas);
  Wire.W.contents w

let decode s =
  try
    let r = Wire.R.of_string s in
    if Wire.R.u16 r <> magic then Error "bad magic"
    else begin
      let ty = Wire.R.u8 r in
      if ty = ty_hello then begin
        let router_id = Wire.R.ipv4 r in
        let n = Wire.R.u16 r in
        let heard = List.init n (fun _ -> Wire.R.ipv4 r) in
        Ok (Hello { router_id; heard })
      end
      else if ty = ty_lsupdate then begin
        let n = Wire.R.u16 r in
        let lsas =
          List.init n (fun _ ->
              let origin = Wire.R.ipv4 r in
              let seq = Wire.R.u32 r in
              let nl = Wire.R.u16 r in
              let links =
                List.init nl (fun _ ->
                    let n = Wire.R.ipv4 r in
                    let cost = Wire.R.u32 r in
                    (n, cost))
              in
              let ns = Wire.R.u16 r in
              let stubs =
                List.init ns (fun _ ->
                    let a = Wire.R.ipv4 r in
                    let len = Wire.R.u8 r in
                    if len > 32 then failwith "bad prefix length";
                    let cost = Wire.R.u32 r in
                    (Ipv4net.make a len, cost))
              in
              { origin; seq; links; stubs })
        in
        Ok (Ls_update lsas)
      end
      else Error (Printf.sprintf "unknown packet type %d" ty)
    end
  with
  | Wire.Truncated -> Error "truncated packet"
  | Failure msg -> Error msg

let to_string = function
  | Hello { router_id; heard } ->
    Printf.sprintf "HELLO from %s hears [%s]" (Ipv4.to_string router_id)
      (String.concat " " (List.map Ipv4.to_string heard))
  | Ls_update lsas ->
    Printf.sprintf "LSUPDATE [%s]"
      (String.concat "; "
         (List.map
            (fun lsa ->
               Printf.sprintf "%s#%d %d links %d stubs"
                 (Ipv4.to_string lsa.origin)
                 lsa.seq (List.length lsa.links) (List.length lsa.stubs))
            lsas))

let lsa_newer a b = a > b
