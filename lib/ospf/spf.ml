type node = Ipv4.t
type link = { to_node : node; cost : int }

type lsa_view = {
  origin : node;
  links : link list;
  stubs : (Ipv4net.t * int) list;
}

type path = { dist : int; first_hop : node }

let node_key = Ipv4.to_int

(* Adjacency map keeping only bidirectional links (cost taken from the
   forward direction, as in OSPF). *)
let build_adjacency lsas =
  let by_origin = Hashtbl.create 64 in
  List.iter (fun lsa -> Hashtbl.replace by_origin (node_key lsa.origin) lsa) lsas;
  let advertises a b =
    match Hashtbl.find_opt by_origin (node_key a) with
    | Some lsa -> List.exists (fun l -> Ipv4.equal l.to_node b) lsa.links
    | None -> false
  in
  let adj = Hashtbl.create 64 in
  List.iter
    (fun lsa ->
       let usable =
         List.filter (fun l -> advertises l.to_node lsa.origin) lsa.links
       in
       Hashtbl.replace adj (node_key lsa.origin) usable)
    lsas;
  adj

let run ~root lsas =
  let adj = build_adjacency lsas in
  (* dist/first_hop maps; a simple priority queue via Minheap-like
     sorted insertion is overkill here — use a scan over the frontier
     (LSDBs are small relative to routing tables). *)
  let dist : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let first_hop : (int, node) Hashtbl.t = Hashtbl.create 64 in
  let visited : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.replace dist (node_key root) 0;
  let node_of = Hashtbl.create 64 in
  List.iter (fun lsa -> Hashtbl.replace node_of (node_key lsa.origin) lsa.origin) lsas;
  Hashtbl.replace node_of (node_key root) root;
  let pick_next () =
    Hashtbl.fold
      (fun key d best ->
         if Hashtbl.mem visited key then best
         else
           match best with
           | Some (bk, bd) when bd < d || (bd = d && bk < key) -> best
           | _ -> Some (key, d))
      dist None
  in
  let rec loop () =
    match pick_next () with
    | None -> ()
    | Some (ukey, ud) ->
      Hashtbl.replace visited ukey ();
      let neighbours =
        Option.value (Hashtbl.find_opt adj ukey) ~default:[]
      in
      List.iter
        (fun { to_node; cost } ->
           if cost >= 0 then begin
             let vkey = node_key to_node in
             Hashtbl.replace node_of vkey to_node;
             let alt = ud + cost in
             let fh =
               if ukey = node_key root then to_node
               else Hashtbl.find first_hop ukey
             in
             let better =
               match Hashtbl.find_opt dist vkey with
               | None -> true
               | Some cur when alt < cur -> true
               | Some cur when alt = cur ->
                 (* deterministic tie-break: lower first hop *)
                 (match Hashtbl.find_opt first_hop vkey with
                  | Some cur_fh -> Ipv4.compare fh cur_fh < 0
                  | None -> true)
               | Some _ -> false
             in
             if better && not (Hashtbl.mem visited vkey) then begin
               Hashtbl.replace dist vkey alt;
               Hashtbl.replace first_hop vkey fh
             end
           end)
        neighbours;
      loop ()
  in
  loop ();
  Hashtbl.fold
    (fun key d acc ->
       if key = node_key root then acc
       else
         (Hashtbl.find node_of key, { dist = d; first_hop = Hashtbl.find first_hop key })
         :: acc)
    dist []
  |> List.sort (fun (a, _) (b, _) -> Ipv4.compare a b)

let routes ~root lsas =
  let paths = run ~root lsas in
  let path_of n =
    if Ipv4.equal n root then Some { dist = 0; first_hop = root }
    else
      List.find_map
        (fun (m, p) -> if Ipv4.equal m n then Some p else None)
        paths
  in
  let best : (Ipv4net.t, int * node) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun lsa ->
       match path_of lsa.origin with
       | None -> () (* unreachable island *)
       | Some p ->
         List.iter
           (fun (net, stub_cost) ->
              let total = p.dist + stub_cost in
              let replace =
                match Hashtbl.find_opt best net with
                | None -> true
                | Some (cur, cur_fh) ->
                  total < cur
                  || (total = cur && Ipv4.compare p.first_hop cur_fh < 0)
              in
              if replace then Hashtbl.replace best net (total, p.first_hop))
           lsa.stubs)
    lsas;
  Hashtbl.fold (fun net (cost, fh) acc -> (net, cost, fh) :: acc) best []
  |> List.sort (fun (a, _, _) (b, _, _) -> Ipv4net.compare a b)
