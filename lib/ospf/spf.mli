(** Shortest-path-first computation (Dijkstra) over a link-state
    database — the core of the link-state protocol, kept pure for easy
    testing.

    Nodes are router identifiers (IPv4-shaped, as in OSPF). Links are
    directed with integer costs; a link is only used if {e both}
    directions are advertised (the bidirectionality check real OSPF
    performs), guarding against half-dead adjacencies. *)

type node = Ipv4.t
(** Router identifier. *)

type link = { to_node : node; cost : int }

type lsa_view = {
  origin : node;
  links : link list;                     (** Adjacent routers. *)
  stubs : (Ipv4net.t * int) list;        (** Attached prefixes with costs. *)
}

type path = {
  dist : int;        (** Total cost from the root. *)
  first_hop : node;  (** The root's neighbour on the shortest path;
                         equals the destination for direct neighbours. *)
}

val run : root:node -> lsa_view list -> (node * path) list
(** Shortest paths from [root] to every reachable router (excluding the
    root itself). Deterministic: equal-cost ties resolve toward the
    lower router id, both for the node relaxation order and the chosen
    first hop. *)

val routes :
  root:node -> lsa_view list -> (Ipv4net.t * int * node) list
(** Route table derived from {!run}: for every stub prefix in the
    database, [(prefix, total cost, first hop)] — including the root's
    own stubs with [first_hop = root] and cost as advertised. When
    several routers advertise the same prefix, the cheapest (then
    lowest-first-hop) wins. Sorted by prefix. *)
