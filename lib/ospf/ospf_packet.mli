(** Wire codec for the link-state protocol ("OSPF-lite").

    A deliberately simplified cousin of OSPFv2 (RFC 2328) — the paper
    lists OSPF as under development, and this implements the same
    architecture class: hello-based adjacency, sequence-numbered LSA
    flooding, and SPF. Simplifications versus the RFC are documented in
    DESIGN.md (no areas, no designated routers, no checksum/age fields,
    acknowledgement by periodic refresh instead of LSAck).

    Packets: HELLO (adjacency keep-alive, carries the router id and the
    neighbours it currently hears) and LSUPDATE (a batch of LSAs, each
    with origin, sequence number, router links and stub prefixes). *)

type lsa = {
  origin : Ipv4.t;
  seq : int;
  links : (Ipv4.t * int) list;          (** (neighbour router id, cost) *)
  stubs : (Ipv4net.t * int) list;       (** (prefix, cost) *)
}

type t =
  | Hello of { router_id : Ipv4.t; heard : Ipv4.t list }
  | Ls_update of lsa list

val encode : t -> string
val decode : string -> (t, string) result
val to_string : t -> string

val lsa_newer : int -> int -> bool
(** [lsa_newer a b]: is sequence [a] strictly newer than [b]? (Plain
    comparison; sequence wrap is out of scope at simulation scale.) *)
