let src = Logs.Src.create "xorp.ospf" ~doc:"link-state routing process"

module Log = (val Logs.src_log src : Logs.LOG)

let ospf_port = 2089

type neighbor_config = { n_addr : Ipv4.t; n_id : Ipv4.t; n_cost : int }
type iface_config = { o_addr : Ipv4.t; o_neighbors : neighbor_config list }

type config = {
  router_id : Ipv4.t;
  ifaces : iface_config list;
  stub_prefixes : (Ipv4net.t * int) list;
  hello_interval : float;
  dead_interval : float;
  refresh_interval : float;
  send_to_rib : bool;
}

let default_config ~router_id ~ifaces ?(stub_prefixes = []) () =
  { router_id; ifaces; stub_prefixes; hello_interval = 5.0;
    dead_interval = 20.0; refresh_interval = 60.0; send_to_rib = true }

type adjacency = {
  a_cfg : neighbor_config;
  a_ifaddr : Ipv4.t;
  mutable a_last_hello : float;
  mutable a_hears_us : bool;
  mutable a_up : bool;
  mutable a_dead_timer : Eventloop.timer option;
}

type t = {
  router : Xrl_router.t;
  loop : Eventloop.t;
  cfg : config;
  (* neighbour router-id -> adjacency *)
  adjacencies : (int, adjacency) Hashtbl.t;
  (* neighbour interface address -> adjacency (for packet demux) *)
  by_addr : (int, adjacency) Hashtbl.t;
  socks : (int, int) Hashtbl.t; (* ifaddr -> FEA sockid *)
  lsdb : (int, Ospf_packet.lsa * float ref) Hashtbl.t; (* origin -> lsa, stamp *)
  mutable my_seq : int;
  mutable stubs : (Ipv4net.t * int) list;
  mutable spf_pending : bool;
  mutable spf_count : int;
  mutable started : bool;
  mutable fea_up : bool;
  (* False while no RIB instance is registered: route announcements are
     suppressed (the reborn RIB starts empty, so skipped deletes are
     moot) and a rebirth triggers a full replay of [installed]. *)
  mutable rib_up : bool;
  rib_rebirth_resync : bool;
  c_resync_replayed : Telemetry.counter;
  (* prefix -> (cost, nexthop) currently installed in the RIB *)
  installed : (Ipv4net.t, int * Ipv4.t) Hashtbl.t;
}

let instance_name t = Xrl_router.instance_name t.router
let lsdb_size t = Hashtbl.length t.lsdb
let spf_runs t = t.spf_count

let adjacency_up t id =
  match Hashtbl.find_opt t.adjacencies (Ipv4.to_int id) with
  | Some a -> a.a_up
  | None -> false

(* --- I/O through the FEA relay ----------------------------------------- *)

let send_packet t ~ifaddr ~dst pkt =
  match Hashtbl.find_opt t.socks (Ipv4.to_int ifaddr) with
  | None -> ()
  | Some sockid ->
    let xrl =
      Xrl.make ~target:"fea" ~interface:"fea_udp" ~method_name:"udp_send"
        [ Xrl_atom.u32 "sockid" sockid;
          Xrl_atom.ipv4 "dst" dst;
          Xrl_atom.u32 "dport" ospf_port;
          Xrl_atom.binary "payload" (Ospf_packet.encode pkt) ]
    in
    Xrl_router.send t.router xrl (fun err _ ->
        if not (Xrl_error.is_ok err) then
          Log.warn (fun m ->
              m "udp_send to %s failed: %s" (Ipv4.to_string dst)
                (Xrl_error.to_string err)))

let iter_up_adjacencies t f =
  Hashtbl.iter (fun _ a -> if a.a_up then f a) t.adjacencies

let flood t ?except lsas =
  if lsas <> [] then
    iter_up_adjacencies t (fun a ->
        let skip =
          match except with
          | Some addr -> Ipv4.equal a.a_cfg.n_addr addr
          | None -> false
        in
        if not skip then
          send_packet t ~ifaddr:a.a_ifaddr ~dst:a.a_cfg.n_addr
            (Ospf_packet.Ls_update lsas))

(* --- RIB interaction ----------------------------------------------------- *)

(* Route transfers into the RIB are idempotent, so they qualify for
   bounded retry. [No_such_method] is in the retryable set, which
   closes the Finder birth gap: a reborn RIB is resolvable one loop
   turn before its handlers are registered. *)
let rib_retry = Xrl_router.default_retry

let rib_update t method_name args =
  if t.cfg.send_to_rib && t.rib_up then
    Xrl_router.send ~retry:rib_retry t.router
      (Xrl.make ~target:"rib" ~interface:"rib" ~method_name args)
      (fun err _ ->
         if not (Xrl_error.is_ok err) then
           Log.debug (fun m ->
               m "rib %s failed: %s" method_name (Xrl_error.to_string err)))

let rib_add t net cost nexthop =
  rib_update t "add_route"
    [ Xrl_atom.txt "protocol" "ospf";
      Xrl_atom.ipv4net "net" net;
      Xrl_atom.ipv4 "nexthop" nexthop;
      Xrl_atom.u32 "metric" cost ]

let rib_delete t net =
  rib_update t "delete_route"
    [ Xrl_atom.txt "protocol" "ospf"; Xrl_atom.ipv4net "net" net ]

(* --- SPF ------------------------------------------------------------------- *)

let lsdb_views t =
  Hashtbl.fold
    (fun _ (lsa, _) acc ->
       { Spf.origin = lsa.Ospf_packet.origin;
         links =
           List.map
             (fun (n, cost) -> { Spf.to_node = n; cost })
             lsa.Ospf_packet.links;
         stubs = lsa.Ospf_packet.stubs }
       :: acc)
    t.lsdb []

let run_spf t =
  t.spf_count <- t.spf_count + 1;
  let routes = Spf.routes ~root:t.cfg.router_id (lsdb_views t) in
  (* Keep remote prefixes only, and translate the first-hop router id
     into that neighbour's interface address. *)
  let wanted = Hashtbl.create 64 in
  List.iter
    (fun (net, cost, first_hop) ->
       if not (Ipv4.equal first_hop t.cfg.router_id) then
         match Hashtbl.find_opt t.adjacencies (Ipv4.to_int first_hop) with
         | Some a when a.a_up -> Hashtbl.replace wanted net (cost, a.a_cfg.n_addr)
         | _ -> ())
    routes;
  (* Diff against what we installed. *)
  Hashtbl.iter
    (fun net (cost, nexthop) ->
       match Hashtbl.find_opt t.installed net with
       | Some (c, nh) when c = cost && Ipv4.equal nh nexthop -> ()
       | _ ->
         Hashtbl.replace t.installed net (cost, nexthop);
         rib_add t net cost nexthop)
    wanted;
  let stale =
    Hashtbl.fold
      (fun net _ acc -> if Hashtbl.mem wanted net then acc else net :: acc)
      t.installed []
  in
  List.iter
    (fun net ->
       Hashtbl.remove t.installed net;
       rib_delete t net)
    stale

(* A burst of LSAs triggers one SPF: debounced by a short timer. *)
let schedule_spf t =
  if not t.spf_pending then begin
    t.spf_pending <- true;
    ignore
      (Eventloop.after t.loop 0.05 (fun () ->
           t.spf_pending <- false;
           run_spf t))
  end

(* --- LSA origination and flooding --------------------------------------------- *)

let own_lsa t =
  { Ospf_packet.origin = t.cfg.router_id;
    seq = t.my_seq;
    links =
      Hashtbl.fold
        (fun _ a acc ->
           if a.a_up then (a.a_cfg.n_id, a.a_cfg.n_cost) :: acc else acc)
        t.adjacencies [];
    stubs = t.stubs }

let originate t =
  t.my_seq <- t.my_seq + 1;
  let lsa = own_lsa t in
  Hashtbl.replace t.lsdb (Ipv4.to_int t.cfg.router_id)
    (lsa, ref (Eventloop.now t.loop));
  flood t [ lsa ];
  schedule_spf t

let handle_lsupdate t ~src:srcaddr lsas =
  let to_flood = ref [] in
  List.iter
    (fun (lsa : Ospf_packet.lsa) ->
       if Ipv4.equal lsa.origin t.cfg.router_id then begin
         (* A copy of our own LSA came back. Copies at our current
            sequence are normal flooding echoes; only a STRICTLY newer
            one (stale survivor of a previous incarnation of this
            router) is fought back with a higher sequence number. *)
         if lsa.seq > t.my_seq then begin
           t.my_seq <- lsa.seq;
           originate t
         end
       end
       else begin
         let key = Ipv4.to_int lsa.origin in
         match Hashtbl.find_opt t.lsdb key with
         | Some (cur, stamp) when not (Ospf_packet.lsa_newer lsa.seq cur.seq) ->
           (* Stale or duplicate. If strictly older, help the sender
              catch up. *)
           stamp := Eventloop.now t.loop;
           if Ospf_packet.lsa_newer cur.seq lsa.seq then
             (match Hashtbl.find_opt t.by_addr (Ipv4.to_int srcaddr) with
              | Some a ->
                send_packet t ~ifaddr:a.a_ifaddr ~dst:srcaddr
                  (Ospf_packet.Ls_update [ cur ])
              | None -> ())
         | _ ->
           Hashtbl.replace t.lsdb key (lsa, ref (Eventloop.now t.loop));
           to_flood := lsa :: !to_flood;
           schedule_spf t
       end)
    lsas;
  flood t ~except:srcaddr !to_flood

(* --- adjacency management ------------------------------------------------------ *)

let adjacency_changed t a up =
  if a.a_up <> up then begin
    a.a_up <- up;
    Log.info (fun m ->
        m "adjacency with %s %s" (Ipv4.to_string a.a_cfg.n_id)
          (if up then "up" else "down"));
    if up then begin
      (* Database exchange, simplified: give the new neighbour our
         whole LSDB. *)
      let all = Hashtbl.fold (fun _ (lsa, _) acc -> lsa :: acc) t.lsdb [] in
      if all <> [] then
        send_packet t ~ifaddr:a.a_ifaddr ~dst:a.a_cfg.n_addr
          (Ospf_packet.Ls_update all)
    end;
    originate t
  end

let reset_dead_timer t a =
  Option.iter Eventloop.cancel a.a_dead_timer;
  a.a_dead_timer <-
    Some
      (Eventloop.after t.loop t.cfg.dead_interval (fun () ->
           a.a_hears_us <- false;
           adjacency_changed t a false))

let handle_hello t ~src:srcaddr (router_id, heard) =
  match Hashtbl.find_opt t.by_addr (Ipv4.to_int srcaddr) with
  | None ->
    Log.debug (fun m -> m "hello from unconfigured %s" (Ipv4.to_string srcaddr))
  | Some a ->
    if not (Ipv4.equal router_id a.a_cfg.n_id) then
      Log.warn (fun m ->
          m "hello from %s claims id %s, expected %s" (Ipv4.to_string srcaddr)
            (Ipv4.to_string router_id)
            (Ipv4.to_string a.a_cfg.n_id))
    else begin
      a.a_last_hello <- Eventloop.now t.loop;
      a.a_hears_us <- List.exists (Ipv4.equal t.cfg.router_id) heard;
      reset_dead_timer t a;
      adjacency_changed t a a.a_hears_us
    end

let send_hellos t =
  List.iter
    (fun iface ->
       List.iter
         (fun (n : neighbor_config) ->
            let heard =
              Hashtbl.fold
                (fun _ a acc ->
                   if
                     Eventloop.now t.loop -. a.a_last_hello
                     < t.cfg.dead_interval
                   then a.a_cfg.n_id :: acc
                   else acc)
                t.adjacencies []
            in
            send_packet t ~ifaddr:iface.o_addr ~dst:n.n_addr
              (Ospf_packet.Hello { router_id = t.cfg.router_id; heard }))
         iface.o_neighbors)
    t.cfg.ifaces

(* Drop LSAs whose origin went silent (no refresh in ~3.5 refresh
   intervals). *)
let sweep_lsdb t =
  let now = Eventloop.now t.loop in
  let stale =
    Hashtbl.fold
      (fun key ((lsa : Ospf_packet.lsa), stamp) acc ->
         if
           (not (Ipv4.equal lsa.origin t.cfg.router_id))
           && now -. !stamp > 3.5 *. t.cfg.refresh_interval
         then key :: acc
         else acc)
      t.lsdb []
  in
  if stale <> [] then begin
    List.iter (Hashtbl.remove t.lsdb) stale;
    schedule_spf t
  end

(* --- XRLs --------------------------------------------------------------------------- *)

let add_stub t net cost =
  t.stubs <- (net, cost) :: List.remove_assoc net t.stubs;
  if t.started then originate t

let add_handlers t =
  let ok = Xrl_error.Ok_xrl in
  Xrl_router.add_handler t.router ~interface:"fea_client" ~method_name:"recv"
    (fun args reply ->
       let srcaddr = Xrl_atom.get_ipv4 args "src" in
       let payload = Xrl_atom.get_binary args "payload" in
       (match Ospf_packet.decode payload with
        | Ok (Ospf_packet.Hello { router_id; heard }) ->
          handle_hello t ~src:srcaddr (router_id, heard)
        | Ok (Ospf_packet.Ls_update lsas) -> handle_lsupdate t ~src:srcaddr lsas
        | Error msg ->
          Log.warn (fun m ->
              m "undecodable packet from %s: %s" (Ipv4.to_string srcaddr) msg));
       reply ok []);
  Xrl_router.add_handler t.router ~interface:"ospf" ~method_name:"get_lsdb_size"
    (fun _ reply -> reply ok [ Xrl_atom.u32 "size" (lsdb_size t) ]);
  Xrl_router.add_handler t.router ~interface:"ospf"
    ~method_name:"get_route_count" (fun _ reply ->
        reply ok [ Xrl_atom.u32 "count" (Hashtbl.length t.installed) ]);
  Xrl_router.add_handler t.router ~interface:"ospf" ~method_name:"add_stub"
    (fun args reply ->
       let net = Xrl_atom.get_ipv4net args "net" in
       let cost =
         match Xrl_atom.find args "cost" with
         | Some { value = U32 c; _ } -> c
         | _ -> 1
       in
       add_stub t net cost;
       reply ok [])

let remove_stub t net =
  t.stubs <- List.remove_assoc net t.stubs;
  if t.started then originate t

(* --- lifecycle ------------------------------------------------------------------------ *)

(* Bounded retry on the FEA relay open: the FEA may register after us,
   and on a chaotic transport the open itself can be black-holed —
   without retry one lost [udp_open] silences the interface forever. *)
let open_retry =
  { Xrl_router.default_retry with
    max_attempts = 10; base_delay = 0.25; max_delay = 2.0;
    attempt_timeout = Some 2.0 }

let open_iface_socket t iface =
  let xrl =
    Xrl.make ~target:"fea" ~interface:"fea_udp" ~method_name:"udp_open"
      [ Xrl_atom.txt "client_target" (instance_name t);
        Xrl_atom.ipv4 "addr" iface.o_addr;
        Xrl_atom.u32 "port" ospf_port ]
  in
  Xrl_router.send ~retry:open_retry t.router xrl (fun err args ->
      if Xrl_error.is_ok err then begin
        Hashtbl.replace t.socks
          (Ipv4.to_int iface.o_addr)
          (Xrl_atom.get_u32 args "sockid");
        send_hellos t
      end
      else
        Log.err (fun m ->
            m "udp_open on %s failed: %s"
              (Ipv4.to_string iface.o_addr)
              (Xrl_error.to_string err)))

(* A restarted FEA holds none of our relay sockets; re-open on rebirth
   so hellos flow again and adjacencies can re-form. *)
let watch_fea_lifecycle t finder =
  Finder.watch_class finder "fea" (fun event _instance ->
      match event with
      | Finder.Death ->
        if t.fea_up && Finder.live_instances finder "fea" = [] then begin
          t.fea_up <- false;
          Hashtbl.reset t.socks
        end
      | Finder.Birth ->
        if not t.fea_up then begin
          t.fea_up <- true;
          (* Deferred: the birth notification fires from inside the new
             FEA's registration, before it has advertised its methods. *)
          Eventloop.defer t.loop (fun () ->
              if t.started && t.fea_up then
                List.iter (open_iface_socket t) t.cfg.ifaces)
        end)

(* [installed] is exactly what this process believes the RIB holds for
   protocol "ospf" — replaying it rebuilds the reborn RIB's (empty)
   origin table verbatim, with no SPF re-run needed. *)
let replay_rib t =
  let n =
    Hashtbl.fold
      (fun net (cost, nexthop) n ->
         rib_add t net cost nexthop;
         n + 1)
      t.installed 0
  in
  Telemetry.add t.c_resync_replayed n;
  Log.info (fun m -> m "RIB is back; replaying %d routes" n)

(* A restarted RIB has empty origin tables: everything we installed
   died with it. Replay on rebirth (mirrors [watch_fea_lifecycle]
   above and the RIB's own FIB replay toward a reborn FEA). *)
let watch_rib_lifecycle t finder =
  Finder.watch_class finder "rib" (fun event _instance ->
      match event with
      | Finder.Death ->
        if t.rib_up && Finder.live_instances finder "rib" = [] then
          t.rib_up <- false
      | Finder.Birth ->
        if not t.rib_up then begin
          t.rib_up <- true;
          (* Deferred: the birth notification fires from inside the new
             RIB's registration, before it has advertised its methods. *)
          Eventloop.defer t.loop (fun () ->
              if t.rib_up && t.rib_rebirth_resync && t.cfg.send_to_rib then
                replay_rib t)
        end)

let create ?families ?profiler ?(rib_rebirth_resync = true) finder loop cfg =
  ignore profiler;
  let router = Xrl_router.create ?families finder loop ~class_name:"ospf" () in
  let t =
    { router; loop; cfg;
      adjacencies = Hashtbl.create 8; by_addr = Hashtbl.create 8;
      socks = Hashtbl.create 4; lsdb = Hashtbl.create 32;
      my_seq = 0; stubs = cfg.stub_prefixes;
      spf_pending = false; spf_count = 0; started = false; fea_up = true;
      (* From live Finder state, not assumed true: a process created
         while the RIB is down (both killed, protocol restarted first)
         must still treat the RIB's eventual return as a rebirth. *)
      rib_up = Finder.live_instances finder "rib" <> [];
      rib_rebirth_resync;
      c_resync_replayed = Telemetry.counter "ospf.rib_resync.replayed";
      installed = Hashtbl.create 64 }
  in
  List.iter
    (fun iface ->
       List.iter
         (fun (n : neighbor_config) ->
            let a =
              { a_cfg = n; a_ifaddr = iface.o_addr; a_last_hello = -1e9;
                a_hears_us = false; a_up = false; a_dead_timer = None }
            in
            Hashtbl.replace t.adjacencies (Ipv4.to_int n.n_id) a;
            Hashtbl.replace t.by_addr (Ipv4.to_int n.n_addr) a)
         iface.o_neighbors)
    cfg.ifaces;
  add_handlers t;
  watch_fea_lifecycle t finder;
  watch_rib_lifecycle t finder;
  t

let start t =
  if not t.started then begin
    t.started <- true;
    List.iter (open_iface_socket t) t.cfg.ifaces;
    originate t;
    ignore
      (Eventloop.periodic t.loop t.cfg.hello_interval (fun () ->
           if t.started then send_hellos t;
           t.started));
    ignore
      (Eventloop.periodic t.loop t.cfg.refresh_interval (fun () ->
           if t.started then begin
             originate t;
             sweep_lsdb t
           end;
           t.started))
  end

let route_table t =
  Hashtbl.fold
    (fun net (cost, nexthop) acc -> (net, cost, nexthop) :: acc)
    t.installed []
  |> List.sort (fun (a, _, _) (b, _, _) -> Ipv4net.compare a b)

let shutdown t =
  t.started <- false;
  Hashtbl.iter
    (fun _ a -> Option.iter Eventloop.cancel a.a_dead_timer)
    t.adjacencies;
  Xrl_router.shutdown t.router

let xrl_router t = t.router
