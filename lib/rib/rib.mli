(** The RIB component: the staged Routing Information Base of paper
    §5.2 (Figure 7), assembled and exposed over XRLs.

    Pipeline (routes flow left to right):

    {v
    connected ─┐
    static  ───┼ merge ─┐
    ospf ──────┼ merge ─┼ merge ──────────── (internal)
    rip ───────┘        │                        │
    ebgp ──┬ merge ─────┴──── (external) ── ExtInt ── Register ── Redist ── sink → FEA
    ibgp ──┘                                                 v}

    Decisions are pairwise administrative-distance comparisons in the
    merge stages; the ExtInt stage additionally gates BGP routes on
    nexthop resolvability; the Register stage answers interest
    registrations (§5.2.1); the Redist stage taps the winner stream for
    policy-filtered redistribution; the sink pushes winners to the FEA
    over XRLs.

    XRL interface [rib/1.0]: [add_route], [delete_route],
    [lookup_route_by_dest], [register_interest], [deregister_interest],
    [redist_subscribe], [redist_unsubscribe], [get_route_count].
    Interest clients must implement
    [rib_client/1.0/route_info_invalid?valid:ipv4net]; redistribution
    subscribers implement [redist_client/1.0/add_route] and
    [delete_route]. *)

type t

(** Operations a sharded RIB forwards to its shard pool in place of the
    in-process origin/merge/extint stages (see docs/CONCURRENCY.md and
    {!Shard} in [lib/shard]). Route arbitration then happens on the
    pool's worker domains; winners return via {!apply_winner_delta}. *)
type shard_op =
  | Shard_add of Rib_route.t
      (** A protocol originated (or replaced) a route. *)
  | Shard_delete of { protocol : string; net : Ipv4net.t }
      (** A protocol withdrew its route for [net]. *)

val create :
  ?families:Pf.family list -> ?batching:bool ->
  ?profiler:Profiler.t -> ?send_to_fea:bool -> ?bulk_fea:bool ->
  ?fea_rebirth_replay:bool ->
  ?shard_dispatch:(lane:Laneq.lane -> shard_op -> unit) ->
  Finder.t -> Eventloop.t -> unit -> t
(** Registers class ["rib"] (sole) with the Finder. With
    [send_to_fea] (default true), winner changes are pushed to the
    ["fea"] target: changes coalesce in a two-lane transmit queue
    (urgent for per-route changes, bulk for table loads arriving over
    the bulk [rib/add_routes4] XRLs) that flushes in bounded deferred
    slices, and, with [bulk_fea] (default true), each consecutive
    same-kind run of two or more leaves as one bulk [add_routes4] /
    [delete_routes4] XRL (single routes keep the per-route XRL).
    [batching] is passed to the underlying {!Xrl_router.create}. The
    RIB watches the ["bgp"], ["rip"] and ["ospf"] component classes
    and gradually flushes their origin tables when the last instance
    dies (Finder lifetime notification, §6.2).

    [fea_rebirth_replay] (default true) controls recovery after an FEA
    restart: when true, a reborn FEA receives a full dump of the
    current winners; when false, only the deltas held during the
    outage are flushed — a deliberately faulty mode the simulation
    harness injects to prove its fuzzer catches the resulting
    RIB/FIB divergence.

    [shard_dispatch] switches the RIB into {e sharded} mode: the
    origin/merge/extint stages are not built; instead every originate
    and withdraw is forwarded to the callback (tagged with the
    transmit lane it should ride), arbitration runs on shard-worker
    domains, and winner deltas re-enter through {!apply_winner_delta}.
    The register/redist/sink tail, the XRL surface and the direct API
    below behave identically in both modes. *)

(** {1 Direct API} (same operations the XRLs expose; examples/tests) *)

val add_route :
  t -> protocol:string -> net:Ipv4net.t -> nexthop:Ipv4.t ->
  ?metric:int -> unit -> (unit, string) result

val delete_route :
  t -> protocol:string -> net:Ipv4net.t -> (unit, string) result

val lookup_best : t -> Ipv4.t -> Rib_route.t option
(** The current winning route for an address, post-arbitration. *)

val route_count : t -> int
(** Number of winning routes (post-arbitration). *)

val register_interest :
  t -> client:string -> Ipv4.t -> Register_table.answer

val deregister_interest : t -> client:string -> Ipv4net.t -> bool

val subscribe_redist :
  t -> name:string -> policy:Policy.program ->
  on_add:(Rib_route.t -> unit) -> on_delete:(Rib_route.t -> unit) -> unit
(** Attach a redistribution subscriber and synchronously dump the
    current winners through its policy filter. *)

val unsubscribe_redist : t -> name:string -> unit

val fold_winners : t -> (Rib_route.t -> 'acc -> 'acc) -> 'acc -> 'acc

val protocols : t -> string list
(** Origin tables present. *)

val origin_route_count : t -> string -> int
(** Routes currently held by one protocol's origin table. *)

val flush_protocol : t -> string -> unit
(** Begin gradual background deletion of a protocol's routes. In
    sharded mode the deletions are dispatched to the shard pool on the
    bulk lane instead. *)

val apply_winner_delta : t -> lane:Laneq.lane -> Ipv4net.t -> Rib_route.t option -> unit
(** Sharded mode only: install the winner computed by a shard worker
    for one prefix. [None] means the prefix no longer has a winner.
    The delta is diffed against the register stage's current answer
    (making replays idempotent) and pushed through the ordinary
    register → redist → sink path under [lane], so downstream
    behaviour — interest invalidation, redistribution, FEA queueing —
    is indistinguishable from the single-domain pipeline. *)

val xrl_router : t -> Xrl_router.t
val invalidations_sent : t -> int

val fea_queue_length : t -> int
(** FIB updates queued towards the FEA (both lanes). The RIB→FEA leg
    drains the urgent lane dry each flush and the bulk lane in bounded
    slices, so during a table load this stays non-zero for a while;
    also surfaced as the [rib.fea_q.depth] gauge. *)

val shutdown : t -> unit

(** {1 Profile points (Figures 10–12)} *)

val pp_arrived : string
(** ["rib_arrived"] — arriving at the RIB. *)

val pp_queued_fea : string
(** ["rib_queued_fea"] — queued for transmission to the FEA. *)

val pp_sent_fea : string
(** ["rib_sent_fea"] — sent to the FEA. *)
