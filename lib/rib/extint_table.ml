(* The ExtInt stage (paper §5.2, Figure 7): composes the external
   (BGP) route stream with the internal (IGP) stream.

   Two jobs:
   - conflict resolution for the same prefix, by administrative
     distance (internal wins ties);
   - nexthop gating: an external route is only usable if its nexthop
     resolves through the internal routes. Unresolvable externals are
     held and re-evaluated whenever internal routing changes.

   The stage keeps a small amount of duplicated state (the set of
   currently-propagated winners, and per-nexthop indexes) — the
   explicit trade-off §5.1 makes for stage independence.

   An internal route replacement arrives as delete-then-add; external
   routes resolving through it are briefly withdrawn and re-announced.
   That is chatty but consistent; downstream stages see a correct
   stream throughout. *)

let resolves_via (int_ : Rib_table.table) (nexthop : Ipv4.t) =
  int_#lookup_best nexthop <> None

class extint_table ~name (ext : Rib_table.table) (int_ : Rib_table.table) =
  object (self)
    inherit Rib_table.base name
    val h_add = Telemetry.histogram ("rib." ^ name ^ ".add_us")
    val h_del = Telemetry.histogram ("rib." ^ name ^ ".delete_us")
    val propagated : Rib_route.t Ptree.t = Ptree.create ()
    val ext_state : (Rib_route.t * bool ref) Ptree.t = Ptree.create ()
    (* nexthop -> set of external nets using it; inner hashtable so
       membership updates stay O(1) under full-table load. *)
    val by_nexthop : (int, (Ipv4net.t, unit) Hashtbl.t) Hashtbl.t =
      Hashtbl.create 32

    method private reevaluate net =
      let int_route = int_#lookup_route net in
      let ext_route =
        match Ptree.find ext_state net with
        | Some (e, resolved) when !resolved -> Some e
        | _ -> None
      in
      let winner =
        match int_route, ext_route with
        | None, None -> None
        | (Some _ as w), None | None, (Some _ as w) -> w
        | Some i, Some e ->
          Some
            (if i.Rib_route.admin_distance <= e.Rib_route.admin_distance
             then i
             else e)
      in
      let old = Ptree.find propagated net in
      match old, winner with
      | None, None -> ()
      | Some o, Some w when Rib_route.equal o w -> ()
      | None, Some w ->
        ignore (Ptree.insert propagated net w);
        self#push_add w
      | Some o, None ->
        ignore (Ptree.remove propagated net);
        self#push_delete o
      | Some o, Some w ->
        ignore (Ptree.insert propagated net w);
        self#push_delete o;
        self#push_add w

    method private index_add nh net =
      let key = Ipv4.to_int nh in
      match Hashtbl.find_opt by_nexthop key with
      | Some set -> Hashtbl.replace set net ()
      | None ->
        let set = Hashtbl.create 64 in
        Hashtbl.replace set net ();
        Hashtbl.replace by_nexthop key set

    method private index_remove nh net =
      let key = Ipv4.to_int nh in
      match Hashtbl.find_opt by_nexthop key with
      | Some set ->
        Hashtbl.remove set net;
        if Hashtbl.length set = 0 then Hashtbl.remove by_nexthop key
      | None -> ()

    (* Re-check resolvability of external routes whose nexthop lies
       inside [net] (an internal route there just changed). *)
    method private recheck_nexthops_within net =
      let touched =
        Hashtbl.fold
          (fun key set acc ->
             if Ipv4net.contains_addr net (Ipv4.of_int key) then
               Hashtbl.fold (fun n () acc -> n :: acc) set acc
             else acc)
          by_nexthop []
      in
      List.iter
        (fun enet ->
           match Ptree.find ext_state enet with
           | Some (e, resolved) ->
             let now = resolves_via int_ e.Rib_route.nexthop in
             if now <> !resolved then begin
               resolved := now;
               self#reevaluate enet
             end
           | None -> ())
        touched

    method add_route src (r : Rib_route.t) =
      Telemetry.time h_add @@ fun () ->
      if src == ext then begin
        let resolved = ref (resolves_via int_ r.nexthop) in
        (match Ptree.insert ext_state r.net (r, resolved) with
         | Some (old, _) -> self#index_remove old.Rib_route.nexthop old.net
         | None -> ());
        self#index_add r.nexthop r.net;
        self#reevaluate r.net
      end
      else begin
        self#reevaluate r.net;
        self#recheck_nexthops_within r.net
      end

    method delete_route src (r : Rib_route.t) =
      Telemetry.time h_del @@ fun () ->
      if src == ext then begin
        (match Ptree.remove ext_state r.net with
         | Some (old, _) -> self#index_remove old.Rib_route.nexthop old.net
         | None -> ());
        self#reevaluate r.net
      end
      else begin
        self#reevaluate r.net;
        self#recheck_nexthops_within r.net
      end

    method lookup_route net = Ptree.find propagated net
    method lookup_best addr = Option.map snd (Ptree.longest_match propagated addr)

    method propagated_count = Ptree.size propagated

    method fold : 'acc. (Rib_route.t -> 'acc -> 'acc) -> 'acc -> 'acc =
      fun f init -> Ptree.fold (fun _ r acc -> f r acc) propagated init
  end
