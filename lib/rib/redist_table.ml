(* The Redist stage (paper §5.2): route redistribution.

   "A key instrument of routing policy is the process of route
   redistribution, where routes from one routing protocol that match
   certain policy filters are redistributed into another routing
   protocol." The RIB, as the one part of the system that sees
   everyone's routes, hosts this stage.

   The stage is a transparent tap: every update passes through
   unchanged, and for each subscriber the update is additionally run
   through that subscriber's policy program; accepted (possibly
   modified) copies are delivered to the subscriber's callbacks. *)

type subscriber = {
  sub_name : string;
  policy : Policy.program;
  on_add : Rib_route.t -> unit;
  on_delete : Rib_route.t -> unit;
}

(* Expose a RIB route to the policy VM. Stores apply to a scratch
   copy; the caller receives the modified route only on Accept or
   Default. *)
let apply_policy (prog : Policy.program) (r : Rib_route.t) :
  Rib_route.t option =
  let metric = ref r.Rib_route.metric in
  let nexthop = ref r.Rib_route.nexthop in
  let tag = ref (match r.Rib_route.tags with t :: _ -> t | [] -> 0) in
  let ctx =
    {
      Policy.get_attr =
        (function
          | "network" -> Some (Policy.Net r.net)
          | "nexthop" -> Some (Policy.Addr !nexthop)
          | "metric" -> Some (Policy.Int !metric)
          | "admin_distance" -> Some (Policy.Int r.admin_distance)
          | "protocol" -> Some (Policy.Str r.protocol)
          | "tag" -> Some (Policy.Int !tag)
          | _ -> None);
      set_attr =
        (fun name v ->
           match name, v with
           | "metric", Policy.Int m ->
             metric := m;
             Ok ()
           | "nexthop", Policy.Addr a ->
             nexthop := a;
             Ok ()
           | "tag", Policy.Int t ->
             tag := t;
             Ok ()
           | ("network" | "protocol" | "admin_distance"), _ ->
             Error "read-only attribute"
           | _ -> Error "unknown or mistyped attribute");
    }
  in
  match Policy.eval prog ctx with
  | Ok Policy.Reject -> None
  | Ok (Policy.Accept | Policy.Default) ->
    Some
      { r with
        Rib_route.metric = !metric;
        nexthop = !nexthop;
        tags = (if !tag = 0 then [] else [ !tag ]) }
  | Error _ ->
    (* A faulting filter fails closed: the route is not redistributed,
       but the main pipeline is unaffected. *)
    None

class redist_table ~name ~(parent : Rib_table.table) () =
  object (self)
    inherit Rib_table.base name
    val h_add = Telemetry.histogram ("rib." ^ name ^ ".add_us")
    val h_del = Telemetry.histogram ("rib." ^ name ^ ".delete_us")
    val mutable subscribers : subscriber list = []

    method subscribe (s : subscriber) =
      subscribers <- subscribers @ [ s ]

    method unsubscribe sub_name =
      subscribers <- List.filter (fun s -> s.sub_name <> sub_name) subscribers

    method subscriber_names = List.map (fun s -> s.sub_name) subscribers

    method private tap f (r : Rib_route.t) =
      List.iter
        (fun s ->
           match apply_policy s.policy r with
           | Some r' -> f s r'
           | None -> ())
        subscribers

    method add_route _src r =
      Telemetry.time h_add @@ fun () ->
      self#tap (fun s r' -> s.on_add r') r;
      self#push_add r

    method delete_route _src r =
      Telemetry.time h_del @@ fun () ->
      self#tap (fun s r' -> s.on_delete r') r;
      self#push_delete r

    (* Transparent to pulls. *)
    method lookup_route net = parent#lookup_route net
    method lookup_best addr = parent#lookup_best addr
  end
