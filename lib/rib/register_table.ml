(* The Register stage (paper §5.2.1, Figure 8): interest registration.

   Clients (BGP for its nexthops, PIM for sources, future extensions)
   ask "how is address X routed?". The answer is the matching route
   plus the largest enclosing subnet for which that answer is valid —
   the largest subnet containing X that no more-specific route
   overlays. The client may cache the answer for every address in that
   subnet; when routing changes inside a registered subnet, the stage
   sends a single "cache invalidated" message and drops the
   registration, and the client re-queries.

   Because no returned subnet ever overlaps another in a client's
   cache, clients can use balanced trees for lookup (paper §5.2.1). *)

type registration = {
  valid : Ipv4net.t; (* the subnet the cached answer covers *)
  mutable clients : string list; (* client identifiers *)
}

type answer = {
  matched : Rib_route.t option; (* None: address currently unrouted *)
  valid_subnet : Ipv4net.t;
}

class register_table ~name ~(notify : string -> Ipv4net.t -> unit) () =
  object (self)
    inherit Rib_table.base name
    val h_add = Telemetry.histogram ("rib." ^ name ^ ".add_us")
    val h_del = Telemetry.histogram ("rib." ^ name ^ ".delete_us")
    val winners : Rib_route.t Ptree.t = Ptree.create ()
    val regs : registration Ptree.t = Ptree.create ()
    val mutable invalidations_sent = 0

    method register_interest ~(client : string) (addr : Ipv4.t) : answer =
      let matched = Option.map snd (Ptree.longest_match winners addr) in
      let valid = Ptree.largest_enclosing_hole winners addr in
      (match Ptree.find regs valid with
       | Some reg ->
         if not (List.mem client reg.clients) then
           reg.clients <- client :: reg.clients
       | None -> ignore (Ptree.insert regs valid { valid; clients = [ client ] }));
      { matched; valid_subnet = valid }

    method deregister_interest ~(client : string) (valid : Ipv4net.t) : bool =
      match Ptree.find regs valid with
      | None -> false
      | Some reg ->
        reg.clients <- List.filter (fun c -> c <> client) reg.clients;
        if reg.clients = [] then ignore (Ptree.remove regs valid);
        true

    method registration_count = Ptree.size regs
    method invalidations_sent = invalidations_sent

    (* A route for [net] changed. Any registration whose valid subnet
       overlaps [net] may now have a stale answer: notify and drop. *)
    method private invalidate_overlapping (net : Ipv4net.t) =
      let overlapping =
        List.map snd (Ptree.containing regs net)
        @ Ptree.fold_within regs net (fun _ reg acc -> reg :: acc) []
      in
      (* A registration can appear in both lists when reg.valid = net;
         removal makes the second notification impossible. *)
      List.iter
        (fun reg ->
           match Ptree.remove regs reg.valid with
           | None -> () (* already handled *)
           | Some _ ->
             List.iter
               (fun client ->
                  invalidations_sent <- invalidations_sent + 1;
                  notify client reg.valid)
               reg.clients)
        overlapping

    method add_route _src (r : Rib_route.t) =
      Telemetry.time h_add @@ fun () ->
      ignore (Ptree.insert winners r.net r);
      self#invalidate_overlapping r.net;
      self#push_add r

    method delete_route _src (r : Rib_route.t) =
      Telemetry.time h_del @@ fun () ->
      ignore (Ptree.remove winners r.net);
      self#invalidate_overlapping r.net;
      self#push_delete r

    method lookup_route net = Ptree.find winners net
    method lookup_best addr = Option.map snd (Ptree.longest_match winners addr)
    method route_count = Ptree.size winners

    method fold : 'acc. (Rib_route.t -> 'acc -> 'acc) -> 'acc -> 'acc =
      fun f init -> Ptree.fold (fun _ r acc -> f r acc) winners init

    method iter_safe = Ptree.Safe_iter.start winners
  end
