(* The RIB stage interface (paper §5.2, Figure 7).

   A RIB is a network of stages through which routes flow. add_route
   and delete_route push downstream; lookup_route (exact prefix) and
   lookup_best (longest match) pull upstream. The [src] argument of the
   push methods identifies the upstream neighbour, which is how a merge
   stage with two parents knows which side an update came from.

   The two consistency rules of §5.1 apply here too: a delete_route
   must correspond to a previous add_route, and lookup answers must
   agree with the add/delete stream already sent downstream. The test
   suite wires a checking sink downstream of the RIB to enforce this. *)

class type table = object
  method tbl_name : string
  method add_route : table -> Rib_route.t -> unit
  method delete_route : table -> Rib_route.t -> unit
  method lookup_route : Ipv4net.t -> Rib_route.t option
  method lookup_best : Ipv4.t -> Rib_route.t option
  method set_next : table option -> unit
end

(* Base class providing the downstream plumbing. *)
class virtual base (name : string) =
  object (self)
    val mutable next : table option = None
    method tbl_name : string = name
    method set_next (n : table option) = next <- n

    method virtual add_route : table -> Rib_route.t -> unit
    method virtual delete_route : table -> Rib_route.t -> unit
    method virtual lookup_route : Ipv4net.t -> Rib_route.t option
    method virtual lookup_best : Ipv4.t -> Rib_route.t option

    method private push_add (r : Rib_route.t) =
      match next with Some n -> n#add_route (self :> table) r | None -> ()

    method private push_delete (r : Rib_route.t) =
      match next with Some n -> n#delete_route (self :> table) r | None -> ()
  end

let plumb (parent : #base) (child : #table) =
  parent#set_next (Some (child :> table))

(* A sink: terminates a pipeline, handing updates to callbacks. Pull
   requests go to its parent. *)
class sink ~name ~(parent : table) ~(on_add : Rib_route.t -> unit)
    ~(on_delete : Rib_route.t -> unit) =
  object
    inherit base name
    method add_route _src r = on_add r
    method delete_route _src r = on_delete r
    method lookup_route net = parent#lookup_route net
    method lookup_best addr = parent#lookup_best addr
  end
