(* Merge stages: the RIB's distributed decision process (paper §5.2).

   A merge stage combines two route streams, resolving conflicts for
   the same prefix by administrative distance. Parent [a] wins ties, so
   plumb the preferred side as [a]. Because decisions are pairwise and
   local, new protocols are added by inserting one more merge stage —
   no central decision process needs to change. *)

let better (x : Rib_route.t) (y : Rib_route.t) ~x_wins_ties =
  if x_wins_ties then x.admin_distance <= y.admin_distance
  else x.admin_distance < y.admin_distance

class merge_table ~name (a : Rib_table.table) (b : Rib_table.table) =
  object (self)
    inherit Rib_table.base name
    val h_add = Telemetry.histogram ("rib." ^ name ^ ".add_us")
    val h_del = Telemetry.histogram ("rib." ^ name ^ ".delete_us")

    method private other_of src : Rib_table.table * bool =
      (* Returns (other parent, [src was the tie-winning side]). *)
      if src == a then (b, true)
      else if src == b then (a, false)
      else invalid_arg (name ^ ": add from unknown parent " ^ src#tbl_name)

    method add_route src (r : Rib_route.t) =
      Telemetry.time h_add @@ fun () ->
      let other, from_a = self#other_of src in
      match other#lookup_route r.net with
      | None -> self#push_add r
      | Some o ->
        if better r o ~x_wins_ties:from_a then begin
          (* The other side's route had been propagated; replace it. *)
          self#push_delete o;
          self#push_add r
        end

    method delete_route src (r : Rib_route.t) =
      Telemetry.time h_del @@ fun () ->
      let other, from_a = self#other_of src in
      match other#lookup_route r.net with
      | None -> self#push_delete r
      | Some o ->
        if better r o ~x_wins_ties:from_a then begin
          (* r was the winner; fall back to the other side's route. *)
          self#push_delete r;
          self#push_add o
        end
    (* else r was shadowed and never propagated: drop silently. *)

    method lookup_route net =
      match a#lookup_route net, b#lookup_route net with
      | None, None -> None
      | (Some _ as r), None | None, (Some _ as r) -> r
      | Some ra, Some rb ->
        Some (if better ra rb ~x_wins_ties:true then ra else rb)

    method lookup_best addr =
      match a#lookup_best addr, b#lookup_best addr with
      | None, None -> None
      | (Some _ as r), None | None, (Some _ as r) -> r
      | Some ra, Some rb ->
        (* More-specific prefix wins regardless of distance; equal
           specificity falls back to distance with a winning ties. *)
        let la = Ipv4net.prefix_len ra.Rib_route.net
        and lb = Ipv4net.prefix_len rb.Rib_route.net in
        if la > lb then Some ra
        else if lb > la then Some rb
        else Some (if better ra rb ~x_wins_ties:true then ra else rb)
  end
