(* Origin tables: where routes are actually stored (paper §5.2 —
   "routes are stored only in the origin stages"). One per protocol
   feeding the RIB.

   When a protocol dies wholesale (Finder death notification), its
   routes are deleted gradually by a background task so that a huge
   table cannot stall the event loop — the RIB-side analogue of BGP's
   deletion stages (§5.1.2). Routes re-originated while the gradual
   clear runs carry a newer generation number and are left alone. *)

class origin_table ~name ~protocol (loop : Eventloop.t) =
  object (self)
    inherit Rib_table.base name
    val store : (int * Rib_route.t) Ptree.t = Ptree.create ()
    val mutable generation = 0
    val mutable clearing = false
    val h_add = Telemetry.histogram ("rib." ^ name ^ ".add_us")
    val h_del = Telemetry.histogram ("rib." ^ name ^ ".delete_us")

    method protocol : string = protocol
    method route_count = Ptree.size store

    (* Entry point for the owning protocol; timed here (not in
       add_route) because Rib.add_route calls originate directly. *)
    method originate (r : Rib_route.t) =
      Telemetry.time h_add @@ fun () ->
      match Ptree.insert store r.Rib_route.net (generation, r) with
      | Some (_, old) ->
        self#push_delete old;
        self#push_add r
      | None -> self#push_add r

    method withdraw (net : Ipv4net.t) =
      Telemetry.time h_del @@ fun () ->
      match Ptree.remove store net with
      | Some (_, old) -> self#push_delete old
      | None -> ()

    (* Gradual wholesale deletion; [slice] routes per background slice.
       Returns immediately; deletion proceeds when the loop is idle. *)
    method clear_gradually ?(slice = 100) ?(on_done = fun () -> ()) () =
      if not clearing then begin
        clearing <- true;
        generation <- generation + 1;
        let cutoff = generation in
        let it = Ptree.Safe_iter.start store in
        let delete_one () =
          match Ptree.Safe_iter.next it with
          | None ->
            clearing <- false;
            on_done ();
            `Done
          | Some (net, (gen, r)) ->
            if gen < cutoff then begin
              ignore (Ptree.remove store net);
              self#push_delete r
            end;
            `Continue
        in
        ignore (Eventloop.add_task loop ~weight:slice delete_one)
      end

    method clearing = clearing

    method add_route _src r = self#originate r
    method delete_route _src (r : Rib_route.t) = self#withdraw r.Rib_route.net

    method lookup_route net =
      Option.map snd (Ptree.find store net)

    method lookup_best addr =
      Option.map (fun (_, (_, r)) -> r) (Ptree.longest_match store addr)

    method fold : 'acc. (Rib_route.t -> 'acc -> 'acc) -> 'acc -> 'acc =
      fun f init -> Ptree.fold (fun _ (_, r) acc -> f r acc) store init
  end
