let src = Logs.Src.create "xorp.rib" ~doc:"Routing Information Base"

module Log = (val Logs.src_log src : Logs.LOG)

let pp_arrived = "rib_arrived"
let pp_queued_fea = "rib_queued_fea"
let pp_sent_fea = "rib_sent_fea"

type fea_op = [ `Add of Rib_route.t | `Delete of Rib_route.t ]

(* Operations a sharded RIB forwards to its shard pool instead of
   running through an in-process merge pipeline (docs/CONCURRENCY.md). *)
type shard_op =
  | Shard_add of Rib_route.t
  | Shard_delete of { protocol : string; net : Ipv4net.t }

type t = {
  router : Xrl_router.t;
  loop : Eventloop.t;
  profiler : Profiler.t option;
  origins : (string, Origin_table.origin_table) Hashtbl.t;
  register : Register_table.register_table;
  redist : Redist_table.redist_table;
  (* Sharded mode: route arbitration runs on shard-worker domains.
     [shard_dispatch] forwards each origin-table change to the pool;
     winners come back through [apply_winner_delta] and enter the
     pipeline at [register]. [sharded_origins] mirrors per-protocol
     origin contents on this domain so the direct API (known-protocol
     checks, delete-of-absent errors, per-protocol counts and flushes)
     answers without crossing domains. *)
  shard_dispatch : (lane:Laneq.lane -> shard_op -> unit) option;
  sharded_origins : (string, Rib_route.t Ptree.t) Hashtbl.t;
  send_to_fea : bool;
  bulk_fea : bool;
  (* Outbound transmit queue towards the FEA: route changes made
     within one event-loop turn coalesce here and flush together on
     the next iteration. Each entry carries the trace context that was
     ambient when it was queued. *)
  fea_q : (fea_op * Telemetry.Trace.ctx option) Laneq.t;
  mutable fea_flush_armed : bool;
  (* Lane for FIB pushes produced by the currently-running handler:
     per-route XRLs ride urgent (the default), bulk transfers from a
     table load ride bulk. Set around handler bodies, never stored in
     entries — the Laneq remembers which lane each entry sits in. *)
  mutable fea_lane : Laneq.lane;
  g_fea_depth : Telemetry.gauge;
  g_fea_urgent : Telemetry.gauge;
  g_fea_bulk : Telemetry.gauge;
  (* False while no FEA instance is registered: updates queue instead
     of being sent into the void, and a rebirth triggers a full-FIB
     replay (the restarted FEA has an empty FIB). *)
  mutable fea_up : bool;
}

let set_fea_gauges t =
  Telemetry.set_gauge t.g_fea_depth (float_of_int (Laneq.length t.fea_q));
  Telemetry.set_gauge t.g_fea_urgent
    (float_of_int (Laneq.urgent_length t.fea_q));
  Telemetry.set_gauge t.g_fea_bulk (float_of_int (Laneq.bulk_length t.fea_q))

let with_fea_lane t lane f =
  let saved = t.fea_lane in
  t.fea_lane <- lane;
  Fun.protect ~finally:(fun () -> t.fea_lane <- saved) f

(* Hot-path variant: skips payload construction when the point is
   disabled (a full-table load would otherwise allocate one string per
   route per point). *)
let profile_net t point verb net =
  match t.profiler with
  | Some p when Profiler.enabled p point ->
    Profiler.record p point (verb ^ Ipv4net.to_string net)
  | _ -> ()

(* --- FEA sink ------------------------------------------------------- *)

let op_net (op : fea_op) = match op with `Add r | `Delete r -> r.Rib_route.net
let op_verb (op : fea_op) = match op with `Add _ -> "add " | `Delete _ -> "delete "
let op_is_add (op : fea_op) = match op with `Add _ -> true | `Delete _ -> false

(* FIB updates are idempotent, so they qualify for bounded retry:
   a chaos-dropped or transiently failed update is re-sent (after
   re-resolving, so it also finds a restarted FEA) rather than lost. *)
let fea_retry = Xrl_router.default_retry

(* Legacy per-route XRL; also the path taken when a flush holds a
   single route, so the unbatched pipeline (and its profile-point
   sequence) is byte-for-byte what it was before bulk transfer. *)
let send_one t (op : fea_op) ctx =
  let netstr = Ipv4net.to_string (op_net op) in
  Telemetry.Trace.with_ctx ctx @@ fun () ->
  Telemetry.Trace.span_sync ~name:"rib.fea_send" ~note:netstr
    ~clock:(fun () -> Eventloop.now t.loop)
  @@ fun () ->
  profile_net t pp_sent_fea (op_verb op) (op_net op);
  let xrl =
    match op with
    | `Add r ->
      Xrl.make ~target:"fea" ~interface:"fea" ~method_name:"add_route4"
        [ Xrl_atom.ipv4net "net" r.Rib_route.net;
          Xrl_atom.ipv4 "nexthop" r.nexthop;
          Xrl_atom.txt "ifname" "";
          Xrl_atom.txt "protocol" r.protocol ]
    | `Delete r ->
      Xrl.make ~target:"fea" ~interface:"fea"
        ~method_name:"delete_route4"
        [ Xrl_atom.ipv4net "net" r.Rib_route.net ]
  in
  Xrl_router.send ~retry:fea_retry t.router xrl (fun err _ ->
      if not (Xrl_error.is_ok err) then
        Log.warn (fun m ->
            m "FEA update for %s failed: %s" netstr
              (Xrl_error.to_string err)))

(* A run of consecutive same-kind ops leaves as one bulk XRL carrying
   a Route_pack-packed list. Profile points stay per route. The run's
   first trace context parents the send span and the reply. *)
let send_run t (ops : (fea_op * Telemetry.Trace.ctx option) list) =
  match ops with
  | [] -> ()
  | [ (op, ctx) ] -> send_one t op ctx
  | (first_op, first_ctx) :: _ ->
    let n = List.length ops in
    let is_add = op_is_add first_op in
    List.iter
      (fun (op, ctx) ->
         Telemetry.Trace.with_ctx ctx (fun () ->
             profile_net t pp_sent_fea (op_verb op) (op_net op)))
      ops;
    Telemetry.Trace.with_ctx first_ctx @@ fun () ->
    Telemetry.Trace.span_sync ~name:"rib.fea_send"
      ~note:(string_of_int n ^ " routes")
      ~clock:(fun () -> Eventloop.now t.loop)
    @@ fun () ->
    let packed, method_name =
      if is_add then
        ( Route_pack.pack_adds
            (List.map
               (fun (op, _) ->
                  match op with
                  | `Add r ->
                    { Route_pack.net = r.Rib_route.net; nexthop = r.nexthop;
                      ifname = ""; protocol = r.protocol; metric = r.metric }
                  | `Delete _ -> assert false)
               ops),
          "add_routes4" )
      else
        ( Route_pack.pack_deletes (List.map (fun (op, _) -> op_net op) ops),
          "delete_routes4" )
    in
    let xrl =
      Xrl.make ~target:"fea" ~interface:"fea" ~method_name
        [ Xrl_atom.binary "routes" packed ]
    in
    Xrl_router.send ~retry:fea_retry t.router xrl (fun err _ ->
        if not (Xrl_error.is_ok err) then
          Log.warn (fun m ->
              m "bulk FEA update (%d routes) failed: %s" n
                (Xrl_error.to_string err)))

(* Bulk-lane FIB updates drained per flush slice: bounds the packing
   work (and the size of each bulk XRL run) one loop turn spends on the
   RIB->FEA leg, so a flap's urgent FIB update is never stuck behind a
   full-table load already queued here. *)
let fea_bulk_slice = 1024

let rec flush_fea t =
  t.fea_flush_armed <- false;
  (* No live FEA: keep the queue. It goes out — or is superseded by the
     full replay — once an instance is back. *)
  if t.fea_up then begin
    (* One slice: the urgent lane drained dry (flap-sized), then a
       bounded bulk batch. Per-prefix order across lanes is preserved
       by the Laneq demotion guard. *)
    let drained = ref [] in
    let rec take_urgent () =
      match Laneq.pop_urgent t.fea_q with
      | Some (_, item) ->
        drained := item :: !drained;
        take_urgent ()
      | None -> ()
    in
    take_urgent ();
    let budget = ref fea_bulk_slice in
    let rec take_bulk () =
      if !budget > 0 then
        match Laneq.pop_bulk t.fea_q with
        | Some (_, item) ->
          decr budget;
          drained := item :: !drained;
          take_bulk ()
        | None -> ()
    in
    take_bulk ();
    let items = List.rev !drained in
    if t.bulk_fea then begin
      (* Group consecutive same-kind ops into runs, preserving overall
         order (an add/delete alternation must reach the FIB in
         sequence). *)
      let flush_run run = send_run t (List.rev run) in
      let run =
        List.fold_left
          (fun run ((op, _) as item) ->
             match run with
             | [] -> [ item ]
             | (prev, _) :: _ when op_is_add prev = op_is_add op -> item :: run
             | _ ->
               flush_run run;
               [ item ])
          [] items
      in
      flush_run run
    end
    else List.iter (fun (op, ctx) -> send_one t op ctx) items;
    set_fea_gauges t;
    (* Leftover bulk re-defers: the next loop turn gets a chance to
       interleave fresh urgent work ahead of it. *)
    if not (Laneq.is_empty t.fea_q) then begin
      t.fea_flush_armed <- true;
      Eventloop.defer t.loop (fun () -> flush_fea t)
    end
  end

let send_fea t (op : fea_op) =
  profile_net t pp_queued_fea (op_verb op) (op_net op);
  if t.send_to_fea then begin
    (* Queue-then-send: the actual XRL goes out on the next loop
       iteration, like a real outbound transmit queue — and everything
       queued within this turn flushes together (one bulk XRL per
       same-kind run). The deferral would lose the ambient trace
       context, so capture it per entry and reinstate it at send. *)
    Laneq.push t.fea_q t.fea_lane ~net:(op_net op)
      (op, Telemetry.Trace.current ());
    set_fea_gauges t;
    if t.fea_up && not t.fea_flush_armed then begin
      t.fea_flush_armed <- true;
      Eventloop.defer t.loop (fun () -> flush_fea t)
    end
  end

(* --- client notifications ------------------------------------------- *)

let notify_invalid router client valid =
  let xrl =
    Xrl.make ~target:client ~interface:"rib_client"
      ~method_name:"route_info_invalid"
      [ Xrl_atom.ipv4net "valid" valid ]
  in
  Xrl_router.send router xrl (fun err _ ->
      if not (Xrl_error.is_ok err) then
        Log.debug (fun m ->
            m "invalidation to %s failed: %s" client (Xrl_error.to_string err)))

(* --- assembly ------------------------------------------------------- *)

let igp_protocols = [ "connected"; "static"; "ospf"; "rip" ]
let egp_protocols = [ "ebgp"; "ibgp" ]

let build_pipeline t_router loop =
  let origin name = new Origin_table.origin_table ~name:("origin:" ^ name) ~protocol:name loop in
  let origins = Hashtbl.create 8 in
  List.iter
    (fun p -> Hashtbl.replace origins p (origin p))
    (igp_protocols @ egp_protocols);
  let o p = (Hashtbl.find origins p :> Rib_table.table) in
  let om p = Hashtbl.find origins p in
  (* Internal chain: lower admin distance plumbed as the tie-winning
     "a" side; ties cannot actually occur since distances differ. *)
  let m1 = new Merge_table.merge_table ~name:"merge:connected+static" (o "connected") (o "static") in
  Rib_table.plumb (om "connected") m1;
  Rib_table.plumb (om "static") m1;
  let m2 = new Merge_table.merge_table ~name:"merge:+ospf" (m1 :> Rib_table.table) (o "ospf") in
  Rib_table.plumb m1 m2;
  Rib_table.plumb (om "ospf") m2;
  let m3 = new Merge_table.merge_table ~name:"merge:+rip" (m2 :> Rib_table.table) (o "rip") in
  Rib_table.plumb m2 m3;
  Rib_table.plumb (om "rip") m3;
  let me = new Merge_table.merge_table ~name:"merge:ebgp+ibgp" (o "ebgp") (o "ibgp") in
  Rib_table.plumb (om "ebgp") me;
  Rib_table.plumb (om "ibgp") me;
  let extint =
    new Extint_table.extint_table ~name:"extint"
      (me :> Rib_table.table)
      (m3 :> Rib_table.table)
  in
  Rib_table.plumb me extint;
  Rib_table.plumb m3 extint;
  let register =
    new Register_table.register_table ~name:"register"
      ~notify:(fun client valid -> notify_invalid (t_router ()) client valid)
      ()
  in
  Rib_table.plumb extint register;
  let redist =
    new Redist_table.redist_table ~name:"redist"
      ~parent:(register :> Rib_table.table) ()
  in
  Rib_table.plumb register redist;
  (origins, register, redist)

(* Sharded-mode pipeline: the origin/merge/extint stages live inside
   the shard workers; on this domain only the post-arbitration tail
   (register -> redist -> sink) remains, fed by [apply_winner_delta]. *)
let build_sharded_pipeline t_router =
  let register =
    new Register_table.register_table ~name:"register"
      ~notify:(fun client valid -> notify_invalid (t_router ()) client valid)
      ()
  in
  let redist =
    new Redist_table.redist_table ~name:"redist"
      ~parent:(register :> Rib_table.table) ()
  in
  Rib_table.plumb register redist;
  (Hashtbl.create 1, register, redist)

(* --- direct API ------------------------------------------------------ *)

let origin_of t protocol = Hashtbl.find_opt t.origins protocol

let sharded_slice t protocol = Hashtbl.find_opt t.sharded_origins protocol

let add_route t ~protocol ~net ~nexthop ?(metric = 0) () =
  match t.shard_dispatch with
  | Some dispatch ->
    (match sharded_slice t protocol with
     | None -> Error (Printf.sprintf "unknown protocol %S" protocol)
     | Some slice ->
       let r = Rib_route.make ~net ~nexthop ~metric ~protocol () in
       ignore (Ptree.insert slice net r);
       dispatch ~lane:t.fea_lane (Shard_add r);
       Ok ())
  | None ->
    (match origin_of t protocol with
     | None -> Error (Printf.sprintf "unknown protocol %S" protocol)
     | Some origin ->
       let r = Rib_route.make ~net ~nexthop ~metric ~protocol () in
       origin#originate r;
       Ok ())

let delete_route t ~protocol ~net =
  match t.shard_dispatch with
  | Some dispatch ->
    (match sharded_slice t protocol with
     | None -> Error (Printf.sprintf "unknown protocol %S" protocol)
     | Some slice ->
       (match Ptree.remove slice net with
        | Some _ ->
          dispatch ~lane:t.fea_lane (Shard_delete { protocol; net });
          Ok ()
        | None ->
          Error
            (Printf.sprintf "%s has no route for %s" protocol
               (Ipv4net.to_string net))))
  | None ->
    (match origin_of t protocol with
     | None -> Error (Printf.sprintf "unknown protocol %S" protocol)
     | Some origin ->
       (match origin#lookup_route net with
        | Some _ ->
          origin#withdraw net;
          Ok ()
        | None ->
          Error
            (Printf.sprintf "%s has no route for %s" protocol
               (Ipv4net.to_string net))))

let lookup_best t addr = t.register#lookup_best addr
let route_count t = t.register#route_count

let register_interest t ~client addr = t.register#register_interest ~client addr

let deregister_interest t ~client valid =
  t.register#deregister_interest ~client valid

let fold_winners t f init = t.register#fold f init

let subscribe_redist t ~name ~policy ~on_add ~on_delete =
  t.redist#subscribe
    { Redist_table.sub_name = name; policy; on_add; on_delete };
  (* Dump current winners through the new subscriber's filter. *)
  fold_winners t
    (fun r () ->
       match Redist_table.apply_policy policy r with
       | Some r' -> on_add r'
       | None -> ())
    ()

let unsubscribe_redist t ~name = t.redist#unsubscribe name

let protocols t =
  let tbl =
    match t.shard_dispatch with
    | Some _ -> Hashtbl.fold (fun p _ acc -> p :: acc) t.sharded_origins []
    | None -> Hashtbl.fold (fun p _ acc -> p :: acc) t.origins []
  in
  List.sort compare tbl

let origin_route_count t protocol =
  match t.shard_dispatch with
  | Some _ ->
    (match sharded_slice t protocol with
     | Some slice -> Ptree.size slice
     | None -> 0)
  | None ->
    (match origin_of t protocol with
     | Some origin -> origin#route_count
     | None -> 0)

let flush_protocol t protocol =
  match t.shard_dispatch with
  | Some dispatch ->
    (match sharded_slice t protocol with
     | Some slice ->
       let entries = Ptree.to_list slice in
       if entries <> [] then begin
         Log.info (fun m ->
             m "flushing %d %s routes to the shard pool"
               (List.length entries) protocol);
         Ptree.clear slice;
         List.iter
           (fun (net, _) ->
              dispatch ~lane:Laneq.Bulk (Shard_delete { protocol; net }))
           entries
       end
     | None -> ())
  | None ->
    (match origin_of t protocol with
     | Some origin ->
       Log.info (fun m -> m "flushing %s routes in the background" protocol);
       origin#clear_gradually ()
     | None -> ())

(* Winner delta computed by a shard worker for a prefix this RIB owns
   downstream state for: diff against the register stage's current
   answer and drive it through the ordinary add/delete push path, so
   interest invalidation, redistribution and the FEA sink all see a
   sharded winner exactly as they would a merged one. Diffing here
   (rather than trusting a carried old value) makes re-application
   after a replay idempotent. *)
let apply_winner_delta t ~lane net (now : Rib_route.t option) =
  let reg = t.register in
  let old = reg#lookup_route net in
  let src = (reg :> Rib_table.table) in
  with_fea_lane t lane @@ fun () ->
  match old, now with
  | None, None -> ()
  | Some o, Some n when Rib_route.equal o n -> ()
  | None, Some n -> reg#add_route src n
  | Some o, None -> reg#delete_route src o
  | Some o, Some n ->
    reg#delete_route src o;
    reg#add_route src n

let xrl_router t = t.router
let invalidations_sent t = t.register#invalidations_sent
let fea_queue_length t = Laneq.length t.fea_q

(* --- XRL interface --------------------------------------------------- *)

let ok = Xrl_error.Ok_xrl

let add_xrl_handlers t =
  let r = t.router in
  Xrl_router.add_handler r ~interface:"rib" ~method_name:"add_route"
    (fun args reply ->
       let protocol = Xrl_atom.get_txt args "protocol" in
       let net = Xrl_atom.get_ipv4net args "net" in
       let nexthop = Xrl_atom.get_ipv4 args "nexthop" in
       let metric =
         match Xrl_atom.find args "metric" with
         | Some { value = U32 m; _ } -> m
         | _ -> 0
       in
       profile_net t pp_arrived "add " net;
       match
         Telemetry.Trace.span_sync ~name:"rib.route_add"
           ~note:(Ipv4net.to_string net)
           ~clock:(fun () -> Eventloop.now t.loop)
           (fun () -> add_route t ~protocol ~net ~nexthop ~metric ())
       with
       | Ok () -> reply ok []
       | Error msg -> reply (Xrl_error.Command_failed msg) []);
  Xrl_router.add_handler r ~interface:"rib" ~method_name:"delete_route"
    (fun args reply ->
       let protocol = Xrl_atom.get_txt args "protocol" in
       let net = Xrl_atom.get_ipv4net args "net" in
       profile_net t pp_arrived "delete " net;
       match
         Telemetry.Trace.span_sync ~name:"rib.route_delete"
           ~note:(Ipv4net.to_string net)
           ~clock:(fun () -> Eventloop.now t.loop)
           (fun () -> delete_route t ~protocol ~net)
       with
       | Ok () -> reply ok []
       | Error msg -> reply (Xrl_error.Command_failed msg) []);
  (* Bulk variants, mirroring fea/add_routes4: one XRL carries a whole
     Route_pack-packed run from BGP's RIB-output queue, so a full-table
     load crosses the BGP->RIB boundary in hundreds of calls instead of
     146k. Profile points stay per route. *)
  Xrl_router.add_handler r ~interface:"rib" ~method_name:"add_routes4"
    (fun args reply ->
       let packed = Xrl_atom.get_binary args "routes" in
       match Route_pack.unpack_adds packed with
       | Error msg -> reply (Xrl_error.Bad_args ("routes: " ^ msg)) []
       | Ok adds ->
         let n = List.length adds in
         let failed = ref 0 in
         Telemetry.Trace.span_sync ~name:"rib.route_add_bulk"
           ~note:(string_of_int n ^ " routes")
           ~clock:(fun () -> Eventloop.now t.loop)
           (fun () ->
              (* A bulk transfer is a table load in flight: its FIB
                 pushes ride the bulk lane so they cannot crowd a
                 concurrent flap (arriving per-route, urgent) out of
                 the RIB->FEA leg. *)
              with_fea_lane t Laneq.Bulk @@ fun () ->
              List.iter
                (fun { Route_pack.net; nexthop; protocol; metric; ifname = _ } ->
                   profile_net t pp_arrived "add " net;
                   match add_route t ~protocol ~net ~nexthop ~metric () with
                   | Ok () -> ()
                   | Error msg ->
                     incr failed;
                     Log.warn (fun m ->
                         m "bulk add %s: %s" (Ipv4net.to_string net) msg))
                adds);
         if !failed = 0 then reply ok [ Xrl_atom.u32 "count" n ]
         else
           reply
             (Xrl_error.Command_failed
                (Printf.sprintf "%d/%d adds failed" !failed n))
             []);
  Xrl_router.add_handler r ~interface:"rib" ~method_name:"delete_routes4"
    (fun args reply ->
       let protocol = Xrl_atom.get_txt args "protocol" in
       let packed = Xrl_atom.get_binary args "routes" in
       match Route_pack.unpack_deletes packed with
       | Error msg -> reply (Xrl_error.Bad_args ("routes: " ^ msg)) []
       | Ok nets ->
         let n = List.length nets in
         let failed = ref 0 in
         Telemetry.Trace.span_sync ~name:"rib.route_delete_bulk"
           ~note:(string_of_int n ^ " routes")
           ~clock:(fun () -> Eventloop.now t.loop)
           (fun () ->
              with_fea_lane t Laneq.Bulk @@ fun () ->
              List.iter
                (fun net ->
                   profile_net t pp_arrived "delete " net;
                   match delete_route t ~protocol ~net with
                   | Ok () -> ()
                   | Error msg ->
                     incr failed;
                     Log.warn (fun m ->
                         m "bulk delete %s: %s" (Ipv4net.to_string net) msg))
                nets);
         if !failed = 0 then reply ok [ Xrl_atom.u32 "count" n ]
         else
           reply
             (Xrl_error.Command_failed
                (Printf.sprintf "%d/%d deletes failed" !failed n))
             []);
  Xrl_router.add_handler r ~interface:"rib" ~method_name:"lookup_route_by_dest"
    (fun args reply ->
       let addr = Xrl_atom.get_ipv4 args "addr" in
       match lookup_best t addr with
       | Some route ->
         reply ok
           [ Xrl_atom.ipv4net "net" route.Rib_route.net;
             Xrl_atom.ipv4 "nexthop" route.nexthop;
             Xrl_atom.u32 "metric" route.metric;
             Xrl_atom.u32 "admin_distance" route.admin_distance;
             Xrl_atom.txt "protocol" route.protocol ]
       | None ->
         reply
           (Xrl_error.Command_failed ("no route to " ^ Ipv4.to_string addr))
           []);
  Xrl_router.add_handler r ~interface:"rib" ~method_name:"register_interest"
    (fun args reply ->
       let client = Xrl_atom.get_txt args "client" in
       let addr = Xrl_atom.get_ipv4 args "addr" in
       let answer = register_interest t ~client addr in
       let base =
         [ Xrl_atom.boolean "resolves" (answer.Register_table.matched <> None);
           Xrl_atom.ipv4net "valid" answer.Register_table.valid_subnet ]
       in
       let extra =
         match answer.Register_table.matched with
         | Some route ->
           [ Xrl_atom.ipv4net "net" route.Rib_route.net;
             Xrl_atom.ipv4 "nexthop" route.nexthop;
             Xrl_atom.u32 "metric" route.metric;
             Xrl_atom.txt "protocol" route.protocol ]
         | None -> []
       in
       reply ok (base @ extra));
  Xrl_router.add_handler r ~interface:"rib" ~method_name:"deregister_interest"
    (fun args reply ->
       let client = Xrl_atom.get_txt args "client" in
       let valid = Xrl_atom.get_ipv4net args "valid" in
       if deregister_interest t ~client valid then reply ok []
       else
         reply
           (Xrl_error.Command_failed
              ("no registration for " ^ Ipv4net.to_string valid))
           []);
  Xrl_router.add_handler r ~interface:"rib" ~method_name:"redist_subscribe"
    (fun args reply ->
       let target = Xrl_atom.get_txt args "target" in
       let source = Xrl_atom.get_txt args "policy" in
       match Policy.compile source with
       | Error msg -> reply (Xrl_error.Command_failed ("bad policy: " ^ msg)) []
       | Ok policy ->
         let deliver method_name (route : Rib_route.t) =
           let xrl =
             Xrl.make ~target ~interface:"redist_client" ~method_name
               [ Xrl_atom.txt "protocol" route.Rib_route.protocol;
                 Xrl_atom.ipv4net "net" route.net;
                 Xrl_atom.ipv4 "nexthop" route.nexthop;
                 Xrl_atom.u32 "metric" route.metric;
                 Xrl_atom.u32 "tag"
                   (match route.tags with tag :: _ -> tag | [] -> 0) ]
           in
           Xrl_router.send t.router xrl (fun err _ ->
               if not (Xrl_error.is_ok err) then
                 Log.debug (fun m ->
                     m "redist to %s failed: %s" target
                       (Xrl_error.to_string err)))
         in
         subscribe_redist t ~name:target ~policy
           ~on_add:(deliver "add_route") ~on_delete:(deliver "delete_route");
         reply ok []);
  Xrl_router.add_handler r ~interface:"rib" ~method_name:"redist_unsubscribe"
    (fun args reply ->
       let target = Xrl_atom.get_txt args "target" in
       unsubscribe_redist t ~name:target;
       reply ok []);
  Xrl_router.add_handler r ~interface:"rib" ~method_name:"get_route_count"
    (fun _ reply -> reply ok [ Xrl_atom.u32 "count" (route_count t) ])

(* Watch protocol component classes; when the last instance of a class
   dies, flush its origin tables in the background (§6.2's lifetime
   notification put to use). *)
let watch_protocol_deaths t finder =
  let watch class_name protos =
    Finder.watch_class finder class_name (fun event _instance ->
        match event with
        | Finder.Birth -> ()
        | Finder.Death ->
          if Finder.live_instances finder class_name = [] then
            List.iter (fun p -> flush_protocol t p) protos)
  in
  watch "rip" [ "rip" ];
  watch "bgp" [ "ebgp"; "ibgp" ];
  watch "ospf" [ "ospf" ]

(* A reborn FEA starts from an empty FIB, so incremental deltas queued
   against the old instance would be wrong; replace them with a full
   dump of the current winners. *)
let replay_fib t =
  Laneq.clear t.fea_q;
  (* A full-FIB dump is the definition of bulk work: fresh urgent
     changes for other prefixes overtake it, while the Laneq guard
     keeps a change to a replayed prefix behind its replay entry. *)
  let n =
    fold_winners t
      (fun r n ->
         Laneq.push t.fea_q Laneq.Bulk ~net:r.Rib_route.net (`Add r, None);
         n + 1)
      0
  in
  Log.info (fun m -> m "FEA is back; replaying %d FIB entries" n);
  set_fea_gauges t;
  if (not t.fea_flush_armed) && not (Laneq.is_empty t.fea_q) then begin
    t.fea_flush_armed <- true;
    Eventloop.defer t.loop (fun () -> flush_fea t)
  end

(* Watch the FEA's own lifetime: while no instance is live, FIB
   updates accumulate in the queue instead of failing into the void;
   a (re)birth triggers the full replay above. The synthetic Birth
   fired for an already-live FEA at watch time is a no-op because
   [fea_up] was initialised from the same live-instance query. *)
let watch_fea_lifecycle ?(rebirth_replay = true) t finder =
  Finder.watch_class finder "fea" (fun event _instance ->
      match event with
      | Finder.Death ->
        if t.fea_up && Finder.live_instances finder "fea" = [] then begin
          t.fea_up <- false;
          Log.warn (fun m ->
              m "FEA died; holding FIB updates until an instance returns")
        end
      | Finder.Birth ->
        if not t.fea_up then begin
          t.fea_up <- true;
          if rebirth_replay then replay_fib t
          else if (not t.fea_flush_armed) && not (Laneq.is_empty t.fea_q)
          then begin
            (* Faulty variant kept for the simulation harness's
               bug-injection mode: only the deltas held while the FEA
               was down are flushed, so every route installed before
               the death is silently missing from the reborn FIB. *)
            t.fea_flush_armed <- true;
            Eventloop.defer t.loop (fun () -> flush_fea t)
          end
        end)

let create ?families ?batching ?profiler ?(send_to_fea = true)
    ?(bulk_fea = true) ?(fea_rebirth_replay = true) ?shard_dispatch finder
    loop () =
  (* A fresh generation starts its metric namespace from zero, so a
     restarted RIB does not inherit the dead instance's counts. *)
  Telemetry.reset_prefix "rib.";
  let router =
    Xrl_router.create ?families ?batching finder loop ~class_name:"rib"
      ~sole:true ()
  in
  let t_ref = ref None in
  let origins, register, redist =
    match shard_dispatch with
    | None -> build_pipeline (fun () -> Option.get !t_ref) loop
    | Some _ -> build_sharded_pipeline (fun () -> Option.get !t_ref)
  in
  let sharded_origins = Hashtbl.create 8 in
  (match shard_dispatch with
   | Some _ ->
     List.iter
       (fun p -> Hashtbl.replace sharded_origins p (Ptree.create ()))
       (igp_protocols @ egp_protocols)
   | None -> ());
  let t =
    { router; loop; profiler; origins; register; redist; send_to_fea;
      shard_dispatch; sharded_origins;
      bulk_fea; fea_q = Laneq.create (); fea_flush_armed = false;
      fea_lane = Laneq.Urgent;
      g_fea_depth = Telemetry.gauge "rib.fea_q.depth";
      g_fea_urgent = Telemetry.gauge "rib.fea_q.urgent";
      g_fea_bulk = Telemetry.gauge "rib.fea_q.bulk";
      (* Not assumed true: a RIB created (or reborn) while the FEA is
         down must treat the FEA's eventual return as a rebirth and
         replay the FIB, exactly as the protocols treat a reborn RIB.
         Without the watcher there is no Birth to flip it, so it
         starts true. *)
      fea_up =
        (not send_to_fea) || Finder.live_instances finder "fea" <> [] }
  in
  t_ref := Some router;
  (match profiler with
   | Some p ->
     List.iter (Profiler.define p) [ pp_arrived; pp_queued_fea; pp_sent_fea ]
   | None -> ());
  (* Terminal sink: winners flow to the FEA. *)
  let sink =
    new Rib_table.sink ~name:"sink"
      ~parent:(redist :> Rib_table.table)
      ~on_add:(fun r -> send_fea t (`Add r))
      ~on_delete:(fun r -> send_fea t (`Delete r))
  in
  Rib_table.plumb redist sink;
  add_xrl_handlers t;
  watch_protocol_deaths t finder;
  if send_to_fea then
    watch_fea_lifecycle ~rebirth_replay:fea_rebirth_replay t finder;
  t

let shutdown t = Xrl_router.shutdown t.router
