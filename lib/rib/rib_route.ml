type t = {
  net : Ipv4net.t;
  nexthop : Ipv4.t;
  metric : int;
  admin_distance : int;
  protocol : string;
  tags : int list;
}

let default_admin_distance = function
  | "connected" -> Some 0
  | "static" -> Some 1
  | "ebgp" -> Some 20
  | "ospf" -> Some 110
  | "rip" -> Some 120
  | "ibgp" -> Some 200
  | _ -> None

let make ~net ~nexthop ?(metric = 0) ?admin_distance ~protocol ?(tags = []) () =
  let admin_distance =
    match admin_distance with
    | Some d -> d
    | None -> Option.value (default_admin_distance protocol) ~default:255
  in
  { net; nexthop; metric; admin_distance; protocol; tags }

let equal a b =
  Ipv4net.equal a.net b.net
  && Ipv4.equal a.nexthop b.nexthop
  && a.metric = b.metric
  && a.admin_distance = b.admin_distance
  && String.equal a.protocol b.protocol
  && a.tags = b.tags

let to_string r =
  Printf.sprintf "%s via %s metric %d [%s/%d]%s"
    (Ipv4net.to_string r.net) (Ipv4.to_string r.nexthop) r.metric r.protocol
    r.admin_distance
    (match r.tags with
     | [] -> ""
     | tags -> " tags " ^ String.concat "," (List.map string_of_int tags))

let pp fmt r = Format.pp_print_string fmt (to_string r)
