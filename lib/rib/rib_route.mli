(** Routes as seen by the RIB.

    Unlike BGP, the RIB arbitrates between protocols "purely on the
    basis of a single administrative distance metric" (paper §5.2),
    which is what allows its decision process to be distributed as
    pairwise merge stages. *)

type t = {
  net : Ipv4net.t;
  nexthop : Ipv4.t;
  metric : int;            (** Protocol-internal metric (e.g. RIP hops). *)
  admin_distance : int;    (** Lower wins across protocols. *)
  protocol : string;       (** Origin protocol name ("rip", "ebgp", ...). *)
  tags : int list;         (** Policy tags (§8.3). *)
}

val make :
  net:Ipv4net.t -> nexthop:Ipv4.t -> ?metric:int -> ?admin_distance:int ->
  protocol:string -> ?tags:int list -> unit -> t
(** [admin_distance] defaults to {!default_admin_distance} of
    [protocol] (or 255 for unknown protocols). *)

val default_admin_distance : string -> int option
(** The conventional table: connected 0, static 1, ebgp 20, ospf 110,
    rip 120, ibgp 200. *)

val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit
