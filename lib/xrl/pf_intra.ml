let registry : (int, Pf.dispatch) Hashtbl.t = Hashtbl.create 16
let next_id = ref 0

let make_listener _loop dispatch : Pf.listener =
  incr next_id;
  let id = !next_id in
  Hashtbl.replace registry id dispatch;
  { address = Printf.sprintf "intra:%d" id;
    shutdown = (fun () -> Hashtbl.remove registry id) }

let parse_address address =
  match String.split_on_char ':' address with
  | [ "intra"; id ] ->
    (match int_of_string_opt id with
     | Some id -> id
     | None -> invalid_arg ("Pf_intra: bad address " ^ address))
  | _ -> invalid_arg ("Pf_intra: bad address " ^ address)

let make_sender _loop address : Pf.sender =
  let id = parse_address address in
  (* Metric handle resolved once per sender, not per call. *)
  let calls = Telemetry.counter "xrl.intra.calls" in
  let send_req xrl cb =
    if Telemetry.is_enabled () then Telemetry.incr calls;
    (* Looked up per call: the receiver may have shut down since the
       sender was created. *)
    match Hashtbl.find_opt registry id with
    | Some dispatch -> dispatch xrl cb
    | None -> cb (Xrl_error.Send_failed ("intra target gone: " ^ address)) []
  in
  (* No send_batch: calls are direct function invocations, so there is
     no frame boundary to amortize — and deferring them would break the
     family's synchronous dispatch. *)
  { send_req; send_batch = None; close_sender = (fun () -> ());
    family_of_sender = "x-intra" }

let family : Pf.family =
  { family_name = "x-intra"; make_listener; make_sender }
