let src = Logs.Src.create "xorp.pf_udp" ~doc:"XRL UDP protocol family"

module Log = (val Logs.src_log src : Logs.LOG)

let request_timeout = 3.0
let max_dgram = 65000

(* Metric handles resolved once at module load, not per call. *)
let c_bytes_rx = Telemetry.counter "xrl.udp.bytes_rx"
let c_bytes_tx = Telemetry.counter "xrl.udp.bytes_tx"
let c_requests_rx = Telemetry.counter "xrl.udp.requests_rx"
let c_requests_tx = Telemetry.counter "xrl.udp.requests_tx"

let count_bytes c n = if Telemetry.is_enabled () then Telemetry.add c n
let count c = if Telemetry.is_enabled () then Telemetry.incr c

let require_real loop what =
  if Eventloop.mode loop <> `Real then
    invalid_arg (what ^ ": UDP protocol family needs a `Real event loop")

let make_listener loop (dispatch : Pf.dispatch) : Pf.listener =
  require_real loop "Pf_udp.make_listener";
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.set_nonblock fd;
  let port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, port) -> port
    | _ -> assert false
  in
  let buf = Bytes.create max_dgram in
  let send_to peer msg =
    let reply = Xrl_wire.encode msg in
    count_bytes c_bytes_tx (String.length reply);
    try
      ignore
        (Unix.sendto fd (Bytes.of_string reply) 0 (String.length reply) []
           peer)
    with Unix.Unix_error _ -> ()
  in
  let serve_request peer ?gather seq xrl =
    count c_requests_rx;
    dispatch xrl (fun error args ->
        let reply = Xrl_wire.Reply { seq; error; args } in
        match gather with
        | Some acc when !acc <> None -> acc := Some (reply :: Option.get !acc)
        | _ -> send_to peer reply)
  in
  let readable () =
    let rec drain () =
      match Unix.recvfrom fd buf 0 max_dgram [] with
      | n, peer ->
        count_bytes c_bytes_rx n;
        (match Xrl_wire.decode (Bytes.sub_string buf 0 n) with
         | Ok (Xrl_wire.Request { seq; xrl }) -> serve_request peer seq xrl
         | Ok (Xrl_wire.Batch msgs) ->
           (* Batched requests are answered in one datagram where the
              replies complete synchronously; late replies fall back to
              a datagram each. Errors stay per-request. *)
           let acc = ref (Some []) in
           List.iter
             (fun m ->
                match m with
                | Xrl_wire.Request { seq; xrl } ->
                  serve_request peer ~gather:acc seq xrl
                | Xrl_wire.Reply _ | Xrl_wire.Batch _ ->
                  Log.warn (fun m -> m "non-request inside a batch"))
             msgs;
           (match !acc with
            | Some gathered ->
              acc := None;
              (match List.rev gathered with
               | [] -> ()
               | [ one ] -> send_to peer one
               | many -> send_to peer (Xrl_wire.Batch many))
            | None -> ())
         | Ok (Xrl_wire.Reply _) ->
           Log.warn (fun m -> m "listener got a stray reply")
         | Error msg -> Log.warn (fun m -> m "undecodable request: %s" msg));
        drain ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        -> ()
    in
    drain ()
  in
  Eventloop.add_reader loop fd readable;
  let shutdown () =
    Eventloop.remove_reader loop fd;
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  { address = Printf.sprintf "127.0.0.1:%d" port; shutdown }

let parse_address address =
  match String.rindex_opt address ':' with
  | None -> invalid_arg ("Pf_udp: bad address " ^ address)
  | Some i ->
    let host = String.sub address 0 i in
    let port = String.sub address (i + 1) (String.length address - i - 1) in
    (match Ipv4.of_string host, int_of_string_opt port with
     | Some _, Some port -> (Unix.inet_addr_of_string host, port)
     | _ -> invalid_arg ("Pf_udp: bad address " ^ address))

type inflight = {
  if_seq : int;
  if_cb : Xrl_error.t -> Xrl_atom.t list -> unit;
  if_timer : Eventloop.timer;
}

let make_sender loop address : Pf.sender =
  require_real loop "Pf_udp.make_sender";
  let inet, port = parse_address address in
  let dest = Unix.ADDR_INET (inet, port) in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.set_nonblock fd;
  let queue : (Xrl.t * (Xrl_error.t -> Xrl_atom.t list -> unit)) Queue.t =
    Queue.create ()
  in
  let inflight : inflight option ref = ref None in
  let seq = ref 0 in
  let opened = ref true in
  let buf = Bytes.create max_dgram in
  let rec send_next () =
    if !opened && !inflight = None then
      match Queue.take_opt queue with
      | None -> ()
      | Some (xrl, cb) ->
        incr seq;
        let this_seq = !seq in
        let payload = Xrl_wire.encode (Xrl_wire.Request { seq = this_seq; xrl }) in
        count c_requests_tx;
        count_bytes c_bytes_tx (String.length payload);
        (match
           Unix.sendto fd (Bytes.of_string payload) 0 (String.length payload)
             [] dest
         with
         | _ ->
           let timer =
             Eventloop.after loop request_timeout (fun () ->
                 match !inflight with
                 | Some f when f.if_seq = this_seq ->
                   inflight := None;
                   f.if_cb (Xrl_error.Reply_timed_out "udp request") [];
                   send_next ()
                 | _ -> ())
           in
           inflight := Some { if_seq = this_seq; if_cb = cb; if_timer = timer }
         | exception Unix.Unix_error (err, _, _) ->
           cb (Xrl_error.Send_failed (Unix.error_message err)) [];
           send_next ())
  in
  let readable () =
    let rec drain () =
      match Unix.recvfrom fd buf 0 max_dgram [] with
      | n, _ ->
        count_bytes c_bytes_rx n;
        (match Xrl_wire.decode (Bytes.sub_string buf 0 n) with
         | Ok (Xrl_wire.Reply { seq = rseq; error; args }) ->
           (match !inflight with
            | Some f when f.if_seq = rseq ->
              Eventloop.cancel f.if_timer;
              inflight := None;
              f.if_cb error args;
              send_next ()
            | _ -> Log.warn (fun m -> m "reply for unknown seq %d" rseq))
         | Ok (Xrl_wire.Batch _) ->
           (* This sender never batches (window 1, the paper's early
              prototype), so a batched reply cannot match anything. *)
           Log.warn (fun m -> m "unexpected batched reply")
         | Ok (Xrl_wire.Request _) ->
           Log.warn (fun m -> m "sender got a request")
         | Error msg -> Log.warn (fun m -> m "undecodable reply: %s" msg));
        drain ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        -> ()
    in
    drain ()
  in
  Eventloop.add_reader loop fd readable;
  let send_req xrl cb =
    if !opened then begin
      Queue.push (xrl, cb) queue;
      send_next ()
    end
    else cb (Xrl_error.Send_failed "sender closed") []
  in
  let close_sender () =
    if !opened then begin
      opened := false;
      Eventloop.remove_reader loop fd;
      (try Unix.close fd with Unix.Unix_error _ -> ());
      (match !inflight with
       | Some f ->
         Eventloop.cancel f.if_timer;
         inflight := None;
         f.if_cb (Xrl_error.Send_failed "sender closed") []
       | None -> ());
      Queue.iter (fun (_, cb) -> cb (Xrl_error.Send_failed "sender closed") []) queue;
      Queue.clear queue
    end
  in
  (* Deliberately no send_batch: UDP is kept as the paper's
     unpipelined early prototype to preserve the fig9 comparison. *)
  { send_req; send_batch = None; close_sender; family_of_sender = "sudp" }

let family : Pf.family = { family_name = "sudp"; make_listener; make_sender }
