type t = {
  loop : Eventloop.t;
  fd : Unix.file_descr;
  on_frame : string -> unit;
  on_close : unit -> unit;
  inbuf : Buffer.t;
  outq : string Queue.t; (* head may be partially written: out_off *)
  mutable out_off : int;
  mutable out_bytes : int;
  mutable writer_armed : bool;
  mutable opened : bool;
}

let scratch_len = 65536
let scratch = Bytes.create scratch_len

let is_open t = t.opened
let pending_bytes t = t.out_bytes - t.out_off

let teardown t =
  if t.opened then begin
    t.opened <- false;
    Eventloop.remove_reader t.loop t.fd;
    if t.writer_armed then Eventloop.remove_writer t.loop t.fd;
    (try Unix.close t.fd with Unix.Unix_error _ -> ())
  end

let close t = teardown t

let remote_closed t =
  if t.opened then begin
    teardown t;
    t.on_close ()
  end

(* Extract complete frames from the input buffer. *)
let parse_frames t =
  let data = Buffer.contents t.inbuf in
  let n = String.length data in
  let pos = ref 0 in
  let frames = ref [] in
  let continue = ref true in
  while !continue do
    if n - !pos >= 4 then begin
      let len =
        (Char.code data.[!pos] lsl 24)
        lor (Char.code data.[!pos + 1] lsl 16)
        lor (Char.code data.[!pos + 2] lsl 8)
        lor Char.code data.[!pos + 3]
      in
      if n - !pos - 4 >= len then begin
        frames := String.sub data (!pos + 4) len :: !frames;
        pos := !pos + 4 + len
      end
      else continue := false
    end
    else continue := false
  done;
  if !pos > 0 then begin
    Buffer.clear t.inbuf;
    Buffer.add_substring t.inbuf data !pos (n - !pos)
  end;
  List.rev !frames

let handle_readable t () =
  if t.opened then
    match Unix.read t.fd scratch 0 scratch_len with
    | 0 -> remote_closed t
    | n ->
      Buffer.add_subbytes t.inbuf scratch 0 n;
      let frames = parse_frames t in
      List.iter (fun f -> if t.opened then t.on_frame f) frames
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
      ()
    | exception Unix.Unix_error (_, _, _) -> remote_closed t

let rec flush t =
  match Queue.peek_opt t.outq with
  | None -> true (* fully drained *)
  | Some head ->
    let len = String.length head in
    let remaining = len - t.out_off in
    (match
       Unix.write_substring t.fd head t.out_off remaining
     with
     | n ->
       if n = remaining then begin
         ignore (Queue.pop t.outq);
         t.out_bytes <- t.out_bytes - len;
         t.out_off <- 0;
         flush t
       end
       else begin
         t.out_off <- t.out_off + n;
         false
       end
     | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
       -> false
     | exception Unix.Unix_error (_, _, _) ->
       remote_closed t;
       true)

let handle_writable t () =
  if t.opened then
    if flush t && t.writer_armed then begin
      t.writer_armed <- false;
      Eventloop.remove_writer t.loop t.fd
    end

let enqueue t framed =
  Queue.push framed t.outq;
  t.out_bytes <- t.out_bytes + String.length framed;
  if not (flush t) && t.opened && not t.writer_armed then begin
    t.writer_armed <- true;
    Eventloop.add_writer t.loop t.fd (fun () -> handle_writable t ())
  end

let send_frame t payload =
  if t.opened then begin
    let len = String.length payload in
    let hdr =
      String.init 4 (fun i -> Char.chr ((len lsr (8 * (3 - i))) land 0xFF))
    in
    enqueue t (hdr ^ payload)
  end

(* Encode straight into the output path: the 4-byte length header is
   reserved up front and patched once the payload is written, so the
   frame is built in a single buffer — no payload string, no header
   string, no concatenation. *)
let send_frame_into t encode =
  if t.opened then begin
    let w = Wire.W.create ~initial:256 () in
    Wire.W.u32 w 0;
    encode w;
    let payload_len = Wire.W.length w - 4 in
    Wire.W.patch_u32 w 0 payload_len;
    enqueue t (Wire.W.contents w);
    payload_len
  end
  else 0

let attach loop fd ~on_frame ~on_close =
  Unix.set_nonblock fd;
  let t =
    { loop; fd; on_frame; on_close; inbuf = Buffer.create 4096;
      outq = Queue.create (); out_off = 0; out_bytes = 0;
      writer_armed = false; opened = true }
  in
  Eventloop.add_reader loop fd (fun () -> handle_readable t ());
  t
