type t =
  | Ok_xrl
  | Resolve_failed of string
  | No_such_method of string
  | Bad_args of string
  | Command_failed of string
  | Send_failed of string
  | Reply_timed_out of string
  | Internal_error of string
  | Timed_out of string

let is_ok = function Ok_xrl -> true | _ -> false

let to_string = function
  | Ok_xrl -> "OK"
  | Resolve_failed s -> "resolve failed: " ^ s
  | No_such_method s -> "no such method: " ^ s
  | Bad_args s -> "bad arguments: " ^ s
  | Command_failed s -> "command failed: " ^ s
  | Send_failed s -> "send failed: " ^ s
  | Reply_timed_out s -> "reply timed out: " ^ s
  | Internal_error s -> "internal error: " ^ s
  | Timed_out s -> "timed out: " ^ s

let code = function
  | Ok_xrl -> 0
  | Resolve_failed _ -> 1
  | No_such_method _ -> 2
  | Bad_args _ -> 3
  | Command_failed _ -> 4
  | Send_failed _ -> 5
  | Reply_timed_out _ -> 6
  | Internal_error _ -> 7
  | Timed_out _ -> 8

let of_code c note =
  match c with
  | 0 -> Ok_xrl
  | 1 -> Resolve_failed note
  | 2 -> No_such_method note
  | 3 -> Bad_args note
  | 4 -> Command_failed note
  | 5 -> Send_failed note
  | 6 -> Reply_timed_out note
  | 8 -> Timed_out note
  | _ -> Internal_error note

let pp fmt t = Format.pp_print_string fmt (to_string t)
