type value =
  | U32 of int
  | I32 of int
  | U64 of int64
  | Txt of string
  | Bool of bool
  | Ipv4_v of Ipv4.t
  | Ipv4net_v of Ipv4net.t
  | Binary of string
  | List of value list

type t = { name : string; value : value }

let reserved c =
  match c with
  | ':' | '=' | '&' | '?' | ',' | '/' | '%' | ' ' -> true
  | _ -> false

let make name value =
  if name = "" || String.exists reserved name then
    invalid_arg (Printf.sprintf "Xrl_atom.make: bad name %S" name);
  let value = match value with U32 v -> U32 (v land 0xFFFF_FFFF) | v -> v in
  { name; value }

let u32 name v = make name (U32 v)
let i32 name v = make name (I32 v)
let u64 name v = make name (U64 v)
let txt name v = make name (Txt v)
let boolean name v = make name (Bool v)
let ipv4 name v = make name (Ipv4_v v)
let ipv4net name v = make name (Ipv4net_v v)
let binary name v = make name (Binary v)
let list name v = make name (List v)

let type_name = function
  | U32 _ -> "u32"
  | I32 _ -> "i32"
  | U64 _ -> "u64"
  | Txt _ -> "txt"
  | Bool _ -> "bool"
  | Ipv4_v _ -> "ipv4"
  | Ipv4net_v _ -> "ipv4net"
  | Binary _ -> "binary"
  | List _ -> "list"

let same_type a b = type_name a = type_name b

let hex = "0123456789ABCDEF"

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
       if reserved c || c < ' ' || c > '~' then begin
         Buffer.add_char buf '%';
         Buffer.add_char buf hex.[Char.code c lsr 4];
         Buffer.add_char buf hex.[Char.code c land 0xF]
       end
       else Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unhex c =
  match c with
  | '0'..'9' -> Char.code c - Char.code '0'
  | 'A'..'F' -> Char.code c - Char.code 'A' + 10
  | 'a'..'f' -> Char.code c - Char.code 'a' + 10
  | _ -> raise Exit

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i >= n then Ok (Buffer.contents buf)
    else if s.[i] = '%' then
      if i + 2 < n then
        match unhex s.[i + 1], unhex s.[i + 2] with
        | hi, lo ->
          Buffer.add_char buf (Char.chr ((hi lsl 4) lor lo));
          go (i + 3)
        | exception Exit -> Error "bad percent escape"
      else Error "truncated percent escape"
    else begin
      Buffer.add_char buf s.[i];
      go (i + 1)
    end
  in
  go 0

let rec value_to_text v =
  match v with
  | U32 v -> string_of_int v
  | I32 v -> string_of_int v
  | U64 v -> Int64.to_string v
  | Txt s -> escape s
  | Bool b -> if b then "true" else "false"
  | Ipv4_v a -> Ipv4.to_string a
  | Ipv4net_v n -> escape (Ipv4net.to_string n)
  | Binary s -> escape s
  | List vs -> String.concat "," (List.map value_to_text vs)

let rec value_to_string v =
  match v with
  | Txt s -> s
  | Binary s -> Printf.sprintf "<%d bytes>" (String.length s)
  | List vs -> "[" ^ String.concat ", " (List.map value_to_string vs) ^ "]"
  | v -> value_to_text v

let to_text t =
  Printf.sprintf "%s:%s=%s" t.name (type_name t.value) (value_to_text t.value)

let ( let* ) = Result.bind

let parse_scalar ty raw =
  let* s = unescape raw in
  match ty with
  | "u32" ->
    (match int_of_string_opt s with
     | Some v when v >= 0 && v <= 0xFFFF_FFFF -> Ok (U32 v)
     | _ -> Error (Printf.sprintf "bad u32 %S" s))
  | "i32" ->
    (match int_of_string_opt s with
     | Some v when v >= -0x8000_0000 && v <= 0x7FFF_FFFF -> Ok (I32 v)
     | _ -> Error (Printf.sprintf "bad i32 %S" s))
  | "u64" ->
    (match Int64.of_string_opt s with
     | Some v -> Ok (U64 v)
     | None -> Error (Printf.sprintf "bad u64 %S" s))
  | "txt" -> Ok (Txt s)
  | "bool" ->
    (match s with
     | "true" -> Ok (Bool true)
     | "false" -> Ok (Bool false)
     | _ -> Error (Printf.sprintf "bad bool %S" s))
  | "ipv4" ->
    (match Ipv4.of_string s with
     | Some a -> Ok (Ipv4_v a)
     | None -> Error (Printf.sprintf "bad ipv4 %S" s))
  | "ipv4net" ->
    (match Ipv4net.of_string s with
     | Some n -> Ok (Ipv4net_v n)
     | None -> Error (Printf.sprintf "bad ipv4net %S" s))
  | "binary" -> Ok (Binary s)
  | ty -> Error (Printf.sprintf "unknown atom type %S" ty)

let of_text s =
  match String.index_opt s ':' with
  | None -> Error (Printf.sprintf "atom %S has no type separator" s)
  | Some colon ->
    let name = String.sub s 0 colon in
    let rest = String.sub s (colon + 1) (String.length s - colon - 1) in
    (match String.index_opt rest '=' with
     | None -> Error (Printf.sprintf "atom %S has no value" s)
     | Some eq ->
       let ty = String.sub rest 0 eq in
       let raw = String.sub rest (eq + 1) (String.length rest - eq - 1) in
       if name = "" || String.exists reserved name then
         Error (Printf.sprintf "bad atom name %S" name)
       else if ty = "list" then begin
         (* Textual lists are comma-separated scalars; each element
            carries its own type as elemtype%3Dvalue?  We keep it
            simpler: textual lists are lists of txt atoms. *)
         let elems =
           if raw = "" then []
           else String.split_on_char ',' raw
         in
         let rec convert acc = function
           | [] -> Ok (List (List.rev acc))
           | e :: rest ->
             let* s = unescape e in
             convert (Txt s :: acc) rest
         in
         let* v = convert [] elems in
         Ok { name; value = v }
       end
       else
         let* v = parse_scalar ty raw in
         Ok { name; value = v })

let rec value_equal a b =
  match a, b with
  | U32 x, U32 y | I32 x, I32 y -> x = y
  | U64 x, U64 y -> Int64.equal x y
  | Txt x, Txt y | Binary x, Binary y -> String.equal x y
  | Bool x, Bool y -> x = y
  | Ipv4_v x, Ipv4_v y -> Ipv4.equal x y
  | Ipv4net_v x, Ipv4net_v y -> Ipv4net.equal x y
  | List x, List y ->
    List.length x = List.length y && List.for_all2 value_equal x y
  | (U32 _ | I32 _ | U64 _ | Txt _ | Bool _ | Ipv4_v _ | Ipv4net_v _
    | Binary _ | List _), _ -> false

let equal a b = String.equal a.name b.name && value_equal a.value b.value
let pp fmt t = Format.pp_print_string fmt (to_text t)

exception Bad_args of string

let find args name = List.find_opt (fun a -> a.name = name) args

let get args name descr extract =
  match find args name with
  | None -> raise (Bad_args (Printf.sprintf "missing argument %S" name))
  | Some a ->
    (match extract a.value with
     | Some v -> v
     | None ->
       raise
         (Bad_args
            (Printf.sprintf "argument %S has type %s, expected %s" name
               (type_name a.value) descr)))

let get_u32 args name =
  get args name "u32" (function U32 v -> Some v | _ -> None)

let get_i32 args name =
  get args name "i32" (function I32 v -> Some v | _ -> None)

let get_u64 args name =
  get args name "u64" (function U64 v -> Some v | _ -> None)

let get_txt args name =
  get args name "txt" (function Txt v -> Some v | _ -> None)

let get_bool args name =
  get args name "bool" (function Bool v -> Some v | _ -> None)

let get_ipv4 args name =
  get args name "ipv4" (function Ipv4_v v -> Some v | _ -> None)

let get_ipv4net args name =
  get args name "ipv4net" (function Ipv4net_v v -> Some v | _ -> None)

let get_binary args name =
  get args name "binary" (function Binary v -> Some v | _ -> None)

let get_list args name =
  get args name "list" (function List v -> Some v | _ -> None)
