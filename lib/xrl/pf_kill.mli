(** The kill protocol family (paper §6.3).

    "Finally, there exists a kill protocol family, which is capable of
    sending just one message type — a UNIX signal — to components
    within a host."

    A component becomes signalable by including {!family} in its
    protocol families and calling {!make_signalable}; the Router
    Manager (or anything else) then delivers signals through ordinary
    Finder resolution with {!send_signal}. The family transports
    nothing but signals: any other interface, any arguments, or an
    unknown signal name are refused at the sending side, and the
    receiving side still enforces the per-method key, so the Finder
    cannot be bypassed. *)

val family : Pf.family
(** The ["kill"] family: refuses everything except no-argument
    [signal/1.0] calls naming a known signal. *)

val known_signals : string list
(** ["HUP"; "INT"; "TERM"; "USR1"; "USR2"] *)

val make_signalable : Xrl_router.t -> on_signal:(string -> unit) -> unit
(** Register the [signal/1.0/<name>] handlers that deliveries invoke. *)

val send_signal :
  Xrl_router.t -> target:string -> signal:string ->
  (Xrl_error.t -> unit) -> unit
(** Resolve [target] and deliver one signal. The sending router must
    itself list {!family} among its protocol families and prefer it for
    the delivery to travel over the kill transport. *)
