(* Like the intra-process family, but the sender refuses anything that
   is not a bare signal: one message type, no arguments (§6.3). The
   receiving side still performs the normal keyed-method check, so
   signals cannot bypass Finder resolution either. *)

let registry : (int, Pf.dispatch) Hashtbl.t = Hashtbl.create 8
let next_id = ref 0
let known_signals = [ "HUP"; "INT"; "TERM"; "USR1"; "USR2" ]

let family : Pf.family =
  {
    family_name = "kill";
    make_listener =
      (fun _loop dispatch ->
         incr next_id;
         let id = !next_id in
         Hashtbl.replace registry id dispatch;
         { Pf.address = Printf.sprintf "kill:%d" id;
           shutdown = (fun () -> Hashtbl.remove registry id) });
    make_sender =
      (fun loop address ->
         let id =
           match String.split_on_char ':' address with
           | [ "kill"; id ] ->
             (match int_of_string_opt id with
              | Some id -> id
              | None -> invalid_arg ("Pf_kill: bad address " ^ address))
           | _ -> invalid_arg ("Pf_kill: bad address " ^ address)
         in
         let send_req (xrl : Xrl.t) cb =
           let signal =
             match String.rindex_opt xrl.method_name '@' with
             | Some i -> String.sub xrl.method_name 0 i
             | None -> xrl.method_name
           in
           if xrl.interface <> "signal" then
             cb (Xrl_error.Bad_args "the kill family only carries signals") []
           else if xrl.args <> [] then
             cb (Xrl_error.Bad_args "signals take no arguments") []
           else if not (List.mem signal known_signals) then
             cb (Xrl_error.Bad_args ("unknown signal " ^ signal)) []
           else
             (* Defer dispatch through the event loop: a synchronous
                dispatch would run the receiver's handler (and its
                reply) inside the caller's send, re-entering the caller
                mid-operation. Validation errors above stay synchronous
                — they involve no peer code. The registry is consulted
                at dispatch time, so a target that shuts down between
                send and dispatch fails cleanly. *)
             Eventloop.defer loop (fun () ->
                 match Hashtbl.find_opt registry id with
                 | Some dispatch -> dispatch xrl cb
                 | None -> cb (Xrl_error.Send_failed "kill target gone") [])
         in
         { Pf.send_req; send_batch = None; close_sender = (fun () -> ());
           family_of_sender = "kill" });
  }

let make_signalable router ~on_signal =
  List.iter
    (fun signal ->
       Xrl_router.add_handler router ~interface:"signal" ~method_name:signal
         (fun _args reply ->
            on_signal signal;
            reply Xrl_error.Ok_xrl []))
    known_signals

let send_signal router ~target ~signal cb =
  let xrl = Xrl.make ~target ~interface:"signal" ~method_name:signal [] in
  Xrl_router.send router xrl (fun err _ -> cb err)
