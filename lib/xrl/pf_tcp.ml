let src = Logs.Src.create "xorp.pf_tcp" ~doc:"XRL TCP protocol family"

module Log = (val Logs.src_log src : Logs.LOG)

let set_nodelay fd =
  try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ()

(* Metric handles resolved once at module load, not per call. *)
let c_bytes_rx = Telemetry.counter "xrl.tcp.bytes_rx"
let c_bytes_tx = Telemetry.counter "xrl.tcp.bytes_tx"
let c_requests_rx = Telemetry.counter "xrl.tcp.requests_rx"
let c_requests_tx = Telemetry.counter "xrl.tcp.requests_tx"
let c_batches_rx = Telemetry.counter "xrl.tcp.batches_rx"
let c_batches_tx = Telemetry.counter "xrl.tcp.batches_tx"

let count_bytes c n = if Telemetry.is_enabled () then Telemetry.add c n
let count c = if Telemetry.is_enabled () then Telemetry.incr c
let count_n c n = if Telemetry.is_enabled () then Telemetry.add c n

let require_real loop what =
  if Eventloop.mode loop <> `Real then
    invalid_arg (what ^ ": TCP protocol family needs a `Real event loop")

let parse_address address =
  match String.rindex_opt address ':' with
  | None -> invalid_arg ("Pf_tcp: bad address " ^ address)
  | Some i ->
    let host = String.sub address 0 i in
    let port = String.sub address (i + 1) (String.length address - i - 1) in
    (match Ipv4.of_string host, int_of_string_opt port with
     | Some _, Some port ->
       (Unix.inet_addr_of_string host, port)
     | _ -> invalid_arg ("Pf_tcp: bad address " ^ address))

let frame_out conn msg =
  let n =
    Sockbuf.send_frame_into conn (fun w -> Xrl_wire.encode_into w msg)
  in
  count_bytes c_bytes_tx n

(* --- Listener ------------------------------------------------------ *)

let make_listener loop (dispatch : Pf.dispatch) : Pf.listener =
  require_real loop "Pf_tcp.make_listener";
  let lfd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lfd Unix.SO_REUSEADDR true;
  Unix.bind lfd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen lfd 64;
  Unix.set_nonblock lfd;
  let port =
    match Unix.getsockname lfd with
    | Unix.ADDR_INET (_, port) -> port
    | _ -> assert false
  in
  let conns : Sockbuf.t list ref = ref [] in
  let reply_out conn_ref msg =
    match !conn_ref with
    | Some conn when Sockbuf.is_open conn -> frame_out conn msg
    | _ -> ()
  in
  let serve_request conn_ref ?gather seq xrl =
    count c_requests_rx;
    dispatch xrl (fun error args ->
        let reply = Xrl_wire.Reply { seq; error; args } in
        match gather with
        | Some acc when !acc <> None ->
          (* Still inside the batch's dispatch loop: coalesce this
             reply into the batched response frame. *)
          acc := Some (reply :: Option.get !acc)
        | _ -> reply_out conn_ref reply)
  in
  let serve_conn conn_ref frame =
    count_bytes c_bytes_rx (String.length frame);
    match Xrl_wire.decode frame with
    | Ok (Xrl_wire.Request { seq; xrl }) -> serve_request conn_ref seq xrl
    | Ok (Xrl_wire.Batch msgs) ->
      count c_batches_rx;
      (* Dispatch in order. Replies completing synchronously are
         gathered and flushed as a single batched frame (in request
         order); handlers that reply asynchronously fall back to a
         frame per reply once the gather window closes. One failing
         request does not affect its neighbours. *)
      let acc = ref (Some []) in
      List.iter
        (fun m ->
           match m with
           | Xrl_wire.Request { seq; xrl } ->
             serve_request conn_ref ~gather:acc seq xrl
           | Xrl_wire.Reply _ | Xrl_wire.Batch _ ->
             Log.warn (fun m -> m "non-request inside a batch; dropping"))
        msgs;
      (match !acc with
       | Some gathered ->
         acc := None;
         (match List.rev gathered with
          | [] -> ()
          | [ one ] -> reply_out conn_ref one
          | many ->
            count c_batches_tx;
            reply_out conn_ref (Xrl_wire.Batch many))
       | None -> ())
    | Ok (Xrl_wire.Reply _) ->
      Log.warn (fun m -> m "listener got a stray reply; dropping")
    | Error msg -> Log.warn (fun m -> m "undecodable request: %s" msg)
  in
  let accept_ready () =
    let rec accept_all () =
      match Unix.accept lfd with
      | fd, _ ->
        set_nodelay fd;
        let conn_ref = ref None in
        let conn =
          Sockbuf.attach loop fd
            ~on_frame:(fun frame -> serve_conn conn_ref frame)
            ~on_close:(fun () ->
                conns :=
                  List.filter
                    (fun c ->
                       match !conn_ref with
                       | Some mine -> not (c == mine)
                       | None -> true)
                    !conns)
        in
        conn_ref := Some conn;
        conns := conn :: !conns;
        accept_all ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        -> ()
    in
    accept_all ()
  in
  Eventloop.add_reader loop lfd accept_ready;
  let shutdown () =
    Eventloop.remove_reader loop lfd;
    (try Unix.close lfd with Unix.Unix_error _ -> ());
    List.iter Sockbuf.close !conns;
    conns := []
  in
  { address = Printf.sprintf "127.0.0.1:%d" port; shutdown }

(* --- Sender -------------------------------------------------------- *)

type sender_state = {
  outstanding : (int, Xrl_error.t -> Xrl_atom.t list -> unit) Hashtbl.t;
  mutable seq : int;
  mutable conn : Sockbuf.t option;
}

let make_sender loop address : Pf.sender =
  require_real loop "Pf_tcp.make_sender";
  let inet, port = parse_address address in
  let st = { outstanding = Hashtbl.create 64; seq = 0; conn = None } in
  let fail_all reason =
    (* Fail in ascending seq (= send) order: the router promises
       per-destination FIFO delivery of replies and errors, and
       Hashtbl.fold's order is arbitrary. *)
    let cbs =
      List.sort
        (fun (a, _) (b, _) -> compare a b)
        (Hashtbl.fold (fun seq cb acc -> (seq, cb) :: acc) st.outstanding [])
    in
    Hashtbl.reset st.outstanding;
    List.iter (fun (_, cb) -> cb (Xrl_error.Send_failed reason) []) cbs
  in
  let handle_reply seq error args =
    match Hashtbl.find_opt st.outstanding seq with
    | Some cb ->
      Hashtbl.remove st.outstanding seq;
      cb error args
    | None -> Log.warn (fun m -> m "reply for unknown seq %d" seq)
  in
  let on_frame frame =
    count_bytes c_bytes_rx (String.length frame);
    match Xrl_wire.decode frame with
    | Ok (Xrl_wire.Reply { seq; error; args }) -> handle_reply seq error args
    | Ok (Xrl_wire.Batch msgs) ->
      List.iter
        (fun m ->
           match m with
           | Xrl_wire.Reply { seq; error; args } -> handle_reply seq error args
           | Xrl_wire.Request _ | Xrl_wire.Batch _ ->
             Log.warn (fun m -> m "non-reply inside a batch; dropping"))
        msgs
    | Ok (Xrl_wire.Request _) ->
      Log.warn (fun m -> m "sender got a request; dropping")
    | Error msg -> Log.warn (fun m -> m "undecodable reply: %s" msg)
  in
  let connect () =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    set_nodelay fd;
    Unix.set_nonblock fd;
    (try Unix.connect fd (Unix.ADDR_INET (inet, port)) with
     | Unix.Unix_error (Unix.EINPROGRESS, _, _) -> ()
     | Unix.Unix_error _ as e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    st.conn <-
      Some
        (Sockbuf.attach loop fd ~on_frame ~on_close:(fun () ->
             st.conn <- None;
             fail_all "connection closed"))
  in
  (* Returns the live connection, connecting on demand; [fail] is
     invoked (and [None] returned) when no connection can be made. *)
  let ensure_conn fail =
    (match st.conn with
     | Some conn when Sockbuf.is_open conn -> ()
     | _ ->
       (match connect () with
        | () -> ()
        | exception Unix.Unix_error (err, _, _) ->
          fail (Unix.error_message err)));
    match st.conn with
    | Some conn -> Some conn
    | None -> None
  in
  let next_seq () =
    st.seq <- st.seq + 1;
    st.seq
  in
  let send_req xrl cb =
    let failed = ref false in
    match
      ensure_conn (fun msg ->
          failed := true;
          cb (Xrl_error.Send_failed msg) [])
    with
    | None ->
      if not !failed then cb (Xrl_error.Send_failed "not connected") []
    | Some conn ->
      let seq = next_seq () in
      Hashtbl.replace st.outstanding seq cb;
      count c_requests_tx;
      frame_out conn (Xrl_wire.Request { seq; xrl })
  in
  let send_batch items =
    let failed = ref false in
    match
      ensure_conn (fun msg ->
          failed := true;
          List.iter
            (fun (_, cb) -> cb (Xrl_error.Send_failed msg) [])
            items)
    with
    | None -> if not !failed then
        List.iter
          (fun (_, cb) -> cb (Xrl_error.Send_failed "not connected") [])
          items
    | Some conn ->
      let msgs =
        List.map
          (fun (xrl, cb) ->
             let seq = next_seq () in
             Hashtbl.replace st.outstanding seq cb;
             Xrl_wire.Request { seq; xrl })
          items
      in
      count_n c_requests_tx (List.length msgs);
      (match msgs with
       | [ one ] -> frame_out conn one
       | many ->
         count c_batches_tx;
         frame_out conn (Xrl_wire.Batch many))
  in
  let close_sender () =
    (match st.conn with
     | Some conn -> Sockbuf.close conn
     | None -> ());
    st.conn <- None;
    fail_all "sender closed"
  in
  { send_req; send_batch = Some send_batch; close_sender;
    family_of_sender = "stcp" }

let family : Pf.family = { family_name = "stcp"; make_listener; make_sender }
