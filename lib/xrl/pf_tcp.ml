let src = Logs.Src.create "xorp.pf_tcp" ~doc:"XRL TCP protocol family"

module Log = (val Logs.src_log src : Logs.LOG)

let set_nodelay fd =
  try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ()

let count_bytes name n =
  if Telemetry.is_enabled () then Telemetry.add (Telemetry.counter name) n

let count name =
  if Telemetry.is_enabled () then Telemetry.incr (Telemetry.counter name)

let require_real loop what =
  if Eventloop.mode loop <> `Real then
    invalid_arg (what ^ ": TCP protocol family needs a `Real event loop")

let parse_address address =
  match String.rindex_opt address ':' with
  | None -> invalid_arg ("Pf_tcp: bad address " ^ address)
  | Some i ->
    let host = String.sub address 0 i in
    let port = String.sub address (i + 1) (String.length address - i - 1) in
    (match Ipv4.of_string host, int_of_string_opt port with
     | Some _, Some port ->
       (Unix.inet_addr_of_string host, port)
     | _ -> invalid_arg ("Pf_tcp: bad address " ^ address))

(* --- Listener ------------------------------------------------------ *)

let make_listener loop (dispatch : Pf.dispatch) : Pf.listener =
  require_real loop "Pf_tcp.make_listener";
  let lfd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lfd Unix.SO_REUSEADDR true;
  Unix.bind lfd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen lfd 64;
  Unix.set_nonblock lfd;
  let port =
    match Unix.getsockname lfd with
    | Unix.ADDR_INET (_, port) -> port
    | _ -> assert false
  in
  let conns : Sockbuf.t list ref = ref [] in
  let serve_conn conn_ref frame =
    count_bytes "xrl.tcp.bytes_rx" (String.length frame);
    match Xrl_wire.decode frame with
    | Ok (Xrl_wire.Request { seq; xrl }) ->
      count "xrl.tcp.requests_rx";
      dispatch xrl (fun error args ->
          match !conn_ref with
          | Some conn when Sockbuf.is_open conn ->
            let reply = Xrl_wire.encode (Xrl_wire.Reply { seq; error; args }) in
            count_bytes "xrl.tcp.bytes_tx" (String.length reply);
            Sockbuf.send_frame conn reply
          | _ -> ())
    | Ok (Xrl_wire.Reply _) ->
      Log.warn (fun m -> m "listener got a stray reply; dropping")
    | Error msg -> Log.warn (fun m -> m "undecodable request: %s" msg)
  in
  let accept_ready () =
    let rec accept_all () =
      match Unix.accept lfd with
      | fd, _ ->
        set_nodelay fd;
        let conn_ref = ref None in
        let conn =
          Sockbuf.attach loop fd
            ~on_frame:(fun frame -> serve_conn conn_ref frame)
            ~on_close:(fun () ->
                conns :=
                  List.filter
                    (fun c ->
                       match !conn_ref with
                       | Some mine -> not (c == mine)
                       | None -> true)
                    !conns)
        in
        conn_ref := Some conn;
        conns := conn :: !conns;
        accept_all ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        -> ()
    in
    accept_all ()
  in
  Eventloop.add_reader loop lfd accept_ready;
  let shutdown () =
    Eventloop.remove_reader loop lfd;
    (try Unix.close lfd with Unix.Unix_error _ -> ());
    List.iter Sockbuf.close !conns;
    conns := []
  in
  { address = Printf.sprintf "127.0.0.1:%d" port; shutdown }

(* --- Sender -------------------------------------------------------- *)

type sender_state = {
  outstanding : (int, Xrl_error.t -> Xrl_atom.t list -> unit) Hashtbl.t;
  mutable seq : int;
  mutable conn : Sockbuf.t option;
}

let make_sender loop address : Pf.sender =
  require_real loop "Pf_tcp.make_sender";
  let inet, port = parse_address address in
  let st = { outstanding = Hashtbl.create 64; seq = 0; conn = None } in
  let fail_all reason =
    let cbs = Hashtbl.fold (fun _ cb acc -> cb :: acc) st.outstanding [] in
    Hashtbl.reset st.outstanding;
    List.iter (fun cb -> cb (Xrl_error.Send_failed reason) []) cbs
  in
  let on_frame frame =
    count_bytes "xrl.tcp.bytes_rx" (String.length frame);
    match Xrl_wire.decode frame with
    | Ok (Xrl_wire.Reply { seq; error; args }) ->
      (match Hashtbl.find_opt st.outstanding seq with
       | Some cb ->
         Hashtbl.remove st.outstanding seq;
         cb error args
       | None -> Log.warn (fun m -> m "reply for unknown seq %d" seq))
    | Ok (Xrl_wire.Request _) ->
      Log.warn (fun m -> m "sender got a request; dropping")
    | Error msg -> Log.warn (fun m -> m "undecodable reply: %s" msg)
  in
  let connect () =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    set_nodelay fd;
    Unix.set_nonblock fd;
    (try Unix.connect fd (Unix.ADDR_INET (inet, port)) with
     | Unix.Unix_error (Unix.EINPROGRESS, _, _) -> ()
     | Unix.Unix_error _ as e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    st.conn <-
      Some
        (Sockbuf.attach loop fd ~on_frame ~on_close:(fun () ->
             st.conn <- None;
             fail_all "connection closed"))
  in
  let send_req xrl cb =
    (match st.conn with
     | Some conn when Sockbuf.is_open conn -> ()
     | _ ->
       (match connect () with
        | () -> ()
        | exception Unix.Unix_error (err, _, _) ->
          cb (Xrl_error.Send_failed (Unix.error_message err)) [];
          raise Exit));
    match st.conn with
    | Some conn ->
      st.seq <- st.seq + 1;
      let seq = st.seq in
      Hashtbl.replace st.outstanding seq cb;
      let payload = Xrl_wire.encode (Xrl_wire.Request { seq; xrl }) in
      count "xrl.tcp.requests_tx";
      count_bytes "xrl.tcp.bytes_tx" (String.length payload);
      Sockbuf.send_frame conn payload
    | None -> cb (Xrl_error.Send_failed "not connected") []
  in
  let send_req xrl cb = try send_req xrl cb with Exit -> () in
  let close_sender () =
    (match st.conn with
     | Some conn -> Sockbuf.close conn
     | None -> ());
    st.conn <- None;
    fail_all "sender closed"
  in
  { send_req; close_sender; family_of_sender = "stcp" }

let family : Pf.family = { family_name = "stcp"; make_listener; make_sender }
