let src = Logs.Src.create "xorp.xrl_router" ~doc:"XRL router"

module Log = (val Logs.src_log src : Logs.LOG)

type handler =
  Xrl_atom.t list -> (Xrl_error.t -> Xrl_atom.t list -> unit) -> unit

type method_entry = { key : string; handler : handler }

type t = {
  loop : Eventloop.t;
  fndr : Finder.t;
  cls : string;
  families : Pf.family list;
  family_pref : string list;
  target : Finder.target;
  methods : (string, method_entry) Hashtbl.t; (* method_id -> entry *)
  listeners : Pf.listener list;
  senders : (string, Pf.sender) Hashtbl.t; (* family ^ "|" ^ address *)
  rcache : (string, Finder.resolved) Hashtbl.t; (* target ^ "|" ^ method_id *)
  mutable pending : int;
  mutable live : bool;
}

let default_pref = [ "x-intra"; "stcp"; "sudp" ]

let split_keyed_method name =
  match String.rindex_opt name '@' with
  | None -> (name, None)
  | Some i ->
    ( String.sub name 0 i,
      Some (String.sub name (i + 1) (String.length name - i - 1)) )

(* The trace context rides in a reserved argument (appended by [send]
   below). Peel it off before the handler — and before any IDL arg
   checking — sees the call, and make it the ambient context for the
   handler's duration so spans opened inside join the caller's trace. *)
let split_trace_arg args =
  let tname = Telemetry.Trace.trace_atom_name in
  match
    List.partition (fun (a : Xrl_atom.t) -> a.Xrl_atom.name = tname) args
  with
  | [ { Xrl_atom.value = Xrl_atom.Txt s; _ } ], rest ->
    (Telemetry.Trace.ctx_of_string s, rest)
  | _, rest -> (None, rest)

let dispatch_of t : Pf.dispatch =
  fun xrl reply ->
  let base, key = split_keyed_method xrl.Xrl.method_name in
  let mid = Printf.sprintf "%s/%s/%s" xrl.Xrl.interface xrl.Xrl.version base in
  match Hashtbl.find_opt t.methods mid with
  | None -> reply (Xrl_error.No_such_method mid) []
  | Some entry ->
    if key <> Some entry.key then
      reply
        (Xrl_error.No_such_method
           (mid ^ " (bad or missing dispatch key; resolve via the Finder)"))
        []
    else begin
      let trace_ctx, args = split_trace_arg xrl.Xrl.args in
      match
        Telemetry.Trace.with_ctx trace_ctx (fun () -> entry.handler args reply)
      with
      | () -> ()
      | exception Xrl_atom.Bad_args msg -> reply (Xrl_error.Bad_args msg) []
      | exception exn ->
        Log.err (fun m ->
            m "handler %s raised %s" mid (Printexc.to_string exn));
        reply (Xrl_error.Internal_error (Printexc.to_string exn)) []
    end

let create ?(families = [ Pf_intra.family ]) ?(family_pref = default_pref)
    fndr loop ~class_name ?(sole = false) () =
  let rec t =
    lazy
      (let listeners =
         List.map
           (fun (fam : Pf.family) ->
              fam.make_listener loop (fun xrl reply ->
                  dispatch_of (Lazy.force t) xrl reply))
           families
       in
       let addresses =
         List.map2
           (fun (fam : Pf.family) (l : Pf.listener) ->
              (fam.family_name, l.address))
           families listeners
       in
       let target =
         match Finder.register_target fndr ~class_name ~sole ~addresses () with
         | Ok target -> target
         | Error msg ->
           List.iter (fun (l : Pf.listener) -> l.shutdown ()) listeners;
           failwith ("Xrl_router.create: " ^ msg)
       in
       { loop; fndr; cls = class_name; families; family_pref; target;
         methods = Hashtbl.create 32; listeners;
         senders = Hashtbl.create 8; rcache = Hashtbl.create 64;
         pending = 0; live = true })
  in
  let t = Lazy.force t in
  (* Any registration change anywhere may invalidate cached
     resolutions; resolution is cheap, so we drop the whole cache. *)
  Finder.on_invalidate fndr (fun _cls -> Hashtbl.reset t.rcache);
  t

let add_handler t ~interface ?(version = "1.0") ~method_name handler =
  let mid = Printf.sprintf "%s/%s/%s" interface version method_name in
  let key = Finder.register_method t.fndr t.target ~method_id:mid in
  Hashtbl.replace t.methods mid { key; handler }

let sender_for t (resolved : Finder.resolved) =
  let skey = resolved.family ^ "|" ^ resolved.address in
  match Hashtbl.find_opt t.senders skey with
  | Some sender -> sender
  | None ->
    (match
       List.find_opt
         (fun (fam : Pf.family) -> fam.family_name = resolved.family)
         t.families
     with
     | None -> invalid_arg ("no such protocol family: " ^ resolved.family)
     | Some fam ->
       let sender = fam.make_sender t.loop resolved.address in
       Hashtbl.replace t.senders skey sender;
       sender)

let send t (xrl : Xrl.t) cb =
  if not t.live then cb (Xrl_error.Send_failed "router shut down") []
  else begin
    let resolved =
      if Xrl.is_resolved xrl then
        Ok
          { Finder.family = xrl.protocol; address = xrl.target;
            keyed_method = xrl.method_name }
      else begin
        let ckey = xrl.target ^ "|" ^ Xrl.method_id xrl in
        match Hashtbl.find_opt t.rcache ckey with
        | Some r -> Ok r
        | None ->
          (match
             Finder.resolve t.fndr ~family_pref:t.family_pref
               ~caller:(Finder.instance_name t.target) xrl
           with
           | Ok r ->
             Hashtbl.replace t.rcache ckey r;
             Ok r
           | Error e -> Error e)
      end
    in
    match resolved with
    | Error e -> cb e []
    | Ok r ->
      (* Propagate the ambient trace context on the wire, and keep it
         ambient in the reply callback: replies arrive asynchronously,
         so callers chaining further sends from their callbacks would
         otherwise fall out of the trace. *)
      let ctx = Telemetry.Trace.current () in
      let wire_args =
        if Telemetry.is_enabled () then
          match ctx with
          | Some c ->
            xrl.Xrl.args
            @ [ Xrl_atom.txt Telemetry.Trace.trace_atom_name
                  (Telemetry.Trace.ctx_to_string c) ]
          | None -> xrl.Xrl.args
        else xrl.Xrl.args
      in
      let wire_xrl =
        { xrl with Xrl.protocol = r.family; target = r.address;
                   method_name = r.keyed_method; args = wire_args }
      in
      (match sender_for t r with
       | sender ->
         t.pending <- t.pending + 1;
         let t0 =
           if Telemetry.is_enabled () then Unix.gettimeofday () else nan
         in
         sender.send_req wire_xrl (fun err args ->
             t.pending <- t.pending - 1;
             if not (Float.is_nan t0) then begin
               Telemetry.incr
                 (Telemetry.counter ("xrl." ^ r.family ^ ".calls"));
               Telemetry.observe
                 (Telemetry.histogram ("xrl." ^ r.family ^ ".rtt_us"))
                 ((Unix.gettimeofday () -. t0) *. 1e6)
             end;
             Telemetry.Trace.with_ctx ctx (fun () -> cb err args))
       | exception Invalid_argument msg -> cb (Xrl_error.Send_failed msg) [])
  end

let call_blocking t xrl =
  let result = ref None in
  send t xrl (fun err args -> result := Some (err, args));
  Eventloop.run ~until:(fun () -> !result <> None) t.loop;
  match !result with
  | Some r -> r
  | None -> (Xrl_error.Internal_error "event loop idle before reply", [])

let instance_name t = Finder.instance_name t.target
let class_name t = t.cls
let finder t = t.fndr
let eventloop t = t.loop
let pending_sends t = t.pending

let shutdown t =
  if t.live then begin
    t.live <- false;
    Finder.unregister_target t.fndr t.target;
    List.iter (fun (l : Pf.listener) -> l.shutdown ()) t.listeners;
    Hashtbl.iter (fun _ (s : Pf.sender) -> s.close_sender ()) t.senders;
    Hashtbl.reset t.senders;
    Hashtbl.reset t.rcache
  end
