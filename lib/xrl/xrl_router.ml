let src = Logs.Src.create "xorp.xrl_router" ~doc:"XRL router"

module Log = (val Logs.src_log src : Logs.LOG)

type handler =
  Xrl_atom.t list -> (Xrl_error.t -> Xrl_atom.t list -> unit) -> unit

type method_entry = { key : string; handler : handler }

(* Reliability counters (process-wide; resolved once at module load). *)
let c_retries = Telemetry.counter "xrl.retries"
let c_timeouts = Telemetry.counter "xrl.timeouts"
let c_late = Telemetry.counter "xrl.late_replies_dropped"
let count c = if Telemetry.is_enabled () then Telemetry.incr c

type retry = {
  max_attempts : int;
  base_delay : float;
  max_delay : float;
  jitter : float;
  attempt_timeout : float option;
}

let default_retry =
  { max_attempts = 4; base_delay = 0.05; max_delay = 2.0; jitter = 0.25;
    attempt_timeout = Some 2.0 }

(* Errors worth retrying: transport failures and resolution failures
   are transient across a component restart, and an attempt-level
   timeout means the request or its reply was lost in flight.
   No_such_method is transient for the same reason: a freshly
   registered instance exists at the Finder before it has advertised
   its methods, so a caller reacting to the birth notification can
   resolve into that window. Anything else (Command_failed, Bad_args,
   ...) is the peer's final word. *)
let retryable = function
  | Xrl_error.Send_failed _ | Xrl_error.Resolve_failed _
  | Xrl_error.No_such_method _ | Xrl_error.Timed_out _ -> true
  | _ -> false

(* One per (family, address) destination. Telemetry handles are
   resolved once here instead of per reply, and the batch queue
   collects sends made within one event-loop turn so transports that
   support it (TCP) can ship them as a single frame. *)
type sender_entry = {
  sender : Pf.sender;
  s_family : string;
  s_address : string;
  mutable dest_class : string; (* "" when only resolved XRLs used it *)
  calls : Telemetry.counter;
  rtt : Telemetry.Histogram.t;
  batchq : (Xrl.t * Pf.reply_cb) Queue.t;
  mutable flush_armed : bool;
}

type t = {
  loop : Eventloop.t;
  fndr : Finder.t;
  cls : string;
  families : Pf.family list;
  family_pref : string list;
  batching : bool;
  rng : Rng.t; (* backoff jitter; fixed seed keeps tests deterministic *)
  target : Finder.target;
  methods : (string, method_entry) Hashtbl.t; (* method_id -> entry *)
  listeners : Pf.listener list;
  senders : (string, sender_entry) Hashtbl.t; (* family ^ "|" ^ address *)
  rcache : (string, Finder.resolved) Hashtbl.t; (* target ^ "|" ^ method_id *)
  inflight : (int, Xrl_error.t -> unit) Hashtbl.t; (* call id -> fail *)
  watched : (string, unit) Hashtbl.t; (* classes with a death watch *)
  mutable next_call : int;
  mutable pending : int;
  mutable live : bool;
  mutable unhook : unit -> unit; (* removes our Finder invalidate hook *)
}

let default_pref = [ "x-intra"; "stcp"; "sudp" ]

(* Xrl_wire caps a batch's element count at a u16; stay well under it
   so a pathological turn still produces sane frame sizes. *)
let max_batch_chunk = 4096

let split_keyed_method name =
  match String.rindex_opt name '@' with
  | None -> (name, None)
  | Some i ->
    ( String.sub name 0 i,
      Some (String.sub name (i + 1) (String.length name - i - 1)) )

(* The trace context rides in a reserved argument (appended by [send]
   below). Peel it off before the handler — and before any IDL arg
   checking — sees the call, and make it the ambient context for the
   handler's duration so spans opened inside join the caller's trace.
   The common case (no trace arg) must not allocate: check with
   [List.exists] before partitioning. *)
let split_trace_arg args =
  let tname = Telemetry.Trace.trace_atom_name in
  if not (List.exists (fun (a : Xrl_atom.t) -> a.Xrl_atom.name = tname) args)
  then (None, args)
  else
    match
      List.partition (fun (a : Xrl_atom.t) -> a.Xrl_atom.name = tname) args
    with
    | [ { Xrl_atom.value = Xrl_atom.Txt s; _ } ], rest ->
      (Telemetry.Trace.ctx_of_string s, rest)
    | _, rest -> (None, rest)

let method_id_of ~interface ~version ~name =
  interface ^ "/" ^ version ^ "/" ^ name

let dispatch_of t : Pf.dispatch =
  fun xrl reply ->
  let base, key = split_keyed_method xrl.Xrl.method_name in
  let mid =
    method_id_of ~interface:xrl.Xrl.interface ~version:xrl.Xrl.version
      ~name:base
  in
  match Hashtbl.find_opt t.methods mid with
  | None -> reply (Xrl_error.No_such_method mid) []
  | Some entry ->
    if key <> Some entry.key then
      reply
        (Xrl_error.No_such_method
           (mid ^ " (bad or missing dispatch key; resolve via the Finder)"))
        []
    else begin
      let trace_ctx, args = split_trace_arg xrl.Xrl.args in
      match
        Telemetry.Trace.with_ctx trace_ctx (fun () -> entry.handler args reply)
      with
      | () -> ()
      | exception Xrl_atom.Bad_args msg -> reply (Xrl_error.Bad_args msg) []
      | exception exn ->
        Log.err (fun m ->
            m "handler %s raised %s" mid (Printexc.to_string exn));
        reply (Xrl_error.Internal_error (Printexc.to_string exn)) []
    end

(* Does resolution-cache key [ckey] (target ^ "|" ^ method_id) point at
   class [cls]? The target half is either a class name or an instance
   name [cls ^ "-" ^ digits]. *)
let ckey_targets_class ckey cls =
  let tlen =
    match String.index_opt ckey '|' with
    | Some i -> i
    | None -> String.length ckey
  in
  let clen = String.length cls in
  if tlen = clen then String.sub ckey 0 tlen = cls
  else if tlen > clen + 1 && ckey.[clen] = '-' then begin
    let rec digits i = i >= tlen || (ckey.[i] >= '0' && ckey.[i] <= '9' && digits (i + 1)) in
    String.sub ckey 0 clen = cls && digits (clen + 1)
  end
  else false

(* A target name is a component class or an instance name
   [cls ^ "-" ^ digits]; reduce either to the class. *)
let class_of_name name =
  let len = String.length name in
  match String.rindex_opt name '-' with
  | Some i when i > 0 && i < len - 1 ->
    let rec digits j =
      j >= len || (name.[j] >= '0' && name.[j] <= '9' && digits (j + 1))
    in
    if digits (i + 1) then String.sub name 0 i else name
  | _ -> name

let invalidate_class t cls =
  (* A registration change to our own class can change the key of any
     method we might call through ourselves; also, ACL changes arrive
     attributed to the restricted caller class. Cheapest safe answer
     for both: drop everything. For any other class, only its own
     cached resolutions can be stale. *)
  if cls = t.cls then Hashtbl.reset t.rcache
  else begin
    let stale =
      Hashtbl.fold
        (fun ckey _ acc ->
           if ckey_targets_class ckey cls then ckey :: acc else acc)
        t.rcache []
    in
    List.iter (Hashtbl.remove t.rcache) stale
  end

let create ?(families = [ Pf_intra.family ]) ?(family_pref = default_pref)
    ?(batching = true) fndr loop ~class_name ?(sole = false) () =
  let rec t =
    lazy
      (let listeners =
         List.map
           (fun (fam : Pf.family) ->
              fam.make_listener loop (fun xrl reply ->
                  dispatch_of (Lazy.force t) xrl reply))
           families
       in
       let addresses =
         List.map2
           (fun (fam : Pf.family) (l : Pf.listener) ->
              (fam.family_name, l.address))
           families listeners
       in
       let target =
         match Finder.register_target fndr ~class_name ~sole ~addresses () with
         | Ok target -> target
         | Error msg ->
           List.iter (fun (l : Pf.listener) -> l.shutdown ()) listeners;
           failwith ("Xrl_router.create: " ^ msg)
       in
       { loop; fndr; cls = class_name; families; family_pref; batching;
         rng = Rng.create 0xB0FF; target; methods = Hashtbl.create 32;
         listeners; senders = Hashtbl.create 8; rcache = Hashtbl.create 64;
         inflight = Hashtbl.create 32; watched = Hashtbl.create 4;
         next_call = 0; pending = 0; live = true; unhook = (fun () -> ()) })
  in
  let t = Lazy.force t in
  t.unhook <- Finder.on_invalidate fndr (fun cls -> invalidate_class t cls);
  t

let add_handler t ~interface ?(version = "1.0") ~method_name handler =
  let mid = method_id_of ~interface ~version ~name:method_name in
  let key = Finder.register_method t.fndr t.target ~method_id:mid in
  Hashtbl.replace t.methods mid { key; handler }

(* An instance of [cls] died: evict every sender whose transport
   address no longer belongs to a live instance of the class, failing
   its queued calls in FIFO order and its in-flight calls via the
   transport's close (ascending-seq order). Calls sent with a retry
   policy re-resolve from scratch and so find a restarted instance at
   its new address; calls without one fail promptly instead of waiting
   on a dead connection. *)
let handle_death t cls =
  let alive = Finder.live_addresses t.fndr cls in
  let stale =
    Hashtbl.fold
      (fun skey (e : sender_entry) acc ->
         if
           e.dest_class = cls
           && not
                (List.exists
                   (fun (f, a) -> f = e.s_family && a = e.s_address)
                   alive)
         then (skey, e) :: acc
         else acc)
      t.senders []
  in
  List.iter
    (fun (skey, (e : sender_entry)) ->
       Log.info (fun m ->
           m "peer %s died; evicting sender %s" cls e.s_address);
       Hashtbl.remove t.senders skey;
       Queue.iter
         (fun (_, cb) ->
            cb (Xrl_error.Send_failed ("peer " ^ cls ^ " died")) [])
         e.batchq;
       Queue.clear e.batchq;
       e.sender.Pf.close_sender ())
    stale

let sender_for t ?watch_cls (resolved : Finder.resolved) =
  let skey = resolved.family ^ "|" ^ resolved.address in
  match Hashtbl.find_opt t.senders skey with
  | Some entry ->
    (match watch_cls with
     | Some cls when entry.dest_class = "" -> entry.dest_class <- cls
     | _ -> ());
    entry
  | None ->
    (match
       List.find_opt
         (fun (fam : Pf.family) -> fam.family_name = resolved.family)
         t.families
     with
     | None -> invalid_arg ("no such protocol family: " ^ resolved.family)
     | Some fam ->
       let sender = fam.make_sender t.loop resolved.address in
       let entry =
         { sender; s_family = resolved.family; s_address = resolved.address;
           dest_class = Option.value watch_cls ~default:"";
           calls = Telemetry.counter ("xrl." ^ resolved.family ^ ".calls");
           rtt = Telemetry.histogram ("xrl." ^ resolved.family ^ ".rtt_us");
           batchq = Queue.create ();
           flush_armed = false }
       in
       Hashtbl.replace t.senders skey entry;
       (* First sender towards this class: subscribe to its lifetime
          notifications (§6.5) so a death cleans us up. The Finder has
          no unwatch, so the callback self-disables once the router is
          shut down. *)
       (match watch_cls with
        | Some cls when not (Hashtbl.mem t.watched cls) ->
          Hashtbl.replace t.watched cls ();
          Finder.watch_class t.fndr cls (fun ev _inst ->
              match ev with
              | Finder.Death when t.live -> handle_death t cls
              | Finder.Death | Finder.Birth -> ())
        | _ -> ());
       entry)

(* Ship everything queued for one destination. A single queued call
   goes out on the ordinary path (identical wire bytes to an unbatched
   sender); two or more become one batched frame, chunked to respect
   the wire format's element-count cap. FIFO order is the queue's. *)
let flush_entry t entry =
  entry.flush_armed <- false;
  if t.live then
    match entry.sender.Pf.send_batch with
    | None ->
      Queue.iter (fun (xrl, cb) -> entry.sender.Pf.send_req xrl cb)
        entry.batchq;
      Queue.clear entry.batchq
    | Some send_batch ->
      let rec drain () =
        match Queue.length entry.batchq with
        | 0 -> ()
        | 1 ->
          let xrl, cb = Queue.pop entry.batchq in
          entry.sender.Pf.send_req xrl cb
        | n ->
          let take = min n max_batch_chunk in
          let items =
            List.init take (fun _ -> Queue.pop entry.batchq)
          in
          send_batch items;
          drain ()
      in
      drain ()

let resolve_for_send t (xrl : Xrl.t) =
  if Xrl.is_resolved xrl then
    Ok
      { Finder.family = xrl.protocol; address = xrl.target;
        keyed_method = xrl.method_name }
  else begin
    let ckey = xrl.target ^ "|" ^ Xrl.method_id xrl in
    match Hashtbl.find_opt t.rcache ckey with
    | Some r -> Ok r
    | None ->
      (match
         Finder.resolve t.fndr ~family_pref:t.family_pref
           ~caller:(Finder.instance_name t.target) xrl
       with
       | Ok r ->
         Hashtbl.replace t.rcache ckey r;
         Ok r
       | Error e -> Error e)
  end

(* Backoff before attempt [n + 1]: exponential in the attempt number,
   capped, plus proportional jitter so a herd of failed calls does not
   retry in lock-step. *)
let backoff_delay t (r : retry) n =
  let d = r.base_delay *. (2. ** float_of_int (n - 1)) in
  let d = Float.min d r.max_delay in
  if r.jitter > 0. then d *. (1. +. (r.jitter *. Rng.float t.rng)) else d

let send ?deadline ?retry t (xrl : Xrl.t) cb =
  if not t.live then cb (Xrl_error.Send_failed "router shut down") []
  else begin
    (* Propagate the ambient trace context on the wire, and keep it
       ambient in the reply callback: replies arrive asynchronously,
       so callers chaining further sends from their callbacks would
       otherwise fall out of the trace. *)
    let ctx = Telemetry.Trace.current () in
    t.next_call <- t.next_call + 1;
    let id = t.next_call in
    t.pending <- t.pending + 1;
    (* The call settles exactly once, no matter how replies, timers,
       shutdown sweeps, and chaotic transports race: the first
       settlement wins, every later one is counted and dropped. *)
    let settled = ref false in
    let failed = ref 0 (* highest attempt already abandoned *) in
    let deadline_timer = ref None in
    let attempt_timer = ref None in
    let cancel_opt r =
      match !r with
      | Some tm ->
        Eventloop.cancel tm;
        r := None
      | None -> ()
    in
    let settle err args =
      if !settled then count c_late
      else begin
        settled := true;
        t.pending <- t.pending - 1;
        Hashtbl.remove t.inflight id;
        cancel_opt deadline_timer;
        cancel_opt attempt_timer;
        Telemetry.Trace.with_ctx ctx (fun () -> cb err args)
      end
    in
    Hashtbl.replace t.inflight id (fun err -> settle err []);
    (match deadline with
     | Some d ->
       deadline_timer :=
         Some
           (Eventloop.after t.loop d (fun () ->
                deadline_timer := None;
                if not !settled then begin
                  count c_timeouts;
                  settle
                    (Xrl_error.Timed_out
                       (Printf.sprintf "%s: no reply within %gs"
                          (Xrl.method_id xrl) d))
                    []
                end))
     | None -> ());
    let rec attempt n =
      if !settled then ()
      else if not t.live then settle (Xrl_error.Send_failed "router shut down") []
      else begin
        (match retry with
         | Some { attempt_timeout = Some at; _ } ->
           cancel_opt attempt_timer;
           attempt_timer :=
             Some
               (Eventloop.after t.loop at (fun () ->
                    attempt_timer := None;
                    if (not !settled) && !failed < n then begin
                      count c_timeouts;
                      fail_attempt n
                        (Xrl_error.Timed_out
                           (Printf.sprintf "%s: attempt %d: no reply within %gs"
                              (Xrl.method_id xrl) n at))
                    end))
         | _ -> ());
        match resolve_for_send t xrl with
        | Error e -> fail_attempt n e
        | Ok r ->
          let wire_args =
            if Telemetry.is_enabled () then
              match ctx with
              | Some c ->
                xrl.Xrl.args
                @ [ Xrl_atom.txt Telemetry.Trace.trace_atom_name
                      (Telemetry.Trace.ctx_to_string c) ]
              | None -> xrl.Xrl.args
            else xrl.Xrl.args
          in
          let wire_xrl =
            { xrl with Xrl.protocol = r.family; target = r.address;
                       method_name = r.keyed_method; args = wire_args }
          in
          let watch_cls =
            if Xrl.is_resolved xrl then None
            else Some (class_of_name xrl.Xrl.target)
          in
          (match sender_for t ?watch_cls r with
           | entry ->
             let t0 =
               if Telemetry.is_enabled () then Unix.gettimeofday () else nan
             in
             let on_reply err args =
               if !settled || !failed >= n then count c_late
               else begin
                 if not (Float.is_nan t0) then begin
                   Telemetry.incr entry.calls;
                   Telemetry.observe entry.rtt
                     ((Unix.gettimeofday () -. t0) *. 1e6)
                 end;
                 if Xrl_error.is_ok err || not (retryable err) then
                   settle err args
                 else fail_attempt n err
               end
             in
             if t.batching && entry.sender.Pf.send_batch <> None then begin
               (* Coalesce: everything queued for this destination within
                  the current event-loop turn leaves as one frame. *)
               Queue.push (wire_xrl, on_reply) entry.batchq;
               if not entry.flush_armed then begin
                 entry.flush_armed <- true;
                 Eventloop.defer t.loop (fun () -> flush_entry t entry)
               end
             end
             else entry.sender.Pf.send_req wire_xrl on_reply
           | exception Invalid_argument msg ->
             fail_attempt n (Xrl_error.Send_failed msg))
      end
    and fail_attempt n err =
      (* Abandon attempt [n]: either schedule the next attempt or
         settle with the error. Guarded so a late reply and an attempt
         timer racing on the same attempt cannot both schedule a
         retry. *)
      if !settled || !failed >= n then ()
      else begin
        failed := n;
        cancel_opt attempt_timer;
        match retry with
        | Some r when t.live && n < r.max_attempts && retryable err ->
          count c_retries;
          (* A transport failure can mean the cached resolution is
             stale (the peer restarted elsewhere); re-resolve. *)
          if not (Xrl.is_resolved xrl) then
            Hashtbl.remove t.rcache (xrl.Xrl.target ^ "|" ^ Xrl.method_id xrl);
          ignore
            (Eventloop.after t.loop (backoff_delay t r n) (fun () ->
                 attempt (n + 1)))
        | _ -> settle err []
      end
    in
    attempt 1
  end

let call_blocking ?(deadline = 30.0) ?retry t xrl =
  let result = ref None in
  send ~deadline ?retry t xrl (fun err args -> result := Some (err, args));
  Eventloop.run ~until:(fun () -> !result <> None) t.loop;
  match !result with
  | Some r -> r
  | None -> (Xrl_error.Internal_error "event loop idle before reply", [])

let instance_name t = Finder.instance_name t.target

let registered_methods t =
  Hashtbl.fold (fun mid _ acc -> mid :: acc) t.methods []
  |> List.sort compare
let class_name t = t.cls
let finder t = t.fndr
let eventloop t = t.loop
let pending_sends t = t.pending

let shutdown t =
  if t.live then begin
    t.live <- false;
    (* Remove our invalidation hook first: past this point the Finder
       must not keep the dead router — or its caches — alive. *)
    t.unhook ();
    t.unhook <- (fun () -> ());
    Finder.unregister_target t.fndr t.target;
    List.iter (fun (l : Pf.listener) -> l.shutdown ()) t.listeners;
    Hashtbl.iter
      (fun _ (e : sender_entry) ->
         (* Queued-but-unflushed sends get an explicit failure in FIFO
            order; their deferred flush will find [live = false] and do
            nothing. *)
         Queue.iter
           (fun (_, cb) -> cb (Xrl_error.Send_failed "router shut down") [])
           e.batchq;
         Queue.clear e.batchq;
         e.sender.Pf.close_sender ())
      t.senders;
    Hashtbl.reset t.senders;
    Hashtbl.reset t.rcache;
    (* Sweep whatever is still unsettled — calls waiting out a retry
       backoff, calls whose transport never reported — in send order.
       Settlement is idempotent, so anything the transports already
       failed above is skipped. After this, [pending_sends] is 0. *)
    let ids = Hashtbl.fold (fun id _ acc -> id :: acc) t.inflight [] in
    List.iter
      (fun id ->
         match Hashtbl.find_opt t.inflight id with
         | Some fail -> fail (Xrl_error.Send_failed "router shut down")
         | None -> ())
      (List.sort compare ids)
  end
