let src = Logs.Src.create "xorp.xrl_router" ~doc:"XRL router"

module Log = (val Logs.src_log src : Logs.LOG)

type handler =
  Xrl_atom.t list -> (Xrl_error.t -> Xrl_atom.t list -> unit) -> unit

type method_entry = { key : string; handler : handler }

(* One per (family, address) destination. Telemetry handles are
   resolved once here instead of per reply, and the batch queue
   collects sends made within one event-loop turn so transports that
   support it (TCP) can ship them as a single frame. *)
type sender_entry = {
  sender : Pf.sender;
  calls : Telemetry.counter;
  rtt : Telemetry.Histogram.t;
  batchq : (Xrl.t * Pf.reply_cb) Queue.t;
  mutable flush_armed : bool;
}

type t = {
  loop : Eventloop.t;
  fndr : Finder.t;
  cls : string;
  families : Pf.family list;
  family_pref : string list;
  batching : bool;
  target : Finder.target;
  methods : (string, method_entry) Hashtbl.t; (* method_id -> entry *)
  listeners : Pf.listener list;
  senders : (string, sender_entry) Hashtbl.t; (* family ^ "|" ^ address *)
  rcache : (string, Finder.resolved) Hashtbl.t; (* target ^ "|" ^ method_id *)
  mutable pending : int;
  mutable live : bool;
}

let default_pref = [ "x-intra"; "stcp"; "sudp" ]

(* Xrl_wire caps a batch's element count at a u16; stay well under it
   so a pathological turn still produces sane frame sizes. *)
let max_batch_chunk = 4096

let split_keyed_method name =
  match String.rindex_opt name '@' with
  | None -> (name, None)
  | Some i ->
    ( String.sub name 0 i,
      Some (String.sub name (i + 1) (String.length name - i - 1)) )

(* The trace context rides in a reserved argument (appended by [send]
   below). Peel it off before the handler — and before any IDL arg
   checking — sees the call, and make it the ambient context for the
   handler's duration so spans opened inside join the caller's trace.
   The common case (no trace arg) must not allocate: check with
   [List.exists] before partitioning. *)
let split_trace_arg args =
  let tname = Telemetry.Trace.trace_atom_name in
  if not (List.exists (fun (a : Xrl_atom.t) -> a.Xrl_atom.name = tname) args)
  then (None, args)
  else
    match
      List.partition (fun (a : Xrl_atom.t) -> a.Xrl_atom.name = tname) args
    with
    | [ { Xrl_atom.value = Xrl_atom.Txt s; _ } ], rest ->
      (Telemetry.Trace.ctx_of_string s, rest)
    | _, rest -> (None, rest)

let method_id_of ~interface ~version ~name =
  interface ^ "/" ^ version ^ "/" ^ name

let dispatch_of t : Pf.dispatch =
  fun xrl reply ->
  let base, key = split_keyed_method xrl.Xrl.method_name in
  let mid =
    method_id_of ~interface:xrl.Xrl.interface ~version:xrl.Xrl.version
      ~name:base
  in
  match Hashtbl.find_opt t.methods mid with
  | None -> reply (Xrl_error.No_such_method mid) []
  | Some entry ->
    if key <> Some entry.key then
      reply
        (Xrl_error.No_such_method
           (mid ^ " (bad or missing dispatch key; resolve via the Finder)"))
        []
    else begin
      let trace_ctx, args = split_trace_arg xrl.Xrl.args in
      match
        Telemetry.Trace.with_ctx trace_ctx (fun () -> entry.handler args reply)
      with
      | () -> ()
      | exception Xrl_atom.Bad_args msg -> reply (Xrl_error.Bad_args msg) []
      | exception exn ->
        Log.err (fun m ->
            m "handler %s raised %s" mid (Printexc.to_string exn));
        reply (Xrl_error.Internal_error (Printexc.to_string exn)) []
    end

(* Does resolution-cache key [ckey] (target ^ "|" ^ method_id) point at
   class [cls]? The target half is either a class name or an instance
   name [cls ^ "-" ^ digits]. *)
let ckey_targets_class ckey cls =
  let tlen =
    match String.index_opt ckey '|' with
    | Some i -> i
    | None -> String.length ckey
  in
  let clen = String.length cls in
  if tlen = clen then String.sub ckey 0 tlen = cls
  else if tlen > clen + 1 && ckey.[clen] = '-' then begin
    let rec digits i = i >= tlen || (ckey.[i] >= '0' && ckey.[i] <= '9' && digits (i + 1)) in
    String.sub ckey 0 clen = cls && digits (clen + 1)
  end
  else false

let invalidate_class t cls =
  (* A registration change to our own class can change the key of any
     method we might call through ourselves; also, ACL changes arrive
     attributed to the restricted caller class. Cheapest safe answer
     for both: drop everything. For any other class, only its own
     cached resolutions can be stale. *)
  if cls = t.cls then Hashtbl.reset t.rcache
  else begin
    let stale =
      Hashtbl.fold
        (fun ckey _ acc ->
           if ckey_targets_class ckey cls then ckey :: acc else acc)
        t.rcache []
    in
    List.iter (Hashtbl.remove t.rcache) stale
  end

let create ?(families = [ Pf_intra.family ]) ?(family_pref = default_pref)
    ?(batching = true) fndr loop ~class_name ?(sole = false) () =
  let rec t =
    lazy
      (let listeners =
         List.map
           (fun (fam : Pf.family) ->
              fam.make_listener loop (fun xrl reply ->
                  dispatch_of (Lazy.force t) xrl reply))
           families
       in
       let addresses =
         List.map2
           (fun (fam : Pf.family) (l : Pf.listener) ->
              (fam.family_name, l.address))
           families listeners
       in
       let target =
         match Finder.register_target fndr ~class_name ~sole ~addresses () with
         | Ok target -> target
         | Error msg ->
           List.iter (fun (l : Pf.listener) -> l.shutdown ()) listeners;
           failwith ("Xrl_router.create: " ^ msg)
       in
       { loop; fndr; cls = class_name; families; family_pref; batching;
         target; methods = Hashtbl.create 32; listeners;
         senders = Hashtbl.create 8; rcache = Hashtbl.create 64;
         pending = 0; live = true })
  in
  let t = Lazy.force t in
  Finder.on_invalidate fndr (fun cls -> invalidate_class t cls);
  t

let add_handler t ~interface ?(version = "1.0") ~method_name handler =
  let mid = method_id_of ~interface ~version ~name:method_name in
  let key = Finder.register_method t.fndr t.target ~method_id:mid in
  Hashtbl.replace t.methods mid { key; handler }

let sender_for t (resolved : Finder.resolved) =
  let skey = resolved.family ^ "|" ^ resolved.address in
  match Hashtbl.find_opt t.senders skey with
  | Some entry -> entry
  | None ->
    (match
       List.find_opt
         (fun (fam : Pf.family) -> fam.family_name = resolved.family)
         t.families
     with
     | None -> invalid_arg ("no such protocol family: " ^ resolved.family)
     | Some fam ->
       let sender = fam.make_sender t.loop resolved.address in
       let entry =
         { sender;
           calls = Telemetry.counter ("xrl." ^ resolved.family ^ ".calls");
           rtt = Telemetry.histogram ("xrl." ^ resolved.family ^ ".rtt_us");
           batchq = Queue.create ();
           flush_armed = false }
       in
       Hashtbl.replace t.senders skey entry;
       entry)

(* Ship everything queued for one destination. A single queued call
   goes out on the ordinary path (identical wire bytes to an unbatched
   sender); two or more become one batched frame, chunked to respect
   the wire format's element-count cap. FIFO order is the queue's. *)
let flush_entry t entry =
  entry.flush_armed <- false;
  if t.live then
    match entry.sender.Pf.send_batch with
    | None ->
      Queue.iter (fun (xrl, cb) -> entry.sender.Pf.send_req xrl cb)
        entry.batchq;
      Queue.clear entry.batchq
    | Some send_batch ->
      let rec drain () =
        match Queue.length entry.batchq with
        | 0 -> ()
        | 1 ->
          let xrl, cb = Queue.pop entry.batchq in
          entry.sender.Pf.send_req xrl cb
        | n ->
          let take = min n max_batch_chunk in
          let items =
            List.init take (fun _ -> Queue.pop entry.batchq)
          in
          send_batch items;
          drain ()
      in
      drain ()

let send t (xrl : Xrl.t) cb =
  if not t.live then cb (Xrl_error.Send_failed "router shut down") []
  else begin
    let resolved =
      if Xrl.is_resolved xrl then
        Ok
          { Finder.family = xrl.protocol; address = xrl.target;
            keyed_method = xrl.method_name }
      else begin
        let ckey = xrl.target ^ "|" ^ Xrl.method_id xrl in
        match Hashtbl.find_opt t.rcache ckey with
        | Some r -> Ok r
        | None ->
          (match
             Finder.resolve t.fndr ~family_pref:t.family_pref
               ~caller:(Finder.instance_name t.target) xrl
           with
           | Ok r ->
             Hashtbl.replace t.rcache ckey r;
             Ok r
           | Error e -> Error e)
      end
    in
    match resolved with
    | Error e -> cb e []
    | Ok r ->
      (* Propagate the ambient trace context on the wire, and keep it
         ambient in the reply callback: replies arrive asynchronously,
         so callers chaining further sends from their callbacks would
         otherwise fall out of the trace. *)
      let ctx = Telemetry.Trace.current () in
      let wire_args =
        if Telemetry.is_enabled () then
          match ctx with
          | Some c ->
            xrl.Xrl.args
            @ [ Xrl_atom.txt Telemetry.Trace.trace_atom_name
                  (Telemetry.Trace.ctx_to_string c) ]
          | None -> xrl.Xrl.args
        else xrl.Xrl.args
      in
      let wire_xrl =
        { xrl with Xrl.protocol = r.family; target = r.address;
                   method_name = r.keyed_method; args = wire_args }
      in
      (match sender_for t r with
       | entry ->
         t.pending <- t.pending + 1;
         let t0 =
           if Telemetry.is_enabled () then Unix.gettimeofday () else nan
         in
         let wrapped err args =
           t.pending <- t.pending - 1;
           if not (Float.is_nan t0) then begin
             Telemetry.incr entry.calls;
             Telemetry.observe entry.rtt
               ((Unix.gettimeofday () -. t0) *. 1e6)
           end;
           Telemetry.Trace.with_ctx ctx (fun () -> cb err args)
         in
         if t.batching && entry.sender.Pf.send_batch <> None then begin
           (* Coalesce: everything queued for this destination within
              the current event-loop turn leaves as one frame. *)
           Queue.push (wire_xrl, wrapped) entry.batchq;
           if not entry.flush_armed then begin
             entry.flush_armed <- true;
             Eventloop.defer t.loop (fun () -> flush_entry t entry)
           end
         end
         else entry.sender.Pf.send_req wire_xrl wrapped
       | exception Invalid_argument msg -> cb (Xrl_error.Send_failed msg) [])
  end

let call_blocking t xrl =
  let result = ref None in
  send t xrl (fun err args -> result := Some (err, args));
  Eventloop.run ~until:(fun () -> !result <> None) t.loop;
  match !result with
  | Some r -> r
  | None -> (Xrl_error.Internal_error "event loop idle before reply", [])

let instance_name t = Finder.instance_name t.target
let class_name t = t.cls
let finder t = t.fndr
let eventloop t = t.loop
let pending_sends t = t.pending

let shutdown t =
  if t.live then begin
    t.live <- false;
    Finder.unregister_target t.fndr t.target;
    List.iter (fun (l : Pf.listener) -> l.shutdown ()) t.listeners;
    Hashtbl.iter
      (fun _ (e : sender_entry) ->
         (* Queued-but-unflushed sends get an explicit failure; their
            deferred flush will find [live = false] and do nothing. *)
         Queue.iter
           (fun (_, cb) -> cb (Xrl_error.Send_failed "router shut down") [])
           e.batchq;
         Queue.clear e.batchq;
         e.sender.Pf.close_sender ())
      t.senders;
    Hashtbl.reset t.senders;
    Hashtbl.reset t.rcache
  end
