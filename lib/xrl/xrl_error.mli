(** XRL dispatch outcomes. *)

type t =
  | Ok_xrl                       (** Dispatch succeeded. *)
  | Resolve_failed of string     (** The Finder knows no such target. *)
  | No_such_method of string     (** Target exists, method does not. *)
  | Bad_args of string           (** Argument name/type mismatch. *)
  | Command_failed of string     (** Handler-reported failure. *)
  | Send_failed of string        (** Transport-level failure. *)
  | Reply_timed_out of string
  | Internal_error of string
  | Timed_out of string
      (** The caller-side deadline expired before a reply arrived
          ({!Xrl_router.send}'s [?deadline]); any late reply is
          dropped. *)

val is_ok : t -> bool
(** True only for {!Ok_xrl}. *)

val to_string : t -> string
(** ["OK"], or ["<variant>: <note>"]. *)

val code : t -> int
(** Stable numeric code used on the wire. *)

val of_code : int -> string -> t
(** Reconstruct from wire code + note; unknown codes map to
    {!Internal_error}. *)

val pp : Format.formatter -> t -> unit
(** Formats {!to_string}. *)
