(** UDP protocol family ("sudp"): XRLs over real loopback UDP sockets.

    Faithful to the paper's first XRL prototype (§8.1): requests are
    {e not} pipelined — a sender keeps exactly one request outstanding
    and queues the rest, which is why UDP performs markedly worse in
    Figure 9 despite doing the same marshaling work as TCP. Kept for
    exactly that comparison.

    Requires a [`Real]-mode event loop. *)

val family : Pf.family
(** The ["sudp"] family. *)

val request_timeout : float
(** Seconds before an unanswered request fails with
    [Reply_timed_out]. *)
