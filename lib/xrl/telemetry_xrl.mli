(** The [telemetry/0.1] XRL service: exposes the process-wide
    {!Telemetry.global} registry over IPC, so external observers
    ([xorp_top], [xorpsh], [call_xrl]) read metrics the same way every
    other component interaction happens — through the Finder.

    Methods:
    - [list]: all metric names, as a list of txt atoms
      ["<name>|<kind>"];
    - [get?name]: one metric's current value — counters and gauges as
      a [value] txt atom, histograms as [count]/[sum]/[max]/p50/p90/p99
      (floats are txt atoms: XRLs have no float type);
    - [spans]: the recorded trace spans, one txt atom
      ["trace|span|parent|name|start|stop|note"] each (parent empty
      for a root span);
    - [snapshot]: everything as one JSON document;
    - [reset]: zero all metrics and drop recorded spans. *)

val span_to_string : Telemetry.Trace.span -> string
(** One span in the [spans] wire encoding:
    ["trace|span|parent|name|start|stop|note"]. ['|'] is the field
    separator, so names and notes have any ['|'] replaced by ['/']. *)

val span_of_string : string -> Telemetry.Trace.span option
(** Inverse of {!span_to_string}; [None] on a malformed record. This
    is what pollers ([xorp_top], tests) use. *)

val add_handlers : Xrl_router.t -> unit
(** Register the [telemetry/0.1] methods on an existing router. *)

val expose : Finder.t -> Eventloop.t -> Xrl_router.t
(** Create a dedicated sole router of class ["telemetry"] serving the
    interface (the [Finder_xrl.expose] pattern). Shut it down with
    [Xrl_router.shutdown]. *)
