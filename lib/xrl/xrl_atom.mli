(** XRL atoms: the typed arguments of XRL calls (paper §6.1).

    Arguments are restricted to a small set of core types used
    throughout the system: network addresses, numbers, strings,
    booleans, binary arrays, and lists of these primitives.

    The canonical textual form of an atom is [name:type=value] with
    URL-style percent-escaping of reserved characters in values. Lists
    render their elements comma-separated; nested lists are supported
    by the binary wire form ({!Xrl_wire}) but not by the textual form. *)

type value =
  | U32 of int        (** masked to 32 bits *)
  | I32 of int
  | U64 of int64
  | Txt of string
  | Bool of bool
  | Ipv4_v of Ipv4.t
  | Ipv4net_v of Ipv4net.t
  | Binary of string
  | List of value list

type t = { name : string; value : value }

val make : string -> value -> t
(** @raise Invalid_argument if [name] is empty or contains a reserved
    character ([:=&?,/%]). *)

(** Convenience constructors. *)

val u32 : string -> int -> t
val i32 : string -> int -> t
val u64 : string -> int64 -> t
val txt : string -> string -> t
val boolean : string -> bool -> t
val ipv4 : string -> Ipv4.t -> t
val ipv4net : string -> Ipv4net.t -> t
val binary : string -> string -> t
val list : string -> value list -> t

val type_name : value -> string
(** ["u32"], ["txt"], ["ipv4net"], ... as used in the textual form. *)

val same_type : value -> value -> bool
(** Structural type equality (list element types are not compared —
    lists are heterogeneous at the wire level). *)

val to_text : t -> string
(** Canonical [name:type=value] form. *)

val of_text : string -> (t, string) result
(** Parse the canonical form; [Error] explains the failure. *)

val value_to_string : value -> string
(** Unescaped human-readable value (no name/type prefix). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** Typed projections, raising {!Bad_args} on type mismatch — used by
    XRL method handlers to destructure their arguments. *)

exception Bad_args of string

val get_u32 : t list -> string -> int
val get_i32 : t list -> string -> int
val get_u64 : t list -> string -> int64
val get_txt : t list -> string -> string
val get_bool : t list -> string -> bool
val get_ipv4 : t list -> string -> Ipv4.t
val get_ipv4net : t list -> string -> Ipv4net.t
val get_binary : t list -> string -> string
val get_list : t list -> string -> value list
val find : t list -> string -> t option
