(** XRL atoms: the typed arguments of XRL calls (paper §6.1).

    Arguments are restricted to a small set of core types used
    throughout the system: network addresses, numbers, strings,
    booleans, binary arrays, and lists of these primitives.

    The canonical textual form of an atom is [name:type=value] with
    URL-style percent-escaping of reserved characters in values. Lists
    render their elements comma-separated; nested lists are supported
    by the binary wire form ({!Xrl_wire}) but not by the textual form. *)

type value =
  | U32 of int        (** masked to 32 bits *)
  | I32 of int
  | U64 of int64
  | Txt of string
  | Bool of bool
  | Ipv4_v of Ipv4.t
  | Ipv4net_v of Ipv4net.t
  | Binary of string
  | List of value list

type t = { name : string; value : value }

val make : string -> value -> t
(** @raise Invalid_argument if [name] is empty or contains a reserved
    character ([:=&?,/%]). *)

(** {2 Convenience constructors}

    Each is [make name (Ctor v)] for the corresponding {!value} case,
    so all raise [Invalid_argument] on a reserved-character name. *)

val u32 : string -> int -> t
(** A {!U32} atom; the value is masked to 32 bits. *)

val i32 : string -> int -> t
(** An {!I32} atom. *)

val u64 : string -> int64 -> t
(** A {!U64} atom. *)

val txt : string -> string -> t
(** A {!Txt} atom. *)

val boolean : string -> bool -> t
(** A {!Bool} atom ([bool] would shadow the stdlib type name). *)

val ipv4 : string -> Ipv4.t -> t
(** An {!Ipv4_v} atom. *)

val ipv4net : string -> Ipv4net.t -> t
(** An {!Ipv4net_v} atom. *)

val binary : string -> string -> t
(** A {!Binary} atom; the payload is opaque bytes. *)

val list : string -> value list -> t
(** A {!List} atom. *)

val type_name : value -> string
(** ["u32"], ["txt"], ["ipv4net"], ... as used in the textual form. *)

val same_type : value -> value -> bool
(** Structural type equality (list element types are not compared —
    lists are heterogeneous at the wire level). *)

val to_text : t -> string
(** Canonical [name:type=value] form. *)

val of_text : string -> (t, string) result
(** Parse the canonical form; [Error] explains the failure. *)

val value_to_string : value -> string
(** Unescaped human-readable value (no name/type prefix). *)

val equal : t -> t -> bool
(** Structural equality of name and value. *)

val pp : Format.formatter -> t -> unit
(** Formats {!to_text}. *)

(** {2 Typed projections}

    [get_<ty> args name] returns the value of the atom named [name],
    raising {!Bad_args} when it is absent or not a [<ty>] — used by
    XRL method handlers to destructure their arguments (the router
    converts the exception into a [Bad_args] error reply). *)

exception Bad_args of string
(** Raised by the [get_*] projections; the payload names the missing
    or mistyped argument. *)

val get_u32 : t list -> string -> int
(** The named {!U32}. *)

val get_i32 : t list -> string -> int
(** The named {!I32}. *)

val get_u64 : t list -> string -> int64
(** The named {!U64}. *)

val get_txt : t list -> string -> string
(** The named {!Txt}. *)

val get_bool : t list -> string -> bool
(** The named {!Bool}. *)

val get_ipv4 : t list -> string -> Ipv4.t
(** The named {!Ipv4_v}. *)

val get_ipv4net : t list -> string -> Ipv4net.t
(** The named {!Ipv4net_v}. *)

val get_binary : t list -> string -> string
(** The named {!Binary}. *)

val get_list : t list -> string -> value list
(** The named {!List}'s elements. *)

val find : t list -> string -> t option
(** The named atom if present, untyped — for optional arguments. *)
