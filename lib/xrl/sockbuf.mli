(** Non-blocking framed stream connection bound to an event loop.

    Frames are 4-byte big-endian length followed by the payload. Used
    by the TCP protocol family on both the listening and sending side.
    Requires a [`Real]-mode event loop (it registers file-descriptor
    callbacks). *)

type t

val attach :
  Eventloop.t -> Unix.file_descr ->
  on_frame:(string -> unit) -> on_close:(unit -> unit) -> t
(** Takes ownership of the descriptor (sets it non-blocking, closes it
    on [close]). [on_close] fires on remote close or error, not on a
    local {!close}. *)

val send_frame : t -> string -> unit
(** Queue a frame; writes are flushed opportunistically and the rest
    drains via writability callbacks. Silently dropped when closed. *)

val send_frame_into : t -> (Wire.W.t -> unit) -> int
(** [send_frame_into t encode] reserves the 4-byte length header,
    runs [encode] against the output writer, and patches the header in
    place — the frame is built in one buffer with no intermediate
    payload string or concatenation. Returns the payload length queued
    (telemetry); dropped with return [0] when closed. *)

val close : t -> unit
(** Idempotent; deregisters callbacks and closes the descriptor. *)

val is_open : t -> bool
(** False after {!close} or a remote close/error. *)

val pending_bytes : t -> int
(** Bytes queued but not yet written (tests / flow control). *)
