let expose finder loop =
  let router =
    Xrl_router.create finder loop ~class_name:"finder" ~sole:true ()
  in
  let ok = Xrl_error.Ok_xrl in
  Xrl_router.add_handler router ~interface:"finder" ~method_name:"resolve"
    (fun args reply ->
       let text = Xrl_atom.get_txt args "xrl" in
       match Xrl.of_text text with
       | Error e -> reply (Xrl_error.Bad_args ("malformed xrl: " ^ e)) []
       | Ok xrl ->
         (match Finder.resolve finder xrl with
          | Ok r ->
            reply ok
              [ Xrl_atom.txt "family" r.Finder.family;
                Xrl_atom.txt "address" r.Finder.address;
                Xrl_atom.txt "keyed_method" r.Finder.keyed_method ]
          | Error e -> reply e []));
  Xrl_router.add_handler router ~interface:"finder"
    ~method_name:"live_instances" (fun args reply ->
        let cls = Xrl_atom.get_txt args "class" in
        let instances =
          List.map (fun i -> Xrl_atom.Txt i) (Finder.live_instances finder cls)
        in
        reply ok [ Xrl_atom.list "instances" instances ]);
  Xrl_router.add_handler router ~interface:"finder"
    ~method_name:"resolve_count" (fun _ reply ->
        reply ok [ Xrl_atom.u32 "count" (Finder.resolve_count finder) ]);
  router
