(** XORP Resource Locators (paper §6.1).

    An XRL names a method on a component and carries typed arguments.
    Its canonical form is textual and URL-like:

    {v finder://bgp/bgp/1.0/set_local_as?as:u32=1777 v}

    A {e generic} XRL addresses a component class (["bgp"]) through the
    ["finder"] pseudo-protocol. The Finder resolves it to a {e resolved}
    XRL naming a concrete transport and instance:

    {v stcp://127.0.0.1:16878/bgp/1.0/set_local_as@3A09.../?as:u32=1777 v}

    (the [@key] suffix is the per-method random key of §7). *)

type t = {
  protocol : string;  (** ["finder"] for generic XRLs, else a protocol
                          family name such as ["stcp"]. *)
  target : string;    (** Component class (generic) or transport address
                          (resolved). *)
  interface : string;
  version : string;
  method_name : string;
  args : Xrl_atom.t list;
}

val make :
  ?protocol:string -> target:string -> interface:string -> ?version:string ->
  method_name:string -> Xrl_atom.t list -> t
(** Generic XRL by default: [protocol] defaults to ["finder"],
    [version] to ["1.0"].
    @raise Invalid_argument on empty or reserved-character fields. *)

val to_text : t -> string
(** Canonical textual form (scriptable; parseable by {!of_text}). *)

val of_text : string -> (t, string) result
(** Parse the canonical textual form; [Error] explains the failure. *)

val method_id : t -> string
(** ["interface/version/method"] — the Finder registration key. *)

val is_resolved : t -> bool
(** False iff [protocol] is ["finder"]. *)

val equal : t -> t -> bool
(** Structural equality, including arguments. *)

val pp : Format.formatter -> t -> unit
(** Formats {!to_text}. *)
