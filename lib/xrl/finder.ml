let src = Logs.Src.create "xorp.finder" ~doc:"camlXORP Finder broker"

module Log = (val Logs.src_log src : Logs.LOG)

type target = {
  class_name : string;
  instance : string;
  addresses : (string * string) list;
  methods : (string, string) Hashtbl.t; (* method_id -> key *)
  mutable enabled : bool;
}

type resolved = { family : string; address : string; keyed_method : string }
type lifetime_event = Birth | Death

type t = {
  rng : Rng.t;
  targets : (string, target) Hashtbl.t; (* instance -> target *)
  classes : (string, target list ref) Hashtbl.t; (* oldest first *)
  watchers : (string, (lifetime_event -> string -> unit) list ref) Hashtbl.t;
  invalidate_hooks : (string -> unit) list ref;
  acls : (string, (string * string) list) Hashtbl.t;
  (* caller class -> allowed (target class, interface); absence = all *)
  mutable seqno : int;
  mutable resolves : int;
}

let create ?(seed = 0x51DE) () =
  {
    rng = Rng.create seed;
    targets = Hashtbl.create 16;
    classes = Hashtbl.create 16;
    watchers = Hashtbl.create 16;
    invalidate_hooks = ref [];
    acls = Hashtbl.create 4;
    seqno = 0;
    resolves = 0;
  }

let class_list t cls =
  match Hashtbl.find_opt t.classes cls with
  | Some r -> r
  | None ->
    let r = ref [] in
    Hashtbl.replace t.classes cls r;
    r

let notify t cls event instance =
  match Hashtbl.find_opt t.watchers cls with
  | None -> ()
  | Some cbs -> List.iter (fun cb -> cb event instance) !cbs

let invalidate t cls =
  List.iter (fun hook -> hook cls) !(t.invalidate_hooks)

let register_target t ~class_name ?(sole = false) ~addresses () =
  let live = class_list t class_name in
  if sole && !live <> [] then
    Error (Printf.sprintf "class %S already has a live instance" class_name)
  else begin
    t.seqno <- t.seqno + 1;
    let instance = Printf.sprintf "%s-%d" class_name t.seqno in
    let target =
      { class_name; instance; addresses; methods = Hashtbl.create 16;
        enabled = true }
    in
    Hashtbl.replace t.targets instance target;
    live := !live @ [ target ];
    invalidate t class_name;
    notify t class_name Birth instance;
    Log.info (fun m -> m "registered %s" instance);
    Ok target
  end

let unregister_target t target =
  if target.enabled then begin
    target.enabled <- false;
    Hashtbl.remove t.targets target.instance;
    let live = class_list t target.class_name in
    live := List.filter (fun x -> not (x == target)) !live;
    invalidate t target.class_name;
    notify t target.class_name Death target.instance;
    Log.info (fun m -> m "unregistered %s" target.instance)
  end

let register_method t target ~method_id =
  let key =
    String.concat ""
      (List.init 16 (fun _ -> Printf.sprintf "%02x" (Rng.int t.rng 256)))
  in
  Hashtbl.replace target.methods method_id key;
  key

let instance_name target = target.instance
let class_of_target target = target.class_name

let find_target t name =
  (* A specific instance name wins; otherwise the oldest live instance
     of the class. *)
  match Hashtbl.find_opt t.targets name with
  | Some target when target.enabled -> Some target
  | _ ->
    (match Hashtbl.find_opt t.classes name with
     | Some { contents = target :: _ } -> Some target
     | _ -> None)

(* A caller may be an instance name ("bgp-3"): its class is the prefix
   before the trailing "-<seq>" that register_target appended. *)
let class_of_caller t caller =
  match Hashtbl.find_opt t.targets caller with
  | Some target -> target.class_name
  | None ->
    (match String.rindex_opt caller '-' with
     | Some i when int_of_string_opt
                     (String.sub caller (i + 1) (String.length caller - i - 1))
                   <> None ->
       String.sub caller 0 i
     | _ -> caller)

let is_allowed t ~caller ~target_class ~interface =
  match Hashtbl.find_opt t.acls (class_of_caller t caller) with
  | None -> true
  | Some allowed ->
    List.exists
      (fun (cls, ifc) -> cls = target_class && ifc = interface)
      allowed

let restrict t ~class_name ~allow =
  Hashtbl.replace t.acls class_name allow;
  invalidate t class_name

let unrestrict t ~class_name =
  Hashtbl.remove t.acls class_name;
  invalidate t class_name

let resolve t ?(family_pref = []) ?caller (xrl : Xrl.t) =
  t.resolves <- t.resolves + 1;
  match find_target t xrl.target with
  | None -> Error (Xrl_error.Resolve_failed ("no such target " ^ xrl.target))
  | Some target when
      (match caller with
       | Some caller ->
         not
           (is_allowed t ~caller ~target_class:target.class_name
              ~interface:xrl.interface)
       | None -> false) ->
    Error
      (Xrl_error.Resolve_failed
         (Printf.sprintf "%s is not permitted to call %s/%s"
            (Option.value caller ~default:"?")
            target.class_name xrl.interface))
  | Some target ->
    let mid = Xrl.method_id xrl in
    (match Hashtbl.find_opt target.methods mid with
     | None ->
       Error
         (Xrl_error.No_such_method
            (Printf.sprintf "%s has no method %s" target.instance mid))
     | Some key ->
       let pick =
         let rec first_of = function
           | [] -> None
           | fam :: rest ->
             (match List.assoc_opt fam target.addresses with
              | Some addr -> Some (fam, addr)
              | None -> first_of rest)
         in
         match first_of family_pref with
         | Some fa -> Some fa
         | None ->
           (match target.addresses with fa :: _ -> Some fa | [] -> None)
       in
       (match pick with
        | None ->
          Error
            (Xrl_error.Resolve_failed
               (target.instance ^ " registered no transport addresses"))
        | Some (family, address) ->
          Ok
            { family; address;
              keyed_method = xrl.method_name ^ "@" ^ key }))

let resolve_count t = t.resolves

let watch_class t cls cb =
  let cbs =
    match Hashtbl.find_opt t.watchers cls with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.replace t.watchers cls r;
      r
  in
  cbs := !cbs @ [ cb ];
  (* Synthetic births for already-live instances. *)
  List.iter (fun target -> cb Birth target.instance) !(class_list t cls)

let on_invalidate t hook =
  t.invalidate_hooks := !(t.invalidate_hooks) @ [ hook ];
  (* The remover filters by physical equality, so removing one hook
     never disturbs another router's registration. Idempotent. *)
  fun () ->
    t.invalidate_hooks := List.filter (fun h -> h != hook) !(t.invalidate_hooks)

let invalidate_hook_count t = List.length !(t.invalidate_hooks)

let live_instances t cls =
  List.map (fun target -> target.instance) !(class_list t cls)

let live_addresses t cls =
  List.concat_map (fun target -> target.addresses) !(class_list t cls)
