type arg_type =
  | A_u32
  | A_i32
  | A_u64
  | A_txt
  | A_bool
  | A_ipv4
  | A_ipv4net
  | A_binary
  | A_list

type arg_spec = { a_name : string; a_type : arg_type; a_optional : bool }

type method_spec = {
  m_name : string;
  m_args : arg_spec list;
  m_returns : arg_spec list;
}

type interface = {
  i_name : string;
  i_version : string;
  i_methods : method_spec list;
}

let arg ?(optional = false) a_name a_type =
  { a_name; a_type; a_optional = optional }

let meth ?(args = []) ?(returns = []) m_name =
  { m_name; m_args = args; m_returns = returns }

let iface ~name ?(version = "1.0") methods =
  { i_name = name; i_version = version; i_methods = methods }

let type_of_value : Xrl_atom.value -> arg_type = function
  | U32 _ -> A_u32
  | I32 _ -> A_i32
  | U64 _ -> A_u64
  | Txt _ -> A_txt
  | Bool _ -> A_bool
  | Ipv4_v _ -> A_ipv4
  | Ipv4net_v _ -> A_ipv4net
  | Binary _ -> A_binary
  | List _ -> A_list

let type_name = function
  | A_u32 -> "u32"
  | A_i32 -> "i32"
  | A_u64 -> "u64"
  | A_txt -> "txt"
  | A_bool -> "bool"
  | A_ipv4 -> "ipv4"
  | A_ipv4net -> "ipv4net"
  | A_binary -> "binary"
  | A_list -> "list"

let check_args ~what specs (atoms : Xrl_atom.t list) =
  let problem = ref None in
  let note msg = if !problem = None then problem := Some msg in
  List.iter
    (fun spec ->
       match List.find_opt (fun (a : Xrl_atom.t) -> a.name = spec.a_name) atoms with
       | None ->
         if not spec.a_optional then
           note
             (Printf.sprintf "%s: missing argument %S" what spec.a_name)
       | Some a ->
         if type_of_value a.value <> spec.a_type then
           note
             (Printf.sprintf "%s: argument %S has type %s, expected %s" what
                spec.a_name
                (type_name (type_of_value a.value))
                (type_name spec.a_type)))
    specs;
  List.iter
    (fun (a : Xrl_atom.t) ->
       if not (List.exists (fun s -> s.a_name = a.name) specs) then
         note (Printf.sprintf "%s: unknown argument %S" what a.name))
    atoms;
  match !problem with Some msg -> Error msg | None -> Ok ()

let find_method i name =
  List.find_opt (fun m -> m.m_name = name) i.i_methods

let validate_call i (xrl : Xrl.t) =
  if xrl.interface <> i.i_name then
    Error
      (Printf.sprintf "interface mismatch: %s is not %s" xrl.interface i.i_name)
  else if xrl.version <> i.i_version then
    Error (Printf.sprintf "version mismatch: %s" xrl.version)
  else
    match find_method i xrl.method_name with
    | None ->
      Error (Printf.sprintf "%s has no method %S" i.i_name xrl.method_name)
    | Some m ->
      check_args
        ~what:(Printf.sprintf "%s/%s" i.i_name m.m_name)
        m.m_args xrl.args

let wrap_handler i ~method_name handler =
  match find_method i method_name with
  | None ->
    invalid_arg
      (Printf.sprintf "Xrl_idl.wrap_handler: %s has no method %S" i.i_name
         method_name)
  | Some m ->
    fun args reply ->
      let what = Printf.sprintf "%s/%s" i.i_name m.m_name in
      (match check_args ~what m.m_args args with
       | Error msg -> reply (Xrl_error.Bad_args msg) []
       | Ok () ->
         handler args (fun err ret ->
             if Xrl_error.is_ok err then
               match check_args ~what:(what ^ " (reply)") m.m_returns ret with
               | Ok () -> reply err ret
               | Error msg ->
                 (* The handler violated its own return contract. *)
                 reply (Xrl_error.Internal_error msg) []
             else reply err ret))

let add_checked_handler router i ~method_name handler =
  Xrl_router.add_handler router ~interface:i.i_name ~version:i.i_version
    ~method_name
    (wrap_handler i ~method_name handler)

let to_string i =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "interface %s/%s {\n" i.i_name i.i_version);
  List.iter
    (fun m ->
       let render specs =
         String.concat " & "
           (List.map
              (fun s ->
                 Printf.sprintf "%s%s:%s" s.a_name
                   (if s.a_optional then "?" else "")
                   (type_name s.a_type))
              specs)
       in
       Buffer.add_string buf
         (Printf.sprintf "    %s%s%s\n" m.m_name
            (match m.m_args with [] -> "" | args -> "?" ^ render args)
            (match m.m_returns with
             | [] -> ""
             | rets -> " -> " ^ render rets)))
    i.i_methods;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* --- builtin interface specs -------------------------------------------- *)

let fea_interface =
  iface ~name:"fea"
    [ meth "add_route4"
        ~args:
          [ arg "net" A_ipv4net; arg "nexthop" A_ipv4;
            arg ~optional:true "ifname" A_txt;
            arg ~optional:true "protocol" A_txt ];
      meth "delete_route4" ~args:[ arg "net" A_ipv4net ];
      (* Bulk variants: many routes per call, packed with Route_pack.
         The u32 return is the number of routes applied. *)
      meth "add_routes4" ~args:[ arg "routes" A_binary ]
        ~returns:[ arg "count" A_u32 ];
      meth "delete_routes4" ~args:[ arg "routes" A_binary ]
        ~returns:[ arg "count" A_u32 ];
      meth "lookup_route4" ~args:[ arg "addr" A_ipv4 ]
        ~returns:[ arg "net" A_ipv4net; arg "nexthop" A_ipv4; arg "ifname" A_txt ];
      meth "get_fib_size" ~returns:[ arg "size" A_u32 ];
      meth "get_interfaces" ~returns:[ arg "interfaces" A_list ] ]

let fea_udp_interface =
  iface ~name:"fea_udp"
    [ meth "udp_open"
        ~args:[ arg "client_target" A_txt; arg "addr" A_ipv4; arg "port" A_u32 ]
        ~returns:[ arg "sockid" A_u32 ];
      meth "udp_send"
        ~args:
          [ arg "sockid" A_u32; arg "dst" A_ipv4; arg "dport" A_u32;
            arg "payload" A_binary ];
      meth "udp_close" ~args:[ arg "sockid" A_u32 ] ]

let fea_client_interface =
  iface ~name:"fea_client"
    [ meth "recv"
        ~args:
          [ arg "sockid" A_u32; arg "src" A_ipv4; arg "sport" A_u32;
            arg "payload" A_binary ] ]

let rib_interface =
  iface ~name:"rib"
    [ meth "add_route"
        ~args:
          [ arg "protocol" A_txt; arg "net" A_ipv4net; arg "nexthop" A_ipv4;
            arg ~optional:true "metric" A_u32 ];
      meth "delete_route" ~args:[ arg "protocol" A_txt; arg "net" A_ipv4net ];
      (* Bulk variants: many routes per call, packed with Route_pack.
         The u32 return is the number of routes applied. *)
      meth "add_routes4" ~args:[ arg "routes" A_binary ]
        ~returns:[ arg "count" A_u32 ];
      meth "delete_routes4"
        ~args:[ arg "protocol" A_txt; arg "routes" A_binary ]
        ~returns:[ arg "count" A_u32 ];
      meth "lookup_route_by_dest" ~args:[ arg "addr" A_ipv4 ]
        ~returns:
          [ arg "net" A_ipv4net; arg "nexthop" A_ipv4; arg "metric" A_u32;
            arg "admin_distance" A_u32; arg "protocol" A_txt ];
      meth "register_interest" ~args:[ arg "client" A_txt; arg "addr" A_ipv4 ]
        ~returns:
          [ arg "resolves" A_bool; arg "valid" A_ipv4net;
            arg ~optional:true "net" A_ipv4net;
            arg ~optional:true "nexthop" A_ipv4;
            arg ~optional:true "metric" A_u32;
            arg ~optional:true "protocol" A_txt ];
      meth "deregister_interest" ~args:[ arg "client" A_txt; arg "valid" A_ipv4net ];
      meth "redist_subscribe" ~args:[ arg "target" A_txt; arg "policy" A_txt ];
      meth "redist_unsubscribe" ~args:[ arg "target" A_txt ];
      meth "get_route_count" ~returns:[ arg "count" A_u32 ] ]

let rib_client_interface =
  iface ~name:"rib_client"
    [ meth "route_info_invalid" ~args:[ arg "valid" A_ipv4net ] ]

let redist_client_interface =
  iface ~name:"redist_client"
    [ meth "add_route"
        ~args:
          [ arg "protocol" A_txt; arg "net" A_ipv4net; arg "nexthop" A_ipv4;
            arg "metric" A_u32; arg "tag" A_u32 ];
      meth "delete_route"
        ~args:
          [ arg "protocol" A_txt; arg "net" A_ipv4net; arg "nexthop" A_ipv4;
            arg "metric" A_u32; arg "tag" A_u32 ] ]

let bgp_interface =
  iface ~name:"bgp"
    [ meth "originate_route" ~args:[ arg "net" A_ipv4net ];
      meth "withdraw_route" ~args:[ arg "net" A_ipv4net ];
      meth "get_route_count" ~returns:[ arg "count" A_u32 ];
      meth "get_peer_state" ~args:[ arg "peer" A_ipv4 ]
        ~returns:[ arg "state" A_txt ];
      meth "list_peers" ~returns:[ arg "peers" A_list ] ]

let rip_interface =
  iface ~name:"rip"
    [ meth "add_static_route"
        ~args:[ arg "net" A_ipv4net; arg ~optional:true "metric" A_u32 ];
      meth "get_route_count" ~returns:[ arg "count" A_u32 ] ]

let ospf_interface =
  iface ~name:"ospf"
    [ meth "get_lsdb_size" ~returns:[ arg "size" A_u32 ];
      meth "get_route_count" ~returns:[ arg "count" A_u32 ];
      meth "add_stub"
        ~args:[ arg "net" A_ipv4net; arg ~optional:true "cost" A_u32 ] ]

let telemetry_interface =
  (* Quantiles and other float-valued fields travel as txt atoms:
     the XRL atom vocabulary has no float type. *)
  iface ~name:"telemetry" ~version:"0.1"
    [ meth "list" ~returns:[ arg "metrics" A_list ];
      meth "get" ~args:[ arg "name" A_txt ]
        ~returns:
          [ arg "type" A_txt;
            arg ~optional:true "value" A_txt;
            arg ~optional:true "count" A_u32;
            arg ~optional:true "sum" A_txt;
            arg ~optional:true "max" A_txt;
            arg ~optional:true "p50" A_txt;
            arg ~optional:true "p90" A_txt;
            arg ~optional:true "p99" A_txt ];
      meth "spans" ~returns:[ arg "spans" A_list ];
      meth "snapshot" ~returns:[ arg "json" A_txt ];
      meth "reset" ]

let dataplane_interface =
  (* Element lists and drop tables travel as txt atoms of the form
     "field|field|..." — same convention as telemetry/0.1's lists. *)
  iface ~name:"dataplane" ~version:"0.1"
    [ meth "install_graph" ~args:[ arg "config" A_txt ]
        ~returns:[ arg "elements" A_u32 ];
      meth "get_graph" ~returns:[ arg "config" A_txt ];
      meth "list_elements" ~returns:[ arg "elements" A_list ];
      meth "get_counters" ~args:[ arg "name" A_txt ]
        ~returns:
          [ arg "klass" A_txt; arg "rx" A_u32; arg "tx" A_u32;
            arg "drops" A_list ];
      meth "insert_element"
        ~args:
          [ arg "name" A_txt; arg "klass" A_txt;
            arg ~optional:true "config" A_txt; arg "after" A_txt;
            arg ~optional:true "port" A_u32 ];
      meth "remove_element" ~args:[ arg "name" A_txt ] ]

let builtin_interfaces =
  [ fea_interface; fea_udp_interface; fea_client_interface; rib_interface;
    rib_client_interface; redist_client_interface; bgp_interface;
    rip_interface; ospf_interface; telemetry_interface;
    dataplane_interface ]

let find_interface name =
  List.find_opt (fun i -> i.i_name = name) builtin_interfaces
