type dispatch = Xrl.t -> (Xrl_error.t -> Xrl_atom.t list -> unit) -> unit

type sender = {
  send_req : Xrl.t -> (Xrl_error.t -> Xrl_atom.t list -> unit) -> unit;
  close_sender : unit -> unit;
  family_of_sender : string;
}

type listener = { address : string; shutdown : unit -> unit }

type family = {
  family_name : string;
  make_listener : Eventloop.t -> dispatch -> listener;
  make_sender : Eventloop.t -> string -> sender;
}
