type dispatch = Xrl.t -> (Xrl_error.t -> Xrl_atom.t list -> unit) -> unit

type reply_cb = Xrl_error.t -> Xrl_atom.t list -> unit

type sender = {
  send_req : Xrl.t -> reply_cb -> unit;
  send_batch : ((Xrl.t * reply_cb) list -> unit) option;
  (* Transport-level request coalescing: send many requests as one
     frame, each with its own sequence number and reply callback.
     [None] for families where a frame boundary is free (intra-process
     direct calls) or that deliberately do not pipeline (UDP). *)
  close_sender : unit -> unit;
  family_of_sender : string;
}

type listener = { address : string; shutdown : unit -> unit }

type family = {
  family_name : string;
  make_listener : Eventloop.t -> dispatch -> listener;
  make_sender : Eventloop.t -> string -> sender;
}
