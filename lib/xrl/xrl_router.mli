(** Per-component XRL endpoint: registration, dispatch, and sending.

    Every camlXORP component (BGP, the RIB, the FEA, ...) owns one
    [Xrl_router.t]. It instantiates the component's protocol-family
    listeners, registers the component and its methods with the
    {!Finder}, dispatches inbound calls to handlers (enforcing the
    per-method random key of §7), and sends outbound XRLs — resolving
    through the Finder with a resolution cache that the Finder
    invalidates when registrations change.

    {b Reliability.} Outbound calls can carry a caller-side deadline
    and a bounded-retry policy ({!send}'s [?deadline] and [?retry]).
    Every call settles its callback {e exactly once} no matter how
    replies, timers, peer deaths, and shutdown race; late replies are
    dropped and counted ([xrl.late_replies_dropped]). The router also
    watches the Finder lifetime notifications (§6.5) for every class it
    has a sender towards: when a peer dies, that peer's queued and
    in-flight calls fail promptly (or retry against the restarted
    instance), and the stale sender is evicted so a rebirth at a new
    address is re-resolved. *)

type t

type handler =
  Xrl_atom.t list -> (Xrl_error.t -> Xrl_atom.t list -> unit) -> unit
(** A method implementation. It receives the request atoms and a reply
    continuation that must be called exactly once; replies may be
    immediate or deferred (asynchronous messaging, §6). Raising
    {!Xrl_atom.Bad_args} replies with a [Bad_args] error. *)

type retry = {
  max_attempts : int;     (** total attempts, including the first *)
  base_delay : float;     (** backoff before attempt 2, seconds *)
  max_delay : float;      (** cap on the exponential backoff *)
  jitter : float;         (** proportional jitter, e.g. [0.25] = +0..25% *)
  attempt_timeout : float option;
      (** per-attempt reply timeout; an expiry counts as a transient
          failure of that attempt (retried), unlike the overall
          [?deadline] which settles the call for good *)
}
(** Bounded retry with exponential backoff, for {e idempotent} calls
    only — a retried call may execute twice on the peer. Retried
    errors: [Resolve_failed] (peer not yet / no longer registered),
    [Send_failed] (transport failure), and attempt-level [Timed_out].
    Each retry re-resolves through the Finder, so a peer that restarts
    at a new address is found. Retries are counted in [xrl.retries]. *)

val default_retry : retry
(** 4 attempts; 50 ms base backoff doubling to a 2 s cap, 25% jitter;
    2 s per-attempt timeout. *)

val create :
  ?families:Pf.family list -> ?family_pref:string list -> ?batching:bool ->
  Finder.t -> Eventloop.t -> class_name:string -> ?sole:bool -> unit -> t
(** Create a component endpoint of class [class_name]. [families]
    (default: intra-process only) selects which transport listeners to
    instantiate; TCP/UDP families require a [`Real]-mode loop.
    [family_pref] (default intra, then TCP, then UDP) orders transport
    choice when sending. [batching] (default [true]) coalesces sends
    to the same destination made within one event-loop turn into a
    single batched frame, on transports that support it (TCP); each
    request in a batch keeps its own reply and error, and per-
    destination FIFO order is preserved. Pass [false] to force a frame
    per request (e.g. for latency measurements of the unbatched path).
    @raise Failure if [sole] is set and the class is already live. *)

val add_handler :
  t -> interface:string -> ?version:string -> method_name:string ->
  handler -> unit
(** Register a method. Its Finder key is generated here; inbound calls
    whose keyed name does not match are rejected, preventing Finder
    bypass. *)

val send :
  ?deadline:float -> ?retry:retry -> t -> Xrl.t ->
  (Xrl_error.t -> Xrl_atom.t list -> unit) -> unit
(** Send a generic (or already-resolved) XRL; the callback fires
    exactly once with the outcome. Resolution results are cached.

    [?deadline] (seconds) arms a timer: if no settlement happened when
    it fires, the callback fails with {!Xrl_error.Timed_out} (counted
    in [xrl.timeouts]) and any reply arriving later is dropped.

    [?retry] enables bounded retry with backoff for transient errors;
    see {!retry}. The deadline spans all attempts. *)

val call_blocking :
  ?deadline:float -> ?retry:retry -> t -> Xrl.t ->
  Xrl_error.t * Xrl_atom.t list
(** Testing/scripting convenience: {!send}, then run the event loop
    until the reply arrives. Must not be called from inside a handler.
    [deadline] defaults to 30 s, so a peer that accepts the request but
    never replies yields [(Timed_out _, [])] rather than a hang. *)

val instance_name : t -> string
(** This endpoint's unique Finder instance name, e.g. ["bgp-2"]. *)

val registered_methods : t -> string list
(** Every method id ([interface/version/name]) this endpoint has
    registered with {!add_handler}, sorted. docs/XRL.md is diffed
    against this in the test suite, so the reference cannot drift. *)

val class_name : t -> string
(** The component class passed to {!create}. *)

val finder : t -> Finder.t
(** The broker this endpoint registered with. *)

val eventloop : t -> Eventloop.t
(** The loop dispatch and reply callbacks run on. *)

val pending_sends : t -> int
(** Outbound calls not yet settled. Every deadline expiry, peer death,
    or shutdown settles its calls, so this returns to 0 — it cannot
    leak on the failure paths. *)

val shutdown : t -> unit
(** Unregister from the Finder (including this router's resolution-
    invalidation hook), close listeners and senders, and settle every
    unsettled call with [Send_failed] in send order. Idempotent. *)
