(** Per-component XRL endpoint: registration, dispatch, and sending.

    Every camlXORP component (BGP, the RIB, the FEA, ...) owns one
    [Xrl_router.t]. It instantiates the component's protocol-family
    listeners, registers the component and its methods with the
    {!Finder}, dispatches inbound calls to handlers (enforcing the
    per-method random key of §7), and sends outbound XRLs — resolving
    through the Finder with a resolution cache that the Finder
    invalidates when registrations change. *)

type t

type handler =
  Xrl_atom.t list -> (Xrl_error.t -> Xrl_atom.t list -> unit) -> unit
(** A method implementation. It receives the request atoms and a reply
    continuation that must be called exactly once; replies may be
    immediate or deferred (asynchronous messaging, §6). Raising
    {!Xrl_atom.Bad_args} replies with a [Bad_args] error. *)

val create :
  ?families:Pf.family list -> ?family_pref:string list -> ?batching:bool ->
  Finder.t -> Eventloop.t -> class_name:string -> ?sole:bool -> unit -> t
(** Create a component endpoint of class [class_name]. [families]
    (default: intra-process only) selects which transport listeners to
    instantiate; TCP/UDP families require a [`Real]-mode loop.
    [family_pref] (default intra, then TCP, then UDP) orders transport
    choice when sending. [batching] (default [true]) coalesces sends
    to the same destination made within one event-loop turn into a
    single batched frame, on transports that support it (TCP); each
    request in a batch keeps its own reply and error, and per-
    destination FIFO order is preserved. Pass [false] to force a frame
    per request (e.g. for latency measurements of the unbatched path).
    @raise Failure if [sole] is set and the class is already live. *)

val add_handler :
  t -> interface:string -> ?version:string -> method_name:string ->
  handler -> unit
(** Register a method. Its Finder key is generated here; inbound calls
    whose keyed name does not match are rejected, preventing Finder
    bypass. *)

val send : t -> Xrl.t -> (Xrl_error.t -> Xrl_atom.t list -> unit) -> unit
(** Send a generic (or already-resolved) XRL; the callback fires
    exactly once with the outcome. Resolution results are cached. *)

val call_blocking : t -> Xrl.t -> Xrl_error.t * Xrl_atom.t list
(** Testing/scripting convenience: {!send}, then run the event loop
    until the reply arrives. Must not be called from inside a handler. *)

val instance_name : t -> string
val class_name : t -> string
val finder : t -> Finder.t
val eventloop : t -> Eventloop.t

val pending_sends : t -> int
(** Outbound calls whose reply has not yet arrived. *)

val shutdown : t -> unit
(** Unregister from the Finder, close listeners and senders. Pending
    replies fail with [Send_failed]. Idempotent. *)
