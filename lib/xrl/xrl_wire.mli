(** Binary wire encoding of XRL requests and replies.

    The paper (§6.1): "The canonical form of an XRL is textual ...
    Internally XRLs are encoded more efficiently." This module is that
    efficient internal encoding, used by the networked protocol
    families (TCP and UDP). Messages are length-delimited externally
    (TCP framing adds a 4-byte length prefix; UDP datagrams are
    self-delimiting).

    Layout: 2-byte magic ["XO"], 1-byte version, 1-byte kind, then a
    kind-specific payload with 16-bit length-prefixed strings and typed
    atoms. Requests and replies carry a 4-byte sequence number. A
    {!Batch} frame carries a 16-bit count followed by that many
    request/reply bodies — the transport-level coalescing of §8.1's
    "one marshalled call per route" cost; batches do not nest. *)

type message =
  | Request of { seq : int; xrl : Xrl.t }
  | Reply of {
      seq : int;
      error : Xrl_error.t;
      args : Xrl_atom.t list;
    }
  | Batch of message list
      (** Many requests and/or replies in one frame. Each element keeps
          its own sequence number, so replies (and errors) stay
          per-request. *)

val encode : message -> string

val encode_into : Wire.W.t -> message -> unit
(** Encode directly into an existing writer — used with
    {!Sockbuf.send_frame_into} to build header and payload in one
    buffer with no intermediate string.
    @raise Invalid_argument on a nested or over-long batch. *)

val max_batch : int
(** Maximum number of sub-messages in one batch frame (65535). *)

val decode : string -> (message, string) result
(** Decodes one complete message; [Error] on malformed or truncated
    input, or on an unsupported version. *)

val encode_atoms : Wire.W.t -> Xrl_atom.t list -> unit
(** Exposed for tests and for protocol families that embed atom lists
    in their own framing. *)

val decode_atoms : Wire.R.t -> Xrl_atom.t list
(** @raise Wire.Truncated or [Failure] on malformed input. *)
