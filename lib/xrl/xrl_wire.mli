(** Binary wire encoding of XRL requests and replies.

    The paper (§6.1): "The canonical form of an XRL is textual ...
    Internally XRLs are encoded more efficiently." This module is that
    efficient internal encoding, used by the networked protocol
    families (TCP and UDP). Messages are length-delimited externally
    (TCP framing adds a 4-byte length prefix; UDP datagrams are
    self-delimiting).

    Layout: 2-byte magic ["XO"], 1-byte version, 1-byte kind, 4-byte
    sequence number, then kind-specific payload with 16-bit
    length-prefixed strings and typed atoms. *)

type message =
  | Request of { seq : int; xrl : Xrl.t }
  | Reply of {
      seq : int;
      error : Xrl_error.t;
      args : Xrl_atom.t list;
    }

val encode : message -> string

val decode : string -> (message, string) result
(** Decodes one complete message; [Error] on malformed or truncated
    input, or on an unsupported version. *)

val encode_atoms : Wire.W.t -> Xrl_atom.t list -> unit
(** Exposed for tests and for protocol families that embed atom lists
    in their own framing. *)

val decode_atoms : Wire.R.t -> Xrl_atom.t list
(** @raise Wire.Truncated or [Failure] on malformed input. *)
