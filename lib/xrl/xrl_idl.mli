(** XRL interface definitions (the paper's IDL, §6.1).

    "As with many other IPC mechanisms, we have an interface definition
    language (IDL) that supports interface specification, automatic
    stub code generation, and basic error checking."

    Here interfaces are declarative OCaml values rather than a separate
    compiler: an {!interface} lists its methods with typed argument and
    return signatures. From a spec you get
    - {b checked handlers}: {!wrap_handler} validates inbound arguments
      against the spec before your handler runs, and validates your
      reply atoms before they leave — so type errors surface at the
      component boundary, not somewhere downstream;
    - {b checked calls}: {!validate_call} rejects a malformed XRL
      before it is sent;
    - {b documentation}: {!to_string} renders the interface in the
      XORP [.xif]-like form.

    The interfaces of all built-in camlXORP components are collected in
    {!builtin_interfaces}, and a test pins the implementations to their
    specs. *)

type arg_type = A_u32 | A_i32 | A_u64 | A_txt | A_bool | A_ipv4 | A_ipv4net | A_binary | A_list

type arg_spec = {
  a_name : string;
  a_type : arg_type;
  a_optional : bool;
}

type method_spec = {
  m_name : string;
  m_args : arg_spec list;
  m_returns : arg_spec list;
}

type interface = {
  i_name : string;
  i_version : string;
  i_methods : method_spec list;
}

val arg : ?optional:bool -> string -> arg_type -> arg_spec
(** [arg name ty] — an argument spec; [optional] defaults to false. *)

val meth : ?args:arg_spec list -> ?returns:arg_spec list -> string -> method_spec
(** [meth name] — a method spec; argument and return lists default to
    empty. *)

val iface : name:string -> ?version:string -> method_spec list -> interface
(** [version] defaults to ["1.0"]. *)

val type_of_value : Xrl_atom.value -> arg_type
(** The spec type a concrete atom value checks against. *)

val check_args :
  what:string -> arg_spec list -> Xrl_atom.t list -> (unit, string) result
(** Every non-optional spec present with the right type; no unknown
    arguments. *)

val find_method : interface -> string -> method_spec option
(** Look up a method spec by name. *)

val validate_call : interface -> Xrl.t -> (unit, string) result
(** Interface/version match, method exists, arguments check. *)

val wrap_handler :
  interface -> method_name:string ->
  (Xrl_atom.t list -> (Xrl_error.t -> Xrl_atom.t list -> unit) -> unit) ->
  Xrl_atom.t list -> (Xrl_error.t -> Xrl_atom.t list -> unit) -> unit
(** Argument- and reply-checking wrapper for {!Xrl_router.add_handler}.
    Inbound violations reply [Bad_args] without invoking the handler;
    a reply that violates the return spec is converted to
    [Internal_error] (the handler broke its own contract).
    @raise Invalid_argument if the method is not in the interface. *)

val add_checked_handler :
  Xrl_router.t -> interface -> method_name:string ->
  Xrl_router.handler -> unit
(** [add_handler] + {!wrap_handler} in one step, registering under the
    interface's name and version. *)

val to_string : interface -> string
(** Render the interface in the XORP [.xif]-like form, one method per
    line with argument and return signatures. *)

val telemetry_interface : interface
(** [telemetry/0.1]: list/get/spans/snapshot/reset against the global
    telemetry registry (served by [Telemetry_xrl]). *)

val dataplane_interface : interface
(** [dataplane/0.1]: install/inspect/mutate the FEA's element-graph
    forwarding path (served by [Fea]; see docs/DATAPLANE.md). *)

val builtin_interfaces : interface list
(** Specs for the public interfaces of the built-in components:
    [fea/1.0], [fea_udp/1.0], [fea_client/1.0], [rib/1.0],
    [rib_client/1.0], [redist_client/1.0], [bgp/1.0], [rip/1.0],
    [ospf/1.0], [telemetry/0.1], [dataplane/0.1]. *)

val find_interface : string -> interface option
(** Look up a builtin interface by name. *)
