(** TCP protocol family ("stcp"): XRLs over real loopback TCP sockets.

    This is the family XORP uses by default between processes. Requests
    are pipelined: a sender may have many outstanding requests on one
    connection, matched to replies by sequence number — the property
    that makes TCP competitive with intra-process calls in Figure 9.

    Requires a [`Real]-mode event loop. Listener addresses are
    ["127.0.0.1:<port>"] with a kernel-assigned port. *)

val family : Pf.family
(** The ["stcp"] family (shared, stateless: per-connection state lives
    in the senders and listeners it creates). *)
