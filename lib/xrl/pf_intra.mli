(** Intra-process protocol family.

    For calls between components in the same process the XRL library
    invokes direct method calls (paper §8.1) — no marshaling, no
    copying, no event-loop round trip. Addresses look like
    ["intra:<id>"] and resolve through a process-global registry, so a
    restarted component gets a fresh id and stale senders fail cleanly. *)

val family : Pf.family
(** The process-global ["intra"] family; safe to share between all
    routers in a process. *)
