type t = {
  protocol : string;
  target : string;
  interface : string;
  version : string;
  method_name : string;
  args : Xrl_atom.t list;
}

let field_ok ~allow_colon s =
  s <> ""
  && not
       (String.exists
          (fun c ->
             c = '/' || c = '?' || c = '&' || c = ' '
             || ((not allow_colon) && c = ':'))
          s)

let make ?(protocol = "finder") ~target ~interface ?(version = "1.0")
    ~method_name args =
  let check what ~allow_colon s =
    if not (field_ok ~allow_colon s) then
      invalid_arg (Printf.sprintf "Xrl.make: bad %s %S" what s)
  in
  check "protocol" ~allow_colon:false protocol;
  check "target" ~allow_colon:true target;
  check "interface" ~allow_colon:false interface;
  check "version" ~allow_colon:true version;
  check "method" ~allow_colon:true method_name;
  { protocol; target; interface; version; method_name; args }

let to_text t =
  let base =
    Printf.sprintf "%s://%s/%s/%s/%s" t.protocol t.target t.interface
      t.version t.method_name
  in
  match t.args with
  | [] -> base
  | args ->
    base ^ "?" ^ String.concat "&" (List.map Xrl_atom.to_text args)

let ( let* ) = Result.bind

let of_text s =
  match Re.exec_opt (Re.Pcre.re {|^([^:/?]+)://([^/?]+)/([^/?]+)/([^/?]+)/([^?]+)(\?(.*))?$|} |> Re.compile) s with
  | None -> Error (Printf.sprintf "malformed XRL %S" s)
  | Some g ->
    let protocol = Re.Group.get g 1 in
    let target = Re.Group.get g 2 in
    let interface = Re.Group.get g 3 in
    let version = Re.Group.get g 4 in
    let method_name = Re.Group.get g 5 in
    let argstr = try Re.Group.get g 7 with Not_found -> "" in
    let* args =
      if argstr = "" then Ok []
      else
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | piece :: rest ->
            let* atom = Xrl_atom.of_text piece in
            go (atom :: acc) rest
        in
        go [] (String.split_on_char '&' argstr)
    in
    (match make ~protocol ~target ~interface ~version ~method_name args with
     | xrl -> Ok xrl
     | exception Invalid_argument msg -> Error msg)

(* Hot path (resolution-cache key on every send): plain concatenation,
   no format-string interpretation. *)
let method_id t = t.interface ^ "/" ^ t.version ^ "/" ^ t.method_name
let is_resolved t = t.protocol <> "finder"

let equal a b =
  a.protocol = b.protocol && a.target = b.target && a.interface = b.interface
  && a.version = b.version && a.method_name = b.method_name
  && List.length a.args = List.length b.args
  && List.for_all2 Xrl_atom.equal a.args b.args

let pp fmt t = Format.pp_print_string fmt (to_text t)
