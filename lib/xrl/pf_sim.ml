let src = Logs.Src.create "xorp.pf_sim" ~doc:"XRL simulated-network family"

module Log = (val Logs.src_log src : Logs.LOG)

let next_port = ref 7000

let parse_address address =
  match String.split_on_char ':' address with
  | [ "sim"; host; port ] ->
    (match Ipv4.of_string host, int_of_string_opt port with
     | Some a, Some p -> (a, p)
     | _ -> invalid_arg ("Pf_sim: bad address " ^ address))
  | _ -> invalid_arg ("Pf_sim: bad address " ^ address)

(* Netsim streams preserve send boundaries, so each Stream.send is one
   complete Xrl_wire message: no length framing needed. *)

let make_listener ~requests_rx netsim ~local_addr _loop
    (dispatch : Pf.dispatch) : Pf.listener =
  incr next_port;
  let port = !next_port in
  let listener =
    Netsim.Stream.listen netsim ~addr:local_addr ~port (fun ep ->
        Netsim.Stream.on_receive ep (fun data ->
            match Xrl_wire.decode data with
            | Ok (Xrl_wire.Request { seq; xrl }) ->
              if Telemetry.is_enabled () then Telemetry.incr requests_rx;
              dispatch xrl (fun error args ->
                  if Netsim.Stream.is_open ep then
                    Netsim.Stream.send ep
                      (Xrl_wire.encode (Xrl_wire.Reply { seq; error; args })))
            | Ok (Xrl_wire.Batch _) ->
              (* Sim senders never batch (send_batch = None). *)
              Log.warn (fun m -> m "unexpected batched frame")
            | Ok (Xrl_wire.Reply _) ->
              Log.warn (fun m -> m "listener got a stray reply")
            | Error msg -> Log.warn (fun m -> m "undecodable request: %s" msg)))
  in
  { address = Printf.sprintf "sim:%s:%d" (Ipv4.to_string local_addr) port;
    shutdown = (fun () -> Netsim.Stream.unlisten listener) }

type sender_state = {
  outstanding : (int, Xrl_error.t -> Xrl_atom.t list -> unit) Hashtbl.t;
  pending : (Xrl.t * (Xrl_error.t -> Xrl_atom.t list -> unit)) Queue.t;
  mutable seq : int;
  mutable ep : Netsim.Stream.endpoint option;
  mutable connecting : bool;
  mutable closed : bool;
  mutable last_tx : float;
      (* Latest scheduled transmit time under a latency model; keeps
         delayed transmits monotone so per-destination FIFO holds. *)
}

let make_sender ~requests_tx ?latency netsim ~local_addr loop address :
  Pf.sender =
  let dst, port = parse_address address in
  let st =
    { outstanding = Hashtbl.create 32; pending = Queue.create (); seq = 0;
      ep = None; connecting = false; closed = false; last_tx = neg_infinity }
  in
  let fail_all reason =
    (* Ascending seq order, then the not-yet-transmitted queue: keeps
       the per-destination FIFO promise (sent-first fails first). *)
    let cbs =
      List.sort
        (fun (a, _) (b, _) -> compare a b)
        (Hashtbl.fold (fun seq cb acc -> (seq, cb) :: acc) st.outstanding [])
    in
    Hashtbl.reset st.outstanding;
    List.iter (fun (_, cb) -> cb (Xrl_error.Send_failed reason) []) cbs;
    Queue.iter (fun (_, cb) -> cb (Xrl_error.Send_failed reason) []) st.pending;
    Queue.clear st.pending
  in
  let do_transmit ep xrl cb =
    if Telemetry.is_enabled () then Telemetry.incr requests_tx;
    st.seq <- st.seq + 1;
    Hashtbl.replace st.outstanding st.seq cb;
    Netsim.Stream.send ep (Xrl_wire.encode (Xrl_wire.Request { seq = st.seq; xrl }))
  in
  (* With a latency model, each transmit is held for a drawn delay.
     Targets are forced strictly monotone per sender, so requests to
     one destination still leave (and are sequenced) in send order —
     only the interleaving {e across} senders varies with the draw. *)
  let transmit ep xrl cb =
    match latency with
    | None -> do_transmit ep xrl cb
    | Some draw ->
      let now = Eventloop.now loop in
      let target = Float.max (now +. Float.max 0. (draw ())) st.last_tx in
      let target = if target <= st.last_tx then st.last_tx +. 1e-9 else target in
      st.last_tx <- target;
      ignore
        (Eventloop.after loop (target -. now) (fun () ->
             if st.closed then cb (Xrl_error.Send_failed "sender closed") []
             else
               match st.ep with
               | Some ep' when Netsim.Stream.is_open ep' ->
                 do_transmit ep' xrl cb
               | _ -> cb (Xrl_error.Send_failed "connection closed") []));
      ignore ep
  in
  let on_receive data =
    match Xrl_wire.decode data with
    | Ok (Xrl_wire.Reply { seq; error; args }) ->
      (match Hashtbl.find_opt st.outstanding seq with
       | Some cb ->
         Hashtbl.remove st.outstanding seq;
         cb error args
       | None -> Log.warn (fun m -> m "reply for unknown seq %d" seq))
    | Ok (Xrl_wire.Batch _) ->
      Log.warn (fun m -> m "unexpected batched reply")
    | Ok (Xrl_wire.Request _) -> Log.warn (fun m -> m "sender got a request")
    | Error msg -> Log.warn (fun m -> m "undecodable reply: %s" msg)
  in
  let connect () =
    st.connecting <- true;
    Netsim.Stream.connect netsim ~src:local_addr ~dst ~port (fun ep ->
        st.connecting <- false;
        match ep with
        | None -> fail_all ("connection refused by " ^ address)
        | Some ep ->
          st.ep <- Some ep;
          Netsim.Stream.on_receive ep on_receive;
          Netsim.Stream.on_close ep (fun () ->
              st.ep <- None;
              fail_all "connection closed");
          (* Drain anything queued while connecting. *)
          Queue.iter (fun (xrl, cb) -> transmit ep xrl cb) st.pending;
          Queue.clear st.pending)
  in
  let send_req xrl cb =
    if st.closed then cb (Xrl_error.Send_failed "sender closed") []
    else
      match st.ep with
      | Some ep when Netsim.Stream.is_open ep -> transmit ep xrl cb
      | _ ->
        Queue.push (xrl, cb) st.pending;
        if not st.connecting then connect ()
  in
  let close_sender () =
    st.closed <- true;
    (match st.ep with Some ep -> Netsim.Stream.close ep | None -> ());
    st.ep <- None;
    fail_all "sender closed"
  in
  { send_req; send_batch = None; close_sender; family_of_sender = "sim" }

let family ?latency netsim ~local_addr : Pf.family =
  (* Resolve the counters when the family is created, not per listener
     or per sender: the family is built during a router's boot, so in a
     multi-router process each router's family records under that
     router's telemetry namespace. *)
  let requests_rx = Telemetry.counter "xrl.sim.requests_rx" in
  let requests_tx = Telemetry.counter "xrl.sim.requests_tx" in
  {
    family_name = "sim";
    make_listener =
      (fun loop dispatch ->
        make_listener ~requests_rx netsim ~local_addr loop dispatch);
    make_sender =
      (fun loop address ->
        make_sender ~requests_tx ?latency netsim ~local_addr loop address);
  }
