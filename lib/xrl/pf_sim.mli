(** Simulated-network protocol family ("sim").

    The paper (§1): the IPC mechanism "lets modules communicate with
    each other independent of whether those modules are part of the
    same process, or even on the same machine; this allows untrusted
    processes to be run entirely sandboxed, or even on different
    machines from the forwarding engine."

    This family carries XRLs over {!Netsim} streams, so components of
    one router can live on different {e simulated machines}: give each
    component a sim family bound to its machine's address, and XRL
    traffic crosses the simulated network with its latency — e.g. a
    remote FEA, as the paper suggests. Works with the simulated clock
    (unlike the real-socket TCP/UDP families).

    Addresses look like ["sim:10.0.0.2:7001"]. *)

val family : ?latency:(unit -> float) -> Netsim.t -> local_addr:Ipv4.t -> Pf.family
(** A family instance for one simulated machine. Listeners bind
    sequential ports on [local_addr]; senders connect across the
    simulated network and pipeline requests like the TCP family.

    [latency] is a virtual-latency model: each request transmit is held
    for [latency ()] extra seconds (on top of the Netsim path latency).
    Per-destination transmits stay strictly FIFO — delayed targets are
    forced monotone — so only the interleaving across destinations
    varies. Drawing the delay from a seeded PRNG (the simulation
    harness's shared RNG) fuzzes XRL delivery schedules while keeping
    the whole run reproducible from the seed. *)
