type message =
  | Request of { seq : int; xrl : Xrl.t }
  | Reply of { seq : int; error : Xrl_error.t; args : Xrl_atom.t list }
  | Batch of message list

let magic0 = Char.code 'X'
let magic1 = Char.code 'O'
let version = 1
let kind_request = 0
let kind_reply = 1
let kind_batch = 2
let max_batch = 0xFFFF

let put_str w s =
  if String.length s > 0xFFFF then invalid_arg "Xrl_wire: string too long";
  Wire.W.u16 w (String.length s);
  Wire.W.bytes w s

let get_str r =
  let n = Wire.R.u16 r in
  Wire.R.bytes r n

let put_lstr w s =
  Wire.W.u32 w (String.length s);
  Wire.W.bytes w s

let get_lstr r =
  let n = Wire.R.u32 r in
  Wire.R.bytes r n

(* Atom type tags on the wire. *)
let tag_of_value : Xrl_atom.value -> int = function
  | U32 _ -> 1
  | I32 _ -> 2
  | U64 _ -> 3
  | Txt _ -> 4
  | Bool _ -> 5
  | Ipv4_v _ -> 6
  | Ipv4net_v _ -> 7
  | Binary _ -> 8
  | List _ -> 9

let rec encode_value w (v : Xrl_atom.value) =
  Wire.W.u8 w (tag_of_value v);
  match v with
  | U32 x -> Wire.W.u32 w x
  | I32 x -> Wire.W.u32 w (x land 0xFFFF_FFFF)
  | U64 x ->
    Wire.W.u32 w (Int64.to_int (Int64.shift_right_logical x 32));
    Wire.W.u32 w (Int64.to_int (Int64.logand x 0xFFFF_FFFFL))
  | Txt s -> put_lstr w s
  | Bool b -> Wire.W.u8 w (if b then 1 else 0)
  | Ipv4_v a -> Wire.W.ipv4 w a
  | Ipv4net_v n ->
    Wire.W.ipv4 w (Ipv4net.network n);
    Wire.W.u8 w (Ipv4net.prefix_len n)
  | Binary s -> put_lstr w s
  | List vs ->
    Wire.W.u16 w (List.length vs);
    List.iter (encode_value w) vs

let rec decode_value r : Xrl_atom.value =
  match Wire.R.u8 r with
  | 1 -> U32 (Wire.R.u32 r)
  | 2 ->
    let raw = Wire.R.u32 r in
    let v = if raw land 0x8000_0000 <> 0 then raw - 0x1_0000_0000 else raw in
    I32 v
  | 3 ->
    let hi = Wire.R.u32 r in
    let lo = Wire.R.u32 r in
    U64 (Int64.logor (Int64.shift_left (Int64.of_int hi) 32) (Int64.of_int lo))
  | 4 -> Txt (get_lstr r)
  | 5 -> Bool (Wire.R.u8 r <> 0)
  | 6 -> Ipv4_v (Wire.R.ipv4 r)
  | 7 ->
    let a = Wire.R.ipv4 r in
    let l = Wire.R.u8 r in
    if l > 32 then failwith "Xrl_wire: bad prefix length";
    Ipv4net_v (Ipv4net.make a l)
  | 8 -> Binary (get_lstr r)
  | 9 ->
    let n = Wire.R.u16 r in
    List (List.init n (fun _ -> decode_value r))
  | tag -> failwith (Printf.sprintf "Xrl_wire: unknown atom tag %d" tag)

let encode_atoms w atoms =
  Wire.W.u16 w (List.length atoms);
  List.iter
    (fun (a : Xrl_atom.t) ->
       put_str w a.name;
       encode_value w a.value)
    atoms

let decode_atoms r =
  let n = Wire.R.u16 r in
  List.init n (fun _ ->
      let name = get_str r in
      let value = decode_value r in
      Xrl_atom.make name value)

(* A sub-message body: kind byte, sequence number, kind-specific
   payload. Top-level Request/Reply frames and the elements of a Batch
   frame share this layout. *)
let encode_body w = function
  | Request { seq; xrl } ->
    Wire.W.u8 w kind_request;
    Wire.W.u32 w seq;
    put_str w xrl.Xrl.protocol;
    put_str w xrl.Xrl.target;
    put_str w xrl.Xrl.interface;
    put_str w xrl.Xrl.version;
    put_str w xrl.Xrl.method_name;
    encode_atoms w xrl.Xrl.args
  | Reply { seq; error; args } ->
    Wire.W.u8 w kind_reply;
    Wire.W.u32 w seq;
    Wire.W.u16 w (Xrl_error.code error);
    put_str w
      (match error with
       | Ok_xrl -> ""
       | Resolve_failed s | No_such_method s | Bad_args s
       | Command_failed s | Send_failed s | Reply_timed_out s
       | Internal_error s | Timed_out s -> s);
    encode_atoms w args
  | Batch _ -> invalid_arg "Xrl_wire: batches do not nest"

let encode_into w msg =
  Wire.W.u8 w magic0;
  Wire.W.u8 w magic1;
  Wire.W.u8 w version;
  match msg with
  | Batch msgs ->
    let n = List.length msgs in
    if n > max_batch then invalid_arg "Xrl_wire: batch too long";
    Wire.W.u8 w kind_batch;
    Wire.W.u16 w n;
    List.iter (encode_body w) msgs
  | (Request _ | Reply _) as m -> encode_body w m

let encode msg =
  let w = Wire.W.create ~initial:128 () in
  encode_into w msg;
  Wire.W.contents w

let decode_body r kind =
  let seq = Wire.R.u32 r in
  if kind = kind_request then begin
    let protocol = get_str r in
    let target = get_str r in
    let interface = get_str r in
    let ver = get_str r in
    let method_name = get_str r in
    let args = decode_atoms r in
    Request
      { seq;
        xrl =
          Xrl.make ~protocol ~target ~interface ~version:ver ~method_name
            args }
  end
  else if kind = kind_reply then begin
    let ecode = Wire.R.u16 r in
    let note = get_str r in
    let args = decode_atoms r in
    Reply { seq; error = Xrl_error.of_code ecode note; args }
  end
  else failwith (Printf.sprintf "Xrl_wire: unknown message kind %d" kind)

let decode s =
  try
    let r = Wire.R.of_string s in
    if Wire.R.u8 r <> magic0 || Wire.R.u8 r <> magic1 then
      Error "bad magic"
    else if Wire.R.u8 r <> version then Error "unsupported version"
    else begin
      let kind = Wire.R.u8 r in
      if kind = kind_batch then begin
        let n = Wire.R.u16 r in
        Ok
          (Batch
             (List.init n (fun _ ->
                  let kind = Wire.R.u8 r in
                  decode_body r kind)))
      end
      else Ok (decode_body r kind)
    end
  with
  | Wire.Truncated -> Error "truncated message"
  | Failure msg -> Error msg
  | Invalid_argument msg -> Error msg
