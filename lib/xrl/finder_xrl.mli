(** The Finder as an XRL target (paper §6.3: "There is also a special
    Finder protocol family permitting the Finder to be addressable
    through XRLs, just as any other XORP component").

    [expose] registers a ["finder"] component whose methods let any
    component — or an operator via [call_xrl] — query the broker:

    - [finder/1.0/resolve?xrl:txt] → [family, address, keyed_method]:
      resolve a textual generic XRL;
    - [finder/1.0/live_instances?class:txt] → instance list;
    - [finder/1.0/resolve_count] → resolutions served. *)

val expose : Finder.t -> Eventloop.t -> Xrl_router.t
(** Sole instance of class ["finder"].
    @raise Failure if already exposed on this Finder. *)
