(** Protocol-family plumbing shared by all XRL transports (paper §6.3).

    A protocol family moves resolved XRLs from a sender to a receiving
    component and routes replies back. Families are small: a listener
    constructor (receiving side) and a sender constructor, plus
    marshaling via {!Xrl_wire} for the networked ones. *)

type dispatch = Xrl.t -> (Xrl_error.t -> Xrl_atom.t list -> unit) -> unit
(** The receiving component's demultiplexer: the callback must be
    invoked exactly once per request with the outcome. *)

type reply_cb = Xrl_error.t -> Xrl_atom.t list -> unit

type sender = {
  send_req : Xrl.t -> reply_cb -> unit;
  send_batch : ((Xrl.t * reply_cb) list -> unit) option;
  (** Transport-level coalescing: send many requests as one
      {!Xrl_wire.Batch} frame. Each request keeps its own sequence
      number and callback — replies and errors stay per-request, and
      FIFO order within the batch is preserved. [None] for families
      where frame boundaries are free (intra-process) or that
      deliberately do not pipeline (UDP, the paper's early prototype).
      {!Xrl_router} coalesces same-destination sends within one
      event-loop turn onto this path when present. *)
  close_sender : unit -> unit;
  family_of_sender : string;
}

type listener = {
  address : string;  (** What to register with the Finder. *)
  shutdown : unit -> unit;
}

type family = {
  family_name : string;
  make_listener : Eventloop.t -> dispatch -> listener;
  make_sender : Eventloop.t -> string -> sender;
  (** [make_sender loop address]; senders are cached per address by
      {!Xrl_router}. @raise Invalid_argument on a malformed address. *)
}
