let ok = Xrl_error.Ok_xrl

let fstr = Printf.sprintf "%.6f"

(* '|' is the field separator, so it cannot appear inside a field. *)
let sanitize s = String.map (fun c -> if c = '|' then '/' else c) s

let span_to_string (s : Telemetry.Trace.span) =
  Printf.sprintf "%d|%d|%s|%s|%s|%s|%s" s.Telemetry.Trace.sp_trace
    s.Telemetry.Trace.sp_span
    (match s.Telemetry.Trace.sp_parent with
     | Some p -> string_of_int p
     | None -> "")
    (sanitize s.Telemetry.Trace.sp_name)
    (fstr s.Telemetry.Trace.sp_start)
    (fstr s.Telemetry.Trace.sp_stop)
    (sanitize s.Telemetry.Trace.sp_note)

let span_of_string s =
  match String.split_on_char '|' s with
  | [ trace; span; parent; name; start; stop; note ] ->
    (match
       ( int_of_string_opt trace,
         int_of_string_opt span,
         (if parent = "" then Some None
          else Option.map Option.some (int_of_string_opt parent)),
         float_of_string_opt start,
         float_of_string_opt stop )
     with
     | Some tr, Some sp, Some parent, Some start, Some stop ->
       Some
         { Telemetry.Trace.sp_trace = tr; sp_span = sp; sp_parent = parent;
           sp_name = name; sp_start = start; sp_stop = stop; sp_note = note }
     | _ -> None)
  | _ -> None

let metric_kind = function
  | Telemetry.Counter _ -> "counter"
  | Telemetry.Gauge _ -> "gauge"
  | Telemetry.Histogram _ -> "histogram"

let add_handlers router =
  let i = Xrl_idl.telemetry_interface in
  let handle name h = Xrl_idl.add_checked_handler router i ~method_name:name h in
  handle "list" (fun _args reply ->
      let names =
        Telemetry.list_metrics ()
        |> List.map (fun (n, m) -> Xrl_atom.Txt (n ^ "|" ^ metric_kind m))
      in
      reply ok [ Xrl_atom.list "metrics" names ]);
  handle "get" (fun args reply ->
      let name = Xrl_atom.get_txt args "name" in
      match Telemetry.find_metric name with
      | None -> reply (Xrl_error.Command_failed ("no such metric: " ^ name)) []
      | Some (Telemetry.Counter c) ->
        reply ok
          [ Xrl_atom.txt "type" "counter";
            Xrl_atom.txt "value" (string_of_int (Telemetry.counter_value c)) ]
      | Some (Telemetry.Gauge g) ->
        reply ok
          [ Xrl_atom.txt "type" "gauge";
            Xrl_atom.txt "value" (fstr (Telemetry.gauge_value g)) ]
      | Some (Telemetry.Histogram h) ->
        let q p = fstr (Telemetry.Histogram.quantile h p) in
        reply ok
          [ Xrl_atom.txt "type" "histogram";
            Xrl_atom.u32 "count" (Telemetry.Histogram.count h land 0xFFFF_FFFF);
            Xrl_atom.txt "sum" (fstr (Telemetry.Histogram.sum h));
            Xrl_atom.txt "max" (fstr (Telemetry.Histogram.max_observed h));
            Xrl_atom.txt "p50" (q 0.5);
            Xrl_atom.txt "p90" (q 0.9);
            Xrl_atom.txt "p99" (q 0.99) ]);
  handle "spans" (fun _args reply ->
      let spans =
        Telemetry.Trace.spans ()
        |> List.map (fun s -> Xrl_atom.Txt (span_to_string s))
      in
      reply ok [ Xrl_atom.list "spans" spans ]);
  handle "snapshot" (fun _args reply ->
      reply ok [ Xrl_atom.txt "json" (Telemetry.snapshot_json ()) ]);
  handle "reset" (fun _args reply ->
      Telemetry.reset ();
      reply ok [])

let expose fndr loop =
  let router =
    Xrl_router.create fndr loop ~class_name:"telemetry" ~sole:true ()
  in
  add_handlers router;
  router
