(** Fault-injection wrapper around any protocol family (tests only).

    [wrap] decorates a family's senders so each outbound request rolls
    a seeded RNG and may be dropped (black-holed: no reply, ever),
    failed (a deferred [Send_failed]), delayed (reply delivery pushed
    by a fixed + jittered interval), or duplicated (reply delivered
    twice, one event-loop turn apart). Listeners pass through
    untouched, and the family keeps the inner family's name, so a
    chaos-wrapped transport is indistinguishable to the Finder and the
    router — which is the point: it exercises {!Xrl_router}'s
    deadlines, retries, and settle-once guarantee, and component-level
    recovery, over an unreliable network that replays deterministically
    from its seed.

    Injections are counted in [xrl.chaos.drops] / [.failures] /
    [.dups] / [.delayed]. *)

type config = {
  mutable drop_prob : float;    (** request black-holed *)
  mutable fail_prob : float;    (** request fails with [Send_failed] *)
  mutable dup_prob : float;     (** reply delivered a second time *)
  mutable delay : float;        (** fixed reply delay, seconds *)
  mutable delay_jitter : float; (** extra uniform [0, jitter) delay *)
}
(** Fields are mutable so a test can turn faults on and off mid-run
    (e.g. chaos while a component is being killed, quiescence while
    checking convergence). *)

val config :
  ?drop_prob:float -> ?fail_prob:float -> ?dup_prob:float ->
  ?delay:float -> ?delay_jitter:float -> unit -> config
(** All probabilities default to [0.] — a freshly wrapped family
    injects nothing until the test dials faults in. *)

val wrap : ?rng:Rng.t -> seed:int -> config:config -> Pf.family -> Pf.family
(** [wrap ~seed ~config fam] returns a family identical to [fam] except
    that every sender injects faults per [config], driven by a
    deterministic per-destination RNG derived from [seed]. Batching is
    disabled on wrapped senders so each request rolls independently.

    [?rng] overrides the per-destination derivation: all senders then
    draw from that single shared generator. The simulation harness uses
    this to fold transport faults into its master seed stream, so one
    integer determines the whole execution. *)
