let src = Logs.Src.create "xorp.pf_chaos" ~doc:"XRL fault-injection wrapper"

module Log = (val Logs.src_log src : Logs.LOG)

let c_drops = Telemetry.counter "xrl.chaos.drops"
let c_failures = Telemetry.counter "xrl.chaos.failures"
let c_dups = Telemetry.counter "xrl.chaos.dups"
let c_delayed = Telemetry.counter "xrl.chaos.delayed"
let count c = if Telemetry.is_enabled () then Telemetry.incr c

type config = {
  mutable drop_prob : float;
  mutable fail_prob : float;
  mutable dup_prob : float;
  mutable delay : float;
  mutable delay_jitter : float;
}

let config ?(drop_prob = 0.) ?(fail_prob = 0.) ?(dup_prob = 0.)
    ?(delay = 0.) ?(delay_jitter = 0.) () =
  { drop_prob; fail_prob; dup_prob; delay; delay_jitter }

let wrap ?rng ~seed ~config:cfg (inner : Pf.family) : Pf.family =
  let wrap_sender loop address =
    let sender = inner.make_sender loop address in
    (* By default a per-destination stream, decorrelated across
       addresses but fully determined by [seed]: a failing chaos test
       replays exactly. With [?rng], every sender draws from that one
       shared generator instead — the simulation harness injects its
       master-seeded RNG here so the entire fault schedule is one
       stream derived from a single integer. *)
    let rng =
      match rng with
      | Some rng -> rng
      | None -> Rng.create (seed lxor Hashtbl.hash address)
    in
    (* Deliver a reply through the configured mischief: optional fixed
       + jittered delay, optional duplicate delivery one turn later
       (exercising the caller's settle-once guard). *)
    let deliver cb err args =
      let fire () =
        cb err args;
        if cfg.dup_prob > 0. && Rng.float rng < cfg.dup_prob then begin
          count c_dups;
          Eventloop.defer loop (fun () -> cb err args)
        end
      in
      let d =
        cfg.delay
        +. (if cfg.delay_jitter > 0. then cfg.delay_jitter *. Rng.float rng
            else 0.)
      in
      if d > 0. then begin
        count c_delayed;
        ignore (Eventloop.after loop d fire)
      end
      else fire ()
    in
    let send_req xrl cb =
      if cfg.drop_prob > 0. && Rng.float rng < cfg.drop_prob then begin
        (* Black hole: neither the request nor any reply ever surfaces,
           as when the datagram — or the peer — vanishes mid-call. Only
           a caller-side timeout can recover. *)
        count c_drops;
        Log.debug (fun m -> m "dropping %s" (Xrl.method_id xrl))
      end
      else if cfg.fail_prob > 0. && Rng.float rng < cfg.fail_prob then begin
        count c_failures;
        Eventloop.defer loop (fun () ->
            cb (Xrl_error.Send_failed "chaos: injected failure") [])
      end
      else sender.Pf.send_req xrl (deliver cb)
    in
    { Pf.send_req;
      (* No batch path: every request must roll its own dice. *)
      send_batch = None;
      close_sender = sender.Pf.close_sender;
      family_of_sender = sender.Pf.family_of_sender }
  in
  { family_name = inner.family_name;
    make_listener = inner.make_listener;
    make_sender = wrap_sender }
