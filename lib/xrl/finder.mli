(** The Finder: broker for XRL requests (paper §6.2).

    Components register a component class (e.g. ["bgp"]), a unique
    instance name, the transport addresses they listen on, and their
    methods. The Finder resolves generic XRLs into resolved XRLs that
    name a concrete protocol family, address, and {e keyed} method name
    — a 16-byte random key is embedded in every registered method name
    (§7), so a caller cannot bypass Finder resolution and forge calls.

    The Finder also provides the component-lifetime notification
    service: watchers are told when instances of a class are born or
    die, which is how components detect failures and restarts. *)

type t

type target
(** A registered component instance. *)

type resolved = {
  family : string;       (** protocol family, e.g. ["stcp"] *)
  address : string;      (** family-specific address *)
  keyed_method : string; (** [method@key] *)
}

type lifetime_event = Birth | Death

val create : ?seed:int -> unit -> t
(** [seed] makes method keys deterministic (tests only). *)

val register_target :
  t -> class_name:string -> ?sole:bool ->
  addresses:(string * string) list -> unit -> (target, string) result
(** [register_target t ~class_name ~addresses ()] creates an instance
    of [class_name] reachable at [addresses] (an ordered
    [(family, address)] preference list). With [~sole:true] the
    registration fails if the class already has a live instance.
    Watchers of the class observe a {!Birth}. *)

val unregister_target : t -> target -> unit
(** Idempotent. Watchers observe a {!Death}; resolution caches are
    invalidated. *)

val register_method : t -> target -> method_id:string -> string
(** [register_method t target ~method_id] registers
    ["interface/version/method"] and returns the key the receiving
    component must enforce on dispatch. *)

val instance_name : target -> string
(** The unique generation-suffixed name, e.g. ["fea-3"]. *)

val class_of_target : target -> string
(** The component class the target registered as, e.g. ["fea"]. *)

val resolve :
  t -> ?family_pref:string list -> ?caller:string -> Xrl.t ->
  (resolved, Xrl_error.t) result
(** Resolve a generic XRL. The target may name a class (any live
    instance is chosen, oldest first) or a specific instance.
    [family_pref] orders transport choice; families the target does not
    support are skipped. [caller] (a component class or instance name)
    is checked against any access-control restriction installed with
    {!restrict}. *)

(** {1 Access control (the §7 security plan)}

    "The Finder is configured with a set of XRLs that each process is
    allowed to call, and a set of targets that each process is allowed
    to communicate with. Only these permitted XRLs will be resolved;
    the random XRL key prevents bypassing the Finder."

    Restrictions are per caller class: once {!restrict} is called for a
    class, components of that class can only resolve the listed
    (target class, interface) pairs. Unrestricted classes may resolve
    anything (the paper's current state). *)

val restrict :
  t -> class_name:string -> allow:(string * string) list -> unit
(** [restrict t ~class_name ~allow] limits components of [class_name]
    to the given (target class, interface) pairs. Replaces any previous
    restriction; resolution caches are invalidated. *)

val unrestrict : t -> class_name:string -> unit
(** Drop any restriction on [class_name]; its components may resolve
    anything again. *)

val is_allowed :
  t -> caller:string -> target_class:string -> interface:string -> bool
(** Would {!resolve} permit [caller] to reach
    [target_class]/[interface]? True when the caller's class is
    unrestricted. *)

val resolve_count : t -> int
(** Number of [resolve] calls served (benchmarks). *)

val watch_class : t -> string -> (lifetime_event -> string -> unit) -> unit
(** [watch_class t cls cb]: [cb event instance] fires on every birth or
    death of an instance of [cls]. Registering a watch on a class that
    already has live instances fires a synthetic [Birth] per instance,
    so watchers need no separate bootstrap query. *)

val on_invalidate : t -> (string -> unit) -> unit -> unit
(** Hook called with a class name whenever resolutions for that class
    become stale; {!Xrl_router} uses this to drop its caches. Returns
    a remover: call it to unregister the hook (idempotent) — a router
    that shuts down must remove its hook or the Finder keeps the dead
    router (and its caches) alive forever. *)

val invalidate_hook_count : t -> int
(** Currently registered invalidation hooks (leak tests). *)

val live_instances : t -> string -> string list
(** Instance names currently registered for a class. *)

val live_addresses : t -> string -> (string * string) list
(** [(family, address)] pairs of every live instance of a class; used
    to tell stale transport addresses from live ones after a death. *)
