(** Hierarchical router configuration (XORP-style syntax).

    The Router Manager "holds the router configuration and starts,
    configures, and stops protocols" (paper §3). Configurations are
    trees written in a brace syntax:

    {v
    protocols {
        bgp {
            local-as: 65001
            bgp-id: 1.1.1.1
            peer 10.0.0.2 {
                as: 65002
                local-ip: 10.0.0.1
            }
        }
    }
    v}

    A node has a name, an optional key argument ([peer 10.0.0.2]), leaf
    attributes ([as: 65002]) and child nodes. [#] starts a comment. *)

type t = {
  name : string;
  key : string option;
  leaves : (string * string) list; (** In file order. *)
  children : t list;               (** In file order. *)
}

val parse : string -> (t, string) result
(** Parse a configuration file body into a synthetic root node (name
    ["root"]). Errors carry a line number. *)

val render : t -> string
(** Pretty-print back to the brace syntax (root children only). *)

val child : t -> string -> t option
(** First child with the given name. *)

val children : t -> string -> t list
(** All children with the given name (e.g. every [peer] block). *)

val leaf : t -> string -> string option
val leaf_exn : t -> string -> string
(** @raise Failure naming the missing attribute. *)

val path : t -> string list -> t option
(** Descend through named children. *)

val node_id : t -> string
(** ["name key"] or ["name"]; for error messages. *)
