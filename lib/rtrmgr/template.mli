(** Configuration templates: the schema a configuration tree must
    follow.

    XORP's Router Manager validates configurations against template
    files that protocols install, which is how the CLI configuration
    language is extended without changing the manager (paper §8.3,
    which also notes this is where the original design needed rework).
    Here templates are declarative OCaml values: node names, whether a
    node takes a key, typed leaves, and which of them are mandatory. *)

type leaf_type = T_u32 | T_txt | T_bool | T_ipv4 | T_ipv4net | T_float

type leaf_spec = {
  l_name : string;
  l_type : leaf_type;
  l_mandatory : bool;
}

type node_spec = {
  n_name : string;
  n_keyed : [ `No_key | `Key of leaf_type ];
  n_leaves : leaf_spec list;
  n_children : node_spec list;
  n_multiple : bool; (** May appear more than once (e.g. [peer]). *)
}

val leaf : ?mandatory:bool -> string -> leaf_type -> leaf_spec

val node :
  ?keyed:[ `No_key | `Key of leaf_type ] -> ?multiple:bool ->
  ?leaves:leaf_spec list -> ?children:node_spec list -> string -> node_spec

val validate : node_spec list -> Config_tree.t -> (unit, string list) result
(** Check a parsed configuration (the synthetic root) against a list of
    allowed top-level nodes. Returns all problems found: unknown nodes
    or attributes, missing mandatory attributes, type errors, duplicate
    singleton nodes. *)

val builtin : node_spec list
(** The camlXORP router template: [interfaces], [protocols
    { static, bgp, rip }], [policy]. *)
