type t = {
  name : string;
  key : string option;
  leaves : (string * string) list;
  children : t list;
}

(* --- lexer ------------------------------------------------------------ *)

exception Parse_error of int * string

type token =
  | Word of string
  | Colon_value of string (* the rest of the line after ':' *)
  | Lbrace
  | Rbrace

let tokenize source =
  let tokens = ref [] in (* (line, token), reversed *)
  let lines = String.split_on_char '\n' source in
  List.iteri
    (fun idx line ->
       let lineno = idx + 1 in
       let line =
         match String.index_opt line '#' with
         | Some i -> String.sub line 0 i
         | None -> line
       in
       let n = String.length line in
       let rec go i =
         if i >= n then ()
         else if line.[i] = ' ' || line.[i] = '\t' || line.[i] = '\r' then
           go (i + 1)
         else if line.[i] = '{' then begin
           tokens := (lineno, Lbrace) :: !tokens;
           go (i + 1)
         end
         else if line.[i] = '}' then begin
           tokens := (lineno, Rbrace) :: !tokens;
           go (i + 1)
         end
         else if line.[i] = ':' then begin
           (* A value is a single word, or a double-quoted string
              (which may contain spaces — policy programs use this).
              The quote must close on the same line. *)
           let j = ref (i + 1) in
           while !j < n && (line.[!j] = ' ' || line.[!j] = '\t') do incr j done;
           if !j >= n then raise (Parse_error (lineno, "missing value after ':'"));
           if line.[!j] = '"' then begin
             match String.index_from_opt line (!j + 1) '"' with
             | None -> raise (Parse_error (lineno, "unterminated string"))
             | Some close ->
               let v = String.sub line (!j + 1) (close - !j - 1) in
               tokens := (lineno, Colon_value v) :: !tokens;
               go (close + 1)
           end
           else begin
             let k = ref !j in
             while
               !k < n
               && not (List.mem line.[!k] [ ' '; '\t'; '\r'; '{'; '}'; ':' ])
             do
               incr k
             done;
             if !k = !j then raise (Parse_error (lineno, "missing value after ':'"));
             tokens := (lineno, Colon_value (String.sub line !j (!k - !j))) :: !tokens;
             go !k
           end
         end
         else begin
           let j = ref i in
           while
             !j < n
             && not
                  (List.mem line.[!j] [ ' '; '\t'; '\r'; '{'; '}'; ':' ])
           do
             incr j
           done;
           tokens := (lineno, Word (String.sub line i (!j - i))) :: !tokens;
           go !j
         end
       in
       go 0)
    lines;
  List.rev !tokens

(* --- parser ------------------------------------------------------------ *)

let parse source =
  let open struct exception Bad of int * string end in
  try
    let tokens = ref (tokenize source) in
    let peek () = match !tokens with [] -> None | tok :: _ -> Some tok in
    let advance () =
      match !tokens with
      | [] -> ()
      | _ :: rest -> tokens := rest
    in
    (* Parse statements until Rbrace or end of input. *)
    let rec stmts acc_leaves acc_children =
      match peek () with
      | None | Some (_, Rbrace) ->
        (List.rev acc_leaves, List.rev acc_children)
      | Some (line, Word name) ->
        advance ();
        (match peek () with
         | Some (_, Colon_value v) ->
           advance ();
           stmts ((name, v) :: acc_leaves) acc_children
         | Some (_, Lbrace) ->
           advance ();
           let node = block line name None in
           stmts acc_leaves (node :: acc_children)
         | Some (_, Word key) ->
           advance ();
           (match peek () with
            | Some (_, Lbrace) ->
              advance ();
              let node = block line name (Some key) in
              stmts acc_leaves (node :: acc_children)
            | _ ->
              raise
                (Bad (line, Printf.sprintf "expected '{' after %s %s" name key)))
         | Some (line', Rbrace) ->
           raise (Bad (line', Printf.sprintf "dangling word %S" name))
         | None -> raise (Bad (line, Printf.sprintf "dangling word %S" name)))
      | Some (line, Lbrace) -> raise (Bad (line, "unexpected '{'"))
      | Some (line, Colon_value _) -> raise (Bad (line, "unexpected ':'"))
    and block line name key =
      let leaves, children = stmts [] [] in
      match peek () with
      | Some (_, Rbrace) ->
        advance ();
        { name; key; leaves; children }
      | _ -> raise (Bad (line, Printf.sprintf "unclosed block %S" name))
    in
    let leaves, children = stmts [] [] in
    (match peek () with
     | Some (line, Rbrace) -> raise (Bad (line, "unmatched '}'"))
     | _ -> ());
    Ok { name = "root"; key = None; leaves; children }
  with
  | Bad (line, msg) | Parse_error (line, msg) ->
    Error (Printf.sprintf "line %d: %s" line msg)

(* --- rendering ------------------------------------------------------------ *)

let render root =
  let buf = Buffer.create 256 in
  let rec node indent t =
    let pad = String.make indent ' ' in
    Buffer.add_string buf
      (Printf.sprintf "%s%s%s {\n" pad t.name
         (match t.key with Some k -> " " ^ k | None -> ""));
    List.iter
      (fun (k, v) ->
         Buffer.add_string buf
           (Printf.sprintf "%s    %s: %s\n" pad k v))
      t.leaves;
    List.iter (node (indent + 4)) t.children;
    Buffer.add_string buf (Printf.sprintf "%s}\n" pad)
  in
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s: %s\n" k v))
    root.leaves;
  List.iter (node 0) root.children;
  Buffer.contents buf

(* --- navigation ------------------------------------------------------------ *)

let child t name = List.find_opt (fun c -> c.name = name) t.children
let children t name = List.filter (fun c -> c.name = name) t.children
let leaf t name = List.assoc_opt name t.leaves

let node_id t =
  match t.key with Some k -> t.name ^ " " ^ k | None -> t.name

let leaf_exn t name =
  match leaf t name with
  | Some v -> v
  | None ->
    failwith (Printf.sprintf "%s: missing required attribute %S" (node_id t) name)

let rec path t = function
  | [] -> Some t
  | name :: rest ->
    (match child t name with
     | Some c -> path c rest
     | None -> None)
