type leaf_type = T_u32 | T_txt | T_bool | T_ipv4 | T_ipv4net | T_float

type leaf_spec = { l_name : string; l_type : leaf_type; l_mandatory : bool }

type node_spec = {
  n_name : string;
  n_keyed : [ `No_key | `Key of leaf_type ];
  n_leaves : leaf_spec list;
  n_children : node_spec list;
  n_multiple : bool;
}

let leaf ?(mandatory = false) l_name l_type =
  { l_name; l_type; l_mandatory = mandatory }

let node ?(keyed = `No_key) ?(multiple = false) ?(leaves = []) ?(children = [])
    n_name =
  { n_name; n_keyed = keyed; n_leaves = leaves; n_children = children;
    n_multiple = multiple }

let type_name = function
  | T_u32 -> "u32"
  | T_txt -> "txt"
  | T_bool -> "bool"
  | T_ipv4 -> "ipv4"
  | T_ipv4net -> "ipv4net"
  | T_float -> "float"

let value_ok ty v =
  match ty with
  | T_txt -> true
  | T_u32 -> (match int_of_string_opt v with Some n -> n >= 0 | None -> false)
  | T_bool -> v = "true" || v = "false"
  | T_ipv4 -> Ipv4.of_string v <> None
  | T_ipv4net -> Ipv4net.of_string v <> None
  | T_float -> float_of_string_opt v <> None

let validate specs root =
  let problems = ref [] in
  let problem fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let rec check_node ~where (spec : node_spec) (cfg : Config_tree.t) =
    let where = where ^ "/" ^ Config_tree.node_id cfg in
    (match spec.n_keyed, cfg.Config_tree.key with
     | `No_key, Some k -> problem "%s: unexpected key %S" where k
     | `Key _, None -> problem "%s: missing key" where
     | `Key ty, Some k ->
       if not (value_ok ty k) then
         problem "%s: key %S is not a valid %s" where k (type_name ty)
     | `No_key, None -> ());
    List.iter
      (fun (name, v) ->
         match List.find_opt (fun l -> l.l_name = name) spec.n_leaves with
         | None -> problem "%s: unknown attribute %S" where name
         | Some l ->
           if not (value_ok l.l_type v) then
             problem "%s: attribute %s: %S is not a valid %s" where name v
               (type_name l.l_type))
      cfg.Config_tree.leaves;
    List.iter
      (fun l ->
         if l.l_mandatory && Config_tree.leaf cfg l.l_name = None then
           problem "%s: missing required attribute %S" where l.l_name)
      spec.n_leaves;
    check_children ~where spec.n_children cfg
  and check_children ~where child_specs (cfg : Config_tree.t) =
    (* Unknown children *)
    List.iter
      (fun (c : Config_tree.t) ->
         if not (List.exists (fun s -> s.n_name = c.Config_tree.name) child_specs)
         then problem "%s: unknown section %S" where c.Config_tree.name)
      cfg.Config_tree.children;
    (* Known children: multiplicity and recursion *)
    List.iter
      (fun spec ->
         let instances = Config_tree.children cfg spec.n_name in
         if (not spec.n_multiple) && List.length instances > 1 then
           problem "%s: section %S may appear only once" where spec.n_name;
         List.iter (fun inst -> check_node ~where spec inst) instances)
      child_specs
  in
  check_children ~where:""
    specs
    root;
  match List.rev !problems with [] -> Ok () | ps -> Error ps

let builtin : node_spec list =
  [
    node "interfaces"
      ~children:
        [ node "interface" ~keyed:(`Key T_txt) ~multiple:true
            ~leaves:[ leaf ~mandatory:true "address" T_ipv4 ] ];
    node "profiling" ~leaves:[ leaf "enabled" T_bool ];
    node "telemetry" ~leaves:[ leaf "enabled" T_bool ];
    node "protocols"
      ~children:
        [
          node "static"
            ~children:
              [ node "route" ~keyed:(`Key T_ipv4net) ~multiple:true
                  ~leaves:
                    [ leaf ~mandatory:true "nexthop" T_ipv4;
                      leaf "metric" T_u32 ] ];
          node "bgp"
            ~leaves:
              [ leaf ~mandatory:true "local-as" T_u32;
                leaf ~mandatory:true "bgp-id" T_ipv4 ]
            ~children:
              [
                node "network" ~keyed:(`Key T_ipv4net) ~multiple:true;
                node "peer" ~keyed:(`Key T_ipv4) ~multiple:true
                  ~leaves:
                    [ leaf ~mandatory:true "as" T_u32;
                      leaf ~mandatory:true "local-ip" T_ipv4;
                      leaf "holdtime" T_u32;
                      leaf "connect-retry" T_float;
                      leaf "damping" T_bool;
                      leaf "checking-cache" T_bool;
                      leaf "import-policy" T_txt;
                      leaf "export-policy" T_txt ];
              ];
          node "ospf"
            ~leaves:
              [ leaf ~mandatory:true "router-id" T_ipv4;
                leaf "hello-interval" T_float;
                leaf "dead-interval" T_float ]
            ~children:
              [ node "interface" ~keyed:(`Key T_ipv4) ~multiple:true
                  ~children:
                    [ node "neighbor" ~keyed:(`Key T_ipv4) ~multiple:true
                        ~leaves:
                          [ leaf ~mandatory:true "router-id" T_ipv4;
                            leaf "cost" T_u32 ] ];
                node "stub" ~keyed:(`Key T_ipv4net) ~multiple:true
                  ~leaves:[ leaf "cost" T_u32 ] ];
          node "rip"
            ~leaves:
              [ leaf "update-interval" T_float;
                leaf "timeout" T_float;
                leaf "redistribute" T_txt ]
            ~children:
              [ node "interface" ~keyed:(`Key T_ipv4) ~multiple:true
                  ~leaves:[ leaf "neighbor" T_ipv4 ];
                node "route" ~keyed:(`Key T_ipv4net) ~multiple:true
                  ~leaves:[ leaf "metric" T_u32 ] ];
        ];
  ]
